// Beyond-RAM execution harness (DESIGN.md §15): PRoST's mixed strategy
// fully in memory versus the same engine paging its columnar storage
// through a BufferPool capped at a quarter of the columnar footprint.
//
// Two properties are on display (and enforced under --smoke):
//   - identity: every WatDiv query returns a relation *bit-identical*
//     to the in-memory engine, chunk layout and row order included —
//     paging is invisible to semantics; and
//   - skipping: zone maps prune row groups on the constant-heavy C
//     class (zero C-class skips is a FATAL smoke failure — it means
//     the skip machinery is dead code).
// At-rest budget enforcement is asserted in tests/paged_scan_test.cpp;
// here the eviction totals show the pool actually streaming.
//
// Pass --json <path> to emit the per-query BENCH_paged.json feed
// (bytes_scanned shows what skipping saved). Pass --smoke to enforce
// the guards and exit nonzero on violation — the bench_paged.smoke
// ctest behind the Release-bench CI leg.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "columnar/buffer_pool.h"
#include "obs/metrics.h"

namespace {

/// Bit-identity over result relations: same chunk count, every chunk's
/// every column the same vector. Returns false (and reports) otherwise.
bool BitIdentical(const prost::engine::Relation& a,
                  const prost::engine::Relation& b, const std::string& id) {
  if (a.num_chunks() != b.num_chunks() ||
      a.column_names() != b.column_names()) {
    std::fprintf(stderr, "FATAL: %s: relation shape differs\n", id.c_str());
    return false;
  }
  for (uint32_t w = 0; w < a.num_chunks(); ++w) {
    if (a.chunks()[w].columns != b.chunks()[w].columns) {
      std::fprintf(stderr, "FATAL: %s: chunk %u differs\n", id.c_str(), w);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prost;
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::BenchWorkload workload = bench::BuildWorkload();
  cluster::ClusterConfig cluster = bench::ScaledCluster(workload);

  auto in_memory = baselines::MakeProst(workload.graph, cluster);
  if (!in_memory.ok()) {
    std::fprintf(stderr, "FATAL: in-memory build failed\n");
    return 1;
  }
  const uint64_t footprint = (*in_memory)->load_report().storage_bytes;
  const uint64_t budget = footprint / 4;
  // Row groups well below the partition sizes at bench scale, so the
  // pool sees real page traffic and zone maps real pruning granularity.
  const uint32_t row_group_rows = 512;
  auto paged = baselines::MakeProstPaged(workload.graph, cluster, budget,
                                         row_group_rows);
  if (!paged.ok()) {
    std::fprintf(stderr, "FATAL: paged build failed\n");
    return 1;
  }
  std::fprintf(stderr,
               "[bench] columnar footprint %.2f MB, pool budget %.2f MB "
               "(1/4), row groups of %u rows\n",
               footprint / (1024.0 * 1024.0), budget / (1024.0 * 1024.0),
               row_group_rows);

  const obs::MetricsRegistry* metrics = (*paged)->metrics();
  if (metrics == nullptr) {
    std::fprintf(stderr, "FATAL: paged system exposes no metrics\n");
    return 1;
  }

  bench::SystemRun mem_run;
  mem_run.system = "PRoST (VP + PT)";
  bench::SystemRun paged_run;
  paged_run.system = "PRoST (paged, 1/4 budget)";

  std::printf("\nBeyond-RAM: in-memory vs paged at 1/4 budget (simulated ms)\n");
  bench::PrintRule(78);
  std::printf("%-6s | %12s | %12s | %13s | %9s | %7s\n", "Query", "in-memory",
              "paged", "bytes saved", "rg skips", "bloom");
  bench::PrintRule(78);

  int identity_failures = 0;
  uint64_t c_class_skips = 0;
  for (size_t i = 0; i < workload.queries.size(); ++i) {
    const watdiv::WatDivQuery& q = workload.queries[i];
    obs::MetricsSnapshot before = metrics->Snapshot();

    bench::QueryRun mem_qr;
    mem_qr.query_id = q.id;
    mem_qr.query_class = q.query_class;
    Result<core::QueryResult> mem_result = Status::Internal("not run");
    {
      ScopedTimer timer(&mem_qr.wall_millis);
      mem_result = (*in_memory)->Execute(workload.parsed[i]);
    }
    bench::QueryRun paged_qr;
    paged_qr.query_id = q.id;
    paged_qr.query_class = q.query_class;
    Result<core::QueryResult> paged_result = Status::Internal("not run");
    {
      ScopedTimer timer(&paged_qr.wall_millis);
      paged_result = (*paged)->Execute(workload.parsed[i]);
    }
    if (!mem_result.ok() || !paged_result.ok()) {
      std::fprintf(stderr, "FATAL: %s failed: %s / %s\n", q.id.c_str(),
                   mem_result.status().ToString().c_str(),
                   paged_result.status().ToString().c_str());
      return 1;
    }
    if (!BitIdentical(paged_result->relation, mem_result->relation, q.id)) {
      ++identity_failures;
    }

    obs::MetricsSnapshot after = metrics->Snapshot();
    uint64_t rg_skips = after.counter("storage.row_groups_skipped_zonemap") -
                        before.counter("storage.row_groups_skipped_zonemap");
    uint64_t bloom_skips =
        after.counter("storage.partitions_skipped_bloom") -
        before.counter("storage.partitions_skipped_bloom");
    if (q.query_class == 'C') c_class_skips += rg_skips;

    mem_qr.simulated_millis = mem_result->simulated_millis;
    mem_qr.result_rows = mem_result->relation.TotalRows();
    mem_qr.counters = mem_result->counters;
    paged_qr.simulated_millis = paged_result->simulated_millis;
    paged_qr.result_rows = paged_result->relation.TotalRows();
    paged_qr.counters = paged_result->counters;

    int64_t bytes_saved =
        static_cast<int64_t>(mem_qr.counters.bytes_scanned) -
        static_cast<int64_t>(paged_qr.counters.bytes_scanned);
    std::printf("%-6s | %12s | %12s | %10.2f KB | %9llu | %7llu\n",
                q.id.c_str(),
                WithThousands(
                    static_cast<uint64_t>(mem_qr.simulated_millis)).c_str(),
                WithThousands(
                    static_cast<uint64_t>(paged_qr.simulated_millis)).c_str(),
                bytes_saved / 1024.0,
                static_cast<unsigned long long>(rg_skips),
                static_cast<unsigned long long>(bloom_skips));

    mem_run.queries.push_back(std::move(mem_qr));
    paged_run.queries.push_back(std::move(paged_qr));
  }
  bench::PrintRule(78);

  obs::MetricsSnapshot total = metrics->Snapshot();
  std::printf(
      "paged totals: %llu pins, %llu misses, %llu evictions, "
      "%llu row groups zone-skipped, %llu partitions bloom-skipped\n",
      static_cast<unsigned long long>(total.counter("storage.pages_pinned")),
      static_cast<unsigned long long>(total.counter("storage.page_misses")),
      static_cast<unsigned long long>(total.counter("storage.evictions")),
      static_cast<unsigned long long>(
          total.counter("storage.row_groups_skipped_zonemap")),
      static_cast<unsigned long long>(
          total.counter("storage.partitions_skipped_bloom")));

  if (!json_path.empty()) {
    bench::WriteBenchJson(json_path, "paged_beyond_ram", workload,
                          {mem_run, paged_run});
  }

  if (identity_failures > 0) {
    std::fprintf(stderr, "FATAL: %d identity failure(s)\n", identity_failures);
    return 1;
  }
  if (smoke) {
    if (c_class_skips == 0) {
      std::fprintf(stderr,
                   "FATAL: zero zone-map row-group skips across the C-class "
                   "queries — skipping machinery is dead\n");
      return 1;
    }
    std::printf("smoke: identity + C-class skip guards hold\n");
  }
  return 0;
}
