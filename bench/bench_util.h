#ifndef PROST_BENCH_BENCH_UTIL_H_
#define PROST_BENCH_BENCH_UTIL_H_

// Shared plumbing for the paper-reproduction benches: dataset scale
// control, system construction, query-set execution, and table printing.
//
// Scale defaults to 250k triples so the full bench suite runs in minutes
// on a laptop; set PROST_BENCH_TRIPLES to reproduce at other scales (the
// paper uses 100M on a 10-node cluster; relative shapes are stable across
// scales because the cost model is driven by per-query work, not by
// wall-clock of this process).

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/system.h"
#include "common/str_util.h"
#include "rdf/graph.h"
#include "sparql/parser.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace prost::bench {

inline uint64_t BenchTriples() {
  const char* env = std::getenv("PROST_BENCH_TRIPLES");
  if (env != nullptr) {
    uint64_t value = std::strtoull(env, nullptr, 10);
    if (value > 0) return value;
  }
  return 250000;
}

inline uint64_t BenchSeed() {
  const char* env = std::getenv("PROST_BENCH_SEED");
  if (env != nullptr) {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

struct BenchWorkload {
  baselines::SharedGraph graph;
  std::vector<watdiv::WatDivQuery> queries;          // 20 basic queries
  std::vector<sparql::Query> parsed;                 // aligned with queries
};

inline BenchWorkload BuildWorkload() {
  watdiv::WatDivConfig config;
  config.target_triples = BenchTriples();
  config.seed = BenchSeed();
  std::fprintf(stderr, "[bench] generating WatDiv dataset (~%llu triples, seed %llu)...\n",
               static_cast<unsigned long long>(config.target_triples),
               static_cast<unsigned long long>(config.seed));
  watdiv::WatDivDataset dataset = watdiv::Generate(config);
  dataset.graph.SortAndDedupe();
  BenchWorkload workload;
  workload.queries = watdiv::BasicQuerySet(dataset);
  workload.graph = std::make_shared<const rdf::EncodedGraph>(
      std::move(dataset.graph));
  for (const watdiv::WatDivQuery& q : workload.queries) {
    auto parsed = sparql::ParseQuery(q.sparql);
    if (!parsed.ok()) {
      std::fprintf(stderr, "[bench] FATAL: %s: %s\n", q.id.c_str(),
                   parsed.status().ToString().c_str());
      std::exit(1);
    }
    workload.parsed.push_back(std::move(parsed).value());
  }
  std::fprintf(stderr, "[bench] dataset ready: %zu triples, %zu terms\n",
               workload.graph->size(), workload.graph->dictionary().size());
  return workload;
}

/// The paper's cluster, rescaled so this dataset exercises the same
/// work-to-capacity regime as WatDiv100M on 10 machines. Simulated times
/// are then directly comparable to the paper's magnitudes.
inline cluster::ClusterConfig ScaledCluster(const BenchWorkload& workload) {
  cluster::ClusterConfig cluster;
  cluster.ScaleToDataset(workload.graph->size());
  return cluster;
}

/// Runs all 20 queries on `system`, returning simulated millis per query
/// id. Exits on error (benches are regeneration scripts, not libraries).
inline std::map<std::string, double> RunQuerySet(
    const baselines::RdfSystem& system, const BenchWorkload& workload) {
  std::map<std::string, double> millis;
  for (size_t i = 0; i < workload.queries.size(); ++i) {
    auto result = system.Execute(workload.parsed[i]);
    if (!result.ok()) {
      std::fprintf(stderr, "[bench] FATAL: %s on %s: %s\n",
                   workload.queries[i].id.c_str(), system.name().c_str(),
                   result.status().ToString().c_str());
      std::exit(1);
    }
    millis[workload.queries[i].id] = result->simulated_millis;
  }
  return millis;
}

/// Average per query class ('C','F','L','S').
inline std::map<char, double> ClassAverages(
    const std::map<std::string, double>& by_query,
    const std::vector<watdiv::WatDivQuery>& queries) {
  std::map<char, double> sums;
  std::map<char, int> counts;
  for (const watdiv::WatDivQuery& q : queries) {
    sums[q.query_class] += by_query.at(q.id);
    ++counts[q.query_class];
  }
  std::map<char, double> averages;
  for (const auto& [cls, sum] : sums) averages[cls] = sum / counts.at(cls);
  return averages;
}

inline const char* ClassName(char cls) {
  switch (cls) {
    case 'C':
      return "Complex";
    case 'F':
      return "Snowflake";
    case 'L':
      return "Linear";
    case 'S':
      return "Star";
  }
  return "?";
}

inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace prost::bench

#endif  // PROST_BENCH_BENCH_UTIL_H_
