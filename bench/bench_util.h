#ifndef PROST_BENCH_BENCH_UTIL_H_
#define PROST_BENCH_BENCH_UTIL_H_

// Shared plumbing for the paper-reproduction benches: dataset scale
// control, system construction, query-set execution, and table printing.
//
// Scale defaults to 250k triples so the full bench suite runs in minutes
// on a laptop; set PROST_BENCH_TRIPLES to reproduce at other scales (the
// paper uses 100M on a 10-node cluster; relative shapes are stable across
// scales because the cost model is driven by per-query work, not by
// wall-clock of this process).

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/system.h"
#include "common/io.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "rdf/graph.h"
#include "sparql/parser.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace prost::bench {

inline uint64_t BenchTriples() {
  const char* env = std::getenv("PROST_BENCH_TRIPLES");
  if (env != nullptr) {
    uint64_t value = std::strtoull(env, nullptr, 10);
    if (value > 0) return value;
  }
  return 250000;
}

inline uint64_t BenchSeed() {
  const char* env = std::getenv("PROST_BENCH_SEED");
  if (env != nullptr) {
    return std::strtoull(env, nullptr, 10);
  }
  return 42;
}

struct BenchWorkload {
  baselines::SharedGraph graph;
  std::vector<watdiv::WatDivQuery> queries;          // 20 basic queries
  std::vector<sparql::Query> parsed;                 // aligned with queries
};

inline BenchWorkload BuildWorkload() {
  watdiv::WatDivConfig config;
  config.target_triples = BenchTriples();
  config.seed = BenchSeed();
  std::fprintf(stderr, "[bench] generating WatDiv dataset (~%llu triples, seed %llu)...\n",
               static_cast<unsigned long long>(config.target_triples),
               static_cast<unsigned long long>(config.seed));
  watdiv::WatDivDataset dataset = watdiv::Generate(config);
  dataset.graph.SortAndDedupe();
  BenchWorkload workload;
  workload.queries = watdiv::BasicQuerySet(dataset);
  workload.graph = std::make_shared<const rdf::EncodedGraph>(
      std::move(dataset.graph));
  for (const watdiv::WatDivQuery& q : workload.queries) {
    auto parsed = sparql::ParseQuery(q.sparql);
    if (!parsed.ok()) {
      std::fprintf(stderr, "[bench] FATAL: %s: %s\n", q.id.c_str(),
                   parsed.status().ToString().c_str());
      std::exit(1);
    }
    workload.parsed.push_back(std::move(parsed).value());
  }
  std::fprintf(stderr, "[bench] dataset ready: %zu triples, %zu terms\n",
               workload.graph->size(), workload.graph->dictionary().size());
  return workload;
}

/// The paper's cluster, rescaled so this dataset exercises the same
/// work-to-capacity regime as WatDiv100M on 10 machines. Simulated times
/// are then directly comparable to the paper's magnitudes.
inline cluster::ClusterConfig ScaledCluster(const BenchWorkload& workload) {
  cluster::ClusterConfig cluster;
  cluster.ScaleToDataset(workload.graph->size());
  return cluster;
}

/// One query's measurements: simulated time plus the cost-model counters
/// explaining it, and the harness's real wall time for the call.
struct QueryRun {
  std::string query_id;
  char query_class = '?';
  double simulated_millis = 0;
  double wall_millis = 0;
  uint64_t result_rows = 0;
  cluster::ExecutionCounters counters;
};

/// All 20 queries on one system, in workload order.
struct SystemRun {
  std::string system;
  std::vector<QueryRun> queries;
};

/// Runs all 20 queries on `system` with full per-query detail. Exits on
/// error (benches are regeneration scripts, not libraries).
inline SystemRun RunQuerySetDetailed(const baselines::RdfSystem& system,
                                     const BenchWorkload& workload) {
  SystemRun run;
  run.system = system.name();
  for (size_t i = 0; i < workload.queries.size(); ++i) {
    QueryRun qr;
    qr.query_id = workload.queries[i].id;
    qr.query_class = workload.queries[i].query_class;
    Result<core::QueryResult> result = Status::Internal("not run");
    {
      ScopedTimer timer(&qr.wall_millis);
      result = system.Execute(workload.parsed[i]);
    }
    if (!result.ok()) {
      std::fprintf(stderr, "[bench] FATAL: %s on %s: %s\n",
                   workload.queries[i].id.c_str(), system.name().c_str(),
                   result.status().ToString().c_str());
      std::exit(1);
    }
    qr.simulated_millis = result->simulated_millis;
    qr.result_rows = result->relation.TotalRows();
    qr.counters = result->counters;
    run.queries.push_back(std::move(qr));
  }
  return run;
}

/// Runs all 20 queries on `system`, returning simulated millis per query
/// id (the shape most benches aggregate from).
inline std::map<std::string, double> RunQuerySet(
    const baselines::RdfSystem& system, const BenchWorkload& workload) {
  std::map<std::string, double> millis;
  for (const QueryRun& qr : RunQuerySetDetailed(system, workload).queries) {
    millis[qr.query_id] = qr.simulated_millis;
  }
  return millis;
}

/// Writes per-query results for several systems as a BENCH_*.json file:
/// {"benchmark": ..., "triples": N, "seed": N, "systems": [{"system": ...,
/// "queries": [{"query": ..., "class": ..., "simulated_millis": ...,
/// "rows": ..., "bytes_scanned": ..., ...}]}]}. Machine-readable feed for
/// the BENCH_*.json trajectory.
inline void WriteBenchJson(const std::string& path,
                           const std::string& benchmark,
                           const BenchWorkload& workload,
                           const std::vector<SystemRun>& runs) {
  std::string out = "{\n";
  out += StrFormat("  \"benchmark\": \"%s\",\n", benchmark.c_str());
  out += StrFormat("  \"triples\": %llu,\n",
                   static_cast<unsigned long long>(workload.graph->size()));
  out += StrFormat("  \"seed\": %llu,\n",
                   static_cast<unsigned long long>(BenchSeed()));
  out += "  \"systems\": [";
  for (size_t s = 0; s < runs.size(); ++s) {
    out += s == 0 ? "\n" : ",\n";
    out += StrFormat("    {\"system\": \"%s\", \"queries\": [",
                     runs[s].system.c_str());
    for (size_t i = 0; i < runs[s].queries.size(); ++i) {
      const QueryRun& q = runs[s].queries[i];
      out += i == 0 ? "\n" : ",\n";
      out += StrFormat(
          "      {\"query\": \"%s\", \"class\": \"%c\", "
          "\"simulated_millis\": %.6f, \"wall_millis\": %.3f, "
          "\"rows\": %llu, \"bytes_scanned\": %llu, "
          "\"bytes_shuffled\": %llu, \"bytes_broadcast\": %llu, "
          "\"rows_processed\": %llu, \"stages\": %llu}",
          q.query_id.c_str(), q.query_class, q.simulated_millis,
          q.wall_millis, static_cast<unsigned long long>(q.result_rows),
          static_cast<unsigned long long>(q.counters.bytes_scanned),
          static_cast<unsigned long long>(q.counters.bytes_shuffled),
          static_cast<unsigned long long>(q.counters.bytes_broadcast),
          static_cast<unsigned long long>(q.counters.rows_processed),
          static_cast<unsigned long long>(q.counters.stages));
    }
    out += "\n    ]}";
  }
  out += "\n  ]\n}\n";
  Status written = WriteStringToFile(path, out);
  if (!written.ok()) {
    std::fprintf(stderr, "[bench] FATAL: writing %s: %s\n", path.c_str(),
                 written.ToString().c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

/// One kernel micro-benchmark measurement: the vectorized implementation
/// against the row-at-a-time / node-based baseline it replaced, over the
/// same input.
struct KernelRun {
  std::string kernel;     // e.g. "hash_join_build_probe"
  std::string baseline;   // e.g. "std_unordered_map"
  uint64_t rows = 0;      // Input rows per run.
  double baseline_millis = 0;
  double vectorized_millis = 0;
};

/// Writes kernel before/after measurements as a BENCH_*.json file:
/// {"benchmark": ..., "kernels": [{"kernel": ..., "baseline": ...,
/// "rows": N, "baseline_millis": ..., "vectorized_millis": ...,
/// "speedup_vs_baseline": ...}]}. The BENCH_kernels.json feed.
inline void WriteBenchJson(const std::string& path,
                           const std::string& benchmark,
                           const std::vector<KernelRun>& kernels) {
  std::string out = "{\n";
  out += StrFormat("  \"benchmark\": \"%s\",\n", benchmark.c_str());
  out += "  \"kernels\": [";
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelRun& k = kernels[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat(
        "    {\"kernel\": \"%s\", \"baseline\": \"%s\", \"rows\": %llu, "
        "\"baseline_millis\": %.3f, \"vectorized_millis\": %.3f, "
        "\"speedup_vs_baseline\": %.2f}",
        k.kernel.c_str(), k.baseline.c_str(),
        static_cast<unsigned long long>(k.rows), k.baseline_millis,
        k.vectorized_millis,
        k.vectorized_millis > 0 ? k.baseline_millis / k.vectorized_millis
                                : 0.0);
  }
  out += "\n  ]\n}\n";
  Status written = WriteStringToFile(path, out);
  if (!written.ok()) {
    std::fprintf(stderr, "[bench] FATAL: writing %s: %s\n", path.c_str(),
                 written.ToString().c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

/// Average per query class ('C','F','L','S').
inline std::map<char, double> ClassAverages(
    const std::map<std::string, double>& by_query,
    const std::vector<watdiv::WatDivQuery>& queries) {
  std::map<char, double> sums;
  std::map<char, int> counts;
  for (const watdiv::WatDivQuery& q : queries) {
    sums[q.query_class] += by_query.at(q.id);
    ++counts[q.query_class];
  }
  std::map<char, double> averages;
  for (const auto& [cls, sum] : sums) averages[cls] = sum / counts.at(cls);
  return averages;
}

inline const char* ClassName(char cls) {
  switch (cls) {
    case 'C':
      return "Complex";
    case 'F':
      return "Snowflake";
    case 'L':
      return "Linear";
    case 'S':
      return "Star";
  }
  return "?";
}

inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace prost::bench

#endif  // PROST_BENCH_BENCH_UTIL_H_
