// Future-work feature from §5 of the paper: "a promising step might be to
// add another Property Table where, instead of the subjects, the rows
// would be created around objects. This could be beneficial for triple
// patterns that share the same object."
//
// This bench runs PRoST with and without the reverse (object-keyed)
// Property Table on the 20 basic queries plus three object-star queries
// (OS1–OS3) built around shared-object patterns, where the feature is
// designed to pay off.

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"
#include "core/prost_db.h"
#include "watdiv/schema.h"

namespace {

std::vector<prost::watdiv::WatDivQuery> ObjectStarQueries() {
  using prost::watdiv::kSorg;
  using prost::watdiv::kWsdbm;
  std::string prologue = std::string("PREFIX wsdbm: <") + kWsdbm + ">\n" +
                         "PREFIX sorg: <" + kSorg + ">\n";
  std::vector<prost::watdiv::WatDivQuery> queries;
  // Two users connected through a commonly liked product.
  queries.push_back({"OS1", 'O', prologue + R"(
SELECT * WHERE {
  ?u1 wsdbm:likes ?p .
  ?u2 wsdbm:likes ?p .
  ?u1 wsdbm:friendOf ?u2 .
})"});
  // Product reached by a like and an authorship, plus its language.
  queries.push_back({"OS2", 'O', prologue + R"(
SELECT * WHERE {
  ?u1 wsdbm:likes ?p .
  ?u2 sorg:author ?p .
  ?p sorg:language ?l .
})"});
  // Users co-located through follows/friendOf on a shared target.
  queries.push_back({"OS3", 'O', prologue + R"(
SELECT * WHERE {
  ?a wsdbm:follows ?x .
  ?b wsdbm:friendOf ?x .
  ?x wsdbm:subscribes wsdbm:Website0 .
})"});
  return queries;
}

}  // namespace

int main() {
  using namespace prost;
  bench::BenchWorkload workload = bench::BuildWorkload();
  cluster::ClusterConfig cluster = bench::ScaledCluster(workload);

  core::ProstDb::Options base;
  base.cluster = cluster;
  core::ProstDb::Options with_reverse = base;
  with_reverse.use_reverse_property_table = true;

  auto db_base = core::ProstDb::LoadFromSharedGraph(workload.graph, base);
  auto db_rev =
      core::ProstDb::LoadFromSharedGraph(workload.graph, with_reverse);
  if (!db_base.ok() || !db_rev.ok()) {
    std::fprintf(stderr, "FATAL: load failed\n");
    return 1;
  }

  std::vector<watdiv::WatDivQuery> queries = workload.queries;
  for (auto& q : ObjectStarQueries()) queries.push_back(q);

  std::printf(
      "\nFuture work (paper §5): object-keyed reverse Property Table\n");
  bench::PrintRule(64);
  std::printf("%-6s | %12s | %12s | %8s | %6s\n", "Query", "PRoST",
              "+reverse PT", "speedup", "rows");
  bench::PrintRule(64);
  for (const watdiv::WatDivQuery& q : queries) {
    auto parsed = sparql::ParseQuery(q.sparql);
    if (!parsed.ok()) {
      std::fprintf(stderr, "FATAL parse %s: %s\n", q.id.c_str(),
                   parsed.status().ToString().c_str());
      return 1;
    }
    auto base_run = (*db_base)->Execute(parsed.value());
    auto rev_run = (*db_rev)->Execute(parsed.value());
    if (!base_run.ok() || !rev_run.ok()) {
      std::fprintf(stderr, "FATAL exec %s\n", q.id.c_str());
      return 1;
    }
    if (base_run->relation.CollectSortedRows() !=
        rev_run->relation.CollectSortedRows()) {
      std::fprintf(stderr, "FATAL: %s results diverge with reverse PT\n",
                   q.id.c_str());
      return 1;
    }
    std::printf("%-6s | %12.0f | %12.0f | %7.2fx | %6llu\n", q.id.c_str(),
                base_run->simulated_millis, rev_run->simulated_millis,
                base_run->simulated_millis / rev_run->simulated_millis,
                static_cast<unsigned long long>(base_run->num_rows()));
  }
  bench::PrintRule(64);
  std::printf(
      "Storage cost of the reverse PT: base %s vs +reverse %s (load "
      "reports)\n",
      HumanBytes((*db_base)->load_report().storage_bytes).c_str(),
      HumanBytes((*db_rev)->load_report().storage_bytes).c_str());
  return 0;
}
