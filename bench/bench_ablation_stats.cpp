// Ablation A1: the §3.3 statistics-based Join Tree ordering, on vs off.
//
// The WatDiv basic templates happen to list their patterns in a sensible
// order, so naive (query-order) planning looks fine on them — until the
// pattern order changes. The bench therefore runs each query twice: as
// written, and with its BGP patterns reversed. Statistics-based ordering
// is permutation-invariant; naive ordering degrades on the reversed
// forms, which is precisely why §3.3 exists ("choosing carefully the
// Join Tree is important for the quality of the system").

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"
#include "core/prost_db.h"
#include "watdiv/schema.h"

namespace {

/// Chain queries written in deliberately bad order: the explosive social
/// joins come first and the selective constant last. Naive planning pays
/// the cartesian-ish blowup; statistics push the constant down.
std::vector<prost::watdiv::WatDivQuery> AdversarialQueries() {
  using prost::watdiv::kWsdbm;
  std::string prologue = std::string("PREFIX wsdbm: <") + kWsdbm + ">\n";
  return {
      {"AB1", 'A', prologue + R"(
SELECT * WHERE {
  ?a wsdbm:friendOf ?b .
  ?b wsdbm:follows ?c .
  ?c wsdbm:subscribes wsdbm:Website0 .
})"},
      {"AB2", 'A', prologue + R"(
SELECT * WHERE {
  ?a wsdbm:friendOf ?b .
  ?b wsdbm:likes ?p .
  ?p wsdbm:hasGenre wsdbm:SubGenre3 .
})"},
  };
}

}  // namespace

int main() {
  using namespace prost;
  bench::BenchWorkload workload = bench::BuildWorkload();
  cluster::ClusterConfig cluster = bench::ScaledCluster(workload);

  core::ProstDb::Options with_stats;
  with_stats.cluster = cluster;
  core::ProstDb::Options without_stats = with_stats;
  without_stats.enable_stats_ordering = false;

  auto db_on = core::ProstDb::LoadFromSharedGraph(workload.graph, with_stats);
  auto db_off =
      core::ProstDb::LoadFromSharedGraph(workload.graph, without_stats);
  if (!db_on.ok() || !db_off.ok()) {
    std::fprintf(stderr, "FATAL: load failed\n");
    return 1;
  }

  std::printf(
      "\nAblation A1: statistics-based join ordering (PRoST, ms simulated)\n"
      "'rev' columns run the same query with its patterns reversed.\n");
  bench::PrintRule(78);
  std::printf("%-6s | %11s | %11s | %11s | %11s | %9s\n", "Query", "stats",
              "naive", "stats rev", "naive rev", "rev ratio");
  bench::PrintRule(78);
  std::vector<watdiv::WatDivQuery> queries = workload.queries;
  std::vector<sparql::Query> parsed = workload.parsed;
  for (auto& q : AdversarialQueries()) {
    auto p = sparql::ParseQuery(q.sparql);
    if (!p.ok()) {
      std::fprintf(stderr, "FATAL parse %s\n", q.id.c_str());
      return 1;
    }
    queries.push_back(q);
    parsed.push_back(std::move(p).value());
  }

  double sum_stats = 0, sum_naive_rev = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    sparql::Query reversed = parsed[i];
    std::reverse(reversed.bgp.patterns.begin(), reversed.bgp.patterns.end());

    auto on = (*db_on)->Execute(parsed[i]);
    auto off = (*db_off)->Execute(parsed[i]);
    auto on_rev = (*db_on)->Execute(reversed);
    auto off_rev = (*db_off)->Execute(reversed);
    if (!on.ok() || !off.ok() || !on_rev.ok() || !off_rev.ok()) {
      std::fprintf(stderr, "FATAL: %s failed\n", queries[i].id.c_str());
      return 1;
    }
    sum_stats += on->simulated_millis;
    sum_naive_rev += off_rev->simulated_millis;
    std::printf("%-6s | %11.0f | %11.0f | %11.0f | %11.0f | %8.2fx\n",
                queries[i].id.c_str(), on->simulated_millis,
                off->simulated_millis, on_rev->simulated_millis,
                off_rev->simulated_millis,
                off_rev->simulated_millis / on_rev->simulated_millis);
  }
  bench::PrintRule(78);
  std::printf(
      "average: stats %0.0fms vs naive-on-reversed %0.0fms (%.2fx) — the\n"
      "statistics make plan quality independent of how the query is "
      "written.\n",
      sum_stats / queries.size(), sum_naive_rev / queries.size(),
      sum_naive_rev / sum_stats);
  return 0;
}
