// Reproduces Table 2 of the paper: average querying time grouped by type
// of query (Complex / Snowflake / Linear / Star) for PRoST, S2RDF, Rya
// and SPARQLGX.
//
// Paper (WatDiv100M, ms):
//   Complex    PRoST 9,364   S2RDF 3,392   Rya 2,195,322   SPARQLGX 61,363
//   Snowflake  PRoST 5,923   S2RDF 1,564   Rya   369,016   SPARQLGX 24,046
//   Linear     PRoST 2,419   S2RDF   527   Rya    49,044   SPARQLGX 18,254
//   Star       PRoST 1,195   S2RDF   884   Rya     6,960   SPARQLGX  2,104
// Expected shape: Rya worst on average by orders of magnitude on C/F;
// SPARQLGX consistently behind PRoST; S2RDF ahead of PRoST, least so on
// Star queries.

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"

int main() {
  using namespace prost;
  bench::BenchWorkload workload = bench::BuildWorkload();
  cluster::ClusterConfig cluster = bench::ScaledCluster(workload);

  auto systems = baselines::MakeAllSystems(workload.graph, cluster);
  if (!systems.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", systems.status().ToString().c_str());
    return 1;
  }
  std::vector<std::pair<std::string, std::map<char, double>>> averages;
  for (const auto& system : *systems) {
    std::fprintf(stderr, "[bench] running query set on %s...\n",
                 system->name().c_str());
    averages.emplace_back(
        system->name(),
        bench::ClassAverages(bench::RunQuerySet(*system, workload),
                             workload.queries));
  }

  std::printf("\nTable 2: average querying time by query type (ms, simulated)\n");
  bench::PrintRule(72);
  std::printf("%-10s", "Queries");
  for (const auto& [name, avg] : averages) std::printf(" | %12s", name.c_str());
  std::printf("\n");
  bench::PrintRule(72);
  for (char cls : {'C', 'F', 'L', 'S'}) {
    std::printf("%-10s", bench::ClassName(cls));
    for (const auto& [name, avg] : averages) {
      std::printf(" | %12s",
                  WithThousands(static_cast<uint64_t>(avg.at(cls))).c_str());
    }
    std::printf("\n");
  }
  bench::PrintRule(72);
  std::printf(
      "Paper (100M): C 9,364/3,392/2,195,322/61,363  F 5,923/1,564/369,016/24,046\n"
      "              L 2,419/527/49,044/18,254       S 1,195/884/6,960/2,104\n"
      "              (PRoST / S2RDF / Rya / SPARQLGX)\n");
  return 0;
}
