// Reproduces Figure 3 of the paper: per-query time (log scale) on WatDiv
// for PRoST, S2RDF, Rya and SPARQLGX.
//
// Expected shape: S2RDF fastest on C and most F queries (ExtVP
// precomputation), PRoST competitive and consistently good everywhere,
// Rya bimodal (very fast on highly selective queries, orders of magnitude
// slow on large intermediates), SPARQLGX roughly an order of magnitude
// behind PRoST across the board.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"

int main() {
  using namespace prost;
  bench::BenchWorkload workload = bench::BuildWorkload();
  cluster::ClusterConfig cluster = bench::ScaledCluster(workload);

  auto systems = baselines::MakeAllSystems(workload.graph, cluster);
  if (!systems.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", systems.status().ToString().c_str());
    return 1;
  }
  std::vector<std::pair<std::string, std::map<std::string, double>>> runs;
  for (const auto& system : *systems) {
    std::fprintf(stderr, "[bench] running query set on %s...\n",
                 system->name().c_str());
    runs.emplace_back(system->name(),
                      bench::RunQuerySet(*system, workload));
  }

  std::printf(
      "\nFigure 3: query time per system (ms, simulated; log-scale plot)\n");
  bench::PrintRule(76);
  std::printf("%-6s", "Query");
  for (const auto& [name, ms] : runs) std::printf(" | %12s", name.c_str());
  std::printf("\n");
  bench::PrintRule(76);
  for (const watdiv::WatDivQuery& q : workload.queries) {
    std::printf("%-6s", q.id.c_str());
    for (const auto& [name, ms] : runs) {
      std::printf(" | %12s",
                  WithThousands(static_cast<uint64_t>(ms.at(q.id))).c_str());
    }
    std::printf("\n");
  }
  bench::PrintRule(76);

  // The log-scale series the figure plots.
  std::printf("\nlog10(ms) series:\n%-6s", "Query");
  for (const auto& [name, ms] : runs) std::printf(" | %9s", name.c_str());
  std::printf("\n");
  for (const watdiv::WatDivQuery& q : workload.queries) {
    std::printf("%-6s", q.id.c_str());
    for (const auto& [name, ms] : runs) {
      std::printf(" | %9.2f", std::log10(ms.at(q.id)));
    }
    std::printf("\n");
  }
  return 0;
}
