// Reproduces Table 1 of the paper: database size and loading time for
// PRoST, SPARQLGX, S2RDF and Rya on a WatDiv dataset.
//
// "Size" is real bytes written to disk by each system's persister
// (lexical columnar tables for PRoST/S2RDF, flat text VP for SPARQLGX,
// index key files for Rya); "Time" is the simulated cluster loading time.
//
// Paper (WatDiv100M, 10-node cluster):
//   PRoST     2.1 GB   25m 32s
//   SPARQLGX  0.9 GB   20m 01s
//   S2RDF     6.2 GB   3h 11m 44s
//   Rya       3.1 GB   41m 32s
// Expected shape: size SPARQLGX < PRoST < Rya < S2RDF; loading
// SPARQLGX <~ PRoST << Rya < S2RDF (S2RDF ~an order of magnitude out).

#include <cstdio>

#include "bench_util.h"
#include "common/io.h"
#include "common/str_util.h"
#include "common/timer.h"

int main() {
  using namespace prost;
  bench::BenchWorkload workload = bench::BuildWorkload();
  cluster::ClusterConfig cluster = bench::ScaledCluster(workload);

  struct Row {
    std::string system;
    uint64_t size_bytes;
    double sim_millis;
    double real_build_millis;
  };
  std::vector<Row> rows;

  auto systems = baselines::MakeAllSystems(workload.graph, cluster);
  if (!systems.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", systems.status().ToString().c_str());
    return 1;
  }
  const std::string scratch = "bench_table1_scratch";
  for (const auto& system : *systems) {
    std::fprintf(stderr, "[bench] persisting %s...\n",
                 system->name().c_str());
    auto size = system->PersistTo(scratch + "/" + system->name());
    if (!size.ok()) {
      std::fprintf(stderr, "FATAL: persist %s: %s\n",
                   system->name().c_str(),
                   size.status().ToString().c_str());
      return 1;
    }
    rows.push_back({system->name(), size.value(),
                    system->load_report().simulated_load_millis,
                    system->load_report().real_load_millis});
  }
  (void)RemoveAllRecursively(scratch);

  std::printf("\nTable 1: Size and loading times using WatDiv%lluk\n",
              static_cast<unsigned long long>(workload.graph->size() / 1000));
  bench::PrintRule(66);
  std::printf("%-10s | %10s | %14s | %16s\n", "System", "Size",
              "Load (sim)", "Build (real ms)");
  bench::PrintRule(66);
  // Paper order: PRoST, SPARQLGX, S2RDF, Rya.
  for (const std::string& name :
       {std::string("PRoST"), std::string("SPARQLGX"), std::string("S2RDF"),
        std::string("Rya")}) {
    for (const Row& row : rows) {
      if (row.system != name) continue;
      std::printf("%-10s | %10s | %14s | %16.0f\n", row.system.c_str(),
                  HumanBytes(row.size_bytes).c_str(),
                  HumanDuration(row.sim_millis).c_str(),
                  row.real_build_millis);
    }
  }
  bench::PrintRule(66);
  std::printf(
      "Paper (100M): PRoST 2.1GB/25m32s, SPARQLGX 0.9GB/20m01s,\n"
      "              S2RDF 6.2GB/3h11m44s, Rya 3.1GB/41m32s\n");
  return 0;
}
