// Closed-loop serving throughput bench over serve::SessionManager: N
// sessions (client threads) each issue mixed WatDiv basic queries
// back-to-back against one shared PRoST instance, under admission
// control, sweeping N over {1, 4, 8, 16}.
//
// Two measurements per sweep point, deliberately separated:
//
//  * Deterministic serving model (the headline `qps` / `p50_ms` /
//    `p99_ms`): a discrete-event simulation of the same closed loop over
//    each query's *simulated* execution time, with the same FIFO
//    admission cap. Every admitted query occupies one of the
//    `admission_cap` simulated execution slots for exactly its
//    simulated_millis (per-query cost-model time — independent
//    executions, so concurrent queries do not dilate each other);
//    excess sessions queue FIFO, and latency = queue wait + service.
//    This is exactly reproducible on any machine at any core count:
//    throughput scales with the session count until the admission cap,
//    then plateaus while queueing inflates latency — the serving curve
//    the admission controller is supposed to produce.
//
//  * Real wall clock (`wall_qps` / `wall_p50_ms` / `wall_p99_ms`): the
//    same per-session query streams actually executed through
//    SessionManager by real threads. Honest but machine-dependent
//    (single-core CI boxes will not show wall speedups).
//
// `--smoke` shrinks the loop for CI crash-checking; `--json [path]`
// writes BENCH_serving.json.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/io.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/prost_db.h"
#include "random_workload.h"
#include "serve/session_manager.h"

namespace prost::bench {
namespace {

/// Executions running concurrently in both the model and the real run.
/// Below the largest sweep point on purpose: at 16 sessions the queue is
/// non-empty and the latency curve shows admission control working.
constexpr uint32_t kAdmissionCap = 8;

constexpr int kSessionSweep[] = {1, 4, 8, 16};

/// Per-session deterministic query stream: the sim and the real run
/// replay the identical sequence.
std::vector<size_t> SessionStream(const testing::QueryMixSampler& sampler,
                                  int session, int queries_per_session) {
  Rng rng(BenchSeed() * 1000003 + static_cast<uint64_t>(session) * 7919 + 1);
  std::vector<size_t> stream;
  stream.reserve(queries_per_session);
  for (int i = 0; i < queries_per_session; ++i) {
    stream.push_back(sampler.SampleIndex(rng));
  }
  return stream;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

struct SweepPoint {
  int sessions = 0;
  uint64_t completed = 0;
  double qps = 0;      // Deterministic serving model.
  double p50_ms = 0;
  double p99_ms = 0;
  double wall_qps = 0;  // Real threads, this machine.
  double wall_p50_ms = 0;
  double wall_p99_ms = 0;
};

/// Discrete-event simulation of the closed loop: `sessions` clients,
/// kAdmissionCap execution slots, FIFO overflow queue, service time =
/// the query's simulated_millis.
void SimulateServing(const std::vector<std::vector<size_t>>& streams,
                     const std::vector<double>& service_millis,
                     SweepPoint* point) {
  const size_t sessions = streams.size();
  struct Completion {
    double time;
    size_t session;
    bool operator>(const Completion& other) const {
      return time != other.time ? time > other.time
                                : session > other.session;
    }
  };
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completions;
  std::queue<size_t> waiting;  // Sessions parked behind the cap, FIFO.
  std::vector<size_t> position(sessions, 0);   // Next index in stream.
  std::vector<double> request_time(sessions, 0);
  std::vector<double> latencies;
  double now = 0;
  uint32_t in_flight = 0;

  auto submit = [&](size_t session) {
    request_time[session] = now;
    // A parked waiter keeps FIFO priority over a resubmitting session,
    // exactly like SessionManager's queued_-before-fast-path check.
    if (in_flight < kAdmissionCap && waiting.empty()) {
      ++in_flight;
      double service = service_millis[streams[session][position[session]]];
      completions.push({now + service, session});
    } else {
      waiting.push(session);
    }
  };

  for (size_t s = 0; s < sessions; ++s) submit(s);
  while (!completions.empty()) {
    Completion done = completions.top();
    completions.pop();
    now = done.time;
    --in_flight;
    latencies.push_back(now - request_time[done.session]);
    ++position[done.session];
    if (position[done.session] < streams[done.session].size()) {
      submit(done.session);
    }
    // A freed slot admits the queue head (its queue wait keeps accruing
    // until this moment).
    if (!waiting.empty() && in_flight < kAdmissionCap) {
      size_t next = waiting.front();
      waiting.pop();
      ++in_flight;
      double service = service_millis[streams[next][position[next]]];
      completions.push({now + service, next});
    }
  }

  point->completed = latencies.size();
  point->qps = now > 0 ? 1000.0 * static_cast<double>(latencies.size()) / now
                       : 0;
  point->p50_ms = Percentile(latencies, 0.50);
  point->p99_ms = Percentile(latencies, 0.99);
}

/// The same closed loop with real client threads through SessionManager.
void RunServing(const core::ProstDb& db, const BenchWorkload& workload,
                const std::vector<std::vector<size_t>>& streams,
                SweepPoint* point) {
  serve::AdmissionOptions admission;
  admission.max_in_flight = kAdmissionCap;
  admission.max_queued = static_cast<uint32_t>(streams.size());
  serve::SessionManager manager(db, admission);

  std::vector<std::vector<double>> latencies(streams.size());
  std::vector<std::thread> clients;
  clients.reserve(streams.size());
  WallTimer wall;
  for (size_t s = 0; s < streams.size(); ++s) {
    clients.emplace_back([&, s] {
      latencies[s].reserve(streams[s].size());
      for (size_t index : streams[s]) {
        double millis = 0;
        {
          ScopedTimer timer(&millis);
          auto result = manager.Execute(workload.parsed[index]);
          if (!result.ok()) {
            std::fprintf(stderr, "[bench] FATAL: %s: %s\n",
                         workload.queries[index].id.c_str(),
                         result.status().ToString().c_str());
            std::exit(1);
          }
        }
        latencies[s].push_back(millis);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  double elapsed = wall.ElapsedMillis();
  manager.Shutdown();

  std::vector<double> all;
  for (const std::vector<double>& per_session : latencies) {
    all.insert(all.end(), per_session.begin(), per_session.end());
  }
  point->wall_qps =
      elapsed > 0 ? 1000.0 * static_cast<double>(all.size()) / elapsed : 0;
  point->wall_p50_ms = Percentile(all, 0.50);
  point->wall_p99_ms = Percentile(all, 0.99);
}

void WriteServingJson(const std::string& path, const BenchWorkload& workload,
                      int queries_per_session,
                      const std::vector<SweepPoint>& sweep) {
  std::string out = "{\n";
  out += "  \"benchmark\": \"serving_throughput\",\n";
  out += StrFormat("  \"triples\": %llu,\n",
                   static_cast<unsigned long long>(workload.graph->size()));
  out += StrFormat("  \"seed\": %llu,\n",
                   static_cast<unsigned long long>(BenchSeed()));
  out += "  \"workload\": \"watdiv_basic_mix_C1_F2_L4_S3\",\n";
  out += StrFormat("  \"queries_per_session\": %d,\n", queries_per_session);
  out += StrFormat("  \"admission_cap\": %u,\n", kAdmissionCap);
  out +=
      "  \"note\": \"qps/p50/p99 are the deterministic serving model over "
      "simulated per-query times (reproducible anywhere); wall_* fields "
      "are real threads on the build machine\",\n";
  out += "  \"sweep\": [";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat(
        "    {\"sessions\": %d, \"completed\": %llu, \"qps\": %.3f, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"wall_qps\": %.3f, "
        "\"wall_p50_ms\": %.3f, \"wall_p99_ms\": %.3f}",
        p.sessions, static_cast<unsigned long long>(p.completed), p.qps,
        p.p50_ms, p.p99_ms, p.wall_qps, p.wall_p50_ms, p.wall_p99_ms);
  }
  out += "\n  ]\n}\n";
  Status written = WriteStringToFile(path, out);
  if (!written.ok()) {
    std::fprintf(stderr, "[bench] FATAL: writing %s: %s\n", path.c_str(),
                 written.ToString().c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool write_json = false;
  std::string json_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      write_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json [path]]\n", argv[0]);
      return 2;
    }
  }
  const int queries_per_session = smoke ? 6 : 40;

  BenchWorkload workload = BuildWorkload();
  core::ProstDb::Options options;
  options.cluster = ScaledCluster(workload);
  options.exec.num_threads = 4;  // Shared pool, multiplexed per query.
  auto db = core::ProstDb::LoadFromSharedGraph(workload.graph, options);
  if (!db.ok()) {
    std::fprintf(stderr, "[bench] FATAL: load: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  // Per-query simulated service times: deterministic, measured once.
  std::vector<double> service_millis;
  service_millis.reserve(workload.parsed.size());
  for (size_t i = 0; i < workload.parsed.size(); ++i) {
    auto result = (*db)->Execute(workload.parsed[i]);
    if (!result.ok()) {
      std::fprintf(stderr, "[bench] FATAL: %s: %s\n",
                   workload.queries[i].id.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    service_millis.push_back(result->simulated_millis);
  }

  testing::QueryMixSampler sampler(workload.queries);
  std::vector<SweepPoint> sweep;
  std::printf("%-10s %12s %10s %10s %12s %12s %12s\n", "sessions", "qps",
              "p50_ms", "p99_ms", "wall_qps", "wall_p50", "wall_p99");
  PrintRule(84);
  for (int sessions : kSessionSweep) {
    std::vector<std::vector<size_t>> streams;
    streams.reserve(sessions);
    for (int s = 0; s < sessions; ++s) {
      streams.push_back(
          SessionStream(sampler, s, queries_per_session));
    }
    SweepPoint point;
    point.sessions = sessions;
    SimulateServing(streams, service_millis, &point);
    RunServing(**db, workload, streams, &point);
    std::printf("%-10d %12.3f %10.3f %10.3f %12.3f %12.3f %12.3f\n",
                point.sessions, point.qps, point.p50_ms, point.p99_ms,
                point.wall_qps, point.wall_p50_ms, point.wall_p99_ms);
    sweep.push_back(point);
  }

  // The serving property the sweep must exhibit: throughput scales with
  // concurrent sessions under the admission cap.
  double base_qps = sweep.front().qps;
  for (const SweepPoint& point : sweep) {
    if (point.sessions == 8 && point.qps <= 2.0 * base_qps) {
      std::fprintf(stderr,
                   "[bench] FATAL: 8-session qps %.3f is not > 2x the "
                   "1-session baseline %.3f\n",
                   point.qps, base_qps);
      return 1;
    }
  }

  if (write_json) {
    WriteServingJson(json_path, workload, queries_per_session, sweep);
  }
  return 0;
}

}  // namespace
}  // namespace prost::bench

int main(int argc, char** argv) { return prost::bench::Main(argc, argv); }
