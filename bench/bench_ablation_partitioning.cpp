// Ablation A3: partitioning-aware join planning. All storage structures
// are subject-hash partitioned (§3.1); when the engine is allowed to
// *reuse* an existing hash partitioning (JoinOptions::reuse_partitioning,
// an extension over Spark 2.1's exchange planning for scanned relations),
// consecutive joins on the same key skip their shuffles. The bench shows
// what that buys per query class — and why §3.1's co-location argument
// matters for star-shaped workloads.

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"
#include "core/prost_db.h"

int main() {
  using namespace prost;
  bench::BenchWorkload workload = bench::BuildWorkload();
  cluster::ClusterConfig cluster = bench::ScaledCluster(workload);

  core::ProstDb::Options baseline;  // Spark 2.1 behaviour (no reuse).
  baseline.cluster = cluster;
  baseline.use_property_table = false;  // VP-only isolates the join path.
  core::ProstDb::Options aware = baseline;
  aware.join.reuse_partitioning = true;

  auto db_off = core::ProstDb::LoadFromSharedGraph(workload.graph, baseline);
  auto db_on = core::ProstDb::LoadFromSharedGraph(workload.graph, aware);
  if (!db_on.ok() || !db_off.ok()) {
    std::fprintf(stderr, "FATAL: load failed\n");
    return 1;
  }

  std::printf(
      "\nAblation A3: partitioning-aware planning (PRoST VP-only, ms)\n");
  bench::PrintRule(76);
  std::printf("%-6s | %12s | %12s | %8s | %10s | %10s\n", "Query",
              "unaware", "aware", "speedup", "MB shf off", "MB shf on");
  bench::PrintRule(76);
  std::map<char, double> off_sum, on_sum;
  for (size_t i = 0; i < workload.queries.size(); ++i) {
    auto off = (*db_off)->Execute(workload.parsed[i]);
    auto on = (*db_on)->Execute(workload.parsed[i]);
    if (!on.ok() || !off.ok()) {
      std::fprintf(stderr, "FATAL: %s failed\n",
                   workload.queries[i].id.c_str());
      return 1;
    }
    char cls = workload.queries[i].query_class;
    off_sum[cls] += off->simulated_millis;
    on_sum[cls] += on->simulated_millis;
    std::printf("%-6s | %12.0f | %12.0f | %7.2fx | %10.2f | %10.2f\n",
                workload.queries[i].id.c_str(), off->simulated_millis,
                on->simulated_millis,
                off->simulated_millis / on->simulated_millis,
                off->counters.bytes_shuffled / (1024.0 * 1024.0),
                on->counters.bytes_shuffled / (1024.0 * 1024.0));
  }
  bench::PrintRule(76);
  for (char cls : {'C', 'F', 'L', 'S'}) {
    std::printf("%-10s: unaware %0.0fms, aware %0.0fms (%.2fx)\n",
                bench::ClassName(cls), off_sum[cls], on_sum[cls],
                off_sum[cls] / on_sum[cls]);
  }
  return 0;
}
