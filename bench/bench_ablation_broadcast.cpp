// Ablation A2: Catalyst-style broadcast joins, on vs off (§3.3: "if one
// of the relations involved is small, a broadcast join will be
// performed"). With broadcast disabled, every join shuffles both sides
// and inserts a stage boundary.

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"
#include "core/prost_db.h"

int main() {
  using namespace prost;
  bench::BenchWorkload workload = bench::BuildWorkload();
  cluster::ClusterConfig cluster = bench::ScaledCluster(workload);

  core::ProstDb::Options with_broadcast;
  with_broadcast.cluster = cluster;
  // VP-only isolates the join path — mixed PRoST collapses stars into
  // single PT nodes, leaving too few joins to measure.
  with_broadcast.use_property_table = false;
  core::ProstDb::Options without_broadcast = with_broadcast;
  without_broadcast.join.allow_broadcast = false;

  auto db_on =
      core::ProstDb::LoadFromSharedGraph(workload.graph, with_broadcast);
  auto db_off =
      core::ProstDb::LoadFromSharedGraph(workload.graph, without_broadcast);
  if (!db_on.ok() || !db_off.ok()) {
    std::fprintf(stderr, "FATAL: load failed\n");
    return 1;
  }

  std::printf("\nAblation A2: broadcast joins (PRoST, ms simulated)\n");
  bench::PrintRule(76);
  std::printf("%-6s | %12s | %12s | %8s | %10s | %10s\n", "Query",
              "broadcast", "shuffle-only", "speedup", "MB shuffled",
              "MB shf off");
  bench::PrintRule(76);
  double sum_on = 0, sum_off = 0;
  for (size_t i = 0; i < workload.queries.size(); ++i) {
    auto on = (*db_on)->Execute(workload.parsed[i]);
    auto off = (*db_off)->Execute(workload.parsed[i]);
    if (!on.ok() || !off.ok()) {
      std::fprintf(stderr, "FATAL: %s failed\n",
                   workload.queries[i].id.c_str());
      return 1;
    }
    sum_on += on->simulated_millis;
    sum_off += off->simulated_millis;
    std::printf("%-6s | %12.0f | %12.0f | %7.2fx | %10.2f | %10.2f\n",
                workload.queries[i].id.c_str(), on->simulated_millis,
                off->simulated_millis,
                off->simulated_millis / on->simulated_millis,
                on->counters.bytes_shuffled / (1024.0 * 1024.0),
                off->counters.bytes_shuffled / (1024.0 * 1024.0));
  }
  bench::PrintRule(76);
  std::printf("average: broadcast %0.0fms, shuffle-only %0.0fms (%.2fx)\n",
              sum_on / 20.0, sum_off / 20.0, sum_off / sum_on);
  return 0;
}
