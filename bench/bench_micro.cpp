// Component micro-benchmarks (google-benchmark): column encodings, hash
// join strategies, Property Table scans, dictionary interning, and
// sorted-KV operations. These measure the real C++ implementation (not
// the simulated cluster clock).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "cluster/cost_model.h"
#include "columnar/encoding.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/property_table.h"
#include "core/statistics.h"
#include "core/vp_store.h"
#include "engine/operators.h"
#include "kvstore/kv_store.h"
#include "obs/trace.h"
#include "rdf/dictionary.h"
#include "watdiv/generator.h"
#include "watdiv/schema.h"

namespace {

using namespace prost;

columnar::IdVector MakeIds(size_t n, int shape, uint64_t seed) {
  Rng rng(seed);
  columnar::IdVector ids(n);
  switch (shape) {
    case 0:  // random
      for (auto& id : ids) id = rng.NextInRange(1, 1u << 20);
      break;
    case 1:  // sorted (delta-friendly)
      for (size_t i = 0; i < n; ++i) ids[i] = 10 + i * 3;
      break;
    case 2:  // runs (RLE-friendly, NULL-heavy PT column shape)
      for (size_t i = 0; i < n; ++i) {
        ids[i] = (i / 64 % 4 == 0) ? 7 : rdf::kNullTermId;
      }
      break;
  }
  return ids;
}

void BM_EncodeAdaptive(benchmark::State& state) {
  columnar::IdVector ids =
      MakeIds(static_cast<size_t>(state.range(0)), state.range(1), 11);
  for (auto _ : state) {
    ByteWriter writer;
    columnar::EncodeIdsAdaptive(ids, writer);
    benchmark::DoNotOptimize(writer.buffer().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeAdaptive)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Args({1 << 14, 2});

void BM_DecodeAdaptive(benchmark::State& state) {
  columnar::IdVector ids =
      MakeIds(static_cast<size_t>(state.range(0)), state.range(1), 11);
  ByteWriter writer;
  columnar::EncodeIdsAdaptive(ids, writer);
  for (auto _ : state) {
    ByteReader reader(writer.buffer());
    columnar::IdVector out;
    if (!columnar::DecodeIds(reader, ids.size(), &out).ok()) state.SkipWithError("decode");
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeAdaptive)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Args({1 << 14, 2});

engine::Relation MakeRelation(const std::vector<std::string>& names,
                              size_t rows, uint64_t key_space,
                              uint64_t seed) {
  Rng rng(seed);
  std::vector<engine::Row> data;
  data.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    engine::Row row;
    for (size_t c = 0; c < names.size(); ++c) {
      row.push_back(1 + rng.NextBounded(key_space));
    }
    data.push_back(std::move(row));
  }
  return engine::Relation::FromRows(names, data, 9);
}

void BM_HashJoin(benchmark::State& state) {
  const bool broadcast = state.range(1) != 0;
  size_t rows = static_cast<size_t>(state.range(0));
  engine::Relation left = MakeRelation({"a", "b"}, rows, rows / 2, 1);
  engine::Relation right = MakeRelation({"b", "c"}, rows / 8, rows / 2, 2);
  cluster::ClusterConfig config;
  engine::JoinOptions options;
  options.allow_broadcast = broadcast;
  if (broadcast) {
    options.broadcast_threshold_bytes = ~0ull >> 1;  // Force broadcast.
  }
  for (auto _ : state) {
    cluster::CostModel cost(config);
    cost.BeginStage("bench");
    auto joined = engine::HashJoin(left, right, options, cost);
    cost.EndStage();
    if (!joined.ok()) state.SkipWithError("join failed");
    benchmark::DoNotOptimize(joined->relation.TotalRows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_HashJoin)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Args({1 << 17, 0})
    ->Args({1 << 17, 1});

void BM_KvStoreSeek(benchmark::State& state) {
  kvstore::SortedKvStore store;
  std::vector<std::pair<std::string, std::string>> entries;
  Rng rng(3);
  for (size_t i = 0; i < 1u << 16; ++i) {
    entries.emplace_back(kvstore::BigEndianKey(rng.Next()), "");
  }
  store.BulkLoad(std::move(entries));
  Rng probe(4);
  for (auto _ : state) {
    auto it = store.ScanPrefix(
        kvstore::BigEndianKey(probe.Next()).substr(0, 2));
    benchmark::DoNotOptimize(it.size());
  }
}
BENCHMARK(BM_KvStoreSeek);

void BM_DictionaryIntern(benchmark::State& state) {
  std::vector<std::string> terms;
  Rng rng(5);
  for (size_t i = 0; i < 1u << 14; ++i) {
    terms.push_back("<http://example.org/entity/" +
                    std::to_string(rng.Next() % 100000) + ">");
  }
  for (auto _ : state) {
    rdf::Dictionary dictionary;
    for (const auto& term : terms) {
      benchmark::DoNotOptimize(dictionary.Intern(term));
    }
  }
  state.SetItemsProcessed(state.iterations() * terms.size());
}
BENCHMARK(BM_DictionaryIntern);

/// A shared small WatDiv database for the storage-scan benchmarks.
struct ScanFixture {
  ScanFixture() {
    watdiv::WatDivConfig config;
    config.target_triples = 60000;
    watdiv::WatDivDataset dataset = watdiv::Generate(config);
    dataset.graph.SortAndDedupe();
    stats = core::DatasetStatistics::Compute(dataset.graph);
    vp = core::VpStore::Build(dataset.graph, 9);
    pt = core::PropertyTable::Build(dataset.graph, stats, 9);
    likes = dataset.graph.dictionary().Lookup(
        "<" + watdiv::Predicates::likes() + ">");
    age = dataset.graph.dictionary().Lookup(
        "<" + watdiv::Predicates::age() + ">");
    gender = dataset.graph.dictionary().Lookup(
        "<" + watdiv::Predicates::gender() + ">");
  }
  core::DatasetStatistics stats;
  core::VpStore vp;
  core::PropertyTable pt;
  rdf::TermId likes, age, gender;
};

ScanFixture& Fixture() {
  static ScanFixture* fixture = new ScanFixture();
  return *fixture;
}

void BM_VpScan(benchmark::State& state) {
  ScanFixture& f = Fixture();
  cluster::ClusterConfig config;
  for (auto _ : state) {
    cluster::CostModel cost(config);
    cost.BeginStage("scan");
    auto relation = f.vp.Scan(f.likes, core::PatternTerm::Var("s"),
                              core::PatternTerm::Var("o"), cost);
    cost.EndStage();
    if (!relation.ok()) state.SkipWithError("scan failed");
    benchmark::DoNotOptimize(relation->TotalRows());
  }
}
BENCHMARK(BM_VpScan);

// ---------------------------------------------------------------------
// Thread-count sweep for the morsel-driven parallel operators. Each
// benchmark runs at 1/2/4/8 threads over identical inputs and reports a
// `speedup_vs_serial` counter against a cached serial baseline, so one
// run shows per-thread scaling directly. (On a single-core machine the
// counter hovers near 1; scaling shows on real multi-core hardware.)

/// Minimum-of-3 wall time of `fn` in milliseconds.
template <typename Fn>
double BestOfThreeMs(const Fn& fn) {
  double best = 1e300;
  for (int i = 0; i < 3; ++i) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedMillis());
  }
  return best;
}

void BM_ParallelHashJoin(benchmark::State& state) {
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  const size_t rows = 1 << 16;
  engine::Relation left = MakeRelation({"a", "b"}, rows, rows / 2, 1);
  engine::Relation right = MakeRelation({"b", "c"}, rows / 4, rows / 2, 2);
  cluster::ClusterConfig config;
  engine::JoinOptions options;
  // Broadcast: exercises the partitioned build + parallel probe path.
  options.broadcast_threshold_bytes = ~0ull >> 1;

  auto run_once = [&](const engine::ExecContext* exec) {
    cluster::CostModel cost(config);
    cost.BeginStage("bench");
    auto joined = engine::HashJoin(left, right, options, cost, exec);
    cost.EndStage();
    if (!joined.ok()) state.SkipWithError("join failed");
    benchmark::DoNotOptimize(joined->relation.TotalRows());
  };
  static double serial_ms = BestOfThreeMs([&] { run_once(nullptr); });

  ThreadPool pool(threads);
  engine::ExecContext exec(&pool, 4096);
  double total_ms = 0;
  for (auto _ : state) {
    WallTimer timer;
    run_once(&exec);
    total_ms += timer.ElapsedMillis();
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.counters["threads"] = threads;
  if (state.iterations() > 0 && total_ms > 0) {
    state.counters["speedup_vs_serial"] =
        serial_ms / (total_ms / static_cast<double>(state.iterations()));
  }
}
BENCHMARK(BM_ParallelHashJoin)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_ParallelVpScan(benchmark::State& state) {
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  ScanFixture& f = Fixture();
  cluster::ClusterConfig config;
  auto run_once = [&](const engine::ExecContext* exec) {
    cluster::CostModel cost(config);
    cost.BeginStage("scan");
    auto relation = f.vp.Scan(f.likes, core::PatternTerm::Var("s"),
                              core::PatternTerm::Var("o"), cost, exec);
    cost.EndStage();
    if (!relation.ok()) state.SkipWithError("scan failed");
    benchmark::DoNotOptimize(relation->TotalRows());
  };
  static double serial_ms = BestOfThreeMs([&] { run_once(nullptr); });

  ThreadPool pool(threads);
  engine::ExecContext exec(&pool, 1024);
  double total_ms = 0;
  for (auto _ : state) {
    WallTimer timer;
    run_once(&exec);
    total_ms += timer.ElapsedMillis();
  }
  state.counters["threads"] = threads;
  if (state.iterations() > 0 && total_ms > 0) {
    state.counters["speedup_vs_serial"] =
        serial_ms / (total_ms / static_cast<double>(state.iterations()));
  }
}
BENCHMARK(BM_ParallelVpScan)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_PropertyTableStarScan(benchmark::State& state) {
  ScanFixture& f = Fixture();
  cluster::ClusterConfig config;
  std::vector<core::PropertyTable::ColumnPattern> patterns = {
      {f.likes, core::PatternTerm::Var("o1")},
      {f.age, core::PatternTerm::Var("o2")},
      {f.gender, core::PatternTerm::Var("o3")},
  };
  for (auto _ : state) {
    cluster::CostModel cost(config);
    cost.BeginStage("scan");
    auto relation = f.pt.Scan(core::PatternTerm::Var("s"), patterns, cost);
    cost.EndStage();
    if (!relation.ok()) state.SkipWithError("scan failed");
    benchmark::DoNotOptimize(relation->TotalRows());
  }
}
BENCHMARK(BM_PropertyTableStarScan);

// ---------------------------------------------------------------------
// `--profiling_overhead_check`: asserts that executing with profiling
// *off* (a null QueryProfile) is not measurably slower than the same
// execution with a profile attached. A true before/after-the-subsystem
// comparison needs two binaries; within one binary, the profiling-off
// path differs from pre-instrumentation code only by null checks, so
// "off <= on * 1.02" bounds that overhead: if even the fully
// instrumented run is within 2%, the null path is too. Uses the
// BM_ParallelHashJoin workload on the shuffle path (the one that opens
// exchange spans inside the join).

int RunProfilingOverheadCheck() {
  const size_t rows = 1 << 16;
  engine::Relation left = MakeRelation({"a", "b"}, rows, rows / 2, 1);
  engine::Relation right = MakeRelation({"b", "c"}, rows / 4, rows / 2, 2);
  cluster::ClusterConfig config;
  engine::JoinOptions options;
  options.broadcast_threshold_bytes = 0;  // Force the shuffle path.
  ThreadPool pool(4);

  auto join_once = [&](const engine::ExecContext& exec) {
    cluster::CostModel cost(config);
    cost.BeginStage("bench");
    auto joined = engine::HashJoin(left, right, options, cost, &exec);
    cost.EndStage();
    if (!joined.ok()) {
      std::fprintf(stderr, "FATAL: join failed: %s\n",
                   joined.status().ToString().c_str());
      std::exit(2);
    }
    benchmark::DoNotOptimize(joined->relation.TotalRows());
  };
  auto off_ms = [&] {
    engine::ExecContext exec(&pool, 4096);
    return BestOfThreeMs([&] { join_once(exec); });
  };
  auto on_ms = [&] {
    return BestOfThreeMs([&] {
      obs::QueryProfile profile;
      engine::ExecContext exec(&pool, 4096, &profile);
      join_once(exec);
    });
  };

  off_ms();  // Warm up allocators and the thread pool.
  constexpr int kAttempts = 5;
  double off = 0;
  double on = 0;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    off = off_ms();
    on = on_ms();
    std::printf("profiling overhead attempt %d: off=%.3fms on=%.3fms\n",
                attempt + 1, off, on);
    if (off <= on * 1.02) {
      std::printf("PASS: profiling-off within 2%% (off/on = %.4f)\n",
                  off / on);
      return 0;
    }
  }
  std::fprintf(stderr,
               "FAIL: profiling-off slower than profiled run by > 2%% "
               "(off=%.3fms on=%.3fms) after %d attempts\n",
               off, on, kAttempts);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profiling_overhead_check") == 0) {
      return RunProfilingOverheadCheck();
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
