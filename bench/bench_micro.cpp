// Component micro-benchmarks (google-benchmark): column encodings, hash
// join strategies, Property Table scans, dictionary interning, and
// sorted-KV operations. These measure the real C++ implementation (not
// the simulated cluster clock).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "cluster/cost_model.h"
#include "columnar/encoding.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/property_table.h"
#include "core/statistics.h"
#include "core/vp_store.h"
#include "engine/hash_table.h"
#include "engine/kernels.h"
#include "engine/operators.h"
#include "kvstore/kv_store.h"
#include "obs/trace.h"
#include "rdf/dictionary.h"
#include "watdiv/generator.h"
#include "watdiv/schema.h"

namespace {

using namespace prost;

columnar::IdVector MakeIds(size_t n, int shape, uint64_t seed) {
  Rng rng(seed);
  columnar::IdVector ids(n);
  switch (shape) {
    case 0:  // random
      for (auto& id : ids) id = rng.NextInRange(1, 1u << 20);
      break;
    case 1:  // sorted (delta-friendly)
      for (size_t i = 0; i < n; ++i) ids[i] = 10 + i * 3;
      break;
    case 2:  // runs (RLE-friendly, NULL-heavy PT column shape)
      for (size_t i = 0; i < n; ++i) {
        ids[i] = (i / 64 % 4 == 0) ? 7 : rdf::kNullTermId;
      }
      break;
  }
  return ids;
}

void BM_EncodeAdaptive(benchmark::State& state) {
  columnar::IdVector ids =
      MakeIds(static_cast<size_t>(state.range(0)), state.range(1), 11);
  for (auto _ : state) {
    ByteWriter writer;
    columnar::EncodeIdsAdaptive(ids, writer);
    benchmark::DoNotOptimize(writer.buffer().data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeAdaptive)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Args({1 << 14, 2});

void BM_DecodeAdaptive(benchmark::State& state) {
  columnar::IdVector ids =
      MakeIds(static_cast<size_t>(state.range(0)), state.range(1), 11);
  ByteWriter writer;
  columnar::EncodeIdsAdaptive(ids, writer);
  for (auto _ : state) {
    ByteReader reader(writer.buffer());
    columnar::IdVector out;
    if (!columnar::DecodeIds(reader, ids.size(), &out).ok()) state.SkipWithError("decode");
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeAdaptive)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Args({1 << 14, 2});

engine::Relation MakeRelation(const std::vector<std::string>& names,
                              size_t rows, uint64_t key_space,
                              uint64_t seed) {
  Rng rng(seed);
  std::vector<engine::Row> data;
  data.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    engine::Row row;
    for (size_t c = 0; c < names.size(); ++c) {
      row.push_back(1 + rng.NextBounded(key_space));
    }
    data.push_back(std::move(row));
  }
  return engine::Relation::FromRows(names, data, 9);
}

void BM_HashJoin(benchmark::State& state) {
  const bool broadcast = state.range(1) != 0;
  size_t rows = static_cast<size_t>(state.range(0));
  engine::Relation left = MakeRelation({"a", "b"}, rows, rows / 2, 1);
  engine::Relation right = MakeRelation({"b", "c"}, rows / 8, rows / 2, 2);
  cluster::ClusterConfig config;
  engine::JoinOptions options;
  options.allow_broadcast = broadcast;
  if (broadcast) {
    options.broadcast_threshold_bytes = ~0ull >> 1;  // Force broadcast.
  }
  for (auto _ : state) {
    cluster::CostModel cost(config);
    cost.BeginStage("bench");
    auto joined = engine::HashJoin(left, right, options, cost);
    cost.EndStage();
    if (!joined.ok()) state.SkipWithError("join failed");
    benchmark::DoNotOptimize(joined->relation.TotalRows());
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_HashJoin)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Args({1 << 17, 0})
    ->Args({1 << 17, 1});

void BM_KvStoreSeek(benchmark::State& state) {
  kvstore::SortedKvStore store;
  std::vector<std::pair<std::string, std::string>> entries;
  Rng rng(3);
  for (size_t i = 0; i < 1u << 16; ++i) {
    entries.emplace_back(kvstore::BigEndianKey(rng.Next()), "");
  }
  store.BulkLoad(std::move(entries));
  Rng probe(4);
  for (auto _ : state) {
    auto it = store.ScanPrefix(
        kvstore::BigEndianKey(probe.Next()).substr(0, 2));
    benchmark::DoNotOptimize(it.size());
  }
}
BENCHMARK(BM_KvStoreSeek);

void BM_DictionaryIntern(benchmark::State& state) {
  std::vector<std::string> terms;
  Rng rng(5);
  for (size_t i = 0; i < 1u << 14; ++i) {
    terms.push_back("<http://example.org/entity/" +
                    std::to_string(rng.Next() % 100000) + ">");
  }
  for (auto _ : state) {
    rdf::Dictionary dictionary;
    for (const auto& term : terms) {
      benchmark::DoNotOptimize(dictionary.Intern(term));
    }
  }
  state.SetItemsProcessed(state.iterations() * terms.size());
}
BENCHMARK(BM_DictionaryIntern);

/// A shared small WatDiv database for the storage-scan benchmarks.
struct ScanFixture {
  ScanFixture() {
    watdiv::WatDivConfig config;
    config.target_triples = 60000;
    watdiv::WatDivDataset dataset = watdiv::Generate(config);
    dataset.graph.SortAndDedupe();
    stats = core::DatasetStatistics::Compute(dataset.graph);
    vp = core::VpStore::Build(dataset.graph, 9);
    pt = core::PropertyTable::Build(dataset.graph, stats, 9);
    likes = dataset.graph.dictionary().Lookup(
        "<" + watdiv::Predicates::likes() + ">");
    age = dataset.graph.dictionary().Lookup(
        "<" + watdiv::Predicates::age() + ">");
    gender = dataset.graph.dictionary().Lookup(
        "<" + watdiv::Predicates::gender() + ">");
  }
  core::DatasetStatistics stats;
  core::VpStore vp;
  core::PropertyTable pt;
  rdf::TermId likes, age, gender;
};

ScanFixture& Fixture() {
  static ScanFixture* fixture = new ScanFixture();
  return *fixture;
}

void BM_VpScan(benchmark::State& state) {
  ScanFixture& f = Fixture();
  cluster::ClusterConfig config;
  for (auto _ : state) {
    cluster::CostModel cost(config);
    cost.BeginStage("scan");
    auto relation = f.vp.Scan(f.likes, core::PatternTerm::Var("s"),
                              core::PatternTerm::Var("o"), cost);
    cost.EndStage();
    if (!relation.ok()) state.SkipWithError("scan failed");
    benchmark::DoNotOptimize(relation->TotalRows());
  }
}
BENCHMARK(BM_VpScan);

// ---------------------------------------------------------------------
// Thread-count sweep for the morsel-driven parallel operators. Each
// benchmark runs at 1/2/4/8 threads over identical inputs and reports a
// `speedup_vs_serial` counter against a cached serial baseline, so one
// run shows per-thread scaling directly. (On a single-core machine the
// counter hovers near 1; scaling shows on real multi-core hardware.)

/// Minimum-of-3 wall time of `fn` in milliseconds.
template <typename Fn>
double BestOfThreeMs(const Fn& fn) {
  double best = 1e300;
  for (int i = 0; i < 3; ++i) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedMillis());
  }
  return best;
}

void BM_ParallelHashJoin(benchmark::State& state) {
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  const size_t rows = 1 << 16;
  engine::Relation left = MakeRelation({"a", "b"}, rows, rows / 2, 1);
  engine::Relation right = MakeRelation({"b", "c"}, rows / 4, rows / 2, 2);
  cluster::ClusterConfig config;
  engine::JoinOptions options;
  // Broadcast: exercises the partitioned build + parallel probe path.
  options.broadcast_threshold_bytes = ~0ull >> 1;

  auto run_once = [&](const engine::ExecContext* exec) {
    cluster::CostModel cost(config);
    cost.BeginStage("bench");
    auto joined = engine::HashJoin(left, right, options, cost, exec);
    cost.EndStage();
    if (!joined.ok()) state.SkipWithError("join failed");
    benchmark::DoNotOptimize(joined->relation.TotalRows());
  };
  static double serial_ms = BestOfThreeMs([&] { run_once(nullptr); });

  ThreadPool pool(threads);
  engine::ExecContext exec(&pool, 4096);
  double total_ms = 0;
  for (auto _ : state) {
    WallTimer timer;
    run_once(&exec);
    total_ms += timer.ElapsedMillis();
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.counters["threads"] = threads;
  if (state.iterations() > 0 && total_ms > 0) {
    state.counters["speedup_vs_serial"] =
        serial_ms / (total_ms / static_cast<double>(state.iterations()));
  }
}
BENCHMARK(BM_ParallelHashJoin)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_ParallelVpScan(benchmark::State& state) {
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  ScanFixture& f = Fixture();
  cluster::ClusterConfig config;
  auto run_once = [&](const engine::ExecContext* exec) {
    cluster::CostModel cost(config);
    cost.BeginStage("scan");
    auto relation = f.vp.Scan(f.likes, core::PatternTerm::Var("s"),
                              core::PatternTerm::Var("o"), cost, exec);
    cost.EndStage();
    if (!relation.ok()) state.SkipWithError("scan failed");
    benchmark::DoNotOptimize(relation->TotalRows());
  };
  static double serial_ms = BestOfThreeMs([&] { run_once(nullptr); });

  ThreadPool pool(threads);
  engine::ExecContext exec(&pool, 1024);
  double total_ms = 0;
  for (auto _ : state) {
    WallTimer timer;
    run_once(&exec);
    total_ms += timer.ElapsedMillis();
  }
  state.counters["threads"] = threads;
  if (state.iterations() > 0 && total_ms > 0) {
    state.counters["speedup_vs_serial"] =
        serial_ms / (total_ms / static_cast<double>(state.iterations()));
  }
}
BENCHMARK(BM_ParallelVpScan)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime();

void BM_PropertyTableStarScan(benchmark::State& state) {
  ScanFixture& f = Fixture();
  cluster::ClusterConfig config;
  std::vector<core::PropertyTable::ColumnPattern> patterns = {
      {f.likes, core::PatternTerm::Var("o1")},
      {f.age, core::PatternTerm::Var("o2")},
      {f.gender, core::PatternTerm::Var("o3")},
  };
  for (auto _ : state) {
    cluster::CostModel cost(config);
    cost.BeginStage("scan");
    auto relation = f.pt.Scan(core::PatternTerm::Var("s"), patterns, cost);
    cost.EndStage();
    if (!relation.ok()) state.SkipWithError("scan failed");
    benchmark::DoNotOptimize(relation->TotalRows());
  }
}
BENCHMARK(BM_PropertyTableStarScan);

// ---------------------------------------------------------------------
// Vectorized-kernel before/after pairs. Each "baseline" is an in-bench
// replica of the row-at-a-time / node-based loop the kernels replaced
// (unordered_map build index, branchy per-row filter, row-major
// materialization), run over identical inputs as the kernel path. The
// vectorized benchmarks report a `speedup_vs_baseline` counter; the
// `--write_kernels_json <path>` mode records both sides in
// BENCH_kernels.json.

/// Pre-mixed join-key hashes with duplicates (bounded key space), the
/// shape KeyHash feeds the build index.
std::vector<uint64_t> MakeJoinHashes(size_t n, uint64_t key_space,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> hashes(n);
  for (auto& h : hashes) h = Mix64(1 + rng.NextBounded(key_space));
  return hashes;
}

/// Build+probe with the node-based index HashJoin used before the flat
/// table: unordered_map from hash to a per-key row vector.
uint64_t UnorderedMapBuildProbe(const std::vector<uint64_t>& build,
                                const std::vector<uint64_t>& probe) {
  std::unordered_map<uint64_t, std::vector<uint32_t>> index;
  index.reserve(build.size());
  for (uint32_t r = 0; r < build.size(); ++r) {
    index[build[r]].push_back(r);
  }
  uint64_t sum = 0;
  for (uint64_t h : probe) {
    auto it = index.find(h);
    if (it == index.end()) continue;
    for (uint32_t r : it->second) sum += r;
  }
  return sum;
}

/// The same build+probe on the flat open-addressing table.
uint64_t FlatTableBuildProbe(engine::FlatHashTable& table,
                             const std::vector<uint64_t>& build,
                             const std::vector<uint64_t>& probe) {
  table.Build(build.data(), build.size());
  uint64_t sum = 0;
  for (uint64_t h : probe) {
    engine::FlatHashTable::Range range = table.Lookup(h);
    for (const uint32_t* r = range.begin; r != range.end; ++r) sum += *r;
  }
  return sum;
}

constexpr size_t kKernelBenchRows = 1 << 20;

void BM_UnorderedMapBaseline(benchmark::State& state) {
  const size_t n = kKernelBenchRows;
  auto build = MakeJoinHashes(n, n / 2, 21);
  auto probe = MakeJoinHashes(n, n / 2, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(UnorderedMapBuildProbe(build, probe));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_UnorderedMapBaseline);

void BM_FlatHashTable(benchmark::State& state) {
  const size_t n = kKernelBenchRows;
  auto build = MakeJoinHashes(n, n / 2, 21);
  auto probe = MakeJoinHashes(n, n / 2, 22);
  double baseline_ms =
      BestOfThreeMs([&] { UnorderedMapBuildProbe(build, probe); });
  engine::FlatHashTable table;  // Reused — the per-morsel scratch shape.
  double total_ms = 0;
  for (auto _ : state) {
    WallTimer timer;
    benchmark::DoNotOptimize(FlatTableBuildProbe(table, build, probe));
    total_ms += timer.ElapsedMillis();
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
  if (state.iterations() > 0 && total_ms > 0) {
    state.counters["speedup_vs_baseline"] =
        baseline_ms / (total_ms / static_cast<double>(state.iterations()));
  }
}
BENCHMARK(BM_FlatHashTable);

/// A two-column chunk whose first column is a 50/50 coin — the worst
/// case for the branchy per-row filter the kernel replaced.
engine::RelationChunk MakeFilterChunk(size_t n, uint64_t seed) {
  Rng rng(seed);
  engine::RelationChunk chunk;
  chunk.columns.resize(2);
  chunk.columns[0].resize(n);
  chunk.columns[1].resize(n);
  for (size_t r = 0; r < n; ++r) {
    chunk.columns[0][r] = 1 + rng.NextBounded(2);
    chunk.columns[1][r] = rng.Next();
  }
  return chunk;
}

/// The old Filter operator inner loop: per row, test then push the row
/// across every output column.
uint64_t ScalarFilter(const engine::RelationChunk& chunk, rdf::TermId value,
                      engine::RelationChunk& out) {
  for (auto& column : out.columns) column.clear();
  const columnar::IdVector& pred = chunk.columns[0];
  for (size_t r = 0; r < pred.size(); ++r) {
    if (pred[r] == value) {
      for (size_t c = 0; c < chunk.columns.size(); ++c) {
        out.columns[c].push_back(chunk.columns[c][r]);
      }
    }
  }
  return out.columns[0].size();
}

/// The kernel path: branch-free selection, then one gather per column.
uint64_t VectorizedFilter(const engine::RelationChunk& chunk,
                          rdf::TermId value, std::vector<uint32_t>& sel,
                          engine::RelationChunk& out) {
  for (auto& column : out.columns) column.clear();
  sel.clear();
  engine::kernels::Filter(chunk.columns[0], value, 0,
                          chunk.columns[0].size(), sel);
  for (size_t c = 0; c < chunk.columns.size(); ++c) {
    engine::kernels::Gather(chunk.columns[c], sel, out.columns[c]);
  }
  return sel.size();
}

void BM_VectorizedFilter(benchmark::State& state) {
  engine::RelationChunk chunk = MakeFilterChunk(kKernelBenchRows, 31);
  engine::RelationChunk out;
  out.columns.resize(chunk.columns.size());
  double baseline_ms = BestOfThreeMs([&] { ScalarFilter(chunk, 1, out); });
  std::vector<uint32_t> sel;
  double total_ms = 0;
  for (auto _ : state) {
    WallTimer timer;
    benchmark::DoNotOptimize(VectorizedFilter(chunk, 1, sel, out));
    total_ms += timer.ElapsedMillis();
  }
  state.SetItemsProcessed(state.iterations() * kKernelBenchRows);
  if (state.iterations() > 0 && total_ms > 0) {
    state.counters["speedup_vs_baseline"] =
        baseline_ms / (total_ms / static_cast<double>(state.iterations()));
  }
}
BENCHMARK(BM_VectorizedFilter);

/// Materialization inputs: a four-column chunk and an ascending ~50%
/// selection — the join-output shape.
struct GatherInputs {
  engine::RelationChunk chunk;
  std::vector<uint32_t> sel;
};

GatherInputs MakeGatherInputs(size_t n, uint64_t seed) {
  Rng rng(seed);
  GatherInputs in;
  in.chunk.columns.resize(4);
  for (auto& column : in.chunk.columns) {
    column.resize(n);
    for (auto& id : column) id = rng.Next();
  }
  in.sel.reserve(n / 2);
  for (size_t r = 0; r < n; ++r) {
    if (rng.NextBernoulli(0.5)) in.sel.push_back(static_cast<uint32_t>(r));
  }
  return in;
}

/// Row-major materialization: each selected row pushed across all
/// columns (the pre-kernel emit loop). Output vectors start cold — each
/// query materializes into fresh columns, so the baseline pays the
/// reallocation churn the unreserved push_back loop really paid.
uint64_t RowMajorMaterialize(const GatherInputs& in,
                             engine::RelationChunk& out) {
  for (auto& column : out.columns) columnar::IdVector().swap(column);
  for (uint32_t r : in.sel) {
    for (size_t c = 0; c < in.chunk.columns.size(); ++c) {
      out.columns[c].push_back(in.chunk.columns[c][r]);
    }
  }
  return out.columns[0].size();
}

uint64_t ColumnMajorGather(const GatherInputs& in,
                           engine::RelationChunk& out) {
  for (auto& column : out.columns) columnar::IdVector().swap(column);
  for (size_t c = 0; c < in.chunk.columns.size(); ++c) {
    engine::kernels::Gather(in.chunk.columns[c], in.sel, out.columns[c]);
  }
  return out.columns[0].size();
}

void BM_Gather(benchmark::State& state) {
  GatherInputs in = MakeGatherInputs(kKernelBenchRows, 41);
  engine::RelationChunk out;
  out.columns.resize(in.chunk.columns.size());
  double baseline_ms = BestOfThreeMs([&] { RowMajorMaterialize(in, out); });
  double total_ms = 0;
  for (auto _ : state) {
    WallTimer timer;
    benchmark::DoNotOptimize(ColumnMajorGather(in, out));
    total_ms += timer.ElapsedMillis();
  }
  state.SetItemsProcessed(state.iterations() * in.sel.size());
  if (state.iterations() > 0 && total_ms > 0) {
    state.counters["speedup_vs_baseline"] =
        baseline_ms / (total_ms / static_cast<double>(state.iterations()));
  }
}
BENCHMARK(BM_Gather);

/// Minimum-of-N wall time in milliseconds (JSON mode uses more repeats
/// than the counter plumbing above for stabler checked-in numbers).
template <typename Fn>
double BestOfMs(int repeats, const Fn& fn) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    WallTimer timer;
    fn();
    best = std::min(best, timer.ElapsedMillis());
  }
  return best;
}

/// `--write_kernels_json <path>`: measures every before/after kernel
/// pair and writes the BENCH_kernels.json feed.
int RunWriteKernelsJson(const std::string& path) {
  constexpr int kRepeats = 7;
  std::vector<bench::KernelRun> runs;

  {
    const size_t n = kKernelBenchRows;
    auto build = MakeJoinHashes(n, n / 2, 21);
    auto probe = MakeJoinHashes(n, n / 2, 22);
    engine::FlatHashTable table;
    bench::KernelRun run;
    run.kernel = "hash_join_build_probe";
    run.baseline = "std_unordered_map";
    run.rows = 2 * n;
    run.baseline_millis =
        BestOfMs(kRepeats, [&] { UnorderedMapBuildProbe(build, probe); });
    run.vectorized_millis = BestOfMs(
        kRepeats, [&] { FlatTableBuildProbe(table, build, probe); });
    runs.push_back(run);
  }
  {
    engine::RelationChunk chunk = MakeFilterChunk(kKernelBenchRows, 31);
    engine::RelationChunk out;
    out.columns.resize(chunk.columns.size());
    std::vector<uint32_t> sel;
    bench::KernelRun run;
    run.kernel = "filter";
    run.baseline = "row_at_a_time_branchy";
    run.rows = kKernelBenchRows;
    run.baseline_millis =
        BestOfMs(kRepeats, [&] { ScalarFilter(chunk, 1, out); });
    run.vectorized_millis =
        BestOfMs(kRepeats, [&] { VectorizedFilter(chunk, 1, sel, out); });
    runs.push_back(run);
  }
  {
    GatherInputs in = MakeGatherInputs(kKernelBenchRows, 41);
    engine::RelationChunk out;
    out.columns.resize(in.chunk.columns.size());
    bench::KernelRun run;
    run.kernel = "gather";
    run.baseline = "row_major_push_back";
    run.rows = in.sel.size();
    run.baseline_millis =
        BestOfMs(kRepeats, [&] { RowMajorMaterialize(in, out); });
    run.vectorized_millis =
        BestOfMs(kRepeats, [&] { ColumnMajorGather(in, out); });
    runs.push_back(run);
  }

  for (const bench::KernelRun& run : runs) {
    std::printf("%-22s vs %-22s: baseline %8.3fms  vectorized %8.3fms  "
                "speedup %.2fx\n",
                run.kernel.c_str(), run.baseline.c_str(),
                run.baseline_millis, run.vectorized_millis,
                run.baseline_millis / run.vectorized_millis);
  }
  bench::WriteBenchJson(path, "kernels", runs);
  return 0;
}

// ---------------------------------------------------------------------
// `--profiling_overhead_check`: asserts that executing with profiling
// *off* (a null QueryProfile) is not measurably slower than the same
// execution with a profile attached. A true before/after-the-subsystem
// comparison needs two binaries; within one binary, the profiling-off
// path differs from pre-instrumentation code only by null checks, so
// "off <= on * 1.02" bounds that overhead: if even the fully
// instrumented run is within 2%, the null path is too. Uses the
// BM_ParallelHashJoin workload on the shuffle path (the one that opens
// exchange spans inside the join).

int RunProfilingOverheadCheck() {
  const size_t rows = 1 << 16;
  engine::Relation left = MakeRelation({"a", "b"}, rows, rows / 2, 1);
  engine::Relation right = MakeRelation({"b", "c"}, rows / 4, rows / 2, 2);
  cluster::ClusterConfig config;
  engine::JoinOptions options;
  options.broadcast_threshold_bytes = 0;  // Force the shuffle path.
  ThreadPool pool(4);

  auto join_once = [&](const engine::ExecContext& exec) {
    cluster::CostModel cost(config);
    cost.BeginStage("bench");
    auto joined = engine::HashJoin(left, right, options, cost, &exec);
    cost.EndStage();
    if (!joined.ok()) {
      std::fprintf(stderr, "FATAL: join failed: %s\n",
                   joined.status().ToString().c_str());
      std::exit(2);
    }
    benchmark::DoNotOptimize(joined->relation.TotalRows());
  };
  auto off_ms = [&] {
    engine::ExecContext exec(&pool, 4096);
    return BestOfThreeMs([&] { join_once(exec); });
  };
  auto on_ms = [&] {
    return BestOfThreeMs([&] {
      obs::QueryProfile profile;
      engine::ExecContext exec(&pool, 4096, &profile);
      join_once(exec);
    });
  };

  off_ms();  // Warm up allocators and the thread pool.
  constexpr int kAttempts = 5;
  double off = 0;
  double on = 0;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    off = off_ms();
    on = on_ms();
    std::printf("profiling overhead attempt %d: off=%.3fms on=%.3fms\n",
                attempt + 1, off, on);
    if (off <= on * 1.02) {
      std::printf("PASS: profiling-off within 2%% (off/on = %.4f)\n",
                  off / on);
      return 0;
    }
  }
  std::fprintf(stderr,
               "FAIL: profiling-off slower than profiled run by > 2%% "
               "(off=%.3fms on=%.3fms) after %d attempts\n",
               off, on, kAttempts);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profiling_overhead_check") == 0) {
      return RunProfilingOverheadCheck();
    }
    if (std::strcmp(argv[i], "--write_kernels_json") == 0 &&
        i + 1 < argc) {
      return RunWriteKernelsJson(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
