// Reproduces Figure 2 of the paper: per-query time for WatDiv with only
// Vertical Partitioning versus the mixed VP + Property Table strategy.
//
// Expected shape: the mixed strategy wins clearly on Star (S), Complex
// (C) and Snowflake (F) queries; Linear (L) queries are close to equal,
// because their patterns mostly have distinct subjects and translate to
// VP nodes either way.
//
// A third run — the mixed strategy with every optimizer pass disabled —
// isolates what the plan rewrites (early projection above all: fewer
// shuffled bytes) contribute on top of the storage choice. Results are
// bit-identical across the two mixed runs; only the simulated cost and
// the per-query shuffled bytes differ.
//
// Pass --json <path> to additionally emit per-query machine-readable
// results including shuffled bytes (the BENCH_fig2.json trajectory
// file).

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/str_util.h"

int main(int argc, char** argv) {
  using namespace prost;
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  bench::BenchWorkload workload = bench::BuildWorkload();
  cluster::ClusterConfig cluster = bench::ScaledCluster(workload);

  auto vp_only = baselines::MakeProstVpOnly(workload.graph, cluster);
  auto mixed = baselines::MakeProst(workload.graph, cluster);
  auto no_opt = baselines::MakeProstNoOptimizer(workload.graph, cluster);
  if (!vp_only.ok() || !mixed.ok() || !no_opt.ok()) {
    std::fprintf(stderr, "FATAL: system build failed\n");
    return 1;
  }
  bench::SystemRun vp_run = bench::RunQuerySetDetailed(**vp_only, workload);
  vp_run.system = "PRoST (VP only)";
  bench::SystemRun mixed_run = bench::RunQuerySetDetailed(**mixed, workload);
  mixed_run.system = "PRoST (VP + PT)";
  bench::SystemRun no_opt_run =
      bench::RunQuerySetDetailed(**no_opt, workload);
  no_opt_run.system = "PRoST (VP + PT, no opt passes)";
  std::map<std::string, double> vp_ms;
  std::map<std::string, double> mixed_ms;
  std::map<std::string, const bench::QueryRun*> mixed_by_id;
  std::map<std::string, const bench::QueryRun*> no_opt_by_id;
  for (const bench::QueryRun& q : vp_run.queries) {
    vp_ms[q.query_id] = q.simulated_millis;
  }
  for (const bench::QueryRun& q : mixed_run.queries) {
    mixed_ms[q.query_id] = q.simulated_millis;
    mixed_by_id[q.query_id] = &q;
  }
  for (const bench::QueryRun& q : no_opt_run.queries) {
    no_opt_by_id[q.query_id] = &q;
  }

  std::printf("\nFigure 2: query time, VP only vs mixed strategy (ms, simulated)\n");
  bench::PrintRule(74);
  std::printf("%-6s | %12s | %12s | %8s | %12s | %8s\n", "Query", "VP only",
              "VP + PT", "speedup", "no-opt", "MB saved");
  bench::PrintRule(74);
  uint64_t shuffled_saved = 0;
  for (const watdiv::WatDivQuery& q : workload.queries) {
    double vp = vp_ms.at(q.id);
    double mx = mixed_ms.at(q.id);
    const bench::QueryRun& opt = *mixed_by_id.at(q.id);
    const bench::QueryRun& raw = *no_opt_by_id.at(q.id);
    // The optimizer's contribution on the mixed plan: the shuffle bytes
    // early projection removed.
    uint64_t saved = raw.counters.bytes_shuffled - opt.counters.bytes_shuffled;
    shuffled_saved += saved;
    std::printf("%-6s | %12s | %12s | %7.2fx | %12s | %8.2f\n", q.id.c_str(),
                WithThousands(static_cast<uint64_t>(vp)).c_str(),
                WithThousands(static_cast<uint64_t>(mx)).c_str(), vp / mx,
                WithThousands(
                    static_cast<uint64_t>(raw.simulated_millis)).c_str(),
                saved / (1024.0 * 1024.0));
  }
  bench::PrintRule(74);
  std::printf("optimizer passes: %.2f MB of shuffle removed across the set\n",
              shuffled_saved / (1024.0 * 1024.0));
  std::map<char, double> vp_avg = bench::ClassAverages(vp_ms, workload.queries);
  std::map<char, double> mx_avg =
      bench::ClassAverages(mixed_ms, workload.queries);
  for (char cls : {'C', 'F', 'L', 'S'}) {
    std::printf("%-10s avg: VP %9.0fms   mixed %9.0fms   (%.2fx)\n",
                bench::ClassName(cls), vp_avg.at(cls), mx_avg.at(cls),
                vp_avg.at(cls) / mx_avg.at(cls));
  }
  std::printf(
      "\nExpected shape (paper): mixed clearly faster on S/C/F, ~equal on L.\n");
  if (!json_path.empty()) {
    bench::WriteBenchJson(json_path, "fig2_vp_vs_mixed", workload,
                          {vp_run, mixed_run, no_opt_run});
  }
  return 0;
}
