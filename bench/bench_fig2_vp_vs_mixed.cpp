// Reproduces Figure 2 of the paper: per-query time for WatDiv with only
// Vertical Partitioning versus the mixed VP + Property Table strategy.
//
// Expected shape: the mixed strategy wins clearly on Star (S), Complex
// (C) and Snowflake (F) queries; Linear (L) queries are close to equal,
// because their patterns mostly have distinct subjects and translate to
// VP nodes either way.

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"

int main() {
  using namespace prost;
  bench::BenchWorkload workload = bench::BuildWorkload();
  cluster::ClusterConfig cluster = bench::ScaledCluster(workload);

  auto vp_only = baselines::MakeProstVpOnly(workload.graph, cluster);
  auto mixed = baselines::MakeProst(workload.graph, cluster);
  if (!vp_only.ok() || !mixed.ok()) {
    std::fprintf(stderr, "FATAL: system build failed\n");
    return 1;
  }
  std::map<std::string, double> vp_ms =
      bench::RunQuerySet(**vp_only, workload);
  std::map<std::string, double> mixed_ms =
      bench::RunQuerySet(**mixed, workload);

  std::printf("\nFigure 2: query time, VP only vs mixed strategy (ms, simulated)\n");
  bench::PrintRule(56);
  std::printf("%-6s | %12s | %12s | %8s\n", "Query", "VP only", "VP + PT",
              "speedup");
  bench::PrintRule(56);
  for (const watdiv::WatDivQuery& q : workload.queries) {
    double vp = vp_ms.at(q.id);
    double mx = mixed_ms.at(q.id);
    std::printf("%-6s | %12s | %12s | %7.2fx\n", q.id.c_str(),
                WithThousands(static_cast<uint64_t>(vp)).c_str(),
                WithThousands(static_cast<uint64_t>(mx)).c_str(), vp / mx);
  }
  bench::PrintRule(56);
  std::map<char, double> vp_avg = bench::ClassAverages(vp_ms, workload.queries);
  std::map<char, double> mx_avg =
      bench::ClassAverages(mixed_ms, workload.queries);
  for (char cls : {'C', 'F', 'L', 'S'}) {
    std::printf("%-10s avg: VP %9.0fms   mixed %9.0fms   (%.2fx)\n",
                bench::ClassName(cls), vp_avg.at(cls), mx_avg.at(cls),
                vp_avg.at(cls) / mx_avg.at(cls));
  }
  std::printf(
      "\nExpected shape (paper): mixed clearly faster on S/C/F, ~equal on L.\n");
  return 0;
}
