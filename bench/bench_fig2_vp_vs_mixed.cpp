// Reproduces Figure 2 of the paper: per-query time for WatDiv with only
// Vertical Partitioning versus the mixed VP + Property Table strategy.
//
// Expected shape: the mixed strategy wins clearly on Star (S), Complex
// (C) and Snowflake (F) queries; Linear (L) queries are close to equal,
// because their patterns mostly have distinct subjects and translate to
// VP nodes either way.
//
// Two ablation runs ride along:
//   - the mixed strategy with every optimizer pass disabled, isolating
//     what the plan rewrites (early projection above all: fewer shuffled
//     bytes) contribute on top of the storage choice; and
//   - VP-only with cost-based join ordering disabled (the translator's
//     §3.3 heuristic order), isolating what DP enumeration over real
//     statistics buys. VP-only is the mode where stars open into
//     reorderable scans, so the ordering delta is measured there; the
//     per-query shuffled-bytes delta is the headline (C2's star-join
//     blowup is the worst offender the statistics exist to fix).
// Results are bit-identical across ablation pairs; only the simulated
// cost and the per-query counters differ.
//
// Pass --json <path> to additionally emit per-query machine-readable
// results including shuffled bytes (the BENCH_fig2.json trajectory
// file). Pass --smoke to enforce the cost-based ordering guards (never
// worse than the heuristic order on any query, and a >= 25% C2 shuffle
// reduction) and exit nonzero on violation — the bench_fig2.smoke ctest.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/str_util.h"

int main(int argc, char** argv) {
  using namespace prost;
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::BenchWorkload workload = bench::BuildWorkload();
  cluster::ClusterConfig cluster = bench::ScaledCluster(workload);

  auto vp_only = baselines::MakeProstVpOnly(workload.graph, cluster);
  auto mixed = baselines::MakeProst(workload.graph, cluster);
  auto no_opt = baselines::MakeProstNoOptimizer(workload.graph, cluster);
  auto vp_heuristic =
      baselines::MakeProstVpOnlyHeuristicOrder(workload.graph, cluster);
  if (!vp_only.ok() || !mixed.ok() || !no_opt.ok() || !vp_heuristic.ok()) {
    std::fprintf(stderr, "FATAL: system build failed\n");
    return 1;
  }
  // Fifth run: the mixed strategy paging its storage at a quarter of
  // the columnar footprint (DESIGN.md §15). Results are bit-identical;
  // the JSON's bytes_scanned column shows what zone-map/bloom skipping
  // saved (bench_paged is the dedicated beyond-RAM harness).
  auto paged = baselines::MakeProstPaged(
      workload.graph, cluster, (*mixed)->load_report().storage_bytes / 4,
      /*row_group_rows=*/512);
  if (!paged.ok()) {
    std::fprintf(stderr, "FATAL: paged system build failed\n");
    return 1;
  }
  bench::SystemRun vp_run = bench::RunQuerySetDetailed(**vp_only, workload);
  vp_run.system = "PRoST (VP only)";
  bench::SystemRun mixed_run = bench::RunQuerySetDetailed(**mixed, workload);
  mixed_run.system = "PRoST (VP + PT)";
  bench::SystemRun no_opt_run =
      bench::RunQuerySetDetailed(**no_opt, workload);
  no_opt_run.system = "PRoST (VP + PT, no opt passes)";
  bench::SystemRun vp_heur_run =
      bench::RunQuerySetDetailed(**vp_heuristic, workload);
  vp_heur_run.system = "PRoST (VP only, heuristic order)";
  bench::SystemRun paged_run = bench::RunQuerySetDetailed(**paged, workload);
  paged_run.system = "PRoST (VP + PT, paged 1/4 budget)";
  std::map<std::string, double> vp_ms;
  std::map<std::string, double> mixed_ms;
  std::map<std::string, const bench::QueryRun*> vp_by_id;
  std::map<std::string, const bench::QueryRun*> mixed_by_id;
  std::map<std::string, const bench::QueryRun*> no_opt_by_id;
  std::map<std::string, const bench::QueryRun*> vp_heur_by_id;
  for (const bench::QueryRun& q : vp_run.queries) {
    vp_ms[q.query_id] = q.simulated_millis;
    vp_by_id[q.query_id] = &q;
  }
  for (const bench::QueryRun& q : mixed_run.queries) {
    mixed_ms[q.query_id] = q.simulated_millis;
    mixed_by_id[q.query_id] = &q;
  }
  for (const bench::QueryRun& q : no_opt_run.queries) {
    no_opt_by_id[q.query_id] = &q;
  }
  for (const bench::QueryRun& q : vp_heur_run.queries) {
    vp_heur_by_id[q.query_id] = &q;
  }

  std::printf("\nFigure 2: query time, VP only vs mixed strategy (ms, simulated)\n");
  bench::PrintRule(74);
  std::printf("%-6s | %12s | %12s | %8s | %12s | %8s\n", "Query", "VP only",
              "VP + PT", "speedup", "no-opt", "MB saved");
  bench::PrintRule(74);
  uint64_t shuffled_saved = 0;
  for (const watdiv::WatDivQuery& q : workload.queries) {
    double vp = vp_ms.at(q.id);
    double mx = mixed_ms.at(q.id);
    const bench::QueryRun& opt = *mixed_by_id.at(q.id);
    const bench::QueryRun& raw = *no_opt_by_id.at(q.id);
    // The optimizer's contribution on the mixed plan: the shuffle bytes
    // early projection removed.
    uint64_t saved = raw.counters.bytes_shuffled - opt.counters.bytes_shuffled;
    shuffled_saved += saved;
    std::printf("%-6s | %12s | %12s | %7.2fx | %12s | %8.2f\n", q.id.c_str(),
                WithThousands(static_cast<uint64_t>(vp)).c_str(),
                WithThousands(static_cast<uint64_t>(mx)).c_str(), vp / mx,
                WithThousands(
                    static_cast<uint64_t>(raw.simulated_millis)).c_str(),
                saved / (1024.0 * 1024.0));
  }
  bench::PrintRule(74);
  std::printf("optimizer passes: %.2f MB of shuffle removed across the set\n",
              shuffled_saved / (1024.0 * 1024.0));
  std::map<char, double> vp_avg = bench::ClassAverages(vp_ms, workload.queries);
  std::map<char, double> mx_avg =
      bench::ClassAverages(mixed_ms, workload.queries);
  for (char cls : {'C', 'F', 'L', 'S'}) {
    std::printf("%-10s avg: VP %9.0fms   mixed %9.0fms   (%.2fx)\n",
                bench::ClassName(cls), vp_avg.at(cls), mx_avg.at(cls),
                vp_avg.at(cls) / mx_avg.at(cls));
  }
  std::printf(
      "\nExpected shape (paper): mixed clearly faster on S/C/F, ~equal on L.\n");

  // Cost-based join ordering vs the heuristic order, VP-only on both
  // sides. Positive shuffle delta = bytes the DP order avoided moving.
  std::printf(
      "\nJoin-ordering ablation: VP only, cost-based vs heuristic order\n");
  bench::PrintRule(74);
  std::printf("%-6s | %12s | %12s | %8s | %14s\n", "Query", "cost-based",
              "heuristic", "speedup", "shuffle saved");
  bench::PrintRule(74);
  int ordering_losses = 0;
  int64_t total_shuffle_delta = 0;
  double c2_reduction = 0.0;
  for (const watdiv::WatDivQuery& q : workload.queries) {
    const bench::QueryRun& cost_based = *vp_by_id.at(q.id);
    const bench::QueryRun& heur = *vp_heur_by_id.at(q.id);
    const int64_t delta =
        static_cast<int64_t>(heur.counters.bytes_shuffled) -
        static_cast<int64_t>(cost_based.counters.bytes_shuffled);
    total_shuffle_delta += delta;
    if (cost_based.simulated_millis > heur.simulated_millis + 1e-9) {
      ++ordering_losses;
      std::fprintf(stderr,
                   "FATAL: cost-based order loses to the heuristic on %s "
                   "(%.3f ms vs %.3f ms)\n",
                   q.id.c_str(), cost_based.simulated_millis,
                   heur.simulated_millis);
    }
    if (q.id == "C2" && heur.counters.bytes_shuffled > 0) {
      c2_reduction = static_cast<double>(delta) /
                     static_cast<double>(heur.counters.bytes_shuffled);
    }
    std::printf("%-6s | %12s | %12s | %7.2fx | %11.2f KB\n", q.id.c_str(),
                WithThousands(
                    static_cast<uint64_t>(cost_based.simulated_millis)).c_str(),
                WithThousands(
                    static_cast<uint64_t>(heur.simulated_millis)).c_str(),
                heur.simulated_millis / cost_based.simulated_millis,
                delta / 1024.0);
  }
  bench::PrintRule(74);
  std::printf(
      "cost-based ordering: %.2f MB of shuffle removed across the set, "
      "C2 shuffle down %.1f%%\n",
      total_shuffle_delta / (1024.0 * 1024.0), 100.0 * c2_reduction);

  if (!json_path.empty()) {
    bench::WriteBenchJson(json_path, "fig2_vp_vs_mixed", workload,
                          {vp_run, mixed_run, no_opt_run, vp_heur_run,
                           paged_run});
  }
  if (smoke) {
    if (ordering_losses > 0) {
      std::fprintf(stderr, "FATAL: %d ordering regression(s)\n",
                   ordering_losses);
      return 1;
    }
    if (c2_reduction < 0.25) {
      std::fprintf(stderr,
                   "FATAL: C2 shuffle reduction %.1f%% below the 25%% bar\n",
                   100.0 * c2_reduction);
      return 1;
    }
    std::printf("smoke: ordering guards hold\n");
  }
  return ordering_losses > 0 ? 1 : 0;
}
