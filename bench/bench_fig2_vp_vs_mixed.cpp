// Reproduces Figure 2 of the paper: per-query time for WatDiv with only
// Vertical Partitioning versus the mixed VP + Property Table strategy.
//
// Expected shape: the mixed strategy wins clearly on Star (S), Complex
// (C) and Snowflake (F) queries; Linear (L) queries are close to equal,
// because their patterns mostly have distinct subjects and translate to
// VP nodes either way.
//
// Pass --json <path> to additionally emit per-query machine-readable
// results (the BENCH_fig2.json trajectory file).

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/str_util.h"

int main(int argc, char** argv) {
  using namespace prost;
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  bench::BenchWorkload workload = bench::BuildWorkload();
  cluster::ClusterConfig cluster = bench::ScaledCluster(workload);

  auto vp_only = baselines::MakeProstVpOnly(workload.graph, cluster);
  auto mixed = baselines::MakeProst(workload.graph, cluster);
  if (!vp_only.ok() || !mixed.ok()) {
    std::fprintf(stderr, "FATAL: system build failed\n");
    return 1;
  }
  bench::SystemRun vp_run = bench::RunQuerySetDetailed(**vp_only, workload);
  vp_run.system = "PRoST (VP only)";
  bench::SystemRun mixed_run = bench::RunQuerySetDetailed(**mixed, workload);
  mixed_run.system = "PRoST (VP + PT)";
  std::map<std::string, double> vp_ms;
  std::map<std::string, double> mixed_ms;
  for (const bench::QueryRun& q : vp_run.queries) {
    vp_ms[q.query_id] = q.simulated_millis;
  }
  for (const bench::QueryRun& q : mixed_run.queries) {
    mixed_ms[q.query_id] = q.simulated_millis;
  }

  std::printf("\nFigure 2: query time, VP only vs mixed strategy (ms, simulated)\n");
  bench::PrintRule(56);
  std::printf("%-6s | %12s | %12s | %8s\n", "Query", "VP only", "VP + PT",
              "speedup");
  bench::PrintRule(56);
  for (const watdiv::WatDivQuery& q : workload.queries) {
    double vp = vp_ms.at(q.id);
    double mx = mixed_ms.at(q.id);
    std::printf("%-6s | %12s | %12s | %7.2fx\n", q.id.c_str(),
                WithThousands(static_cast<uint64_t>(vp)).c_str(),
                WithThousands(static_cast<uint64_t>(mx)).c_str(), vp / mx);
  }
  bench::PrintRule(56);
  std::map<char, double> vp_avg = bench::ClassAverages(vp_ms, workload.queries);
  std::map<char, double> mx_avg =
      bench::ClassAverages(mixed_ms, workload.queries);
  for (char cls : {'C', 'F', 'L', 'S'}) {
    std::printf("%-10s avg: VP %9.0fms   mixed %9.0fms   (%.2fx)\n",
                bench::ClassName(cls), vp_avg.at(cls), mx_avg.at(cls),
                vp_avg.at(cls) / mx_avg.at(cls));
  }
  std::printf(
      "\nExpected shape (paper): mixed clearly faster on S/C/F, ~equal on L.\n");
  if (!json_path.empty()) {
    bench::WriteBenchJson(json_path, "fig2_vp_vs_mixed", workload,
                          {vp_run, mixed_run});
  }
  return 0;
}
