// Closed-loop throughput bench for the SPARQL protocol endpoint
// (src/net/): N HTTP connections (each a net::Client on its own thread)
// issue mixed WatDiv basic queries back-to-back against one prost
// endpoint — real sockets, real HTTP parsing, real result serialization
// — sweeping N over {1, 4, 8, 16}.
//
// Two measurements per sweep point, deliberately separated (same split
// as bench_serving):
//
//  * Deterministic serving model (the headline `qps` / `p50_ms` /
//    `p99_ms`): a discrete-event simulation of the same closed loop over
//    each query's *simulated* execution time under the endpoint's
//    admission cap. Reproducible on any machine at any core count; this
//    is what the 2x multi-connection guard is asserted against.
//
//  * Real wall clock (`wall_qps` / `wall_p50_ms` / `wall_p99_ms`): the
//    same per-connection query streams actually pushed through the
//    loopback socket path. Honest but machine-dependent; on top of
//    execution it pays HTTP framing, JSON serialization, and kernel
//    round trips, so it also serves as a protocol-overhead probe.
//
// `--smoke` shrinks the loop for CI (the 2x guard still applies);
// `--json [path]` writes BENCH_net.json.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/io.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/prost_db.h"
#include "net/client.h"
#include "net/http.h"
#include "net/server.h"
#include "random_workload.h"
#include "serve/session_manager.h"

namespace prost::bench {
namespace {

/// Queries executing concurrently behind the endpoint — same cap as
/// bench_serving so the two benches describe the same serving policy,
/// and below the largest sweep point so queueing is visible at 16.
constexpr uint32_t kAdmissionCap = 8;

constexpr int kConnectionSweep[] = {1, 4, 8, 16};

std::vector<size_t> ConnectionStream(const testing::QueryMixSampler& sampler,
                                     int connection,
                                     int queries_per_connection) {
  Rng rng(BenchSeed() * 1000003 + static_cast<uint64_t>(connection) * 7919 +
          2);
  std::vector<size_t> stream;
  stream.reserve(queries_per_connection);
  for (int i = 0; i < queries_per_connection; ++i) {
    stream.push_back(sampler.SampleIndex(rng));
  }
  return stream;
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(p * (values.size() - 1) + 0.5);
  return values[std::min(index, values.size() - 1)];
}

struct SweepPoint {
  int connections = 0;
  uint64_t completed = 0;
  double qps = 0;      // Deterministic serving model.
  double p50_ms = 0;
  double p99_ms = 0;
  double wall_qps = 0;  // Real sockets, this machine.
  double wall_p50_ms = 0;
  double wall_p99_ms = 0;
};

/// Discrete-event simulation of the closed loop: `connections` clients,
/// kAdmissionCap execution slots, FIFO overflow queue, service time =
/// the query's simulated_millis (identical to bench_serving's model —
/// the network adds no *simulated* time, which is the point: admission
/// behavior must be transport-independent).
void SimulateServing(const std::vector<std::vector<size_t>>& streams,
                     const std::vector<double>& service_millis,
                     SweepPoint* point) {
  const size_t connections = streams.size();
  struct Completion {
    double time;
    size_t connection;
    bool operator>(const Completion& other) const {
      return time != other.time ? time > other.time
                                : connection > other.connection;
    }
  };
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<Completion>>
      completions;
  std::queue<size_t> waiting;
  std::vector<size_t> position(connections, 0);
  std::vector<double> request_time(connections, 0);
  std::vector<double> latencies;
  double now = 0;
  uint32_t in_flight = 0;

  auto submit = [&](size_t connection) {
    request_time[connection] = now;
    if (in_flight < kAdmissionCap && waiting.empty()) {
      ++in_flight;
      double service =
          service_millis[streams[connection][position[connection]]];
      completions.push({now + service, connection});
    } else {
      waiting.push(connection);
    }
  };

  for (size_t c = 0; c < connections; ++c) submit(c);
  while (!completions.empty()) {
    Completion done = completions.top();
    completions.pop();
    now = done.time;
    --in_flight;
    latencies.push_back(now - request_time[done.connection]);
    ++position[done.connection];
    if (position[done.connection] < streams[done.connection].size()) {
      submit(done.connection);
    }
    if (!waiting.empty() && in_flight < kAdmissionCap) {
      size_t next = waiting.front();
      waiting.pop();
      ++in_flight;
      double service = service_millis[streams[next][position[next]]];
      completions.push({now + service, next});
    }
  }

  point->completed = latencies.size();
  point->qps = now > 0 ? 1000.0 * static_cast<double>(latencies.size()) / now
                       : 0;
  point->p50_ms = Percentile(latencies, 0.50);
  point->p99_ms = Percentile(latencies, 0.99);
}

/// The same closed loop over real loopback HTTP: each connection is one
/// keep-alive net::Client issuing GET /sparql requests back-to-back.
void RunOverNetwork(uint16_t port, const BenchWorkload& workload,
                    const std::vector<std::vector<size_t>>& streams,
                    SweepPoint* point) {
  // Pre-encoded targets: the loop should measure the endpoint, not
  // client-side percent encoding.
  std::vector<std::string> targets;
  targets.reserve(workload.queries.size());
  for (const auto& query : workload.queries) {
    targets.push_back("/sparql?query=" + net::PercentEncode(query.sparql));
  }

  std::vector<std::vector<double>> latencies(streams.size());
  std::vector<std::thread> clients;
  clients.reserve(streams.size());
  WallTimer wall;
  for (size_t c = 0; c < streams.size(); ++c) {
    clients.emplace_back([&, c] {
      net::Client client;
      Status connected = client.Connect("127.0.0.1", port, 60.0);
      if (!connected.ok()) {
        std::fprintf(stderr, "[bench] FATAL: connect: %s\n",
                     connected.ToString().c_str());
        std::exit(1);
      }
      latencies[c].reserve(streams[c].size());
      for (size_t index : streams[c]) {
        double millis = 0;
        {
          ScopedTimer timer(&millis);
          auto response = client.Get(targets[index]);
          if (!response.ok() || response->status != 200) {
            std::fprintf(
                stderr, "[bench] FATAL: %s over HTTP: %s (status %d)\n",
                workload.queries[index].id.c_str(),
                response.ok() ? "non-200" : response.status().ToString().c_str(),
                response.ok() ? response->status : 0);
            std::exit(1);
          }
        }
        latencies[c].push_back(millis);
      }
    });
  }
  for (std::thread& client : clients) client.join();
  double elapsed = wall.ElapsedMillis();

  std::vector<double> all;
  for (const std::vector<double>& per_connection : latencies) {
    all.insert(all.end(), per_connection.begin(), per_connection.end());
  }
  point->wall_qps =
      elapsed > 0 ? 1000.0 * static_cast<double>(all.size()) / elapsed : 0;
  point->wall_p50_ms = Percentile(all, 0.50);
  point->wall_p99_ms = Percentile(all, 0.99);
}

void WriteNetJson(const std::string& path, const BenchWorkload& workload,
                  int queries_per_connection,
                  const std::vector<SweepPoint>& sweep) {
  std::string out = "{\n";
  out += "  \"benchmark\": \"net_endpoint_throughput\",\n";
  out += StrFormat("  \"triples\": %llu,\n",
                   static_cast<unsigned long long>(workload.graph->size()));
  out += StrFormat("  \"seed\": %llu,\n",
                   static_cast<unsigned long long>(BenchSeed()));
  out += "  \"workload\": \"watdiv_basic_mix_C1_F2_L4_S3\",\n";
  out += StrFormat("  \"queries_per_connection\": %d,\n",
                   queries_per_connection);
  out += StrFormat("  \"admission_cap\": %u,\n", kAdmissionCap);
  out +=
      "  \"note\": \"qps/p50/p99 are the deterministic serving model over "
      "simulated per-query times (reproducible anywhere); wall_* fields "
      "are real loopback HTTP on the build machine — execution plus "
      "framing, serialization, and kernel round trips\",\n";
  out += "  \"sweep\": [";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    out += i == 0 ? "\n" : ",\n";
    out += StrFormat(
        "    {\"connections\": %d, \"completed\": %llu, \"qps\": %.3f, "
        "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"wall_qps\": %.3f, "
        "\"wall_p50_ms\": %.3f, \"wall_p99_ms\": %.3f}",
        p.connections, static_cast<unsigned long long>(p.completed), p.qps,
        p.p50_ms, p.p99_ms, p.wall_qps, p.wall_p50_ms, p.wall_p99_ms);
  }
  out += "\n  ]\n}\n";
  Status written = WriteStringToFile(path, out);
  if (!written.ok()) {
    std::fprintf(stderr, "[bench] FATAL: writing %s: %s\n", path.c_str(),
                 written.ToString().c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

int Main(int argc, char** argv) {
  bool smoke = false;
  bool write_json = false;
  std::string json_path = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      write_json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json [path]]\n", argv[0]);
      return 2;
    }
  }
  const int queries_per_connection = smoke ? 6 : 40;

  BenchWorkload workload = BuildWorkload();
  core::ProstDb::Options options;
  options.cluster = ScaledCluster(workload);
  options.exec.num_threads = 4;  // Shared pool, multiplexed per query.
  auto db = core::ProstDb::LoadFromSharedGraph(workload.graph, options);
  if (!db.ok()) {
    std::fprintf(stderr, "[bench] FATAL: load: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }

  // Per-query simulated service times: deterministic, measured once.
  std::vector<double> service_millis;
  service_millis.reserve(workload.parsed.size());
  for (size_t i = 0; i < workload.parsed.size(); ++i) {
    auto result = (*db)->Execute(workload.parsed[i]);
    if (!result.ok()) {
      std::fprintf(stderr, "[bench] FATAL: %s: %s\n",
                   workload.queries[i].id.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    service_millis.push_back(result->simulated_millis);
  }

  // One endpoint serves the whole sweep, like a real deployment.
  serve::AdmissionOptions admission;
  admission.max_in_flight = kAdmissionCap;
  admission.max_queued = 64;
  serve::SessionManager manager(**db, admission);
  net::ServerOptions server_options;
  server_options.handler_threads = 18;  // Covers the largest sweep point.
  server_options.max_pending_connections = 64;
  net::Server server(manager, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "[bench] FATAL: server start: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  testing::QueryMixSampler sampler(workload.queries);
  std::vector<SweepPoint> sweep;
  std::printf("%-12s %12s %10s %10s %12s %12s %12s\n", "connections", "qps",
              "p50_ms", "p99_ms", "wall_qps", "wall_p50", "wall_p99");
  PrintRule(86);
  for (int connections : kConnectionSweep) {
    std::vector<std::vector<size_t>> streams;
    streams.reserve(connections);
    for (int c = 0; c < connections; ++c) {
      streams.push_back(
          ConnectionStream(sampler, c, queries_per_connection));
    }
    SweepPoint point;
    point.connections = connections;
    SimulateServing(streams, service_millis, &point);
    RunOverNetwork(server.port(), workload, streams, &point);
    std::printf("%-12d %12.3f %10.3f %10.3f %12.3f %12.3f %12.3f\n",
                point.connections, point.qps, point.p50_ms, point.p99_ms,
                point.wall_qps, point.wall_p50_ms, point.wall_p99_ms);
    sweep.push_back(point);
  }
  server.Shutdown();
  manager.Shutdown();

  // The serving property the endpoint must preserve: multi-connection
  // throughput scales past the single connection under the admission
  // cap. Same 2x guard as bench_serving — the transport must not undo
  // the serve layer's concurrency.
  double base_qps = sweep.front().qps;
  for (const SweepPoint& point : sweep) {
    if (point.connections == 8 && point.qps <= 2.0 * base_qps) {
      std::fprintf(stderr,
                   "[bench] FATAL: 8-connection qps %.3f is not > 2x the "
                   "1-connection baseline %.3f\n",
                   point.qps, base_qps);
      return 1;
    }
  }

  if (write_json) {
    WriteNetJson(json_path, workload, queries_per_connection, sweep);
  }
  return 0;
}

}  // namespace
}  // namespace prost::bench

int main(int argc, char** argv) { return prost::bench::Main(argc, argv); }
