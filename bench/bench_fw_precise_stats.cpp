// Future-work feature #2 from §5 of the paper: "collect more precise
// statistics of the input dataset in order to produce better trees and,
// hence, a less expensive retrieval."
//
// PRoST with pairwise subject-overlap statistics vs the paper's two basic
// statistics, on the 20 basic queries plus the adversarially-ordered AB
// chain queries (where plan quality is stressed). The bench also reports
// what the extra statistics pass costs at loading time — the trade-off
// the paper's sentence implies.

#include <cstdio>

#include "bench_util.h"
#include "common/str_util.h"
#include "core/prost_db.h"
#include "watdiv/schema.h"

namespace {

std::vector<prost::watdiv::WatDivQuery> StressQueries() {
  using prost::watdiv::kWsdbm;
  std::string prologue = std::string("PREFIX wsdbm: <") + kWsdbm + ">\n";
  return {
      {"AB1", 'A', prologue + R"(
SELECT * WHERE {
  ?a wsdbm:friendOf ?b .
  ?b wsdbm:follows ?c .
  ?c wsdbm:subscribes wsdbm:Website0 .
})"},
      {"AB3", 'A', prologue + R"(
SELECT * WHERE {
  ?p wsdbm:makesPurchase ?x .
  ?p wsdbm:friendOf ?f .
  ?p wsdbm:likes ?l .
  ?f wsdbm:subscribes wsdbm:Website0 .
})"},
  };
}

}  // namespace

int main() {
  using namespace prost;
  bench::BenchWorkload workload = bench::BuildWorkload();
  cluster::ClusterConfig cluster = bench::ScaledCluster(workload);

  core::ProstDb::Options base;
  base.cluster = cluster;
  core::ProstDb::Options precise = base;
  precise.collect_precise_statistics = true;

  auto db_base = core::ProstDb::LoadFromSharedGraph(workload.graph, base);
  auto db_precise =
      core::ProstDb::LoadFromSharedGraph(workload.graph, precise);
  if (!db_base.ok() || !db_precise.ok()) {
    std::fprintf(stderr, "FATAL: load failed\n");
    return 1;
  }

  std::printf(
      "\nFuture work (paper §5): precise (pairwise) statistics\n"
      "Loading: basic stats %s  ->  +pairwise %s (the cost of better "
      "trees)\n",
      HumanDuration((*db_base)->load_report().simulated_load_millis).c_str(),
      HumanDuration((*db_precise)->load_report().simulated_load_millis)
          .c_str());
  bench::PrintRule(64);
  std::printf("%-6s | %12s | %12s | %8s\n", "Query", "basic stats",
              "+pairwise", "speedup");
  bench::PrintRule(64);

  std::vector<watdiv::WatDivQuery> queries = workload.queries;
  for (auto& q : StressQueries()) queries.push_back(q);
  double sum_base = 0, sum_precise = 0;
  for (const watdiv::WatDivQuery& q : queries) {
    auto parsed = sparql::ParseQuery(q.sparql);
    if (!parsed.ok()) {
      std::fprintf(stderr, "FATAL parse %s\n", q.id.c_str());
      return 1;
    }
    auto base_run = (*db_base)->Execute(*parsed);
    auto precise_run = (*db_precise)->Execute(*parsed);
    if (!base_run.ok() || !precise_run.ok()) {
      std::fprintf(stderr, "FATAL exec %s\n", q.id.c_str());
      return 1;
    }
    if (base_run->relation.CollectSortedRows() !=
        precise_run->relation.CollectSortedRows()) {
      std::fprintf(stderr, "FATAL: %s results diverge\n", q.id.c_str());
      return 1;
    }
    sum_base += base_run->simulated_millis;
    sum_precise += precise_run->simulated_millis;
    std::printf("%-6s | %12.0f | %12.0f | %7.2fx\n", q.id.c_str(),
                base_run->simulated_millis, precise_run->simulated_millis,
                base_run->simulated_millis / precise_run->simulated_millis);
  }
  bench::PrintRule(64);
  std::printf("average: basic %.0fms, +pairwise %.0fms (%.2fx)\n",
              sum_base / queries.size(), sum_precise / queries.size(),
              sum_base / sum_precise);
  return 0;
}
