// Side-by-side tour of the four systems the paper evaluates — PRoST,
// S2RDF, Rya, SPARQLGX — on one generated dataset: loading profile,
// storage footprint, and one query of each WatDiv class, annotated with
// what each system did (broadcasts, shuffles, index seeks).
//
//   ./build/examples/store_comparison [num_triples]

#include <cstdio>
#include <cstdlib>

#include "baselines/system.h"
#include "common/str_util.h"
#include "sparql/parser.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

int main(int argc, char** argv) {
  using namespace prost;
  uint64_t triples = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 80000;

  watdiv::WatDivConfig config;
  config.target_triples = triples;
  std::printf("Generating WatDiv data (~%llu triples)...\n",
              static_cast<unsigned long long>(triples));
  watdiv::WatDivDataset dataset = watdiv::Generate(config);
  dataset.graph.SortAndDedupe();
  auto queries = watdiv::BasicQuerySet(dataset);
  auto graph = std::make_shared<const rdf::EncodedGraph>(
      std::move(dataset.graph));

  cluster::ClusterConfig cluster;
  cluster.ScaleToDataset(graph->size());
  std::printf("Building the four systems (PRoST, S2RDF, Rya, SPARQLGX)...\n");
  auto systems = baselines::MakeAllSystems(graph, cluster);
  if (!systems.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 systems.status().ToString().c_str());
    return 1;
  }

  std::printf("\n-- Loading profile (simulated 10-node cluster) --\n");
  for (const auto& system : *systems) {
    const core::LoadReport& report = system->load_report();
    std::printf("%-10s  load %-12s  storage %-10s  (built for real in %.0f ms)\n",
                system->name().c_str(),
                HumanDuration(report.simulated_load_millis).c_str(),
                HumanBytes(report.storage_bytes).c_str(),
                report.real_load_millis);
  }

  // One representative per query class.
  std::printf("\n-- One query per class --\n");
  for (const char* id : {"C2", "F3", "L2", "S1"}) {
    const watdiv::WatDivQuery* chosen = nullptr;
    for (const auto& q : queries) {
      if (q.id == id) chosen = &q;
    }
    if (chosen == nullptr) continue;
    auto query = sparql::ParseQuery(chosen->sparql);
    if (!query.ok()) continue;
    std::printf("\n%s (%s-shaped):\n", chosen->id.c_str(),
                chosen->query_class == 'C'   ? "complex"
                : chosen->query_class == 'F' ? "snowflake"
                : chosen->query_class == 'L' ? "linear"
                                             : "star");
    for (const auto& system : *systems) {
      auto result = system->Execute(*query);
      if (!result.ok()) {
        std::printf("  %-10s FAILED: %s\n", system->name().c_str(),
                    result.status().ToString().c_str());
        continue;
      }
      std::printf(
          "  %-10s %10s   rows %-7llu stages %-3llu shuffled %-10s seeks %llu\n",
          system->name().c_str(),
          HumanDuration(result->simulated_millis).c_str(),
          static_cast<unsigned long long>(result->num_rows()),
          static_cast<unsigned long long>(result->counters.stages),
          HumanBytes(result->counters.bytes_shuffled).c_str(),
          static_cast<unsigned long long>(result->counters.kv_seeks));
    }
  }
  std::printf(
      "\nReading the tea leaves: Rya wins when seeks are few and loses by\n"
      "orders of magnitude when intermediates explode; SPARQLGX pays text\n"
      "scans and RDD shuffles everywhere; S2RDF buys speed during its very\n"
      "long load; PRoST stays close to S2RDF at a fraction of the loading\n"
      "cost — the paper's Table 2 in miniature.\n");
  return 0;
}
