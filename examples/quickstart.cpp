// Quickstart: load a small RDF graph into PRoST, look at the Join Tree
// the translator produces, execute a SPARQL query, and print the decoded
// results.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/prost_db.h"
#include "sparql/parser.h"

int main() {
  using namespace prost;

  // A miniature social graph in N-Triples.
  const char* kData = R"(
<http://ex/alice>  <http://ex/knows>  <http://ex/bob> .
<http://ex/alice>  <http://ex/knows>  <http://ex/carol> .
<http://ex/alice>  <http://ex/age>   "34"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/alice>  <http://ex/name>  "Alice" .
<http://ex/bob>    <http://ex/age>   "29"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex/bob>    <http://ex/name>  "Bob" .
<http://ex/carol>  <http://ex/name>  "Carol" .
<http://ex/carol>  <http://ex/knows> <http://ex/bob> .
)";

  // Load: this builds the Vertical Partitioning tables AND the Property
  // Table, plus the statistics that drive join ordering.
  core::ProstDb::Options options;
  auto db = core::ProstDb::LoadFromNTriples(kData, options);
  if (!db.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  std::printf("Loaded %llu triples, %zu predicates.\n\n",
              static_cast<unsigned long long>(
                  (*db)->load_report().input_triples),
              (*db)->statistics().num_predicates());

  // Who do people that Alice knows know? Plus everyone's name. The two
  // patterns on ?friend share a subject, so they become one Property
  // Table node; the rest are VP nodes.
  const char* kQuery = R"(
PREFIX ex: <http://ex/>
SELECT ?friend ?name ?fof WHERE {
  ex:alice ex:knows ?friend .
  ?friend ex:knows ?fof .
  ?friend ex:name ?name .
})";

  auto query = sparql::ParseQuery(kQuery);
  if (!query.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }

  // EXPLAIN: the Join Tree (§3.2 of the PRoST paper).
  auto tree = (*db)->Plan(*query);
  if (!tree.ok()) {
    std::fprintf(stderr, "plan failed: %s\n",
                 tree.status().ToString().c_str());
    return 1;
  }
  std::printf("Join Tree:\n%s\n", tree->ToString().c_str());

  // Execute and decode.
  auto result = (*db)->Execute(*query);
  if (!result.ok()) {
    std::fprintf(stderr, "execute failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  auto rows = (*db)->DecodeRows(result->relation);
  if (!rows.ok()) {
    std::fprintf(stderr, "decode failed: %s\n",
                 rows.status().ToString().c_str());
    return 1;
  }
  std::printf("Results (%zu rows, simulated cluster time %.0f ms):\n",
              rows->size(), result->simulated_millis);
  for (const auto& name : result->relation.column_names()) {
    std::printf("  %-24s", ("?" + name).c_str());
  }
  std::printf("\n");
  for (const auto& row : *rows) {
    for (const auto& value : row) std::printf("  %-24s", value.c_str());
    std::printf("\n");
  }
  return 0;
}
