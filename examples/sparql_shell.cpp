// Interactive SPARQL shell over PRoST: load an N-Triples file (or a
// generated WatDiv dataset), then type queries. Terminate each query with
// an empty line. Commands: .explain toggles plan printing, .quit exits.
//
//   ./build/examples/sparql_shell data.nt
//   ./build/examples/sparql_shell --watdiv 50000
//   ./build/examples/sparql_shell --persist mydb data.nt   (load + save)
//   ./build/examples/sparql_shell --open mydb              (reopen)
//   ./build/examples/sparql_shell --threads 4 data.nt      (parallel exec)

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/io.h"
#include "common/str_util.h"
#include "core/prost_db.h"
#include "sparql/parser.h"
#include "watdiv/generator.h"

int main(int argc, char** argv) {
  using namespace prost;

  core::ProstDb::Options options;
  Result<std::unique_ptr<core::ProstDb>> db = Status::InvalidArgument("");
  std::string persist_dir;
  if (argc >= 3 && std::strcmp(argv[1], "--threads") == 0) {
    // 1 = serial (default), 0 = cores_per_worker, N > 1 = pool of N.
    options.exec.num_threads =
        static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10));
    argv += 2;
    argc -= 2;
  }
  if (argc >= 3 && std::strcmp(argv[1], "--persist") == 0) {
    persist_dir = argv[2];
    argv += 2;
    argc -= 2;
  }
  if (argc >= 3 && std::strcmp(argv[1], "--open") == 0) {
    db = core::ProstDb::OpenFrom(argv[2], options);
  } else if (argc >= 2 && std::strcmp(argv[1], "--watdiv") == 0) {
    watdiv::WatDivConfig config;
    if (argc >= 3) config.target_triples = std::strtoull(argv[2], nullptr, 10);
    std::printf("Generating WatDiv dataset (~%llu triples)...\n",
                static_cast<unsigned long long>(config.target_triples));
    watdiv::WatDivDataset dataset = watdiv::Generate(config);
    db = core::ProstDb::LoadFromGraph(std::move(dataset.graph), options);
  } else if (argc >= 2) {
    std::string text;
    Status read = ReadFileToString(argv[1], &text);
    if (!read.ok()) {
      std::fprintf(stderr, "%s\n", read.ToString().c_str());
      return 1;
    }
    db = core::ProstDb::LoadFromNTriples(text, options);
  } else {
    std::fprintf(stderr,
                 "usage: %s [--threads n] [--persist dir] (<file.nt> | --watdiv [n]) | --open dir\n",
                 argv[0]);
    return 1;
  }
  if (!db.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  if (!persist_dir.empty()) {
    auto bytes = (*db)->PersistTo(persist_dir);
    if (!bytes.ok()) {
      std::fprintf(stderr, "persist failed: %s\n",
                   bytes.status().ToString().c_str());
      return 1;
    }
    std::printf("Persisted database to %s (%s); reopen with --open.\n",
                persist_dir.c_str(), HumanBytes(*bytes).c_str());
  }
  std::printf(
      "Loaded %llu triples (%zu predicates). Enter a SPARQL query followed\n"
      "by an empty line; '.explain' toggles plans; '.quit' exits.\n",
      static_cast<unsigned long long>((*db)->load_report().input_triples),
      (*db)->statistics().num_predicates());

  bool explain = false;
  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? "sparql> " : "      > ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = StrTrim(line);
    if (buffer.empty() && trimmed == ".quit") break;
    if (buffer.empty() && trimmed == ".explain") {
      explain = !explain;
      std::printf("explain %s\n", explain ? "on" : "off");
      continue;
    }
    if (!trimmed.empty()) {
      buffer += line;
      buffer.push_back('\n');
      continue;
    }
    if (buffer.empty()) continue;

    std::string query_text;
    query_text.swap(buffer);
    auto query = sparql::ParseQuery(query_text);
    if (!query.ok()) {
      std::printf("parse error: %s\n", query.status().ToString().c_str());
      continue;
    }
    if (explain) {
      auto tree = (*db)->Plan(*query);
      if (tree.ok()) std::printf("%s", tree->ToString().c_str());
    }
    auto result = (*db)->Execute(*query);
    if (!result.ok()) {
      std::printf("execution error: %s\n",
                  result.status().ToString().c_str());
      continue;
    }
    auto rows = (*db)->DecodeRows(result->relation);
    if (!rows.ok()) {
      std::printf("decode error: %s\n", rows.status().ToString().c_str());
      continue;
    }
    for (const auto& name : result->relation.column_names()) {
      std::printf("%-30s", ("?" + name).c_str());
    }
    std::printf("\n");
    size_t shown = 0;
    for (const auto& row : *rows) {
      for (const auto& value : row) std::printf("%-30s", value.c_str());
      std::printf("\n");
      if (++shown == 25 && rows->size() > 25) {
        std::printf("... (%zu more rows)\n", rows->size() - shown);
        break;
      }
    }
    std::printf("%zu rows, %.0f ms simulated cluster time\n", rows->size(),
                result->simulated_millis);
  }
  return 0;
}
