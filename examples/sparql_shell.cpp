// Interactive SPARQL shell over PRoST: load an N-Triples file (or a
// generated WatDiv dataset), then type queries. Terminate each query with
// an empty line. Commands: .explain toggles plan printing, .analyze
// toggles EXPLAIN ANALYZE, .metrics dumps query metrics, .quit exits.
//
//   ./build/examples/sparql_shell data.nt
//   ./build/examples/sparql_shell --watdiv 50000
//   ./build/examples/sparql_shell --persist mydb data.nt   (load + save)
//   ./build/examples/sparql_shell --open mydb              (reopen)
//   ./build/examples/sparql_shell --threads 4 data.nt      (parallel exec)
//   ./build/examples/sparql_shell --pool-bytes 1048576 --watdiv 100000
//                                           (beyond-RAM: paged storage)
//   ./build/examples/sparql_shell --explain data.nt        (plan only)
//   ./build/examples/sparql_shell --explain-analyze data.nt
//   ./build/examples/sparql_shell --metrics-json data.nt   (JSON at exit)

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "common/io.h"
#include "common/str_util.h"
#include "core/prost_db.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "plan/passes.h"
#include "sparql/parser.h"
#include "watdiv/generator.h"

namespace {

/// EXPLAIN, logical half: the translator's Join Tree plus the §3.3
/// statistics that produced its node ordering.
void PrintPlanWithRationale(const prost::core::ProstDb& db,
                            const prost::core::JoinTree& tree) {
  std::printf("%s", tree.ToString().c_str());
  std::printf(
      "ordering rationale (ascending cardinality estimate; "
      "largest node is the root):\n");
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    const prost::core::JoinTreeNode& node = tree.nodes[i];
    std::printf("  node %zu: %s  [%s, est %.1f]\n", i, node.Label().c_str(),
                prost::core::NodeKindToString(node.kind),
                node.estimated_cardinality);
    for (const prost::core::NodePattern& pattern : node.patterns) {
      prost::rdf::PredicateStats stats =
          db.statistics().ForPredicate(pattern.predicate);
      std::printf(
          "    %s: triples=%llu distinct_subjects=%llu "
          "distinct_objects=%llu\n",
          pattern.source.predicate.ToNTriples().c_str(),
          static_cast<unsigned long long>(stats.triple_count),
          static_cast<unsigned long long>(stats.distinct_subjects),
          static_cast<unsigned long long>(stats.distinct_objects));
    }
  }
}

/// EXPLAIN, physical half: the optimized plan Execute() will interpret,
/// plus a one-liner per optimizer pass saying whether it rewrote it.
void PrintPhysicalPlan(const prost::plan::PlannedQuery& planned) {
  std::printf("physical plan (what Execute runs):\n%s",
              planned.plan.ToString().c_str());
  for (const prost::plan::PassSnapshot& snapshot : planned.snapshots) {
    std::printf("pass %-16s %s\n", snapshot.pass.c_str(),
                snapshot.before == snapshot.after ? "no change"
                                                  : "rewrote the plan");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prost;

  core::ProstDb::Options options;
  Result<std::unique_ptr<core::ProstDb>> db = Status::InvalidArgument("");
  std::string persist_dir;
  bool explain = false;        // Plan printing (also the plan-only flag).
  bool plan_only = false;      // --explain: never execute.
  bool analyze = false;        // --explain-analyze / .analyze.
  bool metrics_json = false;   // --metrics-json: dump registry at exit.
  while (argc >= 2) {
    if (argc >= 3 && std::strcmp(argv[1], "--threads") == 0) {
      // 1 = serial (default), 0 = cores_per_worker, N > 1 = pool of N.
      options.exec.num_threads =
          static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10));
      argv += 2;
      argc -= 2;
    } else if (argc >= 3 && std::strcmp(argv[1], "--persist") == 0) {
      persist_dir = argv[2];
      argv += 2;
      argc -= 2;
    } else if (argc >= 3 && std::strcmp(argv[1], "--pool-bytes") == 0) {
      // Beyond-RAM mode (DESIGN.md §15): page storage through a buffer
      // pool of this byte budget. Results are identical; .analyze shows
      // the zone-map/bloom skips.
      options.storage.buffer_pool_bytes =
          std::strtoull(argv[2], nullptr, 10);
      argv += 2;
      argc -= 2;
    } else if (argc >= 3 && std::strcmp(argv[1], "--row-group-rows") == 0) {
      options.storage.row_group_rows =
          static_cast<uint32_t>(std::strtoul(argv[2], nullptr, 10));
      argv += 2;
      argc -= 2;
    } else if (std::strcmp(argv[1], "--explain") == 0) {
      explain = plan_only = true;
      argv += 1;
      argc -= 1;
    } else if (std::strcmp(argv[1], "--explain-analyze") == 0) {
      analyze = true;
      argv += 1;
      argc -= 1;
    } else if (std::strcmp(argv[1], "--metrics-json") == 0) {
      metrics_json = true;
      argv += 1;
      argc -= 1;
    } else {
      break;
    }
  }
  if (argc >= 3 && std::strcmp(argv[1], "--open") == 0) {
    db = core::ProstDb::OpenFrom(argv[2], options);
  } else if (argc >= 2 && std::strcmp(argv[1], "--watdiv") == 0) {
    watdiv::WatDivConfig config;
    if (argc >= 3) config.target_triples = std::strtoull(argv[2], nullptr, 10);
    std::printf("Generating WatDiv dataset (~%llu triples)...\n",
                static_cast<unsigned long long>(config.target_triples));
    watdiv::WatDivDataset dataset = watdiv::Generate(config);
    db = core::ProstDb::LoadFromGraph(std::move(dataset.graph), options);
  } else if (argc >= 2) {
    std::string text;
    Status read = ReadFileToString(argv[1], &text);
    if (!read.ok()) {
      std::fprintf(stderr, "%s\n", read.ToString().c_str());
      return 1;
    }
    db = core::ProstDb::LoadFromNTriples(text, options);
  } else {
    std::fprintf(stderr,
                 "usage: %s [--threads n] [--persist dir] [--pool-bytes n] "
                 "[--row-group-rows n] [--explain] "
                 "[--explain-analyze] [--metrics-json] "
                 "(<file.nt> | --watdiv [n]) | --open dir\n",
                 argv[0]);
    return 1;
  }
  if (!db.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  if (!persist_dir.empty()) {
    auto bytes = (*db)->PersistTo(persist_dir);
    if (!bytes.ok()) {
      std::fprintf(stderr, "persist failed: %s\n",
                   bytes.status().ToString().c_str());
      return 1;
    }
    std::printf("Persisted database to %s (%s); reopen with --open.\n",
                persist_dir.c_str(), HumanBytes(*bytes).c_str());
  }
  std::printf(
      "Loaded %llu triples (%zu predicates). Enter a SPARQL query followed\n"
      "by an empty line; '.explain' toggles plans; '.analyze' toggles\n"
      "EXPLAIN ANALYZE; '.metrics' dumps metrics; '.quit' exits.\n",
      static_cast<unsigned long long>((*db)->load_report().input_triples),
      (*db)->statistics().num_predicates());

  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? "sparql> " : "      > ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = StrTrim(line);
    if (buffer.empty() && trimmed == ".quit") break;
    if (buffer.empty() && trimmed == ".explain") {
      explain = !explain;
      std::printf("explain %s\n", explain ? "on" : "off");
      continue;
    }
    if (buffer.empty() && trimmed == ".analyze") {
      analyze = !analyze;
      std::printf("explain analyze %s\n", analyze ? "on" : "off");
      continue;
    }
    if (buffer.empty() && trimmed == ".metrics") {
      std::printf("%s", (*db)->metrics().Snapshot().ToJson().c_str());
      continue;
    }
    if (!trimmed.empty()) {
      buffer += line;
      buffer.push_back('\n');
      continue;
    }
    if (buffer.empty()) continue;

    std::string query_text;
    query_text.swap(buffer);
    auto query = sparql::ParseQuery(query_text);
    if (!query.ok()) {
      std::printf("parse error: %s\n", query.status().ToString().c_str());
      continue;
    }
    if (explain) {
      auto tree = (*db)->Plan(*query);
      if (!tree.ok()) {
        std::printf("plan error: %s\n", tree.status().ToString().c_str());
        continue;
      }
      PrintPlanWithRationale(**db, *tree);
      auto planned = (*db)->PlanPhysical(*query);
      if (!planned.ok()) {
        std::printf("plan error: %s\n",
                    planned.status().ToString().c_str());
        continue;
      }
      PrintPhysicalPlan(*planned);
      if (plan_only) continue;
    }
    obs::QueryProfile profile;
    auto result = (*db)->Execute(*query, analyze ? &profile : nullptr);
    if (!result.ok()) {
      std::printf("execution error: %s\n",
                  result.status().ToString().c_str());
      continue;
    }
    if (analyze) {
      obs::ReportOptions report_options;
      report_options.include_wall = true;
      std::printf("%s", obs::ExplainAnalyze(profile, report_options).c_str());
    }
    auto rows = (*db)->DecodeRows(result->relation);
    if (!rows.ok()) {
      std::printf("decode error: %s\n", rows.status().ToString().c_str());
      continue;
    }
    for (const auto& name : result->relation.column_names()) {
      std::printf("%-30s", ("?" + name).c_str());
    }
    std::printf("\n");
    size_t shown = 0;
    for (const auto& row : *rows) {
      for (const auto& value : row) std::printf("%-30s", value.c_str());
      std::printf("\n");
      if (++shown == 25 && rows->size() > 25) {
        std::printf("... (%zu more rows)\n", rows->size() - shown);
        break;
      }
    }
    std::printf("%zu rows, %.0f ms simulated cluster time\n", rows->size(),
                result->simulated_millis);
  }
  if (metrics_json) {
    std::printf("%s", (*db)->metrics().Snapshot().ToJson().c_str());
  }
  return 0;
}
