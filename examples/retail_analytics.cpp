// Retail analytics over a generated WatDiv e-commerce universe: the
// motivating scenario of the paper's intro (retailers, offers, products,
// reviews, purchases). Shows how star- and snowflake-shaped analytics map
// to Join Trees and what the mixed VP+PT strategy buys on each.
//
//   ./build/examples/retail_analytics [num_triples]

#include <cstdio>
#include <cstdlib>

#include "common/str_util.h"
#include "core/prost_db.h"
#include "sparql/parser.h"
#include "watdiv/generator.h"
#include "watdiv/schema.h"

namespace {

struct NamedQuery {
  const char* title;
  std::string sparql;
};

std::vector<NamedQuery> RetailQueries() {
  std::string prologue = prost::StrFormat(
      "PREFIX wsdbm: <%s>\nPREFIX gr: <%s>\nPREFIX sorg: <%s>\n"
      "PREFIX rev: <%s>\n",
      prost::watdiv::kWsdbm, prost::watdiv::kGr, prost::watdiv::kSorg,
      prost::watdiv::kRev);
  return {
      {"Offer catalogue of the biggest retailer (star)",
       prologue + R"(
SELECT * WHERE {
  wsdbm:Retailer0 gr:offers ?offer .
  ?offer gr:includes ?product .
  ?offer gr:price ?price .
  ?offer gr:validThrough ?until .
})"},
      {"Top-shelf products: reviews of what people purchase (snowflake)",
       prologue + R"(
SELECT * WHERE {
  ?user wsdbm:makesPurchase ?purchase .
  ?purchase wsdbm:purchaseFor ?product .
  ?product rev:hasReview ?review .
  ?review rev:rating ?rating .
})"},
      {"Regional offers with review visibility (complex)",
       prologue + R"(
SELECT * WHERE {
  ?retailer sorg:legalName ?name .
  ?retailer gr:offers ?offer .
  ?offer sorg:eligibleRegion wsdbm:Country0 .
  ?offer gr:includes ?product .
  ?product rev:hasReview ?review .
  ?review rev:totalVotes ?votes .
})"},
  };
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prost;
  uint64_t triples = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120000;

  watdiv::WatDivConfig config;
  config.target_triples = triples;
  std::printf("Generating a WatDiv retail universe (~%llu triples)...\n",
              static_cast<unsigned long long>(triples));
  watdiv::WatDivDataset dataset = watdiv::Generate(config);
  dataset.graph.SortAndDedupe();
  std::printf("  %zu triples, %llu users, %llu products, %llu retailers\n\n",
              dataset.graph.size(),
              static_cast<unsigned long long>(dataset.sizing.users),
              static_cast<unsigned long long>(dataset.sizing.products),
              static_cast<unsigned long long>(dataset.sizing.retailers));

  auto graph = std::make_shared<const rdf::EncodedGraph>(
      std::move(dataset.graph));
  cluster::ClusterConfig cluster;
  cluster.ScaleToDataset(graph->size());

  core::ProstDb::Options mixed_options;
  mixed_options.cluster = cluster;
  core::ProstDb::Options vp_options = mixed_options;
  vp_options.use_property_table = false;
  auto mixed = core::ProstDb::LoadFromSharedGraph(graph, mixed_options);
  auto vp_only = core::ProstDb::LoadFromSharedGraph(graph, vp_options);
  if (!mixed.ok() || !vp_only.ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }

  for (const NamedQuery& nq : RetailQueries()) {
    std::printf("=== %s ===\n", nq.title);
    auto query = sparql::ParseQuery(nq.sparql);
    if (!query.ok()) {
      std::fprintf(stderr, "parse failed: %s\n",
                   query.status().ToString().c_str());
      return 1;
    }
    auto tree = (*mixed)->Plan(*query);
    if (tree.ok()) {
      std::printf("%s", tree->ToString().c_str());
    }
    auto mixed_run = (*mixed)->Execute(*query);
    auto vp_run = (*vp_only)->Execute(*query);
    if (!mixed_run.ok() || !vp_run.ok()) {
      std::fprintf(stderr, "execution failed\n");
      return 1;
    }
    std::printf(
        "rows: %llu | mixed: %s | VP-only: %s (%.2fx) | shuffled %s vs "
        "%s\n\n",
        static_cast<unsigned long long>(mixed_run->num_rows()),
        HumanDuration(mixed_run->simulated_millis).c_str(),
        HumanDuration(vp_run->simulated_millis).c_str(),
        vp_run->simulated_millis / mixed_run->simulated_millis,
        HumanBytes(mixed_run->counters.bytes_shuffled).c_str(),
        HumanBytes(vp_run->counters.bytes_shuffled).c_str());
  }
  return 0;
}
