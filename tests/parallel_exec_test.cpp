// Verification harness for the morsel-driven parallel executor.
//
// Two properties are enforced, both stronger than "same bag of rows":
//
//  1. Differential: over seeded random graphs and random BGP queries, a
//     PRoST instance running with num_threads in {2, 4, 8} must produce a
//     result relation *bit-identical* to the serial instance (same chunk
//     layout, same row order, same columns) and, sorted, equal to the
//     brute-force reference evaluator.
//  2. Determinism: every WatDiv basic query, run twice at num_threads = 8,
//     must return byte-identical relations — and identical to the serial
//     run, with the identical simulated time (the cost model must not see
//     real parallelism).
//
// Tests use a tiny morsel size so even small relations split into many
// morsels, forcing the merge paths rather than the single-morsel
// fast path.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/prost_db.h"
#include "obs/trace.h"
#include "random_workload.h"
#include "reference_evaluator.h"
#include "sparql/parser.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace prost {
namespace {

using SharedGraph = std::shared_ptr<const rdf::EncodedGraph>;

/// Morsel size small enough that a few-hundred-row relation still splits
/// into many morsels per chunk.
constexpr uint32_t kTinyMorselRows = 64;

std::unique_ptr<core::ProstDb> MakeDb(const SharedGraph& graph,
                                      uint32_t num_threads,
                                      uint32_t morsel_rows) {
  core::ProstDb::Options options;
  options.exec.num_threads = num_threads;
  options.exec.morsel_rows = morsel_rows;
  auto db = core::ProstDb::LoadFromSharedGraph(graph, options);
  EXPECT_TRUE(db.ok()) << db.status();
  return db.ok() ? std::move(db).value() : nullptr;
}

/// Bit-identity: same column names, same chunk count, and every chunk's
/// every column is the same vector — row order included.
void ExpectBitIdentical(const engine::Relation& actual,
                        const engine::Relation& expected,
                        const std::string& context) {
  ASSERT_EQ(actual.column_names(), expected.column_names()) << context;
  ASSERT_EQ(actual.num_chunks(), expected.num_chunks()) << context;
  for (uint32_t w = 0; w < expected.num_chunks(); ++w) {
    const engine::RelationChunk& a = actual.chunks()[w];
    const engine::RelationChunk& e = expected.chunks()[w];
    ASSERT_EQ(a.columns.size(), e.columns.size())
        << context << ", chunk " << w;
    for (size_t c = 0; c < e.columns.size(); ++c) {
      EXPECT_EQ(a.columns[c], e.columns[c])
          << context << ", chunk " << w << ", column "
          << expected.column_names()[c];
    }
  }
}

class ParallelDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelDifferentialTest, ParallelMatchesSerialAndReference) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed * 6151 + 29);
  size_t triples = 120 + rng.NextBounded(500);
  size_t entities = 10 + rng.NextBounded(40);
  size_t predicates = 2 + rng.NextBounded(6);
  auto graph = std::make_shared<const rdf::EncodedGraph>(
      testing::RandomGraph(rng, triples, entities, predicates));

  auto serial = MakeDb(graph, 1, kTinyMorselRows);
  ASSERT_NE(serial, nullptr);
  std::vector<std::unique_ptr<core::ProstDb>> parallel;
  for (uint32_t threads : {2u, 4u, 8u}) {
    parallel.push_back(MakeDb(graph, threads, kTinyMorselRows));
    ASSERT_NE(parallel.back(), nullptr);
  }

  int interesting = 0;
  for (int round = 0; round < 10; ++round) {
    sparql::Query query;
    if (round == 0) {
      // One guaranteed non-empty query per seed: an open scan of a
      // predicate that actually occurs in the data.
      sparql::TriplePattern pattern;
      pattern.subject = rdf::Term::Variable("v0");
      pattern.object = rdf::Term::Variable("v1");
      rdf::TermId predicate_id = graph->DistinctPredicates().front();
      pattern.predicate = *graph->dictionary().DecodeTerm(predicate_id);
      query.bgp.patterns.push_back(std::move(pattern));
    } else {
      size_t num_patterns = 1 + rng.NextBounded(4);
      query = testing::RandomQuery(rng, *graph, num_patterns, predicates);
    }
    if (!sparql::ValidateQuery(query).ok()) continue;  // e.g. all-const.
    SCOPED_TRACE("seed " + std::to_string(seed) + " round " +
                 std::to_string(round) + "\n" + query.ToString());

    auto expected = testing::ReferenceEvaluate(query, *graph);
    auto serial_result = serial->Execute(query);
    ASSERT_TRUE(serial_result.ok()) << serial_result.status();
    EXPECT_EQ(serial_result->relation.CollectSortedRows(), expected);
    if (!expected.empty()) ++interesting;

    for (size_t i = 0; i < parallel.size(); ++i) {
      const uint32_t threads =
          parallel[i]->options().exec.num_threads;
      auto result = parallel[i]->Execute(query);
      ASSERT_TRUE(result.ok())
          << threads << " threads: " << result.status();
      ExpectBitIdentical(result->relation, serial_result->relation,
                         std::to_string(threads) + " threads vs serial");
      EXPECT_EQ(result->relation.CollectSortedRows(), expected)
          << threads << " threads vs reference";
      // The simulated cluster clock must not notice real parallelism.
      EXPECT_DOUBLE_EQ(result->simulated_millis,
                       serial_result->simulated_millis)
          << threads << " threads";
    }
  }
  EXPECT_GT(interesting, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDifferentialTest,
                         ::testing::Range(0, 6));

TEST(ParallelExecConcurrencyTest, ConcurrentExecuteSharesOnePoolSafely) {
  // Execute() is const and safe to call concurrently; on a
  // parallel-configured db every call shares the one thread pool, each
  // execution running as its own task region (no serialization — the
  // regions genuinely overlap). Hammer a single db from several threads
  // and check each result bit-for-bit against the serial engine.
  // serving_stress_test covers the same property at scale through
  // serve::SessionManager.
  Rng rng(4242);
  auto graph = std::make_shared<const rdf::EncodedGraph>(
      testing::RandomGraph(rng, 400, 30, 5));
  auto parallel = MakeDb(graph, 4, kTinyMorselRows);
  ASSERT_NE(parallel, nullptr);
  auto serial = MakeDb(graph, 1, kTinyMorselRows);
  ASSERT_NE(serial, nullptr);

  std::vector<sparql::Query> queries;
  while (queries.size() < 4) {
    sparql::Query query =
        testing::RandomQuery(rng, *graph, 1 + rng.NextBounded(3), 5);
    if (sparql::ValidateQuery(query).ok()) queries.push_back(std::move(query));
  }
  std::vector<core::QueryResult> expected;
  for (const sparql::Query& query : queries) {
    auto result = serial->Execute(query);
    ASSERT_TRUE(result.ok()) << result.status();
    expected.push_back(std::move(result).value());
  }

  constexpr int kCallers = 4;
  constexpr int kIterations = 8;
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      for (int iter = 0; iter < kIterations; ++iter) {
        size_t q = static_cast<size_t>(t + iter) % queries.size();
        auto result = parallel->Execute(queries[q]);
        ASSERT_TRUE(result.ok())
            << "caller " << t << " iter " << iter << ": " << result.status();
        ExpectBitIdentical(result->relation, expected[q].relation,
                           "caller " + std::to_string(t) + " iter " +
                               std::to_string(iter) + " query " +
                               std::to_string(q));
        EXPECT_DOUBLE_EQ(result->simulated_millis,
                         expected[q].simulated_millis)
            << "caller " << t << " query " << q;
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
}

TEST(ParallelExecConfigTest, ZeroThreadsUsesCoresPerWorker) {
  Rng rng(991);
  auto graph = std::make_shared<const rdf::EncodedGraph>(
      testing::RandomGraph(rng, 300, 25, 4));

  core::ProstDb::Options options;
  options.exec.num_threads = 0;  // Resolve from the cluster description.
  options.exec.morsel_rows = kTinyMorselRows;
  ASSERT_EQ(options.cluster.cores_per_worker, 6u);  // Paper §4.1 default.
  auto db = core::ProstDb::LoadFromSharedGraph(graph, options);
  ASSERT_TRUE(db.ok()) << db.status();

  auto serial = MakeDb(graph, 1, kTinyMorselRows);
  ASSERT_NE(serial, nullptr);
  sparql::Query query;
  do {
    query = testing::RandomQuery(rng, *graph, 3, 4);
  } while (!sparql::ValidateQuery(query).ok());
  auto parallel_result = (*db)->Execute(query);
  auto serial_result = serial->Execute(query);
  ASSERT_TRUE(parallel_result.ok()) << parallel_result.status();
  ASSERT_TRUE(serial_result.ok()) << serial_result.status();
  ExpectBitIdentical(parallel_result->relation, serial_result->relation,
                     "cores_per_worker resolution");
}

class WatDivDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    watdiv::WatDivConfig config;
    config.target_triples = 40000;
    config.seed = 7;
    watdiv::WatDivDataset dataset = watdiv::Generate(config);
    dataset.graph.SortAndDedupe();
    graph_ = std::make_shared<const rdf::EncodedGraph>(
        std::move(dataset.graph));
    watdiv::WatDivDataset sizing_only;  // Queries depend only on IRIs.
    queries_ = watdiv::BasicQuerySet(sizing_only);
  }

  static void TearDownTestSuite() { graph_.reset(); }

  static SharedGraph graph_;
  static std::vector<watdiv::WatDivQuery> queries_;
};

SharedGraph WatDivDeterminismTest::graph_;
std::vector<watdiv::WatDivQuery> WatDivDeterminismTest::queries_;

TEST_F(WatDivDeterminismTest, EightThreadsIsDeterministicAndMatchesSerial) {
  ASSERT_EQ(queries_.size(), 20u);
  // Morsels sized so the 40k-triple relations split into real morsel
  // counts without making the run quadratic.
  auto serial = MakeDb(graph_, 1, 256);
  auto parallel = MakeDb(graph_, 8, 256);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(parallel, nullptr);

  for (const watdiv::WatDivQuery& wq : queries_) {
    auto parsed = sparql::ParseQuery(wq.sparql);
    ASSERT_TRUE(parsed.ok()) << wq.id << ": " << parsed.status();
    const sparql::Query& query = parsed.value();

    auto first = parallel->Execute(query);
    auto second = parallel->Execute(query);
    auto serial_result = serial->Execute(query);
    ASSERT_TRUE(first.ok()) << wq.id << ": " << first.status();
    ASSERT_TRUE(second.ok()) << wq.id << ": " << second.status();
    ASSERT_TRUE(serial_result.ok()) << wq.id << ": "
                                    << serial_result.status();

    ExpectBitIdentical(second->relation, first->relation,
                       wq.id + " run 2 vs run 1");
    ExpectBitIdentical(first->relation, serial_result->relation,
                       wq.id + " parallel vs serial");
    EXPECT_DOUBLE_EQ(first->simulated_millis,
                     serial_result->simulated_millis)
        << wq.id;
  }
}

TEST_F(WatDivDeterminismTest, ProfilesAreIdenticalSerialAndParallel) {
  // Operator spans are opened, charged, and closed on the coordinating
  // thread only, so the aggregated profile must be *identical* between
  // serial and 8-thread runs — same tree, same rows, same byte counts,
  // and bitwise-equal simulated charges. Only wall_millis (real time)
  // may differ. Runs under the TSan CI leg, so this is also the
  // profiling-enabled parallel race check.
  auto serial = MakeDb(graph_, 1, 256);
  auto parallel = MakeDb(graph_, 8, 256);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(parallel, nullptr);

  for (const watdiv::WatDivQuery& wq : queries_) {
    SCOPED_TRACE(wq.id);
    auto parsed = sparql::ParseQuery(wq.sparql);
    ASSERT_TRUE(parsed.ok()) << parsed.status();

    obs::QueryProfile serial_profile;
    obs::QueryProfile parallel_profile;
    auto serial_result = serial->Execute(*parsed, &serial_profile);
    auto parallel_result = parallel->Execute(*parsed, &parallel_profile);
    ASSERT_TRUE(serial_result.ok()) << serial_result.status();
    ASSERT_TRUE(parallel_result.ok()) << parallel_result.status();

    ASSERT_TRUE(serial_profile.finished());
    ASSERT_TRUE(parallel_profile.finished());
    ASSERT_EQ(parallel_profile.spans().size(),
              serial_profile.spans().size());
    for (size_t i = 0; i < serial_profile.spans().size(); ++i) {
      const obs::Span& s = serial_profile.spans()[i];
      const obs::Span& p = parallel_profile.spans()[i];
      SCOPED_TRACE("span " + std::to_string(i) + " (" + s.label + ")");
      EXPECT_EQ(p.kind, s.kind);
      EXPECT_EQ(p.label, s.label);
      EXPECT_EQ(p.detail, s.detail);
      EXPECT_EQ(p.parent, s.parent);
      EXPECT_EQ(p.children, s.children);
      EXPECT_EQ(p.rows_in, s.rows_in);
      EXPECT_EQ(p.rows_out, s.rows_out);
      EXPECT_EQ(p.bytes_scanned, s.bytes_scanned);
      EXPECT_EQ(p.bytes_shuffled, s.bytes_shuffled);
      EXPECT_EQ(p.bytes_broadcast, s.bytes_broadcast);
      EXPECT_DOUBLE_EQ(p.estimated_rows, s.estimated_rows);
      // Bitwise: the simulated clock must not see real parallelism.
      EXPECT_EQ(p.charge_millis, s.charge_millis);
      EXPECT_EQ(p.total_charge_millis, s.total_charge_millis);
    }
    EXPECT_EQ(parallel_profile.TotalChargedMillis(),
              serial_profile.TotalChargedMillis());
    EXPECT_EQ(parallel_profile.simulated_millis(),
              serial_profile.simulated_millis());
  }
}

TEST_F(WatDivDeterminismTest, AllThreadCountsAgreeOnEveryQuery) {
  auto serial = MakeDb(graph_, 1, 256);
  ASSERT_NE(serial, nullptr);
  for (uint32_t threads : {2u, 4u}) {
    auto db = MakeDb(graph_, threads, 256);
    ASSERT_NE(db, nullptr);
    for (const watdiv::WatDivQuery& wq : queries_) {
      auto parsed = sparql::ParseQuery(wq.sparql);
      ASSERT_TRUE(parsed.ok()) << wq.id;
      auto result = db->Execute(parsed.value());
      auto expected = serial->Execute(parsed.value());
      ASSERT_TRUE(result.ok()) << wq.id << ": " << result.status();
      ASSERT_TRUE(expected.ok()) << wq.id << ": " << expected.status();
      ExpectBitIdentical(
          result->relation, expected->relation,
          wq.id + " at " + std::to_string(threads) + " threads");
    }
  }
}

TEST_F(WatDivDeterminismTest, KernelPathRunTwiceByteIdentityAtFullMorsels) {
  // The other fixtures use tiny morsels (64/256 rows) to maximize morsel
  // count. This case uses production-sized morsels (8192 rows) so each
  // morsel spans several kernels::kBatchRows probe batches — the
  // vectorized hash/compare/gather path runs at its real batch geometry
  // rather than degenerating to sub-batch morsels. Run-twice byte
  // identity plus parallel-vs-serial identity at 8 threads.
  auto serial = MakeDb(graph_, 1, 8192);
  auto parallel = MakeDb(graph_, 8, 8192);
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(parallel, nullptr);

  for (const watdiv::WatDivQuery& wq : queries_) {
    auto parsed = sparql::ParseQuery(wq.sparql);
    ASSERT_TRUE(parsed.ok()) << wq.id << ": " << parsed.status();

    auto first = parallel->Execute(parsed.value());
    auto second = parallel->Execute(parsed.value());
    auto serial_result = serial->Execute(parsed.value());
    ASSERT_TRUE(first.ok()) << wq.id << ": " << first.status();
    ASSERT_TRUE(second.ok()) << wq.id << ": " << second.status();
    ASSERT_TRUE(serial_result.ok())
        << wq.id << ": " << serial_result.status();

    ExpectBitIdentical(second->relation, first->relation,
                       wq.id + " kernel-path run 2 vs run 1");
    ExpectBitIdentical(first->relation, serial_result->relation,
                       wq.id + " kernel-path parallel vs serial");
    EXPECT_DOUBLE_EQ(first->simulated_millis,
                     serial_result->simulated_millis)
        << wq.id;
  }
}

}  // namespace
}  // namespace prost
