// Unit tests for PRoST's core: dataset statistics, VP store scans, the
// Property Table (flat, list, and reverse variants), the SPARQL → Join
// Tree translator, and the executor, checked on small hand-built graphs.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/io.h"

#include "core/executor.h"
#include "core/join_tree.h"
#include "core/property_table.h"
#include "core/prost_db.h"
#include "core/statistics.h"
#include "core/translator.h"
#include "core/vp_store.h"
#include "rdf/graph.h"
#include "sparql/parser.h"

namespace prost::core {
namespace {

using rdf::Term;
using rdf::TermId;

/// A small social graph used throughout:
///   u1 likes p1, p2 ; u1 age "30" ; u1 name "ann"
///   u2 likes p1      ; u2 age "30"
///   u3 name "cat"
///   p1 label "x" ; p2 label "y"
rdf::EncodedGraph SmallGraph() {
  rdf::EncodedGraph graph;
  auto add = [&](const char* s, const char* p, const char* o, bool lit) {
    graph.Add({Term::Iri(s), Term::Iri(p),
               lit ? Term::Literal(o) : Term::Iri(o)});
  };
  add("u1", "likes", "p1", false);
  add("u1", "likes", "p2", false);
  add("u1", "age", "30", true);
  add("u1", "name", "ann", true);
  add("u2", "likes", "p1", false);
  add("u2", "age", "30", true);
  add("u3", "name", "cat", true);
  add("p1", "label", "x", true);
  add("p2", "label", "y", true);
  graph.SortAndDedupe();
  return graph;
}

TermId IdOf(const rdf::EncodedGraph& graph, const std::string& lexical) {
  return graph.dictionary().Lookup(lexical);
}

// ------------------------------------------------------------ Statistics

TEST(StatisticsTest, PerPredicateCounts) {
  rdf::EncodedGraph graph = SmallGraph();
  DatasetStatistics stats = DatasetStatistics::Compute(graph);
  EXPECT_EQ(stats.total_triples(), 9u);
  EXPECT_EQ(stats.num_predicates(), 4u);
  rdf::PredicateStats likes = stats.ForPredicate(IdOf(graph, "<likes>"));
  EXPECT_EQ(likes.triple_count, 3u);
  EXPECT_EQ(likes.distinct_subjects, 2u);
  EXPECT_EQ(likes.distinct_objects, 2u);
  EXPECT_TRUE(likes.is_multi_valued());
  EXPECT_EQ(stats.ForPredicate(9999).triple_count, 0u);
}

TEST(StatisticsTest, PatternCardinality) {
  rdf::EncodedGraph graph = SmallGraph();
  DatasetStatistics stats = DatasetStatistics::Compute(graph);
  TermId likes = IdOf(graph, "<likes>");
  sparql::TriplePattern open{Term::Variable("s"), Term::Iri("likes"),
                             Term::Variable("o")};
  EXPECT_DOUBLE_EQ(stats.EstimatePatternCardinality(open, likes), 3.0);
  sparql::TriplePattern bound_object{Term::Variable("s"),
                                     Term::Iri("likes"), Term::Iri("p1")};
  EXPECT_DOUBLE_EQ(stats.EstimatePatternCardinality(bound_object, likes),
                   1.5);
  sparql::TriplePattern bound_subject{Term::Iri("u1"), Term::Iri("likes"),
                                      Term::Variable("o")};
  EXPECT_DOUBLE_EQ(stats.EstimatePatternCardinality(bound_subject, likes),
                   1.5);
}

TEST(StatisticsTest, PairwiseSubjectOverlap) {
  rdf::EncodedGraph graph = SmallGraph();
  DatasetStatistics basic = DatasetStatistics::Compute(graph);
  DatasetStatistics precise = DatasetStatistics::ComputeWithPairwise(graph);
  TermId likes = IdOf(graph, "<likes>");
  TermId age = IdOf(graph, "<age>");
  TermId name = IdOf(graph, "<name>");
  TermId label = IdOf(graph, "<label>");
  EXPECT_FALSE(basic.has_pairwise());
  EXPECT_TRUE(precise.has_pairwise());
  // Without pairwise data the overlap falls back to min of singles.
  EXPECT_EQ(basic.SubjectOverlap(likes, age), 2u);
  // u1 and u2 have both likes and age.
  EXPECT_EQ(precise.SubjectOverlap(likes, age), 2u);
  EXPECT_EQ(precise.SubjectOverlap(age, likes), 2u);  // Symmetric.
  // Only u1 has both likes and name; basic's bound is 2.
  EXPECT_EQ(precise.SubjectOverlap(likes, name), 1u);
  EXPECT_EQ(basic.SubjectOverlap(likes, name), 2u);
  // likes and label never share a subject.
  EXPECT_EQ(precise.SubjectOverlap(likes, label), 0u);
  // Same predicate: its own distinct-subject count.
  EXPECT_EQ(precise.SubjectOverlap(likes, likes), 2u);
}

// -------------------------------------------------------------- VpStore

TEST(VpStoreTest, BuildShape) {
  rdf::EncodedGraph graph = SmallGraph();
  VpStore vp = VpStore::Build(graph, 3);
  EXPECT_EQ(vp.num_predicates(), 4u);
  const auto* likes = vp.Find(IdOf(graph, "<likes>"));
  ASSERT_NE(likes, nullptr);
  EXPECT_EQ(likes->total_rows, 3u);
  EXPECT_EQ(likes->partitions.size(), 3u);
  EXPECT_EQ(vp.Find(9999), nullptr);
  EXPECT_GT(vp.TotalBytesEstimate(), 0u);
}

TEST(VpStoreTest, ScanOpenPattern) {
  rdf::EncodedGraph graph = SmallGraph();
  VpStore vp = VpStore::Build(graph, 3);
  cluster::CostModel cost((cluster::ClusterConfig()));
  cost.BeginStage("t");
  auto relation = vp.Scan(IdOf(graph, "<likes>"), PatternTerm::Var("s"),
                          PatternTerm::Var("o"), cost);
  cost.EndStage();
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->column_names(),
            (std::vector<std::string>{"s", "o"}));
  EXPECT_EQ(relation->TotalRows(), 3u);
  EXPECT_EQ(relation->hash_partitioned_by(), 0);
  EXPECT_GT(cost.counters().bytes_scanned, 0u);
}

TEST(VpStoreTest, ScanConstants) {
  rdf::EncodedGraph graph = SmallGraph();
  VpStore vp = VpStore::Build(graph, 3);
  cluster::CostModel cost((cluster::ClusterConfig()));
  cost.BeginStage("t");
  // Constant subject.
  auto by_subject =
      vp.Scan(IdOf(graph, "<likes>"), PatternTerm::Const(IdOf(graph, "<u1>")),
              PatternTerm::Var("o"), cost);
  ASSERT_TRUE(by_subject.ok());
  EXPECT_EQ(by_subject->TotalRows(), 2u);
  EXPECT_EQ(by_subject->num_columns(), 1u);
  // Constant object.
  auto by_object =
      vp.Scan(IdOf(graph, "<likes>"), PatternTerm::Var("s"),
              PatternTerm::Const(IdOf(graph, "<p1>")), cost);
  ASSERT_TRUE(by_object.ok());
  EXPECT_EQ(by_object->TotalRows(), 2u);
  // Impossible constant (id 0) matches nothing.
  auto impossible = vp.Scan(IdOf(graph, "<likes>"), PatternTerm::Var("s"),
                            PatternTerm::Const(rdf::kNullTermId), cost);
  ASSERT_TRUE(impossible.ok());
  EXPECT_EQ(impossible->TotalRows(), 0u);
  // Unknown predicate: empty but well-formed.
  auto unknown = vp.Scan(9999, PatternTerm::Var("s"), PatternTerm::Var("o"),
                         cost);
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->TotalRows(), 0u);
  cost.EndStage();
}

TEST(VpStoreTest, ScanSameVariableTwice) {
  rdf::EncodedGraph graph;
  graph.Add({Term::Iri("a"), Term::Iri("p"), Term::Iri("a")});
  graph.Add({Term::Iri("a"), Term::Iri("p"), Term::Iri("b")});
  VpStore vp = VpStore::Build(graph, 2);
  cluster::CostModel cost((cluster::ClusterConfig()));
  cost.BeginStage("t");
  auto relation = vp.Scan(IdOf(graph, "<p>"), PatternTerm::Var("x"),
                          PatternTerm::Var("x"), cost);
  cost.EndStage();
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->num_columns(), 1u);
  EXPECT_EQ(relation->TotalRows(), 1u);  // only a-p-a
}

TEST(VpStoreTest, NoVariablesIsUnimplemented) {
  rdf::EncodedGraph graph = SmallGraph();
  VpStore vp = VpStore::Build(graph, 2);
  cluster::CostModel cost((cluster::ClusterConfig()));
  auto result = vp.Scan(IdOf(graph, "<likes>"), PatternTerm::Const(1),
                        PatternTerm::Const(2), cost);
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

// -------------------------------------------------------- PropertyTable

TEST(PropertyTableTest, BuildShape) {
  rdf::EncodedGraph graph = SmallGraph();
  DatasetStatistics stats = DatasetStatistics::Compute(graph);
  PropertyTable pt = PropertyTable::Build(graph, stats, 3);
  // Distinct subjects: u1, u2, u3, p1, p2.
  EXPECT_EQ(pt.num_rows(), 5u);
  // Columns: key + 4 predicates.
  EXPECT_EQ(pt.num_columns(), 5u);
  EXPECT_TRUE(pt.HasPredicate(IdOf(graph, "<likes>")));
  EXPECT_FALSE(pt.HasPredicate(9999));
  EXPECT_GT(pt.TotalBytesEstimate(), 0u);
}

TEST(PropertyTableTest, StarScanJoinsWithinRow) {
  rdf::EncodedGraph graph = SmallGraph();
  DatasetStatistics stats = DatasetStatistics::Compute(graph);
  PropertyTable pt = PropertyTable::Build(graph, stats, 3);
  cluster::CostModel cost((cluster::ClusterConfig()));
  cost.BeginStage("t");
  // ?s likes ?o . ?s age ?a  -> only u1 (x2 products) and u2 (x1).
  std::vector<PropertyTable::ColumnPattern> patterns = {
      {IdOf(graph, "<likes>"), PatternTerm::Var("o")},
      {IdOf(graph, "<age>"), PatternTerm::Var("a")},
  };
  auto relation = pt.Scan(PatternTerm::Var("s"), patterns, cost);
  cost.EndStage();
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->column_names(),
            (std::vector<std::string>{"s", "o", "a"}));
  EXPECT_EQ(relation->TotalRows(), 3u);
  EXPECT_EQ(relation->hash_partitioned_by(), 0);
}

TEST(PropertyTableTest, ListExplosionCrossProduct) {
  // Two multi-valued patterns on the same subject multiply out.
  rdf::EncodedGraph graph;
  auto add = [&](const char* s, const char* p, const char* o) {
    graph.Add({Term::Iri(s), Term::Iri(p), Term::Iri(o)});
  };
  add("s", "p", "a");
  add("s", "p", "b");
  add("s", "q", "x");
  add("s", "q", "y");
  add("s", "q", "z");
  add("t", "p", "a");  // makes p multi-valued overall but t lacks q
  DatasetStatistics stats = DatasetStatistics::Compute(graph);
  PropertyTable pt = PropertyTable::Build(graph, stats, 2);
  cluster::CostModel cost((cluster::ClusterConfig()));
  cost.BeginStage("t");
  std::vector<PropertyTable::ColumnPattern> patterns = {
      {IdOf(graph, "<p>"), PatternTerm::Var("v")},
      {IdOf(graph, "<q>"), PatternTerm::Var("w")},
  };
  auto relation = pt.Scan(PatternTerm::Var("s"), patterns, cost);
  cost.EndStage();
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->TotalRows(), 6u);  // 2 x 3 for s; t filtered out.
}

TEST(PropertyTableTest, ConstantsAndRepeatedVariables) {
  rdf::EncodedGraph graph = SmallGraph();
  DatasetStatistics stats = DatasetStatistics::Compute(graph);
  PropertyTable pt = PropertyTable::Build(graph, stats, 3);
  cluster::CostModel cost((cluster::ClusterConfig()));
  cost.BeginStage("t");
  // Constant object: ?s likes p1 . ?s age ?a
  std::vector<PropertyTable::ColumnPattern> patterns = {
      {IdOf(graph, "<likes>"), PatternTerm::Const(IdOf(graph, "<p1>"))},
      {IdOf(graph, "<age>"), PatternTerm::Var("a")},
  };
  auto relation = pt.Scan(PatternTerm::Var("s"), patterns, cost);
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->TotalRows(), 2u);  // u1 and u2
  EXPECT_EQ(relation->column_names(),
            (std::vector<std::string>{"s", "a"}));

  // Constant subject.
  std::vector<PropertyTable::ColumnPattern> by_subject = {
      {IdOf(graph, "<likes>"), PatternTerm::Var("o")},
  };
  auto u1 = pt.Scan(PatternTerm::Const(IdOf(graph, "<u1>")), by_subject,
                    cost);
  ASSERT_TRUE(u1.ok());
  EXPECT_EQ(u1->TotalRows(), 2u);
  EXPECT_EQ(u1->num_columns(), 1u);

  // Repeated variable across two patterns: ?s likes ?x . ?s name ?x never
  // matches (products vs literals).
  std::vector<PropertyTable::ColumnPattern> repeated = {
      {IdOf(graph, "<likes>"), PatternTerm::Var("x")},
      {IdOf(graph, "<name>"), PatternTerm::Var("x")},
  };
  auto none = pt.Scan(PatternTerm::Var("s"), repeated, cost);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->TotalRows(), 0u);
  cost.EndStage();
}

TEST(PropertyTableTest, AbsentPredicateYieldsEmpty) {
  rdf::EncodedGraph graph = SmallGraph();
  DatasetStatistics stats = DatasetStatistics::Compute(graph);
  PropertyTable pt = PropertyTable::Build(graph, stats, 3);
  cluster::CostModel cost((cluster::ClusterConfig()));
  cost.BeginStage("t");
  std::vector<PropertyTable::ColumnPattern> patterns = {
      {IdOf(graph, "<likes>"), PatternTerm::Var("o")},
      {9999, PatternTerm::Var("z")},
  };
  auto relation = pt.Scan(PatternTerm::Var("s"), patterns, cost);
  cost.EndStage();
  ASSERT_TRUE(relation.ok());
  EXPECT_EQ(relation->TotalRows(), 0u);
  EXPECT_EQ(relation->num_columns(), 3u);
}

TEST(PropertyTableTest, ReverseTableGroupsByObject) {
  rdf::EncodedGraph graph = SmallGraph();
  DatasetStatistics stats = DatasetStatistics::Compute(graph);
  PropertyTable reverse = PropertyTable::Build(graph, stats, 3,
                                               /*keyed_on_object=*/true);
  EXPECT_TRUE(reverse.keyed_on_object());
  cluster::CostModel cost((cluster::ClusterConfig()));
  cost.BeginStage("t");
  // ?a likes ?p . ?b likes ?p  (same-object group, value = subject).
  std::vector<PropertyTable::ColumnPattern> patterns = {
      {IdOf(graph, "<likes>"), PatternTerm::Var("a")},
      {IdOf(graph, "<likes>"), PatternTerm::Var("b")},
  };
  auto relation = reverse.Scan(PatternTerm::Var("p"), patterns, cost);
  cost.EndStage();
  ASSERT_TRUE(relation.ok());
  // p1 is liked by {u1,u2} -> 4 pairs; p2 by {u1} -> 1 pair.
  EXPECT_EQ(relation->TotalRows(), 5u);
}

// ------------------------------------------------------------ JoinTree

TranslatorOptions DefaultOptions() { return TranslatorOptions{}; }

Result<JoinTree> Plan(const rdf::EncodedGraph& graph, const char* text,
                      TranslatorOptions options = DefaultOptions()) {
  auto query = sparql::ParseQuery(text);
  if (!query.ok()) return query.status();
  DatasetStatistics stats = DatasetStatistics::Compute(graph);
  return Translate(*query, stats, graph.dictionary(), options);
}

TEST(TranslatorTest, GroupsSameSubjectIntoPtNode) {
  rdf::EncodedGraph graph = SmallGraph();
  auto tree = Plan(graph,
                   "SELECT * WHERE { ?s <likes> ?o . ?s <age> ?a . }");
  ASSERT_TRUE(tree.ok()) << tree.status();
  ASSERT_EQ(tree->nodes.size(), 1u);
  EXPECT_EQ(tree->nodes[0].kind, NodeKind::kPropertyTable);
  EXPECT_EQ(tree->nodes[0].patterns.size(), 2u);
  EXPECT_EQ(tree->TotalPatterns(), 2u);
}

TEST(TranslatorTest, SinglePatternsBecomeVpNodes) {
  rdf::EncodedGraph graph = SmallGraph();
  auto tree = Plan(graph,
                   "SELECT * WHERE { ?s <likes> ?p . ?p <label> ?l . }");
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->nodes.size(), 2u);
  for (const auto& node : tree->nodes) {
    EXPECT_EQ(node.kind, NodeKind::kVerticalPartitioning);
  }
}

TEST(TranslatorTest, PropertyTableDisabled) {
  rdf::EncodedGraph graph = SmallGraph();
  TranslatorOptions options;
  options.use_property_table = false;
  auto tree = Plan(graph,
                   "SELECT * WHERE { ?s <likes> ?o . ?s <age> ?a . }",
                   options);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->nodes.size(), 2u);
}

TEST(TranslatorTest, LiteralNodeGetsHighestPriority) {
  rdf::EncodedGraph graph = SmallGraph();
  // likes has 3 tuples; name with a constant object estimates below 1 and
  // must be planned first; the larger node becomes the root.
  auto tree = Plan(graph,
                   "SELECT * WHERE { ?s <likes> ?o . ?s <name> \"ann\" . }");
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->nodes.size(), 1u);  // Same subject: one PT node.
  auto vp_tree = [&] {
    TranslatorOptions options;
    options.use_property_table = false;
    return Plan(graph,
                "SELECT * WHERE { ?s <likes> ?o . ?s <name> \"ann\" . }",
                options);
  }();
  ASSERT_TRUE(vp_tree.ok());
  ASSERT_EQ(vp_tree->nodes.size(), 2u);
  EXPECT_TRUE(vp_tree->nodes[0].patterns[0].source.HasConstantObject());
  EXPECT_LT(vp_tree->nodes[0].estimated_cardinality,
            vp_tree->nodes[1].estimated_cardinality);
}

TEST(TranslatorTest, OrderKeepsTreeConnected) {
  rdf::EncodedGraph graph = SmallGraph();
  // Chain u -> p -> label; the middle node must never be joined last if
  // it is the only bridge.
  auto tree = Plan(
      graph,
      "SELECT * WHERE { ?u <age> ?a . ?u <likes> ?p . ?p <label> ?l . }");
  ASSERT_TRUE(tree.ok());
  std::set<std::string> bound;
  for (size_t i = 0; i < tree->nodes.size(); ++i) {
    if (i > 0) {
      bool shares = false;
      for (const std::string& v : tree->nodes[i].Variables()) {
        if (bound.count(v)) shares = true;
      }
      EXPECT_TRUE(shares) << "node " << i << " joins without a shared var";
    }
    for (const std::string& v : tree->nodes[i].Variables()) bound.insert(v);
  }
}

TEST(TranslatorTest, ReversePtGroupsLeftoverSameObjectPatterns) {
  rdf::EncodedGraph graph = SmallGraph();
  TranslatorOptions options;
  options.use_reverse_property_table = true;
  auto tree = Plan(graph,
                   "SELECT * WHERE { ?a <likes> ?p . ?b <likes> ?p . }",
                   options);
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree->nodes.size(), 1u);
  EXPECT_EQ(tree->nodes[0].kind, NodeKind::kReversePropertyTable);
}

TEST(TranslatorTest, PairwiseStatsSharpenPtEstimates) {
  rdf::EncodedGraph graph = SmallGraph();
  auto query = sparql::ParseQuery(
      "SELECT * WHERE { ?s <likes> ?o . ?s <name> ?n . }");
  ASSERT_TRUE(query.ok());
  DatasetStatistics basic = DatasetStatistics::Compute(graph);
  DatasetStatistics precise = DatasetStatistics::ComputeWithPairwise(graph);
  TranslatorOptions options;
  auto basic_tree = Translate(*query, basic, graph.dictionary(), options);
  auto precise_tree =
      Translate(*query, precise, graph.dictionary(), options);
  ASSERT_TRUE(basic_tree.ok());
  ASSERT_TRUE(precise_tree.ok());
  // Only u1 carries both predicates; the precise estimate must be
  // strictly tighter than the basic min-of-singles.
  EXPECT_LT(precise_tree->nodes[0].estimated_cardinality,
            basic_tree->nodes[0].estimated_cardinality);
  EXPECT_DOUBLE_EQ(precise_tree->nodes[0].estimated_cardinality, 1.0);
}

TEST(TranslatorTest, ReversePtGateSkipsSelectivelyBoundObjects) {
  rdf::EncodedGraph graph = SmallGraph();
  TranslatorOptions options;
  options.use_reverse_property_table = true;
  // ?p is selectively bound (?p label "x" has a constant object), so the
  // same-object group {likes(?a,?p), likes(?b,?p)} must NOT become a
  // reverse-PT node.
  auto gated = Plan(graph,
                    "SELECT * WHERE { ?a <likes> ?p . ?b <likes> ?p . "
                    "?p <label> \"x\" . }",
                    options);
  ASSERT_TRUE(gated.ok());
  for (const auto& node : gated->nodes) {
    EXPECT_NE(node.kind, NodeKind::kReversePropertyTable)
        << gated->ToString();
  }
  // Without the selective constraint, the group forms.
  auto grouped = Plan(graph,
                      "SELECT * WHERE { ?a <likes> ?p . ?b <likes> ?p . }",
                      options);
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ(grouped->nodes.size(), 1u);
  EXPECT_EQ(grouped->nodes[0].kind, NodeKind::kReversePropertyTable);
}

TEST(TranslatorTest, FullyConstantPatternRejected) {
  rdf::EncodedGraph graph = SmallGraph();
  auto tree = Plan(graph, "SELECT * WHERE { <u1> <likes> <p1> . }");
  EXPECT_EQ(tree.status().code(), StatusCode::kUnimplemented);
}

TEST(JoinTreeTest, LabelsAndToString) {
  rdf::EncodedGraph graph = SmallGraph();
  auto tree = Plan(graph,
                   "SELECT * WHERE { ?s <likes> ?o . ?s <age> ?a . }");
  ASSERT_TRUE(tree.ok());
  EXPECT_NE(tree->nodes[0].Label().find("PT("), std::string::npos);
  EXPECT_NE(tree->ToString().find("root"), std::string::npos);
}

// ------------------------------------------------------------- Executor

TEST(ExecutorTest, EndToEndOnSmallGraph) {
  ProstDb::Options options;
  auto db = ProstDb::LoadFromGraph(SmallGraph(), options);
  ASSERT_TRUE(db.ok()) << db.status();

  auto result = (*db)->ExecuteSparql(
      "SELECT * WHERE { ?s <likes> ?p . ?p <label> ?l . }");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 3u);
  EXPECT_GT(result->simulated_millis, 0.0);

  auto decoded = (*db)->DecodeRows(result->relation);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 3u);
  // Columns follow the sorted SELECT * projection: l, p, s.
  EXPECT_EQ(result->relation.column_names(),
            (std::vector<std::string>{"l", "p", "s"}));
}

TEST(ExecutorTest, DistinctAndLimit) {
  ProstDb::Options options;
  auto db = ProstDb::LoadFromGraph(SmallGraph(), options);
  ASSERT_TRUE(db.ok());
  // ?s likes ?p -> 3 rows; distinct subjects -> 2.
  auto distinct = (*db)->ExecuteSparql(
      "SELECT DISTINCT ?s WHERE { ?s <likes> ?p . }");
  ASSERT_TRUE(distinct.ok()) << distinct.status();
  EXPECT_EQ(distinct->num_rows(), 2u);
  auto limited = (*db)->ExecuteSparql(
      "SELECT ?s WHERE { ?s <likes> ?p . } LIMIT 1");
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->num_rows(), 1u);
}

TEST(ExecutorTest, UnknownConstantGivesEmptyResult) {
  ProstDb::Options options;
  auto db = ProstDb::LoadFromGraph(SmallGraph(), options);
  ASSERT_TRUE(db.ok());
  auto result = (*db)->ExecuteSparql(
      "SELECT * WHERE { ?s <likes> <no-such-product> . }");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 0u);
}

TEST(ExecutorTest, EmptyTreeRejected) {
  ProstDb::Options options;
  auto db = ProstDb::LoadFromGraph(SmallGraph(), options);
  ASSERT_TRUE(db.ok());
  JoinTree empty;
  sparql::Query query;
  cluster::CostModel cost(options.cluster);
  auto result = ExecuteJoinTree(empty, query, (*db)->vp_store(), nullptr,
                                nullptr, options.join, (*db)->dictionary(),
                                cost);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProstDbTest, LoadFromNTriplesAndReports) {
  ProstDb::Options options;
  auto db = ProstDb::LoadFromNTriples(
      "<u1> <p> <v1> .\n<u1> <p> <v1> .\n<u2> <p> <v2> .\n", options);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ((*db)->load_report().input_triples, 2u);  // Deduplicated.
  EXPECT_GT((*db)->load_report().simulated_load_millis, 0.0);
  EXPECT_GT((*db)->load_report().storage_bytes, 0u);
  EXPECT_FALSE(ProstDb::LoadFromNTriples("garbage", options).ok());
}

TEST(ProstDbTest, PersistWritesFiles) {
  ProstDb::Options options;
  options.use_reverse_property_table = true;
  auto db = ProstDb::LoadFromGraph(SmallGraph(), options);
  ASSERT_TRUE(db.ok());
  std::string dir = ::testing::TempDir() + "/prost_persist_test";
  auto bytes = (*db)->PersistTo(dir);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  EXPECT_GT(*bytes, 0u);
  (void)RemoveAllRecursively(dir);
}

TEST(ProstDbTest, VpOnlyMatchesMixedResults) {
  ProstDb::Options mixed_options;
  auto mixed = ProstDb::LoadFromGraph(SmallGraph(), mixed_options);
  ProstDb::Options vp_options;
  vp_options.use_property_table = false;
  auto vp = ProstDb::LoadFromGraph(SmallGraph(), vp_options);
  ASSERT_TRUE(mixed.ok());
  ASSERT_TRUE(vp.ok());
  const char* query =
      "SELECT * WHERE { ?s <likes> ?p . ?s <age> ?a . ?p <label> ?l . }";
  auto a = (*mixed)->ExecuteSparql(query);
  auto b = (*vp)->ExecuteSparql(query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->relation.CollectSortedRows(),
            b->relation.CollectSortedRows());
  EXPECT_GT(a->num_rows(), 0u);
}

}  // namespace
}  // namespace prost::core
