#ifndef PROST_TESTS_REFERENCE_EVALUATOR_H_
#define PROST_TESTS_REFERENCE_EVALUATOR_H_

// Test-only brute-force BGP evaluator: the semantic ground truth every
// system under test is compared against. Backtracking over triple
// patterns with a variable-binding map; bag semantics (no duplicate
// elimination unless the query says DISTINCT), matching SPARQL BGP
// evaluation over a set-valued RDF graph.

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "rdf/graph.h"
#include "sparql/algebra.h"

namespace prost::testing {

using Binding = std::map<std::string, rdf::TermId>;

/// Triples bucketed by predicate id — queries in this suite always have
/// concrete predicates, so each backtracking level only scans one bucket.
using PredicateIndex =
    std::map<rdf::TermId, std::vector<rdf::EncodedTriple>>;

inline PredicateIndex BuildPredicateIndex(const rdf::EncodedGraph& graph) {
  PredicateIndex index;
  for (const rdf::EncodedTriple& t : graph.triples()) {
    index[t.predicate].push_back(t);
  }
  return index;
}

inline void MatchPatternsRecursive(
    const std::vector<sparql::TriplePattern>& patterns, size_t index,
    const PredicateIndex& predicate_index,
    const rdf::Dictionary& dictionary, Binding& binding,
    std::vector<Binding>& out) {
  if (index == patterns.size()) {
    out.push_back(binding);
    return;
  }
  const sparql::TriplePattern& pattern = patterns[index];
  static const std::vector<rdf::EncodedTriple> kEmpty;
  const std::vector<rdf::EncodedTriple>* triples_ptr = &kEmpty;
  if (!pattern.predicate.is_variable()) {
    auto it = predicate_index.find(
        dictionary.Lookup(pattern.predicate.ToNTriples()));
    if (it != predicate_index.end()) triples_ptr = &it->second;
  } else {
    // Variable predicates: fall back to the full graph.
    static thread_local std::vector<rdf::EncodedTriple> all;
    all.clear();
    for (const auto& [p, bucket] : predicate_index) {
      all.insert(all.end(), bucket.begin(), bucket.end());
    }
    triples_ptr = &all;
  }
  const std::vector<rdf::EncodedTriple>& triples = *triples_ptr;
  auto matches = [&](const rdf::Term& term, rdf::TermId id,
                     const Binding& b) {
    if (!term.is_variable()) {
      return dictionary.Lookup(term.ToNTriples()) == id;
    }
    auto it = b.find(term.value);
    return it == b.end() || it->second == id;
  };
  for (const rdf::EncodedTriple& t : triples) {
    if (!matches(pattern.subject, t.subject, binding)) continue;
    if (!matches(pattern.predicate, t.predicate, binding)) continue;
    // The object must also be consistent with a subject binding made by
    // this very triple (e.g. ?x p ?x), so extend stepwise.
    Binding extended = binding;
    if (pattern.subject.is_variable()) {
      extended[pattern.subject.value] = t.subject;
    }
    if (pattern.predicate.is_variable()) {
      extended[pattern.predicate.value] = t.predicate;
    }
    if (!matches(pattern.object, t.object, extended)) continue;
    if (pattern.object.is_variable()) {
      extended[pattern.object.value] = t.object;
    }
    MatchPatternsRecursive(patterns, index + 1, predicate_index, dictionary,
                           extended, out);
  }
}

/// Independent re-implementation of the comparison semantics (numeric for
/// numeric literals, term/lexical otherwise) so the library's
/// core/modifiers.cc has a second opinion to be tested against.
struct RefKey {
  bool is_numeric = false;
  double number = 0;
  std::string lexical;
};

inline RefKey RefKeyOf(const rdf::Term& term) {
  RefKey key;
  key.lexical = term.ToNTriples();
  if (term.is_literal() &&
      term.datatype.rfind("http://www.w3.org/2001/XMLSchema#", 0) == 0) {
    std::string local = term.datatype.substr(33);
    if (local == "integer" || local == "decimal" || local == "double" ||
        local == "float" || local == "int" || local == "long" ||
        local == "short" || local == "nonNegativeInteger") {
      char* end = nullptr;
      double v = std::strtod(term.value.c_str(), &end);
      if (end != nullptr && *end == '\0' && !term.value.empty()) {
        key.is_numeric = true;
        key.number = v;
      }
    }
  }
  return key;
}

inline int RefCompare(const RefKey& a, const RefKey& b) {
  if (a.is_numeric && b.is_numeric) {
    if (a.number < b.number) return -1;
    if (a.number > b.number) return 1;
    return 0;
  }
  return a.lexical.compare(b.lexical);
}

inline bool RefEval(sparql::CompareOp op, int cmp) {
  switch (op) {
    case sparql::CompareOp::kEq:
      return cmp == 0;
    case sparql::CompareOp::kNe:
      return cmp != 0;
    case sparql::CompareOp::kLt:
      return cmp < 0;
    case sparql::CompareOp::kLe:
      return cmp <= 0;
    case sparql::CompareOp::kGt:
      return cmp > 0;
    case sparql::CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

/// Evaluates `query` over `graph` — BGP matching, FILTERs, projection,
/// DISTINCT, OFFSET and LIMIT — returning sorted projected rows (ids in
/// the order of query.EffectiveProjection()). ORDER BY does not change
/// the (sorted) comparison form, but OFFSET/LIMIT require it: when the
/// query uses OFFSET or LIMIT with unordered semantics, callers should
/// compare row *counts*, not contents.
inline std::vector<std::vector<rdf::TermId>> ReferenceEvaluate(
    const sparql::Query& query, const rdf::EncodedGraph& graph) {
  std::vector<Binding> bindings;
  Binding empty;
  PredicateIndex index = BuildPredicateIndex(graph);
  MatchPatternsRecursive(query.bgp.patterns, 0, index, graph.dictionary(),
                         empty, bindings);

  // FILTER constraints.
  std::vector<Binding> filtered;
  for (const Binding& binding : bindings) {
    bool keep = true;
    for (const sparql::FilterConstraint& filter : query.filters) {
      rdf::Term lhs =
          graph.dictionary().DecodeTerm(binding.at(filter.variable)).value();
      rdf::Term rhs =
          filter.rhs_is_variable
              ? graph.dictionary()
                    .DecodeTerm(binding.at(filter.rhs_variable))
                    .value()
              : filter.rhs_term;
      if (!RefEval(filter.op, RefCompare(RefKeyOf(lhs), RefKeyOf(rhs)))) {
        keep = false;
        break;
      }
    }
    if (keep) filtered.push_back(binding);
  }

  if (query.count.has_value()) {
    uint64_t n = 0;
    if (query.count->variable.empty() || !query.count->distinct) {
      n = filtered.size();
    } else {
      std::set<rdf::TermId> distinct_values;
      for (const Binding& binding : filtered) {
        distinct_values.insert(binding.at(query.count->variable));
      }
      n = distinct_values.size();
    }
    if (query.offset > 0) return {};
    return {{rdf::VirtualIntegerId(n)}};
  }

  std::vector<std::string> projection = query.EffectiveProjection();
  std::vector<std::vector<rdf::TermId>> rows;
  rows.reserve(filtered.size());
  for (const Binding& binding : filtered) {
    std::vector<rdf::TermId> row;
    row.reserve(projection.size());
    for (const std::string& var : projection) {
      row.push_back(binding.at(var));
    }
    rows.push_back(std::move(row));
  }
  if (query.distinct) {
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  } else {
    std::sort(rows.begin(), rows.end());
  }
  if (query.offset > 0) {
    rows.erase(rows.begin(),
               rows.begin() + std::min<size_t>(rows.size(), query.offset));
  }
  if (query.limit > 0 && rows.size() > query.limit) {
    rows.resize(query.limit);
  }
  return rows;
}

}  // namespace prost::testing

#endif  // PROST_TESTS_REFERENCE_EVALUATOR_H_
