// Tests for the observability subsystem: the metrics registry, the
// query-profile span tree, and the EXPLAIN ANALYZE / JSON reports.
//
// The central invariant under test: exclusive span charges partition the
// CostModel's accounted clock, so summing them over any profile
// reproduces the query's simulated_millis — per operator attribution
// with nothing double-counted and nothing dropped.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <regex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cost_model.h"
#include "core/prost_db.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sparql/parser.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace prost {
namespace {

// ---------------------------------------------------------------------
// Metrics registry.

TEST(MetricsTest, CounterGaugeBasics) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("queries");
  counter.Increment();
  counter.Add(4);
  EXPECT_EQ(counter.value(), 5u);
  // Registration is idempotent: same name, same handle.
  EXPECT_EQ(&registry.counter("queries"), &counter);

  registry.gauge("ratio").Set(0.75);
  EXPECT_DOUBLE_EQ(registry.gauge("ratio").value(), 0.75);

  obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counter("queries"), 5u);
  EXPECT_DOUBLE_EQ(snapshot.gauge("ratio"), 0.75);
  // Missing names read as zero, not as errors.
  EXPECT_EQ(snapshot.counter("no-such"), 0u);
  EXPECT_DOUBLE_EQ(snapshot.gauge("no-such"), 0.0);
}

TEST(MetricsTest, HistogramBucketsAreInclusiveUpperBounds) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.histogram("h", {1.0, 2.0, 4.0});
  hist.Observe(0.5);    // bucket 0
  hist.Observe(1.0);    // bucket 0 (inclusive upper bound)
  hist.Observe(1.5);    // bucket 1
  hist.Observe(4.0);    // bucket 2 (inclusive upper bound)
  hist.Observe(100.0);  // overflow bucket
  EXPECT_EQ(hist.count(), 5u);
  EXPECT_DOUBLE_EQ(hist.sum(), 107.0);  // exact: sum kept in micro-units
  EXPECT_EQ(hist.bucket_count(0), 2u);
  EXPECT_EQ(hist.bucket_count(1), 1u);
  EXPECT_EQ(hist.bucket_count(2), 1u);
  EXPECT_EQ(hist.bucket_count(3), 1u);

  obs::MetricsSnapshot snapshot = registry.Snapshot();
  const auto& data = snapshot.histograms.at("h");
  EXPECT_EQ(data.count, 5u);
  EXPECT_EQ(data.bucket_counts,
            (std::vector<uint64_t>{2, 1, 1, 1}));
}

TEST(MetricsTest, ConcurrentUpdatesAreExact) {
  obs::MetricsRegistry registry;
  // Pre-register so the threads exercise the lock-free update path and
  // the (mutex-guarded) lookup path concurrently.
  registry.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kIterations = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry] {
      obs::Counter& hits = registry.counter("hits");
      obs::Histogram& lat = registry.histogram("lat", {1.0, 10.0});
      for (int i = 0; i < kIterations; ++i) {
        hits.Increment();
        lat.Observe(0.5);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  obs::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counter("hits"),
            static_cast<uint64_t>(kThreads) * kIterations);
  const auto& lat = snapshot.histograms.at("lat");
  EXPECT_EQ(lat.count, static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_DOUBLE_EQ(lat.sum, kThreads * kIterations * 0.5);
}

TEST(MetricsTest, HistogramSnapshotNeverTearsUnderConcurrentObserve) {
  // Regression: Observe used to bump `count_` first (relaxed), so a
  // concurrent Snapshot could read a count that included observations
  // whose bucket/sum updates it could not yet see — `sum(buckets)` and
  // `sum` ran *behind* `count`. With the release-count-last /
  // acquire-count-first protocol the skew is one-directional: every
  // counted observation is already in its bucket and in the sum.
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.histogram("tear", {1.0, 4.0});
  constexpr int kWriters = 4;
  constexpr int kIterations = 20000;
  constexpr double kValue = 0.5;  // 0.5 -> bucket 0; micros stay exact.
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&hist] {
      for (int i = 0; i < kIterations; ++i) hist.Observe(kValue);
    });
  }
  std::thread reader([&registry, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      obs::MetricsSnapshot snapshot = registry.Snapshot();
      const auto& data = snapshot.histograms.at("tear");
      uint64_t bucket_sum = 0;
      for (uint64_t c : data.bucket_counts) bucket_sum += c;
      // The invariants a mid-storm snapshot must keep.
      EXPECT_GE(bucket_sum, data.count);
      EXPECT_GE(data.sum + 1e-9, kValue * static_cast<double>(data.count));
    }
  });
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  // Quiescent totals are exact.
  obs::MetricsSnapshot final_snapshot = registry.Snapshot();
  const auto& data = final_snapshot.histograms.at("tear");
  constexpr uint64_t kTotal = static_cast<uint64_t>(kWriters) * kIterations;
  EXPECT_EQ(data.count, kTotal);
  EXPECT_EQ(data.bucket_counts[0], kTotal);
  EXPECT_DOUBLE_EQ(data.sum, kValue * static_cast<double>(kTotal));
}

TEST(MetricsTest, SnapshotJsonIsStable) {
  obs::MetricsRegistry registry;
  registry.counter("b.count").Add(2);
  registry.counter("a.count").Add(1);
  registry.gauge("g").Set(1.5);
  registry.histogram("h", {1.0}).Observe(0.5);
  std::string json = registry.Snapshot().ToJson();
  // Sorted keys, all three sections present.
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_LT(json.find("a.count"), json.find("b.count"));
  // Stable: rendering twice gives the same bytes.
  EXPECT_EQ(json, registry.Snapshot().ToJson());
}

// ---------------------------------------------------------------------
// QueryProfile: exclusive-charge segmentation.

TEST(QueryProfileTest, ExclusiveChargesPartitionTheClock) {
  // Drive the profile with hand-picked accounted-clock values:
  //   root opens at 0, scan spans [10, 30], join spans [30, 45] with a
  //   nested exchange [32, 40], root closes at 50.
  obs::QueryProfile profile;
  int32_t root = profile.OpenSpan(obs::SpanKind::kQuery, "q", 0.0);
  int32_t scan = profile.OpenSpan(obs::SpanKind::kScan, "scan", 10.0);
  profile.CloseSpan(scan, 30.0);
  int32_t join = profile.OpenSpan(obs::SpanKind::kJoin, "join", 30.0);
  int32_t exchange = profile.OpenSpan(obs::SpanKind::kExchange, "x", 32.0);
  profile.CloseSpan(exchange, 40.0);
  profile.CloseSpan(join, 45.0);
  profile.CloseSpan(root, 50.0);
  profile.Finish(50.0, cluster::ExecutionCounters{});

  ASSERT_EQ(profile.spans().size(), 4u);
  const obs::Span& r = profile.spans()[static_cast<size_t>(root)];
  const obs::Span& s = profile.spans()[static_cast<size_t>(scan)];
  const obs::Span& j = profile.spans()[static_cast<size_t>(join)];
  const obs::Span& x = profile.spans()[static_cast<size_t>(exchange)];

  // Tree shape.
  EXPECT_EQ(r.parent, -1);
  EXPECT_EQ(s.parent, root);
  EXPECT_EQ(j.parent, root);
  EXPECT_EQ(x.parent, join);
  EXPECT_EQ(r.children, (std::vector<int32_t>{scan, join}));
  EXPECT_EQ(j.children, (std::vector<int32_t>{exchange}));

  // Exclusive charges: the clock advance while each span was innermost.
  EXPECT_DOUBLE_EQ(r.charge_millis, 15.0);  // [0,10] + [45,50]
  EXPECT_DOUBLE_EQ(s.charge_millis, 20.0);  // [10,30]
  EXPECT_DOUBLE_EQ(j.charge_millis, 7.0);   // [30,32] + [40,45]
  EXPECT_DOUBLE_EQ(x.charge_millis, 8.0);   // [32,40]

  // Inclusive rollups.
  EXPECT_DOUBLE_EQ(x.total_charge_millis, 8.0);
  EXPECT_DOUBLE_EQ(j.total_charge_millis, 15.0);
  EXPECT_DOUBLE_EQ(r.total_charge_millis, 50.0);

  // The partition property: exclusive charges sum to the whole clock.
  EXPECT_DOUBLE_EQ(profile.TotalChargedMillis(), 50.0);
  EXPECT_TRUE(profile.finished());
  EXPECT_DOUBLE_EQ(profile.simulated_millis(), 50.0);
}

TEST(OperatorSpanTest, AttributesCostModelDeltas) {
  cluster::ClusterConfig config;
  cluster::CostModel cost(config);
  obs::QueryProfile profile;
  {
    obs::OperatorSpan query_span(&profile, cost, obs::SpanKind::kQuery, "");
    cost.BeginStage("s");
    {
      obs::OperatorSpan scan(&profile, cost, obs::SpanKind::kScan, "scan");
      scan.SetRowsOut(100);
      cost.ChargeScan(0, 1 << 20);
    }
    {
      obs::OperatorSpan shuffle(&profile, cost, obs::SpanKind::kExchange,
                                "x");
      cost.ChargeShuffle(1 << 16);
    }
    cost.EndStage();
  }
  profile.Finish(cost.ElapsedMillis(), cost.counters());

  ASSERT_EQ(profile.spans().size(), 3u);
  const obs::Span& scan = profile.spans()[1];
  const obs::Span& shuffle = profile.spans()[2];
  EXPECT_EQ(scan.rows_out, 100u);
  EXPECT_EQ(scan.bytes_scanned, static_cast<uint64_t>(1) << 20);
  EXPECT_EQ(scan.bytes_shuffled, 0u);
  EXPECT_EQ(shuffle.bytes_shuffled, static_cast<uint64_t>(1) << 16);
  EXPECT_GT(scan.charge_millis, 0.0);      // scan work raised the clock
  EXPECT_GT(shuffle.charge_millis, 0.0);   // transfer raised it again
  EXPECT_GE(scan.wall_millis, 0.0);
  // The accounted clock telescopes: sum of charges == simulated time.
  EXPECT_NEAR(profile.TotalChargedMillis(), cost.ElapsedMillis(),
              1e-9 * (1.0 + cost.ElapsedMillis()));
}

TEST(OperatorSpanTest, NullProfileIsInert) {
  cluster::ClusterConfig config;
  cluster::CostModel cost(config);
  obs::OperatorSpan span(nullptr, cost, obs::SpanKind::kScan, "scan");
  EXPECT_FALSE(span.active());
  span.SetDetail("d");
  span.SetRowsIn(1);
  span.SetRowsOut(2);
  span.SetEstimatedRows(3.0);
  span.Close();  // Idempotent, no profile to touch.
}

// ---------------------------------------------------------------------
// End-to-end: profiles from real query execution.

class ObsIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    watdiv::WatDivConfig config;
    config.target_triples = 20000;
    config.seed = 7;
    watdiv::WatDivDataset dataset = watdiv::Generate(config);
    dataset.graph.SortAndDedupe();
    core::ProstDb::Options options;
    auto db = core::ProstDb::LoadFromGraph(std::move(dataset.graph), options);
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::move(db).value();
    watdiv::WatDivDataset sizing_only;  // Queries depend only on IRIs.
    queries_ = watdiv::BasicQuerySet(sizing_only);
  }
  static void TearDownTestSuite() { db_.reset(); }

  static std::unique_ptr<core::ProstDb> db_;
  static std::vector<watdiv::WatDivQuery> queries_;
};

std::unique_ptr<core::ProstDb> ObsIntegrationTest::db_;
std::vector<watdiv::WatDivQuery> ObsIntegrationTest::queries_;

TEST_F(ObsIntegrationTest, SpanTreeMatchesPlanOnEveryQuery) {
  ASSERT_EQ(queries_.size(), 20u);
  for (const watdiv::WatDivQuery& wq : queries_) {
    SCOPED_TRACE(wq.id);
    auto parsed = sparql::ParseQuery(wq.sparql);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    auto tree = db_->Plan(*parsed);
    ASSERT_TRUE(tree.ok()) << tree.status();

    obs::QueryProfile profile;
    auto result = db_->Execute(*parsed, &profile);
    ASSERT_TRUE(result.ok()) << result.status();

    ASSERT_TRUE(profile.finished());
    ASSERT_GE(profile.root(), 0);
    const obs::Span& root = profile.spans()[0];
    EXPECT_EQ(root.kind, obs::SpanKind::kQuery);
    EXPECT_EQ(root.rows_out, result->relation.TotalRows());
    // Spans nest the way the physical plan nests, and the plan is one
    // rooted tree: the query span has exactly one child (the plan root).
    ASSERT_EQ(root.children.size(), 1u);

    // One scan span per join-tree node, labelled like the node, with the
    // planner's estimate attached; one join span per non-leading node.
    // The cost-based join_order pass may permute the scans, so labels
    // are compared as a multiset rather than positionally. The modifier
    // tail executes as plan nodes on this path, so no kModifiers
    // container span appears.
    std::vector<const obs::Span*> scans;
    std::vector<const obs::Span*> joins;
    for (const obs::Span& span : profile.spans()) {
      switch (span.kind) {
        case obs::SpanKind::kScan:
          scans.push_back(&span);
          break;
        case obs::SpanKind::kJoin:
          joins.push_back(&span);
          break;
        case obs::SpanKind::kModifiers:
          ADD_FAILURE() << "kModifiers span on the plan-interpreter path";
          break;
        default:
          break;
      }
    }
    ASSERT_EQ(scans.size(), tree->nodes.size());
    EXPECT_EQ(joins.size(), tree->nodes.size() - 1);
    std::multiset<std::string> tree_labels, scan_labels;
    for (const core::JoinTreeNode& node : tree->nodes) {
      tree_labels.insert(node.Label());
    }
    for (size_t i = 0; i < scans.size(); ++i) {
      scan_labels.insert(scans[i]->label);
      // Estimated-vs-actual cardinality is recorded per node. With the
      // statistics subsystem in place the estimate is the refined one
      // (characteristic sets + pushed-filter selectivity), not the raw
      // §3.3 priority, so assert validity rather than exact equality.
      EXPECT_TRUE(std::isfinite(scans[i]->estimated_rows)) << "node " << i;
      EXPECT_GT(scans[i]->estimated_rows, 0.0) << "node " << i;
      // Scans are leaves of the join chain: each nests under a join span
      // or under the optimizer-inserted prune feeding one (single-pattern
      // plans nest directly under the tail chain instead).
      ASSERT_GE(scans[i]->parent, 0);
      if (tree->nodes.size() > 1) {
        const obs::Span& parent =
            profile.spans()[static_cast<size_t>(scans[i]->parent)];
        EXPECT_TRUE(parent.kind == obs::SpanKind::kJoin ||
                    (parent.kind == obs::SpanKind::kProject &&
                     parent.detail == "prune"))
            << "node " << i << ": parent " << obs::SpanKindName(parent.kind);
      }
    }
    EXPECT_EQ(scan_labels, tree_labels);
    for (const obs::Span* join : joins) {
      // The strategy the optimizer resolved at plan time is what executed
      // (the interpreter asserts planned == derived in paranoid builds).
      EXPECT_TRUE(join->detail == "broadcast" || join->detail == "shuffle")
          << join->detail;
    }

    // The accounting invariant, end to end: exclusive charges sum to
    // the simulated time, and the root's rollup equals it too.
    const double tolerance = 1e-9 * (1.0 + result->simulated_millis);
    EXPECT_NEAR(profile.TotalChargedMillis(), result->simulated_millis,
                tolerance);
    EXPECT_NEAR(root.total_charge_millis, result->simulated_millis,
                tolerance);
    EXPECT_DOUBLE_EQ(profile.simulated_millis(), result->simulated_millis);
    EXPECT_EQ(profile.counters().stages, result->counters.stages);
  }
}

TEST_F(ObsIntegrationTest, ExecuteUpdatesDbMetrics) {
  obs::MetricsSnapshot before = db_->metrics().Snapshot();
  auto parsed = sparql::ParseQuery(queries_[0].sparql);
  ASSERT_TRUE(parsed.ok());
  auto result = db_->Execute(*parsed);
  ASSERT_TRUE(result.ok()) << result.status();
  obs::MetricsSnapshot after = db_->metrics().Snapshot();
  EXPECT_EQ(after.counter("query.executed"),
            before.counter("query.executed") + 1);
  EXPECT_EQ(after.counter("query.rows"),
            before.counter("query.rows") + result->relation.TotalRows());
  EXPECT_EQ(after.histograms.at("query.simulated_ms").count,
            before.counter("query.executed") + 1);
}

TEST_F(ObsIntegrationTest, ConcurrentExecuteCountsAreExact) {
  // Execute() no longer serializes, so the lifetime metrics must stay
  // exact when many queries race: counters are single atomic words (no
  // increment can be lost or torn) and the simulated_ms histogram seals
  // each observation with a release increment of its count. Mix
  // succeeding runs with deterministic budget failures and check the
  // per-query deltas add up to the thread count exactly.
  size_t victim = queries_.size();
  sparql::Query query;
  uint64_t rows_per_query = 0;
  for (size_t i = 0; i < queries_.size(); ++i) {
    auto parsed = sparql::ParseQuery(queries_[i].sparql);
    ASSERT_TRUE(parsed.ok()) << queries_[i].id << ": " << parsed.status();
    auto result = db_->Execute(*parsed);
    ASSERT_TRUE(result.ok()) << queries_[i].id << ": " << result.status();
    if (result->relation.TotalRows() >= 2) {
      victim = i;
      query = std::move(parsed).value();
      rows_per_query = result->relation.TotalRows();
      break;
    }
  }
  ASSERT_LT(victim, queries_.size()) << "no multi-row query in the set";

  engine::QueryBudget tight;
  tight.max_rows = 1;  // Trips deterministically: the query has >= 2 rows.
  constexpr int kThreads = 4;
  constexpr int kOkPerThread = 6;
  constexpr int kFailPerThread = 3;

  obs::MetricsSnapshot before = db_->metrics().Snapshot();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOkPerThread; ++i) {
        auto result = db_->Execute(query);
        ASSERT_TRUE(result.ok()) << result.status();
      }
      for (int i = 0; i < kFailPerThread; ++i) {
        auto result = db_->Execute(query, nullptr, &tight);
        ASSERT_FALSE(result.ok());
        ASSERT_EQ(result.status().code(), StatusCode::kResourceExhausted)
            << result.status();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  obs::MetricsSnapshot after = db_->metrics().Snapshot();
  const uint64_t executed = kThreads * kOkPerThread;
  const uint64_t failed = kThreads * kFailPerThread;
  EXPECT_EQ(after.counter("query.executed"),
            before.counter("query.executed") + executed);
  EXPECT_EQ(after.counter("query.failed"),
            before.counter("query.failed") + failed);
  EXPECT_EQ(after.counter("query.rows"),
            before.counter("query.rows") + executed * rows_per_query);
  // Every successful execution lands exactly one histogram observation;
  // failures land none.
  EXPECT_EQ(after.histograms.at("query.simulated_ms").count,
            before.histograms.at("query.simulated_ms").count + executed);
}

TEST_F(ObsIntegrationTest, ProfileJsonIsWellFormed) {
  auto parsed = sparql::ParseQuery(queries_[0].sparql);
  ASSERT_TRUE(parsed.ok());
  obs::QueryProfile profile;
  auto result = db_->Execute(*parsed, &profile);
  ASSERT_TRUE(result.ok()) << result.status();
  std::string json = obs::ProfileJson(profile);
  EXPECT_NE(json.find("\"simulated_millis\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"query\""), std::string::npos);
  // Balanced braces/brackets — cheap well-formedness check without a
  // JSON parser in the test deps.
  int braces = 0;
  int brackets = 0;
  for (char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

/// Masks the simulated-charge figures (which move whenever a cost-model
/// constant is tuned) while keeping structure, labels, row counts, and
/// estimates — the parts EXPLAIN ANALYZE must keep stable.
std::string MaskTimes(const std::string& text) {
  static const std::regex times(R"(\d+\.\d+ ?ms)");
  return std::regex_replace(text, times, "#ms");
}

TEST_F(ObsIntegrationTest, GoldenExplainAnalyzeForWatDivL2) {
  const watdiv::WatDivQuery* l2 = nullptr;
  for (const watdiv::WatDivQuery& wq : queries_) {
    if (wq.id == "L2") l2 = &wq;
  }
  ASSERT_NE(l2, nullptr);
  auto parsed = sparql::ParseQuery(l2->sparql);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  obs::QueryProfile profile;
  auto result = db_->Execute(*parsed, &profile);
  ASSERT_TRUE(result.ok()) << result.status();

  std::string masked = MaskTimes(obs::ExplainAnalyze(profile));
  EXPECT_EQ(masked, std::string(
      R"(EXPLAIN ANALYZE  (simulated #ms, 1 stages, charged #ms)
query  rows=1  charge=#ms (total=#ms)  scanned=175.5 KB  broadcast=216 B
└─ project v1,v2  rows=1  charge=#ms (total=#ms)  scanned=175.5 KB  broadcast=216 B
   └─ join PT(?v2 <http://db.uwaterloo.ca/~galuc/wsdbm/likes> <http://db.uwaterloo.ca/~galuc/wsdbm/Product0> ; ?v2 <http://schema.org/nationality> ?v1) [broadcast]  rows=1 (in=98)  est=1.0  charge=#ms (total=#ms)  scanned=175.5 KB  broadcast=216 B
      ├─ scan VP(<http://db.uwaterloo.ca/~galuc/wsdbm/City0> <http://www.geonames.org/ontology#parentCountry> ?v1) [VP]  rows=1 (in=20)  est=1.0  charge=#ms  scanned=1.7 KB
      └─ scan PT(?v2 <http://db.uwaterloo.ca/~galuc/wsdbm/likes> <http://db.uwaterloo.ca/~galuc/wsdbm/Product0> ; ?v2 <http://schema.org/nationality> ?v1) [PT]  rows=97 (in=2279)  est=4.0  charge=#ms  scanned=173.8 KB
)"));
}

}  // namespace
}  // namespace prost
