// Randomized property test: generate random small graphs and random
// connected BGP queries (with optional constants, repeated variables,
// filters and DISTINCT), and require all six system configurations to
// return exactly the brute-force reference answer. This sweeps plan
// shapes the hand-written tests never reach. The generators live in
// random_workload.h, shared with the parallel-executor differential test.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "baselines/system.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/prost_db.h"
#include "random_workload.h"
#include "reference_evaluator.h"
#include "sparql/parser.h"

namespace prost {
namespace {

using rdf::Term;
using testing::RandomGraph;
using testing::RandomQuery;

class RandomizedEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedEquivalenceTest, AllSystemsMatchReference) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed * 7919 + 13);
  size_t triples = 80 + rng.NextBounded(400);
  size_t entities = 10 + rng.NextBounded(40);
  size_t predicates = 2 + rng.NextBounded(6);
  auto graph = std::make_shared<const rdf::EncodedGraph>(
      RandomGraph(rng, triples, entities, predicates));

  cluster::ClusterConfig cluster;
  auto systems = baselines::MakeAllSystems(graph, cluster);
  ASSERT_TRUE(systems.ok()) << systems.status();
  auto vp_only = baselines::MakeProstVpOnly(graph, cluster);
  ASSERT_TRUE(vp_only.ok());
  core::ProstDb::Options reverse_options;
  reverse_options.cluster = cluster;
  reverse_options.use_reverse_property_table = true;
  auto reverse_db =
      core::ProstDb::LoadFromSharedGraph(graph, reverse_options);
  ASSERT_TRUE(reverse_db.ok());

  int interesting = 0;
  for (int round = 0; round < 12; ++round) {
    sparql::Query query;
    if (round == 0) {
      // One guaranteed non-empty query per seed: an open scan of a
      // predicate that actually occurs in the data.
      sparql::TriplePattern pattern;
      pattern.subject = Term::Variable("v0");
      pattern.object = Term::Variable("v1");
      rdf::TermId predicate_id = graph->DistinctPredicates().front();
      pattern.predicate = *graph->dictionary().DecodeTerm(predicate_id);
      query.bgp.patterns.push_back(std::move(pattern));
    } else {
      size_t num_patterns = 1 + rng.NextBounded(4);
      query = RandomQuery(rng, *graph, num_patterns, predicates);
    }
    if (!sparql::ValidateQuery(query).ok()) continue;  // e.g. all-const.
    SCOPED_TRACE("seed " + std::to_string(seed) + " round " +
                 std::to_string(round) + "\n" + query.ToString());

    auto expected = testing::ReferenceEvaluate(query, *graph);
    if (!expected.empty()) ++interesting;
    for (const auto& system : *systems) {
      auto result = system->Execute(query);
      ASSERT_TRUE(result.ok()) << system->name() << ": " << result.status();
      EXPECT_EQ(result->relation.CollectSortedRows(), expected)
          << system->name();
    }
    auto vp_result = (*vp_only)->Execute(query);
    ASSERT_TRUE(vp_result.ok()) << vp_result.status();
    EXPECT_EQ(vp_result->relation.CollectSortedRows(), expected);
    auto reverse_result = (*reverse_db)->Execute(query);
    ASSERT_TRUE(reverse_result.ok()) << reverse_result.status();
    EXPECT_EQ(reverse_result->relation.CollectSortedRows(), expected)
        << "reverse PT";
  }
  // The generator must not degenerate into always-empty answers.
  EXPECT_GT(interesting, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedEquivalenceTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace prost
