// Randomized property test: generate random small graphs and random
// connected BGP queries (with optional constants, repeated variables,
// filters and DISTINCT), and require all six system configurations to
// return exactly the brute-force reference answer. This sweeps plan
// shapes the hand-written tests never reach.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "baselines/system.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "core/prost_db.h"
#include "reference_evaluator.h"
#include "sparql/parser.h"

namespace prost {
namespace {

using rdf::Term;

/// A random graph over a small vocabulary so joins actually connect:
/// `entities` subjects/objects, `predicates` predicates, some literal
/// objects.
rdf::EncodedGraph RandomGraph(Rng& rng, size_t triples, size_t entities,
                              size_t predicates) {
  rdf::EncodedGraph graph;
  for (size_t i = 0; i < triples; ++i) {
    std::string s = StrFormat("http://e/%llu",
                              static_cast<unsigned long long>(
                                  rng.NextBounded(entities)));
    std::string p = StrFormat("http://p/%llu",
                              static_cast<unsigned long long>(
                                  rng.NextBounded(predicates)));
    Term object =
        rng.NextBernoulli(0.3)
            ? Term::TypedLiteral(
                  std::to_string(rng.NextBounded(20)),
                  "http://www.w3.org/2001/XMLSchema#integer")
            : Term::Iri(StrFormat("http://e/%llu",
                                  static_cast<unsigned long long>(
                                      rng.NextBounded(entities))));
    graph.Add({Term::Iri(s), Term::Iri(p), std::move(object)});
  }
  graph.SortAndDedupe();
  return graph;
}

/// A random connected BGP: each pattern after the first reuses one
/// already-bound variable in subject or object position.
sparql::Query RandomQuery(Rng& rng, const rdf::EncodedGraph& graph,
                          size_t num_patterns, size_t predicates) {
  sparql::Query query;
  std::vector<std::string> bound = {"v0"};
  size_t next_var = 1;
  auto fresh_var = [&] {
    std::string name = StrFormat("v%zu", next_var++);
    bound.push_back(name);
    return name;
  };
  auto random_bound = [&] { return bound[rng.NextBounded(bound.size())]; };
  auto random_entity_id = [&]() -> rdf::TermId {
    // A term id that exists in the data, for non-vacuous constants.
    if (graph.size() == 0) return rdf::kNullTermId;
    const auto& t = graph.triples()[rng.NextBounded(graph.size())];
    return rng.NextBernoulli(0.5) ? t.subject : t.object;
  };

  for (size_t i = 0; i < num_patterns; ++i) {
    sparql::TriplePattern pattern;
    pattern.predicate = Term::Iri(StrFormat(
        "http://p/%llu",
        static_cast<unsigned long long>(rng.NextBounded(predicates))));
    bool reuse_in_subject = i == 0 || rng.NextBernoulli(0.5);
    // Subject position.
    if (i > 0 && reuse_in_subject) {
      pattern.subject = Term::Variable(random_bound());
    } else if (i == 0 || rng.NextBernoulli(0.85)) {
      pattern.subject = Term::Variable(fresh_var());
    } else {
      auto decoded = graph.dictionary().DecodeTerm(random_entity_id());
      pattern.subject = decoded.ok() && !decoded->is_literal()
                            ? *decoded
                            : Term::Variable(fresh_var());
    }
    // Object position.
    if (i > 0 && !reuse_in_subject) {
      pattern.object = Term::Variable(random_bound());
    } else if (rng.NextBernoulli(0.75)) {
      pattern.object = Term::Variable(fresh_var());
    } else {
      auto decoded = graph.dictionary().DecodeTerm(random_entity_id());
      pattern.object =
          decoded.ok() ? *decoded : Term::Variable(fresh_var());
    }
    query.bgp.patterns.push_back(std::move(pattern));
  }

  // Occasional FILTER over some bound variable.
  if (rng.NextBernoulli(0.4)) {
    sparql::FilterConstraint filter;
    filter.variable = random_bound();
    filter.op = static_cast<sparql::CompareOp>(rng.NextBounded(6));
    if (rng.NextBernoulli(0.3) && bound.size() > 1) {
      filter.rhs_is_variable = true;
      filter.rhs_variable = random_bound();
    } else if (rng.NextBernoulli(0.5)) {
      filter.rhs_term = Term::TypedLiteral(
          std::to_string(rng.NextBounded(20)),
          "http://www.w3.org/2001/XMLSchema#integer");
    } else {
      auto decoded = graph.dictionary().DecodeTerm(random_entity_id());
      filter.rhs_term = decoded.ok() ? *decoded : Term::Literal("x");
    }
    query.filters.push_back(std::move(filter));
  }
  query.distinct = rng.NextBernoulli(0.3);
  return query;
}

class RandomizedEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedEquivalenceTest, AllSystemsMatchReference) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng rng(seed * 7919 + 13);
  size_t triples = 80 + rng.NextBounded(400);
  size_t entities = 10 + rng.NextBounded(40);
  size_t predicates = 2 + rng.NextBounded(6);
  auto graph = std::make_shared<const rdf::EncodedGraph>(
      RandomGraph(rng, triples, entities, predicates));

  cluster::ClusterConfig cluster;
  auto systems = baselines::MakeAllSystems(graph, cluster);
  ASSERT_TRUE(systems.ok()) << systems.status();
  auto vp_only = baselines::MakeProstVpOnly(graph, cluster);
  ASSERT_TRUE(vp_only.ok());
  core::ProstDb::Options reverse_options;
  reverse_options.cluster = cluster;
  reverse_options.use_reverse_property_table = true;
  auto reverse_db =
      core::ProstDb::LoadFromSharedGraph(graph, reverse_options);
  ASSERT_TRUE(reverse_db.ok());

  int interesting = 0;
  for (int round = 0; round < 12; ++round) {
    sparql::Query query;
    if (round == 0) {
      // One guaranteed non-empty query per seed: an open scan of a
      // predicate that actually occurs in the data.
      sparql::TriplePattern pattern;
      pattern.subject = Term::Variable("v0");
      pattern.object = Term::Variable("v1");
      rdf::TermId predicate_id = graph->DistinctPredicates().front();
      pattern.predicate = *graph->dictionary().DecodeTerm(predicate_id);
      query.bgp.patterns.push_back(std::move(pattern));
    } else {
      size_t num_patterns = 1 + rng.NextBounded(4);
      query = RandomQuery(rng, *graph, num_patterns, predicates);
    }
    if (!sparql::ValidateQuery(query).ok()) continue;  // e.g. all-const.
    SCOPED_TRACE("seed " + std::to_string(seed) + " round " +
                 std::to_string(round) + "\n" + query.ToString());

    auto expected = testing::ReferenceEvaluate(query, *graph);
    if (!expected.empty()) ++interesting;
    for (const auto& system : *systems) {
      auto result = system->Execute(query);
      ASSERT_TRUE(result.ok()) << system->name() << ": " << result.status();
      EXPECT_EQ(result->relation.CollectSortedRows(), expected)
          << system->name();
    }
    auto vp_result = (*vp_only)->Execute(query);
    ASSERT_TRUE(vp_result.ok()) << vp_result.status();
    EXPECT_EQ(vp_result->relation.CollectSortedRows(), expected);
    auto reverse_result = (*reverse_db)->Execute(query);
    ASSERT_TRUE(reverse_result.ok()) << reverse_result.status();
    EXPECT_EQ(reverse_result->relation.CollectSortedRows(), expected)
        << "reverse PT";
  }
  // The generator must not degenerate into always-empty answers.
  EXPECT_GT(interesting, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedEquivalenceTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace prost
