// Unit and property tests for the columnar substrate: encodings, stored
// tables, the lexical (Parquet-like) format, and horizontal partitioning.

#include <gtest/gtest.h>

#include "columnar/bloom.h"
#include "columnar/buffer_pool.h"
#include "columnar/encoding.h"
#include "columnar/lexical_format.h"
#include "columnar/paged_table.h"
#include "columnar/partition.h"
#include "columnar/table.h"
#include "columnar/types.h"
#include "common/hash.h"
#include "common/io.h"
#include "common/rng.h"

namespace prost::columnar {
namespace {

// --------------------------------------------------------------- Schema

TEST(SchemaTest, FieldIndexAndDuplicates) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"s", ColumnKind::kId}).ok());
  ASSERT_TRUE(schema.AddField({"o", ColumnKind::kIdList}).ok());
  EXPECT_EQ(schema.FieldIndex("s"), 0);
  EXPECT_EQ(schema.FieldIndex("o"), 1);
  EXPECT_EQ(schema.FieldIndex("missing"), -1);
  EXPECT_EQ(schema.AddField({"s", ColumnKind::kId}).code(),
            StatusCode::kAlreadyExists);
}

// -------------------------------------------------------------- Columns

TEST(ColumnTest, ListColumnAppendAndRowSize) {
  IdListColumn lists;
  lists.AppendRow({1, 2, 3});
  lists.AppendRow({});
  lists.AppendRow({9});
  EXPECT_EQ(lists.num_rows(), 3u);
  EXPECT_EQ(lists.RowSize(0), 3u);
  EXPECT_EQ(lists.RowSize(1), 0u);
  EXPECT_EQ(lists.RowSize(2), 1u);
  EXPECT_EQ(lists.values, (IdVector{1, 2, 3, 9}));
}

TEST(ColumnTest, StatsFlat) {
  ColumnStats stats = ComputeStats(IdVector{5, 0, 3, 9, 0});
  EXPECT_EQ(stats.min_id, 3u);
  EXPECT_EQ(stats.max_id, 9u);
  EXPECT_EQ(stats.null_count, 2u);
  EXPECT_EQ(stats.value_count, 3u);
}

TEST(ColumnTest, StatsList) {
  IdListColumn lists;
  lists.AppendRow({4, 7});
  lists.AppendRow({});
  lists.AppendRow({2});
  ColumnStats stats = ComputeStats(lists);
  EXPECT_EQ(stats.min_id, 2u);
  EXPECT_EQ(stats.max_id, 7u);
  EXPECT_EQ(stats.null_count, 1u);
  EXPECT_EQ(stats.value_count, 3u);
}

TEST(ColumnTest, StatsEmpty) {
  ColumnStats stats = ComputeStats(IdVector{});
  EXPECT_EQ(stats.value_count, 0u);
  EXPECT_EQ(stats.null_count, 0u);
}

// ------------------------------------------------------------ Encodings

struct EncodingCase {
  const char* name;
  IdVector ids;
};

IdVector RandomIds(size_t n, uint64_t cap, uint64_t seed) {
  Rng rng(seed);
  IdVector ids(n);
  for (auto& id : ids) id = rng.NextBounded(cap);
  return ids;
}

std::vector<EncodingCase> EncodingCases() {
  std::vector<EncodingCase> cases;
  cases.push_back({"empty", {}});
  cases.push_back({"single", {42}});
  cases.push_back({"constant", IdVector(1000, 7)});
  cases.push_back({"all_nulls", IdVector(1000, 0)});
  IdVector sorted(1000);
  for (size_t i = 0; i < sorted.size(); ++i) sorted[i] = i * 3 + 1;
  cases.push_back({"sorted", sorted});
  IdVector descending(500);
  for (size_t i = 0; i < descending.size(); ++i) {
    descending[i] = 100000 - i * 7;
  }
  cases.push_back({"descending", descending});
  cases.push_back({"random_small", RandomIds(2000, 100, 1)});
  cases.push_back({"random_large", RandomIds(2000, ~0ull, 2)});
  IdVector runs;
  for (int r = 0; r < 50; ++r) {
    runs.insert(runs.end(), 37, static_cast<TermId>(r * r));
  }
  cases.push_back({"runs", runs});
  return cases;
}

class EncodingRoundTripTest
    : public ::testing::TestWithParam<std::tuple<int, Encoding>> {};

TEST_P(EncodingRoundTripTest, ExplicitEncodingRoundTrips) {
  const auto& [case_index, encoding] = GetParam();
  const EncodingCase c = EncodingCases()[static_cast<size_t>(case_index)];
  ByteWriter writer;
  EncodeIdsWith(c.ids, encoding, writer);
  // The size estimator must agree with the actual encoder.
  EXPECT_EQ(writer.size(), EncodedSize(c.ids, encoding)) << c.name;
  ByteWriter tagged;
  tagged.PutU8(static_cast<uint8_t>(encoding));
  tagged.PutRaw(writer.buffer().data(), writer.size());
  ByteReader reader(tagged.buffer());
  IdVector decoded;
  ASSERT_TRUE(DecodeIds(reader, c.ids.size(), &decoded).ok()) << c.name;
  EXPECT_EQ(decoded, c.ids) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EncodingRoundTripTest,
    ::testing::Combine(::testing::Range(0, 9),
                       ::testing::Values(Encoding::kPlainVarint,
                                         Encoding::kRle,
                                         Encoding::kDeltaVarint,
                                         Encoding::kBitPacked)));

TEST(EncodingTest, BitPackedDenseSmallDomainWins) {
  // Values in [0, 7]: 3 bits each; varint costs a full byte.
  IdVector ids(4096);
  Rng rng(21);
  for (auto& id : ids) id = rng.NextBounded(8);
  uint64_t packed = EncodedSize(ids, Encoding::kBitPacked);
  uint64_t plain = EncodedSize(ids, Encoding::kPlainVarint);
  EXPECT_LT(packed, plain / 2);
  ByteWriter writer;
  // Adaptive must pick bit-packing for this shape (RLE runs are short,
  // deltas are random).
  EXPECT_EQ(EncodeIdsAdaptive(ids, writer), Encoding::kBitPacked);
  ByteReader reader(writer.buffer());
  IdVector decoded;
  ASSERT_TRUE(DecodeIds(reader, ids.size(), &decoded).ok());
  EXPECT_EQ(decoded, ids);
}

TEST(EncodingTest, BitPackedFullWidthValues) {
  IdVector ids = {~0ull, 0, 1ull << 63, 0x123456789abcdef0ull};
  ByteWriter writer;
  EncodeIdsWith(ids, Encoding::kBitPacked, writer);
  EXPECT_EQ(writer.size(), EncodedSize(ids, Encoding::kBitPacked));
  ByteWriter tagged;
  tagged.PutU8(static_cast<uint8_t>(Encoding::kBitPacked));
  tagged.PutRaw(writer.buffer().data(), writer.size());
  ByteReader reader(tagged.buffer());
  IdVector decoded;
  ASSERT_TRUE(DecodeIds(reader, ids.size(), &decoded).ok());
  EXPECT_EQ(decoded, ids);
}

TEST(EncodingTest, DeltaFullWidthValuesRoundTrip) {
  // Regression: consecutive ids straddling 2^63 (virtual integer ids set
  // the top bit) used to signed-overflow in the delta codec on both the
  // encode and decode side. Deltas wrap modulo 2^64 and must round-trip.
  IdVector ids = {12657228522535264308ull,  // the original UBSan repro pair
                  4353188321398943952ull,
                  ~0ull,
                  0,
                  1ull << 63,
                  (1ull << 63) + 5,
                  1};
  ByteWriter writer;
  EncodeIdsWith(ids, Encoding::kDeltaVarint, writer);
  EXPECT_EQ(writer.size(), EncodedSize(ids, Encoding::kDeltaVarint));
  ByteWriter tagged;
  tagged.PutU8(static_cast<uint8_t>(Encoding::kDeltaVarint));
  tagged.PutRaw(writer.buffer().data(), writer.size());
  ByteReader reader(tagged.buffer());
  IdVector decoded;
  ASSERT_TRUE(DecodeIds(reader, ids.size(), &decoded).ok());
  EXPECT_EQ(decoded, ids);
}

TEST(EncodingTest, BitPackedTruncationIsCorruption) {
  IdVector ids(100, 5);
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(Encoding::kBitPacked));
  EncodeIdsWith(ids, Encoding::kBitPacked, writer);
  std::string_view truncated(writer.buffer().data(), writer.size() / 2);
  ByteReader reader(truncated);
  IdVector out;
  EXPECT_EQ(DecodeIds(reader, ids.size(), &out).code(),
            StatusCode::kCorruption);
}

TEST(EncodingTest, AdaptivePicksSmallest) {
  // Constant data must pick RLE; sorted data must pick delta.
  ByteWriter constant_writer;
  EXPECT_EQ(EncodeIdsAdaptive(IdVector(1000, 99), constant_writer),
            Encoding::kRle);
  IdVector sorted(1000);
  for (size_t i = 0; i < sorted.size(); ++i) sorted[i] = 1000000 + i * 1000;
  ByteWriter sorted_writer;
  EXPECT_EQ(EncodeIdsAdaptive(sorted, sorted_writer),
            Encoding::kDeltaVarint);
}

TEST(EncodingTest, AdaptiveRoundTripsRandom) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    IdVector ids = RandomIds(777, 1 << (seed + 2), seed);
    ByteWriter writer;
    EncodeIdsAdaptive(ids, writer);
    ByteReader reader(writer.buffer());
    IdVector decoded;
    ASSERT_TRUE(DecodeIds(reader, ids.size(), &decoded).ok());
    EXPECT_EQ(decoded, ids);
  }
}

TEST(EncodingTest, DecodeRejectsBadTag) {
  std::string bytes = "\x09";
  ByteReader reader(bytes);
  IdVector out;
  EXPECT_EQ(DecodeIds(reader, 0, &out).code(), StatusCode::kCorruption);
}

TEST(EncodingTest, DecodeRleRejectsOverrun) {
  ByteWriter writer;
  writer.PutU8(static_cast<uint8_t>(Encoding::kRle));
  writer.PutVarint(5);   // value
  writer.PutVarint(10);  // run longer than requested count
  ByteReader reader(writer.buffer());
  IdVector out;
  EXPECT_EQ(DecodeIds(reader, 3, &out).code(), StatusCode::kCorruption);
}

TEST(EncodingTest, ListColumnRoundTrip) {
  IdListColumn lists;
  lists.AppendRow({1, 2, 3});
  lists.AppendRow({});
  lists.AppendRow({7});
  lists.AppendRow({});
  lists.AppendRow({5, 5, 5, 5});
  ByteWriter writer;
  EncodeIdList(lists, writer);
  ByteReader reader(writer.buffer());
  IdListColumn decoded;
  ASSERT_TRUE(DecodeIdList(reader, lists.num_rows(), &decoded).ok());
  EXPECT_EQ(decoded, lists);
}

TEST(EncodingTest, NullHeavyColumnCompressesHard) {
  // The §3.1 claim: RLE collapses the Property Table's NULLs.
  IdVector sparse(100000, kNullTermId);
  sparse[777] = 3;
  sparse[50000] = 9;
  uint64_t rle = EncodedSize(sparse, Encoding::kRle);
  uint64_t plain = EncodedSize(sparse, Encoding::kPlainVarint);
  EXPECT_LT(rle * 1000, plain);
}

// ----------------------------------------------------------- StoredTable

StoredTable MakeTable() {
  Schema schema;
  EXPECT_TRUE(schema.AddField({"s", ColumnKind::kId}).ok());
  EXPECT_TRUE(schema.AddField({"vals", ColumnKind::kIdList}).ok());
  IdVector subjects{1, 2, 3, 4};
  IdListColumn lists;
  lists.AppendRow({10, 11});
  lists.AppendRow({});
  lists.AppendRow({12});
  lists.AppendRow({13, 14, 15});
  std::vector<Column> columns;
  columns.emplace_back(std::move(subjects));
  columns.emplace_back(std::move(lists));
  return StoredTable(std::move(schema), std::move(columns));
}

TEST(StoredTableTest, ValidateCatchesShapeErrors) {
  StoredTable good = MakeTable();
  EXPECT_TRUE(good.Validate().ok());

  Schema schema;
  ASSERT_TRUE(schema.AddField({"a", ColumnKind::kId}).ok());
  ASSERT_TRUE(schema.AddField({"b", ColumnKind::kId}).ok());
  std::vector<Column> ragged;
  ragged.emplace_back(IdVector{1, 2});
  ragged.emplace_back(IdVector{1});
  EXPECT_FALSE(StoredTable(schema, std::move(ragged)).Validate().ok());

  std::vector<Column> wrong_kind;
  wrong_kind.emplace_back(IdVector{1});
  wrong_kind.emplace_back(IdListColumn{});
  // One row vs zero rows AND kind mismatch; either way it must fail.
  EXPECT_FALSE(StoredTable(schema, std::move(wrong_kind)).Validate().ok());
}

TEST(StoredTableTest, ColumnByName) {
  StoredTable table = MakeTable();
  ASSERT_TRUE(table.ColumnByName("s").ok());
  EXPECT_FALSE(table.ColumnByName("missing").ok());
}

TEST(StoredTableTest, SerializeRoundTrip) {
  StoredTable table = MakeTable();
  std::string bytes;
  table.Serialize(&bytes);
  auto restored = StoredTable::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->schema(), table.schema());
  EXPECT_EQ(restored->num_rows(), table.num_rows());
  EXPECT_EQ(restored->column(0), table.column(0));
  EXPECT_EQ(restored->column(1), table.column(1));
}

TEST(StoredTableTest, SerializeEmptyTable) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"s", ColumnKind::kId}).ok());
  StoredTable table(schema);
  std::string bytes;
  table.Serialize(&bytes);
  auto restored = StoredTable::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_rows(), 0u);
}

TEST(StoredTableTest, MultiRowGroupRoundTrip) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"v", ColumnKind::kId}).ok());
  IdVector big(kRowGroupSize * 2 + 123);
  Rng rng(9);
  for (auto& id : big) id = rng.NextBounded(1 << 22);
  std::vector<Column> columns;
  columns.emplace_back(IdVector(big));
  StoredTable table(schema, std::move(columns));
  std::string bytes;
  table.Serialize(&bytes);
  auto restored = StoredTable::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->column(0).ids(), big);
}

TEST(StoredTableTest, CorruptionDetected) {
  StoredTable table = MakeTable();
  std::string bytes;
  table.Serialize(&bytes);
  bytes[bytes.size() / 2] ^= 0x40;  // Flip a bit in the middle.
  EXPECT_EQ(StoredTable::Deserialize(bytes).status().code(),
            StatusCode::kCorruption);
  EXPECT_FALSE(StoredTable::Deserialize("short").ok());
}

TEST(StoredTableTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/prost_table_test.tbl";
  StoredTable table = MakeTable();
  ASSERT_TRUE(WriteTableFile(table, path).ok());
  auto restored = ReadTableFile(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->column(0), table.column(0));
  (void)RemoveAllRecursively(path);
}

// -------------------------------------------------------- Lexical format

TEST(LexicalFormatTest, RoundTripSameDictionary) {
  rdf::Dictionary dict;
  TermId a = dict.Intern("<http://a>");
  TermId b = dict.Intern("<http://b>");
  TermId lit = dict.Intern("\"value\"");

  Schema schema;
  ASSERT_TRUE(schema.AddField({"s", ColumnKind::kId}).ok());
  ASSERT_TRUE(schema.AddField({"o", ColumnKind::kIdList}).ok());
  IdVector subjects{a, b, a};
  IdListColumn lists;
  lists.AppendRow({lit});
  lists.AppendRow({});
  lists.AppendRow({a, b});
  std::vector<Column> columns;
  columns.emplace_back(std::move(subjects));
  columns.emplace_back(std::move(lists));
  StoredTable table(schema, std::move(columns));

  std::string bytes;
  ASSERT_TRUE(SerializeLexicalTable(table, dict, &bytes).ok());
  auto restored = DeserializeLexicalTable(bytes, &dict);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->column(0), table.column(0));
  EXPECT_EQ(restored->column(1), table.column(1));
}

TEST(LexicalFormatTest, RoundTripFreshDictionaryRemapsIds) {
  rdf::Dictionary dict;
  // Intern decoys first so ids differ from a fresh dictionary's.
  dict.Intern("<decoy1>");
  dict.Intern("<decoy2>");
  TermId a = dict.Intern("<http://a>");
  TermId lit = dict.Intern("\"v\"");

  Schema schema;
  ASSERT_TRUE(schema.AddField({"s", ColumnKind::kId}).ok());
  ASSERT_TRUE(schema.AddField({"o", ColumnKind::kId}).ok());
  std::vector<Column> columns;
  columns.emplace_back(IdVector{a, a});
  columns.emplace_back(IdVector{lit, kNullTermId});
  StoredTable table(schema, std::move(columns));

  std::string bytes;
  ASSERT_TRUE(SerializeLexicalTable(table, dict, &bytes).ok());
  rdf::Dictionary fresh;
  auto restored = DeserializeLexicalTable(bytes, &fresh);
  ASSERT_TRUE(restored.ok());
  // Ids are remapped, but decode to the same lexical content; NULL stays
  // NULL.
  EXPECT_EQ(fresh.LookupId(restored->column(0).ids()[0]).value(),
            "<http://a>");
  EXPECT_EQ(fresh.LookupId(restored->column(1).ids()[0]).value(), "\"v\"");
  EXPECT_EQ(restored->column(1).ids()[1], kNullTermId);
}

TEST(LexicalFormatTest, FileRoundTripWithCompression) {
  rdf::Dictionary dict;
  Schema schema;
  ASSERT_TRUE(schema.AddField({"s", ColumnKind::kId}).ok());
  IdVector subjects;
  for (int i = 0; i < 500; ++i) {
    subjects.push_back(dict.Intern("<http://entity/" +
                                   std::to_string(i % 50) + ">"));
  }
  std::vector<Column> columns;
  columns.emplace_back(std::move(subjects));
  StoredTable table(schema, std::move(columns));

  std::string path = ::testing::TempDir() + "/prost_lexical_test.tbl";
  ASSERT_TRUE(WriteLexicalTableFile(table, dict, path).ok());
  rdf::Dictionary fresh;
  auto restored = ReadLexicalTableFile(path, &fresh);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_rows(), 500u);
  EXPECT_EQ(fresh.size(), 50u);
  (void)RemoveAllRecursively(path);
}

TEST(LexicalFormatTest, ChecksumDetectsCorruption) {
  rdf::Dictionary dict;
  Schema schema;
  ASSERT_TRUE(schema.AddField({"s", ColumnKind::kId}).ok());
  std::vector<Column> columns;
  columns.emplace_back(IdVector{dict.Intern("<a>")});
  StoredTable table(schema, std::move(columns));
  std::string bytes;
  ASSERT_TRUE(SerializeLexicalTable(table, dict, &bytes).ok());
  bytes[6] ^= 0x01;
  rdf::Dictionary fresh;
  EXPECT_EQ(DeserializeLexicalTable(bytes, &fresh).status().code(),
            StatusCode::kCorruption);
}

TEST(LexicalFormatTest, SizeEstimateCountsDistinctLexicals) {
  rdf::Dictionary dict;
  TermId a = dict.Intern("<http://a-very-long-iri/aaaaaaaa>");
  std::vector<uint32_t> lengths = dict.TermLengths();
  // 1000 repetitions of one value: lexical bytes charged once.
  Column column(IdVector(1000, a));
  uint64_t estimate = LexicalColumnSizeEstimate(column, lengths);
  EXPECT_LT(estimate, 100u);
}

// ------------------------------------------------------------ Partition

TEST(PartitionTest, HashAssignmentIsDeterministicAndComplete) {
  IdVector keys = RandomIds(5000, 1 << 20, 12);
  auto assignment = AssignPartitionsByHash(keys, 9);
  auto assignment2 = AssignPartitionsByHash(keys, 9);
  EXPECT_EQ(assignment, assignment2);
  std::vector<int> counts(9, 0);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_LT(assignment[i], 9u);
    ++counts[assignment[i]];
    // Equal keys always land together.
    EXPECT_EQ(assignment[i],
              static_cast<uint32_t>(Mix64(keys[i]) % 9));
  }
  for (int c : counts) EXPECT_GT(c, 300);  // Roughly balanced.
}

TEST(PartitionTest, RoundRobin) {
  auto assignment = AssignPartitionsRoundRobin(10, 3);
  EXPECT_EQ(assignment,
            (std::vector<uint32_t>{0, 1, 2, 0, 1, 2, 0, 1, 2, 0}));
}

TEST(PartitionTest, SplitPreservesRowsAndLists) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"k", ColumnKind::kId}).ok());
  ASSERT_TRUE(schema.AddField({"l", ColumnKind::kIdList}).ok());
  IdVector keys{10, 20, 30, 40, 50};
  IdListColumn lists;
  lists.AppendRow({1});
  lists.AppendRow({2, 3});
  lists.AppendRow({});
  lists.AppendRow({4, 5, 6});
  lists.AppendRow({7});
  std::vector<Column> columns;
  columns.emplace_back(IdVector(keys));
  columns.emplace_back(std::move(lists));
  StoredTable table(schema, std::move(columns));

  auto partitions = HashPartitionTable(table, 0, 3);
  ASSERT_TRUE(partitions.ok()) << partitions.status();
  size_t total_rows = 0, total_values = 0;
  for (const StoredTable& part : *partitions) {
    ASSERT_TRUE(part.Validate().ok());
    total_rows += part.num_rows();
    total_values += part.column(1).lists().values.size();
    // Placement invariant: every row's key hashes to this partition.
  }
  EXPECT_EQ(total_rows, 5u);
  EXPECT_EQ(total_values, 7u);
}

TEST(PartitionTest, SplitRejectsBadInput) {
  Schema schema;
  ASSERT_TRUE(schema.AddField({"k", ColumnKind::kId}).ok());
  std::vector<Column> columns;
  columns.emplace_back(IdVector{1, 2});
  StoredTable table(schema, std::move(columns));
  EXPECT_FALSE(SplitByAssignment(table, {0}, 2).ok());     // Size mismatch.
  EXPECT_FALSE(SplitByAssignment(table, {0, 5}, 2).ok());  // Out of range.
  EXPECT_FALSE(SplitByAssignment(table, {0, 1}, 0).ok());  // Zero parts.
  EXPECT_FALSE(HashPartitionTable(table, 3, 2).ok());      // Bad column.
}


// ---------------------------------------------------------------- Bloom

TEST(BloomTest, NoFalseNegatives) {
  Rng rng(7);
  IdVector keys(5000);
  for (auto& id : keys) id = rng.Next();
  BloomFilter bloom = BloomFilter::Build(keys);
  for (TermId id : keys) EXPECT_TRUE(bloom.MayContain(id));
}

TEST(BloomTest, FalsePositiveRateWithinBound) {
  Rng rng(11);
  IdVector keys(10000);
  for (auto& id : keys) id = rng.NextInRange(1, 1u << 30);
  BloomFilter bloom = BloomFilter::Build(keys);
  // At 10 bits/key with k = 7 the theoretical FPR is ~0.8%; allow 2%.
  size_t false_positives = 0;
  const size_t probes = 20000;
  for (size_t i = 0; i < probes; ++i) {
    TermId absent = (uint64_t{1} << 40) + i;  // Disjoint from the keys.
    if (bloom.MayContain(absent)) ++false_positives;
  }
  EXPECT_LT(static_cast<double>(false_positives) / probes, 0.02);
}

TEST(BloomTest, EmptyAndDefaultSemantics) {
  // Built over nothing: rejects everything (a provably empty partition).
  BloomFilter empty_built = BloomFilter::Build({});
  EXPECT_FALSE(empty_built.MayContain(42));
  // Default-constructed (no filter): must claim everything may match.
  BloomFilter none;
  EXPECT_TRUE(none.empty());
  EXPECT_TRUE(none.MayContain(42));
}

TEST(BloomTest, SkipsNullKeysAndRoundTrips) {
  BloomFilter bloom = BloomFilter::Build({5, rdf::kNullTermId, 9});
  EXPECT_TRUE(bloom.MayContain(5));
  EXPECT_TRUE(bloom.MayContain(9));
  ByteWriter writer;
  bloom.Serialize(writer);
  EXPECT_EQ(writer.size(), bloom.SerializedBytes());
  std::string buffer = std::move(writer).TakeBuffer();
  ByteReader reader{std::string_view(buffer)};
  Result<BloomFilter> reopened = BloomFilter::Deserialize(reader);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(*reopened == bloom);
}

// ----------------------------------------------------------- PagedTable

bool SameTable(const StoredTable& a, const StoredTable& b) {
  if (!(a.schema() == b.schema()) || a.num_columns() != b.num_columns()) {
    return false;
  }
  for (size_t c = 0; c < a.num_columns(); ++c) {
    if (!(a.column(c) == b.column(c))) return false;
  }
  return true;
}

Schema TwoColumnSchema() {
  Schema schema;
  (void)schema.AddField({"s", ColumnKind::kId});
  (void)schema.AddField({"o", ColumnKind::kIdList});
  return schema;
}

StoredTable MakeMixedTable(size_t rows, uint64_t seed) {
  Rng rng(seed);
  IdVector subjects(rows);
  IdListColumn lists;
  for (size_t r = 0; r < rows; ++r) {
    subjects[r] = 10 + r;  // Sorted, like a real VP subject column.
    IdVector cell;
    size_t n = rng.NextBounded(4);  // Empty cells included.
    for (size_t i = 0; i < n; ++i) cell.push_back(rng.NextInRange(1, 1000));
    lists.AppendRow(cell);
  }
  std::vector<Column> columns;
  columns.emplace_back(std::move(subjects));
  columns.emplace_back(std::move(lists));
  return StoredTable(TwoColumnSchema(), std::move(columns));
}

TEST(PagedTableTest, RoundTripsThroughStored) {
  StoredTable table = MakeMixedTable(1000, 3);
  PagedTable paged = PagedTable::FromStored(table, 64);
  EXPECT_EQ(paged.num_rows(), table.num_rows());
  EXPECT_EQ(paged.num_groups(), (1000 + 63) / 64);
  Result<StoredTable> back = paged.ToStored();
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(SameTable(*back, table));
}

TEST(PagedTableTest, ZoneMapsMatchPerGroupStats) {
  StoredTable table = MakeMixedTable(300, 5);
  const uint32_t group_rows = 50;
  PagedTable paged = PagedTable::FromStored(table, group_rows);
  for (size_t g = 0; g < paged.num_groups(); ++g) {
    size_t begin = g * group_rows;
    size_t end = std::min<size_t>(begin + group_rows, table.num_rows());
    // Recompute the subject zone directly from the rows.
    const IdVector& subjects = table.column(0).ids();
    TermId lo = ~TermId{0}, hi = 0;
    for (size_t r = begin; r < end; ++r) {
      lo = std::min(lo, subjects[r]);
      hi = std::max(hi, subjects[r]);
    }
    EXPECT_EQ(paged.stats(g, 0).min_id, lo);
    EXPECT_EQ(paged.stats(g, 0).max_id, hi);
    // List column: stats flatten the cells (values between offsets).
    const IdListColumn& lists = table.column(1).lists();
    uint64_t values = lists.offsets[end] - lists.offsets[begin];
    EXPECT_EQ(paged.stats(g, 1).value_count, values);
  }
}

TEST(PagedTableTest, SerializationPreservesStatsAndBloom) {
  StoredTable table = MakeMixedTable(500, 9);
  PagedTable paged = PagedTable::FromStored(table, 100);
  std::string buffer;
  paged.Serialize(&buffer);
  Result<PagedTable> reopened = PagedTable::Deserialize(buffer);
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened->num_groups(), paged.num_groups());
  for (size_t g = 0; g < paged.num_groups(); ++g) {
    for (size_t c = 0; c < 2; ++c) {
      // ColumnStats round-trip, per row group per column.
      EXPECT_EQ(reopened->stats(g, c).min_id, paged.stats(g, c).min_id);
      EXPECT_EQ(reopened->stats(g, c).max_id, paged.stats(g, c).max_id);
      EXPECT_EQ(reopened->stats(g, c).null_count,
                paged.stats(g, c).null_count);
      EXPECT_EQ(reopened->stats(g, c).value_count,
                paged.stats(g, c).value_count);
    }
  }
  EXPECT_TRUE(reopened->key_bloom() == paged.key_bloom());
  Result<StoredTable> back = reopened->ToStored();
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(SameTable(*back, table));
}

TEST(PagedTableTest, DeserializeRejectsCorruption) {
  StoredTable table = MakeMixedTable(200, 13);
  PagedTable paged = PagedTable::FromStored(table, 64);
  std::string buffer;
  paged.Serialize(&buffer);
  std::string flipped = buffer;
  flipped[flipped.size() / 2] ^= 0x40;
  EXPECT_FALSE(PagedTable::Deserialize(flipped).ok());
  EXPECT_FALSE(PagedTable::Deserialize(std::string_view(buffer)
                                           .substr(0, buffer.size() - 3))
                   .ok());
}

// ----------------------------------------------------------- BufferPool

TEST(BufferPoolTest, PinDecodesAndCachesChunks) {
  StoredTable table = MakeMixedTable(256, 17);
  PagedTable paged = PagedTable::FromStored(table, 64);
  BufferPool pool(1 << 20);
  {
    Result<PinnedPage> page = pool.Pin(paged, 0, 0);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(page->column().ids().size(), 64u);
    EXPECT_EQ(page->column().ids()[0], table.column(0).ids()[0]);
  }
  // Second pin of the same chunk hits the cache (no new miss).
  BufferPool::Stats before = pool.GetStats();
  EXPECT_EQ(before.resident_pages, 1u);
  EXPECT_EQ(before.pinned_pages, 0u);
  Result<PinnedPage> again = pool.Pin(paged, 0, 0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool.GetStats().pinned_pages, 1u);
  EXPECT_EQ(pool.GetStats().resident_pages, 1u);
}

TEST(BufferPoolTest, EvictsLruUnderBudget) {
  StoredTable table = MakeMixedTable(512, 19);
  PagedTable paged = PagedTable::FromStored(table, 64);
  // Budget of ~one decoded id chunk: every new pin evicts the previous.
  BufferPool pool(64 * sizeof(TermId) + 8);
  for (uint32_t g = 0; g < paged.num_groups(); ++g) {
    Result<PinnedPage> page = pool.Pin(paged, g, 0);
    ASSERT_TRUE(page.ok());
  }
  BufferPool::Stats stats = pool.GetStats();
  EXPECT_LE(stats.resident_bytes, pool.budget_bytes());
  EXPECT_LE(stats.resident_pages, 1u);
}

TEST(BufferPoolTest, BudgetIsSoftWhilePinned) {
  StoredTable table = MakeMixedTable(256, 23);
  PagedTable paged = PagedTable::FromStored(table, 64);
  BufferPool pool(1);  // Below any single chunk.
  std::vector<PinnedPage> held;
  for (uint32_t g = 0; g < paged.num_groups(); ++g) {
    Result<PinnedPage> page = pool.Pin(paged, g, 0);
    ASSERT_TRUE(page.ok());
    held.push_back(std::move(*page));
    EXPECT_EQ(held.back().column().ids().size(),
              paged.group(g).num_rows);
  }
  // All pinned: nothing evictable, resident beyond budget by design.
  EXPECT_GT(pool.GetStats().resident_bytes, pool.budget_bytes());
  held.clear();
  // Last unpin shrinks back under budget.
  EXPECT_LE(pool.GetStats().resident_bytes, pool.budget_bytes());
}

}  // namespace
}  // namespace prost::columnar
