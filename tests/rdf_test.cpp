// Unit tests for the RDF substrate: terms, N-Triples parsing and
// serialization, dictionary encoding, and encoded graphs.

#include <gtest/gtest.h>

#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "rdf/ntriples.h"
#include "rdf/term.h"
#include "rdf/triple.h"

namespace prost::rdf {
namespace {

// ----------------------------------------------------------------- Term

TEST(TermTest, FactoryKinds) {
  EXPECT_TRUE(Term::Iri("http://x").is_iri());
  EXPECT_TRUE(Term::Literal("v").is_literal());
  EXPECT_TRUE(Term::Blank("b1").is_blank());
  EXPECT_TRUE(Term::Variable("v").is_variable());
  EXPECT_TRUE(Term::Iri("x").is_concrete());
  EXPECT_FALSE(Term::Variable("x").is_concrete());
}

TEST(TermTest, Serialization) {
  EXPECT_EQ(Term::Iri("http://x/a").ToNTriples(), "<http://x/a>");
  EXPECT_EQ(Term::Literal("plain").ToNTriples(), "\"plain\"");
  EXPECT_EQ(Term::LangLiteral("chat", "fr").ToNTriples(), "\"chat\"@fr");
  EXPECT_EQ(Term::TypedLiteral("5", "http://t#int").ToNTriples(),
            "\"5\"^^<http://t#int>");
  EXPECT_EQ(Term::Blank("n0").ToNTriples(), "_:n0");
  EXPECT_EQ(Term::Variable("v7").ToNTriples(), "?v7");
}

TEST(TermTest, LiteralEscaping) {
  Term term = Term::Literal("a\"b\\c\nd\te\r");
  std::string serialized = term.ToNTriples();
  EXPECT_EQ(serialized, "\"a\\\"b\\\\c\\nd\\te\\r\"");
  Result<Term> parsed = ParseTerm(serialized);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, term);
}

class TermRoundTripTest : public ::testing::TestWithParam<Term> {};

TEST_P(TermRoundTripTest, SerializeParseRoundTrip) {
  const Term& term = GetParam();
  Result<Term> parsed = ParseTerm(term.ToNTriples());
  ASSERT_TRUE(parsed.ok()) << term.ToNTriples() << ": " << parsed.status();
  EXPECT_EQ(*parsed, term);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, TermRoundTripTest,
    ::testing::Values(
        Term::Iri("http://example.org/x"),
        Term::Iri("urn:uuid:1-2-3"), Term::Literal(""),
        Term::Literal("simple"), Term::Literal("with spaces and . dots"),
        Term::Literal("quote\" backslash\\ newline\n"),
        Term::LangLiteral("hello", "en"),
        Term::LangLiteral("hallo", "de-AT"),
        Term::TypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer"),
        Term::TypedLiteral("", "http://t#empty"), Term::Blank("b"),
        Term::Blank("gen123"), Term::Variable("x"),
        Term::Variable("v0")));

TEST(TermParseTest, Failures) {
  for (const char* bad :
       {"", "<unclosed", "plainword", "\"unclosed", "\"v\"^^missing",
        "\"v\"@", "?", "_:", "\"v\"^^<unclosed", "\"a\\q\""}) {
    EXPECT_FALSE(ParseTerm(bad).ok()) << bad;
  }
}

TEST(TermTest, OrderingIsTotal) {
  EXPECT_LT(Term::Iri("a"), Term::Iri("b"));
  EXPECT_LT(Term::Iri("z"), Term::Literal("a"));  // kind before value
  EXPECT_LT(Term::Literal("x"), Term::TypedLiteral("x", "t"));
}

// ------------------------------------------------------------ N-Triples

TEST(NTriplesTest, ParseSimpleLine) {
  auto triple = ParseNTriplesLine("<http://s> <http://p> <http://o> .");
  ASSERT_TRUE(triple.ok());
  EXPECT_EQ(triple->subject.value, "http://s");
  EXPECT_EQ(triple->predicate.value, "http://p");
  EXPECT_EQ(triple->object.value, "http://o");
}

TEST(NTriplesTest, ParseLiteralWithSpacesAndDot) {
  auto triple = ParseNTriplesLine(
      "<http://s> <http://p> \"a literal. with , punctuation\" .");
  ASSERT_TRUE(triple.ok());
  EXPECT_EQ(triple->object.value, "a literal. with , punctuation");
}

TEST(NTriplesTest, ParseBlankSubject) {
  auto triple = ParseNTriplesLine("_:b0 <http://p> \"v\"@en .");
  ASSERT_TRUE(triple.ok());
  EXPECT_TRUE(triple->subject.is_blank());
  EXPECT_EQ(triple->object.language, "en");
}

TEST(NTriplesTest, LineFailures) {
  for (const char* bad : {
           "<s> <p> .",                       // missing object
           "<s> <p> <o>",                     // missing dot
           "\"lit\" <p> <o> .",               // literal subject
           "<s> \"p\" <o> .",                 // literal predicate
           "<s> _:b <o> .",                   // blank predicate
           "<s> <p> ?v .",                    // variable object
           "<s> <p> <o> extra .",             // trailing garbage
       }) {
    EXPECT_FALSE(ParseNTriplesLine(bad).ok()) << bad;
  }
}

TEST(NTriplesTest, DocumentSkipsCommentsAndBlanks) {
  std::string doc =
      "# a comment\n"
      "<http://s1> <http://p> <http://o1> .\n"
      "\n"
      "   # indented comment\n"
      "<http://s2> <http://p> \"v\" .\n";
  auto triples = ParseNTriplesToVector(doc);
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(triples->size(), 2u);
}

TEST(NTriplesTest, DocumentErrorCitesLine) {
  std::string doc =
      "<http://s1> <http://p> <http://o1> .\n"
      "broken line\n";
  auto triples = ParseNTriplesToVector(doc);
  ASSERT_FALSE(triples.ok());
  EXPECT_NE(triples.status().message().find("line 2"), std::string::npos)
      << triples.status();
}

TEST(NTriplesTest, WriteParseRoundTrip) {
  std::vector<Triple> triples = {
      {Term::Iri("http://s"), Term::Iri("http://p"),
       Term::Literal("v \"quoted\"")},
      {Term::Blank("b"), Term::Iri("http://p2"),
       Term::TypedLiteral("7", "http://int")},
      {Term::Iri("http://s"), Term::Iri("http://p3"),
       Term::LangLiteral("bonjour", "fr")},
  };
  auto parsed = ParseNTriplesToVector(WriteNTriples(triples));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, triples);
}

// ------------------------------------------------------------ Dictionary

TEST(DictionaryTest, InternAssignsDenseIdsFromOne) {
  Dictionary dict;
  EXPECT_EQ(dict.Intern("<a>"), 1u);
  EXPECT_EQ(dict.Intern("<b>"), 2u);
  EXPECT_EQ(dict.Intern("<a>"), 1u);  // Idempotent.
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, LookupMissReturnsNullId) {
  Dictionary dict;
  dict.Intern("<a>");
  EXPECT_EQ(dict.Lookup("<b>"), kNullTermId);
  EXPECT_EQ(dict.Lookup("<a>"), 1u);
}

TEST(DictionaryTest, LookupIdBounds) {
  Dictionary dict;
  dict.Intern("<a>");
  EXPECT_EQ(dict.LookupId(1).value(), "<a>");
  EXPECT_FALSE(dict.LookupId(0).ok());
  EXPECT_FALSE(dict.LookupId(2).ok());
}

TEST(DictionaryTest, DecodeTermParsesStructure) {
  Dictionary dict;
  TermId id = dict.InternTerm(Term::LangLiteral("hi", "en"));
  auto term = dict.DecodeTerm(id);
  ASSERT_TRUE(term.ok());
  EXPECT_EQ(term->language, "en");
  EXPECT_EQ(term->value, "hi");
}

TEST(DictionaryTest, ViewsSurviveGrowth) {
  // string_view keys into the deque must stay valid as it grows.
  Dictionary dict;
  std::vector<std::string> terms;
  for (int i = 0; i < 5000; ++i) terms.push_back("<t" + std::to_string(i) + ">");
  for (const auto& t : terms) dict.Intern(t);
  for (size_t i = 0; i < terms.size(); ++i) {
    EXPECT_EQ(dict.Lookup(terms[i]), i + 1) << terms[i];
  }
}

TEST(DictionaryTest, SerializeRoundTrip) {
  Dictionary dict;
  dict.Intern("<a>");
  dict.Intern("\"literal with \\\" quote\"");
  dict.Intern("_:b");
  std::string bytes;
  dict.Serialize(&bytes);
  auto restored = Dictionary::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 3u);
  EXPECT_EQ(restored->Lookup("<a>"), 1u);
  EXPECT_EQ(restored->Lookup("_:b"), 3u);
}

TEST(DictionaryTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Dictionary::Deserialize("\xff\xff\xff").ok());
}

TEST(DictionaryTest, TermLengths) {
  Dictionary dict;
  dict.Intern("<abc>");
  dict.Intern("<de>");
  std::vector<uint32_t> lengths = dict.TermLengths();
  ASSERT_EQ(lengths.size(), 3u);
  EXPECT_EQ(lengths[0], 0u);
  EXPECT_EQ(lengths[1], 5u);
  EXPECT_EQ(lengths[2], 4u);
}

// ---------------------------------------------------------------- Graph

TEST(GraphTest, AddEncodesThroughDictionary) {
  EncodedGraph graph;
  graph.Add({Term::Iri("s"), Term::Iri("p"), Term::Iri("o")});
  graph.Add({Term::Iri("s"), Term::Iri("p"), Term::Iri("o2")});
  EXPECT_EQ(graph.size(), 2u);
  EXPECT_EQ(graph.triples()[0].subject, graph.triples()[1].subject);
  EXPECT_EQ(graph.triples()[0].predicate, graph.triples()[1].predicate);
  EXPECT_NE(graph.triples()[0].object, graph.triples()[1].object);
}

TEST(GraphTest, PredicateStats) {
  EncodedGraph graph;
  auto add = [&](const char* s, const char* p, const char* o) {
    graph.Add({Term::Iri(s), Term::Iri(p), Term::Iri(o)});
  };
  add("s1", "p1", "o1");
  add("s1", "p1", "o2");  // multi-valued on s1
  add("s2", "p1", "o1");
  add("s1", "p2", "o1");
  auto stats = graph.ComputePredicateStats();
  ASSERT_EQ(stats.size(), 2u);
  TermId p1 = graph.dictionary().Lookup("<p1>");
  TermId p2 = graph.dictionary().Lookup("<p2>");
  EXPECT_EQ(stats.at(p1).triple_count, 3u);
  EXPECT_EQ(stats.at(p1).distinct_subjects, 2u);
  EXPECT_EQ(stats.at(p1).distinct_objects, 2u);
  EXPECT_TRUE(stats.at(p1).is_multi_valued());
  EXPECT_EQ(stats.at(p2).triple_count, 1u);
  EXPECT_FALSE(stats.at(p2).is_multi_valued());
}

TEST(GraphTest, SortAndDedupe) {
  EncodedGraph graph;
  auto add = [&](const char* s, const char* p, const char* o) {
    graph.Add({Term::Iri(s), Term::Iri(p), Term::Iri(o)});
  };
  add("s", "p", "o");
  add("s", "p", "o");
  add("s2", "p", "o");
  add("s", "p", "o");
  graph.SortAndDedupe();
  EXPECT_EQ(graph.size(), 2u);
}

TEST(GraphTest, DistinctPredicatesSorted) {
  EncodedGraph graph;
  graph.Add({Term::Iri("s"), Term::Iri("p2"), Term::Iri("o")});
  graph.Add({Term::Iri("s"), Term::Iri("p1"), Term::Iri("o")});
  graph.Add({Term::Iri("s"), Term::Iri("p2"), Term::Iri("o2")});
  auto predicates = graph.DistinctPredicates();
  ASSERT_EQ(predicates.size(), 2u);
  EXPECT_LT(predicates[0], predicates[1]);
}

TEST(GraphTest, DecodeTriple) {
  EncodedGraph graph;
  Triple original{Term::Iri("s"), Term::Iri("p"), Term::Literal("lit")};
  graph.Add(original);
  auto decoded = graph.DecodeTriple(0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
  EXPECT_FALSE(graph.DecodeTriple(1).ok());
}

TEST(GraphTest, EncodeNTriplesEndToEnd) {
  auto graph = EncodeNTriples(
      "<http://s> <http://p> \"v\" .\n<http://s2> <http://p> <http://s> .\n");
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->size(), 2u);
  // Shared term "<http://s>" has one id in both positions.
  EXPECT_EQ(graph->triples()[0].subject, graph->triples()[1].object);
}

}  // namespace
}  // namespace prost::rdf
