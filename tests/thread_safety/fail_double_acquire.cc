// MUST NOT COMPILE under -Werror=thread-safety: acquires the same mutex
// twice in one scope (prost::Mutex is non-recursive; at runtime this is
// a self-deadlock, which the debug lock-rank checker also aborts on).
#include "common/mutex.h"

namespace {

void DoubleAcquire(prost::MutexBase& mu) {
  prost::MutexLock outer(mu);
  prost::MutexLock inner(mu);  // error: mu is already held
}

}  // namespace

int main() {
  prost::Mutex<prost::LockRank::kLeaf> mu;
  DoubleAcquire(mu);
  return 0;
}
