// MUST NOT COMPILE under -Werror=thread-safety: reads and writes a
// PROST_GUARDED_BY field without holding its mutex. (Valid C++ — it
// compiles wherever the annotations are no-ops; tests/thread_safety/
// check_compile.cmake asserts both directions.)
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Stats {
 public:
  void Bump() { ++hits_; }          // error: writing hits_ requires mu_
  int hits() const { return hits_; }  // error: reading hits_ requires mu_

 private:
  mutable prost::Mutex<prost::LockRank::kLeaf> mu_;
  int hits_ PROST_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Stats stats;
  stats.Bump();
  return stats.hits();
}
