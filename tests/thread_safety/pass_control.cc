// MUST COMPILE CLEANLY under -Werror=thread-safety: exercises every
// surface of the annotated locking layer the way the codebase uses it —
// scoped MutexLock over guarded state, a PROST_REQUIRES helper, the
// CondVar predicate-loop wait, the worker-loop Unlock()/Lock() pattern,
// and conditional TryLock. If this control fails, the enforcement flags
// are broken (and the must-fail results prove nothing).
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Coordinator {
 public:
  void Produce() {
    prost::MutexLock lock(mu_);
    ++pending_;
    BumpVersionLocked();
    cv_.NotifyAll();
  }

  void WaitDrained() {
    prost::MutexLock lock(mu_);
    while (pending_ != 0) cv_.Wait(mu_);
  }

  void DrainThenAudit() {
    prost::MutexLock lock(mu_);
    pending_ = 0;
    cv_.NotifyAll();
    lock.Unlock();
    // Lock-free section (the WorkerLoop pattern).
    lock.Lock();
    BumpVersionLocked();
  }

  bool TryProduce() {
    if (!mu_.TryLock()) return false;
    ++pending_;
    mu_.Unlock();
    return true;
  }

 private:
  void BumpVersionLocked() PROST_REQUIRES(mu_) { ++version_; }

  prost::Mutex<prost::LockRank::kThreadPoolControl> mu_;
  prost::CondVar cv_;
  int pending_ PROST_GUARDED_BY(mu_) = 0;
  int version_ PROST_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Coordinator coordinator;
  coordinator.Produce();
  coordinator.TryProduce();
  coordinator.DrainThenAudit();
  coordinator.WaitDrained();
  return 0;
}
