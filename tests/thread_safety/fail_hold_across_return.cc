// MUST NOT COMPILE under -Werror=thread-safety: returns while still
// holding a raw-Lock()ed mutex (no matching Unlock on the path), i.e. a
// leaked critical section.
#include "common/mutex.h"

namespace {

int LeakLock(prost::MutexBase& mu, int v) {
  mu.Lock();
  if (v > 0) return v;  // error: mu still held at end of function
  mu.Unlock();
  return 0;
}

}  // namespace

int main() {
  prost::Mutex<prost::LockRank::kLeaf> mu;
  return LeakLock(mu, 0);
}
