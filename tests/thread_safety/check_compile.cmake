# Negative-compile harness for the annotated locking layer, run as the
# `thread_safety_compile_test` ctest (tests/thread_safety/CMakeLists.txt).
#
#   cmake -DCOMPILER=<c++> -DMODE=<enforce|noop>
#         -DSNIPPET_DIR=<this dir> -DINCLUDE_DIR=<repo>/src
#         -P check_compile.cmake
#
# enforce (Clang): every fail_*.cc must FAIL to compile, and the failure
#   must come from the thread-safety analysis (diagnostic text matched),
#   while pass_*.cc must compile cleanly — proving the annotations bite
#   and the annotated wrappers themselves are warning-free.
# noop (non-Clang, where the PROST_* macros expand to nothing): every
#   snippet must compile, proving the snippets are real C++ and the
#   annotation layer is invisible to other compilers.

if(NOT COMPILER OR NOT MODE OR NOT SNIPPET_DIR OR NOT INCLUDE_DIR)
  message(FATAL_ERROR "usage: cmake -DCOMPILER=... -DMODE=enforce|noop "
    "-DSNIPPET_DIR=... -DINCLUDE_DIR=... -P check_compile.cmake")
endif()

set(base_flags -std=c++20 -fsyntax-only -I${INCLUDE_DIR})
if(MODE STREQUAL "enforce")
  list(APPEND base_flags -Wthread-safety -Werror=thread-safety)
elseif(NOT MODE STREQUAL "noop")
  message(FATAL_ERROR "MODE must be enforce or noop, got '${MODE}'")
endif()

file(GLOB must_fail "${SNIPPET_DIR}/fail_*.cc")
file(GLOB must_pass "${SNIPPET_DIR}/pass_*.cc")
if(NOT must_fail OR NOT must_pass)
  message(FATAL_ERROR "no snippets found under ${SNIPPET_DIR}")
endif()

set(problems "")
foreach(snippet IN LISTS must_fail must_pass)
  get_filename_component(name "${snippet}" NAME)
  execute_process(
    COMMAND ${COMPILER} ${base_flags} ${snippet}
    RESULT_VARIABLE status
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  set(expect_failure FALSE)
  if(MODE STREQUAL "enforce" AND name MATCHES "^fail_")
    set(expect_failure TRUE)
  endif()
  if(expect_failure)
    if(status EQUAL 0)
      list(APPEND problems
        "${name}: compiled cleanly but must fail under -Werror=thread-safety")
    elseif(NOT err MATCHES "thread-safety")
      list(APPEND problems
        "${name}: failed, but not from the thread-safety analysis:\n${err}")
    else()
      message(STATUS "${name}: rejected by the analysis, as required")
    endif()
  else()
    if(NOT status EQUAL 0)
      list(APPEND problems "${name}: must compile in ${MODE} mode:\n${err}")
    else()
      message(STATUS "${name}: compiles, as required")
    endif()
  endif()
endforeach()

if(problems)
  list(JOIN problems "\n" report)
  message(FATAL_ERROR "thread-safety compile checks failed:\n${report}")
endif()
message(STATUS "thread-safety compile checks passed (${MODE} mode)")
