// MUST NOT COMPILE under -Werror=thread-safety: touches a guarded field
// while holding a *different* mutex than the one that guards it — the
// classic wrong-lock race the annotations exist to catch.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class TwoLocks {
 public:
  void Set(int v) {
    prost::MutexLock lock(region_mu_);
    value_ = v;  // error: value_ is guarded by control_mu_, not region_mu_
  }

 private:
  prost::Mutex<prost::LockRank::kThreadPoolControl> control_mu_;
  prost::Mutex<prost::LockRank::kThreadPoolRegion> region_mu_;
  int value_ PROST_GUARDED_BY(control_mu_) = 0;
};

}  // namespace

int main() {
  TwoLocks locks;
  locks.Set(1);
  return 0;
}
