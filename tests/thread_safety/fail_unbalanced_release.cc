// MUST NOT COMPILE under -Werror=thread-safety: releases a mutex the
// thread does not hold (second Unlock).
#include "common/mutex.h"

namespace {

void ReleaseTwice(prost::MutexBase& mu) {
  mu.Lock();
  mu.Unlock();
  mu.Unlock();  // error: releasing mu, which is not held
}

}  // namespace

int main() {
  prost::Mutex<prost::LockRank::kLeaf> mu;
  ReleaseTwice(mu);
  return 0;
}
