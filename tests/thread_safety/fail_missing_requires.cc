// MUST NOT COMPILE under -Werror=thread-safety: calls a
// PROST_REQUIRES-annotated helper without holding the required mutex.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Queue {
 public:
  void Push(int v) { PushLocked(v); }  // error: PushLocked requires mu_

 private:
  void PushLocked(int v) PROST_REQUIRES(mu_) { items_[count_++ % 4] = v; }

  prost::Mutex<prost::LockRank::kLeaf> mu_;
  int items_[4] PROST_GUARDED_BY(mu_) = {};
  int count_ PROST_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue queue;
  queue.Push(7);
  return 0;
}
