// Unit tests for the SPARQL subset: lexer/parser, prefix handling,
// algebra helpers, and query validation.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sparql/algebra.h"
#include "sparql/parser.h"

namespace prost::sparql {
using prost::Rng;
namespace {

// ----------------------------------------------------------------- Parse

TEST(ParserTest, MinimalQuery) {
  auto query = ParseQuery("SELECT * WHERE { ?s <http://p> ?o . }");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_TRUE(query->projection.empty());
  EXPECT_FALSE(query->distinct);
  EXPECT_EQ(query->limit, 0u);
  ASSERT_EQ(query->bgp.patterns.size(), 1u);
  EXPECT_EQ(query->bgp.patterns[0].predicate.value, "http://p");
}

TEST(ParserTest, ExplicitProjection) {
  auto query = ParseQuery(
      "SELECT ?b ?a WHERE { ?a <http://p> ?b . }");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->projection, (std::vector<std::string>{"b", "a"}));
  EXPECT_EQ(query->EffectiveProjection(),
            (std::vector<std::string>{"b", "a"}));
}

TEST(ParserTest, SelectStarProjectionIsSortedVariables) {
  auto query = ParseQuery(
      "SELECT * WHERE { ?z <http://p> ?a . ?a <http://q> ?m . }");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->EffectiveProjection(),
            (std::vector<std::string>{"a", "m", "z"}));
}

TEST(ParserTest, PrefixExpansion) {
  auto query = ParseQuery(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT * WHERE { ?s ex:knows ex:alice . }");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->bgp.patterns[0].predicate.value,
            "http://example.org/knows");
  EXPECT_EQ(query->bgp.patterns[0].object.value,
            "http://example.org/alice");
}

TEST(ParserTest, UndeclaredPrefixFails) {
  auto query = ParseQuery("SELECT * WHERE { ?s nope:p ?o . }");
  EXPECT_EQ(query.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, DistinctAndLimit) {
  auto query = ParseQuery(
      "SELECT DISTINCT ?s WHERE { ?s <http://p> ?o . } LIMIT 10");
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(query->distinct);
  EXPECT_EQ(query->limit, 10u);
}

TEST(ParserTest, RdfTypeKeywordA) {
  auto query = ParseQuery("SELECT * WHERE { ?s a <http://Class> . }");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->bgp.patterns[0].predicate.value,
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
}

TEST(ParserTest, PredicateObjectLists) {
  auto query = ParseQuery(
      "SELECT * WHERE { ?s <http://p> ?a ; <http://q> ?b , ?c . }");
  ASSERT_TRUE(query.ok());
  ASSERT_EQ(query->bgp.patterns.size(), 3u);
  // All three share the subject.
  EXPECT_EQ(query->bgp.patterns[0].subject.value, "s");
  EXPECT_EQ(query->bgp.patterns[1].subject.value, "s");
  EXPECT_EQ(query->bgp.patterns[2].subject.value, "s");
  EXPECT_EQ(query->bgp.patterns[2].predicate.value, "http://q");
  EXPECT_EQ(query->bgp.patterns[2].object.value, "c");
}

TEST(ParserTest, LiteralsInObjects) {
  auto query = ParseQuery(
      "SELECT * WHERE { ?s <http://p> \"plain\" . "
      "?s <http://q> \"tagged\"@en . ?s <http://r> 42 . }");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->bgp.patterns[0].object.value, "plain");
  EXPECT_EQ(query->bgp.patterns[1].object.language, "en");
  EXPECT_EQ(query->bgp.patterns[2].object.datatype,
            "http://www.w3.org/2001/XMLSchema#integer");
}

TEST(ParserTest, CommentsAndWhitespace) {
  auto query = ParseQuery(
      "# leading comment\n"
      "SELECT *  # trailing comment\n"
      "WHERE {\n"
      "  ?s <http://p> ?o .  # pattern comment\n"
      "}\n");
  ASSERT_TRUE(query.ok()) << query.status();
}

TEST(ParserTest, DollarVariables) {
  auto query = ParseQuery("SELECT * WHERE { $s <http://p> $o . }");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->bgp.patterns[0].subject.value, "s");
}

TEST(ParserTest, SyntaxErrors) {
  for (const char* bad : {
           "",                                        // empty
           "WHERE { ?s <p> ?o . }",                   // no SELECT
           "SELECT WHERE { ?s <http://p> ?o . }",     // no projection
           "SELECT * { ?s <http://p> ?o . }",         // missing WHERE
           "SELECT * WHERE { ?s <http://p> ?o . ",    // unclosed brace
           "SELECT * WHERE { ?s <http://p> . }",      // missing object
           "SELECT * WHERE { ?s <http://p> ?o . } LIMIT",      // no number
           "SELECT * WHERE { ?s <http://p> ?o . } LIMIT 0",    // zero
           "SELECT * WHERE { ?s <http://p> ?o . } trailing",   // garbage
           "SELECT * WHERE { \"lit\" <http://p> ?o . }",       // lit subj
       }) {
    EXPECT_FALSE(ParseQuery(bad).ok()) << bad;
  }
}

TEST(ParserTest, ErrorsCiteLineNumbers) {
  auto query = ParseQuery("SELECT *\nWHERE {\n  ?s <http://p> .\n}");
  ASSERT_FALSE(query.ok());
  EXPECT_NE(query.status().message().find("line 3"), std::string::npos)
      << query.status();
}

// ----------------------------------------------------------- Validation

TEST(ValidationTest, ProjectedVariableMustBeBound) {
  auto query = ParseQuery("SELECT ?x WHERE { ?s <http://p> ?o . }");
  EXPECT_EQ(query.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValidationTest, VariablePredicateUnimplemented) {
  auto query = ParseQuery("SELECT * WHERE { ?s ?p ?o . }");
  EXPECT_EQ(query.status().code(), StatusCode::kUnimplemented);
}

TEST(ValidationTest, DisconnectedBgpRejected) {
  auto query = ParseQuery(
      "SELECT * WHERE { ?a <http://p> ?b . ?x <http://q> ?y . }");
  EXPECT_EQ(query.status().code(), StatusCode::kUnimplemented);
}

TEST(ValidationTest, ConnectedThroughChainAccepted) {
  auto query = ParseQuery(
      "SELECT * WHERE { ?a <http://p> ?b . ?b <http://q> ?c . "
      "?c <http://r> ?a . }");
  EXPECT_TRUE(query.ok()) << query.status();
}

// -------------------------------------------------------------- Algebra

TEST(AlgebraTest, PatternVariablesAndConstants) {
  TriplePattern pattern{rdf::Term::Variable("s"), rdf::Term::Iri("p"),
                        rdf::Term::Literal("v")};
  EXPECT_EQ(pattern.Variables(), (std::vector<std::string>{"s"}));
  EXPECT_FALSE(pattern.HasConstantSubject());
  EXPECT_TRUE(pattern.HasConstantObject());
  EXPECT_TRUE(pattern.HasLiteralOrConstant());
}

TEST(AlgebraTest, BgpVariablesSortedUnique) {
  auto query = ParseQuery(
      "SELECT * WHERE { ?z <http://p> ?a . ?a <http://p> ?z . }");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->bgp.Variables(), (std::set<std::string>{"a", "z"}));
}

TEST(AlgebraTest, SingleAndEmptyBgpConnectivity) {
  BasicGraphPattern empty;
  EXPECT_TRUE(empty.IsConnected());
  BasicGraphPattern single;
  single.patterns.push_back({rdf::Term::Variable("a"), rdf::Term::Iri("p"),
                             rdf::Term::Variable("b")});
  EXPECT_TRUE(single.IsConnected());
}

TEST(AlgebraTest, QueryToStringRoundTripsThroughParser) {
  auto query = ParseQuery(
      "PREFIX ex: <http://e/>\n"
      "SELECT DISTINCT ?a WHERE { ?a ex:p ex:c . ?a ex:q ?b . } LIMIT 5");
  ASSERT_TRUE(query.ok());
  auto reparsed = ParseQuery(query->ToString());
  ASSERT_TRUE(reparsed.ok()) << query->ToString();
  EXPECT_EQ(reparsed->projection, query->projection);
  EXPECT_EQ(reparsed->distinct, query->distinct);
  EXPECT_EQ(reparsed->limit, query->limit);
  EXPECT_EQ(reparsed->bgp.patterns, query->bgp.patterns);
}

TEST(ValidationTest, EmptyBgp) {
  Query query;
  EXPECT_EQ(ValidateQuery(query).code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ Fuzz-ish

TEST(ParserRobustnessTest, RandomBytesNeverCrash) {
  // The parser must reject garbage with a Status, never crash or hang.
  Rng rng(97);
  for (int round = 0; round < 2000; ++round) {
    std::string input;
    size_t length = rng.NextBounded(120);
    for (size_t i = 0; i < length; ++i) {
      input.push_back(static_cast<char>(rng.NextInRange(1, 255)));
    }
    (void)ParseQuery(input);  // Any Status is fine; no crash is the test.
  }
}

TEST(ParserRobustnessTest, MutatedValidQueriesNeverCrash) {
  const std::string valid =
      "PREFIX ex: <http://e/>\n"
      "SELECT DISTINCT ?a ?b WHERE { ?a ex:p ?b . ?b ex:q \"v\"@en . "
      "FILTER(?a != ex:c) } ORDER BY DESC(?b) LIMIT 5 OFFSET 1";
  ASSERT_TRUE(ParseQuery(valid).ok());
  Rng rng(131);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = valid;
    // Apply 1-3 random byte mutations (replace, delete, or insert).
    for (uint64_t m = 0, n = 1 + rng.NextBounded(3); m < n; ++m) {
      size_t pos = rng.NextBounded(mutated.size());
      switch (rng.NextBounded(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.NextInRange(1, 255));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1,
                         static_cast<char>(rng.NextInRange(32, 126)));
      }
    }
    (void)ParseQuery(mutated);
  }
}

}  // namespace
}  // namespace prost::sparql
