// Unit and property tests for the execution engine: relations, hash joins
// (broadcast and shuffle) checked against a naive nested-loop reference,
// filters, projections, distinct, limit, union, and repartitioning.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "cluster/cost_model.h"
#include "common/hash.h"
#include "common/rng.h"
#include "engine/operators.h"
#include "engine/relation.h"

namespace prost::engine {
namespace {

cluster::ClusterConfig TestConfig() {
  cluster::ClusterConfig config;
  config.num_workers = 4;
  return config;
}

Relation RelationOf(std::vector<std::string> names, std::vector<Row> rows,
                    uint32_t workers = 4) {
  return Relation::FromRows(std::move(names), rows, workers);
}

// ------------------------------------------------------------- Relation

TEST(RelationTest, ShapeAndCollect) {
  Relation r = RelationOf({"a", "b"}, {{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(r.num_columns(), 2u);
  EXPECT_EQ(r.TotalRows(), 3u);
  EXPECT_EQ(r.ColumnIndex("b"), 1);
  EXPECT_EQ(r.ColumnIndex("zz"), -1);
  EXPECT_TRUE(r.Validate().ok());
  EXPECT_EQ(r.CollectSortedRows(),
            (std::vector<Row>{{1, 2}, {3, 4}, {5, 6}}));
}

TEST(RelationTest, EstimatedBytesUsesConfigWidth) {
  Relation r = RelationOf({"a", "b"}, {{1, 2}, {3, 4}});
  cluster::ClusterConfig config = TestConfig();
  config.bytes_per_value = 10.0;
  EXPECT_EQ(r.EstimatedBytes(config), 2u * 2u * 10u);
}

TEST(RelationTest, PlannerBytesFallsBackToActual) {
  Relation r = RelationOf({"a"}, {{1}, {2}});
  cluster::ClusterConfig config = TestConfig();
  EXPECT_EQ(r.PlannerBytes(config), r.EstimatedBytes(config));
  r.set_planner_bytes(12345);
  EXPECT_EQ(r.PlannerBytes(config), 12345u);
}

TEST(RelationTest, ValidateCatchesRaggedChunks) {
  Relation r({"a", "b"}, 2);
  r.mutable_chunks()[0].columns[0].push_back(1);  // b missing
  EXPECT_FALSE(r.Validate().ok());
}

// ------------------------------------------------- HashJoin correctness

std::vector<Row> NaiveJoin(const Relation& left, const Relation& right) {
  // Reference nested-loop join on all shared column names.
  std::vector<int> lshared, rshared, rextra;
  for (size_t i = 0; i < left.column_names().size(); ++i) {
    int j = right.ColumnIndex(left.column_names()[i]);
    if (j >= 0) {
      lshared.push_back(static_cast<int>(i));
      rshared.push_back(j);
    }
  }
  for (size_t j = 0; j < right.column_names().size(); ++j) {
    if (std::find(rshared.begin(), rshared.end(), static_cast<int>(j)) ==
        rshared.end()) {
      rextra.push_back(static_cast<int>(j));
    }
  }
  std::vector<Row> out;
  for (const Row& l : left.CollectRows()) {
    for (const Row& r : right.CollectRows()) {
      bool match = true;
      for (size_t k = 0; k < lshared.size(); ++k) {
        if (l[static_cast<size_t>(lshared[k])] !=
            r[static_cast<size_t>(rshared[k])]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      Row row = l;
      for (int c : rextra) row.push_back(r[static_cast<size_t>(c)]);
      out.push_back(std::move(row));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Row> RunJoin(const Relation& left, const Relation& right,
                         const JoinOptions& options,
                         JoinStrategy* strategy = nullptr) {
  cluster::CostModel cost(TestConfig());
  cost.BeginStage("test");
  auto joined = HashJoin(left, right, options, cost);
  cost.EndStage();
  EXPECT_TRUE(joined.ok()) << joined.status();
  if (strategy != nullptr) *strategy = joined->strategy;
  EXPECT_TRUE(joined->relation.Validate().ok());
  return joined->relation.CollectSortedRows();
}

TEST(HashJoinTest, SimpleEquiJoin) {
  Relation users = RelationOf({"u", "city"}, {{1, 10}, {2, 10}, {3, 20}});
  Relation cities = RelationOf({"city", "country"}, {{10, 100}, {20, 200}});
  std::vector<Row> rows = RunJoin(users, cities, JoinOptions{});
  EXPECT_EQ(rows, NaiveJoin(users, cities));
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (Row{1, 10, 100}));
}

TEST(HashJoinTest, NoSharedColumnIsError) {
  Relation a = RelationOf({"x"}, {{1}});
  Relation b = RelationOf({"y"}, {{1}});
  cluster::CostModel cost(TestConfig());
  EXPECT_EQ(HashJoin(a, b, JoinOptions{}, cost).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HashJoinTest, MultiColumnKeys) {
  Relation a = RelationOf({"x", "y", "p"}, {{1, 2, 7}, {1, 3, 8}, {2, 2, 9}});
  Relation b = RelationOf({"x", "y", "q"}, {{1, 2, 70}, {2, 2, 90}, {1, 9, 0}});
  std::vector<Row> rows = RunJoin(a, b, JoinOptions{});
  EXPECT_EQ(rows, NaiveJoin(a, b));
  EXPECT_EQ(rows.size(), 2u);
}

TEST(HashJoinTest, DuplicateKeysProduceBagSemantics) {
  Relation a = RelationOf({"k", "va"}, {{1, 1}, {1, 2}});
  Relation b = RelationOf({"k", "vb"}, {{1, 5}, {1, 6}, {1, 7}});
  std::vector<Row> rows = RunJoin(a, b, JoinOptions{});
  EXPECT_EQ(rows.size(), 6u);  // 2 x 3 cross within the key group.
  EXPECT_EQ(rows, NaiveJoin(a, b));
}

TEST(HashJoinTest, BroadcastAndShuffleAgree) {
  Rng rng(77);
  for (int round = 0; round < 12; ++round) {
    std::vector<Row> left_rows, right_rows;
    size_t ln = 20 + rng.NextBounded(120);
    size_t rn = 20 + rng.NextBounded(120);
    uint64_t key_space = 2 + rng.NextBounded(30);
    for (size_t i = 0; i < ln; ++i) {
      left_rows.push_back(
          {1 + rng.NextBounded(key_space), rng.NextBounded(1000)});
    }
    for (size_t i = 0; i < rn; ++i) {
      right_rows.push_back(
          {1 + rng.NextBounded(key_space), rng.NextBounded(1000)});
    }
    Relation left = RelationOf({"k", "a"}, left_rows);
    Relation right = RelationOf({"k", "b"}, right_rows);

    JoinOptions broadcast;
    broadcast.broadcast_threshold_bytes = ~0ull >> 1;
    JoinOptions shuffle;
    shuffle.allow_broadcast = false;

    JoinStrategy s1, s2;
    std::vector<Row> via_broadcast = RunJoin(left, right, broadcast, &s1);
    std::vector<Row> via_shuffle = RunJoin(left, right, shuffle, &s2);
    EXPECT_EQ(s1, JoinStrategy::kBroadcast);
    EXPECT_EQ(s2, JoinStrategy::kShuffle);
    EXPECT_EQ(via_broadcast, via_shuffle) << "round " << round;
    EXPECT_EQ(via_shuffle, NaiveJoin(left, right)) << "round " << round;
  }
}

TEST(HashJoinTest, PlannerEstimateDrivesStrategy) {
  Relation small = RelationOf({"k", "a"}, {{1, 2}});
  Relation big = RelationOf({"k", "b"}, {{1, 3}, {2, 4}});
  small.set_planner_bytes(1);  // Leaf scan: known tiny.
  big.set_planner_bytes(Relation::kUnknownPlannerBytes);

  JoinOptions options;
  options.broadcast_threshold_bytes = 100;
  JoinStrategy strategy;
  RunJoin(small, big, options, &strategy);
  EXPECT_EQ(strategy, JoinStrategy::kBroadcast);

  // Derived relations (unknown planner size) never broadcast even when
  // actually tiny.
  small.set_planner_bytes(Relation::kUnknownPlannerBytes);
  RunJoin(small, big, options, &strategy);
  EXPECT_EQ(strategy, JoinStrategy::kShuffle);
}

TEST(HashJoinTest, JoinOutputPlannerIsUnknown) {
  Relation a = RelationOf({"k", "a"}, {{1, 2}});
  Relation b = RelationOf({"k", "b"}, {{1, 3}});
  cluster::CostModel cost(TestConfig());
  cost.BeginStage("t");
  auto joined = HashJoin(a, b, JoinOptions{}, cost);
  cost.EndStage();
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->relation.PlannerBytes(TestConfig()),
            Relation::kUnknownPlannerBytes);
}

TEST(HashJoinTest, ShuffleJoinCoLocatesOutput) {
  Relation a = RelationOf({"k", "a"}, {{1, 2}, {2, 3}, {3, 4}, {4, 5}});
  Relation b = RelationOf({"k", "b"}, {{1, 9}, {2, 8}, {3, 7}, {4, 6}});
  cluster::CostModel cost(TestConfig());
  cost.BeginStage("t");
  JoinOptions options;
  options.allow_broadcast = false;
  auto joined = HashJoin(a, b, options, cost);
  cost.EndStage();
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->relation.hash_partitioned_by(), 0);
  // Every row sits on the worker its key hashes to.
  for (uint32_t w = 0; w < joined->relation.num_chunks(); ++w) {
    const RelationChunk& chunk = joined->relation.chunks()[w];
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      EXPECT_EQ(Mix64(chunk.columns[0][r]) % 4, w);
    }
  }
}

TEST(HashJoinTest, ShuffleSkipsAlreadyPartitionedSideWhenAllowed) {
  Relation a = RelationOf({"k", "a"}, {{1, 2}, {2, 3}, {3, 4}, {4, 5}});
  Relation b = RelationOf({"k", "b"}, {{1, 9}, {2, 8}});
  cluster::CostModel cost(TestConfig());

  // Pre-partition `a` on k.
  cost.BeginStage("prep");
  Relation a_parts = RepartitionByColumn(a, 0, 4, cost);
  cost.EndStage();
  uint64_t shuffled_before = cost.counters().bytes_shuffled;

  JoinOptions options;
  options.allow_broadcast = false;
  options.reuse_partitioning = true;
  cost.BeginStage("join");
  auto joined = HashJoin(a_parts, b, options, cost);
  cost.EndStage();
  ASSERT_TRUE(joined.ok());
  // Only b's bytes were shuffled for the join.
  uint64_t join_shuffle = cost.counters().bytes_shuffled - shuffled_before;
  EXPECT_EQ(join_shuffle, b.EstimatedBytes(cost.config()));

  // Without reuse, both sides move again.
  cluster::CostModel cost2(TestConfig());
  options.reuse_partitioning = false;
  cost2.BeginStage("join");
  auto joined2 = HashJoin(a_parts, b, options, cost2);
  cost2.EndStage();
  ASSERT_TRUE(joined2.ok());
  EXPECT_GT(cost2.counters().bytes_shuffled, join_shuffle);
  EXPECT_EQ(joined->relation.CollectSortedRows(),
            joined2->relation.CollectSortedRows());
}

// ------------------------------------------------------ Other operators

TEST(FilterTest, KeepsMatchingRows) {
  Relation r = RelationOf({"a", "b"}, {{1, 5}, {2, 5}, {1, 6}});
  cluster::CostModel cost(TestConfig());
  auto filtered = Filter(r, "a", 1, cost);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->CollectSortedRows(),
            (std::vector<Row>{{1, 5}, {1, 6}}));
  EXPECT_FALSE(Filter(r, "zz", 1, cost).ok());
}

TEST(ProjectTest, ReordersAndDrops) {
  Relation r = RelationOf({"a", "b", "c"}, {{1, 2, 3}, {4, 5, 6}});
  cluster::CostModel cost(TestConfig());
  auto projected = Project(r, {"c", "a"}, cost);
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->column_names(),
            (std::vector<std::string>{"c", "a"}));
  EXPECT_EQ(projected->CollectSortedRows(),
            (std::vector<Row>{{3, 1}, {6, 4}}));
  EXPECT_FALSE(Project(r, {"a", "a"}, cost).ok());
  EXPECT_FALSE(Project(r, {"nope"}, cost).ok());
}

TEST(ProjectTest, PartitioningSurvivesWhenColumnKept) {
  Relation r = RelationOf({"a", "b"}, {{1, 2}});
  r.set_hash_partitioned_by(0);
  cluster::CostModel cost(TestConfig());
  auto kept = Project(r, {"a"}, cost);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->hash_partitioned_by(), 0);
  auto dropped = Project(r, {"b"}, cost);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped->hash_partitioned_by(), -1);
}

TEST(DistinctTest, RemovesDuplicatesGlobally) {
  // Same logical row placed in different chunks must still deduplicate.
  Relation r({"a", "b"}, 3);
  for (uint32_t w = 0; w < 3; ++w) {
    r.mutable_chunks()[w].columns[0].push_back(1);
    r.mutable_chunks()[w].columns[1].push_back(2);
  }
  r.mutable_chunks()[0].columns[0].push_back(9);
  r.mutable_chunks()[0].columns[1].push_back(9);
  cluster::CostModel cost(TestConfig());
  cost.BeginStage("t");
  auto distinct = Distinct(r, cost);
  cost.EndStage();
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(distinct->CollectSortedRows(),
            (std::vector<Row>{{1, 2}, {9, 9}}));
}

TEST(LimitTest, TruncatesAcrossChunks) {
  Relation r = RelationOf({"a"}, {{1}, {2}, {3}, {4}, {5}});
  EXPECT_EQ(Limit(r, 2).TotalRows(), 2u);
  EXPECT_EQ(Limit(r, 0).TotalRows(), 0u);
  EXPECT_EQ(Limit(r, 99).TotalRows(), 5u);
}

TEST(UnionTest, ConcatenatesAndValidates) {
  Relation a = RelationOf({"x"}, {{1}, {2}});
  Relation b = RelationOf({"x"}, {{3}});
  auto u = Union(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->CollectSortedRows(), (std::vector<Row>{{1}, {2}, {3}}));
  Relation c = RelationOf({"y"}, {{3}});
  EXPECT_FALSE(Union(a, c).ok());
}

TEST(RepartitionTest, CoLocatesEqualKeys) {
  Rng rng(5);
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back({1 + rng.NextBounded(20), rng.Next()});
  }
  Relation r = RelationOf({"k", "v"}, rows);
  cluster::CostModel cost(TestConfig());
  cost.BeginStage("t");
  Relation parts = RepartitionByColumn(r, 0, 4, cost);
  cost.EndStage();
  EXPECT_EQ(parts.hash_partitioned_by(), 0);
  EXPECT_EQ(parts.TotalRows(), 200u);
  std::map<TermId, std::set<uint32_t>> owner;
  for (uint32_t w = 0; w < parts.num_chunks(); ++w) {
    const RelationChunk& chunk = parts.chunks()[w];
    for (size_t i = 0; i < chunk.num_rows(); ++i) {
      owner[chunk.columns[0][i]].insert(w);
    }
  }
  for (const auto& [key, workers] : owner) {
    EXPECT_EQ(workers.size(), 1u) << "key " << key << " split";
  }
}

}  // namespace
}  // namespace prost::engine
