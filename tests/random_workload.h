// Shared random-workload generators for the property tests: small random
// graphs with connecting vocabularies, and random connected BGP queries
// (optional constants, repeated variables, filters, DISTINCT). Used by
// both the cross-system equivalence test and the parallel-executor
// differential test, so the two sweeps cover the same plan-shape space.

#ifndef PROST_TESTS_RANDOM_WORKLOAD_H_
#define PROST_TESTS_RANDOM_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"
#include "rdf/graph.h"
#include "sparql/algebra.h"
#include "watdiv/queries.h"

namespace prost::testing {

/// A random graph over a small vocabulary so joins actually connect:
/// `entities` subjects/objects, `predicates` predicates, some literal
/// objects.
inline rdf::EncodedGraph RandomGraph(Rng& rng, size_t triples,
                                     size_t entities, size_t predicates) {
  rdf::EncodedGraph graph;
  for (size_t i = 0; i < triples; ++i) {
    std::string s = StrFormat("http://e/%llu",
                              static_cast<unsigned long long>(
                                  rng.NextBounded(entities)));
    std::string p = StrFormat("http://p/%llu",
                              static_cast<unsigned long long>(
                                  rng.NextBounded(predicates)));
    rdf::Term object =
        rng.NextBernoulli(0.3)
            ? rdf::Term::TypedLiteral(
                  std::to_string(rng.NextBounded(20)),
                  "http://www.w3.org/2001/XMLSchema#integer")
            : rdf::Term::Iri(StrFormat("http://e/%llu",
                                       static_cast<unsigned long long>(
                                           rng.NextBounded(entities))));
    graph.Add({rdf::Term::Iri(s), rdf::Term::Iri(p), std::move(object)});
  }
  graph.SortAndDedupe();
  return graph;
}

/// A random connected BGP: each pattern after the first reuses one
/// already-bound variable in subject or object position.
inline sparql::Query RandomQuery(Rng& rng, const rdf::EncodedGraph& graph,
                                 size_t num_patterns, size_t predicates) {
  using rdf::Term;
  sparql::Query query;
  std::vector<std::string> bound = {"v0"};
  size_t next_var = 1;
  auto fresh_var = [&] {
    std::string name = StrFormat("v%zu", next_var++);
    bound.push_back(name);
    return name;
  };
  auto random_bound = [&] { return bound[rng.NextBounded(bound.size())]; };
  auto random_entity_id = [&]() -> rdf::TermId {
    // A term id that exists in the data, for non-vacuous constants.
    if (graph.size() == 0) return rdf::kNullTermId;
    const auto& t = graph.triples()[rng.NextBounded(graph.size())];
    return rng.NextBernoulli(0.5) ? t.subject : t.object;
  };

  for (size_t i = 0; i < num_patterns; ++i) {
    sparql::TriplePattern pattern;
    pattern.predicate = Term::Iri(StrFormat(
        "http://p/%llu",
        static_cast<unsigned long long>(rng.NextBounded(predicates))));
    bool reuse_in_subject = i == 0 || rng.NextBernoulli(0.5);
    // Subject position.
    if (i > 0 && reuse_in_subject) {
      pattern.subject = Term::Variable(random_bound());
    } else if (i == 0 || rng.NextBernoulli(0.85)) {
      pattern.subject = Term::Variable(fresh_var());
    } else {
      auto decoded = graph.dictionary().DecodeTerm(random_entity_id());
      pattern.subject = decoded.ok() && !decoded->is_literal()
                            ? *decoded
                            : Term::Variable(fresh_var());
    }
    // Object position.
    if (i > 0 && !reuse_in_subject) {
      pattern.object = Term::Variable(random_bound());
    } else if (rng.NextBernoulli(0.75)) {
      pattern.object = Term::Variable(fresh_var());
    } else {
      auto decoded = graph.dictionary().DecodeTerm(random_entity_id());
      pattern.object =
          decoded.ok() ? *decoded : Term::Variable(fresh_var());
    }
    query.bgp.patterns.push_back(std::move(pattern));
  }

  // Occasional FILTER over some bound variable.
  if (rng.NextBernoulli(0.4)) {
    sparql::FilterConstraint filter;
    filter.variable = random_bound();
    filter.op = static_cast<sparql::CompareOp>(rng.NextBounded(6));
    if (rng.NextBernoulli(0.3) && bound.size() > 1) {
      filter.rhs_is_variable = true;
      filter.rhs_variable = random_bound();
    } else if (rng.NextBernoulli(0.5)) {
      filter.rhs_term = Term::TypedLiteral(
          std::to_string(rng.NextBounded(20)),
          "http://www.w3.org/2001/XMLSchema#integer");
    } else {
      auto decoded = graph.dictionary().DecodeTerm(random_entity_id());
      filter.rhs_term = decoded.ok() ? *decoded : Term::Literal("x");
    }
    query.filters.push_back(std::move(filter));
  }
  query.distinct = rng.NextBernoulli(0.3);
  return query;
}

/// Weighted sampler over the WatDiv basic query set, modeling a serving
/// mix: star and linear lookups dominate, snowflakes are common, complex
/// analytics are rare (the usual read-heavy serving skew). Draws return
/// *indices* into the query vector handed to the constructor, so callers
/// can pair every draw with a precomputed per-query reference result —
/// the serving stress test samples the same deterministic stream per
/// client and checks each answer bitwise.
class QueryMixSampler {
 public:
  /// Relative weight of one WatDiv query class in the serving mix.
  static uint32_t ClassWeight(char query_class) {
    switch (query_class) {
      case 'C':
        return 1;  // Complex: rare analytics.
      case 'F':
        return 2;  // Snowflake.
      case 'L':
        return 4;  // Linear: the point-lookup bread and butter.
      case 'S':
        return 3;  // Star.
      default:
        return 1;
    }
  }

  explicit QueryMixSampler(const std::vector<watdiv::WatDivQuery>& queries) {
    cumulative_.reserve(queries.size());
    uint64_t total = 0;
    for (const watdiv::WatDivQuery& query : queries) {
      total += ClassWeight(query.query_class);
      cumulative_.push_back(total);
    }
  }

  /// Index of the next sampled query, weighted by class.
  size_t SampleIndex(Rng& rng) const {
    uint64_t pick = rng.NextBounded(cumulative_.back());
    size_t index = 0;
    while (cumulative_[index] <= pick) ++index;
    return index;
  }

 private:
  std::vector<uint64_t> cumulative_;  // Per-query cumulative weights.
};

}  // namespace prost::testing

#endif  // PROST_TESTS_RANDOM_WORKLOAD_H_
