// Tests for FILTER constraints and solution modifiers (ORDER BY, OFFSET,
// LIMIT, DISTINCT) across the parser, the shared evaluator in
// core/modifiers.cc, and all four systems.

#include <gtest/gtest.h>

#include "baselines/system.h"
#include "core/prost_db.h"
#include "reference_evaluator.h"
#include "sparql/parser.h"

namespace prost {
namespace {

using rdf::Term;

// ------------------------------------------------------------- Parsing

TEST(FilterParseTest, ComparisonOperators) {
  auto query = sparql::ParseQuery(
      "SELECT * WHERE { ?s <http://p> ?o . FILTER(?o > 5) . "
      "FILTER(?o <= 10) FILTER(?o != \"x\") }");
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_EQ(query->filters.size(), 3u);
  EXPECT_EQ(query->filters[0].op, sparql::CompareOp::kGt);
  EXPECT_EQ(query->filters[0].rhs_term.datatype,
            "http://www.w3.org/2001/XMLSchema#integer");
  EXPECT_EQ(query->filters[1].op, sparql::CompareOp::kLe);
  EXPECT_EQ(query->filters[2].op, sparql::CompareOp::kNe);
  EXPECT_EQ(query->filters[2].rhs_term.value, "x");
}

TEST(FilterParseTest, VariableRhsAndIriRhs) {
  auto query = sparql::ParseQuery(
      "SELECT * WHERE { ?a <http://p> ?b . ?a <http://q> ?c . "
      "FILTER(?b = ?c) FILTER(?a != <http://ex/thing>) }");
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_EQ(query->filters.size(), 2u);
  EXPECT_TRUE(query->filters[0].rhs_is_variable);
  EXPECT_EQ(query->filters[0].rhs_variable, "c");
  EXPECT_FALSE(query->filters[1].rhs_is_variable);
  EXPECT_TRUE(query->filters[1].rhs_term.is_iri());
}

TEST(FilterParseTest, LessThanVsIriDisambiguation) {
  // '<' followed by an IRI body is an IRI; '<' followed by space is an
  // operator.
  auto query = sparql::ParseQuery(
      "SELECT * WHERE { ?s <http://p> ?o . FILTER(?o < 7) }");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query->filters[0].op, sparql::CompareOp::kLt);
}

TEST(FilterParseTest, Failures) {
  for (const char* bad : {
           "SELECT * WHERE { ?s <http://p> ?o . FILTER(?o >) }",
           "SELECT * WHERE { ?s <http://p> ?o . FILTER(5 > ?o) }",
           "SELECT * WHERE { ?s <http://p> ?o . FILTER ?o > 5 }",
           "SELECT * WHERE { ?s <http://p> ?o . FILTER(?o > 5 }",
           "SELECT * WHERE { ?s <http://p> ?o . FILTER(?zz > 5) }",  // unbound
       }) {
    EXPECT_FALSE(sparql::ParseQuery(bad).ok()) << bad;
  }
}

TEST(ModifierParseTest, OrderByLimitOffset) {
  auto query = sparql::ParseQuery(
      "SELECT ?o WHERE { ?s <http://p> ?o . } "
      "ORDER BY DESC(?o) ?s LIMIT 3 OFFSET 2");
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_EQ(query->order_by.size(), 2u);
  EXPECT_TRUE(query->order_by[0].descending);
  EXPECT_EQ(query->order_by[0].variable, "o");
  EXPECT_FALSE(query->order_by[1].descending);
  EXPECT_EQ(query->limit, 3u);
  EXPECT_EQ(query->offset, 2u);
  // OFFSET-before-LIMIT also parses.
  auto swapped = sparql::ParseQuery(
      "SELECT ?o WHERE { ?s <http://p> ?o . } OFFSET 2 LIMIT 3");
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(swapped->limit, 3u);
  EXPECT_EQ(swapped->offset, 2u);
}

TEST(ModifierParseTest, ToStringRoundTrip) {
  auto query = sparql::ParseQuery(
      "SELECT ?o WHERE { ?s <http://p> ?o . FILTER(?o >= 3) } "
      "ORDER BY ASC(?o) LIMIT 5 OFFSET 1");
  ASSERT_TRUE(query.ok());
  auto reparsed = sparql::ParseQuery(query->ToString());
  ASSERT_TRUE(reparsed.ok()) << query->ToString();
  EXPECT_EQ(reparsed->filters, query->filters);
  EXPECT_EQ(reparsed->order_by, query->order_by);
  EXPECT_EQ(reparsed->offset, query->offset);
}

// ------------------------------------------------------------ Execution

rdf::EncodedGraph ScoresGraph() {
  rdf::EncodedGraph graph;
  auto add_score = [&](const char* who, int score) {
    graph.Add({Term::Iri(who), Term::Iri("score"),
               Term::TypedLiteral(std::to_string(score),
                                  "http://www.w3.org/2001/XMLSchema#integer")});
    graph.Add({Term::Iri(who), Term::Iri("name"),
               Term::Literal(std::string("name-") + who)});
  };
  add_score("a", 5);
  add_score("b", 30);
  add_score("c", 7);   // "7" > "30" lexically, 7 < 30 numerically.
  add_score("d", 30);
  graph.SortAndDedupe();
  return graph;
}

std::unique_ptr<core::ProstDb> LoadScores() {
  core::ProstDb::Options options;
  auto db = core::ProstDb::LoadFromGraph(ScoresGraph(), options);
  EXPECT_TRUE(db.ok());
  return std::move(db).value();
}

TEST(FilterExecTest, NumericComparisonNotLexical) {
  auto db = LoadScores();
  auto result = db->ExecuteSparql(
      "SELECT ?s WHERE { ?s <score> ?v . FILTER(?v < 30) }");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 2u);  // a(5) and c(7); lexical would differ.
}

TEST(FilterExecTest, EqualityAndInequality) {
  auto db = LoadScores();
  auto eq = db->ExecuteSparql(
      "SELECT ?s WHERE { ?s <score> ?v . FILTER(?v = 30) }");
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->num_rows(), 2u);  // b and d.
  auto ne = db->ExecuteSparql(
      "SELECT ?s WHERE { ?s <score> ?v . FILTER(?v != 30) }");
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ(ne->num_rows(), 2u);
  auto iri = db->ExecuteSparql(
      "SELECT ?s WHERE { ?s <score> ?v . FILTER(?s != <a>) }");
  ASSERT_TRUE(iri.ok());
  EXPECT_EQ(iri->num_rows(), 3u);
}

TEST(FilterExecTest, VariableVsVariable) {
  rdf::EncodedGraph graph;
  auto add = [&](const char* s, const char* p, int v) {
    graph.Add({Term::Iri(s), Term::Iri(p),
               Term::TypedLiteral(std::to_string(v),
                                  "http://www.w3.org/2001/XMLSchema#integer")});
  };
  add("x", "low", 1);
  add("x", "high", 9);
  add("y", "low", 5);
  add("y", "high", 3);  // low > high: filtered out
  core::ProstDb::Options options;
  auto db = core::ProstDb::LoadFromGraph(std::move(graph), options);
  ASSERT_TRUE(db.ok());
  auto result = (*db)->ExecuteSparql(
      "SELECT ?s WHERE { ?s <low> ?l . ?s <high> ?h . FILTER(?l < ?h) }");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_rows(), 1u);
}

TEST(FilterExecTest, ConstantAbsentFromDataStillComparable) {
  auto db = LoadScores();
  // "6" does not occur in the dataset; ordering must still work.
  auto result = db->ExecuteSparql(
      "SELECT ?s WHERE { ?s <score> ?v . FILTER(?v > 6) }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 3u);  // 30, 7, 30.
}

TEST(OrderByExecTest, NumericOrderAndDesc) {
  auto db = LoadScores();
  auto result = db->ExecuteSparql(
      "SELECT ?s ?v WHERE { ?s <score> ?v . } ORDER BY DESC(?v) ?s");
  ASSERT_TRUE(result.ok()) << result.status();
  auto rows = db->DecodeRows(result->relation);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);
  // DESC(?v): 30, 30, 7, 5; ties broken by ?s ascending (b before d).
  EXPECT_EQ((*rows)[0][0], "<b>");
  EXPECT_EQ((*rows)[1][0], "<d>");
  EXPECT_EQ((*rows)[2][0], "<c>");
  EXPECT_EQ((*rows)[3][0], "<a>");
}

TEST(OrderByExecTest, LimitAndOffsetAfterOrder) {
  auto db = LoadScores();
  auto result = db->ExecuteSparql(
      "SELECT ?s WHERE { ?s <score> ?v . } ORDER BY ?v OFFSET 1 LIMIT 2");
  ASSERT_TRUE(result.ok()) << result.status();
  auto rows = db->DecodeRows(result->relation);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  // ASC order: a(5), c(7), b(30), d(30); offset 1, limit 2 -> c, b.
  EXPECT_EQ((*rows)[0][0], "<c>");
  EXPECT_EQ((*rows)[1][0], "<b>");
}

TEST(OffsetExecTest, OffsetWithoutOrderDropsRows) {
  auto db = LoadScores();
  auto result = db->ExecuteSparql(
      "SELECT ?s WHERE { ?s <score> ?v . } OFFSET 3");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_rows(), 1u);
  auto all_dropped = db->ExecuteSparql(
      "SELECT ?s WHERE { ?s <score> ?v . } OFFSET 99");
  ASSERT_TRUE(all_dropped.ok());
  EXPECT_EQ(all_dropped->num_rows(), 0u);
}

// --------------------------------------------------------------- COUNT

TEST(CountTest, ParseForms) {
  auto star = sparql::ParseQuery(
      "SELECT (COUNT(*) AS ?n) WHERE { ?s <p> ?o . }");
  ASSERT_TRUE(star.ok()) << star.status();
  ASSERT_TRUE(star->count.has_value());
  EXPECT_TRUE(star->count->variable.empty());
  EXPECT_FALSE(star->count->distinct);
  EXPECT_EQ(star->count->alias, "n");

  auto distinct_var = sparql::ParseQuery(
      "SELECT (COUNT(DISTINCT ?o) AS ?kinds) WHERE { ?s <p> ?o . }");
  ASSERT_TRUE(distinct_var.ok()) << distinct_var.status();
  EXPECT_TRUE(distinct_var->count->distinct);
  EXPECT_EQ(distinct_var->count->variable, "o");

  for (const char* bad : {
           "SELECT (COUNT(*)) WHERE { ?s <p> ?o . }",          // no AS
           "SELECT (SUM(*) AS ?n) WHERE { ?s <p> ?o . }",      // not COUNT
           "SELECT (COUNT(?zz) AS ?n) WHERE { ?s <p> ?o . }",  // unbound
       }) {
    EXPECT_FALSE(sparql::ParseQuery(bad).ok()) << bad;
  }
}

TEST(CountTest, CountStarAndDistinct) {
  auto db = LoadScores();
  auto total = db->ExecuteSparql(
      "SELECT (COUNT(*) AS ?n) WHERE { ?s <score> ?v . }");
  ASSERT_TRUE(total.ok()) << total.status();
  ASSERT_EQ(total->num_rows(), 1u);
  EXPECT_EQ(total->relation.column_names(),
            (std::vector<std::string>{"n"}));
  EXPECT_EQ(total->relation.CollectRows()[0][0], rdf::VirtualIntegerId(4));

  auto kinds = db->ExecuteSparql(
      "SELECT (COUNT(DISTINCT ?v) AS ?k) WHERE { ?s <score> ?v . }");
  ASSERT_TRUE(kinds.ok());
  // Scores are 5, 30, 7, 30 -> 3 distinct values.
  EXPECT_EQ(kinds->relation.CollectRows()[0][0], rdf::VirtualIntegerId(3));

  auto filtered = db->ExecuteSparql(
      "SELECT (COUNT(*) AS ?n) WHERE { ?s <score> ?v . FILTER(?v < 30) }");
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->relation.CollectRows()[0][0],
            rdf::VirtualIntegerId(2));

  auto decoded = db->DecodeRows(total->relation);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0][0],
            "\"4\"^^<http://www.w3.org/2001/XMLSchema#integer>");
}

TEST(CountTest, CrossSystemAgreement) {
  auto graph = std::make_shared<const rdf::EncodedGraph>(ScoresGraph());
  cluster::ClusterConfig cluster;
  auto systems = baselines::MakeAllSystems(graph, cluster);
  ASSERT_TRUE(systems.ok());
  auto query = sparql::ParseQuery(
      "SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s <score> ?v . "
      "?s <name> ?m . FILTER(?v >= 7) }");
  ASSERT_TRUE(query.ok()) << query.status();
  auto expected = testing::ReferenceEvaluate(*query, *graph);
  ASSERT_EQ(expected.size(), 1u);
  EXPECT_EQ(expected[0][0], rdf::VirtualIntegerId(3));
  for (const auto& system : *systems) {
    auto result = system->Execute(*query);
    ASSERT_TRUE(result.ok()) << system->name() << ": " << result.status();
    EXPECT_EQ(result->relation.CollectSortedRows(), expected)
        << system->name();
  }
}

// ------------------------------------------------- Cross-system filters

TEST(FilterCrossSystemTest, AllSystemsAgreeWithReference) {
  auto graph = std::make_shared<const rdf::EncodedGraph>(ScoresGraph());
  cluster::ClusterConfig cluster;
  auto systems = baselines::MakeAllSystems(graph, cluster);
  ASSERT_TRUE(systems.ok());
  auto vp_only = baselines::MakeProstVpOnly(graph, cluster);
  ASSERT_TRUE(vp_only.ok());

  for (const char* text : {
           "SELECT * WHERE { ?s <score> ?v . FILTER(?v >= 7) }",
           "SELECT * WHERE { ?s <score> ?v . ?s <name> ?n . "
           "FILTER(?v < 30) FILTER(?n != \"name-a\") }",
           "SELECT DISTINCT ?v WHERE { ?s <score> ?v . FILTER(?v <= 30) }",
       }) {
    auto query = sparql::ParseQuery(text);
    ASSERT_TRUE(query.ok()) << text << ": " << query.status();
    auto expected = testing::ReferenceEvaluate(*query, *graph);
    for (const auto& system : *systems) {
      auto result = system->Execute(*query);
      ASSERT_TRUE(result.ok()) << system->name() << ": " << result.status();
      EXPECT_EQ(result->relation.CollectSortedRows(), expected)
          << system->name() << " on " << text;
    }
    auto vp_result = (*vp_only)->Execute(*query);
    ASSERT_TRUE(vp_result.ok());
    EXPECT_EQ(vp_result->relation.CollectSortedRows(), expected) << text;
  }
}

}  // namespace
}  // namespace prost
