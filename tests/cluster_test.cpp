// Unit tests for the cluster simulator: cost model stage semantics,
// counters, and config scaling.

#include <gtest/gtest.h>

#include "cluster/config.h"
#include "cluster/cost_model.h"

namespace prost::cluster {
namespace {

ClusterConfig SimpleConfig() {
  ClusterConfig config;
  config.num_workers = 4;
  config.scan_bytes_per_sec = 100.0;     // 100 B/s -> easy arithmetic
  config.cpu_rows_per_sec = 10.0;        // 10 rows/s
  config.network_bytes_per_sec = 25.0;   // 25 B/s per link
  config.stage_overhead_sec = 1.0;
  config.query_overhead_sec = 0.5;
  config.shuffle_latency_sec = 0.25;
  config.kv_seek_sec = 2.0;
  config.load_rows_per_sec = 5.0;
  return config;
}

TEST(CostModelTest, EmptyStageCostsOverheadOnly) {
  CostModel cost(SimpleConfig());
  cost.BeginStage("noop");
  cost.EndStage();
  EXPECT_DOUBLE_EQ(cost.ElapsedSeconds(), 1.0);
  EXPECT_EQ(cost.counters().stages, 1u);
}

TEST(CostModelTest, StageTakesMaxOverWorkers) {
  CostModel cost(SimpleConfig());
  cost.BeginStage("scan");
  cost.ChargeScan(0, 200);  // 2s
  cost.ChargeScan(1, 500);  // 5s  <- straggler
  cost.ChargeScan(2, 100);  // 1s
  cost.EndStage();
  EXPECT_DOUBLE_EQ(cost.ElapsedSeconds(), 5.0 + 1.0);
}

TEST(CostModelTest, ScanAndCpuAccumulatePerWorker) {
  CostModel cost(SimpleConfig());
  cost.BeginStage("mixed");
  cost.ChargeScan(0, 100);    // 1s
  cost.ChargeCpuRows(0, 20);  // 2s -> worker 0 at 3s total
  cost.ChargeCpuRows(1, 10);  // 1s
  cost.EndStage();
  EXPECT_DOUBLE_EQ(cost.ElapsedSeconds(), 3.0 + 1.0);
}

TEST(CostModelTest, ShuffleSharedAcrossLinksPlusLatency) {
  CostModel cost(SimpleConfig());
  cost.BeginStage("exchange");
  // 400 bytes over 4 links x 25 B/s = 4s, plus 0.25s latency.
  cost.ChargeShuffle(400);
  cost.EndStage();
  EXPECT_DOUBLE_EQ(cost.ElapsedSeconds(), 4.0 + 0.25 + 1.0);
  EXPECT_EQ(cost.counters().bytes_shuffled, 400u);
}

TEST(CostModelTest, BroadcastUsesSingleLinkRate) {
  CostModel cost(SimpleConfig());
  cost.BeginStage("bcast");
  cost.ChargeBroadcast(50);  // 50 / 25 = 2s
  cost.EndStage();
  EXPECT_DOUBLE_EQ(cost.ElapsedSeconds(), 2.0 + 1.0);
  EXPECT_EQ(cost.counters().bytes_broadcast, 50u * 4);
}

TEST(CostModelTest, KvSeekChargesLatencyPlusRows) {
  CostModel cost(SimpleConfig());
  cost.BeginStage("rya");
  cost.ChargeKvSeek(0, 10);  // 2s + 1s rows
  cost.ChargeKvSeek(0, 0);   // 2s
  cost.EndStage();
  EXPECT_DOUBLE_EQ(cost.ElapsedSeconds(), 5.0 + 1.0);
  EXPECT_EQ(cost.counters().kv_seeks, 2u);
}

TEST(CostModelTest, LoadRowsUseLoadRate) {
  CostModel cost(SimpleConfig());
  cost.BeginStage("ingest");
  cost.ChargeLoadRows(0, 10);  // 2s at 5 rows/s
  cost.EndStage();
  EXPECT_DOUBLE_EQ(cost.ElapsedSeconds(), 2.0 + 1.0);
}

TEST(CostModelTest, WorkerIndexWraps) {
  CostModel cost(SimpleConfig());
  cost.BeginStage("wrap");
  cost.ChargeCpuRows(6, 10);  // worker 6 % 4 == 2
  cost.EndStage();
  EXPECT_DOUBLE_EQ(cost.ElapsedSeconds(), 1.0 + 1.0);
}

TEST(CostModelTest, StagesAreIndependent) {
  CostModel cost(SimpleConfig());
  cost.BeginStage("a");
  cost.ChargeCpuRows(0, 10);  // 1s
  cost.EndStage();
  cost.BeginStage("b");
  cost.ChargeCpuRows(0, 20);  // 2s -- not 3s; per-stage accumulators reset
  cost.EndStage();
  EXPECT_DOUBLE_EQ(cost.ElapsedSeconds(), (1.0 + 1.0) + (2.0 + 1.0));
}

TEST(CostModelTest, EndWithoutBeginIsNoop) {
  CostModel cost(SimpleConfig());
  cost.EndStage();
  EXPECT_DOUBLE_EQ(cost.ElapsedSeconds(), 0.0);
  EXPECT_EQ(cost.counters().stages, 0u);
}

TEST(CostModelTest, QueryOverheadAndAdvance) {
  CostModel cost(SimpleConfig());
  cost.ChargeQueryOverhead();
  cost.AdvanceSeconds(2.0);
  EXPECT_DOUBLE_EQ(cost.ElapsedSeconds(), 2.5);
}

TEST(CostModelTest, ResetClearsEverything) {
  CostModel cost(SimpleConfig());
  cost.BeginStage("s");
  cost.ChargeShuffle(100);
  cost.EndStage();
  cost.Reset();
  EXPECT_DOUBLE_EQ(cost.ElapsedSeconds(), 0.0);
  EXPECT_EQ(cost.counters().bytes_shuffled, 0u);
  EXPECT_EQ(cost.counters().stages, 0u);
}

TEST(CountersTest, Accumulate) {
  ExecutionCounters a, b;
  a.bytes_scanned = 1;
  a.rows_processed = 2;
  b.bytes_scanned = 10;
  b.stages = 3;
  a += b;
  EXPECT_EQ(a.bytes_scanned, 11u);
  EXPECT_EQ(a.rows_processed, 2u);
  EXPECT_EQ(a.stages, 3u);
}

TEST(ConfigTest, ScaleToDatasetPreservesRegime) {
  ClusterConfig config;
  double base_cpu = config.cpu_rows_per_sec;
  double base_seek = config.kv_seek_sec;
  uint64_t base_threshold = config.broadcast_threshold_bytes;
  config.ScaleToDataset(1'000'000);  // 1% of the 100M reference.
  EXPECT_DOUBLE_EQ(config.cpu_rows_per_sec, base_cpu * 0.01);
  EXPECT_DOUBLE_EQ(config.kv_seek_sec, base_seek / 0.01);
  EXPECT_EQ(config.broadcast_threshold_bytes,
            static_cast<uint64_t>(base_threshold * 0.01));
  // Fixed engine latencies do not scale.
  ClusterConfig fresh;
  EXPECT_DOUBLE_EQ(config.stage_overhead_sec, fresh.stage_overhead_sec);
}

TEST(ConfigTest, ScaleToDatasetClampsThreshold) {
  ClusterConfig config;
  config.ScaleToDataset(1);  // Absurdly small dataset.
  EXPECT_GE(config.broadcast_threshold_bytes, 1024u);
}

TEST(ConfigTest, ScaleToZeroIsNoop) {
  ClusterConfig config;
  double base = config.cpu_rows_per_sec;
  config.ScaleToDataset(0);
  EXPECT_DOUBLE_EQ(config.cpu_rows_per_sec, base);
}

}  // namespace
}  // namespace prost::cluster
