#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rdf/graph.h"
#include "stats/cardinality_estimator.h"
#include "stats/characteristic_sets.h"
#include "stats/predicate_index.h"

namespace prost {
namespace {

// A six-triple fixture with one multi-valued predicate, one shared
// object, and two distinct subject signatures ({p1,p2} twice, {p2} once):
//   s1 --p1--> o1, o2    s1 --p2--> x
//   s2 --p1--> o1        s2 --p2--> x
//   s3 --p2--> y
rdf::EncodedGraph Fixture() {
  const std::string triples =
      "<http://ex/s1> <http://ex/p1> <http://ex/o1> .\n"
      "<http://ex/s1> <http://ex/p1> <http://ex/o2> .\n"
      "<http://ex/s1> <http://ex/p2> <http://ex/x> .\n"
      "<http://ex/s2> <http://ex/p1> <http://ex/o1> .\n"
      "<http://ex/s2> <http://ex/p2> <http://ex/x> .\n"
      "<http://ex/s3> <http://ex/p2> <http://ex/y> .\n";
  auto graph = rdf::EncodeNTriples(triples);
  EXPECT_TRUE(graph.ok()) << graph.status();
  return std::move(graph).value();
}

rdf::TermId Predicate(const rdf::EncodedGraph& graph, const char* iri) {
  rdf::TermId id = graph.dictionary().Lookup(iri);
  EXPECT_NE(id, rdf::kNullTermId) << iri;
  return id;
}

// ------------------------------------------------ Per-predicate stats

TEST(PredicateStatsTest, CountsDistinctsAndMaxFanouts) {
  rdf::EncodedGraph graph = Fixture();
  auto stats = graph.ComputePredicateStats();
  const rdf::PredicateStats& p1 = stats.at(Predicate(graph, "<http://ex/p1>"));
  EXPECT_EQ(p1.triple_count, 3u);
  EXPECT_EQ(p1.distinct_subjects, 2u);
  EXPECT_EQ(p1.distinct_objects, 2u);
  EXPECT_EQ(p1.max_subject_fanout, 2u);  // s1 carries two p1 triples.
  EXPECT_EQ(p1.max_object_fanout, 2u);   // o1 is reached from s1 and s2.
  EXPECT_TRUE(p1.is_multi_valued());

  const rdf::PredicateStats& p2 = stats.at(Predicate(graph, "<http://ex/p2>"));
  EXPECT_EQ(p2.triple_count, 3u);
  EXPECT_EQ(p2.distinct_subjects, 3u);
  EXPECT_EQ(p2.distinct_objects, 2u);
  EXPECT_EQ(p2.max_subject_fanout, 1u);
  EXPECT_EQ(p2.max_object_fanout, 2u);  // x is shared by s1 and s2.
  EXPECT_FALSE(p2.is_multi_valued());
}

// ------------------------------------------------ Characteristic sets

TEST(CharacteristicSetsTest, ComputeGroupsSubjectsBySignature) {
  rdf::EncodedGraph graph = Fixture();
  stats::CharacteristicSets sets = stats::CharacteristicSets::Compute(graph);
  EXPECT_EQ(sets.num_sets(), 2u);  // {p1,p2} and {p2}.
  EXPECT_EQ(sets.total_subjects(), 3u);

  const rdf::TermId p1 = Predicate(graph, "<http://ex/p1>");
  const rdf::TermId p2 = Predicate(graph, "<http://ex/p2>");
  EXPECT_EQ(sets.CountStarSubjects({p1}), 2u);
  EXPECT_EQ(sets.CountStarSubjects({p2}), 3u);
  EXPECT_EQ(sets.CountStarSubjects({p1, p2}), 2u);
  // Order and duplicates must not matter.
  EXPECT_EQ(sets.CountStarSubjects({p2, p1, p2}), 2u);
  // An unknown predicate can never be covered.
  EXPECT_EQ(sets.CountStarSubjects({p1, rdf::TermId{9999}}), 0u);
}

TEST(CharacteristicSetsTest, StarRowEstimateIsExactOnTheFixture) {
  rdf::EncodedGraph graph = Fixture();
  stats::CharacteristicSets sets = stats::CharacteristicSets::Compute(graph);
  const rdf::TermId p1 = Predicate(graph, "<http://ex/p1>");
  const rdf::TermId p2 = Predicate(graph, "<http://ex/p2>");
  // Joining VP(p1) and VP(p2) on the subject yields s1:2*1 + s2:1*1 = 3
  // rows; the signature-weighted estimate reproduces it exactly.
  EXPECT_DOUBLE_EQ(sets.EstimateStarRows({p1, p2}), 3.0);
  // A single-predicate "star" is the full VP table.
  EXPECT_DOUBLE_EQ(sets.EstimateStarRows({p1}), 3.0);
  EXPECT_DOUBLE_EQ(sets.EstimateStarRows({p2}), 3.0);
  EXPECT_DOUBLE_EQ(sets.EstimateStarRows({p1, rdf::TermId{9999}}), 0.0);
}

TEST(CharacteristicSetsTest, IncrementalBuilderMatchesCompute) {
  rdf::EncodedGraph graph = Fixture();
  stats::CharacteristicSets computed =
      stats::CharacteristicSets::Compute(graph);
  stats::CharacteristicSets::Builder builder;
  for (const rdf::EncodedTriple& t : graph.triples()) {
    builder.Add(t.subject, t.predicate);
  }
  stats::CharacteristicSets rebuilt = std::move(builder).Build();
  EXPECT_EQ(rebuilt.num_sets(), computed.num_sets());
  EXPECT_EQ(rebuilt.total_subjects(), computed.total_subjects());
  const rdf::TermId p1 = Predicate(graph, "<http://ex/p1>");
  const rdf::TermId p2 = Predicate(graph, "<http://ex/p2>");
  EXPECT_EQ(rebuilt.CountStarSubjects({p1, p2}),
            computed.CountStarSubjects({p1, p2}));
  // Add() accumulates one count per (subject, predicate) pair fed in, so
  // the multi-valued p1 keeps its 3 occurrences and estimates agree.
  EXPECT_DOUBLE_EQ(rebuilt.EstimateStarRows({p1, p2}),
                   computed.EstimateStarRows({p1, p2}));
}

TEST(CharacteristicSetsTest, PersistenceRoundTripsAcrossReinternedIds) {
  rdf::EncodedGraph graph = Fixture();
  stats::CharacteristicSets sets = stats::CharacteristicSets::Compute(graph);
  const std::string path = ::testing::TempDir() + "/prost_charsets_test.txt";
  ASSERT_TRUE(sets.WriteTo(path, graph.dictionary()).ok());

  // A reader dictionary with different id assignments: interning other
  // terms first shifts every id.
  rdf::EncodedGraph other;
  other.Add({rdf::Term::Iri("http://ex/unrelated"),
             rdf::Term::Iri("http://ex/shift"),
             rdf::Term::Iri("http://ex/ids")});
  auto restored = stats::CharacteristicSets::ReadFrom(
      path, other.mutable_dictionary());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->num_sets(), sets.num_sets());
  EXPECT_EQ(restored->total_subjects(), sets.total_subjects());
  const rdf::TermId p1 = other.dictionary().Lookup("<http://ex/p1>");
  const rdf::TermId p2 = other.dictionary().Lookup("<http://ex/p2>");
  ASSERT_NE(p1, rdf::kNullTermId);
  ASSERT_NE(p2, rdf::kNullTermId);
  EXPECT_NE(p1, Predicate(graph, "<http://ex/p1>"));  // Ids really moved.
  EXPECT_EQ(restored->CountStarSubjects({p1, p2}), 2u);
  EXPECT_DOUBLE_EQ(restored->EstimateStarRows({p1, p2}), 3.0);
}

// --------------------------------------------------- Predicate index

TEST(PredicateIndexTest, GroupsRowsAndMembershipSets) {
  rdf::EncodedGraph graph = Fixture();
  stats::PredicateIndex index = stats::PredicateIndex::Build(graph);
  EXPECT_EQ(index.entries().size(), 2u);
  const stats::PredicateEntry* p1 =
      index.Find(Predicate(graph, "<http://ex/p1>"));
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1->rows.size(), 3u);
  EXPECT_EQ(p1->subjects.size(), 2u);
  EXPECT_EQ(p1->objects.size(), 2u);
  EXPECT_EQ(index.Find(rdf::TermId{9999}), nullptr);
}

// ---------------------------------------------- Cardinality estimator

TEST(CardinalityEstimatorTest, ScanEstimatesWithCharacteristicSets) {
  rdf::EncodedGraph graph = Fixture();
  auto per_predicate = graph.ComputePredicateStats();
  stats::CharacteristicSets sets = stats::CharacteristicSets::Compute(graph);
  stats::CardinalityEstimator est(&per_predicate, &sets);
  ASSERT_TRUE(est.has_characteristic_sets());

  const rdf::TermId p1 = Predicate(graph, "<http://ex/p1>");
  stats::StarDescriptor scan;
  scan.patterns.push_back({p1, false, false});
  EXPECT_DOUBLE_EQ(est.EstimateScanRows(scan), 3.0);
  EXPECT_DOUBLE_EQ(est.EstimateKeyDistinct(scan), 2.0);

  // A constant object keeps 1/distinct_objects of the rows.
  scan.patterns[0].object_is_constant = true;
  EXPECT_DOUBLE_EQ(est.EstimateScanRows(scan), 1.5);
  EXPECT_DOUBLE_EQ(est.EstimateValueDistinct(scan, 0, 3.0), 2.0);

  // A constant subject selects one of the star's key values.
  scan.patterns[0].object_is_constant = false;
  scan.patterns[0].subject_is_constant = true;
  EXPECT_DOUBLE_EQ(est.EstimateScanRows(scan), 1.5);
  EXPECT_DOUBLE_EQ(est.EstimateKeyDistinct(scan), 1.0);
}

TEST(CardinalityEstimatorTest, StarExactAnswersAndFallbackSentinel) {
  rdf::EncodedGraph graph = Fixture();
  auto per_predicate = graph.ComputePredicateStats();
  stats::CharacteristicSets sets = stats::CharacteristicSets::Compute(graph);
  const rdf::TermId p1 = Predicate(graph, "<http://ex/p1>");
  const rdf::TermId p2 = Predicate(graph, "<http://ex/p2>");

  stats::CardinalityEstimator with(&per_predicate, &sets);
  EXPECT_DOUBLE_EQ(with.StarRowsExact({p1, p2}), 3.0);
  EXPECT_DOUBLE_EQ(with.StarSubjectsExact({p1, p2}), 2.0);

  // Without characteristic sets both go negative so callers fall back
  // to independence math instead of trusting a bogus zero.
  stats::CardinalityEstimator without(&per_predicate, nullptr);
  EXPECT_FALSE(without.has_characteristic_sets());
  EXPECT_LT(without.StarRowsExact({p1, p2}), 0.0);
  EXPECT_LT(without.StarSubjectsExact({p1, p2}), 0.0);
}

TEST(CardinalityEstimatorTest, JoinFormulaAndFloor) {
  EXPECT_DOUBLE_EQ(
      stats::CardinalityEstimator::EstimateJoinRows(10.0, 5.0, 6.0, 3.0),
      12.0);
  // Degenerate inputs floor at kMinEstimatedRows, never zero.
  EXPECT_DOUBLE_EQ(
      stats::CardinalityEstimator::EstimateJoinRows(0.0, 1.0, 6.0, 3.0),
      stats::kMinEstimatedRows);
}

}  // namespace
}  // namespace prost
