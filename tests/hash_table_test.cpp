// Unit tests for the flat open-addressing join hash table and the batch
// kernels behind the vectorized operators: collision chains, growth
// across capacity boundaries, duplicate-key run ordering, empty-table
// probes, and a randomized differential against a
// std::unordered_multimap oracle.

#include "engine/hash_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/rng.h"
#include "engine/kernels.h"
#include "engine/relation.h"

namespace prost::engine {
namespace {

std::vector<uint32_t> RowsOf(FlatHashTable::Range range) {
  return std::vector<uint32_t>(range.begin, range.end);
}

TEST(FlatHashTableTest, EmptyTableProbeFindsNothing) {
  FlatHashTable table;
  EXPECT_TRUE(table.Lookup(0).empty());
  EXPECT_TRUE(table.Lookup(42).empty());
  table.Build(nullptr, 0);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.Lookup(0).empty());
  EXPECT_TRUE(table.Lookup(~0ull).empty());
}

TEST(FlatHashTableTest, SingleKeyAndMisses) {
  std::vector<uint64_t> hashes = {7};
  FlatHashTable table;
  table.Build(hashes.data(), hashes.size());
  EXPECT_EQ(RowsOf(table.Lookup(7)), (std::vector<uint32_t>{0}));
  EXPECT_TRUE(table.Lookup(8).empty());
  EXPECT_TRUE(table.Lookup(0).empty());
}

TEST(FlatHashTableTest, DuplicateKeysPreserveAscendingRowOrder) {
  // Rows 0..9 alternate between two hashes; each run must list its rows
  // in ascending order — the join determinism contract.
  std::vector<uint64_t> hashes;
  for (uint64_t r = 0; r < 10; ++r) hashes.push_back(100 + r % 2);
  FlatHashTable table;
  table.Build(hashes.data(), hashes.size());
  EXPECT_EQ(RowsOf(table.Lookup(100)),
            (std::vector<uint32_t>{0, 2, 4, 6, 8}));
  EXPECT_EQ(RowsOf(table.Lookup(101)),
            (std::vector<uint32_t>{1, 3, 5, 7, 9}));
}

TEST(FlatHashTableTest, CollidingHashesProbeThroughChains) {
  // Hashes that all land in the same slot modulo any power-of-two
  // capacity (identical low bits) force maximal linear-probe chains.
  constexpr uint64_t kStride = 1ull << 40;
  std::vector<uint64_t> hashes;
  for (uint64_t i = 0; i < 64; ++i) hashes.push_back(5 + i * kStride);
  FlatHashTable table;
  table.Build(hashes.data(), hashes.size());
  for (uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(RowsOf(table.Lookup(5 + i * kStride)),
              (std::vector<uint32_t>{static_cast<uint32_t>(i)}))
        << "colliding key " << i;
  }
  EXPECT_TRUE(table.Lookup(5 + 64 * kStride).empty());
  EXPECT_TRUE(table.Lookup(6).empty());
}

TEST(FlatHashTableTest, GrowthAcrossCapacityBoundaries) {
  // Build at every size crossing several power-of-two capacity steps;
  // capacity must stay a power of two with load <= 1/2, and every key
  // must remain findable.
  Rng rng(17);
  for (size_t n : {1u, 7u, 8u, 9u, 15u, 16u, 17u, 100u, 1000u, 5000u}) {
    std::vector<uint64_t> hashes;
    hashes.reserve(n);
    for (size_t r = 0; r < n; ++r) hashes.push_back(rng.Next());
    FlatHashTable table;
    table.Build(hashes.data(), hashes.size());
    EXPECT_EQ(table.size(), n);
    ASSERT_GE(table.capacity(), 2 * n) << "load factor above 1/2 at " << n;
    EXPECT_EQ(table.capacity() & (table.capacity() - 1), 0u)
        << "capacity not a power of two at " << n;
    for (size_t r = 0; r < n; ++r) {
      FlatHashTable::Range range = table.Lookup(hashes[r]);
      EXPECT_TRUE(std::find(range.begin, range.end,
                            static_cast<uint32_t>(r)) != range.end)
          << "row " << r << " missing at size " << n;
    }
  }
}

TEST(FlatHashTableTest, RebuildAndClearReuseTheTable) {
  std::vector<uint64_t> first = {1, 2, 3};
  FlatHashTable table;
  table.Build(first.data(), first.size());
  EXPECT_FALSE(table.Lookup(2).empty());

  table.Clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.Lookup(2).empty());

  // Rebuild with different (larger) contents: no stale entries.
  std::vector<uint64_t> second;
  for (uint64_t r = 0; r < 100; ++r) second.push_back(1000 + r);
  table.Build(second.data(), second.size());
  EXPECT_EQ(table.size(), 100u);
  EXPECT_TRUE(table.Lookup(1).empty());
  EXPECT_EQ(RowsOf(table.Lookup(1042)), (std::vector<uint32_t>{42}));
}

TEST(FlatHashTableTest, BuildFromRowsKeepsCallerOrder) {
  // A subset of rows, ascending (as the partitioned join build passes
  // them): runs carry exactly those rows in that order.
  std::vector<uint64_t> row_hashes = {9, 7, 9, 7, 9, 7};
  std::vector<uint32_t> rows = {1, 3, 5};  // The hash-7 partition.
  FlatHashTable table;
  table.BuildFromRows(rows.data(), rows.size(), row_hashes.data());
  EXPECT_EQ(RowsOf(table.Lookup(7)), (std::vector<uint32_t>{1, 3, 5}));
  EXPECT_TRUE(table.Lookup(9).empty());  // Other partition's key.
}

TEST(FlatHashTableTest, RandomizedDifferentialVsUnorderedMultimap) {
  Rng rng(4099);
  for (int round = 0; round < 20; ++round) {
    // Small key spaces force heavy duplication; large ones force misses.
    const size_t n = 1 + rng.NextBounded(3000);
    const uint64_t key_space = 1 + rng.NextBounded(2 * n);
    std::vector<uint64_t> hashes;
    hashes.reserve(n);
    std::unordered_multimap<uint64_t, uint32_t> oracle;
    for (size_t r = 0; r < n; ++r) {
      // Low-entropy hashes (not mixed) also exercise clustered probing.
      uint64_t h = rng.NextBounded(key_space);
      hashes.push_back(h);
      oracle.emplace(h, static_cast<uint32_t>(r));
    }
    FlatHashTable table;
    table.Build(hashes.data(), hashes.size());
    ASSERT_EQ(table.size(), n);
    for (uint64_t h = 0; h < key_space + 10; ++h) {
      auto [begin, end] = oracle.equal_range(h);
      std::vector<uint32_t> expected;
      for (auto it = begin; it != end; ++it) expected.push_back(it->second);
      std::sort(expected.begin(), expected.end());  // Ours is ascending.
      EXPECT_EQ(RowsOf(table.Lookup(h)), expected)
          << "round " << round << " hash " << h;
    }
  }
}

// ---------------------------------------------------------------------
// Batch kernels.

TEST(KernelsTest, HashColumnsMatchesPerRowFold) {
  // The batch hash must equal the per-row HashCombine fold over the key
  // columns in order (build and probe sides must agree bit-for-bit).
  RelationChunk chunk;
  chunk.columns = {{10, 20, 30, 40}, {5, 6, 7, 8}, {1, 1, 2, 2}};
  std::vector<int> keys = {2, 0};
  std::vector<uint64_t> batch;
  kernels::HashColumns(chunk, keys, 1, 4, batch);
  ASSERT_EQ(batch.size(), 3u);
  for (size_t r = 1; r < 4; ++r) {
    uint64_t expected = kernels::kKeyHashSeed;
    for (int c : keys) {
      expected =
          HashCombine(expected, chunk.columns[static_cast<size_t>(c)][r]);
    }
    EXPECT_EQ(batch[r - 1], expected) << "row " << r;
  }
}

TEST(KernelsTest, FilterRefineGatherComposition) {
  columnar::IdVector a = {1, 2, 1, 1, 3, 1};
  columnar::IdVector b = {9, 9, 8, 9, 9, 9};
  std::vector<uint32_t> sel;
  kernels::Filter(a, 1, 0, a.size(), sel);
  EXPECT_EQ(sel, (std::vector<uint32_t>{0, 2, 3, 5}));
  kernels::Refine(b, 9, sel);
  EXPECT_EQ(sel, (std::vector<uint32_t>{0, 3, 5}));
  columnar::IdVector gathered;
  kernels::Gather(b, sel, gathered);
  EXPECT_EQ(gathered, (columnar::IdVector{9, 9, 9}));
  // Gather appends.
  kernels::Gather(a, sel, gathered);
  EXPECT_EQ(gathered, (columnar::IdVector{9, 9, 9, 1, 1, 1}));
}

TEST(KernelsTest, RowEqualityAndNullKernels) {
  columnar::IdVector a = {0, 4, 5, 0, 7};
  columnar::IdVector b = {0, 4, 6, 1, 7};
  std::vector<uint32_t> sel;
  kernels::FilterRowsEqual(a, b, 0, a.size(), sel);
  EXPECT_EQ(sel, (std::vector<uint32_t>{0, 1, 4}));
  kernels::RefineNotNull(a, sel);
  EXPECT_EQ(sel, (std::vector<uint32_t>{1, 4}));
  sel.clear();
  kernels::Iota(2, 5, sel);
  EXPECT_EQ(sel, (std::vector<uint32_t>{2, 3, 4}));
  kernels::RefineRowsEqual(a, b, sel);
  EXPECT_EQ(sel, (std::vector<uint32_t>{4}));
}

TEST(KernelsTest, CompareKeysAtCompactsStably) {
  RelationChunk build;
  build.columns = {{1, 2, 3}, {10, 20, 30}};
  RelationChunk probe;
  probe.columns = {{1, 3, 9}, {10, 31, 30}};
  // Multi-key: both columns must match.
  std::vector<uint32_t> build_rows = {0, 1, 2, 2};
  std::vector<uint32_t> probe_rows = {0, 0, 1, 2};
  std::vector<int> cols = {0, 1};
  size_t kept = kernels::CompareKeysAt(build, cols, probe, cols, build_rows,
                                       probe_rows);
  EXPECT_EQ(kept, 1u);  // Only (build 0, probe 0) matches on both keys.
  EXPECT_EQ(build_rows, (std::vector<uint32_t>{0}));
  EXPECT_EQ(probe_rows, (std::vector<uint32_t>{0}));

  // Single-key fast path, duplicates kept in order.
  build_rows = {0, 1, 2};
  probe_rows = {0, 0, 1};
  std::vector<int> one = {0};
  kept = kernels::CompareKeysAt(build, one, probe, one, build_rows,
                                probe_rows);
  EXPECT_EQ(kept, 2u);  // (0,0): 1==1; (1,0): 2!=1; (2,1): 3==3.
  EXPECT_EQ(build_rows, (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(probe_rows, (std::vector<uint32_t>{0, 1}));
}

TEST(KernelsTest, GatherListPreservesCellsAndNulls) {
  columnar::IdListColumn src;
  src.AppendRow({1, 2});
  src.AppendRow({});  // NULL row.
  src.AppendRow({3});
  src.AppendRow({4, 5, 6});
  columnar::IdListColumn dst;
  kernels::GatherList(src, {0, 1, 3}, dst);
  ASSERT_EQ(dst.num_rows(), 3u);
  EXPECT_EQ(dst.RowSize(0), 2u);
  EXPECT_EQ(dst.RowSize(1), 0u);  // NULL survives as empty cell.
  EXPECT_EQ(dst.RowSize(2), 3u);
  EXPECT_EQ(dst.values, (columnar::IdVector{1, 2, 4, 5, 6}));
  // Appends to existing contents.
  kernels::GatherList(src, {2}, dst);
  ASSERT_EQ(dst.num_rows(), 4u);
  EXPECT_EQ(dst.values, (columnar::IdVector{1, 2, 4, 5, 6, 3}));
}

}  // namespace
}  // namespace prost::engine
