// Tests for the plan-level static analyzer: crafted invalid Join Trees
// must each fail with a distinct diagnostic naming the offending node,
// and every translator-produced plan for the WatDiv basic query set must
// be accepted with the full context (stores, statistics, dictionary).

#include "analysis/plan_checker.h"

#include <gtest/gtest.h>

#include <string>

#include "core/prost_db.h"
#include "core/translator.h"
#include "rdf/graph.h"
#include "sparql/parser.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace prost::analysis {
namespace {

using rdf::Term;

/// u1 likes p1,p2 ; u2 likes p1 ; users have literal names and ages,
/// products have literal labels — so <likes> objects are all entities
/// while <name>/<age>/<label> objects are all literals.
rdf::EncodedGraph SmallGraph() {
  rdf::EncodedGraph graph;
  auto add = [&](const char* s, const char* p, const char* o, bool lit) {
    graph.Add({Term::Iri(s), Term::Iri(p),
               lit ? Term::Literal(o) : Term::Iri(o)});
  };
  add("u1", "likes", "p1", false);
  add("u1", "likes", "p2", false);
  add("u1", "age", "30", true);
  add("u1", "name", "ann", true);
  add("u2", "likes", "p1", false);
  add("u2", "age", "30", true);
  add("u3", "name", "cat", true);
  add("p1", "label", "x", true);
  add("p2", "label", "y", true);
  graph.SortAndDedupe();
  return graph;
}

class PlanCheckerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::ProstDb::Options options;
    auto db = core::ProstDb::LoadFromGraph(SmallGraph(), options);
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::move(db).value();
  }

  PlanContext Context() const {
    PlanContext context;
    context.vp = &db_->vp_store();
    context.property_table = db_->property_table();
    context.stats = &db_->statistics();
    context.dictionary = &db_->dictionary();
    context.cluster = &db_->options().cluster;
    return context;
  }

  /// Parses and translates without the ProstDb verification layer, so
  /// tests can obtain trees the checker should reject.
  void Translate(const std::string& text, sparql::Query* query,
                 core::JoinTree* tree) {
    auto parsed = sparql::ParseQuery(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    *query = std::move(parsed).value();
    auto translated = core::Translate(*query, db_->statistics(),
                                      db_->dictionary(), {});
    ASSERT_TRUE(translated.ok()) << translated.status();
    *tree = std::move(translated).value();
  }

  std::unique_ptr<core::ProstDb> db_;
};

TEST_F(PlanCheckerTest, AcceptsTranslatedPlans) {
  const char* queries[] = {
      "SELECT * WHERE { ?u <likes> ?p . }",
      "SELECT ?u WHERE { ?u <likes> ?p . ?u <age> ?a . ?u <name> ?n . }",
      "SELECT * WHERE { ?u <likes> ?p . ?p <label> ?l . }",
      "SELECT ?u WHERE { ?u <likes> <p1> . }",
      "SELECT * WHERE { ?u <nonexistent> ?x . }",  // Known-empty scan.
  };
  for (const char* text : queries) {
    sparql::Query query;
    core::JoinTree tree;
    ASSERT_NO_FATAL_FAILURE(Translate(text, &query, &tree));
    Status status = CheckPlan(tree, query, Context());
    EXPECT_TRUE(status.ok()) << text << ": " << status;
  }
}

TEST_F(PlanCheckerTest, RejectsUnknownPredicateTable) {
  sparql::Query query;
  core::JoinTree tree;
  ASSERT_NO_FATAL_FAILURE(
      Translate("SELECT * WHERE { ?u <likes> ?p . }", &query, &tree));
  ASSERT_EQ(tree.nodes.size(), 1u);
  // A term the dictionary knows but that no VP table exists for: a
  // subject IRI. (A never-seen term would be the legal id-0 empty scan.)
  rdf::TermId bogus = db_->dictionary().Lookup("<u1>");
  ASSERT_NE(bogus, rdf::kNullTermId);
  tree.nodes[0].patterns[0].predicate = bogus;
  Status status = CheckPlan(tree, query, Context());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unknown predicate table"),
            std::string::npos)
      << status;
  EXPECT_NE(status.message().find("node 0"), std::string::npos) << status;
}

TEST_F(PlanCheckerTest, RejectsJoinKeyTypeMismatch) {
  // ?x is the object of <likes> (objects all entities) in one node and
  // the object of <name> (objects all literals) in the other; every join
  // on ?x is empty by schema.
  sparql::Query query;
  core::JoinTree tree;
  ASSERT_NO_FATAL_FAILURE(Translate(
      "SELECT * WHERE { ?a <likes> ?x . ?b <name> ?x . }", &query, &tree));
  Status status = CheckPlan(tree, query, Context());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("join-key type mismatch for ?x"),
            std::string::npos)
      << status;
}

TEST_F(PlanCheckerTest, RejectsUnboundProjectedVariable) {
  sparql::Query query;
  core::JoinTree tree;
  ASSERT_NO_FATAL_FAILURE(
      Translate("SELECT ?u WHERE { ?u <likes> ?p . }", &query, &tree));
  query.projection = {"ghost"};
  Status status = CheckPlan(tree, query, Context());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("projected variable ?ghost"),
            std::string::npos)
      << status;
}

TEST_F(PlanCheckerTest, RejectsDuplicateOutputColumn) {
  sparql::Query query;
  core::JoinTree tree;
  ASSERT_NO_FATAL_FAILURE(
      Translate("SELECT ?u WHERE { ?u <likes> ?p . }", &query, &tree));
  query.projection = {"u", "u"};
  Status status = CheckPlan(tree, query, Context());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("duplicate output column ?u"),
            std::string::npos)
      << status;
}

TEST_F(PlanCheckerTest, RejectsCrossProduct) {
  sparql::Query query;
  core::JoinTree tree;
  ASSERT_NO_FATAL_FAILURE(Translate(
      "SELECT * WHERE { ?u <likes> ?p . ?p <label> ?l . }", &query, &tree));
  ASSERT_EQ(tree.nodes.size(), 2u);
  // The parser refuses disconnected BGPs outright, so disconnect the plan
  // by hand: rename the <label> node's subject — consistently in the plan
  // and in the query, so only the connectivity check can fire.
  for (core::JoinTreeNode& node : tree.nodes) {
    core::NodePattern& pattern = node.patterns[0];
    if (pattern.source.predicate.value != "label") continue;
    pattern.subject.name = "q";
    pattern.source.subject = Term::Variable("q");
  }
  for (sparql::TriplePattern& pattern : query.bgp.patterns) {
    if (pattern.predicate.value == "label") {
      pattern.subject = Term::Variable("q");
    }
  }
  Status status = CheckPlanStructure(tree, query);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("cross product"), std::string::npos)
      << status;
}

TEST_F(PlanCheckerTest, RejectsUncoveredPattern) {
  sparql::Query query;
  core::JoinTree tree;
  ASSERT_NO_FATAL_FAILURE(Translate(
      "SELECT * WHERE { ?u <likes> ?p . ?p <label> ?l . }", &query, &tree));
  ASSERT_EQ(tree.nodes.size(), 2u);
  tree.nodes.pop_back();
  Status status = CheckPlanStructure(tree, query);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not covered by any Join Tree node"),
            std::string::npos)
      << status;
}

TEST_F(PlanCheckerTest, RejectsCardinalityAboveStatisticsBound) {
  sparql::Query query;
  core::JoinTree tree;
  ASSERT_NO_FATAL_FAILURE(
      Translate("SELECT * WHERE { ?u <likes> ?p . }", &query, &tree));
  tree.nodes[0].estimated_cardinality = 1e18;
  Status status = CheckPlan(tree, query, Context());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("exceeds the statistics upper bound"),
            std::string::npos)
      << status;
}

TEST_F(PlanCheckerTest, RejectsStatisticsStorageDisagreement) {
  sparql::Query query;
  core::JoinTree tree;
  ASSERT_NO_FATAL_FAILURE(
      Translate("SELECT * WHERE { ?u <likes> ?p . }", &query, &tree));
  // Rebuild statistics with a wrong triple count for <likes>: broadcast
  // eligibility and node ordering would be planned against stale sizes.
  auto per_predicate = db_->statistics().per_predicate();
  rdf::TermId likes = db_->dictionary().Lookup("<likes>");
  ASSERT_NE(per_predicate.find(likes), per_predicate.end());
  per_predicate[likes].triple_count += 5;
  core::DatasetStatistics stale =
      core::DatasetStatistics::FromPerPredicate(std::move(per_predicate));
  PlanContext context = Context();
  context.stats = &stale;
  // Keep the estimate below the (inflated) bound so only the
  // storage-agreement check can fire.
  Status status = CheckPlan(tree, query, context);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("statistics/storage disagreement"),
            std::string::npos)
      << status;
}

TEST_F(PlanCheckerTest, ProstDbPlanRunsTheChecker) {
  // The type-mismatch query from above must be rejected end-to-end when
  // planned through ProstDb with verify_plans on (the default).
  auto parsed = sparql::ParseQuery(
      "SELECT * WHERE { ?a <likes> ?x . ?b <name> ?x . }");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto plan = db_->Plan(parsed.value());
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("join-key type mismatch"),
            std::string::npos)
      << plan.status();
}

TEST(PlanCheckerWatDivTest, AcceptsEveryTranslatedWatDivPlan) {
  watdiv::WatDivConfig config;
  config.target_triples = 40000;
  config.seed = 7;
  watdiv::WatDivDataset dataset = watdiv::Generate(config);
  core::ProstDb::Options options;
  options.use_reverse_property_table = true;
  auto db = core::ProstDb::LoadFromGraph(std::move(dataset.graph), options);
  ASSERT_TRUE(db.ok()) << db.status();

  PlanContext context;
  context.vp = &(*db)->vp_store();
  context.property_table = (*db)->property_table();
  context.stats = &(*db)->statistics();
  context.dictionary = &(*db)->dictionary();
  context.cluster = &(*db)->options().cluster;

  watdiv::WatDivDataset sizing_only;  // Queries depend only on IRIs.
  auto queries = watdiv::ParseQuerySet(watdiv::BasicQuerySet(sizing_only));
  ASSERT_TRUE(queries.ok()) << queries.status();
  ASSERT_FALSE(queries->empty());
  for (size_t i = 0; i < queries->size(); ++i) {
    const sparql::Query& query = (*queries)[i];
    auto tree = (*db)->Plan(query);  // Runs CheckPlan internally too.
    ASSERT_TRUE(tree.ok()) << "query " << i << ": " << tree.status();
    Status status = CheckPlan(*tree, query, context);
    EXPECT_TRUE(status.ok()) << "query " << i << ": " << status;
  }
}

}  // namespace
}  // namespace prost::analysis
