// Unit tests for the common substrate: Status/Result, string utilities,
// deterministic RNG and Zipf sampling, hashing, binary IO, file helpers,
// and compression.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <map>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/compression.h"
#include "common/hash.h"
#include "common/io.h"
#include "common/logging.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace prost {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("missing table");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing table");
  EXPECT_EQ(status.ToString(), "not_found: missing table");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes;
  for (const Status& status :
       {Status::InvalidArgument(""), Status::NotFound(""),
        Status::AlreadyExists(""), Status::OutOfRange(""),
        Status::Unimplemented(""), Status::Internal(""), Status::IOError(""),
        Status::Corruption(""), Status::ParseError(""),
        Status::ResourceExhausted(""), Status::Unavailable(""),
        Status::DeadlineExceeded("")}) {
    EXPECT_FALSE(status.ok());
    codes.insert(status.code());
  }
  EXPECT_EQ(codes.size(), 12u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "parse_error");
}

TEST(StatusCodeTest, EveryCodeRoundTripsThroughItsName) {
  // code → factory → code() → name: each enumerator keeps a distinct,
  // stable lowercase name (nothing falls through to "unknown").
  const std::pair<StatusCode, const char*> kCodes[] = {
      {StatusCode::kOk, "ok"},
      {StatusCode::kInvalidArgument, "invalid_argument"},
      {StatusCode::kNotFound, "not_found"},
      {StatusCode::kAlreadyExists, "already_exists"},
      {StatusCode::kOutOfRange, "out_of_range"},
      {StatusCode::kUnimplemented, "unimplemented"},
      {StatusCode::kInternal, "internal"},
      {StatusCode::kIOError, "io_error"},
      {StatusCode::kCorruption, "corruption"},
      {StatusCode::kParseError, "parse_error"},
      {StatusCode::kResourceExhausted, "resource_exhausted"},
      {StatusCode::kUnavailable, "unavailable"},
      {StatusCode::kDeadlineExceeded, "deadline_exceeded"},
  };
  for (const auto& [code, name] : kCodes) {
    EXPECT_STREQ(StatusCodeToString(code), name);
    EXPECT_EQ(Status(code, "m").code(), code);
    // An ok Status renders as bare "ok" — it never carries a message.
    std::string expected =
        code == StatusCode::kOk ? "ok" : std::string(name) + ": m";
    EXPECT_EQ(Status(code, "m").ToString(), expected);
  }
}

TEST(StatusTest, DeadlineExceededFactory) {
  Status status = Status::DeadlineExceeded("socket read deadline exceeded");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(status.ToString(),
            "deadline_exceeded: socket read deadline exceeded");
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string(1000, 'x');
  std::string value = std::move(result).value();
  EXPECT_EQ(value.size(), 1000u);
}

Result<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  PROST_ASSIGN_OR_RETURN(int half, HalveEven(x));
  PROST_ASSIGN_OR_RETURN(int quarter, HalveEven(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(QuarterViaMacro(8).value(), 2);
  EXPECT_EQ(QuarterViaMacro(6).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(QuarterViaMacro(5).status().code(),
            StatusCode::kInvalidArgument);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status CheckBoth(int a, int b) {
  PROST_RETURN_IF_ERROR(FailIfNegative(a));
  PROST_RETURN_IF_ERROR(FailIfNegative(b));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_FALSE(CheckBoth(-1, 2).ok());
  EXPECT_FALSE(CheckBoth(1, -2).ok());
}

// -------------------------------------------------------------- StrUtil

TEST(StrUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrUtilTest, StrSplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StrUtilTest, StrTrim) {
  EXPECT_EQ(StrTrim("  x \t"), "x");
  EXPECT_EQ(StrTrim("\r\n"), "");
  EXPECT_EQ(StrTrim("no-trim"), "no-trim");
}

TEST(StrUtilTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StrUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("lo", "hello"));
}

TEST(StrUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(2u * 1024 * 1024 * 1024ull + 100 * 1024 * 1024),
            "2.1 GB");
}

TEST(StrUtilTest, HumanDuration) {
  EXPECT_EQ(HumanDuration(1195), "1,195ms");
  EXPECT_EQ(HumanDuration(25 * 60000.0 + 32000), "25m 32s");
  EXPECT_EQ(HumanDuration(3 * 3600000.0 + 11 * 60000 + 44000), "3h 11m 44s");
}

TEST(StrUtilTest, WithThousands) {
  EXPECT_EQ(WithThousands(0), "0");
  EXPECT_EQ(WithThousands(999), "999");
  EXPECT_EQ(WithThousands(1000), "1,000");
  EXPECT_EQ(WithThousands(2195322), "2,195,322");
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, Deterministic) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_EQ(a.Next(), b.Next());
  Rng a2(42);
  EXPECT_NE(a2.Next(), c.Next());
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    uint64_t v = rng.NextInRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(3);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(4);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfTest, RankZeroMostPopular) {
  ZipfGenerator zipf(100, 0.9);
  Rng rng(5);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  // Rank 0 strictly more popular than rank 10, which beats rank 50.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[50]);
}

TEST(ZipfTest, StaysInRange) {
  ZipfGenerator zipf(7, 1.2);
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 7u);
  }
}

TEST(ZipfTest, SingleItemAlwaysZero) {
  ZipfGenerator zipf(1, 0.5);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ZipfTest, SkewOneUsesLogBranch) {
  ZipfGenerator zipf(50, 1.0);
  Rng rng(8);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[20]);
}

// ----------------------------------------------------------------- Hash

TEST(HashTest, Mix64Avalanches) {
  // Flipping one input bit flips roughly half the output bits.
  uint64_t base = Mix64(0x1234567890abcdefULL);
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    uint64_t flipped = Mix64(0x1234567890abcdefULL ^ (1ULL << bit));
    total_flips += __builtin_popcountll(base ^ flipped);
  }
  double avg = total_flips / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashTest, HashBytesDistinguishes) {
  EXPECT_NE(HashBytes("a"), HashBytes("b"));
  EXPECT_NE(HashBytes(""), HashBytes("a"));
  EXPECT_EQ(HashBytes("same"), HashBytes("same"));
}

TEST(HashTest, HashCombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// ------------------------------------------------------------- Byte IO

TEST(ByteIoTest, PrimitivesRoundTrip) {
  ByteWriter writer;
  writer.PutU8(7);
  writer.PutU32(0xdeadbeef);
  writer.PutU64(0x0123456789abcdefULL);
  writer.PutDouble(3.25);
  writer.PutVarint(0);
  writer.PutVarint(127);
  writer.PutVarint(128);
  writer.PutVarint(~0ull);
  writer.PutString("hello");
  writer.PutString("");

  ByteReader reader(writer.buffer());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64, v;
  double d;
  std::string s;
  ASSERT_TRUE(reader.GetU8(&u8).ok());
  EXPECT_EQ(u8, 7);
  ASSERT_TRUE(reader.GetU32(&u32).ok());
  EXPECT_EQ(u32, 0xdeadbeefu);
  ASSERT_TRUE(reader.GetU64(&u64).ok());
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  ASSERT_TRUE(reader.GetDouble(&d).ok());
  EXPECT_EQ(d, 3.25);
  for (uint64_t expected : {0ull, 127ull, 128ull, ~0ull}) {
    ASSERT_TRUE(reader.GetVarint(&v).ok());
    EXPECT_EQ(v, expected);
  }
  ASSERT_TRUE(reader.GetString(&s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(reader.GetString(&s).ok());
  EXPECT_EQ(s, "");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteIoTest, TruncationIsCorruption) {
  ByteWriter writer;
  writer.PutU64(1);
  std::string_view half(writer.buffer().data(), 4);
  ByteReader reader(half);
  uint64_t v;
  EXPECT_EQ(reader.GetU64(&v).code(), StatusCode::kCorruption);
}

TEST(ByteIoTest, TruncatedVarintIsCorruption) {
  std::string bytes = "\xff";  // Continuation bit set, nothing follows.
  ByteReader reader(bytes);
  uint64_t v;
  EXPECT_EQ(reader.GetVarint(&v).code(), StatusCode::kCorruption);
}

TEST(ByteIoTest, OverlongVarintIsCorruption) {
  std::string bytes(11, '\xff');
  ByteReader reader(bytes);
  uint64_t v;
  EXPECT_EQ(reader.GetVarint(&v).code(), StatusCode::kCorruption);
}

TEST(ByteIoTest, SkipAndRemaining) {
  ByteWriter writer;
  writer.PutRaw("abcdef", 6);
  ByteReader reader(writer.buffer());
  EXPECT_EQ(reader.remaining(), 6u);
  ASSERT_TRUE(reader.Skip(4).ok());
  EXPECT_EQ(reader.remaining(), 2u);
  EXPECT_FALSE(reader.Skip(3).ok());
}

// -------------------------------------------------------------- File IO

TEST(FileIoTest, WriteReadRoundTrip) {
  std::string dir = ::testing::TempDir() + "/prost_io_test";
  ASSERT_TRUE(MakeDirectories(dir + "/nested/deeper").ok());
  std::string path = dir + "/nested/file.bin";
  std::string payload = "binary\0data", read_back;
  ASSERT_TRUE(WriteStringToFile(path, payload).ok());
  ASSERT_TRUE(ReadFileToString(path, &read_back).ok());
  EXPECT_EQ(read_back, payload);
  EXPECT_EQ(FileSize(path).value(), payload.size());
  EXPECT_GE(DirectorySize(dir).value(), payload.size());
  ASSERT_TRUE(RemoveAllRecursively(dir).ok());
  EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST(FileIoTest, MissingFileErrors) {
  std::string contents;
  EXPECT_EQ(ReadFileToString("/nonexistent/prost/file", &contents).code(),
            StatusCode::kIOError);
  EXPECT_FALSE(FileSize("/nonexistent/prost/file").ok());
}

// ---------------------------------------------------------- Compression

TEST(CompressionTest, RoundTrip) {
  std::string input;
  for (int i = 0; i < 1000; ++i) {
    input += "<http://db.uwaterloo.ca/~galuc/wsdbm/User" +
             std::to_string(i % 100) + ">\n";
  }
  auto compressed = DeflateCompress(input);
  ASSERT_TRUE(compressed.ok());
  EXPECT_LT(compressed->size(), input.size() / 2);
  auto restored = DeflateDecompress(*compressed);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, input);
}

TEST(CompressionTest, EmptyInput) {
  auto compressed = DeflateCompress("");
  ASSERT_TRUE(compressed.ok());
  auto restored = DeflateDecompress(*compressed);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
}

TEST(CompressionTest, GarbageInputIsCorruption) {
  auto restored = DeflateDecompress("definitely not deflate data");
  EXPECT_FALSE(restored.ok());
}

// -------------------------------------------------------------- Logging

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(original);
}

// ----------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> hits(10, 0);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, EveryTaskRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 10000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.ParallelFor(kTasks, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, MoreThreadsThanTasks) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(hits.size(), [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ZeroTasksIsANoop) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "fn must not run"; });
}

TEST(ThreadPoolTest, BackToBackRegionsStayIsolated) {
  // Regression guard for the quiesce protocol: a region's tasks must all
  // land before the next region refills the shards.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    size_t n = 1 + static_cast<size_t>(round) * 7 % 97;
    pool.ParallelFor(n, [&](size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, TinyRegionsRetiredBeforeWorkersWake) {
  // Regression: with far more threads than tasks, the caller can drain
  // every task and retire the region before any pool worker wakes. A
  // late-waking worker must skip the retired region (fn_ is cleared)
  // instead of dereferencing it. Recreating the pool each round keeps
  // workers cold so the late-wake window stays hot.
  for (int round = 0; round < 200; ++round) {
    ThreadPool pool(8);
    std::atomic<int> hits{0};
    pool.ParallelFor(2, [&](size_t) {
      hits.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(hits.load(), 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, TinyThenLargeRegionsStayCorrect) {
  // A worker that missed a tiny (already-retired) region must still
  // latch the next generation and run the following region's tasks.
  ThreadPool pool(8);
  for (int round = 0; round < 100; ++round) {
    std::atomic<int> tiny_hits{0};
    pool.ParallelFor(2, [&](size_t) {
      tiny_hits.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(tiny_hits.load(), 2) << "round " << round;
    constexpr size_t kTasks = 64;
    std::atomic<size_t> sum{0};
    pool.ParallelFor(kTasks, [&](size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), kTasks * (kTasks + 1) / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 1000;
  std::vector<uint64_t> out(kTasks, 0);
  pool.ParallelFor(kTasks, [&](size_t i) {
    out[i] = Mix64(i);  // Each task writes only its own slot.
  });
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(out[i], Mix64(i));
}

// ----------------------------------------------------------------- Mutex

// A tiny guarded class in the house style: the annotations make these
// tests compile (not just run) under the Clang thread-safety CI leg.
class GuardedCounter {
 public:
  void Increment() {
    MutexLock lock(mu_);
    ++count_;
  }
  int Get() {
    MutexLock lock(mu_);
    return count_;
  }

 private:
  Mutex<LockRank::kLeaf> mu_;
  int count_ PROST_GUARDED_BY(mu_) = 0;
};

TEST(MutexTest, MutualExclusionAcrossThreads) {
  GuardedCounter counter;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Get(), kThreads * kIncrements);
}

TEST(MutexTest, TryLockRefusedWhileHeldElsewhere) {
  Mutex<LockRank::kLeaf> mu;
  mu.Lock();
  bool acquired = false;
  std::thread prober([&] {
    if (mu.TryLock()) {
      acquired = true;
      mu.Unlock();
    }
  });
  prober.join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
  bool reacquired = false;
  if (mu.TryLock()) {
    reacquired = true;
    mu.Unlock();
  }
  EXPECT_TRUE(reacquired);
}

TEST(MutexTest, OrderedNestingAndNonLifoReleaseAreLegal) {
  // Ascending-rank nesting is the sanctioned order; releases may happen
  // in any order (the rank checker matches releases by rank, not LIFO).
  Mutex<LockRank::kServeSession> outer;
  Mutex<LockRank::kThreadPoolControl> inner;
  outer.Lock();
  inner.Lock();
  outer.Unlock();  // Non-LIFO: outer goes first.
  inner.Unlock();
  EXPECT_EQ(internal::RankHeldDepth(), 0);
}

TEST(MutexLockTest, UnlockRelockWindow) {
  // The WorkerLoop pattern: drop the lock around a lock-free section,
  // retake it after.
  GuardedCounter counter;
  Mutex<LockRank::kThreadPoolControl> mu;
  MutexLock lock(mu);
  lock.Unlock();
  counter.Increment();  // kLeaf-ranked acquire while holding nothing.
  lock.Lock();
  EXPECT_EQ(counter.Get(), 1);
}

TEST(MutexTest, TryLockUnderContentionNeverBreaksExclusion) {
  // Hammer TryLock from several threads against a blocking holder: a
  // successful TryLock must really own the mutex (the critical-section
  // counter may never see two owners), failures are clean no-ops, and
  // every thread eventually succeeds at least once (no livelock — Lock
  // releases often enough that a polling TryLock gets through).
  Mutex<LockRank::kLeaf> mu;
  int owners = 0;       // Guarded by mu (a local, so no annotation).
  int max_owners = 0;   // Ditto.
  constexpr int kThreads = 4;
  constexpr int kSuccessesPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      int successes = 0;
      while (successes < kSuccessesPerThread) {
        if (!mu.TryLock()) continue;
        ++owners;
        if (owners > max_owners) max_owners = owners;
        --owners;
        mu.Unlock();
        ++successes;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(max_owners, 1);
  EXPECT_EQ(owners, 0);
}

TEST(CondVarTest, MultiWaiterWakeupRespectsTicketOrder) {
  // N waiters park on one CondVar, each admitted only when the shared
  // `turn` reaches its ticket — the SessionManager FIFO-admission shape.
  // NotifyAll plus a per-ticket predicate must release them in exactly
  // ticket order regardless of scheduling, and no waiter may proceed
  // before its turn.
  Mutex<LockRank::kThreadPoolControl> mu;
  CondVar cv;
  constexpr int kWaiters = 6;
  int turn = 0;                 // Guarded by mu.
  int started = 0;              // Guarded by mu.
  std::vector<int> wake_order;  // Guarded by mu.
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int ticket = 0; ticket < kWaiters; ++ticket) {
    waiters.emplace_back([&, ticket] {
      MutexLock lock(mu);
      ++started;
      cv.NotifyAll();  // Unblocks the main thread's "all parked" wait.
      while (turn != ticket) cv.Wait(mu);
      wake_order.push_back(ticket);
      ++turn;
      cv.NotifyAll();
    });
  }
  {
    MutexLock lock(mu);
    // Park until every waiter has entered the monitor at least once, so
    // later NotifyAll calls genuinely fan out to multiple waiters.
    while (started < kWaiters) cv.Wait(mu);
  }
  for (std::thread& waiter : waiters) waiter.join();
  MutexLock lock(mu);
  ASSERT_EQ(wake_order.size(), static_cast<size_t>(kWaiters));
  for (int i = 0; i < kWaiters; ++i) EXPECT_EQ(wake_order[i], i);
  EXPECT_EQ(turn, kWaiters);
}

TEST(CondVarTest, HandoffWakesWaiter) {
  // `ready` is a local, so it carries no PROST_GUARDED_BY (the attribute
  // applies to members and globals); the MutexLock on both sides is the
  // guard.
  Mutex<LockRank::kThreadPoolControl> mu;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

#if PROST_LOCK_RANK_CHECKS

// Violations are funneled through a no-analysis helper: the whole point
// of these tests is to execute acquisition orders the static analysis
// (correctly) rejects at compile time, and prove the *dynamic* checker
// catches them too.
void AcquireBoth(MutexBase& first,
                 MutexBase& second) PROST_NO_THREAD_SAFETY_ANALYSIS {
  first.Lock();
  second.Lock();
  second.Unlock();
  first.Unlock();
}

TEST(LockRankDeathTest, OutOfOrderAcquisitionAborts) {
  Mutex<LockRank::kThreadPoolControl> later;
  Mutex<LockRank::kServeSession> earlier;
  EXPECT_DEATH(AcquireBoth(later, earlier), "lock-rank violation");
}

TEST(LockRankDeathTest, SameRankNestingAborts) {
  // Two distinct mutexes of one rank must never nest (no relative order
  // is defined, so two threads nesting them in opposite orders would
  // deadlock).
  Mutex<LockRank::kThreadPoolRegion> a;
  Mutex<LockRank::kThreadPoolRegion> b;
  EXPECT_DEATH(AcquireBoth(a, b), "lock-rank violation");
}

TEST(LockRankDeathTest, SelfDeadlockAbortsInsteadOfHanging) {
  // Re-acquiring a non-recursive mutex would block forever; the checker
  // turns it into an immediate abort.
  Mutex<LockRank::kLeaf> mu;
  EXPECT_DEATH(AcquireBoth(mu, mu), "lock-rank violation");
}

// gtest macros hide lock calls behind opaque control flow the analysis
// cannot follow, so these two helpers keep the raw acquisitions out of
// macro arguments.
bool TryAcquire(MutexBase& mu) PROST_NO_THREAD_SAFETY_ANALYSIS {
  return mu.TryLock();
}
void ReleaseHeld(MutexBase& mu) PROST_NO_THREAD_SAFETY_ANALYSIS {
  mu.Unlock();
}

TEST(LockRankDeathTest, TryLockRankIsStillRecorded) {
  // TryLock itself is exempt from the order abort (it cannot deadlock),
  // but the rank it acquired must constrain later blocking acquires.
  Mutex<LockRank::kMetricsRegistry> high;
  Mutex<LockRank::kServeSession> low;
  ASSERT_TRUE(TryAcquire(high));
  EXPECT_EQ(internal::RankHeldDepth(), 1);
  EXPECT_DEATH(AcquireBoth(low, low), "lock-rank violation");
  ReleaseHeld(high);
  EXPECT_EQ(internal::RankHeldDepth(), 0);
}

TEST(LockRankTest, HeldDepthTracksTheStack) {
  Mutex<LockRank::kServeSession> outer;
  Mutex<LockRank::kMetricsRegistry> inner;
  EXPECT_EQ(internal::RankHeldDepth(), 0);
  {
    MutexLock lock(outer);
    EXPECT_EQ(internal::RankHeldDepth(), 1);
    {
      MutexLock nested(inner);
      EXPECT_EQ(internal::RankHeldDepth(), 2);
    }
    EXPECT_EQ(internal::RankHeldDepth(), 1);
  }
  EXPECT_EQ(internal::RankHeldDepth(), 0);
}

#endif  // PROST_LOCK_RANK_CHECKS

}  // namespace
}  // namespace prost
