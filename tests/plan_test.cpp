// Tests for the physical plan IR (src/plan/), the optimizer pass
// pipeline, and the on-vs-off differential guarantee: with every pass
// enabled, results are bit-identical to the seed execution path and the
// simulated time never gets worse — strictly better on a healthy slice
// of the WatDiv basic query set.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/plan_checker.h"
#include "core/prost_db.h"
#include "engine/relation.h"
#include "plan/passes.h"
#include "plan/plan_ir.h"
#include "plan/planner.h"
#include "rdf/graph.h"
#include "sparql/parser.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace prost {
namespace {

// ----------------------------------------------------------- Workload

/// One WatDiv dataset, the 20 basic queries, and five PRoST instances
/// over the same graph: optimizer passes on (the default), all off (the
/// seed execution path), everything on except cost-based join ordering
/// (the translator's heuristic order), plus the same on/heuristic pair
/// in pure vertical-partitioning mode. The VP pair is the join-order
/// differential baseline: without the Property Table every star opens
/// into individually reorderable scans, which is where ordering (and
/// exact star statistics) actually bite. Built once for the whole suite.
struct PlanWorkload {
  std::shared_ptr<const rdf::EncodedGraph> graph;
  std::vector<watdiv::WatDivQuery> queries;
  std::vector<sparql::Query> parsed;
  std::unique_ptr<core::ProstDb> on;
  std::unique_ptr<core::ProstDb> off;
  std::unique_ptr<core::ProstDb> heuristic;
  std::unique_ptr<core::ProstDb> vp_on;
  std::unique_ptr<core::ProstDb> vp_heuristic;
};

PlanWorkload BuildPlanWorkload() {
  PlanWorkload built;
  watdiv::WatDivConfig config;
  config.target_triples = 60000;
  watdiv::WatDivDataset dataset = watdiv::Generate(config);
  dataset.graph.SortAndDedupe();
  built.queries = watdiv::BasicQuerySet(dataset);
  built.graph =
      std::make_shared<const rdf::EncodedGraph>(std::move(dataset.graph));
  auto parsed = watdiv::ParseQuerySet(built.queries);
  if (!parsed.ok()) {
    ADD_FAILURE() << "query set: " << parsed.status();
    std::exit(1);
  }
  built.parsed = std::move(parsed).value();

  core::ProstDb::Options options;
  options.cluster.ScaleToDataset(built.graph->size());
  auto on = core::ProstDb::LoadFromSharedGraph(built.graph, options);
  core::ProstDb::Options off_options = options;
  off_options.passes.filter_pushdown = false;
  off_options.passes.join_order = false;
  off_options.passes.resolve_join_strategy = false;
  off_options.passes.early_projection = false;
  auto off = core::ProstDb::LoadFromSharedGraph(built.graph, off_options);
  core::ProstDb::Options heuristic_options = options;
  heuristic_options.passes.join_order = false;
  auto heuristic =
      core::ProstDb::LoadFromSharedGraph(built.graph, heuristic_options);
  core::ProstDb::Options vp_options = options;
  vp_options.use_property_table = false;
  auto vp_on = core::ProstDb::LoadFromSharedGraph(built.graph, vp_options);
  core::ProstDb::Options vp_heuristic_options = vp_options;
  vp_heuristic_options.passes.join_order = false;
  auto vp_heuristic =
      core::ProstDb::LoadFromSharedGraph(built.graph, vp_heuristic_options);
  if (!on.ok() || !off.ok() || !heuristic.ok() || !vp_on.ok() ||
      !vp_heuristic.ok()) {
    ADD_FAILURE() << "load: "
                  << (!on.ok() ? on.status()
                               : (!off.ok() ? off.status()
                                            : heuristic.status()));
    std::exit(1);
  }
  built.on = std::move(on).value();
  built.off = std::move(off).value();
  built.heuristic = std::move(heuristic).value();
  built.vp_on = std::move(vp_on).value();
  built.vp_heuristic = std::move(vp_heuristic).value();
  return built;
}

const PlanWorkload& Workload() {
  static PlanWorkload workload = BuildPlanWorkload();
  return workload;
}

/// A tiny hand-authored database for the crafted pushdown queries.
std::unique_ptr<core::ProstDb> TinyDb() {
  std::string triples;
  for (int i = 0; i < 8; ++i) {
    std::string person = "<http://ex/person" + std::to_string(i) + ">";
    std::string city = "<http://ex/city" + std::to_string(i % 3) + ">";
    triples += person + " <http://ex/livesIn> " + city + " .\n";
    triples += city + " <http://ex/population> \"" +
               std::to_string(100 * (i % 3 + 1)) +
               "\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
  }
  core::ProstDb::Options options;
  auto db = core::ProstDb::LoadFromNTriples(triples, options);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

// -------------------------------------------------------- Plan shapes

const plan::ScanNodeBase* AsScan(const plan::PlanNode& node) {
  if (node.kind != plan::PlanNodeKind::kVpScan &&
      node.kind != plan::PlanNodeKind::kPtScan) {
    return nullptr;
  }
  return static_cast<const plan::ScanNodeBase*>(&node);
}

void CollectScans(const plan::PlanNode& node,
                  std::vector<const plan::ScanNodeBase*>& scans) {
  if (const plan::ScanNodeBase* scan = AsScan(node)) {
    scans.push_back(scan);
    return;
  }
  for (const auto& child : node.children) CollectScans(*child, scans);
}

/// Joins in execution (post-left-right) order — the order the
/// interpreter reports QueryResult::join_strategies in.
void CollectJoins(const plan::PlanNode& node,
                  std::vector<const plan::HashJoinNode*>& joins) {
  for (const auto& child : node.children) CollectJoins(*child, joins);
  if (node.kind == plan::PlanNodeKind::kHashJoin) {
    joins.push_back(static_cast<const plan::HashJoinNode*>(&node));
  }
}

/// FilterNodes of the unary tail above the top join, root-first.
std::vector<const plan::FilterNode*> TailFilters(const plan::PlanNode& root) {
  std::vector<const plan::FilterNode*> filters;
  const plan::PlanNode* node = &root;
  while (node->children.size() == 1) {
    if (node->kind == plan::PlanNodeKind::kFilter) {
      filters.push_back(static_cast<const plan::FilterNode*>(node));
    }
    node = node->children[0].get();
  }
  return filters;
}

/// All rows of a relation, columns permuted into `column_order`, sorted.
/// Join reordering permutes both row order and chunk boundaries, so the
/// differential suite compares results as sorted row multisets keyed by
/// column name.
std::vector<engine::Row> SortedRows(
    const engine::Relation& relation,
    const std::vector<std::string>& column_order) {
  std::vector<size_t> permutation;
  permutation.reserve(column_order.size());
  for (const std::string& name : column_order) {
    for (size_t c = 0; c < relation.column_names().size(); ++c) {
      if (relation.column_names()[c] == name) {
        permutation.push_back(c);
        break;
      }
    }
  }
  EXPECT_EQ(permutation.size(), column_order.size());
  std::vector<engine::Row> rows;
  for (const engine::RelationChunk& chunk : relation.chunks()) {
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      engine::Row row;
      row.reserve(permutation.size());
      for (size_t c : permutation) row.push_back(chunk.columns[c][r]);
      rows.push_back(std::move(row));
    }
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// ------------------------------------------------- Pass pipeline shape

TEST(PassPipelineTest, SnapshotsChainOnePerPass) {
  const PlanWorkload& workload = Workload();
  for (size_t i = 0; i < workload.parsed.size(); ++i) {
    SCOPED_TRACE(workload.queries[i].id);
    auto planned = workload.on->PlanPhysical(workload.parsed[i]);
    ASSERT_TRUE(planned.ok()) << planned.status();
    ASSERT_EQ(planned->snapshots.size(), 4u);
    EXPECT_EQ(planned->snapshots[0].pass, "filter_pushdown");
    EXPECT_EQ(planned->snapshots[1].pass, "join_order");
    EXPECT_EQ(planned->snapshots[2].pass, "join_strategy");
    EXPECT_EQ(planned->snapshots[3].pass, "early_projection");
    // Snapshots chain: each pass starts from the previous one's output,
    // and the last "after" is the plan Execute() runs.
    EXPECT_EQ(planned->snapshots[0].after, planned->snapshots[1].before);
    EXPECT_EQ(planned->snapshots[1].after, planned->snapshots[2].before);
    EXPECT_EQ(planned->snapshots[2].after, planned->snapshots[3].before);
    EXPECT_EQ(planned->snapshots[3].after, planned->plan.ToString());

    // The first "before" is the unoptimized plan straight out of the
    // planner lowering.
    auto tree = workload.on->Plan(workload.parsed[i]);
    ASSERT_TRUE(tree.ok()) << tree.status();
    plan::PlannerInputs inputs;
    inputs.vp = &workload.on->vp_store();
    inputs.property_table = workload.on->property_table();
    auto unoptimized = plan::BuildPlan(*tree, workload.parsed[i], inputs);
    ASSERT_TRUE(unoptimized.ok()) << unoptimized.status();
    EXPECT_EQ(planned->snapshots[0].before, unoptimized->ToString());
  }
}

TEST(PassPipelineTest, AllPassesOffPlansTheUnoptimizedTree) {
  const PlanWorkload& workload = Workload();
  for (size_t i = 0; i < workload.parsed.size(); ++i) {
    SCOPED_TRACE(workload.queries[i].id);
    auto planned = workload.off->PlanPhysical(workload.parsed[i]);
    ASSERT_TRUE(planned.ok()) << planned.status();
    EXPECT_TRUE(planned->snapshots.empty());
    std::vector<const plan::HashJoinNode*> joins;
    CollectJoins(*planned->plan.root, joins);
    for (const plan::HashJoinNode* join : joins) {
      EXPECT_FALSE(join->strategy.has_value());
    }
    std::vector<const plan::ScanNodeBase*> scans;
    CollectScans(*planned->plan.root, scans);
    for (const plan::ScanNodeBase* scan : scans) {
      EXPECT_TRUE(scan->pushed_filters.empty());
    }
  }
}

TEST(PassPipelineTest, InvariantsHoldBeforeAndAfterEveryPass) {
  const PlanWorkload& workload = Workload();
  for (size_t i = 0; i < workload.parsed.size(); ++i) {
    SCOPED_TRACE(workload.queries[i].id);
    const sparql::Query& query = workload.parsed[i];
    auto tree = workload.on->Plan(query);
    ASSERT_TRUE(tree.ok()) << tree.status();
    plan::PlannerInputs inputs;
    inputs.vp = &workload.on->vp_store();
    inputs.property_table = workload.on->property_table();
    auto physical = plan::BuildPlan(*tree, query, inputs);
    ASSERT_TRUE(physical.ok()) << physical.status();

    int validations = 0;
    plan::PassManagerOptions manager_options;
    manager_options.validate = [&](const plan::PhysicalPlan& p) {
      ++validations;
      return analysis::CheckPhysicalPlan(p, query);
    };
    plan::PassManager manager(std::move(manager_options));
    plan::AddDefaultPasses(manager, plan::PassOptions{});
    plan::PassContext context;
    context.join = workload.on->options().join;
    context.cluster = &workload.on->options().cluster;
    context.estimator = &workload.on->estimator();
    Status run = manager.Run(*physical, context);
    EXPECT_TRUE(run.ok()) << run;
    // Once before the first pass, once after each of the four.
    EXPECT_EQ(validations, 5);
  }
}

// ------------------------------------------------- Early projection

/// Independent liveness walker: recomputes, top-down, the set of columns
/// each node's output must still supply, and checks that every
/// optimizer-inserted prune keeps exactly the live columns (in child
/// column order) and that no dead column survives where no prune was
/// inserted. Returns the number of inserted prunes seen.
int CheckLiveness(const plan::PlanNode& node, std::set<std::string> live) {
  switch (node.kind) {
    case plan::PlanNodeKind::kVpScan:
    case plan::PlanNodeKind::kPtScan:
      return 0;
    case plan::PlanNodeKind::kHashJoin: {
      // Join keys are the columns the children share; they must survive
      // below the join regardless of what downstream reads.
      std::set<std::string> left(node.children[0]->output_columns.begin(),
                                 node.children[0]->output_columns.end());
      std::set<std::string> shared;
      for (const std::string& name : node.children[1]->output_columns) {
        if (left.count(name) > 0) shared.insert(name);
      }
      EXPECT_FALSE(shared.empty());
      int prunes = 0;
      for (const auto& child : node.children) {
        std::set<std::string> child_live;
        for (const std::string& name : child->output_columns) {
          if (live.count(name) > 0 || shared.count(name) > 0) {
            child_live.insert(name);
          }
        }
        if (child->kind == plan::PlanNodeKind::kProject &&
            static_cast<const plan::ProjectNode&>(*child)
                .optimizer_inserted) {
          const auto& prune = static_cast<const plan::ProjectNode&>(*child);
          const plan::PlanNode& input = *prune.children[0];
          // Exactness: the prune keeps precisely the live subset of its
          // input, in input column order, and is never a no-op.
          std::vector<std::string> expected;
          for (const std::string& name : input.output_columns) {
            if (child_live.count(name) > 0) expected.push_back(name);
          }
          EXPECT_EQ(prune.columns, expected);
          EXPECT_LT(prune.columns.size(), input.output_columns.size());
          prunes += 1 + CheckLiveness(
                            input, {prune.columns.begin(),
                                    prune.columns.end()});
        } else {
          // No prune inserted: every column the child produces must be
          // live, or the pass missed a dead column.
          EXPECT_EQ(child_live.size(), child->output_columns.size())
              << "dead column survives under join " << node.Label();
          prunes += CheckLiveness(*child, std::move(child_live));
        }
      }
      return prunes;
    }
    case plan::PlanNodeKind::kFilter: {
      const auto& filter = static_cast<const plan::FilterNode&>(node);
      live.insert(filter.constraint.variable);
      if (filter.constraint.rhs_is_variable) {
        live.insert(filter.constraint.rhs_variable);
      }
      break;
    }
    case plan::PlanNodeKind::kProject: {
      const auto& project = static_cast<const plan::ProjectNode&>(node);
      live = {project.columns.begin(), project.columns.end()};
      break;
    }
    case plan::PlanNodeKind::kOrderBy: {
      const auto& order = static_cast<const plan::OrderByNode&>(node);
      for (const sparql::OrderKey& key : order.keys) live.insert(key.variable);
      break;
    }
    case plan::PlanNodeKind::kAggregate: {
      const auto& aggregate = static_cast<const plan::AggregateNode&>(node);
      if (aggregate.count.variable.empty()) {
        live = {node.children[0]->output_columns.begin(),
                node.children[0]->output_columns.end()};
      } else {
        live = {aggregate.count.variable};
      }
      break;
    }
    case plan::PlanNodeKind::kDistinct:
      live = {node.children[0]->output_columns.begin(),
              node.children[0]->output_columns.end()};
      break;
    case plan::PlanNodeKind::kLimit:
      break;
  }
  return CheckLiveness(*node.children[0], std::move(live));
}

TEST(EarlyProjectionTest, DropsExactlyDeadColumnsOnEveryWatDivQuery) {
  const PlanWorkload& workload = Workload();
  int total_prunes = 0;
  for (size_t i = 0; i < workload.parsed.size(); ++i) {
    SCOPED_TRACE(workload.queries[i].id);
    auto planned = workload.on->PlanPhysical(workload.parsed[i]);
    ASSERT_TRUE(planned.ok()) << planned.status();
    const plan::PlanNode& root = *planned->plan.root;
    total_prunes += CheckLiveness(
        root, {root.output_columns.begin(), root.output_columns.end()});
  }
  // The walker must not be vacuous: the WatDiv set carries dead columns
  // on several queries (that is the point of the pass).
  EXPECT_GT(total_prunes, 0);
}

// ------------------------------------------------- Filter pushdown

TEST(FilterPushdownTest, ConstantsReachScansVariablePairsStayAboveJoin) {
  std::unique_ptr<core::ProstDb> db = TinyDb();
  auto query = sparql::ParseQuery(
      "SELECT ?a ?b ?c WHERE { ?a <http://ex/livesIn> ?b . "
      "?b <http://ex/population> ?c . "
      "FILTER(?c > 150) FILTER(?a != ?b) "
      "FILTER(?b != <http://ex/city7>) }");
  ASSERT_TRUE(query.ok()) << query.status();
  auto planned = db->PlanPhysical(*query);
  ASSERT_TRUE(planned.ok()) << planned.status();

  // The variable-vs-variable filter cannot be pushed: it stays in the
  // tail, above the join.
  std::vector<const plan::FilterNode*> tail =
      TailFilters(*planned->plan.root);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0]->constraint.variable, "a");
  EXPECT_TRUE(tail[0]->constraint.rhs_is_variable);

  // Both constant filters left the tail: ?c > 150 into the one scan that
  // binds ?c, ?b != <city7> into every scan that binds ?b (both).
  std::vector<const plan::ScanNodeBase*> scans;
  CollectScans(*planned->plan.root, scans);
  ASSERT_EQ(scans.size(), 2u);
  int saw_c = 0;
  int saw_b = 0;
  for (const plan::ScanNodeBase* scan : scans) {
    bool binds_c = false;
    for (const std::string& name : plan::PlanBuilder::ScanOutputColumns(
             scan->source)) {
      if (name == "c") binds_c = true;
    }
    for (const sparql::FilterConstraint& pushed : scan->pushed_filters) {
      EXPECT_FALSE(pushed.rhs_is_variable);
      if (pushed.variable == "c") {
        ++saw_c;
        EXPECT_TRUE(binds_c);
      } else {
        EXPECT_EQ(pushed.variable, "b");
        ++saw_b;
      }
    }
  }
  EXPECT_EQ(saw_c, 1);
  EXPECT_EQ(saw_b, 2);

  // And pushing never changes the answer.
  core::ProstDb::Options off_options;
  off_options.passes.filter_pushdown = false;
  off_options.passes.resolve_join_strategy = false;
  off_options.passes.early_projection = false;
  std::string triples;
  for (int i = 0; i < 8; ++i) {
    std::string person = "<http://ex/person" + std::to_string(i) + ">";
    std::string city = "<http://ex/city" + std::to_string(i % 3) + ">";
    triples += person + " <http://ex/livesIn> " + city + " .\n";
    triples += city + " <http://ex/population> \"" +
               std::to_string(100 * (i % 3 + 1)) +
               "\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
  }
  auto off = core::ProstDb::LoadFromNTriples(triples, off_options);
  ASSERT_TRUE(off.ok()) << off.status();
  auto on_result = db->Execute(*query);
  auto off_result = (*off)->Execute(*query);
  ASSERT_TRUE(on_result.ok()) << on_result.status();
  ASSERT_TRUE(off_result.ok()) << off_result.status();
  EXPECT_EQ(on_result->relation.column_names(),
            off_result->relation.column_names());
  ASSERT_EQ(on_result->relation.num_chunks(),
            off_result->relation.num_chunks());
  for (uint32_t c = 0; c < on_result->relation.num_chunks(); ++c) {
    EXPECT_EQ(on_result->relation.chunks()[c].columns,
              off_result->relation.chunks()[c].columns);
  }
  EXPECT_GT(on_result->num_rows(), 0u);
}

TEST(FilterPushdownTest, WatDivFiltersAreNeverLost) {
  // Every query filter must survive somewhere: pushed into a scan or
  // kept in the tail, never both, never dropped.
  const PlanWorkload& workload = Workload();
  for (size_t i = 0; i < workload.parsed.size(); ++i) {
    SCOPED_TRACE(workload.queries[i].id);
    auto planned = workload.on->PlanPhysical(workload.parsed[i]);
    ASSERT_TRUE(planned.ok()) << planned.status();
    size_t in_tail = TailFilters(*planned->plan.root).size();
    std::vector<const plan::ScanNodeBase*> scans;
    CollectScans(*planned->plan.root, scans);
    std::set<std::string> pushed_vars;
    for (const plan::ScanNodeBase* scan : scans) {
      for (const sparql::FilterConstraint& pushed : scan->pushed_filters) {
        pushed_vars.insert(pushed.variable);
      }
    }
    size_t pushed_away = 0;
    for (const sparql::FilterConstraint& filter :
         workload.parsed[i].filters) {
      if (!filter.rhs_is_variable && pushed_vars.count(filter.variable)) {
        ++pushed_away;
      }
    }
    EXPECT_EQ(in_tail + pushed_away, workload.parsed[i].filters.size());
  }
}

// ------------------------------------------------- Strategy resolution

TEST(JoinStrategyTest, PlannedStrategyMatchesExecutedOnEveryQuery) {
  const PlanWorkload& workload = Workload();
  for (size_t i = 0; i < workload.parsed.size(); ++i) {
    SCOPED_TRACE(workload.queries[i].id);
    auto planned = workload.on->PlanPhysical(workload.parsed[i]);
    ASSERT_TRUE(planned.ok()) << planned.status();
    std::vector<const plan::HashJoinNode*> joins;
    CollectJoins(*planned->plan.root, joins);
    std::vector<engine::JoinStrategy> resolved;
    for (const plan::HashJoinNode* join : joins) {
      ASSERT_TRUE(join->strategy.has_value()) << join->Label();
      resolved.push_back(*join->strategy);
    }
    auto result = workload.on->Execute(workload.parsed[i]);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->join_strategies, resolved);
  }
}

// ------------------------------------------------- Differential suite

TEST(PlanDifferentialTest, PassesOnIsBitIdenticalAndNeverSlower) {
  const PlanWorkload& workload = Workload();
  int strictly_faster = 0;
  std::string winners;
  for (size_t i = 0; i < workload.parsed.size(); ++i) {
    SCOPED_TRACE(workload.queries[i].id);
    auto on = workload.on->Execute(workload.parsed[i]);
    auto off = workload.off->Execute(workload.parsed[i]);
    ASSERT_TRUE(on.ok()) << on.status();
    ASSERT_TRUE(off.ok()) << off.status();

    // Identical answers: same columns, same TermId rows. Join reordering
    // may permute row order and chunk boundaries, so rows are compared
    // as a sorted multiset in the off plan's column order.
    std::vector<std::string> on_names = on->relation.column_names();
    std::vector<std::string> off_names = off->relation.column_names();
    std::sort(on_names.begin(), on_names.end());
    std::sort(off_names.begin(), off_names.end());
    EXPECT_EQ(on_names, off_names);
    EXPECT_EQ(SortedRows(on->relation, off->relation.column_names()),
              SortedRows(off->relation, off->relation.column_names()));

    // The optimizer never loses simulated time.
    EXPECT_LE(on->simulated_millis, off->simulated_millis + 1e-9);
    if (on->simulated_millis < off->simulated_millis - 1e-9) {
      ++strictly_faster;
      winners += workload.queries[i].id + " ";
    }
  }
  // Early projection + pushdown + join ordering must pay off outright on
  // a healthy slice of the query set (C1/C2/F2/F4/L1 carry dead columns
  // through their join chains at this scale).
  EXPECT_GE(strictly_faster, 5) << "strict wins: " << winners;
}

TEST(PlanDifferentialTest, JoinOrderBeatsHeuristicAndNeverLoses) {
  // Cost-based join ordering against the translator's §3.3 heuristic
  // order, with every other pass identical on both sides: answers are
  // the same row multiset on all 20 queries, the simulated time never
  // regresses (the pass keeps the heuristic tree unless its model
  // predicts a strictly cheaper one, and only when the margin clears
  // estimate noise), and the complex snowflake queries — where the
  // heuristic's star-size priority is blind to join selectivity — must
  // win outright. Runs in pure VP mode: the Property Table collapses
  // stars into single scans, which hides exactly the ordering decisions
  // this differential exists to exercise.
  const PlanWorkload& workload = Workload();
  std::string winners;
  std::set<std::string> strict_wins;
  for (size_t i = 0; i < workload.parsed.size(); ++i) {
    SCOPED_TRACE(workload.queries[i].id);
    auto on = workload.vp_on->Execute(workload.parsed[i]);
    auto heuristic = workload.vp_heuristic->Execute(workload.parsed[i]);
    ASSERT_TRUE(on.ok()) << on.status();
    ASSERT_TRUE(heuristic.ok()) << heuristic.status();

    std::vector<std::string> on_names = on->relation.column_names();
    std::vector<std::string> heuristic_names =
        heuristic->relation.column_names();
    std::sort(on_names.begin(), on_names.end());
    std::sort(heuristic_names.begin(), heuristic_names.end());
    EXPECT_EQ(on_names, heuristic_names);
    EXPECT_EQ(
        SortedRows(on->relation, heuristic->relation.column_names()),
        SortedRows(heuristic->relation, heuristic->relation.column_names()));

    EXPECT_LE(on->simulated_millis, heuristic->simulated_millis + 1e-9)
        << "cost-based order lost to the heuristic";
    if (on->simulated_millis < heuristic->simulated_millis - 1e-9) {
      strict_wins.insert(workload.queries[i].id);
      winners += workload.queries[i].id + " ";
    }
  }
  for (const char* id : {"C1", "C2", "C3"}) {
    EXPECT_EQ(strict_wins.count(id), 1u)
        << id << " should improve under cost-based ordering; wins: "
        << winners;
  }
}

// ------------------------------------------------- Builder error paths

TEST(PlanBuilderTest, EmptyTreeAndCrossProductAreRejected) {
  std::unique_ptr<core::ProstDb> db = TinyDb();
  core::JoinTree empty;
  auto query = sparql::ParseQuery(
      "SELECT * WHERE { ?a <http://ex/livesIn> ?b . }");
  ASSERT_TRUE(query.ok()) << query.status();
  plan::PlannerInputs inputs;
  inputs.vp = &db->vp_store();
  inputs.property_table = db->property_table();
  auto built = plan::BuildPlan(empty, *query, inputs);
  EXPECT_FALSE(built.ok());

  // Two scans with no shared variable cannot be hash-joined.
  auto left_query = sparql::ParseQuery(
      "SELECT * WHERE { ?a <http://ex/livesIn> ?b . }");
  auto right_query = sparql::ParseQuery(
      "SELECT * WHERE { ?x <http://ex/population> ?y . }");
  ASSERT_TRUE(left_query.ok() && right_query.ok());
  auto left_tree = db->Plan(*left_query);
  auto right_tree = db->Plan(*right_query);
  ASSERT_TRUE(left_tree.ok() && right_tree.ok());
  auto cross = plan::PlanBuilder::MakeHashJoin(
      plan::PlanBuilder::MakeScan(left_tree->nodes[0], 0),
      plan::PlanBuilder::MakeScan(right_tree->nodes[0], 0));
  EXPECT_FALSE(cross.ok());
}

}  // namespace
}  // namespace prost
