// Persistence round-trip tests: PersistTo writes a self-describing
// database directory; OpenFrom reopens it into a fresh dictionary and
// must answer every query identically.

#include <gtest/gtest.h>

#include "common/io.h"
#include "core/prost_db.h"
#include "sparql/parser.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace prost::core {
namespace {

std::string ScratchDir(const char* name) {
  return ::testing::TempDir() + "/prost_persistence_" + name;
}

TEST(PersistenceTest, RoundTripSmallGraph) {
  ProstDb::Options options;
  options.use_reverse_property_table = true;
  auto db = ProstDb::LoadFromNTriples(
      "<u1> <likes> <p1> .\n"
      "<u1> <likes> <p2> .\n"
      "<u1> <age> \"30\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
      "<u2> <likes> <p1> .\n"
      "<p1> <label> \"x\" .\n"
      "<p2> <label> \"y\" .\n",
      options);
  ASSERT_TRUE(db.ok()) << db.status();

  std::string dir = ScratchDir("small");
  auto bytes = (*db)->PersistTo(dir);
  ASSERT_TRUE(bytes.ok()) << bytes.status();

  // Reopen with *different* option flags: the manifest wins.
  ProstDb::Options open_options;
  open_options.use_property_table = false;
  auto reopened = ProstDb::OpenFrom(dir, open_options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_TRUE((*reopened)->options().use_property_table);
  EXPECT_TRUE((*reopened)->options().use_reverse_property_table);
  EXPECT_EQ((*reopened)->load_report().input_triples, 6u);
  EXPECT_EQ((*reopened)->statistics().num_predicates(), 3u);

  for (const char* text : {
           "SELECT * WHERE { ?u <likes> ?p . ?p <label> ?l . }",
           "SELECT * WHERE { ?u <likes> ?p . ?u <age> ?a . }",
           "SELECT ?u WHERE { ?u <likes> ?p . FILTER(?p != <p2>) }",
       }) {
    auto query = sparql::ParseQuery(text);
    ASSERT_TRUE(query.ok());
    auto original = (*db)->Execute(*query);
    auto restored = (*reopened)->Execute(*query);
    ASSERT_TRUE(original.ok()) << original.status();
    ASSERT_TRUE(restored.ok()) << text << ": " << restored.status();
    // Ids differ across dictionaries; compare decoded lexical rows.
    auto original_rows = (*db)->DecodeRows(original->relation);
    auto restored_rows = (*reopened)->DecodeRows(restored->relation);
    ASSERT_TRUE(original_rows.ok());
    ASSERT_TRUE(restored_rows.ok());
    std::sort(original_rows->begin(), original_rows->end());
    std::sort(restored_rows->begin(), restored_rows->end());
    EXPECT_EQ(*original_rows, *restored_rows) << text;
    EXPECT_GT(restored->simulated_millis, 0.0);
  }
  (void)RemoveAllRecursively(dir);
}

TEST(PersistenceTest, RoundTripWatDivQuerySet) {
  watdiv::WatDivConfig config;
  config.target_triples = 15000;
  watdiv::WatDivDataset dataset = watdiv::Generate(config);
  auto queries = watdiv::BasicQuerySet(dataset);

  ProstDb::Options options;
  auto db = ProstDb::LoadFromGraph(std::move(dataset.graph), options);
  ASSERT_TRUE(db.ok());
  std::string dir = ScratchDir("watdiv");
  ASSERT_TRUE((*db)->PersistTo(dir).ok());
  auto reopened = ProstDb::OpenFrom(dir, ProstDb::Options{});
  ASSERT_TRUE(reopened.ok()) << reopened.status();

  for (const watdiv::WatDivQuery& wq : queries) {
    auto query = sparql::ParseQuery(wq.sparql);
    ASSERT_TRUE(query.ok());
    auto original = (*db)->Execute(*query);
    auto restored = (*reopened)->Execute(*query);
    ASSERT_TRUE(original.ok()) << wq.id;
    ASSERT_TRUE(restored.ok()) << wq.id << ": " << restored.status();
    auto original_rows = (*db)->DecodeRows(original->relation);
    auto restored_rows = (*reopened)->DecodeRows(restored->relation);
    ASSERT_TRUE(original_rows.ok());
    ASSERT_TRUE(restored_rows.ok());
    std::sort(original_rows->begin(), original_rows->end());
    std::sort(restored_rows->begin(), restored_rows->end());
    EXPECT_EQ(*original_rows, *restored_rows) << wq.id;
  }
  (void)RemoveAllRecursively(dir);
}

TEST(PersistenceTest, OpenMissingDirectoryFails) {
  auto db = ProstDb::OpenFrom("/nonexistent/prost/db", ProstDb::Options{});
  EXPECT_FALSE(db.ok());
}

TEST(PersistenceTest, OpenCorruptManifestFails) {
  std::string dir = ScratchDir("corrupt");
  ASSERT_TRUE(MakeDirectories(dir).ok());
  ASSERT_TRUE(WriteStringToFile(dir + "/MANIFEST", "not a manifest").ok());
  auto db = ProstDb::OpenFrom(dir, ProstDb::Options{});
  EXPECT_EQ(db.status().code(), StatusCode::kCorruption);
  (void)RemoveAllRecursively(dir);
}

TEST(PersistenceTest, OpenCorruptTableFails) {
  ProstDb::Options options;
  auto db = ProstDb::LoadFromNTriples("<s> <p> <o> .\n", options);
  ASSERT_TRUE(db.ok());
  std::string dir = ScratchDir("bitrot");
  ASSERT_TRUE((*db)->PersistTo(dir).ok());
  // Flip a byte in the first VP table file.
  std::string victim = dir + "/vp/vp_0_p0.tbl";
  std::string bytes;
  ASSERT_TRUE(ReadFileToString(victim, &bytes).ok());
  bytes[bytes.size() / 2] ^= 0x20;
  ASSERT_TRUE(WriteStringToFile(victim, bytes).ok());
  auto reopened = ProstDb::OpenFrom(dir, ProstDb::Options{});
  EXPECT_FALSE(reopened.ok());
  (void)RemoveAllRecursively(dir);
}

}  // namespace
}  // namespace prost::core
