// Paged-storage differential harness (DESIGN.md §15).
//
// The buffer-pool path must be invisible to query semantics: with any
// pool budget — including one smaller than any single partition — every
// WatDiv basic query must return a relation *bit-identical* (chunk
// layout, row order, columns) to the classic fully-in-memory engine,
// serial and morsel-parallel alike. On top of identity, the harness
// checks that paging actually pages (pins, misses, evictions under a
// tight budget) and actually skips (zone-map row groups on the
// constant-heavy queries, bloom-filtered partitions on point-subject
// lookups), and that EXPLAIN ANALYZE surfaces the skips.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "columnar/buffer_pool.h"
#include "core/prost_db.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "sparql/parser.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace prost {
namespace {

using SharedGraph = std::shared_ptr<const rdf::EncodedGraph>;

/// Small row groups so the 40k-triple partitions split into many pages:
/// real eviction traffic and real zone-map granularity at test scale.
constexpr uint32_t kTestRowGroupRows = 512;

std::unique_ptr<core::ProstDb> MakeDb(const SharedGraph& graph,
                                      uint64_t pool_bytes,
                                      uint32_t num_threads) {
  core::ProstDb::Options options;
  options.use_reverse_property_table = true;
  options.exec.num_threads = num_threads;
  options.storage.buffer_pool_bytes = pool_bytes;
  options.storage.row_group_rows = pool_bytes == 0 ? 0 : kTestRowGroupRows;
  auto db = core::ProstDb::LoadFromSharedGraph(graph, options);
  EXPECT_TRUE(db.ok()) << db.status();
  return db.ok() ? std::move(db).value() : nullptr;
}

/// Bit-identity: same column names, same chunk count, and every chunk's
/// every column is the same vector — row order included.
void ExpectBitIdentical(const engine::Relation& actual,
                        const engine::Relation& expected,
                        const std::string& context) {
  ASSERT_EQ(actual.column_names(), expected.column_names()) << context;
  ASSERT_EQ(actual.num_chunks(), expected.num_chunks()) << context;
  for (uint32_t w = 0; w < expected.num_chunks(); ++w) {
    const engine::RelationChunk& a = actual.chunks()[w];
    const engine::RelationChunk& e = expected.chunks()[w];
    ASSERT_EQ(a.columns.size(), e.columns.size()) << context << ", chunk " << w;
    for (size_t c = 0; c < e.columns.size(); ++c) {
      EXPECT_EQ(a.columns[c], e.columns[c])
          << context << ", chunk " << w << ", column "
          << expected.column_names()[c];
    }
  }
}

class PagedScanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    watdiv::WatDivConfig config;
    config.target_triples = 40000;
    config.seed = 7;
    watdiv::WatDivDataset dataset = watdiv::Generate(config);
    dataset.graph.SortAndDedupe();
    graph_ =
        std::make_shared<const rdf::EncodedGraph>(std::move(dataset.graph));
    watdiv::WatDivDataset sizing_only;  // Queries depend only on IRIs.
    queries_ = watdiv::BasicQuerySet(sizing_only);
    baseline_ = MakeDb(graph_, /*pool_bytes=*/0, /*num_threads=*/1);
  }

  static void TearDownTestSuite() {
    baseline_.reset();
    graph_.reset();
  }

  static SharedGraph graph_;
  static std::vector<watdiv::WatDivQuery> queries_;
  static std::unique_ptr<core::ProstDb> baseline_;
};

SharedGraph PagedScanTest::graph_;
std::vector<watdiv::WatDivQuery> PagedScanTest::queries_;
std::unique_ptr<core::ProstDb> PagedScanTest::baseline_;

TEST_F(PagedScanTest, BitIdenticalAcrossBudgetsAndThreadCounts) {
  ASSERT_EQ(queries_.size(), 20u);
  ASSERT_NE(baseline_, nullptr);
  const uint64_t footprint = baseline_->load_report().storage_bytes;
  ASSERT_GT(footprint, 0u);

  // Budgets: far below any single partition (every scan must page its
  // own working set in and out), a quarter of the columnar footprint
  // (the bounded-memory CI point), and effectively unlimited.
  const std::vector<uint64_t> budgets = {4096, footprint / 4,
                                         1ull << 30};
  for (uint64_t budget : budgets) {
    for (uint32_t threads : {1u, 8u}) {
      auto paged = MakeDb(graph_, budget, threads);
      ASSERT_NE(paged, nullptr);
      for (const watdiv::WatDivQuery& wq : queries_) {
        auto parsed = sparql::ParseQuery(wq.sparql);
        ASSERT_TRUE(parsed.ok()) << wq.id << ": " << parsed.status();
        auto expected = baseline_->Execute(*parsed);
        auto actual = paged->Execute(*parsed);
        ASSERT_TRUE(expected.ok()) << wq.id << ": " << expected.status();
        ASSERT_TRUE(actual.ok()) << wq.id << ": " << actual.status();
        ExpectBitIdentical(actual->relation, expected->relation,
                           wq.id + " @ budget " + std::to_string(budget) +
                               ", " + std::to_string(threads) + " threads");
      }
    }
  }
}

TEST_F(PagedScanTest, TinyBudgetActuallyPagesAndEvicts) {
  ASSERT_NE(baseline_, nullptr);
  // 4 KiB is smaller than any 512-row id column (512 * 8 bytes), so no
  // two pages fit: the pool must stream every scan through evictions.
  auto paged = MakeDb(graph_, /*pool_bytes=*/4096, /*num_threads=*/1);
  ASSERT_NE(paged, nullptr);
  for (const watdiv::WatDivQuery& wq : queries_) {
    auto parsed = sparql::ParseQuery(wq.sparql);
    ASSERT_TRUE(parsed.ok()) << wq.id;
    ASSERT_TRUE(paged->Execute(*parsed).ok()) << wq.id;
  }
  obs::MetricsSnapshot snapshot = paged->metrics().Snapshot();
  EXPECT_GT(snapshot.counter("storage.pages_pinned"), 0u);
  EXPECT_GT(snapshot.counter("storage.page_misses"), 0u);
  EXPECT_GT(snapshot.counter("storage.evictions"), 0u);
  EXPECT_GT(snapshot.counter("storage.bytes_scanned"), 0u);

  ASSERT_NE(paged->buffer_pool(), nullptr);
  columnar::BufferPool::Stats stats = paged->buffer_pool()->GetStats();
  EXPECT_EQ(stats.pinned_pages, 0u) << "pins leaked past query end";
  EXPECT_LE(stats.resident_bytes, 4096u) << "budget not enforced at rest";
}

TEST_F(PagedScanTest, ConstantQueriesSkipRowGroupsViaZoneMaps) {
  ASSERT_NE(baseline_, nullptr);
  auto paged = MakeDb(graph_, /*pool_bytes=*/1ull << 30, /*num_threads=*/1);
  ASSERT_NE(paged, nullptr);
  for (const watdiv::WatDivQuery& wq : queries_) {
    auto parsed = sparql::ParseQuery(wq.sparql);
    ASSERT_TRUE(parsed.ok()) << wq.id;
    ASSERT_TRUE(paged->Execute(*parsed).ok()) << wq.id;
  }
  obs::MetricsSnapshot snapshot = paged->metrics().Snapshot();
  // The workload is rich in constant objects (C/S/F classes): zone maps
  // must prune at least some row groups, or skipping is dead code.
  EXPECT_GT(snapshot.counter("storage.row_groups_skipped_zonemap"), 0u);
}

TEST_F(PagedScanTest, PointSubjectLookupSkipsPartitionsViaBloom) {
  ASSERT_NE(baseline_, nullptr);
  auto paged = MakeDb(graph_, /*pool_bytes=*/1ull << 30, /*num_threads=*/1);
  ASSERT_NE(paged, nullptr);

  // A constant-subject point lookup: the subject lives in exactly one
  // subject-hash partition, so the other workers' key blooms must
  // reject their partitions without decoding a single page.
  const rdf::EncodedTriple& triple = graph_->triples().front();
  sparql::Query query;
  sparql::TriplePattern pattern;
  pattern.subject = *graph_->dictionary().DecodeTerm(triple.subject);
  pattern.predicate = *graph_->dictionary().DecodeTerm(triple.predicate);
  pattern.object = rdf::Term::Variable("o");
  query.bgp.patterns.push_back(std::move(pattern));

  auto expected = baseline_->Execute(query);
  auto actual = paged->Execute(query);
  ASSERT_TRUE(expected.ok()) << expected.status();
  ASSERT_TRUE(actual.ok()) << actual.status();
  ExpectBitIdentical(actual->relation, expected->relation, "point lookup");
  EXPECT_GT(actual->relation.TotalRows(), 0u);

  obs::MetricsSnapshot snapshot = paged->metrics().Snapshot();
  EXPECT_GT(snapshot.counter("storage.partitions_skipped_bloom"), 0u);
}

TEST_F(PagedScanTest, ExplainAnalyzeReportsBytesAndSkips) {
  ASSERT_NE(baseline_, nullptr);
  auto paged = MakeDb(graph_, /*pool_bytes=*/1ull << 30, /*num_threads=*/1);
  ASSERT_NE(paged, nullptr);

  // Find a query whose paged execution skips row groups, and check the
  // report line carries the paged storage clause.
  bool found = false;
  for (const watdiv::WatDivQuery& wq : queries_) {
    auto parsed = sparql::ParseQuery(wq.sparql);
    ASSERT_TRUE(parsed.ok()) << wq.id;
    obs::QueryProfile profile;
    auto result = paged->Execute(*parsed, &profile);
    ASSERT_TRUE(result.ok()) << wq.id << ": " << result.status();
    std::string report = obs::ExplainAnalyze(profile);
    if (report.find("skipped=") == std::string::npos) continue;
    EXPECT_NE(report.find("bytes="), std::string::npos) << report;
    found = true;
    break;
  }
  EXPECT_TRUE(found)
      << "no WatDiv query produced a paged EXPLAIN ANALYZE skip clause";

  // The unpaged engine must never render the paged clause.
  obs::QueryProfile profile;
  auto parsed = sparql::ParseQuery(queries_.front().sparql);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(baseline_->Execute(*parsed, &profile).ok());
  std::string report = obs::ExplainAnalyze(profile);
  EXPECT_EQ(report.find("skipped="), std::string::npos) << report;
}

TEST(PagedPersistenceTest, RoundTripWithPagingOnBothSides) {
  core::ProstDb::Options options;
  options.storage.buffer_pool_bytes = 1 << 16;
  options.storage.row_group_rows = 4;
  auto db = core::ProstDb::LoadFromNTriples(
      "<u1> <likes> <p1> .\n"
      "<u1> <likes> <p2> .\n"
      "<u1> <age> \"30\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
      "<u2> <likes> <p1> .\n"
      "<u3> <likes> <p2> .\n"
      "<p1> <label> \"x\" .\n"
      "<p2> <label> \"y\" .\n",
      options);
  ASSERT_TRUE(db.ok()) << db.status();

  std::string dir = ::testing::TempDir() + "/prost_paged_roundtrip";
  ASSERT_TRUE((*db)->PersistTo(dir).ok());

  // Reopen paged with a different (tiny) budget: the lexical files on
  // disk are representation-agnostic, so decoded results must agree.
  core::ProstDb::Options reopen_options;
  reopen_options.storage.buffer_pool_bytes = 4096;
  reopen_options.storage.row_group_rows = 2;
  auto reopened = core::ProstDb::OpenFrom(dir, reopen_options);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ASSERT_NE((*reopened)->buffer_pool(), nullptr);

  for (const char* text : {
           "SELECT * WHERE { ?u <likes> ?p . ?p <label> ?l . }",
           "SELECT * WHERE { ?u <likes> ?p . ?u <age> ?a . }",
           "SELECT ?u WHERE { ?u <likes> ?p . FILTER(?p != <p2>) }",
       }) {
    auto query = sparql::ParseQuery(text);
    ASSERT_TRUE(query.ok());
    auto original = (*db)->Execute(*query);
    auto restored = (*reopened)->Execute(*query);
    ASSERT_TRUE(original.ok()) << original.status();
    ASSERT_TRUE(restored.ok()) << text << ": " << restored.status();
    auto original_rows = (*db)->DecodeRows(original->relation);
    auto restored_rows = (*reopened)->DecodeRows(restored->relation);
    ASSERT_TRUE(original_rows.ok());
    ASSERT_TRUE(restored_rows.ok());
    EXPECT_EQ(*original_rows, *restored_rows) << text;
  }
}

}  // namespace
}  // namespace prost
