// Unit tests for the sorted key-value store (the Accumulo stand-in):
// write/read semantics, LSM merge behaviour, range and prefix scans,
// bulk loading, serialization, and big-endian key encoding.

#include <gtest/gtest.h>

#include <map>

#include "common/io.h"
#include "common/rng.h"
#include "kvstore/kv_store.h"

namespace prost::kvstore {
namespace {

TEST(KvStoreTest, PutGet) {
  SortedKvStore store;
  store.Put("b", "2");
  store.Put("a", "1");
  EXPECT_EQ(store.Get("a").value(), "1");
  EXPECT_EQ(store.Get("b").value(), "2");
  EXPECT_FALSE(store.Get("c").has_value());
}

TEST(KvStoreTest, OverwriteInMemtable) {
  SortedKvStore store;
  store.Put("k", "old");
  store.Put("k", "new");
  EXPECT_EQ(store.Get("k").value(), "new");
  EXPECT_EQ(store.num_entries(), 1u);
}

TEST(KvStoreTest, MemtableShadowsRuns) {
  SortedKvStore store;
  store.Put("k", "v1");
  store.Flush();
  store.Put("k", "v2");
  EXPECT_EQ(store.Get("k").value(), "v2");
  EXPECT_EQ(store.num_entries(), 1u);
}

TEST(KvStoreTest, NewerRunShadowsOlder) {
  SortedKvStore store;
  store.Put("k", "v1");
  store.Flush();
  store.Put("k", "v2");
  store.Flush();
  EXPECT_EQ(store.num_runs(), 2u);
  EXPECT_EQ(store.Get("k").value(), "v2");
  store.Compact();
  EXPECT_EQ(store.num_runs(), 1u);
  EXPECT_EQ(store.Get("k").value(), "v2");
}

TEST(KvStoreTest, ScanMergesSourcesInOrder) {
  SortedKvStore store;
  store.Put("d", "run1");
  store.Put("b", "run1");
  store.Flush();
  store.Put("c", "run2");
  store.Put("b", "run2");  // Overwrites run1's b.
  store.Flush();
  store.Put("a", "mem");

  auto it = store.Scan("", "");
  std::vector<std::pair<std::string, std::string>> seen;
  for (; it.Valid(); it.Next()) {
    seen.emplace_back(std::string(it.key()), std::string(it.value()));
  }
  EXPECT_EQ(seen, (std::vector<std::pair<std::string, std::string>>{
                      {"a", "mem"}, {"b", "run2"}, {"c", "run2"},
                      {"d", "run1"}}));
}

TEST(KvStoreTest, ScanRangeBoundsAreHalfOpen) {
  SortedKvStore store;
  for (const char* k : {"a", "b", "c", "d"}) store.Put(k, "");
  auto it = store.Scan("b", "d");
  std::vector<std::string> keys;
  for (; it.Valid(); it.Next()) keys.emplace_back(it.key());
  EXPECT_EQ(keys, (std::vector<std::string>{"b", "c"}));
}

TEST(KvStoreTest, ScanPrefix) {
  SortedKvStore store;
  store.Put("ab1", "");
  store.Put("ab2", "");
  store.Put("ac", "");
  store.Put("b", "");
  auto it = store.ScanPrefix("ab");
  EXPECT_EQ(it.size(), 2u);
}

TEST(KvStoreTest, ScanPrefixAtKeyspaceEnd) {
  // Prefix of 0xff bytes has no upper bound string; must scan to the end.
  SortedKvStore store;
  std::string high = "\xff\xff";
  store.Put(high + "a", "1");
  store.Put("a", "2");
  auto it = store.ScanPrefix(high);
  EXPECT_EQ(it.size(), 1u);
}

TEST(KvStoreTest, BulkLoadSortsAndDedupes) {
  SortedKvStore store;
  std::vector<std::pair<std::string, std::string>> entries = {
      {"c", "1"}, {"a", "1"}, {"b", "1"}, {"a", "2"}};
  store.BulkLoad(std::move(entries));
  EXPECT_EQ(store.num_entries(), 3u);
  // Last occurrence of the duplicate key wins.
  EXPECT_EQ(store.Get("a").value(), "2");
  auto it = store.Scan("", "");
  std::string previous;
  for (; it.Valid(); it.Next()) {
    EXPECT_LT(previous, std::string(it.key()));
    previous = std::string(it.key());
  }
}

TEST(KvStoreTest, LargeRandomWorkloadMatchesStdMap) {
  SortedKvStore store;
  std::map<std::string, std::string> reference;
  Rng rng(11);
  for (int i = 0; i < 3000; ++i) {
    std::string key = BigEndianKey(rng.NextBounded(500));
    std::string value = std::to_string(rng.Next());
    store.Put(key, value);
    reference[key] = value;
    if (i % 700 == 0) store.Flush();
    if (i % 1500 == 0) store.Compact();
  }
  EXPECT_EQ(store.num_entries(), reference.size());
  for (const auto& [key, value] : reference) {
    EXPECT_EQ(store.Get(key).value(), value);
  }
  // Range scan equivalence on a sub-range.
  std::string lo = BigEndianKey(100), hi = BigEndianKey(300);
  auto it = store.Scan(lo, hi);
  auto ref_it = reference.lower_bound(lo);
  size_t count = 0;
  for (; it.Valid(); it.Next(), ++ref_it, ++count) {
    ASSERT_NE(ref_it, reference.end());
    EXPECT_EQ(it.key(), ref_it->first);
    EXPECT_EQ(it.value(), ref_it->second);
  }
  EXPECT_EQ(ref_it, reference.lower_bound(hi));
}

TEST(KvStoreTest, ApproximateBytesGrows) {
  SortedKvStore store;
  uint64_t empty = store.ApproximateBytes();
  store.Put("key", "value");
  EXPECT_GT(store.ApproximateBytes(), empty);
}

TEST(KvStoreTest, SerializeRoundTrip) {
  SortedKvStore store;
  store.Put("b", "2");
  store.Put("a", "1");
  store.Flush();
  store.Put("c", "3");
  std::string bytes;
  store.Serialize(&bytes);
  auto restored = SortedKvStore::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_entries(), 3u);
  EXPECT_EQ(restored->Get("b").value(), "2");
}

TEST(KvStoreTest, DeserializeRejectsUnsortedData) {
  ByteWriter writer;
  writer.PutVarint(2);
  writer.PutString("b");
  writer.PutString("");
  writer.PutString("a");  // Out of order.
  writer.PutString("");
  EXPECT_EQ(SortedKvStore::Deserialize(writer.buffer()).status().code(),
            StatusCode::kCorruption);
}

TEST(BigEndianKeyTest, PreservesNumericOrder) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    uint64_t a = rng.Next(), b = rng.Next();
    EXPECT_EQ(a < b, BigEndianKey(a) < BigEndianKey(b));
  }
}

TEST(BigEndianKeyTest, RoundTrip) {
  for (uint64_t v : {0ull, 1ull, 255ull, 256ull, ~0ull}) {
    EXPECT_EQ(DecodeBigEndianKey(BigEndianKey(v)), v);
  }
  EXPECT_EQ(BigEndianKey(7).size(), 8u);
}

}  // namespace
}  // namespace prost::kvstore
