// Deterministic serving stress harness for serve::SessionManager over a
// concurrently-shared ProstDb.
//
// The load is a seeded randomized mix of WatDiv basic queries (weighted
// by query class — testing::QueryMixSampler), hammered from 2/4/8 client
// threads against one parallel-configured db. The checks are stronger
// than "no crash":
//
//  1. Every concurrent result is *bit-identical* to its precomputed
//     serial reference (chunk layout, row order, columns) and carries
//     the identical simulated time — concurrency must be invisible to
//     both answers and the simulated clock.
//  2. Admission edge cases behave deterministically: per-query budgets
//     fail with the same kResourceExhausted status concurrent or
//     serial, a full queue rejects with kUnavailable (never blocks
//     forever, never drops silently), and shutdown mid-flight drains
//     in-flight queries while failing queued/new callers cleanly.
//
// Runs under the TSan CI leg (label `stress`), so every assertion here
// doubles as a data-race probe on the multi-region thread pool.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/prost_db.h"
#include "random_workload.h"
#include "serve/session_manager.h"
#include "sparql/parser.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace prost {
namespace {

using SharedGraph = std::shared_ptr<const rdf::EncodedGraph>;

std::unique_ptr<core::ProstDb> MakeDb(const SharedGraph& graph,
                                      uint32_t num_threads) {
  core::ProstDb::Options options;
  options.exec.num_threads = num_threads;
  // Small morsels so even modest relations split into many concurrent
  // tasks — maximum pressure on the shared pool's region multiplexing.
  options.exec.morsel_rows = 256;
  auto db = core::ProstDb::LoadFromSharedGraph(graph, options);
  EXPECT_TRUE(db.ok()) << db.status();
  return db.ok() ? std::move(db).value() : nullptr;
}

/// Bit-identity: same column names, same chunk count, every chunk's every
/// column the same vector — row order included.
void ExpectBitIdentical(const engine::Relation& actual,
                        const engine::Relation& expected,
                        const std::string& context) {
  ASSERT_EQ(actual.column_names(), expected.column_names()) << context;
  ASSERT_EQ(actual.num_chunks(), expected.num_chunks()) << context;
  for (uint32_t w = 0; w < expected.num_chunks(); ++w) {
    const engine::RelationChunk& a = actual.chunks()[w];
    const engine::RelationChunk& e = expected.chunks()[w];
    ASSERT_EQ(a.columns.size(), e.columns.size()) << context << ", chunk "
                                                  << w;
    for (size_t c = 0; c < e.columns.size(); ++c) {
      EXPECT_EQ(a.columns[c], e.columns[c])
          << context << ", chunk " << w << ", column "
          << expected.column_names()[c];
    }
  }
}

/// Bounded wait for an externally-driven condition (queue occupancy,
/// drain progress). Generous deadline: sanitizer builds are slow.
bool WaitUntil(const std::function<bool()>& pred) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(60);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

class ServingStressTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    watdiv::WatDivConfig config;
    config.target_triples = 20000;
    config.seed = 11;
    watdiv::WatDivDataset dataset = watdiv::Generate(config);
    dataset.graph.SortAndDedupe();
    graph_ = std::make_shared<const rdf::EncodedGraph>(
        std::move(dataset.graph));
    watdiv::WatDivDataset sizing_only;  // Queries depend only on IRIs.
    raw_queries_ = watdiv::BasicQuerySet(sizing_only);
    for (const watdiv::WatDivQuery& wq : raw_queries_) {
      auto parsed = sparql::ParseQuery(wq.sparql);
      ASSERT_TRUE(parsed.ok()) << wq.id << ": " << parsed.status();
      queries_.push_back(std::move(parsed).value());
    }
    // Serial reference: the ground truth every concurrent result must
    // match bitwise.
    serial_ = MakeDb(graph_, 1);
    ASSERT_NE(serial_, nullptr);
    for (size_t i = 0; i < queries_.size(); ++i) {
      auto result = serial_->Execute(queries_[i]);
      ASSERT_TRUE(result.ok()) << raw_queries_[i].id << ": "
                               << result.status();
      reference_.push_back(std::move(result).value());
    }
  }

  static void TearDownTestSuite() {
    serial_.reset();
    reference_.clear();
    queries_.clear();
    raw_queries_.clear();
    graph_.reset();
  }

  static SharedGraph graph_;
  static std::vector<watdiv::WatDivQuery> raw_queries_;
  static std::vector<sparql::Query> queries_;
  static std::vector<core::QueryResult> reference_;
  static std::unique_ptr<core::ProstDb> serial_;
};

SharedGraph ServingStressTest::graph_;
std::vector<watdiv::WatDivQuery> ServingStressTest::raw_queries_;
std::vector<sparql::Query> ServingStressTest::queries_;
std::vector<core::QueryResult> ServingStressTest::reference_;
std::unique_ptr<core::ProstDb> ServingStressTest::serial_;

class ServingMixTest : public ServingStressTest,
                       public ::testing::WithParamInterface<int> {};

TEST_P(ServingMixTest, MixedWorkloadIsBitIdenticalToSerial) {
  const int kClients = GetParam();
  const int kQueriesPerClient = 12;
  auto db = MakeDb(graph_, 4);
  ASSERT_NE(db, nullptr);

  serve::AdmissionOptions admission;
  admission.max_in_flight = static_cast<uint32_t>(kClients);
  admission.max_queued = static_cast<uint32_t>(kClients) * 2;
  serve::SessionManager manager(*db, admission);

  testing::QueryMixSampler sampler(raw_queries_);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      // Per-client deterministic stream: the sampled indices depend only
      // on (suite seed, client id), never on interleaving.
      Rng rng(991 * (t + 1) + 17);
      for (int iter = 0; iter < kQueriesPerClient; ++iter) {
        size_t q = sampler.SampleIndex(rng);
        auto result = manager.Execute(queries_[q]);
        ASSERT_TRUE(result.ok()) << "client " << t << " iter " << iter
                                 << " query " << raw_queries_[q].id << ": "
                                 << result.status();
        ExpectBitIdentical(result->relation, reference_[q].relation,
                           "client " + std::to_string(t) + " iter " +
                               std::to_string(iter) + " query " +
                               raw_queries_[q].id);
        EXPECT_DOUBLE_EQ(result->simulated_millis,
                         reference_[q].simulated_millis)
            << "client " << t << " query " << raw_queries_[q].id;
      }
    });
  }
  for (std::thread& client : clients) client.join();

  const uint64_t total =
      static_cast<uint64_t>(kClients) * kQueriesPerClient;
  obs::MetricsSnapshot snapshot = manager.metrics().Snapshot();
  EXPECT_EQ(snapshot.counter("serve.admitted"), total);
  EXPECT_EQ(snapshot.counter("serve.completed"), total);
  EXPECT_EQ(snapshot.counter("serve.failed"), 0u);
  EXPECT_EQ(snapshot.histograms.at("serve.simulated_ms").count, total);
  EXPECT_EQ(manager.in_flight(), 0u);
  EXPECT_EQ(manager.queued(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Clients, ServingMixTest,
                         ::testing::Values(2, 4, 8));

TEST_F(ServingStressTest, BudgetExceededFailsWithCleanStatus) {
  auto db = MakeDb(graph_, 4);
  ASSERT_NE(db, nullptr);

  // A query with at least two result rows trips a one-row budget.
  size_t victim = queries_.size();
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (reference_[i].num_rows() >= 2) {
      victim = i;
      break;
    }
  }
  ASSERT_LT(victim, queries_.size()) << "no multi-row reference query";

  serve::AdmissionOptions admission;
  admission.budget.max_rows = 1;
  serve::SessionManager manager(*db, admission);
  auto result = manager.Execute(queries_[victim]);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status();
  // Deterministic enforcement: the serial engine under the same budget
  // fails with the *identical* status (code and message).
  auto serial_budgeted =
      serial_->Execute(queries_[victim], nullptr, &admission.budget);
  ASSERT_FALSE(serial_budgeted.ok());
  EXPECT_EQ(result.status(), serial_budgeted.status());

  // Simulated-time budgets trip the same way: every query costs more
  // than a micro-millisecond of simulated time.
  serve::AdmissionOptions time_admission;
  time_admission.budget.max_simulated_millis = 0.0001;
  serve::SessionManager time_manager(*db, time_admission);
  auto timed_out = time_manager.Execute(queries_[victim]);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kResourceExhausted);

  obs::MetricsSnapshot snapshot = manager.metrics().Snapshot();
  EXPECT_EQ(snapshot.counter("serve.failed"), 1u);
  EXPECT_EQ(snapshot.counter("serve.budget_exhausted"), 1u);
  EXPECT_EQ(snapshot.counter("serve.completed"), 0u);

  // The failure is the query's, not the session's: the manager keeps
  // serving, and an unbudgeted run of the same query succeeds.
  serve::AdmissionOptions unlimited;
  serve::SessionManager ok_manager(*db, unlimited);
  auto ok_result = ok_manager.Execute(queries_[victim]);
  ASSERT_TRUE(ok_result.ok()) << ok_result.status();
  ExpectBitIdentical(ok_result->relation, reference_[victim].relation,
                     "post-budget-failure execution");
}

TEST_F(ServingStressTest, FullQueueRejectsWithUnavailable) {
  auto db = MakeDb(graph_, 2);
  ASSERT_NE(db, nullptr);
  serve::AdmissionOptions admission;
  admission.max_in_flight = 1;
  admission.max_queued = 1;
  serve::SessionManager manager(*db, admission);

  // Pin the admission state: one slot held, one caller parked FIFO.
  auto held = manager.Admit();
  ASSERT_TRUE(held.ok()) << held.status();
  std::thread parked([&] {
    auto slot = manager.Admit();  // Queued behind `held`.
    EXPECT_TRUE(slot.ok()) << slot.status();
  });
  ASSERT_TRUE(WaitUntil([&] { return manager.queued() == 1; }));
  // The queue-occupancy gauges export the parked caller exactly (both
  // are set in the same critical section that incremented queued_).
  obs::MetricsSnapshot parked_snapshot = manager.metrics().Snapshot();
  EXPECT_DOUBLE_EQ(parked_snapshot.gauge("serve.queue_depth"), 1.0);
  EXPECT_DOUBLE_EQ(parked_snapshot.gauge("serve.queued"), 1.0);

  // Queue full: the third arrival rejects immediately — no blocking.
  auto rejected = manager.Admit();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable)
      << rejected.status();

  held->Release();  // The parked caller is admitted FIFO and finishes.
  parked.join();

  obs::MetricsSnapshot snapshot = manager.metrics().Snapshot();
  EXPECT_EQ(snapshot.counter("serve.admitted"), 2u);
  EXPECT_EQ(snapshot.counter("serve.rejected.queue_full"), 1u);
  // Exactness: the aggregate equals the sum of per-reason counters, and
  // the queue gauges are back to zero now that the queue emptied.
  EXPECT_EQ(snapshot.counter("serve.rejected_total"),
            snapshot.counter("serve.rejected.queue_full") +
                snapshot.counter("serve.rejected.shutdown"));
  EXPECT_EQ(snapshot.counter("serve.rejected_total"), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauge("serve.queue_depth"), 0.0);
  EXPECT_DOUBLE_EQ(snapshot.gauge("serve.queued"), 0.0);
}

TEST_F(ServingStressTest, NoQueuePolicyShedsLoadImmediately) {
  auto db = MakeDb(graph_, 2);
  ASSERT_NE(db, nullptr);
  serve::AdmissionOptions admission;
  admission.max_in_flight = 1;
  admission.queue_when_full = false;
  serve::SessionManager manager(*db, admission);

  auto held = manager.Admit();
  ASSERT_TRUE(held.ok()) << held.status();
  auto shed = manager.Admit();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  held->Release();

  // Capacity free again: admission resumes.
  auto readmitted = manager.Admit();
  ASSERT_TRUE(readmitted.ok()) << readmitted.status();
}

TEST_F(ServingStressTest, ShutdownDrainsInFlightAndRejectsQueued) {
  auto db = MakeDb(graph_, 2);
  ASSERT_NE(db, nullptr);
  serve::AdmissionOptions admission;
  admission.max_in_flight = 1;
  admission.max_queued = 4;
  serve::SessionManager manager(*db, admission);

  auto in_flight = manager.Admit();
  ASSERT_TRUE(in_flight.ok()) << in_flight.status();
  std::thread queued_caller([&] {
    auto slot = manager.Admit();
    ASSERT_FALSE(slot.ok());  // Shutdown arrives while parked.
    EXPECT_EQ(slot.status().code(), StatusCode::kUnavailable);
  });
  ASSERT_TRUE(WaitUntil([&] { return manager.queued() == 1; }));

  std::thread stopper([&] { manager.Shutdown(); });
  ASSERT_TRUE(WaitUntil([&] { return manager.draining(); }));

  // New arrivals fail fast while draining.
  auto late = manager.Admit();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);

  // Shutdown must wait for the in-flight unit...
  queued_caller.join();
  EXPECT_EQ(manager.in_flight(), 1u);
  // ...and return once it drains.
  in_flight->Release();
  stopper.join();
  EXPECT_EQ(manager.in_flight(), 0u);
  EXPECT_EQ(manager.queued(), 0u);

  obs::MetricsSnapshot snapshot = manager.metrics().Snapshot();
  EXPECT_EQ(snapshot.counter("serve.rejected.shutdown"), 2u);
  // Exactness after all rejecting callers returned: the aggregate is
  // precisely per-reason sums, and the queue gauges read empty.
  EXPECT_EQ(snapshot.counter("serve.rejected_total"), 2u);
  EXPECT_EQ(snapshot.counter("serve.rejected.queue_full"), 0u);
  EXPECT_DOUBLE_EQ(snapshot.gauge("serve.queue_depth"), 0.0);
}

TEST_F(ServingStressTest, ShutdownMidWorkloadDrainsCleanly) {
  // Race a real mixed workload against Shutdown: clients treat
  // kUnavailable as a clean stop; every successful answer must still be
  // bitwise-correct, and after Shutdown returns the accounting is
  // settled (no in-flight work, admitted == completed + failed).
  auto db = MakeDb(graph_, 4);
  ASSERT_NE(db, nullptr);
  serve::AdmissionOptions admission;
  admission.max_in_flight = 2;
  admission.max_queued = 4;
  serve::SessionManager manager(*db, admission);

  constexpr int kClients = 4;
  testing::QueryMixSampler sampler(raw_queries_);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(7 * (t + 1) + 3);
      for (int iter = 0; iter < 64; ++iter) {
        size_t q = sampler.SampleIndex(rng);
        auto result = manager.Execute(queries_[q]);
        if (!result.ok()) {
          // The only clean failure in this workload is admission
          // shutdown; anything else is a real bug.
          ASSERT_EQ(result.status().code(), StatusCode::kUnavailable)
              << result.status();
          return;
        }
        ExpectBitIdentical(result->relation, reference_[q].relation,
                           "client " + std::to_string(t) + " query " +
                               raw_queries_[q].id);
      }
    });
  }
  // Let some queries complete, then pull the plug mid-flight.
  ASSERT_TRUE(WaitUntil([&] {
    return manager.metrics().Snapshot().counter("serve.completed") >= 4;
  }));
  manager.Shutdown();
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(manager.in_flight(), 0u);
  EXPECT_EQ(manager.queued(), 0u);
  obs::MetricsSnapshot snapshot = manager.metrics().Snapshot();
  EXPECT_EQ(snapshot.counter("serve.admitted"),
            snapshot.counter("serve.completed") +
                snapshot.counter("serve.failed"));
  EXPECT_EQ(snapshot.counter("serve.failed"), 0u);
  EXPECT_GE(snapshot.counter("serve.rejected.shutdown"), 1u);
  EXPECT_EQ(snapshot.counter("serve.rejected_total"),
            snapshot.counter("serve.rejected.queue_full") +
                snapshot.counter("serve.rejected.shutdown"));
  EXPECT_DOUBLE_EQ(snapshot.gauge("serve.queue_depth"),
                   snapshot.gauge("serve.queued"));
}

}  // namespace
}  // namespace prost
