// Tests for the SPARQL protocol endpoint (src/net/), in two tiers:
//
//  1. Parser tier — the HTTP/1.1 request parser driven by an in-memory
//     byte stream (no sockets anywhere): table-driven malformed/over-
//     limit rejections, torn reads split at every byte boundary,
//     pipelined requests, keep-alive semantics, percent/form decoding,
//     the typed Status→HTTP map, and Accept-header negotiation.
//
//  2. Loopback tier — a real net::Server on an ephemeral port over a
//     WatDiv fixture, queried through net::Client: every WatDiv basic
//     query must come back row-identical (JSON and TSV) to in-process
//     ProstDb execution, four concurrent clients stay correct, admission
//     overflow surfaces as 503 + Retry-After, and a graceful drain
//     finishes in-flight responses while 503ing late requests.
//
// Runs under the TSan CI leg (label `net`): the acceptor + handler pool +
// concurrent clients double as a data-race probe on the net layer.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/prost_db.h"
#include "net/client.h"
#include "net/http.h"
#include "net/result_writer.h"
#include "net/server.h"
#include "serve/session_manager.h"
#include "sparql/parser.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace prost {
namespace {

using net::HttpLimits;
using net::HttpParser;
using net::HttpRequest;
using net::HttpResponse;
using net::HttpResponseParser;
using net::ResultFormat;
using net::SparqlResultSet;
using net::SparqlResultWriter;

// ------------------------------------------------------------ parser tier

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpParser parser;
  parser.Feed(
      "GET /sparql?query=SELECT%20x HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "ACCEPT: text/tab-separated-values\r\n"
      "\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), HttpParser::Outcome::kRequest);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/sparql");
  EXPECT_EQ(request.query_string, "query=SELECT%20x");
  EXPECT_EQ(request.version, "HTTP/1.1");
  // Header names are lowercased; values keep their bytes.
  ASSERT_NE(request.FindHeader("accept"), nullptr);
  EXPECT_EQ(*request.FindHeader("accept"), "text/tab-separated-values");
  EXPECT_TRUE(request.keep_alive);  // HTTP/1.1 default.
  EXPECT_EQ(parser.buffered_bytes(), 0u);
  EXPECT_EQ(parser.Next(&request), HttpParser::Outcome::kNeedMore);
}

TEST(HttpParserTest, TornReadsSplitAtEveryByteBoundary) {
  const std::string body = "SELECT * WHERE { ?s ?p ?o }";
  const std::string full =
      "POST /sparql HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/sparql-query\r\n"
      "Content-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  for (size_t split = 1; split < full.size(); ++split) {
    HttpParser parser;
    HttpRequest request;
    parser.Feed(std::string_view(full).substr(0, split));
    // A prefix must never produce a request or an error.
    ASSERT_EQ(parser.Next(&request), HttpParser::Outcome::kNeedMore)
        << "split at " << split;
    parser.Feed(std::string_view(full).substr(split));
    ASSERT_EQ(parser.Next(&request), HttpParser::Outcome::kRequest)
        << "split at " << split;
    EXPECT_EQ(request.method, "POST");
    EXPECT_EQ(request.body, body);
  }
  // Byte-at-a-time: the cruellest peer.
  HttpParser parser;
  HttpRequest request;
  for (size_t i = 0; i + 1 < full.size(); ++i) {
    parser.Feed(std::string_view(full).substr(i, 1));
    ASSERT_EQ(parser.Next(&request), HttpParser::Outcome::kNeedMore)
        << "byte " << i;
  }
  parser.Feed(std::string_view(full).substr(full.size() - 1));
  ASSERT_EQ(parser.Next(&request), HttpParser::Outcome::kRequest);
  EXPECT_EQ(request.body, body);
}

TEST(HttpParserTest, PipelinedSecondRequestStaysBuffered) {
  HttpParser parser;
  parser.Feed(
      "GET /healthz HTTP/1.1\r\nHost: a\r\n\r\n"
      "\r\n"  // Stray CRLF between pipelined requests is tolerated.
      "GET /metrics HTTP/1.1\r\nHost: a\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), HttpParser::Outcome::kRequest);
  EXPECT_EQ(request.path, "/healthz");
  EXPECT_GT(parser.buffered_bytes(), 0u);
  ASSERT_EQ(parser.Next(&request), HttpParser::Outcome::kRequest);
  EXPECT_EQ(request.path, "/metrics");
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(HttpParserTest, KeepAliveSemanticsByVersion) {
  struct Case {
    const char* name;
    const char* wire;
    bool keep_alive;
  };
  const Case kCases[] = {
      {"Http11Default", "GET / HTTP/1.1\r\nHost: a\r\n\r\n", true},
      {"Http11Close",
       "GET / HTTP/1.1\r\nHost: a\r\nConnection: close\r\n\r\n", false},
      {"Http11CloseTokenList",
       "GET / HTTP/1.1\r\nHost: a\r\nConnection: foo, Close\r\n\r\n", false},
      {"Http10Default", "GET / HTTP/1.0\r\nHost: a\r\n\r\n", false},
      {"Http10KeepAlive",
       "GET / HTTP/1.0\r\nHost: a\r\nConnection: keep-alive\r\n\r\n", true},
  };
  for (const Case& c : kCases) {
    HttpParser parser;
    parser.Feed(c.wire);
    HttpRequest request;
    ASSERT_EQ(parser.Next(&request), HttpParser::Outcome::kRequest) << c.name;
    EXPECT_EQ(request.keep_alive, c.keep_alive) << c.name;
  }
}

TEST(HttpParserTest, TableOfRejections) {
  struct Case {
    const char* name;
    std::string wire;
    int http_status;
  };
  const std::string long_target(9000, 'a');
  const std::string long_header(40000, 'h');
  std::vector<Case> cases = {
      {"TwoTokenRequestLine", "GET /\r\nHost: a\r\n\r\n", 400},
      {"FourTokenRequestLine", "GET / HTTP/1.1 extra\r\nHost: a\r\n\r\n",
       400},
      {"UnknownVersion", "GET / HTTP/2.0\r\nHost: a\r\n\r\n", 505},
      {"HeaderWithoutColon", "GET / HTTP/1.1\r\nHost a\r\n\r\n", 400},
      {"ObsoleteFolding",
       "GET / HTTP/1.1\r\nHost: a\r\n folded\r\n\r\n", 400},
      {"PostWithoutContentLength",
       "POST /sparql HTTP/1.1\r\nHost: a\r\n\r\n", 411},
      {"MalformedContentLength",
       "POST / HTTP/1.1\r\nHost: a\r\nContent-Length: 12x\r\n\r\n", 400},
      {"TransferEncoding",
       "POST / HTTP/1.1\r\nHost: a\r\nTransfer-Encoding: chunked\r\n\r\n",
       501},
      {"BodyOverLimit",
       "POST / HTTP/1.1\r\nHost: a\r\nContent-Length: 99999999\r\n\r\n",
       413},
      {"BadPercentEscapeInPath",
       "GET /spar%zzql HTTP/1.1\r\nHost: a\r\n\r\n", 400},
      // Request line too long — even before its CRLF ever arrives.
      {"OversizedRequestLine", "GET /" + long_target, 431},
      {"OversizedHeaderBlock",
       "GET / HTTP/1.1\r\nX-Big: " + long_header + "\r\n\r\n", 431},
  };
  for (const Case& c : cases) {
    HttpParser parser;
    parser.Feed(c.wire);
    HttpRequest request;
    ASSERT_EQ(parser.Next(&request), HttpParser::Outcome::kError) << c.name;
    EXPECT_EQ(parser.error().http_status, c.http_status)
        << c.name << ": " << parser.error().message;
    EXPECT_FALSE(parser.error().message.empty()) << c.name;
  }
}

TEST(HttpParserTest, CustomLimitsAreHonored) {
  HttpLimits limits;
  limits.max_body_bytes = 8;
  HttpParser parser(limits);
  parser.Feed("POST / HTTP/1.1\r\nHost: a\r\nContent-Length: 9\r\n\r\n");
  HttpRequest request;
  ASSERT_EQ(parser.Next(&request), HttpParser::Outcome::kError);
  EXPECT_EQ(parser.error().http_status, 413);
}

TEST(HttpResponseTest, SerializeRoundTripsThroughResponseParser) {
  HttpResponse response;
  response.status = 429;
  response.AddHeader("Content-Type", "application/json");
  response.AddHeader("Retry-After", "1");
  response.body = "{\"error\":{}}";
  response.keep_alive = false;

  HttpResponseParser parser;
  parser.Feed(response.Serialize());
  HttpResponseParser::Response parsed;
  ASSERT_EQ(parser.Next(&parsed), HttpParser::Outcome::kRequest);
  EXPECT_EQ(parsed.status, 429);
  EXPECT_EQ(parsed.body, response.body);
  ASSERT_NE(parsed.FindHeader("retry-after"), nullptr);
  ASSERT_NE(parsed.FindHeader("content-length"), nullptr);
  EXPECT_EQ(*parsed.FindHeader("content-length"),
            std::to_string(response.body.size()));
  ASSERT_NE(parsed.FindHeader("connection"), nullptr);
  EXPECT_EQ(*parsed.FindHeader("connection"), "close");
}

TEST(HttpUtilTest, PercentAndFormDecoding) {
  auto decoded = net::PercentDecode("a%20b%2Fc", false);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, "a b/c");
  // '+' is a space only in form-encoding mode.
  EXPECT_EQ(*net::PercentDecode("a+b", true), "a b");
  EXPECT_EQ(*net::PercentDecode("a+b", false), "a+b");
  EXPECT_FALSE(net::PercentDecode("bad%2", false).ok());
  EXPECT_FALSE(net::PercentDecode("bad%zz", false).ok());

  auto params = net::ParseFormEncoded("query=SELECT+%2A&limit=10");
  ASSERT_TRUE(params.ok());
  ASSERT_EQ(params->size(), 2u);
  EXPECT_EQ((*params)[0].first, "query");
  EXPECT_EQ((*params)[0].second, "SELECT *");
  EXPECT_EQ((*params)[1].first, "limit");

  // Encode → decode round trip over every byte value worth worrying about.
  const std::string nasty = "a b&c=d?e#f%g\th\nij+k";
  EXPECT_EQ(*net::PercentDecode(net::PercentEncode(nasty), false), nasty);
}

TEST(HttpUtilTest, StatusToHttpMapping) {
  const std::pair<Status, int> kCases[] = {
      {Status::InvalidArgument("x"), 400},
      {Status::ParseError("x"), 400},
      {Status::NotFound("x"), 404},
      {Status::DeadlineExceeded("x"), 408},
      {Status::ResourceExhausted("x"), 429},
      {Status::Unavailable("x"), 503},
      {Status::Internal("x"), 500},
      {Status::IOError("x"), 500},
      {Status::Corruption("x"), 500},
  };
  for (const auto& [status, http] : kCases) {
    EXPECT_EQ(net::HttpStatusForStatus(status), http) << status;
  }
}

TEST(ResultWriterTest, NegotiationPrefersFirstRecognizedMediaType) {
  EXPECT_EQ(SparqlResultWriter::Negotiate(""), ResultFormat::kJson);
  EXPECT_EQ(SparqlResultWriter::Negotiate("*/*"), ResultFormat::kJson);
  EXPECT_EQ(SparqlResultWriter::Negotiate("application/json"),
            ResultFormat::kJson);
  EXPECT_EQ(
      SparqlResultWriter::Negotiate("application/sparql-results+json"),
      ResultFormat::kJson);
  EXPECT_EQ(SparqlResultWriter::Negotiate("text/tab-separated-values"),
            ResultFormat::kTsv);
  EXPECT_EQ(SparqlResultWriter::Negotiate(
                "text/html, text/tab-separated-values;q=0.9"),
            ResultFormat::kTsv);
  // Unknown media types fall back to JSON, never an error.
  EXPECT_EQ(SparqlResultWriter::Negotiate("application/xml"),
            ResultFormat::kJson);
}

TEST(ResultWriterTest, ParseJsonRebuildsTypedTerms) {
  const std::string doc =
      "{\"head\":{\"vars\":[\"s\",\"o\"]},\"results\":{\"bindings\":["
      "{\"s\":{\"type\":\"uri\",\"value\":\"http://x/a\"},"
      "\"o\":{\"type\":\"literal\",\"value\":\"hi\\tthere\","
      "\"datatype\":\"http://www.w3.org/2001/XMLSchema#string\"}},"
      "{\"s\":{\"type\":\"bnode\",\"value\":\"b0\"},"
      "\"o\":{\"type\":\"literal\",\"value\":\"bonjour\","
      "\"xml:lang\":\"fr\"}}]}}";
  auto parsed = SparqlResultWriter::ParseJson(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->vars, (std::vector<std::string>{"s", "o"}));
  ASSERT_EQ(parsed->rows.size(), 2u);
  EXPECT_EQ(parsed->rows[0][0], "<http://x/a>");
  EXPECT_EQ(parsed->rows[0][1],
            "\"hi\\tthere\"^^<http://www.w3.org/2001/XMLSchema#string>");
  EXPECT_EQ(parsed->rows[1][0], "_:b0");
  EXPECT_EQ(parsed->rows[1][1], "\"bonjour\"@fr");

  EXPECT_FALSE(SparqlResultWriter::ParseJson("{\"head\":{}}").ok());
  EXPECT_FALSE(SparqlResultWriter::ParseJson("not json").ok());
}

TEST(ResultWriterTest, ParseTsvRoundTrip) {
  const std::string doc =
      "?s\t?o\n"
      "<http://x/a>\t\"v\"\n"
      "_:b0\t\"2\"^^<http://www.w3.org/2001/XMLSchema#integer>\n";
  auto parsed = SparqlResultWriter::ParseTsv(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->vars, (std::vector<std::string>{"s", "o"}));
  ASSERT_EQ(parsed->rows.size(), 2u);
  EXPECT_EQ(parsed->rows[1][1],
            "\"2\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  EXPECT_FALSE(SparqlResultWriter::ParseTsv("").ok());
  EXPECT_FALSE(SparqlResultWriter::ParseTsv("?s\n<a>\t<b>\n").ok());
}

// ---------------------------------------------------------- loopback tier

using SharedGraph = std::shared_ptr<const rdf::EncodedGraph>;

std::unique_ptr<core::ProstDb> MakeDb(const SharedGraph& graph,
                                      uint32_t num_threads) {
  core::ProstDb::Options options;
  options.exec.num_threads = num_threads;
  auto db = core::ProstDb::LoadFromSharedGraph(graph, options);
  EXPECT_TRUE(db.ok()) << db.status();
  return db.ok() ? std::move(db).value() : nullptr;
}

/// Bounded wait for an externally-driven condition. Generous deadline:
/// sanitizer builds are slow.
bool WaitUntil(const std::function<bool()>& pred) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

class NetEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    watdiv::WatDivConfig config;
    config.target_triples = 20000;
    config.seed = 11;
    watdiv::WatDivDataset dataset = watdiv::Generate(config);
    dataset.graph.SortAndDedupe();
    graph_ =
        std::make_shared<const rdf::EncodedGraph>(std::move(dataset.graph));
    watdiv::WatDivDataset sizing_only;  // Queries depend only on IRIs.
    raw_queries_ = watdiv::BasicQuerySet(sizing_only);
    // In-process ground truth: lexical rows straight from the engine,
    // which every network response must reproduce byte-for-byte.
    serial_ = MakeDb(graph_, 1);
    ASSERT_NE(serial_, nullptr);
    for (const watdiv::WatDivQuery& wq : raw_queries_) {
      auto result = serial_->ExecuteSparql(wq.sparql);
      ASSERT_TRUE(result.ok()) << wq.id << ": " << result.status();
      auto rows = serial_->DecodeRows(result->relation);
      ASSERT_TRUE(rows.ok()) << wq.id << ": " << rows.status();
      reference_vars_.push_back(result->relation.column_names());
      reference_rows_.push_back(std::move(rows).value());
    }
  }

  static void TearDownTestSuite() {
    serial_.reset();
    reference_rows_.clear();
    reference_vars_.clear();
    raw_queries_.clear();
    graph_.reset();
  }

  static SharedGraph graph_;
  static std::vector<watdiv::WatDivQuery> raw_queries_;
  static std::vector<std::vector<std::string>> reference_vars_;
  static std::vector<std::vector<std::vector<std::string>>> reference_rows_;
  static std::unique_ptr<core::ProstDb> serial_;
};

SharedGraph NetEndToEndTest::graph_;
std::vector<watdiv::WatDivQuery> NetEndToEndTest::raw_queries_;
std::vector<std::vector<std::string>> NetEndToEndTest::reference_vars_;
std::vector<std::vector<std::vector<std::string>>>
    NetEndToEndTest::reference_rows_;
std::unique_ptr<core::ProstDb> NetEndToEndTest::serial_;

/// One running endpoint over the fixture graph: db + session manager +
/// server on an ephemeral loopback port.
struct Endpoint {
  explicit Endpoint(const SharedGraph& graph,
                    serve::AdmissionOptions admission = {},
                    net::ServerOptions options = {}) {
    db = MakeDb(graph, 2);
    manager = std::make_unique<serve::SessionManager>(*db, admission);
    options.port = 0;
    server = std::make_unique<net::Server>(*manager, options);
    Status started = server->Start();
    EXPECT_TRUE(started.ok()) << started;
  }

  net::Client Dial() {
    net::Client client;
    Status connected = client.Connect("127.0.0.1", server->port());
    EXPECT_TRUE(connected.ok()) << connected;
    return client;
  }

  std::unique_ptr<core::ProstDb> db;
  std::unique_ptr<serve::SessionManager> manager;
  std::unique_ptr<net::Server> server;
};

TEST_F(NetEndToEndTest, AllWatDivQueriesRowIdenticalOverJson) {
  Endpoint endpoint(graph_);
  net::Client client = endpoint.Dial();
  for (size_t i = 0; i < raw_queries_.size(); ++i) {
    const std::string target =
        "/sparql?query=" + net::PercentEncode(raw_queries_[i].sparql);
    auto response = client.Get(target);
    ASSERT_TRUE(response.ok()) << raw_queries_[i].id << ": "
                               << response.status();
    ASSERT_EQ(response->status, 200)
        << raw_queries_[i].id << ": " << response->body;
    ASSERT_NE(response->FindHeader("content-type"), nullptr);
    EXPECT_EQ(*response->FindHeader("content-type"),
              "application/sparql-results+json");
    auto parsed = SparqlResultWriter::ParseJson(response->body);
    ASSERT_TRUE(parsed.ok()) << raw_queries_[i].id << ": "
                             << parsed.status();
    EXPECT_EQ(parsed->vars, reference_vars_[i]) << raw_queries_[i].id;
    EXPECT_EQ(parsed->rows, reference_rows_[i]) << raw_queries_[i].id;
  }
}

TEST_F(NetEndToEndTest, PostAndTsvMatchInProcessRows) {
  Endpoint endpoint(graph_);
  net::Client client = endpoint.Dial();
  for (size_t i = 0; i < raw_queries_.size(); ++i) {
    // POST application/sparql-query, TSV negotiated via Accept.
    auto tsv = client.Post("/sparql", "application/sparql-query",
                           raw_queries_[i].sparql,
                           "text/tab-separated-values");
    ASSERT_TRUE(tsv.ok()) << raw_queries_[i].id << ": " << tsv.status();
    ASSERT_EQ(tsv->status, 200) << raw_queries_[i].id << ": " << tsv->body;
    ASSERT_NE(tsv->FindHeader("content-type"), nullptr);
    EXPECT_EQ(*tsv->FindHeader("content-type"), "text/tab-separated-values");
    auto parsed = SparqlResultWriter::ParseTsv(tsv->body);
    ASSERT_TRUE(parsed.ok()) << raw_queries_[i].id << ": "
                             << parsed.status();
    EXPECT_EQ(parsed->vars, reference_vars_[i]) << raw_queries_[i].id;
    EXPECT_EQ(parsed->rows, reference_rows_[i]) << raw_queries_[i].id;
  }
  // POST form-encoded, default (JSON) Accept.
  const std::string form =
      "query=" + net::PercentEncode(raw_queries_[0].sparql);
  auto json = client.Post("/sparql", "application/x-www-form-urlencoded",
                          form);
  ASSERT_TRUE(json.ok()) << json.status();
  ASSERT_EQ(json->status, 200) << json->body;
  auto parsed = SparqlResultWriter::ParseJson(json->body);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->rows, reference_rows_[0]);
}

TEST_F(NetEndToEndTest, HealthMetricsAndErrorRoutes) {
  Endpoint endpoint(graph_);
  net::Client client = endpoint.Dial();

  auto health = client.Get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "ok\n");

  // Run one query so the metrics document has serving data in it.
  auto query = client.Get("/sparql?query=" +
                          net::PercentEncode(raw_queries_[0].sparql));
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_EQ(query->status, 200);

  auto metrics = client.Get("/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(metrics->status, 200);
  ASSERT_NE(metrics->FindHeader("content-type"), nullptr);
  EXPECT_EQ(*metrics->FindHeader("content-type"), "application/json");
  // All three registries are present, and the net section has counted us.
  EXPECT_NE(metrics->body.find("\"db\""), std::string::npos);
  EXPECT_NE(metrics->body.find("\"serve\""), std::string::npos);
  EXPECT_NE(metrics->body.find("\"net\""), std::string::npos);
  EXPECT_NE(metrics->body.find("serve.completed"), std::string::npos);
  EXPECT_NE(metrics->body.find("net.requests"), std::string::npos);

  struct Case {
    const char* name;
    std::function<Result<HttpResponseParser::Response>()> send;
    int status;
    const char* code;
  };
  const std::vector<Case> cases = {
      {"UnknownPath", [&] { return client.Get("/nope"); }, 404,
       "not_found"},
      {"WrongMethod",
       [&] { return client.Post("/healthz", "text/plain", "x"); }, 405,
       "method_not_allowed"},
      {"MissingQueryParam", [&] { return client.Get("/sparql"); }, 400,
       "bad_request"},
      {"UnsupportedMediaType",
       [&] { return client.Post("/sparql", "application/xml", "<q/>"); },
       415, "unsupported_media_type"},
      // A syntactically-broken query: the translator's message must ride
      // back on the 400.
      {"UnparseableQuery",
       [&] {
         return client.Get("/sparql?query=" +
                           net::PercentEncode("SELECT WHERE {"));
       },
       400, nullptr},
  };
  for (const Case& c : cases) {
    auto response = c.send();
    ASSERT_TRUE(response.ok()) << c.name << ": " << response.status();
    EXPECT_EQ(response->status, c.status) << c.name << ": "
                                          << response->body;
    EXPECT_NE(response->body.find("\"error\""), std::string::npos) << c.name;
    if (c.code != nullptr) {
      EXPECT_NE(response->body.find(c.code), std::string::npos)
          << c.name << ": " << response->body;
    }
  }
}

TEST_F(NetEndToEndTest, FourConcurrentClientsStayRowIdentical) {
  serve::AdmissionOptions admission;
  admission.max_in_flight = 4;
  admission.max_queued = 16;
  net::ServerOptions options;
  options.handler_threads = 6;  // Handlers must outnumber the clients.
  Endpoint endpoint(graph_, admission, options);

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      net::Client client = endpoint.Dial();
      // Each client walks the full query set from a different offset, so
      // at any instant the in-flight mix is heterogeneous.
      for (size_t step = 0; step < raw_queries_.size(); ++step) {
        const size_t q =
            (static_cast<size_t>(t) * 7 + step) % raw_queries_.size();
        auto response = client.Get(
            "/sparql?query=" + net::PercentEncode(raw_queries_[q].sparql));
        ASSERT_TRUE(response.ok()) << "client " << t << " step " << step
                                   << ": " << response.status();
        ASSERT_EQ(response->status, 200)
            << "client " << t << " " << raw_queries_[q].id << ": "
            << response->body;
        auto parsed = SparqlResultWriter::ParseJson(response->body);
        ASSERT_TRUE(parsed.ok()) << parsed.status();
        EXPECT_EQ(parsed->rows, reference_rows_[q])
            << "client " << t << " " << raw_queries_[q].id;
      }
    });
  }
  for (std::thread& client : clients) client.join();

  obs::MetricsSnapshot serve_metrics = endpoint.manager->metrics().Snapshot();
  const uint64_t total =
      static_cast<uint64_t>(kClients) * raw_queries_.size();
  EXPECT_EQ(serve_metrics.counter("serve.completed"), total);
  EXPECT_EQ(serve_metrics.counter("serve.failed"), 0u);
  obs::MetricsSnapshot net_metrics = endpoint.server->metrics().Snapshot();
  EXPECT_EQ(net_metrics.counter("net.requests"), total);
  EXPECT_EQ(net_metrics.counter("net.responses.2xx"), total);
}

TEST_F(NetEndToEndTest, AdmissionOverflowSurfacesAs503WithRetryAfter) {
  serve::AdmissionOptions admission;
  admission.max_in_flight = 1;
  admission.queue_when_full = false;  // Load-shedding configuration.
  Endpoint endpoint(graph_, admission);
  net::Client client = endpoint.Dial();

  // Pin the only execution slot from in-process, then ask over the wire.
  auto held = endpoint.manager->Admit();
  ASSERT_TRUE(held.ok()) << held.status();
  auto response = client.Get("/sparql?query=" +
                             net::PercentEncode(raw_queries_[0].sparql));
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->status, 503) << response->body;
  ASSERT_NE(response->FindHeader("retry-after"), nullptr);
  EXPECT_NE(response->body.find("unavailable"), std::string::npos);
  held->Release();

  // Capacity free again: the same connection serves a real answer.
  auto ok_response = client.Get(
      "/sparql?query=" + net::PercentEncode(raw_queries_[0].sparql));
  ASSERT_TRUE(ok_response.ok()) << ok_response.status();
  EXPECT_EQ(ok_response->status, 200);
}

TEST_F(NetEndToEndTest, DrainFinishesInFlightAndRejectsLateRequests) {
  serve::AdmissionOptions admission;
  admission.max_in_flight = 1;
  admission.max_queued = 4;
  net::ServerOptions options;
  options.handler_threads = 4;
  // A wide grace window: the test drives the drain steps explicitly and
  // must never race the wall clock.
  options.drain_grace_seconds = 30;
  Endpoint endpoint(graph_, admission, options);

  // Occupy the only execution slot so the wire request below parks in
  // the admission FIFO — a genuinely in-flight request.
  auto held = endpoint.manager->Admit();
  ASSERT_TRUE(held.ok()) << held.status();

  const size_t q = 0;
  std::thread in_flight_client([&] {
    net::Client client = endpoint.Dial();
    auto response = client.Post("/sparql", "application/sparql-query",
                                raw_queries_[q].sparql);
    // The response must be complete and correct even though the server
    // began draining while this request was queued: drain never
    // truncates in-flight work.
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_EQ(response->status, 200) << response->body;
    auto parsed = SparqlResultWriter::ParseJson(response->body);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed->rows, reference_rows_[q]);
  });
  ASSERT_TRUE(
      WaitUntil([&] { return endpoint.manager->queued() == 1; }));

  // A connection opened before the drain begins...
  net::Client late_client = endpoint.Dial();

  std::thread stopper([&] { endpoint.server->Shutdown(); });
  ASSERT_TRUE(WaitUntil([&] { return endpoint.server->draining(); }));

  // ...sends its request after: answered 503 + Retry-After, not slammed.
  auto late = late_client.Get("/healthz");
  ASSERT_TRUE(late.ok()) << late.status();
  EXPECT_EQ(late->status, 503) << late->body;
  ASSERT_NE(late->FindHeader("retry-after"), nullptr);
  late_client.Close();

  // Release the slot: the parked request executes and completes fully.
  held->Release();
  in_flight_client.join();
  stopper.join();

  obs::MetricsSnapshot net_metrics = endpoint.server->metrics().Snapshot();
  EXPECT_GE(net_metrics.counter("net.drain_rejected"), 1u);

  // The listener is gone: new connections fail outright.
  net::Client refused;
  Status connected =
      refused.Connect("127.0.0.1", endpoint.server->port(), 0.5);
  EXPECT_FALSE(connected.ok());
}

}  // namespace
}  // namespace prost
