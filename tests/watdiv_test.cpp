// Unit tests for the WatDiv-like workload: sizing, deterministic
// generation, schema shape, and the 20 basic query templates.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "rdf/ntriples.h"
#include "sparql/parser.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"
#include "watdiv/schema.h"

namespace prost::watdiv {
namespace {

TEST(SizingTest, ScalesWithTarget) {
  WatDivConfig small_config;
  small_config.target_triples = 30000;
  WatDivConfig big_config;
  big_config.target_triples = 300000;
  WatDivSizing small = ComputeSizing(small_config);
  WatDivSizing big = ComputeSizing(big_config);
  EXPECT_GT(big.users, small.users * 5);
  EXPECT_GT(small.users, 0u);
  EXPECT_GT(small.products, 0u);
  EXPECT_GT(small.retailers, 0u);
  // Fixed-size vocabularies do not scale.
  EXPECT_EQ(small.countries, big.countries);
  EXPECT_EQ(small.sub_genres, big.sub_genres);
}

TEST(SizingTest, TinyTargetsGetFloors) {
  WatDivConfig config;
  config.target_triples = 10;
  WatDivSizing sizing = ComputeSizing(config);
  EXPECT_GE(sizing.users, 100u);
  EXPECT_GE(sizing.retailers, 5u);
}

TEST(GeneratorTest, HitsTargetWithinTolerance) {
  WatDivConfig config;
  config.target_triples = 50000;
  WatDivDataset dataset = Generate(config);
  double ratio = static_cast<double>(dataset.graph.size()) /
                 static_cast<double>(config.target_triples);
  EXPECT_GT(ratio, 0.6) << dataset.graph.size();
  EXPECT_LT(ratio, 1.7) << dataset.graph.size();
}

TEST(GeneratorTest, DeterministicForSeed) {
  WatDivConfig config;
  config.target_triples = 20000;
  WatDivDataset a = Generate(config);
  WatDivDataset b = Generate(config);
  ASSERT_EQ(a.graph.size(), b.graph.size());
  EXPECT_EQ(a.graph.triples(), b.graph.triples());
  config.seed = 43;
  WatDivDataset c = Generate(config);
  EXPECT_NE(a.graph.triples(), c.graph.triples());
}

TEST(GeneratorTest, ValidRdfAndRoundTrip) {
  WatDivConfig config;
  config.target_triples = 5000;
  WatDivDataset dataset = Generate(config);
  std::string text = ToNTriplesText(dataset);
  auto reparsed = rdf::EncodeNTriples(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed->size(), dataset.graph.size());
}

TEST(GeneratorTest, CoreScheduleIsPresent) {
  WatDivConfig config;
  config.target_triples = 30000;
  WatDivDataset dataset = Generate(config);
  const rdf::Dictionary& dict = dataset.graph.dictionary();
  // Every predicate the query templates touch must exist in the data.
  for (const std::string& predicate :
       {Predicates::type(), Predicates::likes(), Predicates::friendOf(),
        Predicates::subscribes(), Predicates::makesPurchase(),
        Predicates::purchaseFor(), Predicates::purchaseDate(),
        Predicates::caption(), Predicates::description(),
        Predicates::keywords(), Predicates::text(),
        Predicates::contentRating(), Predicates::contentSize(),
        Predicates::language(), Predicates::hasGenre(), Predicates::tag(),
        Predicates::title(), Predicates::publisher(), Predicates::author(),
        Predicates::actor(), Predicates::artist(), Predicates::conductor(),
        Predicates::trailer(), Predicates::hasReview(),
        Predicates::reviewer(), Predicates::revTitle(),
        Predicates::totalVotes(), Predicates::offers(),
        Predicates::includes(), Predicates::price(),
        Predicates::serialNumber(), Predicates::validFrom(),
        Predicates::validThrough(), Predicates::eligibleRegion(),
        Predicates::eligibleQuantity(), Predicates::priceValidUntil(),
        Predicates::legalName(), Predicates::jobTitle(),
        Predicates::nationality(), Predicates::location(),
        Predicates::gender(), Predicates::age(), Predicates::givenName(),
        Predicates::familyName(), Predicates::homepage(),
        Predicates::url(), Predicates::hits(),
        Predicates::parentCountry()}) {
    EXPECT_NE(dict.Lookup("<" + predicate + ">"), rdf::kNullTermId)
        << predicate;
  }
  // Popular placeholder entities exist.
  for (const std::string& entity :
       {UserIri(0), ProductIri(0), RetailerIri(0), WebsiteIri(0), CityIri(0),
        SubGenreIri(0), TopicIri(0), LanguageIri(0), CountryIri(5),
        RoleIri(2), ProductCategoryIri(0), ProductCategoryIri(2),
        AgeGroupIri(0)}) {
    EXPECT_NE(dict.Lookup("<" + entity + ">"), rdf::kNullTermId) << entity;
  }
}

TEST(GeneratorTest, MultiValuedPredicatesExist) {
  WatDivConfig config;
  config.target_triples = 30000;
  WatDivDataset dataset = Generate(config);
  dataset.graph.SortAndDedupe();
  auto stats = dataset.graph.ComputePredicateStats();
  const rdf::Dictionary& dict = dataset.graph.dictionary();
  auto stat_of = [&](const std::string& p) {
    return stats.at(dict.Lookup("<" + p + ">"));
  };
  // The PT's list columns come from these.
  EXPECT_TRUE(stat_of(Predicates::likes()).is_multi_valued());
  EXPECT_TRUE(stat_of(Predicates::friendOf()).is_multi_valued());
  EXPECT_TRUE(stat_of(Predicates::offers()).is_multi_valued());
  // Single-valued attributes stay flat.
  EXPECT_FALSE(stat_of(Predicates::legalName()).is_multi_valued());
  EXPECT_FALSE(stat_of(Predicates::url()).is_multi_valued());
}

TEST(GeneratorTest, PowerLawPopularity) {
  WatDivConfig config;
  config.target_triples = 40000;
  WatDivDataset dataset = Generate(config);
  const rdf::Dictionary& dict = dataset.graph.dictionary();
  rdf::TermId likes = dict.Lookup("<" + Predicates::likes() + ">");
  rdf::TermId popular = dict.Lookup("<" + ProductIri(0) + ">");
  ASSERT_NE(likes, rdf::kNullTermId);
  size_t popular_count = 0, total = 0;
  for (const auto& t : dataset.graph.triples()) {
    if (t.predicate != likes) continue;
    ++total;
    if (t.object == popular) ++popular_count;
  }
  ASSERT_GT(total, 100u);
  // Rank-0 product receives far more than a uniform share of likes.
  double uniform_share =
      static_cast<double>(total) / dataset.sizing.products;
  EXPECT_GT(popular_count, uniform_share * 5);
}

// -------------------------------------------------------------- Queries

TEST(QueriesTest, TwentyTemplatesWithExpectedClasses) {
  WatDivDataset dataset;  // Queries only need the placeholder IRIs.
  auto queries = BasicQuerySet(dataset);
  ASSERT_EQ(queries.size(), 20u);
  std::map<char, int> counts;
  std::set<std::string> ids;
  for (const auto& q : queries) {
    ++counts[q.query_class];
    ids.insert(q.id);
  }
  EXPECT_EQ(counts['C'], 3);
  EXPECT_EQ(counts['F'], 5);
  EXPECT_EQ(counts['L'], 5);
  EXPECT_EQ(counts['S'], 7);
  EXPECT_EQ(ids.size(), 20u);
}

TEST(QueriesTest, AllParseAndValidate) {
  WatDivDataset dataset;
  auto queries = BasicQuerySet(dataset);
  auto parsed = ParseQuerySet(queries);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->size(), 20u);
}

TEST(QueriesTest, ShapesMatchClasses) {
  WatDivDataset dataset;
  auto queries = BasicQuerySet(dataset);
  auto parsed = ParseQuerySet(queries);
  ASSERT_TRUE(parsed.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto& query = (*parsed)[i];
    if (queries[i].query_class == 'S') {
      // Star queries: all patterns share one subject variable (a concrete
      // subject pattern pointing at the star is allowed, as in S1/S7).
      std::map<std::string, int> subject_counts;
      for (const auto& p : query.bgp.patterns) {
        if (p.subject.is_variable()) ++subject_counts[p.subject.value];
      }
      int max_count = 0;
      for (const auto& [v, c] : subject_counts) max_count = std::max(max_count, c);
      EXPECT_GE(max_count + 1, static_cast<int>(query.bgp.patterns.size()))
          << queries[i].id;
    }
    if (queries[i].query_class == 'L') {
      EXPECT_LE(query.bgp.patterns.size(), 3u) << queries[i].id;
    }
  }
}

}  // namespace
}  // namespace prost::watdiv
