// Unit tests for the three baseline systems, on small hand-built graphs
// (the WatDiv-scale equivalence is covered by integration_test).

#include <gtest/gtest.h>

#include "baselines/s2rdf.h"
#include "baselines/system.h"
#include "common/io.h"
#include "obs/metrics.h"
#include "rdf/graph.h"
#include "sparql/parser.h"

namespace prost::baselines {
namespace {

using rdf::Term;

SharedGraph SmallGraph() {
  rdf::EncodedGraph graph;
  auto add = [&](const char* s, const char* p, const char* o, bool lit) {
    graph.Add({Term::Iri(s), Term::Iri(p),
               lit ? Term::Literal(o) : Term::Iri(o)});
  };
  add("u1", "likes", "p1", false);
  add("u1", "likes", "p2", false);
  add("u1", "age", "30", true);
  add("u2", "likes", "p1", false);
  add("u2", "age", "31", true);
  add("p1", "label", "x", true);
  add("p2", "label", "y", true);
  add("p1", "madeBy", "u2", false);
  graph.SortAndDedupe();
  return std::make_shared<const rdf::EncodedGraph>(std::move(graph));
}

std::vector<engine::Row> RunQuery(const RdfSystem& system, const char* text) {
  auto query = sparql::ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status();
  auto result = system.Execute(*query);
  EXPECT_TRUE(result.ok()) << system.name() << ": " << result.status();
  return result->relation.CollectSortedRows();
}

class BaselineSystemsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    graph_ = SmallGraph();
    cluster::ClusterConfig cluster;
    for (auto maker : {MakeProst, MakeProstVpOnly, MakeSparqlGx, MakeS2Rdf,
                       MakeRya}) {
      auto system = maker(graph_, cluster);
      ASSERT_TRUE(system.ok()) << system.status();
      systems_.push_back(std::move(system).value());
    }
  }
  static void TearDownTestSuite() {
    systems_.clear();
    graph_.reset();
  }

  static SharedGraph graph_;
  static std::vector<std::unique_ptr<RdfSystem>> systems_;
};

SharedGraph BaselineSystemsTest::graph_;
std::vector<std::unique_ptr<RdfSystem>> BaselineSystemsTest::systems_;

TEST_F(BaselineSystemsTest, AllAgreeOnJoinQuery) {
  const char* query =
      "SELECT * WHERE { ?u <likes> ?p . ?p <label> ?l . }";
  std::vector<engine::Row> expected = RunQuery(*systems_[0], query);
  EXPECT_EQ(expected.size(), 3u);
  for (size_t i = 1; i < systems_.size(); ++i) {
    EXPECT_EQ(RunQuery(*systems_[i], query), expected) << systems_[i]->name();
  }
}

TEST_F(BaselineSystemsTest, AllAgreeOnConstantObject) {
  const char* query = "SELECT * WHERE { ?u <likes> <p1> . ?u <age> ?a . }";
  std::vector<engine::Row> expected = RunQuery(*systems_[0], query);
  EXPECT_EQ(expected.size(), 2u);
  for (size_t i = 1; i < systems_.size(); ++i) {
    EXPECT_EQ(RunQuery(*systems_[i], query), expected) << systems_[i]->name();
  }
}

TEST_F(BaselineSystemsTest, AllAgreeOnCycleQuery) {
  // u2 likes p1 and p1 madeBy u2: a two-hop cycle.
  const char* query =
      "SELECT * WHERE { ?u <likes> ?p . ?p <madeBy> ?u . }";
  std::vector<engine::Row> expected = RunQuery(*systems_[0], query);
  EXPECT_EQ(expected.size(), 1u);
  for (size_t i = 1; i < systems_.size(); ++i) {
    EXPECT_EQ(RunQuery(*systems_[i], query), expected) << systems_[i]->name();
  }
}

TEST_F(BaselineSystemsTest, AllAgreeOnEmptyResult) {
  const char* query =
      "SELECT * WHERE { ?u <likes> <does-not-exist> . ?u <age> ?a . }";
  for (const auto& system : systems_) {
    EXPECT_TRUE(RunQuery(*system, query).empty()) << system->name();
  }
}

TEST_F(BaselineSystemsTest, AllAgreeOnDistinctAndLimit) {
  const char* query = "SELECT DISTINCT ?u WHERE { ?u <likes> ?p . }";
  std::vector<engine::Row> expected = RunQuery(*systems_[0], query);
  EXPECT_EQ(expected.size(), 2u);
  for (size_t i = 1; i < systems_.size(); ++i) {
    EXPECT_EQ(RunQuery(*systems_[i], query), expected) << systems_[i]->name();
  }
  auto parsed = sparql::ParseQuery(
      "SELECT ?u WHERE { ?u <likes> ?p . } LIMIT 2");
  ASSERT_TRUE(parsed.ok());
  for (const auto& system : systems_) {
    auto result = system->Execute(*parsed);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->num_rows(), 2u) << system->name();
  }
}

TEST_F(BaselineSystemsTest, LoadReportsPopulated) {
  for (const auto& system : systems_) {
    EXPECT_EQ(system->load_report().input_triples, graph_->size())
        << system->name();
    EXPECT_GT(system->load_report().simulated_load_millis, 0.0)
        << system->name();
  }
}

TEST_F(BaselineSystemsTest, PersistProducesBytes) {
  std::string base = ::testing::TempDir() + "/prost_baselines_persist";
  for (const auto& system : systems_) {
    auto bytes = system->PersistTo(base + "/" + system->name());
    ASSERT_TRUE(bytes.ok()) << system->name() << ": " << bytes.status();
    EXPECT_GT(*bytes, 0u) << system->name();
  }
  (void)RemoveAllRecursively(base);
}

TEST_F(BaselineSystemsTest, LoadingCostOrdering) {
  // Fixed-pass ratios hold at any scale: SPARQLGX <= PRoST < Rya. The
  // S2RDF > Rya relationship needs predicate-pair volume and is asserted
  // at WatDiv scale in integration_test.
  std::map<std::string, double> load;
  for (const auto& system : systems_) {
    load[system->name()] = system->load_report().simulated_load_millis;
  }
  EXPECT_LE(load["SPARQLGX"], load["PRoST"]);
  EXPECT_LT(load["PRoST"], load["Rya"]);
}

TEST(S2RdfTest, ExtVpReductionsAreCorrectSemiJoins) {
  SharedGraph graph = SmallGraph();
  cluster::ClusterConfig cluster;
  auto system = S2RdfSystem::Load(graph, cluster);
  ASSERT_TRUE(system.ok());
  ASSERT_NE((*system)->metrics(), nullptr);
  obs::MetricsSnapshot metrics = (*system)->metrics()->Snapshot();
  EXPECT_GT(metrics.counter("s2rdf.extvp.tables_stored"), 0u);
  EXPECT_GT(metrics.counter("s2rdf.extvp.rows_stored"), 0u);
  // Every stored reduction is a subset of its base VP table, so queries
  // stay correct — verified behaviourally: the likes ⋈ label result above
  // equals PRoST's. Here we check the bookkeeping is consistent.
  EXPECT_LT(metrics.counter("s2rdf.extvp.rows_stored"),
            graph->size() * 3 * graph->size());
  // Every candidate reduction was classified exactly once.
  const auto& hist = metrics.histograms.at("s2rdf.extvp.selectivity");
  EXPECT_EQ(hist.count, metrics.counter("s2rdf.extvp.tables_stored") +
                            metrics.counter("s2rdf.extvp.rejected_empty") +
                            metrics.counter(
                                "s2rdf.extvp.rejected_selectivity"));
}

TEST(MakeAllSystemsTest, OrderAndNames) {
  SharedGraph graph = SmallGraph();
  cluster::ClusterConfig cluster;
  auto systems = MakeAllSystems(graph, cluster);
  ASSERT_TRUE(systems.ok());
  ASSERT_EQ(systems->size(), 4u);
  EXPECT_EQ((*systems)[0]->name(), "PRoST");
  EXPECT_EQ((*systems)[1]->name(), "S2RDF");
  EXPECT_EQ((*systems)[2]->name(), "Rya");
  EXPECT_EQ((*systems)[3]->name(), "SPARQLGX");
}

}  // namespace
}  // namespace prost::baselines
