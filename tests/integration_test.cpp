// End-to-end integration tests: every system (PRoST mixed, PRoST VP-only,
// PRoST with the reverse PT, S2RDF, Rya, SPARQLGX) must return exactly the
// same bag of rows as the brute-force reference evaluator on all 20 WatDiv
// basic queries — the central correctness property of the reproduction.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/system.h"
#include "core/prost_db.h"
#include "reference_evaluator.h"
#include "sparql/parser.h"
#include "watdiv/generator.h"
#include "watdiv/queries.h"

namespace prost {
namespace {

using baselines::RdfSystem;
using baselines::SharedGraph;

class WatDivIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    watdiv::WatDivConfig config;
    config.target_triples = 40000;
    config.seed = 7;
    watdiv::WatDivDataset dataset = watdiv::Generate(config);
    dataset.graph.SortAndDedupe();
    graph_ = std::make_shared<const rdf::EncodedGraph>(
        std::move(dataset.graph));

    cluster::ClusterConfig cluster;
    auto systems = baselines::MakeAllSystems(graph_, cluster);
    ASSERT_TRUE(systems.ok()) << systems.status();
    systems_ = std::make_unique<std::vector<std::unique_ptr<RdfSystem>>>(
        std::move(systems).value());
    auto vp_only = baselines::MakeProstVpOnly(graph_, cluster);
    ASSERT_TRUE(vp_only.ok()) << vp_only.status();
    systems_->push_back(std::move(vp_only).value());

    // PRoST with the §5 reverse Property Table enabled.
    core::ProstDb::Options reverse_options;
    reverse_options.cluster = cluster;
    reverse_options.use_reverse_property_table = true;
    auto reverse_db =
        core::ProstDb::LoadFromSharedGraph(graph_, reverse_options);
    ASSERT_TRUE(reverse_db.ok()) << reverse_db.status();
    reverse_db_ = std::move(reverse_db).value();

    watdiv::WatDivDataset sizing_only;  // Queries depend only on IRIs.
    queries_ = watdiv::BasicQuerySet(sizing_only);
  }

  static void TearDownTestSuite() {
    systems_.reset();
    reverse_db_.reset();
    graph_.reset();
  }

  static SharedGraph graph_;
  static std::unique_ptr<std::vector<std::unique_ptr<RdfSystem>>> systems_;
  static std::unique_ptr<core::ProstDb> reverse_db_;
  static std::vector<watdiv::WatDivQuery> queries_;
};

SharedGraph WatDivIntegrationTest::graph_;
std::unique_ptr<std::vector<std::unique_ptr<RdfSystem>>>
    WatDivIntegrationTest::systems_;
std::unique_ptr<core::ProstDb> WatDivIntegrationTest::reverse_db_;
std::vector<watdiv::WatDivQuery> WatDivIntegrationTest::queries_;

TEST_F(WatDivIntegrationTest, AllSystemsMatchReferenceOnAllBasicQueries) {
  ASSERT_EQ(queries_.size(), 20u);
  size_t nonempty = 0;
  for (const watdiv::WatDivQuery& wq : queries_) {
    auto parsed = sparql::ParseQuery(wq.sparql);
    ASSERT_TRUE(parsed.ok()) << wq.id << ": " << parsed.status();
    const sparql::Query& query = parsed.value();

    std::vector<std::vector<rdf::TermId>> expected =
        testing::ReferenceEvaluate(query, *graph_);
    if (!expected.empty()) ++nonempty;

    for (const auto& system : *systems_) {
      auto result = system->Execute(query);
      ASSERT_TRUE(result.ok())
          << wq.id << " on " << system->name() << ": " << result.status();
      // Result columns follow the query projection in every system.
      EXPECT_EQ(result->relation.column_names(),
                query.EffectiveProjection())
          << wq.id << " on " << system->name();
      std::vector<std::vector<rdf::TermId>> actual =
          result->relation.CollectSortedRows();
      EXPECT_EQ(actual, expected)
          << wq.id << " on " << system->name() << ": got "
          << actual.size() << " rows, expected " << expected.size();
      EXPECT_GT(result->simulated_millis, 0.0)
          << wq.id << " on " << system->name();
    }

    auto reverse_result = reverse_db_->Execute(query);
    ASSERT_TRUE(reverse_result.ok())
        << wq.id << " reverse-PT: " << reverse_result.status();
    EXPECT_EQ(reverse_result->relation.CollectSortedRows(), expected)
        << wq.id << " on PRoST+reversePT";
  }
  // The generator must keep the query mix meaningful: most of the 20
  // queries have answers at this scale.
  EXPECT_GE(nonempty, 15u) << "too many empty-result queries";
}

TEST_F(WatDivIntegrationTest, MixedStrategyUsesFewerJoinsThanVpOnly) {
  // §3.2: grouping same-subject patterns must strictly reduce node count
  // (and therefore joins) on star-heavy queries.
  core::ProstDb::Options mixed_options;
  auto mixed = core::ProstDb::LoadFromSharedGraph(graph_, mixed_options);
  ASSERT_TRUE(mixed.ok());
  core::ProstDb::Options vp_options;
  vp_options.use_property_table = false;
  auto vp_only = core::ProstDb::LoadFromSharedGraph(graph_, vp_options);
  ASSERT_TRUE(vp_only.ok());

  for (const watdiv::WatDivQuery& wq : queries_) {
    auto query = sparql::ParseQuery(wq.sparql);
    ASSERT_TRUE(query.ok());
    auto mixed_tree = (*mixed)->Plan(query.value());
    auto vp_tree = (*vp_only)->Plan(query.value());
    ASSERT_TRUE(mixed_tree.ok());
    ASSERT_TRUE(vp_tree.ok());
    // Both trees cover every pattern exactly once.
    EXPECT_EQ(mixed_tree->TotalPatterns(), query->bgp.patterns.size());
    EXPECT_EQ(vp_tree->TotalPatterns(), query->bgp.patterns.size());
    EXPECT_LE(mixed_tree->nodes.size(), vp_tree->nodes.size()) << wq.id;
    if (wq.query_class == 'S' || wq.query_class == 'C') {
      EXPECT_LT(mixed_tree->nodes.size(), vp_tree->nodes.size()) << wq.id;
    }
  }
}

TEST_F(WatDivIntegrationTest, StarQueriesBecomeSinglePropertyTableNode) {
  // S1 (a 9-pattern star around an offer) must collapse to one PT node
  // (plus none or one VP node for the retailer edge, whose subject is the
  // retailer constant, not the star variable).
  core::ProstDb::Options options;
  auto db = core::ProstDb::LoadFromSharedGraph(graph_, options);
  ASSERT_TRUE(db.ok());
  for (const watdiv::WatDivQuery& wq : queries_) {
    if (wq.id != "S1") continue;
    auto query = sparql::ParseQuery(wq.sparql);
    ASSERT_TRUE(query.ok());
    auto tree = (*db)->Plan(query.value());
    ASSERT_TRUE(tree.ok());
    EXPECT_LE(tree->nodes.size(), 2u) << tree->ToString();
    size_t pt_nodes = 0;
    for (const auto& node : tree->nodes) {
      if (node.kind == core::NodeKind::kPropertyTable) ++pt_nodes;
    }
    EXPECT_EQ(pt_nodes, 1u) << tree->ToString();
  }
}

TEST_F(WatDivIntegrationTest, LoadReportsAreSane) {
  for (const auto& system : *systems_) {
    const core::LoadReport& report = system->load_report();
    EXPECT_EQ(report.input_triples, graph_->size()) << system->name();
    EXPECT_GT(report.simulated_load_millis, 0.0) << system->name();
    EXPECT_GT(report.storage_bytes, 0u) << system->name();
  }
}

TEST_F(WatDivIntegrationTest, LoadingTimeOrderingMatchesTable1) {
  // Table 1's shape: SPARQLGX <= PRoST < Rya < S2RDF (S2RDF pays the
  // O(|P|²) ExtVP precomputation).
  std::map<std::string, double> load;
  for (const auto& system : *systems_) {
    load[system->name()] = system->load_report().simulated_load_millis;
  }
  EXPECT_LE(load["SPARQLGX"], load["PRoST"]);
  EXPECT_LT(load["PRoST"], load["Rya"]);
  EXPECT_LT(load["Rya"], load["S2RDF"]);
}

}  // namespace
}  // namespace prost
