#!/usr/bin/env python3
"""Repository lint, registered as the `tools.lint` ctest.

Checks, each with a short rule id used in diagnostics:

  value-on-temporary   `).value()` in src/: calling Result::value() on a
                       temporary means the result can never have been
                       checked with ok() first. Receivers that are named
                       variables (`result.value()`) are fine, as is the
                       explicit `std::move(result).value()` consume of an
                       already-checked result.
  raw-new              `new` outside std::unique_ptr<T>(new T...) (used
                       for classes with private constructors) and leaky
                       `static T* x = new T...` singletons. Everything
                       else should use std::make_unique / containers.
  std-endl             std::endl flushes; use '\n'.
  missing-override     gtest virtual hooks (SetUp/TearDown) must be
                       marked `override`; `virtual` on a member already
                       marked `override` is redundant.
  include-order        within each contiguous #include block, <angle>
                       includes come before "quote" includes and both
                       groups are sorted (the first block of a .cc may
                       start with its own header).
  plan-node-construction
                       physical-plan nodes (plan/plan_ir.h) constructed
                       outside src/plan/: schema and planner-size rules
                       live in plan::PlanBuilder, so everything else must
                       go through its factories. (The constructors are
                       private too; this catches friend-ship creep and
                       make_unique workarounds before the compiler.)
  raw-concurrency      std::mutex / lock guards / condition variables (or
                       their headers) outside src/common/mutex.{h,cc}.
                       All locking goes through the annotated
                       prost::Mutex layer so Clang's thread-safety
                       analysis and the debug lock-rank checker see every
                       acquisition. std::thread and std::atomic stay
                       allowed.
  thread-detach        std::thread::detach(): a detached thread outlives
                       every shutdown contract in the codebase; join it
                       (the ThreadPool pattern) instead.
  raw-socket           BSD socket headers (<sys/socket.h>, <netinet/*>,
                       <arpa/inet.h>, <netdb.h>) or socket(2) calls
                       outside src/net/. All wire I/O goes through
                       net::Socket / net::ListenSocket so deadlines,
                       EINTR handling, and shutdown semantics stay in
                       one audited place.
  stats-in-engine      `stats::` (or a "stats/..." include) inside
                       src/engine/. The engine executes physical plans;
                       cardinality estimation and characteristic sets
                       feed the planner, which communicates its
                       conclusions through plan-node annotations
                       (estimated_rows, planner_bytes). An engine
                       operator consulting statistics directly would
                       bypass the plan as the single source of planning
                       truth.
  buffer-pool-internals
                       buffer-pool page internals (PageFrame / PageKey /
                       PageKeyHash, or the pool's frame-map and LRU
                       members) referenced outside src/columnar/. The
                       pool's pin protocol (state machine, pin counts,
                       eviction ticks) is invariant-heavy; everything
                       outside the columnar layer holds pages only
                       through the PinnedPage RAII handle and the
                       BufferPool public API.
  mutable-unguarded    in a header whose class owns a prost::Mutex, a
                       `mutable` field with no PROST_GUARDED_BY
                       annotation. `mutable` is exactly the marker that
                       const methods mutate it concurrently, so it must
                       either name its guard or carry an "internally
                       synchronized" comment (e.g. it is itself a
                       MetricsRegistry).

Exit status 0 when clean, 1 with one "path:line: [rule] message" per
violation otherwise.
"""

import argparse
import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".h", ".cc", ".cpp"}
ALL_DIRS = ["src", "tests", "bench", "examples", "tools"]


def code_lines(text):
    """Yields (line_number, line) with comments and string/char literals
    blanked out, so lexical rules do not fire inside them."""
    out = []
    in_block_comment = False
    for number, line in enumerate(text.splitlines(), start=1):
        result = []
        i = 0
        while i < len(line):
            if in_block_comment:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    in_block_comment = False
                    i = end + 2
                continue
            two = line[i : i + 2]
            if two == "/*":
                in_block_comment = True
                i += 2
            elif two == "//":
                break
            elif line[i] in "\"'":
                quote = line[i]
                i += 1
                while i < len(line):
                    if line[i] == "\\":
                        i += 2
                    elif line[i] == quote:
                        i += 1
                        break
                    else:
                        i += 1
                result.append(quote + quote)
            else:
                result.append(line[i])
                i += 1
        out.append((number, "".join(result)))
    return out


VALUE_ON_TEMPORARY = re.compile(r"\)\s*\.\s*value\(\)")
MOVED_VALUE = re.compile(r"std::move\s*\([^()]*\)\s*\.\s*value\(\)")
RAW_NEW = re.compile(r"\bnew\b\s*[\w:<(]")
SMART_POINTER_NEW = re.compile(
    r"(?:std::)?(?:unique_ptr|shared_ptr)\s*<[^;]*>\s*[({][^;]*\bnew\b"
)
STATIC_SINGLETON_NEW = re.compile(r"\bstatic\b[^;=]*=\s*new\b")
PLAN_NODE_NAMES = (
    "VpScanNode|PtScanNode|HashJoinNode|FilterNode|ProjectNode|"
    "OrderByNode|AggregateNode|DistinctNode|LimitNode"
)
PLAN_NODE_CONSTRUCTION = re.compile(
    rf"\b(?:{PLAN_NODE_NAMES})\s*[({{]"
    rf"|\bmake_unique\s*<\s*(?:plan\s*::\s*)?(?:{PLAN_NODE_NAMES})\b"
)
GTEST_HOOK = re.compile(r"\bvoid\s+(SetUp|TearDown)\s*\(\s*\)")
REDUNDANT_VIRTUAL = re.compile(r"\bvirtual\b[^;{]*\boverride\b")
INCLUDE = re.compile(r'^\s*#\s*include\s*(<[^>]+>|"[^"]+")')
RAW_CONCURRENCY = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock|condition_variable|condition_variable_any)\b"
    r"|#\s*include\s*<(mutex|shared_mutex|condition_variable)>"
)
THREAD_DETACH = re.compile(r"\.\s*detach\s*\(\s*\)")
STATS_IN_ENGINE = re.compile(r"\bstats\s*::|#\s*include\s*\"stats/")
RAW_SOCKET = re.compile(
    r"#\s*include\s*<(sys/socket\.h|netinet/[^>]+|arpa/inet\.h|netdb\.h)>"
    r"|(?<![\w:.])(?:::)?\s*\bsocket\s*\(\s*AF_"
)
BUFFER_POOL_INTERNALS = re.compile(
    r"\b(?:columnar\s*::\s*)?(?:PageFrame|PageKey|PageKeyHash)\b"
    r"|\blru_tick_?\b|\bframes_\b"
)
MUTEX_MEMBER = re.compile(r"\bMutex\s*<\s*(?:\w+::)*LockRank::")
MUTABLE_FIELD = re.compile(r"^\s*mutable\s")
MUTABLE_SYNC_PRIMITIVE = re.compile(r"^\s*mutable\s[\w:<,\s>]*"
                                    r"\b(Mutex\s*<|CondVar\b)")
# code_lines() blanks comments, so the suppression marker is checked on
# the raw source line: a field documented "internally synchronized"
# (its type owns its own locking, e.g. obs::MetricsRegistry) needs no
# PROST_GUARDED_BY.
INTERNALLY_SYNCHRONIZED = re.compile(r"[Ii]nternally\s+synchronized")


def lint_lexical(path, lines, failures, check_value_rule, check_plan_rule):
    previous = ""
    for number, line in lines:
        # A smart-pointer constructor call often wraps, leaving `new` at
        # the start of a continuation line; judge raw-new against the
        # joined pair.
        joined = previous + " " + line
        previous = line
        if check_value_rule and VALUE_ON_TEMPORARY.search(line):
            stripped = MOVED_VALUE.sub("", line)
            if VALUE_ON_TEMPORARY.search(stripped):
                failures.append(
                    f"{path}:{number}: [value-on-temporary] Result::value() "
                    "on a temporary can never have been checked; bind the "
                    "result first or use a Must* accessor"
                )
        if RAW_NEW.search(line):
            if not SMART_POINTER_NEW.search(joined) and not (
                STATIC_SINGLETON_NEW.search(joined)
            ):
                failures.append(
                    f"{path}:{number}: [raw-new] raw `new` outside "
                    "std::unique_ptr construction or a static singleton; "
                    "use std::make_unique or a container"
                )
        if check_plan_rule and PLAN_NODE_CONSTRUCTION.search(line):
            failures.append(
                f"{path}:{number}: [plan-node-construction] plan nodes are "
                "constructed only inside src/plan/; use the "
                "plan::PlanBuilder factories"
            )
        if "std::endl" in line:
            failures.append(
                f"{path}:{number}: [std-endl] std::endl forces a flush; "
                "use '\\n'"
            )
        if GTEST_HOOK.search(line) and "override" not in line:
            failures.append(
                f"{path}:{number}: [missing-override] gtest hook must be "
                "marked override"
            )
        if REDUNDANT_VIRTUAL.search(line):
            failures.append(
                f"{path}:{number}: [missing-override] `virtual` is "
                "redundant on a member marked override"
            )


def lint_concurrency(path, lines, raw_lines, failures, in_mutex_layer,
                     in_net_layer, in_columnar_layer):
    """Concurrency and I/O-layer rules. `lines` are comment/string-blanked,
    `raw_lines` the original text (the mutable-unguarded suppression marker
    lives in doc comments)."""
    for number, line in lines:
        if not in_mutex_layer and RAW_CONCURRENCY.search(line):
            failures.append(
                f"{path}:{number}: [raw-concurrency] std synchronization "
                "primitives live behind the annotated layer; use "
                "prost::Mutex / MutexLock / CondVar from common/mutex.h"
            )
        if not in_net_layer and RAW_SOCKET.search(line):
            failures.append(
                f"{path}:{number}: [raw-socket] BSD socket APIs live "
                "behind src/net/; use net::Socket / net::ListenSocket / "
                "net::Client"
            )
        if THREAD_DETACH.search(line):
            failures.append(
                f"{path}:{number}: [thread-detach] detached threads escape "
                "every shutdown contract; join them instead"
            )
        if not in_columnar_layer and BUFFER_POOL_INTERNALS.search(line):
            failures.append(
                f"{path}:{number}: [buffer-pool-internals] page frames and "
                "pool internals live inside src/columnar/; hold pages via "
                "columnar::PinnedPage and the BufferPool public API"
            )
    # mutable-unguarded: headers only — a class that owns an annotated
    # Mutex must say what guards each of its mutable fields. A field is
    # exempt when it is itself a synchronization primitive, carries
    # PROST_GUARDED_BY, or a doc comment within the three preceding lines
    # (or the line itself) says "internally synchronized".
    if path.suffix != ".h":
        return
    if not any(MUTEX_MEMBER.search(line) for _, line in lines):
        return
    for index, (number, line) in enumerate(lines):
        if not MUTABLE_FIELD.match(line):
            continue
        if MUTABLE_SYNC_PRIMITIVE.match(line):
            continue
        if "PROST_GUARDED_BY" in line:
            continue
        context = raw_lines[max(0, index - 3) : index + 1]
        if any(INTERNALLY_SYNCHRONIZED.search(raw) for raw in context):
            continue
        failures.append(
            f"{path}:{number}: [mutable-unguarded] mutable field in a "
            "Mutex-owning class needs PROST_GUARDED_BY(<mutex>) or an "
            '"internally synchronized" doc comment'
        )


def lint_stats_in_engine(path, lines, raw_lines, failures):
    """The engine must not consult statistics directly: planning
    conclusions reach it only as plan-node annotations. `stats::` is
    checked on blanked lines (comments may discuss it), the include on
    raw lines (blanking empties string literals)."""
    for number, line in lines:
        if re.search(r"\bstats\s*::", line):
            failures.append(
                f"{path}:{number}: [stats-in-engine] the engine executes "
                "plans; statistics inform the planner, which speaks "
                "through plan-node annotations"
            )
    for number, raw in enumerate(raw_lines, start=1):
        if re.match(r'\s*#\s*include\s*"stats/', raw):
            failures.append(
                f"{path}:{number}: [stats-in-engine] src/engine/ must not "
                "include stats/ headers"
            )


def lint_include_order(path, text, failures):
    blocks = []
    current = []
    for number, line in enumerate(text.splitlines(), start=1):
        match = INCLUDE.match(line)
        if match:
            current.append((number, match.group(1)))
        elif line.strip() == "":
            if current:
                blocks.append(current)
                current = []
        else:
            # #ifdef guards, macros or code interrupt the include region;
            # close the block but keep scanning for later ones.
            if current:
                blocks.append(current)
                current = []
    if current:
        blocks.append(current)
    own_header_block = path.suffix != ".h"
    for block in blocks:
        if own_header_block:
            own_header_block = False
            if len(block) == 1:
                continue  # The conventional lone own-header include.
        angles = [(n, i) for n, i in block if i.startswith("<")]
        quotes = [(n, i) for n, i in block if i.startswith('"')]
        if angles and quotes and angles[0][0] > quotes[0][0]:
            failures.append(
                f"{path}:{angles[0][0]}: [include-order] <system> includes "
                "belong before \"project\" includes within a block"
            )
            continue
        for group in (angles, quotes):
            names = [i for _, i in group]
            if names != sorted(names):
                failures.append(
                    f"{path}:{group[0][0]}: [include-order] includes in "
                    "this block are not sorted"
                )
                break


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    args = parser.parse_args()
    root = Path(args.root)

    failures = []
    for directory in ALL_DIRS:
        for path in sorted((root / directory).rglob("*")):
            if path.suffix not in CPP_SUFFIXES:
                continue
            text = path.read_text(encoding="utf-8")
            relative = path.relative_to(root)
            lines = code_lines(text)
            in_plan = relative.parts[:2] == ("src", "plan")
            in_mutex_layer = relative.as_posix() in (
                "src/common/mutex.h",
                "src/common/mutex.cc",
            )
            in_net_layer = relative.parts[:2] == ("src", "net")
            in_columnar_layer = relative.parts[:2] == ("src", "columnar")
            lint_lexical(relative, lines, failures,
                         check_value_rule=directory == "src",
                         check_plan_rule=not in_plan)
            lint_concurrency(relative, lines, text.splitlines(), failures,
                             in_mutex_layer, in_net_layer, in_columnar_layer)
            if relative.parts[:2] == ("src", "engine"):
                lint_stats_in_engine(relative, lines, text.splitlines(),
                                     failures)
            lint_include_order(relative, text, failures)

    for failure in failures:
        print(failure)
    if failures:
        print(f"lint: {len(failures)} violation(s)")
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
