// prost_serverd: the PRoST SPARQL protocol endpoint as a daemon. Loads a
// dataset (a persisted database directory, an N-Triples file, or a
// generated WatDiv graph), then serves it over HTTP/1.1 until SIGINT or
// SIGTERM, draining gracefully (DESIGN.md §13).
//
//   ./build/tools/prost_serverd --watdiv 20000 --port 8090
//   ./build/tools/prost_serverd --open mydb --port 8090 --max_in_flight 8
//   ./build/tools/prost_serverd data.nt
//
//   curl 'http://127.0.0.1:8090/sparql?query=SELECT%20...'
//   curl -X POST -H 'Content-Type: application/sparql-query' \
//        --data 'SELECT * WHERE { ?s ?p ?o . }' http://127.0.0.1:8090/sparql
//   curl http://127.0.0.1:8090/metrics

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "common/io.h"
#include "core/prost_db.h"
#include "net/server.h"
#include "serve/session_manager.h"
#include "watdiv/generator.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleStopSignal(int) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] [data.nt]\n"
      "dataset (pick one):\n"
      "  <data.nt>                 load an N-Triples file\n"
      "  --open DIR                reopen a persisted database directory\n"
      "  --watdiv N                generate an N-triple WatDiv dataset\n"
      "serving options:\n"
      "  --host A                  listen address (default 127.0.0.1)\n"
      "  --port P                  listen port (default 8090; 0 = ephemeral)\n"
      "  --threads N               executor threads per query (default 1)\n"
      "  --handlers N              connection handler threads (default 4)\n"
      "  --max_in_flight N         concurrent queries (default 4)\n"
      "  --max_queued N            admission queue depth (default 16)\n"
      "  --max_request_bytes N     request body cap (default 1 MiB)\n"
      "  --max_header_bytes N      request header cap (default 32 KiB)\n"
      "  --request_deadline S      per-request deadline seconds (default 30)\n",
      argv0);
}

bool ParseUint(const char* text, uint64_t* out) {
  char* end = nullptr;
  *out = std::strtoull(text, &end, 10);
  return end != nullptr && *end == '\0' && end != text;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace prost;

  std::string open_dir;
  std::string ntriples_path;
  uint64_t watdiv_triples = 0;
  std::string host = "127.0.0.1";
  uint64_t port = 8090;
  uint64_t exec_threads = 1;
  uint64_t handlers = 4;
  serve::AdmissionOptions admission;
  net::ServerOptions server_options;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_uint = [&](uint64_t* out) {
      if (i + 1 >= argc || !ParseUint(argv[++i], out)) {
        std::fprintf(stderr, "%s needs a numeric argument\n", arg);
        std::exit(2);
      }
    };
    if (std::strcmp(arg, "--open") == 0 && i + 1 < argc) {
      open_dir = argv[++i];
    } else if (std::strcmp(arg, "--watdiv") == 0) {
      next_uint(&watdiv_triples);
    } else if (std::strcmp(arg, "--host") == 0 && i + 1 < argc) {
      host = argv[++i];
    } else if (std::strcmp(arg, "--port") == 0) {
      next_uint(&port);
    } else if (std::strcmp(arg, "--threads") == 0) {
      next_uint(&exec_threads);
    } else if (std::strcmp(arg, "--handlers") == 0) {
      next_uint(&handlers);
    } else if (std::strcmp(arg, "--max_in_flight") == 0) {
      uint64_t value = 0;
      next_uint(&value);
      admission.max_in_flight = static_cast<uint32_t>(value);
    } else if (std::strcmp(arg, "--max_queued") == 0) {
      uint64_t value = 0;
      next_uint(&value);
      admission.max_queued = static_cast<uint32_t>(value);
    } else if (std::strcmp(arg, "--max_request_bytes") == 0) {
      uint64_t value = 0;
      next_uint(&value);
      server_options.http_limits.max_body_bytes = value;
    } else if (std::strcmp(arg, "--max_header_bytes") == 0) {
      uint64_t value = 0;
      next_uint(&value);
      server_options.http_limits.max_header_bytes = value;
    } else if (std::strcmp(arg, "--request_deadline") == 0) {
      uint64_t value = 0;
      next_uint(&value);
      server_options.request_deadline_seconds = static_cast<double>(value);
    } else if (std::strcmp(arg, "--help") == 0) {
      Usage(argv[0]);
      return 0;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      Usage(argv[0]);
      return 2;
    } else {
      ntriples_path = arg;
    }
  }

  const int sources = (open_dir.empty() ? 0 : 1) +
                      (watdiv_triples > 0 ? 1 : 0) +
                      (ntriples_path.empty() ? 0 : 1);
  if (sources != 1) {
    Usage(argv[0]);
    return 2;
  }

  core::ProstDb::Options db_options;
  db_options.exec.num_threads = static_cast<uint32_t>(exec_threads);
  Result<std::unique_ptr<core::ProstDb>> db =
      Status::InvalidArgument("no dataset");
  if (!open_dir.empty()) {
    std::fprintf(stderr, "opening %s ...\n", open_dir.c_str());
    db = core::ProstDb::OpenFrom(open_dir, db_options);
  } else if (watdiv_triples > 0) {
    std::fprintf(stderr, "generating %llu WatDiv triples ...\n",
                 static_cast<unsigned long long>(watdiv_triples));
    watdiv::WatDivConfig config;
    config.target_triples = watdiv_triples;
    watdiv::WatDivDataset dataset = watdiv::Generate(config);
    db = core::ProstDb::LoadFromGraph(std::move(dataset.graph), db_options);
  } else {
    std::fprintf(stderr, "loading %s ...\n", ntriples_path.c_str());
    std::string text;
    Status read = ReadFileToString(ntriples_path, &text);
    if (!read.ok()) {
      std::fprintf(stderr, "error: %s\n", read.ToString().c_str());
      return 1;
    }
    db = core::ProstDb::LoadFromNTriples(text, db_options);
  }
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }

  serve::SessionManager sessions(**db, admission);
  server_options.host = host;
  server_options.port = static_cast<uint16_t>(port);
  server_options.handler_threads = static_cast<int>(handlers);
  net::Server server(sessions, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "serving on http://%s:%u/sparql (healthz, metrics; "
               "max_in_flight=%u, %llu handlers) — Ctrl-C to drain\n",
               host.c_str(), server.port(), admission.max_in_flight,
               static_cast<unsigned long long>(handlers));

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::fprintf(stderr, "draining ...\n");
  server.Shutdown();   // Stop accepting, finish in-flight responses.
  sessions.Shutdown();  // Then drain the admission layer itself.
  std::fprintf(stderr, "bye\n");
  return 0;
}
