file(REMOVE_RECURSE
  "CMakeFiles/prost_watdiv.dir/generator.cc.o"
  "CMakeFiles/prost_watdiv.dir/generator.cc.o.d"
  "CMakeFiles/prost_watdiv.dir/queries.cc.o"
  "CMakeFiles/prost_watdiv.dir/queries.cc.o.d"
  "CMakeFiles/prost_watdiv.dir/schema.cc.o"
  "CMakeFiles/prost_watdiv.dir/schema.cc.o.d"
  "libprost_watdiv.a"
  "libprost_watdiv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prost_watdiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
