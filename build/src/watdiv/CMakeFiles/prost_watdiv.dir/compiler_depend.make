# Empty compiler generated dependencies file for prost_watdiv.
# This may be replaced when dependencies are built.
