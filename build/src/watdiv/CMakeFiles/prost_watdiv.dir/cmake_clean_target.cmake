file(REMOVE_RECURSE
  "libprost_watdiv.a"
)
