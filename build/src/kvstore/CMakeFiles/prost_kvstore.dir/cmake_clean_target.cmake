file(REMOVE_RECURSE
  "libprost_kvstore.a"
)
