file(REMOVE_RECURSE
  "CMakeFiles/prost_kvstore.dir/kv_store.cc.o"
  "CMakeFiles/prost_kvstore.dir/kv_store.cc.o.d"
  "libprost_kvstore.a"
  "libprost_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prost_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
