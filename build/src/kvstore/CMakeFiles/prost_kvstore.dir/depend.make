# Empty dependencies file for prost_kvstore.
# This may be replaced when dependencies are built.
