file(REMOVE_RECURSE
  "libprost_common.a"
)
