file(REMOVE_RECURSE
  "CMakeFiles/prost_common.dir/compression.cc.o"
  "CMakeFiles/prost_common.dir/compression.cc.o.d"
  "CMakeFiles/prost_common.dir/hash.cc.o"
  "CMakeFiles/prost_common.dir/hash.cc.o.d"
  "CMakeFiles/prost_common.dir/io.cc.o"
  "CMakeFiles/prost_common.dir/io.cc.o.d"
  "CMakeFiles/prost_common.dir/logging.cc.o"
  "CMakeFiles/prost_common.dir/logging.cc.o.d"
  "CMakeFiles/prost_common.dir/rng.cc.o"
  "CMakeFiles/prost_common.dir/rng.cc.o.d"
  "CMakeFiles/prost_common.dir/status.cc.o"
  "CMakeFiles/prost_common.dir/status.cc.o.d"
  "CMakeFiles/prost_common.dir/str_util.cc.o"
  "CMakeFiles/prost_common.dir/str_util.cc.o.d"
  "libprost_common.a"
  "libprost_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prost_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
