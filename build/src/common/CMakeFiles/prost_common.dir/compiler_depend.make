# Empty compiler generated dependencies file for prost_common.
# This may be replaced when dependencies are built.
