file(REMOVE_RECURSE
  "libprost_rdf.a"
)
