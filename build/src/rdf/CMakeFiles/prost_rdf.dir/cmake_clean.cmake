file(REMOVE_RECURSE
  "CMakeFiles/prost_rdf.dir/dictionary.cc.o"
  "CMakeFiles/prost_rdf.dir/dictionary.cc.o.d"
  "CMakeFiles/prost_rdf.dir/graph.cc.o"
  "CMakeFiles/prost_rdf.dir/graph.cc.o.d"
  "CMakeFiles/prost_rdf.dir/ntriples.cc.o"
  "CMakeFiles/prost_rdf.dir/ntriples.cc.o.d"
  "CMakeFiles/prost_rdf.dir/term.cc.o"
  "CMakeFiles/prost_rdf.dir/term.cc.o.d"
  "CMakeFiles/prost_rdf.dir/triple.cc.o"
  "CMakeFiles/prost_rdf.dir/triple.cc.o.d"
  "libprost_rdf.a"
  "libprost_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prost_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
