# Empty compiler generated dependencies file for prost_rdf.
# This may be replaced when dependencies are built.
