# Empty compiler generated dependencies file for prost_columnar.
# This may be replaced when dependencies are built.
