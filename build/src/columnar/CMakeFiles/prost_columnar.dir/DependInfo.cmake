
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/columnar/column.cc" "src/columnar/CMakeFiles/prost_columnar.dir/column.cc.o" "gcc" "src/columnar/CMakeFiles/prost_columnar.dir/column.cc.o.d"
  "/root/repo/src/columnar/encoding.cc" "src/columnar/CMakeFiles/prost_columnar.dir/encoding.cc.o" "gcc" "src/columnar/CMakeFiles/prost_columnar.dir/encoding.cc.o.d"
  "/root/repo/src/columnar/lexical_format.cc" "src/columnar/CMakeFiles/prost_columnar.dir/lexical_format.cc.o" "gcc" "src/columnar/CMakeFiles/prost_columnar.dir/lexical_format.cc.o.d"
  "/root/repo/src/columnar/partition.cc" "src/columnar/CMakeFiles/prost_columnar.dir/partition.cc.o" "gcc" "src/columnar/CMakeFiles/prost_columnar.dir/partition.cc.o.d"
  "/root/repo/src/columnar/table.cc" "src/columnar/CMakeFiles/prost_columnar.dir/table.cc.o" "gcc" "src/columnar/CMakeFiles/prost_columnar.dir/table.cc.o.d"
  "/root/repo/src/columnar/types.cc" "src/columnar/CMakeFiles/prost_columnar.dir/types.cc.o" "gcc" "src/columnar/CMakeFiles/prost_columnar.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prost_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/prost_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
