file(REMOVE_RECURSE
  "libprost_columnar.a"
)
