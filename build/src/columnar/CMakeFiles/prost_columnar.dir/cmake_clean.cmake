file(REMOVE_RECURSE
  "CMakeFiles/prost_columnar.dir/column.cc.o"
  "CMakeFiles/prost_columnar.dir/column.cc.o.d"
  "CMakeFiles/prost_columnar.dir/encoding.cc.o"
  "CMakeFiles/prost_columnar.dir/encoding.cc.o.d"
  "CMakeFiles/prost_columnar.dir/lexical_format.cc.o"
  "CMakeFiles/prost_columnar.dir/lexical_format.cc.o.d"
  "CMakeFiles/prost_columnar.dir/partition.cc.o"
  "CMakeFiles/prost_columnar.dir/partition.cc.o.d"
  "CMakeFiles/prost_columnar.dir/table.cc.o"
  "CMakeFiles/prost_columnar.dir/table.cc.o.d"
  "CMakeFiles/prost_columnar.dir/types.cc.o"
  "CMakeFiles/prost_columnar.dir/types.cc.o.d"
  "libprost_columnar.a"
  "libprost_columnar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prost_columnar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
