file(REMOVE_RECURSE
  "CMakeFiles/prost_baselines.dir/rya.cc.o"
  "CMakeFiles/prost_baselines.dir/rya.cc.o.d"
  "CMakeFiles/prost_baselines.dir/s2rdf.cc.o"
  "CMakeFiles/prost_baselines.dir/s2rdf.cc.o.d"
  "CMakeFiles/prost_baselines.dir/sparqlgx.cc.o"
  "CMakeFiles/prost_baselines.dir/sparqlgx.cc.o.d"
  "CMakeFiles/prost_baselines.dir/system.cc.o"
  "CMakeFiles/prost_baselines.dir/system.cc.o.d"
  "libprost_baselines.a"
  "libprost_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prost_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
