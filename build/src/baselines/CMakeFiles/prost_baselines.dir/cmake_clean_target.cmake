file(REMOVE_RECURSE
  "libprost_baselines.a"
)
