# Empty compiler generated dependencies file for prost_baselines.
# This may be replaced when dependencies are built.
