
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/operators.cc" "src/engine/CMakeFiles/prost_engine.dir/operators.cc.o" "gcc" "src/engine/CMakeFiles/prost_engine.dir/operators.cc.o.d"
  "/root/repo/src/engine/relation.cc" "src/engine/CMakeFiles/prost_engine.dir/relation.cc.o" "gcc" "src/engine/CMakeFiles/prost_engine.dir/relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prost_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/prost_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/prost_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/prost_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
