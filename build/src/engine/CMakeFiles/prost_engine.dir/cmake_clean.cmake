file(REMOVE_RECURSE
  "CMakeFiles/prost_engine.dir/operators.cc.o"
  "CMakeFiles/prost_engine.dir/operators.cc.o.d"
  "CMakeFiles/prost_engine.dir/relation.cc.o"
  "CMakeFiles/prost_engine.dir/relation.cc.o.d"
  "libprost_engine.a"
  "libprost_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prost_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
