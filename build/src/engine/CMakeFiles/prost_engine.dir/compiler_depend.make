# Empty compiler generated dependencies file for prost_engine.
# This may be replaced when dependencies are built.
