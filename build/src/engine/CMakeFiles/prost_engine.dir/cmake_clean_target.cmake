file(REMOVE_RECURSE
  "libprost_engine.a"
)
