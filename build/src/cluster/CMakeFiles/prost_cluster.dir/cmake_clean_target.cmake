file(REMOVE_RECURSE
  "libprost_cluster.a"
)
