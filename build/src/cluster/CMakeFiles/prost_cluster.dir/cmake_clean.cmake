file(REMOVE_RECURSE
  "CMakeFiles/prost_cluster.dir/cost_model.cc.o"
  "CMakeFiles/prost_cluster.dir/cost_model.cc.o.d"
  "libprost_cluster.a"
  "libprost_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prost_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
