# Empty compiler generated dependencies file for prost_cluster.
# This may be replaced when dependencies are built.
