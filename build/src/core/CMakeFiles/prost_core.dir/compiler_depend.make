# Empty compiler generated dependencies file for prost_core.
# This may be replaced when dependencies are built.
