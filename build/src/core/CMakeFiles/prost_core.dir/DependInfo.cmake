
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/executor.cc" "src/core/CMakeFiles/prost_core.dir/executor.cc.o" "gcc" "src/core/CMakeFiles/prost_core.dir/executor.cc.o.d"
  "/root/repo/src/core/join_tree.cc" "src/core/CMakeFiles/prost_core.dir/join_tree.cc.o" "gcc" "src/core/CMakeFiles/prost_core.dir/join_tree.cc.o.d"
  "/root/repo/src/core/modifiers.cc" "src/core/CMakeFiles/prost_core.dir/modifiers.cc.o" "gcc" "src/core/CMakeFiles/prost_core.dir/modifiers.cc.o.d"
  "/root/repo/src/core/property_table.cc" "src/core/CMakeFiles/prost_core.dir/property_table.cc.o" "gcc" "src/core/CMakeFiles/prost_core.dir/property_table.cc.o.d"
  "/root/repo/src/core/prost_db.cc" "src/core/CMakeFiles/prost_core.dir/prost_db.cc.o" "gcc" "src/core/CMakeFiles/prost_core.dir/prost_db.cc.o.d"
  "/root/repo/src/core/statistics.cc" "src/core/CMakeFiles/prost_core.dir/statistics.cc.o" "gcc" "src/core/CMakeFiles/prost_core.dir/statistics.cc.o.d"
  "/root/repo/src/core/translator.cc" "src/core/CMakeFiles/prost_core.dir/translator.cc.o" "gcc" "src/core/CMakeFiles/prost_core.dir/translator.cc.o.d"
  "/root/repo/src/core/vp_store.cc" "src/core/CMakeFiles/prost_core.dir/vp_store.cc.o" "gcc" "src/core/CMakeFiles/prost_core.dir/vp_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prost_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/prost_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/prost_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/prost_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/prost_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/prost_sparql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
