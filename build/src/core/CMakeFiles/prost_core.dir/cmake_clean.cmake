file(REMOVE_RECURSE
  "CMakeFiles/prost_core.dir/executor.cc.o"
  "CMakeFiles/prost_core.dir/executor.cc.o.d"
  "CMakeFiles/prost_core.dir/join_tree.cc.o"
  "CMakeFiles/prost_core.dir/join_tree.cc.o.d"
  "CMakeFiles/prost_core.dir/modifiers.cc.o"
  "CMakeFiles/prost_core.dir/modifiers.cc.o.d"
  "CMakeFiles/prost_core.dir/property_table.cc.o"
  "CMakeFiles/prost_core.dir/property_table.cc.o.d"
  "CMakeFiles/prost_core.dir/prost_db.cc.o"
  "CMakeFiles/prost_core.dir/prost_db.cc.o.d"
  "CMakeFiles/prost_core.dir/statistics.cc.o"
  "CMakeFiles/prost_core.dir/statistics.cc.o.d"
  "CMakeFiles/prost_core.dir/translator.cc.o"
  "CMakeFiles/prost_core.dir/translator.cc.o.d"
  "CMakeFiles/prost_core.dir/vp_store.cc.o"
  "CMakeFiles/prost_core.dir/vp_store.cc.o.d"
  "libprost_core.a"
  "libprost_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prost_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
