file(REMOVE_RECURSE
  "libprost_core.a"
)
