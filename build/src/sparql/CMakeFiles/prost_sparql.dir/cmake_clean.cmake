file(REMOVE_RECURSE
  "CMakeFiles/prost_sparql.dir/algebra.cc.o"
  "CMakeFiles/prost_sparql.dir/algebra.cc.o.d"
  "CMakeFiles/prost_sparql.dir/parser.cc.o"
  "CMakeFiles/prost_sparql.dir/parser.cc.o.d"
  "libprost_sparql.a"
  "libprost_sparql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prost_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
