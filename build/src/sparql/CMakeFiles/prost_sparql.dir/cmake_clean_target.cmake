file(REMOVE_RECURSE
  "libprost_sparql.a"
)
