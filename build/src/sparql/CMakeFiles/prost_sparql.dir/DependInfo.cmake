
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparql/algebra.cc" "src/sparql/CMakeFiles/prost_sparql.dir/algebra.cc.o" "gcc" "src/sparql/CMakeFiles/prost_sparql.dir/algebra.cc.o.d"
  "/root/repo/src/sparql/parser.cc" "src/sparql/CMakeFiles/prost_sparql.dir/parser.cc.o" "gcc" "src/sparql/CMakeFiles/prost_sparql.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prost_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/prost_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
