# Empty dependencies file for prost_sparql.
# This may be replaced when dependencies are built.
