file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_systems.dir/bench_fig3_systems.cpp.o"
  "CMakeFiles/bench_fig3_systems.dir/bench_fig3_systems.cpp.o.d"
  "bench_fig3_systems"
  "bench_fig3_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
