file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stats.dir/bench_ablation_stats.cpp.o"
  "CMakeFiles/bench_ablation_stats.dir/bench_ablation_stats.cpp.o.d"
  "bench_ablation_stats"
  "bench_ablation_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
