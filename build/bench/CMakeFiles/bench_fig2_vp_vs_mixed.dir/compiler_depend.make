# Empty compiler generated dependencies file for bench_fig2_vp_vs_mixed.
# This may be replaced when dependencies are built.
