file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_vp_vs_mixed.dir/bench_fig2_vp_vs_mixed.cpp.o"
  "CMakeFiles/bench_fig2_vp_vs_mixed.dir/bench_fig2_vp_vs_mixed.cpp.o.d"
  "bench_fig2_vp_vs_mixed"
  "bench_fig2_vp_vs_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_vp_vs_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
