file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_loading.dir/bench_table1_loading.cpp.o"
  "CMakeFiles/bench_table1_loading.dir/bench_table1_loading.cpp.o.d"
  "bench_table1_loading"
  "bench_table1_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
