# Empty dependencies file for bench_table1_loading.
# This may be replaced when dependencies are built.
