
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_averages.cpp" "bench/CMakeFiles/bench_table2_averages.dir/bench_table2_averages.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_averages.dir/bench_table2_averages.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/prost_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/prost_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/prost_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/prost_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/prost_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/prost_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/prost_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/watdiv/CMakeFiles/prost_watdiv.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/prost_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/prost_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
