# Empty dependencies file for bench_fw_precise_stats.
# This may be replaced when dependencies are built.
