file(REMOVE_RECURSE
  "CMakeFiles/bench_fw_precise_stats.dir/bench_fw_precise_stats.cpp.o"
  "CMakeFiles/bench_fw_precise_stats.dir/bench_fw_precise_stats.cpp.o.d"
  "bench_fw_precise_stats"
  "bench_fw_precise_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fw_precise_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
