# Empty compiler generated dependencies file for bench_fw_reverse_pt.
# This may be replaced when dependencies are built.
