file(REMOVE_RECURSE
  "CMakeFiles/bench_fw_reverse_pt.dir/bench_fw_reverse_pt.cpp.o"
  "CMakeFiles/bench_fw_reverse_pt.dir/bench_fw_reverse_pt.cpp.o.d"
  "bench_fw_reverse_pt"
  "bench_fw_reverse_pt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fw_reverse_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
