file(REMOVE_RECURSE
  "CMakeFiles/watdiv_test.dir/watdiv_test.cpp.o"
  "CMakeFiles/watdiv_test.dir/watdiv_test.cpp.o.d"
  "watdiv_test"
  "watdiv_test.pdb"
  "watdiv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/watdiv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
