#include "stats/cardinality_estimator.h"

#include <algorithm>
#include <cmath>

namespace prost::stats {
namespace {

double Floor(double value) { return std::max(value, kMinEstimatedRows); }

}  // namespace

const rdf::PredicateStats* CardinalityEstimator::Lookup(
    rdf::TermId predicate) const {
  if (per_predicate_ == nullptr) return nullptr;
  const auto it = per_predicate_->find(predicate);
  return it == per_predicate_->end() ? nullptr : &it->second;
}

double CardinalityEstimator::StarKeyCount(const StarDescriptor& scan) const {
  // Characteristic sets answer "how many subjects carry all of these
  // predicates" exactly; they only apply to subject-keyed stars.
  if (!scan.key_is_object && has_characteristic_sets()) {
    std::vector<rdf::TermId> predicates;
    predicates.reserve(scan.patterns.size());
    for (const PatternDescriptor& p : scan.patterns) {
      predicates.push_back(p.predicate);
    }
    return static_cast<double>(
        characteristic_sets_->CountStarSubjects(predicates));
  }
  // Independence fallback: prod_p d_p / U^(k-1) with U the largest
  // per-predicate distinct count in the star (so a single pattern is just
  // d_p, and every extra pattern scales by its hit rate against U).
  double product = 1.0;
  double universe = 1.0;
  for (const PatternDescriptor& p : scan.patterns) {
    const rdf::PredicateStats* stats = Lookup(p.predicate);
    if (stats == nullptr || stats->triple_count == 0) return 0.0;
    const double distinct = static_cast<double>(
        scan.key_is_object ? stats->distinct_objects
                           : stats->distinct_subjects);
    product *= distinct;
    universe = std::max(universe, distinct);
  }
  for (size_t i = 1; i < scan.patterns.size(); ++i) product /= universe;
  return product;
}

double CardinalityEstimator::StarRows(const StarDescriptor& scan) const {
  if (!scan.key_is_object && has_characteristic_sets()) {
    std::vector<rdf::TermId> predicates;
    predicates.reserve(scan.patterns.size());
    for (const PatternDescriptor& p : scan.patterns) {
      predicates.push_back(p.predicate);
    }
    return characteristic_sets_->EstimateStarRows(predicates);
  }
  // Keys that survive every pattern, each multiplied by its average
  // per-key multiplicity under each predicate.
  double rows = StarKeyCount(scan);
  for (const PatternDescriptor& p : scan.patterns) {
    const rdf::PredicateStats* stats = Lookup(p.predicate);
    if (stats == nullptr || stats->triple_count == 0) return 0.0;
    const uint64_t distinct = scan.key_is_object ? stats->distinct_objects
                                                 : stats->distinct_subjects;
    if (distinct == 0) return 0.0;
    rows *= static_cast<double>(stats->triple_count) /
            static_cast<double>(distinct);
  }
  return rows;
}

double CardinalityEstimator::EstimateScanRows(
    const StarDescriptor& scan) const {
  if (scan.patterns.empty()) return kMinEstimatedRows;
  double rows = StarRows(scan);
  // Constant bindings select a fraction of the key / value domains.
  const double keys = StarKeyCount(scan);
  bool key_constant = false;
  for (const PatternDescriptor& p : scan.patterns) {
    const bool on_key =
        scan.key_is_object ? p.object_is_constant : p.subject_is_constant;
    if (on_key) key_constant = true;
    const bool on_value =
        scan.key_is_object ? p.subject_is_constant : p.object_is_constant;
    if (on_value) {
      const rdf::PredicateStats* stats = Lookup(p.predicate);
      if (stats == nullptr) return kMinEstimatedRows;
      const uint64_t distinct = scan.key_is_object ? stats->distinct_subjects
                                                   : stats->distinct_objects;
      rows /= static_cast<double>(std::max<uint64_t>(distinct, 1));
    }
  }
  if (key_constant) rows /= std::max(keys, 1.0);
  return Floor(rows);
}

double CardinalityEstimator::EstimateKeyDistinct(
    const StarDescriptor& scan) const {
  for (const PatternDescriptor& p : scan.patterns) {
    const bool on_key =
        scan.key_is_object ? p.object_is_constant : p.subject_is_constant;
    if (on_key) return 1.0;
  }
  return Floor(StarKeyCount(scan));
}

double CardinalityEstimator::EstimateValueDistinct(const StarDescriptor& scan,
                                                   size_t pattern_index,
                                                   double scan_rows) const {
  const PatternDescriptor& pattern = scan.patterns[pattern_index];
  const rdf::PredicateStats* stats = Lookup(pattern.predicate);
  if (stats == nullptr) return 1.0;
  const uint64_t raw = scan.key_is_object ? stats->distinct_subjects
                                          : stats->distinct_objects;
  const double distinct = static_cast<double>(std::max<uint64_t>(raw, 1));
  return Floor(std::min(distinct, std::max(scan_rows, 1.0)));
}

double CardinalityEstimator::StarRowsExact(
    const std::vector<rdf::TermId>& predicates) const {
  if (!has_characteristic_sets()) return -1.0;
  return characteristic_sets_->EstimateStarRows(predicates);
}

double CardinalityEstimator::StarSubjectsExact(
    const std::vector<rdf::TermId>& predicates) const {
  if (!has_characteristic_sets()) return -1.0;
  return static_cast<double>(
      characteristic_sets_->CountStarSubjects(predicates));
}

double CardinalityEstimator::EstimateJoinRows(double left_rows,
                                              double left_distinct,
                                              double right_rows,
                                              double right_distinct) {
  const double denominator =
      std::max(std::max(left_distinct, right_distinct), 1.0);
  return Floor(left_rows * right_rows / denominator);
}

}  // namespace prost::stats
