#ifndef PROST_STATS_PREDICATE_INDEX_H_
#define PROST_STATS_PREDICATE_INDEX_H_

#include <cstdint>
#include <map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "rdf/graph.h"
#include "rdf/triple.h"

namespace prost::stats {

/// Per-predicate (subject, object) rows plus membership sets over both
/// columns. This is the raw material for selectivity computations that
/// need actual term sets rather than just counts: semi-join reductions
/// (S2RDF's ExtVP tables), distinct counts, and overlap estimates.
struct PredicateEntry {
  std::vector<std::pair<rdf::TermId, rdf::TermId>> rows;
  std::unordered_set<rdf::TermId> subjects;
  std::unordered_set<rdf::TermId> objects;
};

/// One pass over the encoded graph, grouped by predicate. Immutable after
/// Build, so it is safe to share across threads.
class PredicateIndex {
 public:
  static PredicateIndex Build(const rdf::EncodedGraph& graph);

  /// Returns the entry for `predicate`, or nullptr when absent.
  const PredicateEntry* Find(rdf::TermId predicate) const;

  const std::map<rdf::TermId, PredicateEntry>& entries() const {
    return entries_;
  }

 private:
  std::map<rdf::TermId, PredicateEntry> entries_;
};

}  // namespace prost::stats

#endif  // PROST_STATS_PREDICATE_INDEX_H_
