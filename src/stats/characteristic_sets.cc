#include "stats/characteristic_sets.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/io.h"
#include "common/str_util.h"

namespace prost::stats {
namespace {

// Returns the sorted distinct ids of `predicates`.
std::vector<rdf::TermId> Canonical(std::vector<rdf::TermId> predicates) {
  std::sort(predicates.begin(), predicates.end());
  predicates.erase(std::unique(predicates.begin(), predicates.end()),
                   predicates.end());
  return predicates;
}

// True when sorted `sub` is a subset of sorted `super`.
bool IsSubsetOf(const std::vector<rdf::TermId>& sub,
                const std::vector<rdf::TermId>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

}  // namespace

void CharacteristicSets::Builder::Add(rdf::TermId subject,
                                      rdf::TermId predicate) {
  ++by_subject_[subject][predicate];
}

CharacteristicSets CharacteristicSets::Builder::Build() && {
  // Group subjects by their (sorted) distinct-predicate signature and
  // accumulate per-predicate triple totals.
  struct Accumulator {
    uint64_t subject_count = 0;
    std::vector<uint64_t> occurrences;
  };
  std::map<std::vector<rdf::TermId>, Accumulator> by_signature;
  for (const auto& [subject, predicate_counts] : by_subject_) {
    (void)subject;
    std::vector<rdf::TermId> signature;
    signature.reserve(predicate_counts.size());
    for (const auto& [predicate, count] : predicate_counts) {
      (void)count;
      signature.push_back(predicate);
    }
    Accumulator& acc = by_signature[signature];
    if (acc.occurrences.empty()) acc.occurrences.resize(signature.size(), 0);
    ++acc.subject_count;
    size_t i = 0;
    for (const auto& [predicate, count] : predicate_counts) {
      (void)predicate;
      acc.occurrences[i++] += count;
    }
  }

  CharacteristicSets result;
  result.sets_.reserve(by_signature.size());
  for (auto& [signature, acc] : by_signature) {
    CharacteristicSet set;
    set.predicates = signature;
    set.subject_count = acc.subject_count;
    set.occurrences = std::move(acc.occurrences);
    result.total_subjects_ += set.subject_count;
    result.sets_.push_back(std::move(set));
  }
  return result;
}

CharacteristicSets CharacteristicSets::Compute(const rdf::EncodedGraph& graph) {
  Builder builder;
  for (const auto& triple : graph.triples()) {
    builder.Add(triple.subject, triple.predicate);
  }
  return std::move(builder).Build();
}

uint64_t CharacteristicSets::CountStarSubjects(
    const std::vector<rdf::TermId>& predicates) const {
  const std::vector<rdf::TermId> query = Canonical(predicates);
  uint64_t subjects = 0;
  for (const CharacteristicSet& set : sets_) {
    if (set.predicates.size() < query.size()) continue;
    if (IsSubsetOf(query, set.predicates)) subjects += set.subject_count;
  }
  return subjects;
}

double CharacteristicSets::EstimateStarRows(
    const std::vector<rdf::TermId>& predicates) const {
  const std::vector<rdf::TermId> query = Canonical(predicates);
  double rows = 0.0;
  for (const CharacteristicSet& set : sets_) {
    if (set.predicates.size() < query.size()) continue;
    if (!IsSubsetOf(query, set.predicates)) continue;
    // count(S) subjects each contribute the product of their average
    // per-predicate multiplicities occ_p(S) / count(S).
    double per_subject = 1.0;
    for (rdf::TermId predicate : query) {
      const auto it = std::lower_bound(set.predicates.begin(),
                                       set.predicates.end(), predicate);
      const size_t index =
          static_cast<size_t>(it - set.predicates.begin());
      per_subject *= static_cast<double>(set.occurrences[index]) /
                     static_cast<double>(set.subject_count);
    }
    rows += static_cast<double>(set.subject_count) * per_subject;
  }
  return rows;
}

Status CharacteristicSets::WriteTo(const std::string& path,
                                   const rdf::Dictionary& dictionary) const {
  std::string out;
  out += StrFormat("charsets 1 %zu\n", sets_.size());
  for (const CharacteristicSet& set : sets_) {
    out += StrFormat("%llu\t%zu",
                             static_cast<unsigned long long>(set.subject_count),
                             set.predicates.size());
    for (size_t i = 0; i < set.predicates.size(); ++i) {
      auto lexical = dictionary.LookupId(set.predicates[i]);
      if (!lexical.ok()) return lexical.status();
      out += StrFormat(
          "\t%s\t%llu", std::string(lexical.value()).c_str(),
          static_cast<unsigned long long>(set.occurrences[i]));
    }
    out += '\n';
  }
  return WriteStringToFile(path, out);
}

Result<CharacteristicSets> CharacteristicSets::ReadFrom(
    const std::string& path, rdf::Dictionary& dictionary) {
  std::string contents;
  PROST_RETURN_IF_ERROR(ReadFileToString(path, &contents));
  std::vector<std::string> lines = StrSplit(contents, '\n');
  if (lines.empty() || lines[0].rfind("charsets 1 ", 0) != 0) {
    return Status::Corruption("characteristic-set file header missing: " +
                              path);
  }
  CharacteristicSets result;
  for (size_t line_no = 1; line_no < lines.size(); ++line_no) {
    const std::string& line = lines[line_no];
    if (line.empty()) continue;
    std::vector<std::string> parts = StrSplit(line, '\t');
    if (parts.size() < 2) {
      return Status::Corruption("bad characteristic-set line in " + path);
    }
    CharacteristicSet set;
    set.subject_count = std::strtoull(parts[0].c_str(), nullptr, 10);
    const size_t num_predicates = std::strtoull(parts[1].c_str(), nullptr, 10);
    if (parts.size() != 2 + 2 * num_predicates || set.subject_count == 0) {
      return Status::Corruption("bad characteristic-set line in " + path);
    }
    // Re-intern: ids in the file's writing session are meaningless here.
    std::vector<std::pair<rdf::TermId, uint64_t>> entries;
    entries.reserve(num_predicates);
    for (size_t i = 0; i < num_predicates; ++i) {
      const rdf::TermId id = dictionary.Intern(parts[2 + 2 * i]);
      entries.emplace_back(id,
                           std::strtoull(parts[3 + 2 * i].c_str(), nullptr, 10));
    }
    std::sort(entries.begin(), entries.end());
    for (const auto& [id, occ] : entries) {
      set.predicates.push_back(id);
      set.occurrences.push_back(occ);
    }
    result.total_subjects_ += set.subject_count;
    result.sets_.push_back(std::move(set));
  }
  // Keep the in-memory order canonical (sorted by signature) so a
  // round-trip is structurally identical to a fresh Compute().
  std::sort(result.sets_.begin(), result.sets_.end(),
            [](const CharacteristicSet& a, const CharacteristicSet& b) {
              return a.predicates < b.predicates;
            });
  return result;
}

}  // namespace prost::stats
