#ifndef PROST_STATS_CHARACTERISTIC_SETS_H_
#define PROST_STATS_CHARACTERISTIC_SETS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"

namespace prost::stats {

/// One characteristic set (Neumann & Moerkotte, "Characteristic Sets:
/// Accurate Cardinality Estimation for RDF Queries with Multiple Joins",
/// ICDE 2011): the exact set of predicates emitted by some group of
/// subjects, how many subjects share that signature, and how many triples
/// those subjects contribute per predicate. Star-shaped query cardinality
/// is then a sum over the signatures that are supersets of the query's
/// predicate set — exact for the subject-count part, and off only by
/// per-predicate multiplicity correlation for the row-count part.
struct CharacteristicSet {
  /// Sorted, distinct predicate ids forming the signature.
  std::vector<rdf::TermId> predicates;
  /// Subjects whose distinct-predicate set is exactly `predicates`.
  uint64_t subject_count = 0;
  /// Total triples those subjects hold per predicate, aligned with
  /// `predicates` (>= subject_count per entry; > means multi-valued).
  std::vector<uint64_t> occurrences;
};

/// The full collection of characteristic sets for one dataset. Immutable
/// after construction, so it is safe to share across concurrent queries.
class CharacteristicSets {
 public:
  /// Incremental construction from (subject, predicate) pairs. Used both
  /// at initial load (from the encoded graph) and when re-opening a
  /// persisted store whose raw triples are gone but whose VP partitions
  /// still carry every (subject, predicate) pair.
  class Builder {
   public:
    void Add(rdf::TermId subject, rdf::TermId predicate);
    CharacteristicSets Build() &&;

   private:
    std::map<rdf::TermId, std::map<rdf::TermId, uint64_t>> by_subject_;
  };

  CharacteristicSets() = default;

  static CharacteristicSets Compute(const rdf::EncodedGraph& graph);

  const std::vector<CharacteristicSet>& sets() const { return sets_; }
  size_t num_sets() const { return sets_.size(); }
  uint64_t total_subjects() const { return total_subjects_; }

  /// Number of distinct subjects that carry *every* predicate in
  /// `predicates` (ids need not be sorted; duplicates are ignored).
  /// This is exact, not an estimate.
  uint64_t CountStarSubjects(const std::vector<rdf::TermId>& predicates) const;

  /// Expected output rows of a subject-star join over `predicates`
  /// (one scan per predicate, all joined on a shared subject):
  ///   sum over supersets S of count(S) * prod_p occ_p(S) / count(S),
  /// i.e. subjects weighted by their expected per-predicate multiplicity
  /// product. Returns 0 when no signature covers the set.
  double EstimateStarRows(const std::vector<rdf::TermId>& predicates) const;

  /// Persists the sets keyed on *lexical* predicate forms, because term
  /// ids are re-assigned when a persisted store is re-interned on open.
  Status WriteTo(const std::string& path,
                 const rdf::Dictionary& dictionary) const;

  /// Reads a file written by WriteTo, interning predicate lexical forms
  /// into `dictionary` (which may assign different ids than the writer).
  static Result<CharacteristicSets> ReadFrom(const std::string& path,
                                             rdf::Dictionary& dictionary);

 private:
  std::vector<CharacteristicSet> sets_;
  uint64_t total_subjects_ = 0;
};

}  // namespace prost::stats

#endif  // PROST_STATS_CHARACTERISTIC_SETS_H_
