#ifndef PROST_STATS_CARDINALITY_ESTIMATOR_H_
#define PROST_STATS_CARDINALITY_ESTIMATOR_H_

#include <map>
#include <vector>

#include "rdf/graph.h"
#include "rdf/triple.h"
#include "stats/characteristic_sets.h"

namespace prost::stats {

/// Estimates are floored at this value so selectivity products never
/// collapse to an absorbing zero (matches the storage-layer convention).
inline constexpr double kMinEstimatedRows = 1e-3;

/// One triple pattern as the estimator sees it: which predicate it scans
/// and which of its endpoints are bound to constants. Variable names are
/// deliberately absent — the caller owns variable identity; the estimator
/// only needs the shape.
struct PatternDescriptor {
  rdf::TermId predicate = rdf::kNullTermId;
  bool subject_is_constant = false;
  bool object_is_constant = false;
};

/// A scan: one pattern (vertical-partition scan) or several patterns
/// sharing a key variable (property-table star scan). `key_is_object`
/// marks reverse-property-table scans, whose shared key is the object.
struct StarDescriptor {
  bool key_is_object = false;
  std::vector<PatternDescriptor> patterns;
};

/// Cardinality estimation over per-predicate statistics plus (optional)
/// characteristic sets. Per-predicate counts give exact single-pattern
/// cardinalities; characteristic sets make star estimates near-exact;
/// everything else degrades to attribute-independence formulas.
///
/// The estimator borrows the statistics maps it is given — they must
/// outlive it (in practice both live on the same store object). It is
/// immutable after construction and safe to share across threads.
class CardinalityEstimator {
 public:
  CardinalityEstimator(
      const std::map<rdf::TermId, rdf::PredicateStats>* per_predicate,
      const CharacteristicSets* characteristic_sets)
      : per_predicate_(per_predicate),
        characteristic_sets_(characteristic_sets) {}

  /// Expected output rows of the scan.
  double EstimateScanRows(const StarDescriptor& scan) const;

  /// Expected distinct values the scan's key column carries (1 when the
  /// key is constant). This is the denominator material for key joins.
  double EstimateKeyDistinct(const StarDescriptor& scan) const;

  /// Expected distinct values of pattern `pattern_index`'s value column
  /// (the non-key endpoint) within a scan producing `scan_rows` rows.
  double EstimateValueDistinct(const StarDescriptor& scan,
                               size_t pattern_index, double scan_rows) const;

  /// Independence-assumption equi-join estimate on one shared variable:
  ///   |L| * |R| / max(d_L, d_R).
  static double EstimateJoinRows(double left_rows, double left_distinct,
                                 double right_rows, double right_distinct);

  /// Exact subject-star cardinality over the characteristic sets: the
  /// rows of joining the full VP tables of `predicates` on their shared
  /// subject. Negative when characteristic sets are unavailable — callers
  /// fall back to independence.
  double StarRowsExact(const std::vector<rdf::TermId>& predicates) const;

  /// Exact count of subjects carrying every predicate in `predicates`
  /// (the distinct key values of the star above). Negative when
  /// characteristic sets are unavailable.
  double StarSubjectsExact(const std::vector<rdf::TermId>& predicates) const;

  const rdf::PredicateStats* Lookup(rdf::TermId predicate) const;
  bool has_characteristic_sets() const {
    return characteristic_sets_ != nullptr &&
           characteristic_sets_->num_sets() > 0;
  }

 private:
  // Distinct key values carried by the star before constant bindings.
  double StarKeyCount(const StarDescriptor& scan) const;
  // Expected rows of the star before constant bindings.
  double StarRows(const StarDescriptor& scan) const;

  const std::map<rdf::TermId, rdf::PredicateStats>* per_predicate_;
  const CharacteristicSets* characteristic_sets_;
};

}  // namespace prost::stats

#endif  // PROST_STATS_CARDINALITY_ESTIMATOR_H_
