#include "stats/predicate_index.h"

namespace prost::stats {

PredicateIndex PredicateIndex::Build(const rdf::EncodedGraph& graph) {
  PredicateIndex index;
  for (const auto& triple : graph.triples()) {
    PredicateEntry& entry = index.entries_[triple.predicate];
    entry.rows.emplace_back(triple.subject, triple.object);
    entry.subjects.insert(triple.subject);
    entry.objects.insert(triple.object);
  }
  return index;
}

const PredicateEntry* PredicateIndex::Find(rdf::TermId predicate) const {
  const auto it = entries_.find(predicate);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace prost::stats
