#ifndef PROST_WATDIV_QUERIES_H_
#define PROST_WATDIV_QUERIES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sparql/algebra.h"
#include "watdiv/generator.h"

namespace prost::watdiv {

/// One instantiated query from the WatDiv basic query set.
struct WatDivQuery {
  std::string id;     // "C1".."C3", "F1".."F5", "L1".."L5", "S1".."S7"
  char query_class;   // 'C', 'F', 'L', 'S'
  std::string sparql;
};

/// The 20 WatDiv basic query templates (§4.1: complex, snowflake, linear,
/// star), instantiated against `dataset` with popular entities so every
/// query has non-empty results. Shapes follow the original templates;
/// placeholders (%vN%) are bound deterministically.
std::vector<WatDivQuery> BasicQuerySet(const WatDivDataset& dataset);

/// Parses every query in the set (convenience used by tests and benches).
Result<std::vector<sparql::Query>> ParseQuerySet(
    const std::vector<WatDivQuery>& queries);

}  // namespace prost::watdiv

#endif  // PROST_WATDIV_QUERIES_H_
