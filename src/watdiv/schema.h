#ifndef PROST_WATDIV_SCHEMA_H_
#define PROST_WATDIV_SCHEMA_H_

#include <cstdint>
#include <string>

namespace prost::watdiv {

/// Namespace IRIs of the WatDiv universe (Waterloo SPARQL Diversity Test
/// Suite). The reproduction uses the original prefixes so generated data
/// and queries read like real WatDiv output.
inline constexpr const char* kWsdbm = "http://db.uwaterloo.ca/~galuc/wsdbm/";
inline constexpr const char* kSorg = "http://schema.org/";
inline constexpr const char* kFoaf = "http://xmlns.com/foaf/";
inline constexpr const char* kGr = "http://purl.org/goodrelations/";
inline constexpr const char* kRev = "http://purl.org/stuff/rev#";
inline constexpr const char* kOg = "http://ogp.me/ns#";
inline constexpr const char* kDc = "http://purl.org/dc/terms/";
inline constexpr const char* kGn = "http://www.geonames.org/ontology#";
inline constexpr const char* kMo = "http://purl.org/ontology/mo/";
inline constexpr const char* kRdf =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#";

/// Predicate IRIs (the subset of WatDiv's ~86 predicates that the basic
/// query templates touch, plus enough filler attributes to reproduce the
/// NULL-heavy Property Table shape).
struct Predicates {
  // User.
  static std::string type() { return std::string(kRdf) + "type"; }
  static std::string friendOf() { return std::string(kWsdbm) + "friendOf"; }
  static std::string follows() { return std::string(kWsdbm) + "follows"; }
  static std::string likes() { return std::string(kWsdbm) + "likes"; }
  static std::string subscribes() {
    return std::string(kWsdbm) + "subscribes";
  }
  static std::string makesPurchase() {
    return std::string(kWsdbm) + "makesPurchase";
  }
  static std::string userId() { return std::string(kWsdbm) + "userId"; }
  static std::string gender() { return std::string(kWsdbm) + "gender"; }
  static std::string age() { return std::string(kFoaf) + "age"; }
  static std::string givenName() { return std::string(kFoaf) + "givenName"; }
  static std::string familyName() {
    return std::string(kFoaf) + "familyName";
  }
  static std::string homepage() { return std::string(kFoaf) + "homepage"; }
  static std::string nationality() {
    return std::string(kSorg) + "nationality";
  }
  static std::string location() { return std::string(kDc) + "Location"; }
  static std::string jobTitle() { return std::string(kSorg) + "jobTitle"; }
  static std::string email() { return std::string(kSorg) + "email"; }

  // Product.
  static std::string caption() { return std::string(kSorg) + "caption"; }
  static std::string description() {
    return std::string(kSorg) + "description";
  }
  static std::string keywords() { return std::string(kSorg) + "keywords"; }
  static std::string text() { return std::string(kSorg) + "text"; }
  static std::string contentRating() {
    return std::string(kSorg) + "contentRating";
  }
  static std::string contentSize() {
    return std::string(kSorg) + "contentSize";
  }
  static std::string language() { return std::string(kSorg) + "language"; }
  static std::string publisher() { return std::string(kSorg) + "publisher"; }
  static std::string author() { return std::string(kSorg) + "author"; }
  static std::string editor() { return std::string(kSorg) + "editor"; }
  static std::string actor() { return std::string(kSorg) + "actor"; }
  static std::string trailer() { return std::string(kSorg) + "trailer"; }
  static std::string hasGenre() { return std::string(kWsdbm) + "hasGenre"; }
  static std::string tag() { return std::string(kOg) + "tag"; }
  static std::string title() { return std::string(kOg) + "title"; }
  static std::string artist() { return std::string(kMo) + "artist"; }
  static std::string conductor() { return std::string(kMo) + "conductor"; }

  // Review.
  static std::string hasReview() { return std::string(kRev) + "hasReview"; }
  static std::string reviewer() { return std::string(kRev) + "reviewer"; }
  static std::string revTitle() { return std::string(kRev) + "title"; }
  static std::string revText() { return std::string(kRev) + "text"; }
  static std::string rating() { return std::string(kRev) + "rating"; }
  static std::string totalVotes() {
    return std::string(kRev) + "totalVotes";
  }

  // Offer / Retailer.
  static std::string offers() { return std::string(kGr) + "offers"; }
  static std::string includes() { return std::string(kGr) + "includes"; }
  static std::string price() { return std::string(kGr) + "price"; }
  static std::string serialNumber() {
    return std::string(kGr) + "serialNumber";
  }
  static std::string validFrom() { return std::string(kGr) + "validFrom"; }
  static std::string validThrough() {
    return std::string(kGr) + "validThrough";
  }
  static std::string eligibleRegion() {
    return std::string(kSorg) + "eligibleRegion";
  }
  static std::string eligibleQuantity() {
    return std::string(kSorg) + "eligibleQuantity";
  }
  static std::string priceValidUntil() {
    return std::string(kSorg) + "priceValidUntil";
  }
  static std::string legalName() { return std::string(kSorg) + "legalName"; }
  static std::string paymentAccepted() {
    return std::string(kSorg) + "paymentAccepted";
  }
  static std::string openingHours() {
    return std::string(kSorg) + "openingHours";
  }
  static std::string telephone() { return std::string(kSorg) + "telephone"; }

  // Purchase.
  static std::string purchaseFor() {
    return std::string(kWsdbm) + "purchaseFor";
  }
  static std::string purchaseDate() {
    return std::string(kWsdbm) + "purchaseDate";
  }

  // Website / City.
  static std::string url() { return std::string(kSorg) + "url"; }
  static std::string hits() { return std::string(kWsdbm) + "hits"; }
  static std::string parentCountry() {
    return std::string(kGn) + "parentCountry";
  }
};

/// Entity IRI construction (wsdbm:User123 style).
std::string UserIri(uint64_t i);
std::string ProductIri(uint64_t i);
std::string RetailerIri(uint64_t i);
std::string WebsiteIri(uint64_t i);
std::string CityIri(uint64_t i);
std::string CountryIri(uint64_t i);
std::string SubGenreIri(uint64_t i);
std::string TopicIri(uint64_t i);
std::string LanguageIri(uint64_t i);
std::string ReviewIri(uint64_t i);
std::string OfferIri(uint64_t i);
std::string PurchaseIri(uint64_t i);
std::string RoleIri(uint64_t i);
std::string ProductCategoryIri(uint64_t i);
std::string AgeGroupIri(uint64_t i);
std::string GenderIri(uint64_t i);

}  // namespace prost::watdiv

#endif  // PROST_WATDIV_SCHEMA_H_
