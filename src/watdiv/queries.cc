#include "watdiv/queries.h"

#include "common/str_util.h"
#include "sparql/parser.h"
#include "watdiv/schema.h"

namespace prost::watdiv {
namespace {

/// Common prologue: every template starts from the same prefix set.
std::string Prologue() {
  std::string out;
  out += StrFormat("PREFIX wsdbm: <%s>\n", kWsdbm);
  out += StrFormat("PREFIX sorg: <%s>\n", kSorg);
  out += StrFormat("PREFIX foaf: <%s>\n", kFoaf);
  out += StrFormat("PREFIX gr: <%s>\n", kGr);
  out += StrFormat("PREFIX rev: <%s>\n", kRev);
  out += StrFormat("PREFIX og: <%s>\n", kOg);
  out += StrFormat("PREFIX dc: <%s>\n", kDc);
  out += StrFormat("PREFIX gn: <%s>\n", kGn);
  out += StrFormat("PREFIX mo: <%s>\n", kMo);
  out += StrFormat("PREFIX rdf: <%s>\n", kRdf);
  return out;
}

WatDivQuery Make(const char* id, char query_class, const std::string& body) {
  return WatDivQuery{id, query_class, Prologue() + body};
}

}  // namespace

std::vector<WatDivQuery> BasicQuerySet(const WatDivDataset&) {
  // Placeholders are bound to popular (low-rank) entities, which the
  // generator guarantees exist and are well connected. The shapes follow
  // the original WatDiv basic templates; deviations (attribute renames
  // and the projection lists of F4/L1) are documented in DESIGN.md.
  // Projections follow the original templates where they are subsets
  // (C1/C2/C3/F2); the rest project every variable, written SELECT *.
  std::vector<WatDivQuery> queries;

  // ---- Complex ----
  queries.push_back(Make("C1", 'C', R"(
SELECT ?v0 ?v4 ?v6 ?v7 WHERE {
  ?v0 sorg:caption ?v1 .
  ?v0 sorg:text ?v2 .
  ?v0 sorg:contentRating ?v3 .
  ?v0 rev:hasReview ?v4 .
  ?v4 rev:title ?v5 .
  ?v4 rev:reviewer ?v6 .
  ?v7 sorg:actor ?v6 .
  ?v7 sorg:language ?v8 .
})"));

  queries.push_back(Make("C2", 'C', R"(
SELECT ?v0 ?v3 ?v4 ?v7 WHERE {
  ?v0 sorg:legalName ?v1 .
  ?v0 gr:offers ?v2 .
  ?v2 sorg:eligibleRegion wsdbm:Country5 .
  ?v2 gr:includes ?v3 .
  ?v4 sorg:jobTitle ?v5 .
  ?v4 wsdbm:makesPurchase ?v6 .
  ?v6 wsdbm:purchaseFor ?v3 .
  ?v3 rev:hasReview ?v7 .
  ?v7 rev:totalVotes ?v8 .
})"));

  queries.push_back(Make("C3", 'C', R"(
SELECT ?v0 WHERE {
  ?v0 wsdbm:likes ?v1 .
  ?v0 wsdbm:friendOf ?v2 .
  ?v0 dc:Location ?v3 .
  ?v0 foaf:age ?v4 .
  ?v0 wsdbm:gender ?v5 .
  ?v0 foaf:givenName ?v6 .
})"));

  // ---- Snowflake ----
  queries.push_back(Make("F1", 'F', R"(
SELECT * WHERE {
  ?v0 og:tag wsdbm:Topic0 .
  ?v0 rdf:type ?v2 .
  ?v3 sorg:trailer ?v4 .
  ?v3 sorg:keywords ?v5 .
  ?v3 wsdbm:hasGenre ?v0 .
  ?v3 rdf:type wsdbm:ProductCategory2 .
})"));

  queries.push_back(Make("F2", 'F', R"(
SELECT ?v0 ?v1 ?v2 ?v4 ?v5 ?v6 ?v7 WHERE {
  ?v0 foaf:homepage ?v1 .
  ?v0 og:title ?v2 .
  ?v0 rdf:type ?v3 .
  ?v0 sorg:caption ?v4 .
  ?v0 sorg:description ?v5 .
  ?v1 sorg:url ?v6 .
  ?v1 wsdbm:hits ?v7 .
  ?v0 wsdbm:hasGenre wsdbm:SubGenre0 .
})"));

  queries.push_back(Make("F3", 'F', R"(
SELECT * WHERE {
  ?v0 sorg:contentRating ?v1 .
  ?v0 sorg:contentSize ?v2 .
  ?v0 wsdbm:hasGenre wsdbm:SubGenre0 .
  ?v4 wsdbm:makesPurchase ?v5 .
  ?v5 wsdbm:purchaseDate ?v6 .
  ?v5 wsdbm:purchaseFor ?v0 .
})"));

  queries.push_back(Make("F4", 'F', R"(
SELECT ?v0 ?v1 ?v2 ?v4 ?v5 ?v7 WHERE {
  ?v0 foaf:homepage ?v1 .
  ?v2 gr:includes ?v0 .
  ?v0 og:tag wsdbm:Topic0 .
  ?v0 sorg:description ?v4 .
  ?v0 sorg:contentSize ?v8 .
  ?v1 sorg:url ?v5 .
  ?v1 wsdbm:hits ?v6 .
  ?v1 sorg:language wsdbm:Language0 .
  ?v7 wsdbm:likes ?v0 .
})"));

  queries.push_back(Make("F5", 'F', R"(
SELECT * WHERE {
  ?v0 gr:includes ?v1 .
  wsdbm:Retailer0 gr:offers ?v0 .
  ?v0 gr:price ?v3 .
  ?v0 gr:validThrough ?v4 .
  ?v1 og:title ?v5 .
  ?v1 rdf:type ?v6 .
})"));

  // ---- Linear ----
  queries.push_back(Make("L1", 'L', R"(
SELECT ?v0 ?v2 WHERE {
  ?v0 wsdbm:subscribes wsdbm:Website0 .
  ?v2 sorg:caption ?v3 .
  ?v0 wsdbm:likes ?v2 .
})"));

  queries.push_back(Make("L2", 'L', R"(
SELECT * WHERE {
  wsdbm:City0 gn:parentCountry ?v1 .
  ?v2 wsdbm:likes wsdbm:Product0 .
  ?v2 sorg:nationality ?v1 .
})"));

  queries.push_back(Make("L3", 'L', R"(
SELECT * WHERE {
  ?v0 wsdbm:likes ?v1 .
  ?v0 wsdbm:subscribes wsdbm:Website0 .
})"));

  queries.push_back(Make("L4", 'L', R"(
SELECT * WHERE {
  ?v0 og:tag wsdbm:Topic0 .
  ?v0 sorg:caption ?v2 .
})"));

  queries.push_back(Make("L5", 'L', R"(
SELECT * WHERE {
  ?v0 sorg:jobTitle ?v1 .
  wsdbm:City0 gn:parentCountry ?v3 .
  ?v0 sorg:nationality ?v3 .
})"));

  // ---- Star ----
  queries.push_back(Make("S1", 'S', R"(
SELECT * WHERE {
  ?v0 gr:includes ?v1 .
  wsdbm:Retailer0 gr:offers ?v0 .
  ?v0 gr:price ?v2 .
  ?v0 gr:serialNumber ?v3 .
  ?v0 gr:validFrom ?v4 .
  ?v0 gr:validThrough ?v5 .
  ?v0 sorg:eligibleQuantity ?v6 .
  ?v0 sorg:eligibleRegion ?v7 .
  ?v0 sorg:priceValidUntil ?v8 .
})"));

  queries.push_back(Make("S2", 'S', R"(
SELECT * WHERE {
  ?v0 dc:Location wsdbm:City0 .
  ?v0 sorg:nationality ?v1 .
  ?v0 wsdbm:gender ?v2 .
  ?v0 rdf:type wsdbm:Role2 .
})"));

  queries.push_back(Make("S3", 'S', R"(
SELECT * WHERE {
  ?v0 rdf:type wsdbm:ProductCategory0 .
  ?v0 sorg:caption ?v1 .
  ?v0 wsdbm:hasGenre ?v2 .
  ?v0 sorg:publisher ?v3 .
})"));

  queries.push_back(Make("S4", 'S', R"(
SELECT * WHERE {
  ?v0 foaf:age wsdbm:AgeGroup0 .
  ?v0 foaf:familyName ?v1 .
  ?v2 mo:artist ?v0 .
  ?v0 sorg:nationality wsdbm:Country1 .
})"));

  queries.push_back(Make("S5", 'S', R"(
SELECT * WHERE {
  ?v0 rdf:type wsdbm:ProductCategory0 .
  ?v0 sorg:description ?v1 .
  ?v0 sorg:keywords ?v2 .
  ?v0 sorg:language wsdbm:Language0 .
})"));

  queries.push_back(Make("S6", 'S', R"(
SELECT * WHERE {
  ?v0 mo:conductor ?v1 .
  ?v0 rdf:type ?v2 .
  ?v0 wsdbm:hasGenre wsdbm:SubGenre0 .
})"));

  queries.push_back(Make("S7", 'S', R"(
SELECT * WHERE {
  ?v0 rdf:type ?v1 .
  ?v0 sorg:text ?v2 .
  wsdbm:User0 wsdbm:likes ?v0 .
})"));

  return queries;
}

Result<std::vector<sparql::Query>> ParseQuerySet(
    const std::vector<WatDivQuery>& queries) {
  std::vector<sparql::Query> parsed;
  parsed.reserve(queries.size());
  for (const WatDivQuery& q : queries) {
    Result<sparql::Query> result = sparql::ParseQuery(q.sparql);
    if (!result.ok()) {
      return Status::ParseError(q.id + ": " + result.status().message());
    }
    parsed.push_back(std::move(result).value());
  }
  return parsed;
}

}  // namespace prost::watdiv
