#ifndef PROST_WATDIV_GENERATOR_H_
#define PROST_WATDIV_GENERATOR_H_

#include <cstdint>
#include <string>

#include "rdf/graph.h"

namespace prost::watdiv {

/// Scaled-down WatDiv-like dataset generator. The original suite grows a
/// retail universe (users, products, retailers, offers, reviews,
/// purchases) with power-law degree distributions and ~86 predicates; this
/// generator reproduces the same entity graph shape at configurable scale,
/// which is what drives the relative selectivities of the 20 basic query
/// templates.
struct WatDivConfig {
  /// Approximate number of triples to generate. Entity counts derive from
  /// this (each user contributes ~30 triples transitively).
  uint64_t target_triples = 1'000'000;
  uint64_t seed = 42;

  /// Zipf skew of social / popularity degree distributions.
  double skew = 0.9;
};

/// Sizing derived from a config (exposed so tests can assert on it).
struct WatDivSizing {
  uint64_t users = 0;
  uint64_t products = 0;
  uint64_t retailers = 0;
  uint64_t websites = 0;
  uint64_t offers = 0;
  uint64_t reviews = 0;
  uint64_t purchases = 0;
  uint64_t cities = 0;
  uint64_t countries = 25;
  uint64_t sub_genres = 25;
  uint64_t topics = 250;
  uint64_t languages = 10;
  uint64_t roles = 3;
  uint64_t product_categories = 15;
  uint64_t age_groups = 9;
};

WatDivSizing ComputeSizing(const WatDivConfig& config);

/// A generated dataset: the encoded graph plus the sizing used.
struct WatDivDataset {
  rdf::EncodedGraph graph;
  WatDivSizing sizing;
  WatDivConfig config;
};

/// Generates a dataset deterministically from `config`.
WatDivDataset Generate(const WatDivConfig& config);

/// Serializes the dataset's graph as N-Triples text (the loading input
/// format, as in the paper's loading experiment).
std::string ToNTriplesText(const WatDivDataset& dataset);

}  // namespace prost::watdiv

#endif  // PROST_WATDIV_GENERATOR_H_
