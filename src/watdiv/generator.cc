#include "watdiv/generator.h"

#include <algorithm>

#include "common/rng.h"
#include "common/str_util.h"
#include "rdf/ntriples.h"
#include "watdiv/schema.h"

namespace prost::watdiv {
namespace {

using rdf::Term;

/// Builds the graph entity by entity. Every probability and degree
/// distribution below is fixed so the dataset is a pure function of the
/// config (seed included).
class GeneratorImpl {
 public:
  GeneratorImpl(const WatDivConfig& config, const WatDivSizing& sizing)
      : config_(config),
        sizing_(sizing),
        rng_(config.seed),
        user_pick_(sizing.users, config.skew),
        product_pick_(sizing.products, config.skew),
        retailer_pick_(sizing.retailers, config.skew),
        website_pick_(sizing.websites, config.skew),
        city_pick_(sizing.cities, config.skew),
        country_pick_(sizing.countries, config.skew),
        genre_pick_(sizing.sub_genres, config.skew),
        topic_pick_(sizing.topics, config.skew),
        language_pick_(sizing.languages, config.skew),
        category_pick_(sizing.product_categories, config.skew),
        age_pick_(sizing.age_groups, config.skew),
        role_pick_(sizing.roles, config.skew),
        degree_pick_(64, 1.35) {}

  WatDivDataset Run() {
    GenerateSubGenres();
    GenerateCities();
    GenerateWebsites();
    GenerateRetailers();
    GenerateUsers();
    GenerateProducts();
    GenerateReviews();
    GenerateOffers();
    GeneratePurchases();
    WatDivDataset dataset;
    dataset.graph = std::move(graph_);
    dataset.sizing = sizing_;
    dataset.config = config_;
    return dataset;
  }

 private:
  void Add(const std::string& subject, const std::string& predicate,
           Term object) {
    graph_.Add(rdf::Triple{Term::Iri(subject), Term::Iri(predicate),
                           std::move(object)});
  }

  void AddIri(const std::string& subject, const std::string& predicate,
              std::string object_iri) {
    Add(subject, predicate, Term::Iri(std::move(object_iri)));
  }

  void AddLit(const std::string& subject, const std::string& predicate,
              std::string value) {
    Add(subject, predicate, Term::Literal(std::move(value)));
  }

  void AddInt(const std::string& subject, const std::string& predicate,
              uint64_t value) {
    Add(subject, predicate,
        Term::TypedLiteral(std::to_string(value),
                           "http://www.w3.org/2001/XMLSchema#integer"));
  }

  bool Chance(double p) { return rng_.NextBernoulli(p); }

  /// Degree for a multi-valued edge: mostly small, heavy tail, capped.
  uint64_t Degree(uint64_t mean_scale, uint64_t cap) {
    uint64_t raw = degree_pick_.Sample(rng_);  // Zipf-distributed 0..63.
    uint64_t degree = raw * mean_scale / 4;
    return std::min<uint64_t>(degree, cap);
  }

  void GenerateSubGenres() {
    // SubGenres carry topic tags and a class, which the F1 snowflake
    // template pivots on (?v3 hasGenre ?v0 . ?v0 og:tag %topic%).
    const std::string genre_class = std::string(kWsdbm) + "Genre";
    for (uint64_t g = 0; g < sizing_.sub_genres; ++g) {
      std::string genre = SubGenreIri(g);
      AddIri(genre, Predicates::type(), genre_class);
      for (uint64_t i = 0, n = 1 + rng_.NextBounded(3); i < n; ++i) {
        AddIri(genre, Predicates::tag(), TopicIri(topic_pick_.Sample(rng_)));
      }
    }
  }

  void GenerateCities() {
    for (uint64_t c = 0; c < sizing_.cities; ++c) {
      AddIri(CityIri(c), Predicates::parentCountry(),
             CountryIri(country_pick_.Sample(rng_)));
    }
  }

  void GenerateWebsites() {
    for (uint64_t w = 0; w < sizing_.websites; ++w) {
      std::string site = WebsiteIri(w);
      AddLit(site, Predicates::url(),
             StrFormat("http://www.site%llu.example.org/",
                       static_cast<unsigned long long>(w)));
      if (Chance(0.8)) AddInt(site, Predicates::hits(), rng_.NextBounded(100000));
      if (Chance(0.5)) {
        AddIri(site, Predicates::language(),
               LanguageIri(language_pick_.Sample(rng_)));
      }
    }
  }

  void GenerateRetailers() {
    for (uint64_t r = 0; r < sizing_.retailers; ++r) {
      std::string retailer = RetailerIri(r);
      AddLit(retailer, Predicates::legalName(),
             StrFormat("Retailer %llu Inc.",
                       static_cast<unsigned long long>(r)));
      if (Chance(0.6)) {
        AddLit(retailer, Predicates::paymentAccepted(),
               (r % 2 == 0) ? "Cash, Credit Card" : "Credit Card");
      }
      if (Chance(0.5)) {
        AddLit(retailer, Predicates::openingHours(), "Mo-Fr 09:00-18:00");
      }
      if (Chance(0.5)) {
        AddLit(retailer, Predicates::telephone(),
               StrFormat("+1-555-%04llu",
                         static_cast<unsigned long long>(r % 10000)));
      }
      if (Chance(0.4)) {
        AddLit(retailer, Predicates::email(),
               StrFormat("contact@retailer%llu.example.org",
                         static_cast<unsigned long long>(r)));
      }
    }
  }

  void GenerateUsers() {
    for (uint64_t u = 0; u < sizing_.users; ++u) {
      std::string user = UserIri(u);
      AddIri(user, Predicates::type(), RoleIri(role_pick_.Sample(rng_)));
      AddInt(user, Predicates::userId(), u);
      if (Chance(0.6)) {
        AddIri(user, Predicates::gender(), GenderIri(rng_.NextBounded(2)));
      }
      if (Chance(0.5)) {
        AddIri(user, Predicates::age(), AgeGroupIri(age_pick_.Sample(rng_)));
      }
      if (Chance(0.7)) {
        AddLit(user, Predicates::givenName(),
               StrFormat("GivenName%llu",
                         static_cast<unsigned long long>(
                             rng_.NextBounded(200))));
      }
      if (Chance(0.7)) {
        AddLit(user, Predicates::familyName(),
               StrFormat("FamilyName%llu",
                         static_cast<unsigned long long>(
                             rng_.NextBounded(400))));
      }
      if (Chance(0.7)) {
        AddIri(user, Predicates::nationality(),
               CountryIri(country_pick_.Sample(rng_)));
      }
      if (Chance(0.4)) {
        AddIri(user, Predicates::location(),
               CityIri(city_pick_.Sample(rng_)));
      }
      if (Chance(0.3)) {
        AddLit(user, Predicates::jobTitle(),
               StrFormat("Job%llu", static_cast<unsigned long long>(
                                        rng_.NextBounded(50))));
      }
      if (Chance(0.3)) {
        AddLit(user, Predicates::email(),
               StrFormat("user%llu@example.org",
                         static_cast<unsigned long long>(u)));
      }
      if (Chance(0.25)) {
        AddIri(user, Predicates::homepage(),
               WebsiteIri(website_pick_.Sample(rng_)));
      }
      // Seed edges for User0 so popular-entity query placeholders
      // (e.g. S7's "User0 likes ?v0") are never vacuously empty.
      if (u == 0) {
        AddIri(user, Predicates::likes(), ProductIri(0));
        AddIri(user, Predicates::friendOf(), UserIri(1));
        AddIri(user, Predicates::subscribes(), WebsiteIri(0));
      }
      // Social edges (multi-valued).
      for (uint64_t i = 0, n = Degree(3, 40); i < n; ++i) {
        uint64_t friend_id = user_pick_.Sample(rng_);
        if (friend_id != u) {
          AddIri(user, Predicates::friendOf(), UserIri(friend_id));
        }
      }
      for (uint64_t i = 0, n = Degree(2, 30); i < n; ++i) {
        uint64_t followee = user_pick_.Sample(rng_);
        if (followee != u) {
          AddIri(user, Predicates::follows(), UserIri(followee));
        }
      }
      for (uint64_t i = 0, n = Degree(2, 25); i < n; ++i) {
        AddIri(user, Predicates::likes(),
               ProductIri(product_pick_.Sample(rng_)));
      }
      for (uint64_t i = 0, n = Degree(1, 8); i < n; ++i) {
        AddIri(user, Predicates::subscribes(),
               WebsiteIri(website_pick_.Sample(rng_)));
      }
    }
  }

  void GenerateProducts() {
    for (uint64_t p = 0; p < sizing_.products; ++p) {
      std::string product = ProductIri(p);
      AddIri(product, Predicates::type(),
             ProductCategoryIri(category_pick_.Sample(rng_)));
      if (Chance(0.8)) {
        AddLit(product, Predicates::caption(),
               StrFormat("Caption of product %llu",
                         static_cast<unsigned long long>(p)));
      }
      if (Chance(0.55)) {
        AddLit(product, Predicates::description(),
               StrFormat("Description text for product %llu",
                         static_cast<unsigned long long>(p)));
      }
      if (Chance(0.45)) {
        AddLit(product, Predicates::keywords(),
               StrFormat("keyword%llu keyword%llu",
                         static_cast<unsigned long long>(
                             rng_.NextBounded(300)),
                         static_cast<unsigned long long>(
                             rng_.NextBounded(300))));
      }
      if (Chance(0.3)) {
        AddLit(product, Predicates::text(),
               StrFormat("Full text of product %llu",
                         static_cast<unsigned long long>(p)));
      }
      if (Chance(0.35)) {
        AddLit(product, Predicates::contentRating(),
               StrFormat("Rating-%llu", static_cast<unsigned long long>(
                                            rng_.NextBounded(5))));
      }
      if (Chance(0.35)) {
        AddInt(product, Predicates::contentSize(),
               rng_.NextInRange(1, 9000));
      }
      if (Chance(0.5)) {
        AddIri(product, Predicates::language(),
               LanguageIri(language_pick_.Sample(rng_)));
      }
      AddIri(product, Predicates::hasGenre(),
             SubGenreIri(genre_pick_.Sample(rng_)));
      if (Chance(0.3)) {
        AddIri(product, Predicates::hasGenre(),
               SubGenreIri(genre_pick_.Sample(rng_)));
      }
      for (uint64_t i = 0, n = Degree(2, 10); i < n; ++i) {
        AddIri(product, Predicates::tag(),
               TopicIri(topic_pick_.Sample(rng_)));
      }
      if (Chance(0.6)) {
        AddLit(product, Predicates::title(),
               StrFormat("Title %llu", static_cast<unsigned long long>(p)));
      }
      if (Chance(0.35)) {
        AddIri(product, Predicates::publisher(),
               UserIri(user_pick_.Sample(rng_)));
      }
      if (Chance(0.3)) {
        AddIri(product, Predicates::author(),
               UserIri(user_pick_.Sample(rng_)));
      }
      if (Chance(0.15)) {
        AddIri(product, Predicates::editor(),
               UserIri(user_pick_.Sample(rng_)));
      }
      for (uint64_t i = 0, n = Degree(1, 6); i < n; ++i) {
        AddIri(product, Predicates::actor(),
               UserIri(user_pick_.Sample(rng_)));
      }
      if (Chance(0.2)) {
        AddIri(product, Predicates::artist(),
               UserIri(user_pick_.Sample(rng_)));
      }
      if (Chance(0.1)) {
        AddIri(product, Predicates::conductor(),
               UserIri(user_pick_.Sample(rng_)));
      }
      if (Chance(0.2)) {
        AddLit(product, Predicates::trailer(),
               StrFormat("http://trailers.example.org/%llu",
                         static_cast<unsigned long long>(p)));
      }
      if (Chance(0.25)) {
        // Products can have homepages too (F2/F4 pivot on this).
        AddIri(product, Predicates::homepage(),
               WebsiteIri(website_pick_.Sample(rng_)));
      }
    }
  }

  void GenerateReviews() {
    for (uint64_t v = 0; v < sizing_.reviews; ++v) {
      std::string review = ReviewIri(v);
      AddIri(ProductIri(product_pick_.Sample(rng_)), Predicates::hasReview(),
             review);
      AddIri(review, Predicates::reviewer(),
             UserIri(user_pick_.Sample(rng_)));
      AddInt(review, Predicates::rating(), rng_.NextInRange(1, 10));
      if (Chance(0.85)) {
        AddLit(review, Predicates::revTitle(),
               StrFormat("Review title %llu",
                         static_cast<unsigned long long>(v)));
      }
      if (Chance(0.7)) {
        AddLit(review, Predicates::revText(),
               StrFormat("Review body %llu",
                         static_cast<unsigned long long>(v)));
      }
      if (Chance(0.8)) {
        AddInt(review, Predicates::totalVotes(), rng_.NextBounded(500));
      }
    }
  }

  void GenerateOffers() {
    for (uint64_t o = 0; o < sizing_.offers; ++o) {
      std::string offer = OfferIri(o);
      AddIri(RetailerIri(retailer_pick_.Sample(rng_)), Predicates::offers(),
             offer);
      AddIri(offer, Predicates::includes(),
             ProductIri(product_pick_.Sample(rng_)));
      AddLit(offer, Predicates::price(),
             StrFormat("%llu.%02llu",
                       static_cast<unsigned long long>(
                           rng_.NextInRange(1, 500)),
                       static_cast<unsigned long long>(
                           rng_.NextBounded(100))));
      if (Chance(0.8)) {
        AddInt(offer, Predicates::serialNumber(), 1000000 + o);
      }
      if (Chance(0.6)) {
        AddLit(offer, Predicates::validFrom(),
               StrFormat("2017-%02llu-%02llu",
                         static_cast<unsigned long long>(
                             rng_.NextInRange(1, 12)),
                         static_cast<unsigned long long>(
                             rng_.NextInRange(1, 28))));
      }
      if (Chance(0.6)) {
        AddLit(offer, Predicates::validThrough(),
               StrFormat("2018-%02llu-%02llu",
                         static_cast<unsigned long long>(
                             rng_.NextInRange(1, 12)),
                         static_cast<unsigned long long>(
                             rng_.NextInRange(1, 28))));
      }
      if (Chance(0.7)) {
        AddIri(offer, Predicates::eligibleRegion(),
               CountryIri(country_pick_.Sample(rng_)));
      }
      if (Chance(0.6)) {
        AddInt(offer, Predicates::eligibleQuantity(),
               rng_.NextInRange(1, 50));
      }
      if (Chance(0.4)) {
        AddLit(offer, Predicates::priceValidUntil(),
               StrFormat("2018-%02llu-01",
                         static_cast<unsigned long long>(
                             rng_.NextInRange(1, 12))));
      }
    }
  }

  void GeneratePurchases() {
    for (uint64_t q = 0; q < sizing_.purchases; ++q) {
      std::string purchase = PurchaseIri(q);
      AddIri(UserIri(user_pick_.Sample(rng_)), Predicates::makesPurchase(),
             purchase);
      AddIri(purchase, Predicates::purchaseFor(),
             ProductIri(product_pick_.Sample(rng_)));
      AddLit(purchase, Predicates::purchaseDate(),
             StrFormat("2017-%02llu-%02llu",
                       static_cast<unsigned long long>(
                           rng_.NextInRange(1, 12)),
                       static_cast<unsigned long long>(
                           rng_.NextInRange(1, 28))));
    }
  }

  WatDivConfig config_;
  WatDivSizing sizing_;
  Rng rng_;
  rdf::EncodedGraph graph_;

  ZipfGenerator user_pick_;
  ZipfGenerator product_pick_;
  ZipfGenerator retailer_pick_;
  ZipfGenerator website_pick_;
  ZipfGenerator city_pick_;
  ZipfGenerator country_pick_;
  ZipfGenerator genre_pick_;
  ZipfGenerator topic_pick_;
  ZipfGenerator language_pick_;
  ZipfGenerator category_pick_;
  ZipfGenerator age_pick_;
  ZipfGenerator role_pick_;
  ZipfGenerator degree_pick_;
};

}  // namespace

WatDivSizing ComputeSizing(const WatDivConfig& config) {
  WatDivSizing sizing;
  // Each user contributes ~30 triples transitively (own attributes and
  // social edges plus its share of products, reviews, offers, purchases).
  sizing.users = std::max<uint64_t>(100, config.target_triples / 30);
  sizing.products = std::max<uint64_t>(50, sizing.users / 2);
  sizing.retailers = std::max<uint64_t>(5, sizing.users / 200);
  sizing.websites = std::max<uint64_t>(10, sizing.users / 20);
  sizing.offers = std::max<uint64_t>(40, sizing.products * 9 / 10);
  sizing.reviews = std::max<uint64_t>(40, sizing.products * 3 / 2);
  sizing.purchases = std::max<uint64_t>(40, sizing.users * 3 / 5);
  sizing.cities = std::max<uint64_t>(20, sizing.users / 100);
  return sizing;
}

WatDivDataset Generate(const WatDivConfig& config) {
  return GeneratorImpl(config, ComputeSizing(config)).Run();
}

std::string ToNTriplesText(const WatDivDataset& dataset) {
  std::string out;
  for (size_t i = 0; i < dataset.graph.size(); ++i) {
    // DecodeTriple cannot fail for triples produced by the generator.
    Result<rdf::Triple> triple = dataset.graph.DecodeTriple(i);
    out += std::move(triple).value().ToNTriples();
    out.push_back('\n');
  }
  return out;
}

}  // namespace prost::watdiv
