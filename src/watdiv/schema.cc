#include "watdiv/schema.h"

#include "common/str_util.h"

namespace prost::watdiv {
namespace {

std::string Entity(const char* name, uint64_t i) {
  return StrFormat("%s%s%llu", kWsdbm, name,
                   static_cast<unsigned long long>(i));
}

}  // namespace

std::string UserIri(uint64_t i) { return Entity("User", i); }
std::string ProductIri(uint64_t i) { return Entity("Product", i); }
std::string RetailerIri(uint64_t i) { return Entity("Retailer", i); }
std::string WebsiteIri(uint64_t i) { return Entity("Website", i); }
std::string CityIri(uint64_t i) { return Entity("City", i); }
std::string CountryIri(uint64_t i) { return Entity("Country", i); }
std::string SubGenreIri(uint64_t i) { return Entity("SubGenre", i); }
std::string TopicIri(uint64_t i) { return Entity("Topic", i); }
std::string LanguageIri(uint64_t i) { return Entity("Language", i); }
std::string ReviewIri(uint64_t i) { return Entity("Review", i); }
std::string OfferIri(uint64_t i) { return Entity("Offer", i); }
std::string PurchaseIri(uint64_t i) { return Entity("Purchase", i); }
std::string RoleIri(uint64_t i) { return Entity("Role", i); }
std::string ProductCategoryIri(uint64_t i) {
  return Entity("ProductCategory", i);
}
std::string AgeGroupIri(uint64_t i) { return Entity("AgeGroup", i); }
std::string GenderIri(uint64_t i) { return Entity("Gender", i); }

}  // namespace prost::watdiv
