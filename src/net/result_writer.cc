#include "net/result_writer.h"

#include <cctype>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/str_util.h"
#include "rdf/term.h"

namespace prost::net {

namespace {

/// A deliberately small JSON reader: just enough grammar to parse the
/// SPARQL results documents this layer itself writes (objects, arrays,
/// strings with escapes, numbers, true/false/null). Not a general JSON
/// library — unknown constructs fail with kParseError rather than being
/// guessed at.
struct JsonValue {
  enum class Kind { kObject, kArray, kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;
  std::string string;
  double number = 0;
  bool boolean = false;

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [name, value] : object) {
      if (name == key) return &value;
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    PROST_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (position_ != text_.size()) {
      return Status::ParseError("trailing bytes after JSON document");
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (position_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[position_]))) {
      ++position_;
    }
  }

  bool Consume(char expected) {
    SkipWhitespace();
    if (position_ < text_.size() && text_[position_] == expected) {
      ++position_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (position_ >= text_.size()) {
      return Status::ParseError("unexpected end of JSON");
    }
    char c = text_[position_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseLiteral(c == 't');
    if (c == 'n') {
      PROST_RETURN_IF_ERROR(Expect("null"));
      return JsonValue{};
    }
    return ParseNumber();
  }

  Status Expect(std::string_view word) {
    if (text_.substr(position_, word.size()) != word) {
      return Status::ParseError("malformed JSON literal");
    }
    position_ += word.size();
    return Status::OK();
  }

  Result<JsonValue> ParseLiteral(bool value) {
    PROST_RETURN_IF_ERROR(Expect(value ? "true" : "false"));
    JsonValue out;
    out.kind = JsonValue::Kind::kBool;
    out.boolean = value;
    return out;
  }

  Result<JsonValue> ParseNumber() {
    size_t start = position_;
    while (position_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[position_])) ||
            std::string_view("+-.eE").find(text_[position_]) !=
                std::string_view::npos)) {
      ++position_;
    }
    if (start == position_) return Status::ParseError("malformed JSON value");
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(std::string(text_.substr(start,
                                                      position_ - start))
                                 .c_str(),
                             nullptr);
    return out;
  }

  Result<JsonValue> ParseString() {
    ++position_;  // Opening quote.
    std::string out;
    while (position_ < text_.size()) {
      char c = text_[position_++];
      if (c == '"') {
        JsonValue value;
        value.kind = JsonValue::Kind::kString;
        value.string = std::move(out);
        return value;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (position_ >= text_.size()) break;
      char escape = text_[position_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out.push_back(escape);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (position_ + 4 > text_.size()) {
            return Status::ParseError("truncated \\u escape");
          }
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[position_++];
            if (!std::isxdigit(static_cast<unsigned char>(h))) {
              return Status::ParseError("malformed \\u escape");
            }
            code = code * 16 +
                   static_cast<unsigned int>(
                       h <= '9' ? h - '0'
                                : std::tolower(h) - 'a' + 10);
          }
          // The writer only emits \u00XX for control bytes; decoding
          // the Basic Latin range is all the round trip needs.
          if (code > 0x7F) {
            return Status::ParseError("non-ASCII \\u escape unsupported");
          }
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return Status::ParseError("unknown JSON escape");
      }
    }
    return Status::ParseError("unterminated JSON string");
  }

  Result<JsonValue> ParseObject() {
    ++position_;  // '{'
    JsonValue out;
    out.kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return out;
    while (true) {
      SkipWhitespace();
      if (position_ >= text_.size() || text_[position_] != '"') {
        return Status::ParseError("expected JSON object key");
      }
      PROST_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      if (!Consume(':')) return Status::ParseError("expected ':'");
      PROST_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      out.object.emplace_back(std::move(key.string), std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return out;
      return Status::ParseError("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    ++position_;  // '['
    JsonValue out;
    out.kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return out;
    while (true) {
      PROST_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      out.array.push_back(std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return out;
      return Status::ParseError("expected ',' or ']'");
    }
  }

  std::string_view text_;
  size_t position_ = 0;
};

/// One typed binding object: {"type": ..., "value": ..., ...}.
std::string BindingJson(const rdf::Term& term) {
  switch (term.kind) {
    case rdf::TermKind::kIri:
      return StrFormat("{\"type\":\"uri\",\"value\":\"%s\"}",
                       JsonEscape(term.value).c_str());
    case rdf::TermKind::kBlank:
      return StrFormat("{\"type\":\"bnode\",\"value\":\"%s\"}",
                       JsonEscape(term.value).c_str());
    case rdf::TermKind::kLiteral:
      if (!term.language.empty()) {
        return StrFormat(
            "{\"type\":\"literal\",\"value\":\"%s\",\"xml:lang\":\"%s\"}",
            JsonEscape(term.value).c_str(),
            JsonEscape(term.language).c_str());
      }
      if (!term.datatype.empty()) {
        return StrFormat(
            "{\"type\":\"literal\",\"value\":\"%s\",\"datatype\":\"%s\"}",
            JsonEscape(term.value).c_str(),
            JsonEscape(term.datatype).c_str());
      }
      return StrFormat("{\"type\":\"literal\",\"value\":\"%s\"}",
                       JsonEscape(term.value).c_str());
    case rdf::TermKind::kVariable:
      break;  // Variables never appear in data.
  }
  return "{\"type\":\"literal\",\"value\":\"\"}";
}

Result<rdf::Term> TermFromBinding(const JsonValue& binding) {
  const JsonValue* type = binding.Find("type");
  const JsonValue* value = binding.Find("value");
  if (type == nullptr || value == nullptr ||
      type->kind != JsonValue::Kind::kString ||
      value->kind != JsonValue::Kind::kString) {
    return Status::ParseError("binding missing type/value");
  }
  if (type->string == "uri") return rdf::Term::Iri(value->string);
  if (type->string == "bnode") return rdf::Term::Blank(value->string);
  if (type->string == "literal") {
    const JsonValue* lang = binding.Find("xml:lang");
    if (lang != nullptr && lang->kind == JsonValue::Kind::kString) {
      return rdf::Term::LangLiteral(value->string, lang->string);
    }
    const JsonValue* datatype = binding.Find("datatype");
    if (datatype != nullptr &&
        datatype->kind == JsonValue::Kind::kString) {
      return rdf::Term::TypedLiteral(value->string, datatype->string);
    }
    return rdf::Term::Literal(value->string);
  }
  return Status::ParseError("unknown binding type: " + type->string);
}

}  // namespace

ResultFormat SparqlResultWriter::Negotiate(std::string_view accept_header) {
  for (const std::string& entry : StrSplit(accept_header, ',')) {
    // Strip q-factor and other media-type parameters.
    std::string_view media(entry);
    size_t semicolon = media.find(';');
    if (semicolon != std::string_view::npos) {
      media = media.substr(0, semicolon);
    }
    media = StrTrim(media);
    if (media == "application/sparql-results+json" ||
        media == "application/json") {
      return ResultFormat::kJson;
    }
    if (media == "text/tab-separated-values") return ResultFormat::kTsv;
  }
  // Unknown, wildcard, or absent: JSON is the SPARQL protocol default.
  return ResultFormat::kJson;
}

const char* SparqlResultWriter::ContentType(ResultFormat format) {
  switch (format) {
    case ResultFormat::kJson:
      return "application/sparql-results+json";
    case ResultFormat::kTsv:
      return "text/tab-separated-values";
  }
  return "application/sparql-results+json";
}

Result<std::string> SparqlResultWriter::Serialize(
    const core::ProstDb& db, const engine::Relation& relation,
    ResultFormat format) {
  PROST_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                         db.DecodeRows(relation));
  const std::vector<std::string>& vars = relation.column_names();

  if (format == ResultFormat::kTsv) {
    // SPARQL 1.1 TSV: "?var" header row, then one N-Triples-encoded term
    // per cell (tabs/newlines inside literals are backslash-escaped by
    // the N-Triples serialization, so cells never contain separators).
    std::string out;
    for (size_t c = 0; c < vars.size(); ++c) {
      out += c == 0 ? "?" : "\t?";
      out += vars[c];
    }
    out += "\n";
    for (const std::vector<std::string>& row : rows) {
      for (size_t c = 0; c < row.size(); ++c) {
        if (c > 0) out += "\t";
        out += row[c];
      }
      out += "\n";
    }
    return out;
  }

  std::string out = "{\"head\":{\"vars\":[";
  for (size_t c = 0; c < vars.size(); ++c) {
    if (c > 0) out += ",";
    out += "\"" + JsonEscape(vars[c]) + "\"";
  }
  out += "]},\"results\":{\"bindings\":[";
  for (size_t r = 0; r < rows.size(); ++r) {
    if (r > 0) out += ",";
    out += "{";
    for (size_t c = 0; c < vars.size(); ++c) {
      PROST_ASSIGN_OR_RETURN(rdf::Term term, rdf::ParseTerm(rows[r][c]));
      if (c > 0) out += ",";
      out += "\"" + JsonEscape(vars[c]) + "\":" + BindingJson(term);
    }
    out += "}";
  }
  out += "]}}";
  return out;
}

Result<SparqlResultSet> SparqlResultWriter::ParseJson(
    std::string_view json) {
  PROST_ASSIGN_OR_RETURN(JsonValue document, JsonReader(json).Parse());
  if (document.kind != JsonValue::Kind::kObject) {
    return Status::ParseError("results document is not a JSON object");
  }
  const JsonValue* head = document.Find("head");
  const JsonValue* results = document.Find("results");
  if (head == nullptr || results == nullptr) {
    return Status::ParseError("missing head/results");
  }
  const JsonValue* vars = head->Find("vars");
  const JsonValue* bindings = results->Find("bindings");
  if (vars == nullptr || vars->kind != JsonValue::Kind::kArray ||
      bindings == nullptr ||
      bindings->kind != JsonValue::Kind::kArray) {
    return Status::ParseError("missing head.vars/results.bindings");
  }

  SparqlResultSet out;
  for (const JsonValue& var : vars->array) {
    if (var.kind != JsonValue::Kind::kString) {
      return Status::ParseError("head.vars entry is not a string");
    }
    out.vars.push_back(var.string);
  }
  for (const JsonValue& row : bindings->array) {
    if (row.kind != JsonValue::Kind::kObject) {
      return Status::ParseError("binding row is not an object");
    }
    std::vector<std::string> decoded;
    decoded.reserve(out.vars.size());
    for (const std::string& var : out.vars) {
      const JsonValue* binding = row.Find(var);
      if (binding == nullptr) {
        return Status::ParseError("row missing binding for ?" + var);
      }
      PROST_ASSIGN_OR_RETURN(rdf::Term term, TermFromBinding(*binding));
      decoded.push_back(term.ToNTriples());
    }
    out.rows.push_back(std::move(decoded));
  }
  return out;
}

Result<SparqlResultSet> SparqlResultWriter::ParseTsv(std::string_view tsv) {
  SparqlResultSet out;
  bool header = true;
  for (const std::string& line : StrSplit(tsv, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> cells = StrSplit(line, '\t');
    if (header) {
      for (std::string& cell : cells) {
        if (cell.empty() || cell[0] != '?') {
          return Status::ParseError("TSV header cell is not a ?var");
        }
        out.vars.push_back(cell.substr(1));
      }
      header = false;
      continue;
    }
    if (cells.size() != out.vars.size()) {
      return Status::ParseError("TSV row width does not match header");
    }
    out.rows.push_back(std::move(cells));
  }
  if (header) return Status::ParseError("empty TSV document");
  return out;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace prost::net
