#include "net/client.h"

#include <string_view>
#include <utility>

#include "common/str_util.h"

namespace prost::net {

Status Client::Connect(const std::string& host, uint16_t port,
                       double deadline_seconds) {
  host_ = host;
  port_ = port;
  deadline_seconds_ = deadline_seconds;
  PROST_ASSIGN_OR_RETURN(socket_, ConnectTcp(host, port, deadline_seconds));
  return Status::OK();
}

Result<HttpResponseParser::Response> Client::Roundtrip(
    const ClientRequest& request) {
  if (!connected()) {
    PROST_RETURN_IF_ERROR(Connect(host_, port_, deadline_seconds_));
  }
  bool stale = false;
  Result<HttpResponseParser::Response> response =
      RoundtripOnce(request, &stale);
  if (response.ok() || !stale) return response;
  // The server closed the keep-alive connection between our requests (its
  // right under HTTP/1.1). One reconnect-and-retry is safe here because
  // no response bytes arrived, so the request was never processed... for
  // GET it is safe regardless; our POSTs are queries, which are
  // idempotent reads in SPARQL terms.
  Close();
  PROST_RETURN_IF_ERROR(Connect(host_, port_, deadline_seconds_));
  return RoundtripOnce(request, &stale);
}

Result<HttpResponseParser::Response> Client::RoundtripOnce(
    const ClientRequest& request, bool* stale_connection) {
  *stale_connection = false;
  std::string wire =
      StrFormat("%s %s HTTP/1.1\r\n", request.method.c_str(),
                request.target.c_str()) +
      StrFormat("Host: %s:%u\r\n", host_.c_str(), port_);
  for (const auto& [name, value] : request.headers) {
    wire += name + ": " + value + "\r\n";
  }
  if (!request.body.empty() || request.method == "POST") {
    wire += StrFormat("Content-Length: %zu\r\n", request.body.size());
  }
  wire += "\r\n";
  wire += request.body;

  Status written = socket_.WriteAll(wire);
  if (!written.ok()) {
    // EPIPE/RST on a previously idle connection: the server closed it
    // before this request; eligible for one reconnect.
    *stale_connection = true;
    Close();
    return written;
  }

  HttpResponseParser parser;
  HttpResponseParser::Response response;
  char buffer[8192];
  bool received_any = false;
  while (true) {
    switch (parser.Next(&response)) {
      case HttpParser::Outcome::kRequest: {
        const std::string* connection = response.FindHeader("connection");
        if (connection != nullptr && *connection == "close") Close();
        return response;
      }
      case HttpParser::Outcome::kError:
        Close();
        return Status::ParseError("malformed HTTP response: " +
                                  parser.error().message);
      case HttpParser::Outcome::kNeedMore:
        break;
    }
    Result<size_t> n = socket_.Read(buffer, sizeof(buffer));
    if (!n.ok()) {
      Close();
      return n.status();
    }
    if (*n == 0) {
      Close();
      // EOF before any response bytes means the keep-alive socket was
      // already dead when we wrote; mid-response EOF is a real error.
      *stale_connection = !received_any;
      return Status::IOError("connection closed before full response");
    }
    received_any = true;
    parser.Feed(std::string_view(buffer, *n));
  }
}

Result<HttpResponseParser::Response> Client::Get(const std::string& target,
                                                 const std::string& accept) {
  ClientRequest request;
  request.method = "GET";
  request.target = target;
  if (!accept.empty()) request.headers.emplace_back("Accept", accept);
  return Roundtrip(request);
}

Result<HttpResponseParser::Response> Client::Post(
    const std::string& target, const std::string& content_type,
    std::string body, const std::string& accept) {
  ClientRequest request;
  request.method = "POST";
  request.target = target;
  request.headers.emplace_back("Content-Type", content_type);
  if (!accept.empty()) request.headers.emplace_back("Accept", accept);
  request.body = std::move(body);
  return Roundtrip(request);
}

}  // namespace prost::net
