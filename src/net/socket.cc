#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "common/str_util.h"

namespace prost::net {

namespace {

Status ErrnoStatus(const char* op, int err) {
  return Status::IOError(StrFormat("%s: %s", op, std::strerror(err)));
}

bool IsTimeoutErrno(int err) {
  return err == EAGAIN || err == EWOULDBLOCK || err == ETIMEDOUT;
}

Result<sockaddr_in> MakeAddress(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  return addr;
}

/// poll(2) on one fd; true when `events` fired, false on timeout.
Result<bool> PollOne(int fd, short events, int timeout_millis) {
  pollfd entry{};
  entry.fd = fd;
  entry.events = events;
  while (true) {
    int ready = ::poll(&entry, 1, timeout_millis);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("poll", errno);
    }
    // POLLHUP/POLLERR also count as "ready": the next read/accept/write
    // surfaces the actual condition.
    return ready > 0;
  }
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Socket::SetDeadline(double seconds) {
  timeval tv{};
  if (seconds > 0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    // setsockopt treats {0,0} as "no timeout"; a sub-microsecond request
    // still means "some deadline", so round up to one microsecond.
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return ErrnoStatus("setsockopt(SO_RCVTIMEO/SO_SNDTIMEO)", errno);
  }
  return Status::OK();
}

Status Socket::SetNoDelay() {
  int one = 1;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return ErrnoStatus("setsockopt(TCP_NODELAY)", errno);
  }
  return Status::OK();
}

Result<size_t> Socket::Read(char* buffer, size_t capacity) {
  while (true) {
    ssize_t n = ::recv(fd_, buffer, capacity, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (IsTimeoutErrno(errno)) {
      return Status::DeadlineExceeded("socket read deadline exceeded");
    }
    return ErrnoStatus("recv", errno);
  }
}

Status Socket::WriteAll(std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-response yields EPIPE instead
    // of killing the process with SIGPIPE.
    ssize_t n = ::send(fd_, data.data() + written, data.size() - written,
                       MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && IsTimeoutErrno(errno)) {
      return Status::DeadlineExceeded("socket write deadline exceeded");
    }
    return ErrnoStatus("send", errno);
  }
  return Status::OK();
}

Result<bool> Socket::WaitReadable(int timeout_millis) {
  return PollOne(fd_, POLLIN, timeout_millis);
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<ListenSocket> ListenSocket::BindAndListen(const std::string& host,
                                                 uint16_t port, int backlog) {
  PROST_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddress(host, port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  ListenSocket listener;
  listener.fd_ = fd;
  // Restart-friendly: skip the TIME_WAIT rebind window.
  int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)", errno);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return ErrnoStatus("bind", errno);
  }
  if (::listen(fd, backlog) != 0) return ErrnoStatus("listen", errno);
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    return ErrnoStatus("getsockname", errno);
  }
  listener.port_ = ntohs(bound.sin_port);
  return listener;
}

Result<bool> ListenSocket::WaitPending(int timeout_millis) {
  return PollOne(fd_, POLLIN, timeout_millis);
}

Result<Socket> ListenSocket::Accept() {
  while (true) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return ErrnoStatus("accept", errno);
  }
}

Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                          double deadline_seconds) {
  PROST_ASSIGN_OR_RETURN(sockaddr_in addr, MakeAddress(host, port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  Socket socket(fd);
  // SO_SNDTIMEO bounds a blocking connect(2) on Linux, so one deadline
  // covers connect and the subsequent request/response operations.
  PROST_RETURN_IF_ERROR(socket.SetDeadline(deadline_seconds));
  while (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    // A connect interrupted by EINTR completes in the background; the
    // retry then reports EISCONN, which is success.
    if (errno == EISCONN) break;
    if (IsTimeoutErrno(errno) || errno == EINPROGRESS) {
      return Status::DeadlineExceeded(
          StrFormat("connect %s:%u deadline exceeded", host.c_str(), port));
    }
    return ErrnoStatus("connect", errno);
  }
  PROST_RETURN_IF_ERROR(socket.SetNoDelay());
  return socket;
}

}  // namespace prost::net
