#include "net/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <utility>

#include "common/str_util.h"

namespace prost::net {

namespace {

constexpr std::string_view kCrlf = "\r\n";
constexpr std::string_view kHeaderTerminator = "\r\n\r\n";

std::string ToLowerAscii(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool IsHexDigit(char c) {
  return std::isxdigit(static_cast<unsigned char>(c)) != 0;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return c - 'A' + 10;
}

/// A valid HTTP token (method / header name): no separators, no spaces,
/// no control characters.
bool IsToken(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    unsigned char byte = static_cast<unsigned char>(c);
    if (byte <= ' ' || byte >= 127) return false;
    if (std::string_view("()<>@,;:\\\"/[]?={}").find(c) !=
        std::string_view::npos) {
      return false;
    }
  }
  return true;
}

/// Parses the shared `name: value` header block between `begin` and
/// `end` (exclusive of the blank line). Returns a 400-style message on
/// malformed lines, empty string on success.
std::string ParseHeaderLines(
    std::string_view block,
    std::vector<std::pair<std::string, std::string>>* headers) {
  size_t position = 0;
  while (position < block.size()) {
    size_t line_end = block.find(kCrlf, position);
    if (line_end == std::string_view::npos) line_end = block.size();
    std::string_view line = block.substr(position, line_end - position);
    position = line_end + kCrlf.size();
    if (line.empty()) continue;
    if (line.front() == ' ' || line.front() == '\t') {
      return "obsolete header line folding is not supported";
    }
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return "header line without ':'";
    }
    std::string_view name = line.substr(0, colon);
    if (!IsToken(name)) return "malformed header name";
    std::string_view value = StrTrim(line.substr(colon + 1));
    headers->emplace_back(ToLowerAscii(name), std::string(value));
  }
  return "";
}

const std::string* FindInHeaders(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

/// Connection-header token scan ("keep-alive, upgrade" etc.),
/// case-insensitive.
bool ConnectionHas(const std::string* header, std::string_view token) {
  if (header == nullptr) return false;
  for (const std::string& part : StrSplit(ToLowerAscii(*header), ',')) {
    if (StrTrim(part) == token) return true;
  }
  return false;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  return FindInHeaders(headers, name);
}

HttpParser::Outcome HttpParser::Fail(int http_status, std::string message) {
  error_ = {http_status, std::move(message)};
  return Outcome::kError;
}

HttpParser::Outcome HttpParser::Next(HttpRequest* request) {
  // Tolerate stray CRLFs between pipelined requests (RFC 9112 §2.2).
  size_t start = 0;
  while (buffer_.size() - start >= kCrlf.size() &&
         buffer_.compare(start, kCrlf.size(), kCrlf) == 0) {
    start += kCrlf.size();
  }

  size_t line_end = buffer_.find(kCrlf, start);
  if (line_end == std::string::npos) {
    if (buffer_.size() - start > limits_.max_request_line_bytes) {
      return Fail(431, StrFormat("request line exceeds %zu bytes",
                                 limits_.max_request_line_bytes));
    }
    return Outcome::kNeedMore;
  }
  if (line_end - start > limits_.max_request_line_bytes) {
    return Fail(431, StrFormat("request line exceeds %zu bytes",
                               limits_.max_request_line_bytes));
  }

  // Headers: everything from past the request line to the blank line.
  size_t headers_begin = line_end + kCrlf.size();
  size_t terminator = buffer_.find(kHeaderTerminator, line_end);
  if (terminator == std::string::npos) {
    if (buffer_.size() - headers_begin > limits_.max_header_bytes) {
      return Fail(431, StrFormat("header block exceeds %zu bytes",
                                 limits_.max_header_bytes));
    }
    return Outcome::kNeedMore;
  }
  size_t headers_end = terminator + kCrlf.size();  // Last header's CRLF.
  if (headers_end - headers_begin > limits_.max_header_bytes) {
    return Fail(431, StrFormat("header block exceeds %zu bytes",
                               limits_.max_header_bytes));
  }

  // Request line: METHOD SP TARGET SP VERSION.
  std::string_view line(buffer_.data() + start, line_end - start);
  size_t first_space = line.find(' ');
  size_t second_space = first_space == std::string_view::npos
                            ? std::string_view::npos
                            : line.find(' ', first_space + 1);
  if (second_space == std::string_view::npos ||
      line.find(' ', second_space + 1) != std::string_view::npos) {
    return Fail(400, "malformed request line");
  }
  std::string_view method = line.substr(0, first_space);
  std::string_view target =
      line.substr(first_space + 1, second_space - first_space - 1);
  std::string_view version = line.substr(second_space + 1);
  if (!IsToken(method) || target.empty()) {
    return Fail(400, "malformed request line");
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Fail(505, "only HTTP/1.1 and HTTP/1.0 are supported");
  }

  HttpRequest parsed;
  parsed.method = std::string(method);
  parsed.target = std::string(target);
  parsed.version = std::string(version);

  std::string header_error = ParseHeaderLines(
      std::string_view(buffer_.data() + headers_begin,
                       terminator + kCrlf.size() - headers_begin),
      &parsed.headers);
  if (!header_error.empty()) return Fail(400, std::move(header_error));

  if (parsed.FindHeader("transfer-encoding") != nullptr) {
    return Fail(501, "Transfer-Encoding is not supported; "
                     "send a Content-Length body");
  }

  // Body: Content-Length only. POST/PUT without one is 411 — a request
  // whose body boundary is unknowable cannot be framed on a keep-alive
  // connection.
  size_t body_bytes = 0;
  const std::string* content_length = parsed.FindHeader("content-length");
  if (content_length != nullptr) {
    if (content_length->empty() ||
        content_length->find_first_not_of("0123456789") !=
            std::string::npos) {
      return Fail(400, "malformed Content-Length");
    }
    body_bytes = static_cast<size_t>(
        std::strtoull(content_length->c_str(), nullptr, 10));
    if (body_bytes > limits_.max_body_bytes) {
      return Fail(413, StrFormat("request body of %zu bytes exceeds the "
                                 "%zu byte limit",
                                 body_bytes, limits_.max_body_bytes));
    }
  } else if (parsed.method == "POST" || parsed.method == "PUT") {
    return Fail(411, "POST requires a Content-Length header");
  }

  size_t body_begin = terminator + kHeaderTerminator.size();
  if (buffer_.size() - body_begin < body_bytes) return Outcome::kNeedMore;
  parsed.body = buffer_.substr(body_begin, body_bytes);

  // Split and decode the target.
  size_t question = parsed.target.find('?');
  std::string_view raw_path(parsed.target);
  if (question != std::string::npos) {
    parsed.query_string = parsed.target.substr(question + 1);
    raw_path = std::string_view(parsed.target).substr(0, question);
  }
  Result<std::string> path = PercentDecode(raw_path, false);
  if (!path.ok()) return Fail(400, path.status().message());
  parsed.path = std::move(path).value();

  const std::string* connection = parsed.FindHeader("connection");
  parsed.keep_alive = parsed.version == "HTTP/1.1"
                          ? !ConnectionHas(connection, "close")
                          : ConnectionHas(connection, "keep-alive");

  buffer_.erase(0, body_begin + body_bytes);
  *request = std::move(parsed);
  return Outcome::kRequest;
}

std::string HttpResponse::Serialize() const {
  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", status,
                              HttpReasonPhrase(status));
  for (const auto& [name, value] : headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += StrFormat("Content-Length: %zu\r\n", body.size());
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += body;
  return out;
}

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 411:
      return "Length Required";
    case 413:
      return "Content Too Large";
    case 415:
      return "Unsupported Media Type";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 501:
      return "Not Implemented";
    case 503:
      return "Service Unavailable";
    case 505:
      return "HTTP Version Not Supported";
  }
  return "Unknown";
}

int HttpStatusForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kDeadlineExceeded:
      return 408;
    case StatusCode::kResourceExhausted:
      return 429;
    case StatusCode::kUnavailable:
      return 503;
    default:
      return 500;
  }
}

Result<std::string> PercentDecode(std::string_view text,
                                  bool plus_as_space) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '%') {
      if (i + 2 >= text.size() || !IsHexDigit(text[i + 1]) ||
          !IsHexDigit(text[i + 2])) {
        return Status::InvalidArgument("malformed percent escape");
      }
      out.push_back(static_cast<char>(HexValue(text[i + 1]) * 16 +
                                      HexValue(text[i + 2])));
      i += 2;
    } else if (c == '+' && plus_as_space) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string PercentEncode(std::string_view text) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    unsigned char byte = static_cast<unsigned char>(c);
    bool unreserved = std::isalnum(byte) != 0 || c == '-' || c == '.' ||
                      c == '_' || c == '~';
    if (unreserved) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[byte >> 4]);
      out.push_back(kHex[byte & 0xF]);
    }
  }
  return out;
}

Result<std::vector<std::pair<std::string, std::string>>> ParseFormEncoded(
    std::string_view text) {
  std::vector<std::pair<std::string, std::string>> params;
  if (text.empty()) return params;
  for (const std::string& pair : StrSplit(text, '&')) {
    if (pair.empty()) continue;
    size_t equals = pair.find('=');
    std::string_view raw_name(pair);
    std::string_view raw_value;
    if (equals != std::string::npos) {
      raw_name = std::string_view(pair).substr(0, equals);
      raw_value = std::string_view(pair).substr(equals + 1);
    }
    PROST_ASSIGN_OR_RETURN(std::string name, PercentDecode(raw_name, true));
    PROST_ASSIGN_OR_RETURN(std::string value,
                           PercentDecode(raw_value, true));
    params.emplace_back(std::move(name), std::move(value));
  }
  return params;
}

const std::string* HttpResponseParser::Response::FindHeader(
    std::string_view name) const {
  return FindInHeaders(headers, name);
}

HttpParser::Outcome HttpResponseParser::Fail(std::string message) {
  error_ = {0, std::move(message)};
  return HttpParser::Outcome::kError;
}

HttpParser::Outcome HttpResponseParser::Next(Response* response) {
  size_t line_end = buffer_.find(kCrlf);
  if (line_end == std::string::npos) return HttpParser::Outcome::kNeedMore;
  size_t terminator = buffer_.find(kHeaderTerminator);
  if (terminator == std::string::npos) return HttpParser::Outcome::kNeedMore;

  // Status line: HTTP/1.x SP 3-digit-code SP reason-phrase.
  std::string_view line(buffer_.data(), line_end);
  size_t first_space = line.find(' ');
  if (first_space == std::string_view::npos ||
      line.substr(0, 5) != "HTTP/") {
    return Fail("malformed status line");
  }
  std::string_view code_text = line.substr(first_space + 1);
  if (code_text.size() < 3 || !std::isdigit(static_cast<unsigned char>(
                                  code_text[0]))) {
    return Fail("malformed status code");
  }

  Response parsed;
  parsed.version = std::string(line.substr(0, first_space));
  parsed.status = (code_text[0] - '0') * 100 + (code_text[1] - '0') * 10 +
                  (code_text[2] - '0');

  size_t headers_begin = line_end + kCrlf.size();
  std::string header_error = ParseHeaderLines(
      std::string_view(buffer_.data() + headers_begin,
                       terminator + kCrlf.size() - headers_begin),
      &parsed.headers);
  if (!header_error.empty()) return Fail(std::move(header_error));

  size_t body_bytes = 0;
  const std::string* content_length = parsed.FindHeader("content-length");
  if (content_length != nullptr) {
    if (content_length->find_first_not_of("0123456789") !=
        std::string::npos) {
      return Fail("malformed Content-Length");
    }
    body_bytes = static_cast<size_t>(
        std::strtoull(content_length->c_str(), nullptr, 10));
  }
  size_t body_begin = terminator + kHeaderTerminator.size();
  if (buffer_.size() - body_begin < body_bytes) {
    return HttpParser::Outcome::kNeedMore;
  }
  parsed.body = buffer_.substr(body_begin, body_bytes);
  buffer_.erase(0, body_begin + body_bytes);
  *response = std::move(parsed);
  return HttpParser::Outcome::kRequest;
}

}  // namespace prost::net
