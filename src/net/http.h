#ifndef PROST_NET_HTTP_H_
#define PROST_NET_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

/// A minimal-but-correct HTTP/1.1 layer: exactly the surface the SPARQL
/// protocol endpoint needs (request line + headers + Content-Length
/// bodies + keep-alive), none it does not (no chunked bodies, no
/// trailers, no HTTP/2). The request parser is incremental and
/// byte-stream agnostic — the server feeds it recv(2) fragments, the
/// parser-tier tests feed it hand-torn byte slices with no socket in
/// sight — and every size limit maps to the HTTP status the RFC assigns
/// (431 for request-line/header overflow, 413 for body overflow).

namespace prost::net {

/// One parsed request. Header names are lowercased at parse time
/// (HTTP/1.1 header names are case-insensitive); values keep their bytes
/// minus surrounding whitespace.
struct HttpRequest {
  std::string method;        // Uppercase verbs as sent: "GET", "POST".
  std::string target;        // Raw request target, e.g. "/sparql?query=…".
  std::string path;          // Target up to '?', percent-decoded.
  std::string query_string;  // Raw bytes after '?' (still encoded).
  std::string version;       // "HTTP/1.1" or "HTTP/1.0".
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Connection semantics after this request: HTTP/1.1 defaults to
  /// keep-alive unless "Connection: close"; HTTP/1.0 the reverse.
  bool keep_alive = true;

  /// First header with this name (lowercase), or nullptr.
  const std::string* FindHeader(std::string_view name) const;
};

/// Parser size limits, each with its own HTTP rejection status.
struct HttpLimits {
  /// Request line (431 when exceeded before the line terminates).
  size_t max_request_line_bytes = 8 * 1024;
  /// Everything up to the blank line (431).
  size_t max_header_bytes = 32 * 1024;
  /// Declared Content-Length (413).
  size_t max_body_bytes = 1024 * 1024;
};

/// A malformed or over-limit request, already classified as the HTTP
/// response it deserves (400 / 411 / 413 / 431 / 501).
struct HttpParseError {
  int http_status = 400;
  std::string message;
};

/// Incremental HTTP/1.1 request parser over a byte stream.
///
///   HttpParser parser;
///   parser.Feed(bytes_from_recv);
///   HttpRequest request;
///   switch (parser.Next(&request)) { ... }
///
/// Feed appends arbitrary fragments (torn anywhere, including mid-token);
/// Next consumes at most one complete request from the buffer per call,
/// leaving pipelined followers buffered for the next call. After kError
/// the stream position is undefined and the connection must be closed
/// (which is what every error here requires anyway).
///
/// NOT thread-safe: one parser per connection, owned by its handler.
class HttpParser {
 public:
  enum class Outcome {
    kRequest,   // *request is complete and consumed from the buffer.
    kNeedMore,  // The buffer holds only a request prefix; Feed more.
    kError,     // Malformed/over-limit; see error().
  };

  HttpParser() = default;
  explicit HttpParser(HttpLimits limits) : limits_(limits) {}

  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  Outcome Next(HttpRequest* request);

  /// Valid after Next returned kError.
  const HttpParseError& error() const { return error_; }

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  Outcome Fail(int http_status, std::string message);

  HttpLimits limits_;
  std::string buffer_;
  HttpParseError error_;
};

/// One response to serialize. `Serialize` renders status line, the
/// explicit headers, a computed Content-Length, and the standard
/// Connection header for `keep_alive`.
struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;

  void AddHeader(std::string name, std::string value) {
    headers.emplace_back(std::move(name), std::move(value));
  }
  std::string Serialize() const;
};

/// The canonical reason phrase for the status codes this server emits
/// ("OK", "Bad Request", ...); "Unknown" otherwise.
const char* HttpReasonPhrase(int status);

/// The typed Status→HTTP mapping for execution-layer errors (everything
/// the parse/translate/admit/execute pipeline can return):
///
///   kInvalidArgument, kParseError  → 400  (translator message carried)
///   kNotFound                      → 404
///   kDeadlineExceeded              → 408
///   kResourceExhausted             → 429  (per-query budget exhausted)
///   kUnavailable                   → 503  (admission shed / draining;
///                                          callers add Retry-After)
///   anything else                  → 500
int HttpStatusForStatus(const Status& status);

/// Percent-decodes `text` (+ optionally as space, the form-encoding
/// convention). kInvalidArgument on truncated or non-hex escapes.
Result<std::string> PercentDecode(std::string_view text,
                                  bool plus_as_space);

/// Percent-encodes `text` for use as a URI query value (unreserved
/// characters pass through, everything else becomes %XX).
std::string PercentEncode(std::string_view text);

/// Splits an application/x-www-form-urlencoded payload (also the format
/// of a URI query string) into decoded name/value pairs.
Result<std::vector<std::pair<std::string, std::string>>> ParseFormEncoded(
    std::string_view text);

/// Incremental HTTP/1.1 *response* parser (the client side). Same
/// feeding contract as HttpParser; responses must carry Content-Length
/// (ours always do).
class HttpResponseParser {
 public:
  struct Response {
    int status = 0;
    std::string version;
    std::vector<std::pair<std::string, std::string>> headers;  // lowercased
    std::string body;

    const std::string* FindHeader(std::string_view name) const;
  };

  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  /// kRequest is reused to mean "one complete response parsed".
  HttpParser::Outcome Next(Response* response);

  const HttpParseError& error() const { return error_; }

 private:
  HttpParser::Outcome Fail(std::string message);

  std::string buffer_;
  HttpParseError error_;
};

}  // namespace prost::net

#endif  // PROST_NET_HTTP_H_
