#ifndef PROST_NET_CLIENT_H_
#define PROST_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/http.h"
#include "net/socket.h"

/// A minimal blocking HTTP/1.1 client for exercising the SPARQL endpoint
/// from tests and the network benchmark: one keep-alive connection per
/// Client, synchronous request/response round trips, transparent
/// reconnect when the server (legitimately) closed the previous exchange.
///
/// NOT thread-safe: one Client per thread, which is exactly the shape a
/// closed-loop load generator wants.

namespace prost::net {

/// One request to send. Host and Content-Length headers are added by the
/// client; everything else is caller-provided.
struct ClientRequest {
  std::string method = "GET";
  std::string target = "/";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

class Client {
 public:
  Client() = default;

  /// Dials `host:port`; `deadline_seconds` bounds the connect and every
  /// subsequent socket transfer on this connection.
  Status Connect(const std::string& host, uint16_t port,
                 double deadline_seconds = 10.0);

  bool connected() const { return socket_.valid(); }
  void Close() { socket_.Close(); }

  /// One synchronous round trip. If the previous response closed the
  /// connection (or a stale keep-alive socket yields EOF before any
  /// response bytes), reconnects once and retries; a server that is no
  /// longer accepting surfaces the connect error instead.
  Result<HttpResponseParser::Response> Roundtrip(const ClientRequest& request);

  /// GET `target`, optionally with an Accept header.
  Result<HttpResponseParser::Response> Get(const std::string& target,
                                           const std::string& accept = "");

  /// POST `body` to `target` with the given Content-Type.
  Result<HttpResponseParser::Response> Post(const std::string& target,
                                            const std::string& content_type,
                                            std::string body,
                                            const std::string& accept = "");

 private:
  Result<HttpResponseParser::Response> RoundtripOnce(
      const ClientRequest& request, bool* stale_connection);

  std::string host_;
  uint16_t port_ = 0;
  double deadline_seconds_ = 10.0;
  Socket socket_;
};

}  // namespace prost::net

#endif  // PROST_NET_CLIENT_H_
