#include "net/server.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <string_view>
#include <utility>
#include <vector>

#include "common/str_util.h"
#include "net/result_writer.h"

namespace prost::net {

namespace {

/// Monotonic wall time in seconds; only differences are meaningful.
double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Stable machine-readable code names for parser-layer rejections (the
/// execution layer's codes come from StatusCodeToString instead).
const char* HttpErrorCodeName(int http_status) {
  switch (http_status) {
    case 400:
      return "bad_request";
    case 404:
      return "not_found";
    case 405:
      return "method_not_allowed";
    case 408:
      return "deadline_exceeded";
    case 411:
      return "length_required";
    case 413:
      return "payload_too_large";
    case 415:
      return "unsupported_media_type";
    case 431:
      return "header_too_large";
    case 501:
      return "not_implemented";
    case 503:
      return "unavailable";
    case 505:
      return "version_not_supported";
    default:
      return "error";
  }
}

std::string LowercaseMediaType(const std::string& content_type) {
  std::string_view media(content_type);
  size_t semicolon = media.find(';');
  if (semicolon != std::string_view::npos) media = media.substr(0, semicolon);
  media = StrTrim(media);
  std::string out(media);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

Server::Server(serve::SessionManager& sessions, ServerOptions options)
    : sessions_(sessions), options_(std::move(options)) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  {
    MutexLock lock(mu_);
    if (state_ != State::kIdle) {
      return Status::Internal("net::Server started twice");
    }
  }
  PROST_ASSIGN_OR_RETURN(
      listener_, ListenSocket::BindAndListen(options_.host, options_.port));
  port_ = listener_.port();
  {
    MutexLock lock(mu_);
    state_ = State::kRunning;
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  const int handler_count = std::max(1, options_.handler_threads);
  handlers_.reserve(static_cast<size_t>(handler_count));
  for (int i = 0; i < handler_count; ++i) {
    handlers_.emplace_back([this] { HandlerLoop(); });
  }
  return Status::OK();
}

void Server::Shutdown() {
  {
    MutexLock lock(mu_);
    if (state_ == State::kIdle) {
      // Never started: nothing to drain or join.
      state_ = State::kStopped;
      shutdown_complete_ = true;
      return;
    }
    if (state_ != State::kRunning) {
      // Another caller is (or was) draining; block until it finishes so
      // every Shutdown return means "all threads joined".
      while (!shutdown_complete_) pending_cv_.Wait(mu_);
      return;
    }
    state_ = State::kDraining;
    drain_started_seconds_ = NowSeconds();
    pending_cv_.NotifyAll();
  }
  // Joining IS the drain: the acceptor exits at its next poll tick, idle
  // handlers exit immediately, and busy handlers finish their connection
  // — answering late requests with 503 inside the grace window, never
  // truncating an in-flight response.
  acceptor_.join();
  for (std::thread& handler : handlers_) handler.join();
  handlers_.clear();
  listener_.Close();
  MutexLock lock(mu_);
  state_ = State::kStopped;
  pending_.clear();
  metrics_.gauge("net.pending_connections").Set(0);
  shutdown_complete_ = true;
  pending_cv_.NotifyAll();
}

bool Server::draining() const {
  MutexLock lock(mu_);
  return state_ == State::kDraining || state_ == State::kStopped;
}

double Server::SecondsSinceDrainStarted() const {
  MutexLock lock(mu_);
  if (state_ != State::kDraining && state_ != State::kStopped) return 0;
  return NowSeconds() - drain_started_seconds_;
}

void Server::AcceptLoop() {
  while (true) {
    {
      MutexLock lock(mu_);
      if (state_ != State::kRunning) return;
    }
    // Short poll ticks so shutdown is noticed promptly without signals.
    Result<bool> ready = listener_.WaitPending(/*timeout_millis=*/200);
    if (!ready.ok()) return;  // Listener broken beyond repair.
    if (!*ready) continue;
    Result<Socket> accepted = listener_.Accept();
    if (!accepted.ok()) continue;  // Peer vanished between poll and accept.
    metrics_.counter("net.connections_accepted").Increment();
    bool enqueued = false;
    {
      MutexLock lock(mu_);
      if (state_ != State::kRunning) return;  // Socket closes on scope exit.
      if (pending_.size() < options_.max_pending_connections) {
        pending_.push_back(std::move(*accepted));
        metrics_.gauge("net.pending_connections")
            .Set(static_cast<double>(pending_.size()));
        pending_cv_.NotifyAll();
        enqueued = true;
      }
    }
    if (!enqueued) {
      // Bounded backlog: shed the connection with an immediate 503 (best
      // effort — the write happens outside mu_ and may itself fail).
      metrics_.counter("net.connections_rejected_pending_full").Increment();
      HttpResponse response =
          ErrorResponse(503, "unavailable", "connection backlog full");
      response.keep_alive = false;
      response.AddHeader("Retry-After", "1");
      PROST_IGNORE_ERROR(accepted->SetDeadline(1.0));
      PROST_IGNORE_ERROR(accepted->WriteAll(response.Serialize()));
    }
  }
}

void Server::HandlerLoop() {
  while (true) {
    Socket socket;
    {
      MutexLock lock(mu_);
      while (state_ == State::kRunning && pending_.empty()) {
        pending_cv_.Wait(mu_);
      }
      // Draining with connections still pending: serve them (they get
      // their 503s inside the grace window). Empty + not running: done.
      if (pending_.empty()) return;
      socket = std::move(pending_.front());
      pending_.pop_front();
      metrics_.gauge("net.pending_connections")
          .Set(static_cast<double>(pending_.size()));
      ++active_connections_;
      metrics_.gauge("net.active_connections").Set(active_connections_);
    }
    ServeConnection(std::move(socket));
    metrics_.counter("net.connections_handled").Increment();
    MutexLock lock(mu_);
    --active_connections_;
    metrics_.gauge("net.active_connections").Set(active_connections_);
  }
}

void Server::ServeConnection(Socket socket) {
  // SO_RCVTIMEO/SO_SNDTIMEO bound every blocking transfer; the read loop
  // below additionally enforces the deadline across torn reads.
  PROST_IGNORE_ERROR(socket.SetDeadline(options_.request_deadline_seconds));
  PROST_IGNORE_ERROR(socket.SetNoDelay());
  HttpParser parser(options_.http_limits);
  char buffer[8192];
  double request_started = NowSeconds();
  double idle_since = NowSeconds();

  while (true) {
    HttpRequest request;
    switch (parser.Next(&request)) {
      case HttpParser::Outcome::kError: {
        const HttpParseError& error = parser.error();
        HttpResponse response = ErrorResponse(
            error.http_status, HttpErrorCodeName(error.http_status),
            error.message);
        response.keep_alive = false;
        metrics_
            .counter(StrFormat("net.responses.%dxx", response.status / 100))
            .Increment();
        PROST_IGNORE_ERROR(socket.WriteAll(response.Serialize()));
        return;
      }
      case HttpParser::Outcome::kRequest: {
        metrics_.counter("net.requests").Increment();
        HttpResponse response;
        if (draining()) {
          // A request that completed after drain started: answered, not
          // slammed — but told to go elsewhere.
          metrics_.counter("net.drain_rejected").Increment();
          response = ErrorResponse(503, "unavailable",
                                   "server is draining; retry elsewhere");
          response.AddHeader("Retry-After", "1");
          response.keep_alive = false;
        } else {
          response = Route(request);
          response.keep_alive = response.keep_alive && request.keep_alive;
        }
        metrics_
            .counter(StrFormat("net.responses.%dxx", response.status / 100))
            .Increment();
        if (!socket.WriteAll(response.Serialize()).ok()) return;
        if (!response.keep_alive) return;
        request_started = NowSeconds();
        idle_since = NowSeconds();
        continue;  // A pipelined follower may already be buffered.
      }
      case HttpParser::Outcome::kNeedMore:
        break;
    }

    const bool mid_request = parser.buffered_bytes() > 0;
    const double now = NowSeconds();
    if (mid_request &&
        now - request_started > options_.request_deadline_seconds) {
      const Status timeout =
          Status::DeadlineExceeded("request read deadline exceeded");
      HttpResponse response =
          ErrorResponse(HttpStatusForStatus(timeout),
                        StatusCodeToString(timeout.code()), timeout.message());
      response.keep_alive = false;
      metrics_.counter("net.responses.4xx").Increment();
      PROST_IGNORE_ERROR(socket.WriteAll(response.Serialize()));
      return;
    }
    if (!mid_request && now - idle_since > options_.idle_timeout_seconds) {
      return;  // Idle keep-alive expiry: close quietly.
    }
    if (SecondsSinceDrainStarted() > options_.drain_grace_seconds) {
      return;  // Grace window over; stragglers get a closed connection.
    }
    Result<bool> readable = socket.WaitReadable(/*timeout_millis=*/100);
    if (!readable.ok()) return;
    if (!*readable) continue;
    if (parser.buffered_bytes() == 0) request_started = NowSeconds();
    Result<size_t> n = socket.Read(buffer, sizeof(buffer));
    if (!n.ok() || *n == 0) return;  // Error, timeout, or EOF.
    parser.Feed(std::string_view(buffer, *n));
  }
}

HttpResponse Server::Route(const HttpRequest& request) {
  if (request.path == "/healthz") {
    if (request.method != "GET") {
      HttpResponse response =
          ErrorResponse(405, HttpErrorCodeName(405), "use GET");
      response.AddHeader("Allow", "GET");
      return response;
    }
    HttpResponse response;
    response.AddHeader("Content-Type", "text/plain; charset=utf-8");
    response.body = "ok\n";
    return response;
  }
  if (request.path == "/metrics") {
    if (request.method != "GET") {
      HttpResponse response =
          ErrorResponse(405, HttpErrorCodeName(405), "use GET");
      response.AddHeader("Allow", "GET");
      return response;
    }
    return HandleMetrics();
  }
  if (request.path == "/sparql") {
    if (request.method != "GET" && request.method != "POST") {
      HttpResponse response =
          ErrorResponse(405, HttpErrorCodeName(405), "use GET or POST");
      response.AddHeader("Allow", "GET, POST");
      return response;
    }
    return HandleSparql(request);
  }
  return ErrorResponse(404, HttpErrorCodeName(404),
                       "no route for " + request.path);
}

HttpResponse Server::HandleSparql(const HttpRequest& request) {
  std::string query_text;
  if (request.method == "GET") {
    Result<std::vector<std::pair<std::string, std::string>>> params =
        ParseFormEncoded(request.query_string);
    if (!params.ok()) {
      return ErrorResponse(400, HttpErrorCodeName(400),
                           params.status().message());
    }
    bool found = false;
    for (const auto& [name, value] : *params) {
      if (name == "query") {
        query_text = value;
        found = true;
        break;
      }
    }
    if (!found) {
      return ErrorResponse(400, HttpErrorCodeName(400),
                           "missing query parameter");
    }
  } else {
    const std::string* content_type = request.FindHeader("content-type");
    const std::string media =
        content_type == nullptr ? "" : LowercaseMediaType(*content_type);
    if (media == "application/sparql-query") {
      query_text = request.body;
    } else if (media == "application/x-www-form-urlencoded") {
      Result<std::vector<std::pair<std::string, std::string>>> params =
          ParseFormEncoded(request.body);
      if (!params.ok()) {
        return ErrorResponse(400, HttpErrorCodeName(400),
                             params.status().message());
      }
      bool found = false;
      for (const auto& [name, value] : *params) {
        if (name == "query") {
          query_text = value;
          found = true;
          break;
        }
      }
      if (!found) {
        return ErrorResponse(400, HttpErrorCodeName(400),
                             "missing query form parameter");
      }
    } else {
      return ErrorResponse(
          415, HttpErrorCodeName(415),
          "POST /sparql accepts application/sparql-query or "
          "application/x-www-form-urlencoded, got \"" +
              media + "\"");
    }
  }

  // Admission, budget, and execution all live in the serve layer; the
  // translator's message (e.g. an unparseable query) rides back on 400s.
  Result<core::QueryResult> result = sessions_.ExecuteSparql(query_text);
  if (!result.ok()) {
    const Status& status = result.status();
    HttpResponse response =
        ErrorResponse(HttpStatusForStatus(status),
                      StatusCodeToString(status.code()), status.message());
    if (status.code() == StatusCode::kUnavailable) {
      response.AddHeader("Retry-After", "1");
    }
    return response;
  }

  const std::string* accept = request.FindHeader("accept");
  const ResultFormat format =
      SparqlResultWriter::Negotiate(accept == nullptr ? "" : *accept);
  Result<std::string> body =
      SparqlResultWriter::Serialize(sessions_.db(), result->relation, format);
  if (!body.ok()) {
    return ErrorResponse(500, "internal", body.status().message());
  }
  HttpResponse response;
  response.AddHeader("Content-Type", SparqlResultWriter::ContentType(format));
  response.body = std::move(*body);
  return response;
}

HttpResponse Server::HandleMetrics() {
  std::string body = "{\"db\":" + sessions_.db().metrics().Snapshot().ToJson() +
                     ",\"serve\":" + sessions_.metrics().Snapshot().ToJson() +
                     ",\"net\":" + metrics_.Snapshot().ToJson() + "}";
  HttpResponse response;
  response.AddHeader("Content-Type", "application/json");
  response.body = std::move(body);
  return response;
}

HttpResponse Server::ErrorResponse(int http_status, std::string_view code,
                                   std::string_view message) {
  HttpResponse response;
  response.status = http_status;
  response.AddHeader("Content-Type", "application/json");
  response.body = StrFormat("{\"error\":{\"code\":\"%s\",\"message\":\"%s\"}}",
                            JsonEscape(code).c_str(),
                            JsonEscape(message).c_str());
  return response;
}

}  // namespace prost::net
