#ifndef PROST_NET_SERVER_H_
#define PROST_NET_SERVER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/http.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "serve/session_manager.h"

/// The SPARQL protocol endpoint (DESIGN.md §13): a blocking-accept TCP
/// listener feeding a bounded pool of connection handlers, each of which
/// speaks HTTP/1.1 and funnels every query through the SessionManager's
/// admission control. The server owns sockets and threads; all query
/// semantics (admission, budgets, execution) stay in the serve layer.
///
/// Routes:
///   GET  /sparql?query=…   — SPARQL protocol query (URL-encoded)
///   POST /sparql           — body is the query (application/sparql-query)
///                            or query=… (x-www-form-urlencoded)
///   GET  /healthz          — liveness: "ok\n"
///   GET  /metrics          — JSON: {"db":…, "serve":…, "net":…}
///
/// Results are SPARQL 1.1 JSON or TSV by Accept header; execution errors
/// map through HttpStatusForStatus (503s carry Retry-After).

namespace prost::net {

struct ServerOptions {
  /// IPv4 listen address. Loopback by default: this is a cluster-internal
  /// endpoint, exposing it wider is an explicit operator decision.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the outcome from port().
  uint16_t port = 0;
  /// Connection-handler pool size: connections served concurrently.
  /// (Query concurrency is the SessionManager's max_in_flight; handlers
  /// beyond it just park in admission like any other caller.)
  int handler_threads = 4;
  /// Accepted connections waiting for a free handler. Overflow gets an
  /// immediate 503 + close — never an unbounded backlog.
  size_t max_pending_connections = 64;
  /// HTTP parser limits (request line 431 / headers 431 / body 413).
  HttpLimits http_limits;
  /// Per-request deadline, enforced two ways: SO_RCVTIMEO/SO_SNDTIMEO on
  /// the connection socket bound every blocking read/write, and the
  /// handler's read loop 408s a request whose bytes have been trickling
  /// in for longer than this.
  double request_deadline_seconds = 30.0;
  /// Keep-alive connections idle longer than this are closed.
  double idle_timeout_seconds = 30.0;
  /// Graceful-drain window: after Shutdown, requests that complete on
  /// already-open connections within this window are answered with
  /// 503 + Retry-After instead of a slammed door.
  double drain_grace_seconds = 0.5;
};

/// Lifecycle: construct → Start() → (serve) → Shutdown().
///
/// Contracts:
///  * Start binds and begins accepting; port() is then the bound port
///    (resolving an ephemeral request).
///  * Shutdown is graceful and idempotent: stop accepting, answer late
///    requests on open connections with 503 + Retry-After for the drain
///    grace window, finish every in-flight response (never truncate),
///    then close connections and join all threads. The SessionManager is
///    NOT shut down — it belongs to the caller.
///  * Locking — mu_ (rank kNetServer, outermost) guards lifecycle state
///    and the pending-connection queue only; it is never held across a
///    request execution or a socket transfer.
class Server {
 public:
  /// `sessions` must outlive the server and remain running until after
  /// Shutdown() returns.
  Server(serve::SessionManager& sessions, ServerOptions options);
  /// Runs Shutdown().
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the acceptor + handler threads. Fails
  /// (kIOError / kInvalidArgument) without leaking threads.
  Status Start();

  /// Graceful drain; see class contract. Blocks until all threads join.
  void Shutdown();

  /// The bound port; valid after Start() succeeded.
  uint16_t port() const { return port_; }

  bool draining() const;

  /// Transport metrics: net.connections_accepted / handled /
  /// rejected_pending_full counters, net.requests / net.responses.<1xx..5xx
  /// class counters, net.drain_rejected, and the net.pending_connections /
  /// net.active_connections gauges. Thread-safe.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  enum class State { kIdle, kRunning, kDraining, kStopped };

  void AcceptLoop();
  void HandlerLoop();
  /// Serves one connection to completion (keep-alive loop included).
  void ServeConnection(Socket socket);

  /// Routing + execution for one parsed request. Never touches mu_.
  HttpResponse Route(const HttpRequest& request);
  HttpResponse HandleSparql(const HttpRequest& request);
  HttpResponse HandleMetrics();
  HttpResponse ErrorResponse(int http_status, std::string_view code,
                             std::string_view message);

  /// Seconds since Shutdown flipped the state to kDraining; +inf-like
  /// large value when not draining.
  double SecondsSinceDrainStarted() const;

  serve::SessionManager& sessions_;
  const ServerOptions options_;
  uint16_t port_ = 0;

  mutable Mutex<LockRank::kNetServer> mu_;
  /// Handlers wait here for pending connections; Shutdown broadcasts.
  CondVar pending_cv_;
  State state_ PROST_GUARDED_BY(mu_) = State::kIdle;
  std::deque<Socket> pending_ PROST_GUARDED_BY(mu_);
  /// Connections currently owned by a handler (drives the gauge).
  int active_connections_ PROST_GUARDED_BY(mu_) = 0;
  /// Set once the winning Shutdown caller has joined everything, so
  /// concurrent Shutdown callers can block until the drain truly ended.
  bool shutdown_complete_ PROST_GUARDED_BY(mu_) = false;
  /// steady_clock::now() at drain start, as a duration count in seconds
  /// (stored flat so the header stays <chrono>-free).
  double drain_started_seconds_ PROST_GUARDED_BY(mu_) = 0;

  ListenSocket listener_;
  std::thread acceptor_;
  std::vector<std::thread> handlers_;

  /// Internally synchronized (own leaf mutex + atomic handles).
  mutable obs::MetricsRegistry metrics_;
};

}  // namespace prost::net

#endif  // PROST_NET_SERVER_H_
