#ifndef PROST_NET_SOCKET_H_
#define PROST_NET_SOCKET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

/// Thin RAII layer over POSIX TCP sockets — the only files in the tree
/// allowed to touch the socket(2) API (tools/lint.py `raw-socket`
/// forbids the headers elsewhere), so every fd is owned, every error
/// becomes a Status, and every timeout becomes kDeadlineExceeded instead
/// of an errno the caller has to interpret.
///
/// Deadlines ride on SO_RCVTIMEO / SO_SNDTIMEO: a Read or WriteAll that
/// exceeds the configured per-operation deadline fails with
/// kDeadlineExceeded, distinguishing "peer is slow" from "peer is gone"
/// (kIOError) and "peer closed" (Read returning 0).

namespace prost::net {

/// One connected TCP socket, closed on destruction. Move-only.
///
/// NOT thread-safe: a socket belongs to one handler thread at a time
/// (the server's per-connection sessions and the client both guarantee
/// single-threaded use).
class Socket {
 public:
  Socket() = default;
  /// Takes ownership of `fd` (-1 means empty).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Sets the per-operation read/write deadline (SO_RCVTIMEO and
  /// SO_SNDTIMEO). Zero or negative disables the deadline.
  Status SetDeadline(double seconds);

  /// Disables Nagle batching (TCP_NODELAY) — request/response protocols
  /// want the final segment flushed immediately.
  Status SetNoDelay();

  /// Reads up to `capacity` bytes; returns the count read, 0 on orderly
  /// peer close, kDeadlineExceeded when the read deadline expires, or
  /// kIOError on a transport error.
  Result<size_t> Read(char* buffer, size_t capacity);

  /// Writes all of `data`, looping over partial writes. kDeadlineExceeded
  /// when the write deadline expires mid-stream.
  Status WriteAll(std::string_view data);

  /// Waits until the socket is readable: true when readable (or the peer
  /// hung up — the next Read reports it), false when `timeout_millis`
  /// elapsed first. Used by the server's keep-alive idle loop so a
  /// draining server never blocks a full read deadline on an idle
  /// connection.
  Result<bool> WaitReadable(int timeout_millis);

 private:
  int fd_ = -1;
};

/// A bound, listening TCP socket. Move-only; closed on destruction.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { Close(); }
  ListenSocket(ListenSocket&& other) noexcept : fd_(other.fd_),
                                                port_(other.port_) {
    other.fd_ = -1;
  }
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  /// Binds `host:port` (IPv4 dotted quad; port 0 picks an ephemeral
  /// port, readable from port() afterwards) and starts listening.
  static Result<ListenSocket> BindAndListen(const std::string& host,
                                            uint16_t port, int backlog = 64);

  bool valid() const { return fd_ >= 0; }
  /// The resolved local port (meaningful after BindAndListen).
  uint16_t port() const { return port_; }
  void Close();

  /// Waits for a pending connection: true when Accept will not block,
  /// false on timeout. The accept loop polls this so shutdown is seen
  /// within one poll interval instead of blocking in accept(2) forever.
  Result<bool> WaitPending(int timeout_millis);

  /// Accepts one pending connection (blocking).
  Result<Socket> Accept();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// Connects to `host:port` (IPv4 dotted quad) with a connect deadline;
/// the returned socket has `deadline_seconds` set as its per-operation
/// read/write deadline too.
Result<Socket> ConnectTcp(const std::string& host, uint16_t port,
                          double deadline_seconds);

}  // namespace prost::net

#endif  // PROST_NET_SOCKET_H_
