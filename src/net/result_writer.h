#ifndef PROST_NET_RESULT_WRITER_H_
#define PROST_NET_RESULT_WRITER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/prost_db.h"
#include "engine/relation.h"

/// Result serialization for the SPARQL protocol endpoint: a Relation
/// (projected variables as columns, dictionary-encoded ids as values)
/// becomes SPARQL 1.1 Query Results JSON or TSV, chosen by the request's
/// Accept header. The inverse parser exists so tests and the bench can
/// deserialize a response back into lexical rows and compare them
/// row-identically against in-process execution.

namespace prost::net {

enum class ResultFormat {
  kJson,  // application/sparql-results+json (the default).
  kTsv,   // text/tab-separated-values.
};

/// A deserialized result set: variable names plus rows of N-Triples
/// lexical terms ("<iri>", "\"lit\"^^<dt>", "_:b0"), in response order.
struct SparqlResultSet {
  std::vector<std::string> vars;
  std::vector<std::vector<std::string>> rows;
};

class SparqlResultWriter {
 public:
  /// Content negotiation over the Accept header: the first recognized
  /// media type wins ("application/sparql-results+json" or
  /// "application/json" → JSON; "text/tab-separated-values" → TSV);
  /// anything else — including an absent or wildcard Accept — falls back
  /// to JSON, the format every SPARQL client speaks.
  static ResultFormat Negotiate(std::string_view accept_header);

  static const char* ContentType(ResultFormat format);

  /// Serializes `relation` in `format`, decoding ids through `db`'s
  /// dictionary. Row order is the relation's CollectRows order — the
  /// same order ProstDb::DecodeRows yields — so a network client and an
  /// in-process caller see identical row sequences.
  static Result<std::string> Serialize(const core::ProstDb& db,
                                       const engine::Relation& relation,
                                       ResultFormat format);

  /// Parses a SPARQL 1.1 JSON results document (the writer's own output
  /// shape) back into lexical rows. Binding terms are reassembled into
  /// canonical N-Triples.
  static Result<SparqlResultSet> ParseJson(std::string_view json);

  /// Parses the TSV serialization back into lexical rows.
  static Result<SparqlResultSet> ParseTsv(std::string_view tsv);
};

/// Escapes `text` for embedding inside a JSON string literal (quotes,
/// backslash, control characters). UTF-8 passes through untouched.
std::string JsonEscape(std::string_view text);

}  // namespace prost::net

#endif  // PROST_NET_RESULT_WRITER_H_
