#include "core/vp_store.h"

#include <algorithm>

#include "columnar/lexical_format.h"
#include "common/hash.h"
#include "common/io.h"
#include "common/str_util.h"
#include "engine/kernels.h"

namespace prost::core {

using columnar::Column;
using columnar::ColumnKind;
using columnar::Field;
using columnar::IdVector;
using columnar::Schema;
using columnar::StoredTable;
using engine::Relation;
using engine::RelationChunk;

VpStore VpStore::Build(const rdf::EncodedGraph& graph, uint32_t num_workers) {
  VpStore store;
  store.num_workers_ = num_workers;

  // Per predicate, per worker: the (s, o) column pair.
  struct Builder {
    std::vector<IdVector> subjects;
    std::vector<IdVector> objects;
  };
  std::map<rdf::TermId, Builder> builders;
  for (const rdf::EncodedTriple& t : graph.triples()) {
    Builder& b = builders[t.predicate];
    if (b.subjects.empty()) {
      b.subjects.resize(num_workers);
      b.objects.resize(num_workers);
    }
    uint32_t w = static_cast<uint32_t>(Mix64(t.subject) % num_workers);
    b.subjects[w].push_back(t.subject);
    b.objects[w].push_back(t.object);
  }

  Schema schema({Field{"s", ColumnKind::kId}, Field{"o", ColumnKind::kId}});
  std::vector<uint32_t> term_lengths = graph.dictionary().TermLengths();
  for (auto& [predicate, b] : builders) {
    PredicateTable table;
    table.partitions.reserve(num_workers);
    table.partition_bytes.reserve(num_workers);
    for (uint32_t w = 0; w < num_workers; ++w) {
      table.total_rows += b.subjects[w].size();
      std::vector<Column> columns;
      columns.emplace_back(std::move(b.subjects[w]));
      columns.emplace_back(std::move(b.objects[w]));
      table.partitions.emplace_back(schema, std::move(columns));
      // Sizes are in the lexical (Parquet string) form — what the
      // simulated Spark scans and what its planner sees.
      const StoredTable& part = table.partitions.back();
      table.partition_bytes.push_back(
          LexicalColumnSizeEstimate(part.column(0), term_lengths) +
          LexicalColumnSizeEstimate(part.column(1), term_lengths));
    }
    store.tables_.emplace(predicate, std::move(table));
  }
  return store;
}

VpStore VpStore::Assemble(uint32_t num_workers,
                          std::map<rdf::TermId, PredicateTable> tables) {
  VpStore store;
  store.num_workers_ = num_workers;
  store.tables_ = std::move(tables);
  return store;
}

const VpStore::PredicateTable* VpStore::Find(rdf::TermId predicate) const {
  auto it = tables_.find(predicate);
  return it == tables_.end() ? nullptr : &it->second;
}

uint64_t VpStore::ScanPlannerBytes(rdf::TermId predicate) const {
  const PredicateTable* table = Find(predicate);
  if (table == nullptr) return 0;
  uint64_t planner_bytes = 0;
  for (uint64_t bytes : table->partition_bytes) planner_bytes += bytes;
  return planner_bytes;
}

Result<Relation> VpStore::Scan(rdf::TermId predicate,
                               const PatternTerm& subject,
                               const PatternTerm& object,
                               cluster::CostModel& cost,
                               const engine::ExecContext* exec) const {
  return ScanTable(Find(predicate), subject, object, num_workers_, cost,
                   exec);
}

Result<Relation> VpStore::ScanTable(const PredicateTable* table,
                                    const PatternTerm& subject,
                                    const PatternTerm& object,
                                    uint32_t num_workers,
                                    cluster::CostModel& cost,
                                    const engine::ExecContext* exec) {
  // Output columns: subject variable first, then object variable (when
  // distinct). `?x p ?x` yields a single column with s==o enforced.
  std::vector<std::string> names;
  if (subject.is_variable) names.push_back(subject.name);
  bool same_var = subject.is_variable && object.is_variable &&
                  subject.name == object.name;
  if (object.is_variable && !same_var) names.push_back(object.name);
  if (names.empty()) {
    return Status::Unimplemented(
        "triple patterns without variables are not supported");
  }

  Relation output(names, num_workers);
  if (table == nullptr) {
    output.set_planner_bytes(0);
    return output;  // Unknown predicate: empty relation, nothing scanned.
  }

  // Planner sees the base table's serialized size (filters do not
  // discount it — Spark 2.1 static planning).
  uint64_t planner_bytes = 0;
  for (uint64_t bytes : table->partition_bytes) planner_bytes += bytes;
  output.set_planner_bytes(planner_bytes);

  // Emits matching rows from partition `w`'s rows [begin, end) into
  // `out` — the one scan kernel both the serial and the morsel-parallel
  // path run. Vectorized: constant terms filter into a selection vector
  // (`sel`, caller-provided scratch), and the surviving rows materialize
  // via per-column gathers — same rows, same ascending order as the
  // row-at-a-time loop this replaces. Returns the number of rows emitted.
  auto scan_range = [&](uint32_t w, size_t begin, size_t end,
                        RelationChunk& out,
                        std::vector<uint32_t>& sel) -> uint64_t {
    const StoredTable& part = table->partitions[w];
    const IdVector& subjects = part.column(0).ids();
    const IdVector& objects = part.column(1).ids();
    if (subject.is_variable && object.is_variable && !same_var) {
      // Open scan: every row passes — bulk-append both columns.
      out.columns[0].insert(out.columns[0].end(), subjects.begin() + begin,
                            subjects.begin() + end);
      out.columns[1].insert(out.columns[1].end(), objects.begin() + begin,
                            objects.begin() + end);
      return end - begin;
    }
    sel.clear();
    if (!subject.is_variable) {
      engine::kernels::Filter(subjects, subject.id, begin, end, sel);
      if (!object.is_variable) {
        engine::kernels::Refine(objects, object.id, sel);
      }
    } else if (!object.is_variable) {
      engine::kernels::Filter(objects, object.id, begin, end, sel);
    } else {  // same_var: ?x p ?x
      engine::kernels::FilterRowsEqual(subjects, objects, begin, end, sel);
    }
    size_t c = 0;
    if (subject.is_variable) {
      engine::kernels::Gather(subjects, sel, out.columns[c++]);
    }
    if (object.is_variable && !same_var) {
      engine::kernels::Gather(objects, sel, out.columns[c]);
    }
    return sel.size();
  };

  std::vector<uint64_t> emitted(num_workers, 0);
  if (engine::IsParallel(exec)) {
    // Morsel-parallel scan: split every partition into morsels, run all
    // (partition, morsel) tasks on the pool, then merge morsel outputs
    // back per partition in morsel order — the serial row order.
    struct ScanMorsel {
      uint32_t worker;
      size_t begin;
      size_t end;
    };
    std::vector<ScanMorsel> morsels;
    for (uint32_t w = 0; w < num_workers; ++w) {
      size_t rows = table->partitions[w].column(0).ids().size();
      for (size_t begin = 0; begin < rows; begin += exec->morsel_rows()) {
        morsels.push_back(
            {w, begin, std::min(rows, begin + exec->morsel_rows())});
      }
    }
    std::vector<RelationChunk> outs(morsels.size());
    std::vector<uint64_t> morsel_emitted(morsels.size(), 0);
    exec->pool()->ParallelFor(morsels.size(), [&](size_t m) {
      outs[m].columns.resize(names.size());
      std::vector<uint32_t> sel;
      morsel_emitted[m] =
          scan_range(morsels[m].worker, morsels[m].begin, morsels[m].end,
                     outs[m], sel);
    });
    for (size_t m = 0; m < morsels.size(); ++m) {
      emitted[morsels[m].worker] += morsel_emitted[m];
      RelationChunk& out = output.mutable_chunks()[morsels[m].worker];
      for (size_t c = 0; c < out.columns.size(); ++c) {
        out.columns[c].insert(out.columns[c].end(),
                              outs[m].columns[c].begin(),
                              outs[m].columns[c].end());
      }
    }
  } else {
    std::vector<uint32_t> sel;  // Selection scratch, reused per partition.
    for (uint32_t w = 0; w < num_workers; ++w) {
      size_t rows = table->partitions[w].column(0).ids().size();
      emitted[w] = scan_range(w, 0, rows, output.mutable_chunks()[w], sel);
    }
  }
  // Cost charges happen on the calling thread either way — the simulated
  // cluster clock is independent of real executor parallelism.
  for (uint32_t w = 0; w < num_workers; ++w) {
    cost.ChargeScan(w, table->partition_bytes[w]);
    cost.ChargeCpuRows(
        w, table->partitions[w].column(0).ids().size() + emitted[w]);
  }
  // VP partitions are subject-hash placed, so a variable subject keeps
  // that co-location in the output.
  if (subject.is_variable) output.set_hash_partitioned_by(0);
  return output;
}

VpStore::PredicateTable VpStore::BuildTable(
    const std::vector<std::pair<rdf::TermId, rdf::TermId>>& rows,
    uint32_t num_workers, const std::vector<uint32_t>& term_lengths) {
  std::vector<IdVector> subjects(num_workers);
  std::vector<IdVector> objects(num_workers);
  for (const auto& [s, o] : rows) {
    uint32_t w = static_cast<uint32_t>(Mix64(s) % num_workers);
    subjects[w].push_back(s);
    objects[w].push_back(o);
  }
  Schema schema({Field{"s", ColumnKind::kId}, Field{"o", ColumnKind::kId}});
  PredicateTable table;
  table.partitions.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    table.total_rows += subjects[w].size();
    std::vector<Column> columns;
    columns.emplace_back(std::move(subjects[w]));
    columns.emplace_back(std::move(objects[w]));
    table.partitions.emplace_back(schema, std::move(columns));
    const StoredTable& part = table.partitions.back();
    table.partition_bytes.push_back(
        LexicalColumnSizeEstimate(part.column(0), term_lengths) +
        LexicalColumnSizeEstimate(part.column(1), term_lengths));
  }
  return table;
}

uint64_t VpStore::TotalBytesEstimate() const {
  uint64_t total = 0;
  for (const auto& [predicate, table] : tables_) {
    for (uint64_t bytes : table.partition_bytes) total += bytes;
  }
  return total;
}

Status VpStore::WriteTo(const std::string& dir,
                        const rdf::Dictionary& dictionary) const {
  PROST_RETURN_IF_ERROR(MakeDirectories(dir));
  // Files are numbered sequentially; the manifest maps each number to
  // its predicate's lexical form so the directory is self-describing.
  std::string manifest;
  uint64_t index = 0;
  for (const auto& [predicate, table] : tables_) {
    PROST_ASSIGN_OR_RETURN(std::string_view lexical,
                           dictionary.LookupId(predicate));
    manifest += StrFormat("%llu\t%s\n",
                          static_cast<unsigned long long>(index),
                          std::string(lexical).c_str());
    for (uint32_t w = 0; w < num_workers_; ++w) {
      std::string path = StrFormat(
          "%s/vp_%llu_p%u.tbl", dir.c_str(),
          static_cast<unsigned long long>(index), w);
      PROST_RETURN_IF_ERROR(columnar::WriteLexicalTableFile(
          table.partitions[w], dictionary, path));
    }
    ++index;
  }
  return WriteStringToFile(dir + "/vp_manifest.txt", manifest);
}

}  // namespace prost::core
