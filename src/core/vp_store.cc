#include "core/vp_store.h"

#include <algorithm>

#include "columnar/lexical_format.h"
#include "common/hash.h"
#include "common/io.h"
#include "common/str_util.h"
#include "engine/kernels.h"

namespace prost::core {

using columnar::Column;
using columnar::ColumnKind;
using columnar::Field;
using columnar::IdVector;
using columnar::Schema;
using columnar::StoredTable;
using engine::Relation;
using engine::RelationChunk;

namespace {

/// Zone-map test: can any row of a chunk with these stats bind this id?
/// An all-NULL chunk (value_count == 0) cannot produce the id, and NULLs
/// never participate in min/max, so the interval test is exact on ids.
bool ZoneMayContain(const columnar::ColumnStats& stats, rdf::TermId id) {
  if (stats.value_count == 0) return false;
  return id >= stats.min_id && id <= stats.max_id;
}

}  // namespace

VpStore VpStore::Build(const rdf::EncodedGraph& graph, uint32_t num_workers) {
  VpStore store;
  store.num_workers_ = num_workers;

  // Per predicate, per worker: the (s, o) column pair.
  struct Builder {
    std::vector<IdVector> subjects;
    std::vector<IdVector> objects;
  };
  std::map<rdf::TermId, Builder> builders;
  for (const rdf::EncodedTriple& t : graph.triples()) {
    Builder& b = builders[t.predicate];
    if (b.subjects.empty()) {
      b.subjects.resize(num_workers);
      b.objects.resize(num_workers);
    }
    uint32_t w = static_cast<uint32_t>(Mix64(t.subject) % num_workers);
    b.subjects[w].push_back(t.subject);
    b.objects[w].push_back(t.object);
  }

  Schema schema({Field{"s", ColumnKind::kId}, Field{"o", ColumnKind::kId}});
  std::vector<uint32_t> term_lengths = graph.dictionary().TermLengths();
  for (auto& [predicate, b] : builders) {
    PredicateTable table;
    table.partitions.reserve(num_workers);
    table.partition_bytes.reserve(num_workers);
    for (uint32_t w = 0; w < num_workers; ++w) {
      table.total_rows += b.subjects[w].size();
      std::vector<Column> columns;
      columns.emplace_back(std::move(b.subjects[w]));
      columns.emplace_back(std::move(b.objects[w]));
      table.partitions.emplace_back(schema, std::move(columns));
      // Sizes are in the lexical (Parquet string) form — what the
      // simulated Spark scans and what its planner sees.
      const StoredTable& part = table.partitions.back();
      table.partition_bytes.push_back(
          LexicalColumnSizeEstimate(part.column(0), term_lengths) +
          LexicalColumnSizeEstimate(part.column(1), term_lengths));
    }
    store.tables_.emplace(predicate, std::move(table));
  }
  return store;
}

VpStore VpStore::Assemble(uint32_t num_workers,
                          std::map<rdf::TermId, PredicateTable> tables) {
  VpStore store;
  store.num_workers_ = num_workers;
  store.tables_ = std::move(tables);
  return store;
}

const VpStore::PredicateTable* VpStore::Find(rdf::TermId predicate) const {
  auto it = tables_.find(predicate);
  return it == tables_.end() ? nullptr : &it->second;
}

uint64_t VpStore::ScanPlannerBytes(rdf::TermId predicate) const {
  const PredicateTable* table = Find(predicate);
  if (table == nullptr) return 0;
  uint64_t planner_bytes = 0;
  for (uint64_t bytes : table->partition_bytes) planner_bytes += bytes;
  return planner_bytes;
}

Result<Relation> VpStore::Scan(rdf::TermId predicate,
                               const PatternTerm& subject,
                               const PatternTerm& object,
                               cluster::CostModel& cost,
                               const engine::ExecContext* exec,
                               const ScanHints* hints,
                               ScanTelemetry* telemetry) const {
  return ScanTable(Find(predicate), subject, object, num_workers_, cost,
                   exec, pool_, hints, telemetry);
}

Result<Relation> VpStore::ScanTable(const PredicateTable* table,
                                    const PatternTerm& subject,
                                    const PatternTerm& object,
                                    uint32_t num_workers,
                                    cluster::CostModel& cost,
                                    const engine::ExecContext* exec,
                                    columnar::BufferPool* pool,
                                    const ScanHints* hints,
                                    ScanTelemetry* telemetry) {
  // Output columns: subject variable first, then object variable (when
  // distinct). `?x p ?x` yields a single column with s==o enforced.
  std::vector<std::string> names;
  if (subject.is_variable) names.push_back(subject.name);
  bool same_var = subject.is_variable && object.is_variable &&
                  subject.name == object.name;
  if (object.is_variable && !same_var) names.push_back(object.name);
  if (names.empty()) {
    return Status::Unimplemented(
        "triple patterns without variables are not supported");
  }

  Relation output(names, num_workers);
  if (table == nullptr) {
    output.set_planner_bytes(0);
    return output;  // Unknown predicate: empty relation, nothing scanned.
  }

  // Planner sees the base table's serialized size (filters do not
  // discount it — Spark 2.1 static planning).
  uint64_t planner_bytes = 0;
  for (uint64_t bytes : table->partition_bytes) planner_bytes += bytes;
  output.set_planner_bytes(planner_bytes);

  if (table->paged_mode()) {
    if (pool == nullptr) {
      return Status::Internal("paged VP table scanned without a buffer pool");
    }
    const bool open_scan =
        subject.is_variable && object.is_variable && !same_var;
    // Every id each storage column is constrained to equal: pattern
    // constants, plus pushed-filter equality hints on the column's
    // variable (a hint of kNullTermId matches ZoneMayContain nowhere,
    // which is exactly right — the filter constant is outside the
    // dictionary, so no stored row survives it).
    std::vector<rdf::TermId> s_eq, o_eq;
    if (!subject.is_variable) s_eq.push_back(subject.id);
    if (!object.is_variable) o_eq.push_back(object.id);
    if (hints != nullptr) {
      for (const ScanEqualityHint& hint : hints->equals) {
        if (subject.is_variable && subject.name == hint.variable) {
          s_eq.push_back(hint.id);
        }
        if (object.is_variable && object.name == hint.variable) {
          o_eq.push_back(hint.id);
        }
      }
    }

    // Pruning pass, all from metadata (no decode): bloom on the
    // subject-key column kills whole partitions, zone maps kill row
    // groups. Surviving groups become scan tasks in (worker, group)
    // order — ascending row order within each partition.
    struct GroupTask {
      uint32_t worker;
      uint32_t group;
    };
    std::vector<GroupTask> tasks;
    std::vector<uint64_t> scanned_rows(num_workers, 0);
    std::vector<uint64_t> charged_bytes(num_workers, 0);
    ScanTelemetry local;
    for (uint32_t w = 0; w < num_workers; ++w) {
      const columnar::PagedTable& paged = table->paged[w];
      local.row_groups_total += paged.num_groups();
      bool bloom_rejected = false;
      for (rdf::TermId id : s_eq) {
        if (!paged.key_bloom().MayContain(id)) {
          bloom_rejected = true;
          break;
        }
      }
      if (bloom_rejected) {
        ++local.partitions_skipped;
        continue;
      }
      // Scan charges stay in the lexical byte domain: apportion the
      // partition's lexical size over groups in proportion to encoded
      // payload, flooring cumulatively so per-group charges telescope
      // to exactly partition_bytes[w] when nothing is skipped.
      const uint64_t payload_total = paged.payload_bytes();
      const uint64_t lex_total = table->partition_bytes[w];
      uint64_t payload_cum = 0;
      uint64_t lex_cum = 0;
      for (size_t g = 0; g < paged.num_groups(); ++g) {
        for (const columnar::ChunkMeta& chunk : paged.group(g).chunks) {
          payload_cum += chunk.bytes;
        }
        uint64_t lex_next = payload_total == 0
                                ? lex_total
                                : lex_total * payload_cum / payload_total;
        uint64_t group_lex = lex_next - lex_cum;
        lex_cum = lex_next;
        bool keep = true;
        for (rdf::TermId id : s_eq) {
          if (!ZoneMayContain(paged.stats(g, 0), id)) {
            keep = false;
            break;
          }
        }
        if (keep) {
          for (rdf::TermId id : o_eq) {
            if (!ZoneMayContain(paged.stats(g, 1), id)) {
              keep = false;
              break;
            }
          }
        }
        if (!keep) {
          ++local.row_groups_skipped;
          continue;
        }
        tasks.push_back({w, static_cast<uint32_t>(g)});
        scanned_rows[w] += paged.group(g).num_rows;
        charged_bytes[w] += group_lex;
      }
    }

    // The same scan kernel as the in-memory path, over one pinned row
    // group (chunk-local row indices). Pins hold the decoded columns
    // resident for exactly the duration of the group's scan.
    auto scan_group = [&](uint32_t w, uint32_t g, RelationChunk& out,
                          std::vector<uint32_t>& sel) -> Result<uint64_t> {
      const columnar::PagedTable& paged = table->paged[w];
      PROST_ASSIGN_OR_RETURN(columnar::PinnedPage s_page,
                             pool->Pin(paged, g, 0));
      PROST_ASSIGN_OR_RETURN(columnar::PinnedPage o_page,
                             pool->Pin(paged, g, 1));
      const IdVector& subjects = s_page.column().ids();
      const IdVector& objects = o_page.column().ids();
      const size_t rows = subjects.size();
      if (open_scan) {
        out.columns[0].insert(out.columns[0].end(), subjects.begin(),
                              subjects.end());
        out.columns[1].insert(out.columns[1].end(), objects.begin(),
                              objects.end());
        return uint64_t{rows};
      }
      sel.clear();
      if (!subject.is_variable) {
        engine::kernels::Filter(subjects, subject.id, 0, rows, sel);
        if (!object.is_variable) {
          engine::kernels::Refine(objects, object.id, sel);
        }
      } else if (!object.is_variable) {
        engine::kernels::Filter(objects, object.id, 0, rows, sel);
      } else {  // same_var: ?x p ?x
        engine::kernels::FilterRowsEqual(subjects, objects, 0, rows, sel);
      }
      size_t c = 0;
      if (subject.is_variable) {
        engine::kernels::Gather(subjects, sel, out.columns[c++]);
      }
      if (object.is_variable && !same_var) {
        engine::kernels::Gather(objects, sel, out.columns[c]);
      }
      return uint64_t{sel.size()};
    };

    std::vector<uint64_t> emitted(num_workers, 0);
    if (engine::IsParallel(exec) && tasks.size() > 1) {
      // Row groups are the paged morsels: one task per surviving group,
      // merged back per partition in task order (= row order).
      std::vector<RelationChunk> outs(tasks.size());
      std::vector<uint64_t> task_emitted(tasks.size(), 0);
      std::vector<Status> task_status(tasks.size(), Status::OK());
      exec->pool()->ParallelFor(tasks.size(), [&](size_t t) {
        outs[t].columns.resize(names.size());
        std::vector<uint32_t> sel;
        Result<uint64_t> rows =
            scan_group(tasks[t].worker, tasks[t].group, outs[t], sel);
        if (rows.ok()) {
          task_emitted[t] = *rows;
        } else {
          task_status[t] = rows.status();
        }
      });
      for (const Status& status : task_status) {
        PROST_RETURN_IF_ERROR(status);
      }
      for (size_t t = 0; t < tasks.size(); ++t) {
        emitted[tasks[t].worker] += task_emitted[t];
        RelationChunk& out = output.mutable_chunks()[tasks[t].worker];
        for (size_t c = 0; c < out.columns.size(); ++c) {
          out.columns[c].insert(out.columns[c].end(),
                                outs[t].columns[c].begin(),
                                outs[t].columns[c].end());
        }
      }
    } else {
      std::vector<uint32_t> sel;
      for (const GroupTask& task : tasks) {
        PROST_ASSIGN_OR_RETURN(
            uint64_t rows,
            scan_group(task.worker, task.group,
                       output.mutable_chunks()[task.worker], sel));
        emitted[task.worker] += rows;
      }
    }
    for (uint32_t w = 0; w < num_workers; ++w) {
      cost.ChargeScan(w, charged_bytes[w]);
      cost.ChargeCpuRows(w, scanned_rows[w] + emitted[w]);
      local.bytes_scanned += charged_bytes[w];
    }
    pool->NoteRowGroupsSkipped(local.row_groups_skipped);
    pool->NotePartitionsSkipped(local.partitions_skipped);
    pool->NoteBytesScanned(local.bytes_scanned);
    if (telemetry != nullptr) *telemetry = local;
    if (subject.is_variable) output.set_hash_partitioned_by(0);
    return output;
  }

  // Emits matching rows from partition `w`'s rows [begin, end) into
  // `out` — the one scan kernel both the serial and the morsel-parallel
  // path run. Vectorized: constant terms filter into a selection vector
  // (`sel`, caller-provided scratch), and the surviving rows materialize
  // via per-column gathers — same rows, same ascending order as the
  // row-at-a-time loop this replaces. Returns the number of rows emitted.
  auto scan_range = [&](uint32_t w, size_t begin, size_t end,
                        RelationChunk& out,
                        std::vector<uint32_t>& sel) -> uint64_t {
    const StoredTable& part = table->partitions[w];
    const IdVector& subjects = part.column(0).ids();
    const IdVector& objects = part.column(1).ids();
    if (subject.is_variable && object.is_variable && !same_var) {
      // Open scan: every row passes — bulk-append both columns.
      out.columns[0].insert(out.columns[0].end(), subjects.begin() + begin,
                            subjects.begin() + end);
      out.columns[1].insert(out.columns[1].end(), objects.begin() + begin,
                            objects.begin() + end);
      return end - begin;
    }
    sel.clear();
    if (!subject.is_variable) {
      engine::kernels::Filter(subjects, subject.id, begin, end, sel);
      if (!object.is_variable) {
        engine::kernels::Refine(objects, object.id, sel);
      }
    } else if (!object.is_variable) {
      engine::kernels::Filter(objects, object.id, begin, end, sel);
    } else {  // same_var: ?x p ?x
      engine::kernels::FilterRowsEqual(subjects, objects, begin, end, sel);
    }
    size_t c = 0;
    if (subject.is_variable) {
      engine::kernels::Gather(subjects, sel, out.columns[c++]);
    }
    if (object.is_variable && !same_var) {
      engine::kernels::Gather(objects, sel, out.columns[c]);
    }
    return sel.size();
  };

  std::vector<uint64_t> emitted(num_workers, 0);
  if (engine::IsParallel(exec)) {
    // Morsel-parallel scan: split every partition into morsels, run all
    // (partition, morsel) tasks on the pool, then merge morsel outputs
    // back per partition in morsel order — the serial row order.
    struct ScanMorsel {
      uint32_t worker;
      size_t begin;
      size_t end;
    };
    std::vector<ScanMorsel> morsels;
    for (uint32_t w = 0; w < num_workers; ++w) {
      size_t rows = table->partitions[w].column(0).ids().size();
      for (size_t begin = 0; begin < rows; begin += exec->morsel_rows()) {
        morsels.push_back(
            {w, begin, std::min(rows, begin + exec->morsel_rows())});
      }
    }
    std::vector<RelationChunk> outs(morsels.size());
    std::vector<uint64_t> morsel_emitted(morsels.size(), 0);
    exec->pool()->ParallelFor(morsels.size(), [&](size_t m) {
      outs[m].columns.resize(names.size());
      std::vector<uint32_t> sel;
      morsel_emitted[m] =
          scan_range(morsels[m].worker, morsels[m].begin, morsels[m].end,
                     outs[m], sel);
    });
    for (size_t m = 0; m < morsels.size(); ++m) {
      emitted[morsels[m].worker] += morsel_emitted[m];
      RelationChunk& out = output.mutable_chunks()[morsels[m].worker];
      for (size_t c = 0; c < out.columns.size(); ++c) {
        out.columns[c].insert(out.columns[c].end(),
                              outs[m].columns[c].begin(),
                              outs[m].columns[c].end());
      }
    }
  } else {
    std::vector<uint32_t> sel;  // Selection scratch, reused per partition.
    for (uint32_t w = 0; w < num_workers; ++w) {
      size_t rows = table->partitions[w].column(0).ids().size();
      emitted[w] = scan_range(w, 0, rows, output.mutable_chunks()[w], sel);
    }
  }
  // Cost charges happen on the calling thread either way — the simulated
  // cluster clock is independent of real executor parallelism.
  for (uint32_t w = 0; w < num_workers; ++w) {
    cost.ChargeScan(w, table->partition_bytes[w]);
    cost.ChargeCpuRows(
        w, table->partitions[w].column(0).ids().size() + emitted[w]);
  }
  // VP partitions are subject-hash placed, so a variable subject keeps
  // that co-location in the output.
  if (subject.is_variable) output.set_hash_partitioned_by(0);
  return output;
}

VpStore::PredicateTable VpStore::BuildTable(
    const std::vector<std::pair<rdf::TermId, rdf::TermId>>& rows,
    uint32_t num_workers, const std::vector<uint32_t>& term_lengths) {
  std::vector<IdVector> subjects(num_workers);
  std::vector<IdVector> objects(num_workers);
  for (const auto& [s, o] : rows) {
    uint32_t w = static_cast<uint32_t>(Mix64(s) % num_workers);
    subjects[w].push_back(s);
    objects[w].push_back(o);
  }
  Schema schema({Field{"s", ColumnKind::kId}, Field{"o", ColumnKind::kId}});
  PredicateTable table;
  table.partitions.reserve(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    table.total_rows += subjects[w].size();
    std::vector<Column> columns;
    columns.emplace_back(std::move(subjects[w]));
    columns.emplace_back(std::move(objects[w]));
    table.partitions.emplace_back(schema, std::move(columns));
    const StoredTable& part = table.partitions.back();
    table.partition_bytes.push_back(
        LexicalColumnSizeEstimate(part.column(0), term_lengths) +
        LexicalColumnSizeEstimate(part.column(1), term_lengths));
  }
  return table;
}

void VpStore::EnablePaging(columnar::BufferPool* pool,
                           uint32_t row_group_rows) {
  pool_ = pool;
  for (auto& [predicate, table] : tables_) {
    table.paged.clear();
    table.paged.reserve(table.partitions.size());
    for (StoredTable& part : table.partitions) {
      table.paged.push_back(
          columnar::PagedTable::FromStored(part, row_group_rows));
      // Release the decoded columns; keep a schema-shaped empty so code
      // that inspects partition shape (e.g. the plan checker) still sees
      // one entry per worker.
      Schema schema = part.schema();
      part = StoredTable(std::move(schema));
    }
  }
}

uint64_t VpStore::TotalBytesEstimate() const {
  uint64_t total = 0;
  for (const auto& [predicate, table] : tables_) {
    for (uint64_t bytes : table.partition_bytes) total += bytes;
  }
  return total;
}

Status VpStore::WriteTo(const std::string& dir,
                        const rdf::Dictionary& dictionary) const {
  PROST_RETURN_IF_ERROR(MakeDirectories(dir));
  // Files are numbered sequentially; the manifest maps each number to
  // its predicate's lexical form so the directory is self-describing.
  std::string manifest;
  uint64_t index = 0;
  for (const auto& [predicate, table] : tables_) {
    PROST_ASSIGN_OR_RETURN(std::string_view lexical,
                           dictionary.LookupId(predicate));
    manifest += StrFormat("%llu\t%s\n",
                          static_cast<unsigned long long>(index),
                          std::string(lexical).c_str());
    for (uint32_t w = 0; w < num_workers_; ++w) {
      std::string path = StrFormat(
          "%s/vp_%llu_p%u.tbl", dir.c_str(),
          static_cast<unsigned long long>(index), w);
      if (table.paged_mode()) {
        // Paged stores persist from the encoded form — decode once here
        // rather than keeping both representations resident.
        PROST_ASSIGN_OR_RETURN(StoredTable decoded,
                               table.paged[w].ToStored());
        PROST_RETURN_IF_ERROR(
            columnar::WriteLexicalTableFile(decoded, dictionary, path));
      } else {
        PROST_RETURN_IF_ERROR(columnar::WriteLexicalTableFile(
            table.partitions[w], dictionary, path));
      }
    }
    ++index;
  }
  return WriteStringToFile(dir + "/vp_manifest.txt", manifest);
}

}  // namespace prost::core
