#ifndef PROST_CORE_PROST_DB_H_
#define PROST_CORE_PROST_DB_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/config.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/executor.h"
#include "core/property_table.h"
#include "core/statistics.h"
#include "core/translator.h"
#include "core/vp_store.h"
#include "engine/operators.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/passes.h"
#include "rdf/graph.h"
#include "sparql/algebra.h"
#include "stats/cardinality_estimator.h"
#include "stats/characteristic_sets.h"

namespace prost::core {

/// PRoST: the paper's system. Stores an RDF graph twice — Vertical
/// Partitioning tables and a Property Table — translates SPARQL into Join
/// Trees with statistics-based priorities, and executes them on the
/// simulated Spark cluster.
///
///   prost::core::ProstDb::Options options;
///   auto db = prost::core::ProstDb::LoadFromNTriples(ntriples, options);
///   auto result = db->ExecuteSparql("SELECT * WHERE { ?s <p> ?o . }");
class ProstDb {
 public:
  /// The ablation-study switches below (enable_stats_ordering, the join
  /// knobs, the optimizer passes) are enumerated once in the DESIGN.md
  /// §4 ablation matrix.
  struct Options {
    cluster::ClusterConfig cluster;
    /// Disables the Property Table entirely (Figure 2's "VP only" bars):
    /// no PT is built and every pattern becomes a VP node.
    bool use_property_table = true;
    /// §5 future work: also build the object-keyed Property Table.
    bool use_reverse_property_table = false;
    /// A1 ablation: disable §3.3 statistics-based node ordering.
    bool enable_stats_ordering = true;
    /// §5 future work: collect pairwise subject-overlap statistics at
    /// load (extra loading cost) for sharper Join Tree estimates.
    bool collect_precise_statistics = false;
    /// Statically verify every Join Tree (analysis::CheckPlan) between
    /// translation and execution: schema resolution, join-key presence
    /// and type agreement, statistics/storage consistency. Opt-out is
    /// honored only in plain release builds — debug and sanitizer builds
    /// (PROST_PARANOID_CHECKS) always verify.
    bool verify_plans = true;
    engine::JoinOptions join;
    /// Which optimizer passes rewrite the physical plan between
    /// translation and execution (constant-filter pushdown, plan-time
    /// join-strategy resolution, early projection — see DESIGN.md §4 and
    /// §10). All-false executes the translated Join Tree exactly as
    /// built; results are bit-identical either way, only the simulated
    /// cost differs.
    plan::PassOptions passes;
    /// Real-executor parallelism (morsel-driven operators). The default
    /// (num_threads = 1) runs the serial paths; num_threads = 0 uses
    /// cluster.cores_per_worker. Results are bit-identical across thread
    /// counts and simulated times are unchanged.
    engine::ExecOptions exec;
    /// Beyond-RAM execution (DESIGN.md §15). With a non-zero
    /// buffer_pool_bytes, storage switches after load to paged row
    /// groups behind a shared BufferPool of that byte budget: scans pin
    /// and decode chunks on demand (LRU-evicted), skip row groups via
    /// zone maps and partitions via key bloom filters. Query results
    /// stay bit-identical to the default in-memory path.
    struct StorageOptions {
      /// 0 keeps the classic fully-decoded in-memory storage.
      uint64_t buffer_pool_bytes = 0;
      /// Rows per row group when paging (0 = columnar::kRowGroupSize).
      /// Smaller groups mean finer skipping and a finer-grained pool.
      uint32_t row_group_rows = 0;
    };
    StorageOptions storage;
  };

  /// Loads from an already-encoded graph. The graph is deduplicated, the
  /// statistics pass runs, and both storage structures are built; the
  /// simulated loading cost lands in load_report().
  static Result<std::unique_ptr<ProstDb>> LoadFromGraph(
      rdf::EncodedGraph graph, const Options& options);

  /// Loads from a shared graph (used when several systems are built over
  /// the same dataset, e.g. the comparison benches). The graph must
  /// already be deduplicated (rdf::EncodedGraph::SortAndDedupe).
  static Result<std::unique_ptr<ProstDb>> LoadFromSharedGraph(
      std::shared_ptr<const rdf::EncodedGraph> graph, const Options& options);

  /// Parses N-Triples text and loads it.
  static Result<std::unique_ptr<ProstDb>> LoadFromNTriples(
      std::string_view text, const Options& options);

  /// Reopens a database persisted by PersistTo: reads the lexical
  /// columnar files back into a fresh dictionary, reassembles the VP
  /// tables and Property Table(s), and recomputes the §3.3 statistics
  /// from the VP tables. Which structures exist is taken from the
  /// persisted manifest, overriding `options` flags.
  static Result<std::unique_ptr<ProstDb>> OpenFrom(const std::string& dir,
                                                   Options options);

  /// Plans a query into a Join Tree without executing (the logical half
  /// of EXPLAIN; PlanPhysical continues into the physical plan).
  Result<JoinTree> Plan(const sparql::Query& query) const;

  /// Plans a query all the way to the optimized physical plan without
  /// executing (EXPLAIN): translation, plan building, and the configured
  /// optimizer passes, with a before/after snapshot recorded per pass.
  /// Execute() runs exactly this plan (minus the snapshot rendering).
  Result<plan::PlannedQuery> PlanPhysical(const sparql::Query& query) const;

  /// Executes a parsed query. Each call runs on a fresh simulated clock.
  /// Safe to call concurrently at any thread configuration: each call
  /// is an independent execution (own cost model, own profile), and
  /// pool-backed executions share the work-sharing pool through
  /// per-query task regions (common/thread_pool.h) instead of
  /// serializing, so M racing queries each stay bit-identical to their
  /// serial runs. Admission control and budgets live one layer up, in
  /// serve::SessionManager (DESIGN.md §12).
  Result<QueryResult> Execute(const sparql::Query& query) const;

  /// Same, recording an operator-level trace into `profile` (may be
  /// null — identical to the overload above, with zero profiling cost).
  /// The profile must outlive the call and belongs to one execution.
  Result<QueryResult> Execute(const sparql::Query& query,
                              obs::QueryProfile* profile) const;

  /// Same, additionally enforcing a per-query resource budget (may be
  /// null — unlimited). A budget violation fails the query with
  /// kResourceExhausted, deterministically (the budget is checked
  /// against simulated quantities only; see engine::QueryBudget).
  Result<QueryResult> Execute(const sparql::Query& query,
                              obs::QueryProfile* profile,
                              const engine::QueryBudget* budget) const;

  /// Parses and executes a SPARQL string.
  Result<QueryResult> ExecuteSparql(std::string_view sparql) const;

  /// Decodes a result relation's rows back to lexical terms, in the
  /// relation's column order.
  Result<std::vector<std::vector<std::string>>> DecodeRows(
      const engine::Relation& relation) const;

  /// Persists the database (VP + PT as lexical columnar files) under
  /// `dir` and returns the total bytes written.
  Result<uint64_t> PersistTo(const std::string& dir) const;

  const LoadReport& load_report() const { return load_report_; }
  const DatasetStatistics& statistics() const { return stats_; }
  /// Characteristic sets collected at load (or reloaded from the
  /// persisted store) — the star-cardinality side of the estimator.
  const stats::CharacteristicSets& characteristic_sets() const {
    return char_sets_;
  }
  /// The cardinality estimator the join_order pass plans with. Valid for
  /// the lifetime of the database; immutable after load.
  const stats::CardinalityEstimator& estimator() const { return *estimator_; }
  const rdf::Dictionary& dictionary() const { return graph_->dictionary(); }
  const Options& options() const { return options_; }
  const VpStore& vp_store() const { return vp_; }
  const PropertyTable* property_table() const {
    return options_.use_property_table ? &pt_ : nullptr;
  }
  /// Lifetime query metrics (query.executed / query.rows / query.failed
  /// counters, query.simulated_ms histogram), plus the storage.* family
  /// when paging is on. Thread-safe.
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  /// The shared page pool, or nullptr when storage.buffer_pool_bytes
  /// is 0 (classic in-memory storage).
  const columnar::BufferPool* buffer_pool() const {
    return buffer_pool_.get();
  }

 private:
  ProstDb() = default;

  /// Creates pool_ when the resolved thread count asks for parallelism.
  void InitThreadPool();

  /// With storage.buffer_pool_bytes set, creates the pool and repages
  /// every storage structure. Must be the last load step: the paged
  /// tables' addresses key pool pages, so storage must not move after.
  void EnablePagingIfConfigured();

  /// Shared planning pipeline behind Execute and PlanPhysical: Join Tree
  /// translation (Plan), physical-plan building, then the configured
  /// optimizer passes, invariant-checked after every pass when plan
  /// verification is on.
  Result<plan::PlannedQuery> BuildOptimizedPlan(const sparql::Query& query,
                                                bool record_snapshots) const;

  /// Runs an already-optimized plan on a fresh cost model. Lock-free:
  /// every execution is independent (storage is read-only, the pool
  /// multiplexes concurrent per-query regions), so any number of
  /// callers run this concurrently.
  Result<QueryResult> RunPlan(const plan::PlannedQuery& planned,
                              obs::QueryProfile* profile,
                              const engine::QueryBudget* budget) const;

  Options options_;
  std::unique_ptr<ThreadPool> pool_;
  std::shared_ptr<const rdf::EncodedGraph> graph_;
  DatasetStatistics stats_;
  stats::CharacteristicSets char_sets_;
  /// Borrows stats_'s per-predicate map and char_sets_; built last in
  /// every load path, never mutated afterwards.
  std::unique_ptr<stats::CardinalityEstimator> estimator_;
  VpStore vp_;
  PropertyTable pt_;
  PropertyTable reverse_pt_;
  LoadReport load_report_;
  /// Mutable: Execute() is const but counts every query it runs.
  /// Internally synchronized (own leaf mutex + atomic handles), so
  /// concurrent Executes count safely with no outer lock.
  mutable obs::MetricsRegistry metrics_;
  /// Declared after metrics_ (the pool borrows its counters) and after
  /// the storage members (it holds pages keyed by their paged tables):
  /// destroyed first, constructed last.
  std::unique_ptr<columnar::BufferPool> buffer_pool_;
};

/// Estimated N-Triples text size of a graph (sum of lexical lengths plus
/// separators) — the "input bytes" every loader's simulated cost starts
/// from.
uint64_t EstimateNTriplesBytes(const rdf::EncodedGraph& graph);

}  // namespace prost::core

#endif  // PROST_CORE_PROST_DB_H_
