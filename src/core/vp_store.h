#ifndef PROST_CORE_VP_STORE_H_
#define PROST_CORE_VP_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "columnar/buffer_pool.h"
#include "columnar/paged_table.h"
#include "columnar/table.h"
#include "common/status.h"
#include "core/pattern_term.h"
#include "core/scan_support.h"
#include "engine/exec_context.h"
#include "engine/relation.h"
#include "rdf/graph.h"

namespace prost::core {

/// Vertical Partitioning storage (§3.1): one two-column (subject, object)
/// table per distinct predicate, each hash-partitioned on the subject
/// across workers. This is the storage model of SPARQLGX and the base
/// layer of both S2RDF and PRoST.
class VpStore {
 public:
  /// One predicate's table, split across workers.
  struct PredicateTable {
    std::vector<columnar::StoredTable> partitions;
    /// Serialized-size estimate per partition (cost-model scan charge).
    std::vector<uint64_t> partition_bytes;
    uint64_t total_rows = 0;
    /// Paged (encoded row-group) form; non-empty once EnablePaging ran,
    /// at which point `partitions` keeps only schema-shaped empties and
    /// scans go through the buffer pool.
    std::vector<columnar::PagedTable> paged;

    bool paged_mode() const { return !paged.empty(); }
  };

  VpStore() = default;
  VpStore(const VpStore&) = delete;
  VpStore& operator=(const VpStore&) = delete;
  VpStore(VpStore&&) = default;
  VpStore& operator=(VpStore&&) = default;

  /// Builds VP tables from an encoded graph (one pass, grouped by
  /// predicate, subject-hash partitioned over `num_workers`).
  static VpStore Build(const rdf::EncodedGraph& graph, uint32_t num_workers);

  /// Assembles a store from already-built tables (reopening a persisted
  /// database).
  static VpStore Assemble(uint32_t num_workers,
                          std::map<rdf::TermId, PredicateTable> tables);

  /// The table for `predicate`, or nullptr when the predicate does not
  /// occur in the dataset.
  const PredicateTable* Find(rdf::TermId predicate) const;

  /// The planner-visible size of a Scan over `predicate` — exactly the
  /// `Relation::PlannerBytes` the scan output will carry (0 for unknown
  /// predicates). Lets the plan-time optimizer resolve join strategies
  /// from the same numbers the runtime would use.
  uint64_t ScanPlannerBytes(rdf::TermId predicate) const;

  /// Evaluates one triple pattern against the predicate's VP table,
  /// producing a distributed relation over the pattern's variables.
  /// Charges scan bytes and CPU rows to `cost` (inside the caller's
  /// stage). Unknown predicates and impossible constants produce an empty
  /// relation with the right columns. A parallel `exec` scans partition
  /// morsels concurrently, merged in morsel order (output bit-identical
  /// to serial); all cost charges stay on the calling thread.
  ///
  /// When the store is paged (EnablePaging), row groups whose zone maps
  /// exclude a constant term or an equality `hint`, and partitions whose
  /// key bloom filter excludes a constant subject, are skipped before
  /// decode — the query result is bit-identical because skipped rows
  /// could only have been removed by the pattern constants / pushed
  /// filters anyway. Skips reduce the scan's cost charge and are
  /// reported through `telemetry` when given.
  Result<engine::Relation> Scan(rdf::TermId predicate,
                                const PatternTerm& subject,
                                const PatternTerm& object,
                                cluster::CostModel& cost,
                                const engine::ExecContext* exec = nullptr,
                                const ScanHints* hints = nullptr,
                                ScanTelemetry* telemetry = nullptr) const;

  /// Same evaluation over an arbitrary (s, o) PredicateTable — also used
  /// for S2RDF's ExtVP reductions, which share the VP layout. A null
  /// `table` stands for an absent predicate (empty answer, no scan).
  /// `pool` is required when `table` is paged.
  static Result<engine::Relation> ScanTable(
      const PredicateTable* table, const PatternTerm& subject,
      const PatternTerm& object, uint32_t num_workers,
      cluster::CostModel& cost, const engine::ExecContext* exec = nullptr,
      columnar::BufferPool* pool = nullptr, const ScanHints* hints = nullptr,
      ScanTelemetry* telemetry = nullptr);

  /// Builds a PredicateTable directly from (subject, object) pairs,
  /// subject-hash partitioned (S2RDF ExtVP construction). `term_lengths`
  /// (rdf::Dictionary::TermLengths) drives the lexical size estimates.
  static PredicateTable BuildTable(
      const std::vector<std::pair<rdf::TermId, rdf::TermId>>& rows,
      uint32_t num_workers, const std::vector<uint32_t>& term_lengths);

  uint32_t num_workers() const { return num_workers_; }
  size_t num_predicates() const { return tables_.size(); }
  const std::map<rdf::TermId, PredicateTable>& tables() const {
    return tables_;
  }

  /// Switches every predicate table to paged row-group execution:
  /// partitions are repacked into PagedTables (row groups of
  /// `row_group_rows` rows with zone maps + key bloom filters), decoded
  /// columns are released, and subsequent scans decode chunks through
  /// `pool` pins. `pool` must outlive the store. Idempotent-ish: calling
  /// again repages from the current paged form is not supported — call
  /// exactly once after the store is built.
  void EnablePaging(columnar::BufferPool* pool, uint32_t row_group_rows = 0);

  columnar::BufferPool* buffer_pool() const { return pool_; }

  /// Sum of serialized-size estimates over all tables.
  uint64_t TotalBytesEstimate() const;

  /// Persists every partition as a lexical (Parquet-like) file under
  /// `dir`, named vp_<predicateId>_p<worker>.tbl.
  Status WriteTo(const std::string& dir,
                 const rdf::Dictionary& dictionary) const;

 private:
  uint32_t num_workers_ = 0;
  std::map<rdf::TermId, PredicateTable> tables_;
  columnar::BufferPool* pool_ = nullptr;  // Non-owning; set by EnablePaging.
};

}  // namespace prost::core

#endif  // PROST_CORE_VP_STORE_H_
