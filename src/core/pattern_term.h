#ifndef PROST_CORE_PATTERN_TERM_H_
#define PROST_CORE_PATTERN_TERM_H_

#include <string>
#include <utility>

#include "rdf/triple.h"

namespace prost::core {

/// A triple-pattern position resolved against the dictionary: either a
/// variable (carrying its name) or a constant term id. A constant whose
/// term does not occur in the dataset resolves to id 0, which matches
/// nothing (the query still executes, with an empty answer, exactly like
/// the real systems scanning a Parquet file for an absent value).
struct PatternTerm {
  bool is_variable = false;
  std::string name;         // Variable name when is_variable.
  rdf::TermId id = rdf::kNullTermId;  // Constant id otherwise.

  static PatternTerm Var(std::string name) {
    PatternTerm term;
    term.is_variable = true;
    term.name = std::move(name);
    return term;
  }
  static PatternTerm Const(rdf::TermId id) {
    PatternTerm term;
    term.is_variable = false;
    term.id = id;
    return term;
  }

  /// True for a constant that cannot match any triple.
  bool IsImpossibleConstant() const {
    return !is_variable && id == rdf::kNullTermId;
  }
};

}  // namespace prost::core

#endif  // PROST_CORE_PATTERN_TERM_H_
