#include "core/prost_db.h"

#include "analysis/plan_checker.h"
#include "columnar/lexical_format.h"

#include "common/io.h"
#include "common/str_util.h"
#include "common/timer.h"

#include <cstdlib>
#include <unordered_set>
#include <utility>
#include "plan/planner.h"
#include "rdf/ntriples.h"
#include "sparql/parser.h"

namespace prost::core {
namespace {

// Plan verification opt-out is honored only in plain release builds —
// debug and sanitizer builds always verify.
#if defined(PROST_PARANOID_CHECKS) || !defined(NDEBUG)
constexpr bool kForceVerify = true;
#else
constexpr bool kForceVerify = false;
#endif

}  // namespace

uint64_t EstimateNTriplesBytes(const rdf::EncodedGraph& graph) {
  // Precompute per-term lexical lengths once, then one cheap pass.
  const rdf::Dictionary& dictionary = graph.dictionary();
  std::vector<uint32_t> lengths(dictionary.size() + 1, 0);
  for (rdf::TermId id = 1; id <= dictionary.size(); ++id) {
    lengths[id] = static_cast<uint32_t>(dictionary.MustLookupId(id).size());
  }
  uint64_t bytes = 0;
  for (const rdf::EncodedTriple& t : graph.triples()) {
    bytes += lengths[t.subject] + lengths[t.predicate] + lengths[t.object] +
             5;  // three separators + " .\n"
  }
  return bytes;
}

Result<std::unique_ptr<ProstDb>> ProstDb::LoadFromGraph(
    rdf::EncodedGraph graph, const Options& options) {
  graph.SortAndDedupe();
  return LoadFromSharedGraph(
      std::make_shared<const rdf::EncodedGraph>(std::move(graph)), options);
}

void ProstDb::EnablePagingIfConfigured() {
  if (options_.storage.buffer_pool_bytes == 0) return;
  buffer_pool_ = std::make_unique<columnar::BufferPool>(
      options_.storage.buffer_pool_bytes, &metrics_);
  // Last load step by contract (see header): the PagedTables built here
  // key the pool's pages by address, so storage must not move again.
  vp_.EnablePaging(buffer_pool_.get(), options_.storage.row_group_rows);
  if (options_.use_property_table) {
    pt_.EnablePaging(buffer_pool_.get(), options_.storage.row_group_rows);
  }
  if (options_.use_reverse_property_table) {
    reverse_pt_.EnablePaging(buffer_pool_.get(),
                             options_.storage.row_group_rows);
  }
}

void ProstDb::InitThreadPool() {
  uint32_t threads = options_.exec.num_threads == 0
                         ? options_.cluster.cores_per_worker
                         : options_.exec.num_threads;
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

Result<std::unique_ptr<ProstDb>> ProstDb::LoadFromSharedGraph(
    std::shared_ptr<const rdf::EncodedGraph> graph, const Options& options) {
  WallTimer timer;
  auto db = std::unique_ptr<ProstDb>(new ProstDb());
  db->options_ = options;
  db->InitThreadPool();
  db->graph_ = std::move(graph);

  const uint64_t triples = db->graph_->size();
  const uint32_t workers = options.cluster.num_workers;

  // Statistics pass (§3.3: "calculated during the loading phase without
  // any significant overhead"). The optional pairwise pass is the §5
  // future-work extension and is *not* free — its cost is charged below.
  db->stats_ = options.collect_precise_statistics
                   ? DatasetStatistics::ComputeWithPairwise(*db->graph_)
                   : DatasetStatistics::Compute(*db->graph_);
  // Characteristic sets ride the same in-memory pass over the triples as
  // the §3.3 statistics (one grouping by subject), so like them they add
  // no separate simulated loading stage.
  db->char_sets_ = stats::CharacteristicSets::Compute(*db->graph_);
  db->estimator_ = std::make_unique<stats::CardinalityEstimator>(
      &db->stats_.per_predicate(), &db->char_sets_);

  // Build storage.
  db->vp_ = VpStore::Build(*db->graph_, workers);
  if (options.use_property_table) {
    db->pt_ = PropertyTable::Build(*db->graph_, db->stats_, workers,
                                   /*keyed_on_object=*/false);
  }
  if (options.use_reverse_property_table) {
    db->reverse_pt_ = PropertyTable::Build(*db->graph_, db->stats_, workers,
                                           /*keyed_on_object=*/true);
  }

  // Simulated loading cost: one ingest pass (parse text, dictionary
  // encode, subject-hash shuffle, write VP), plus a cheaper groupBy-
  // subject pass per Property Table.
  cluster::CostModel cost(options.cluster);
  uint64_t input_bytes = EstimateNTriplesBytes(*db->graph_);
  cost.BeginStage("load: parse + vertical partitioning");
  for (uint32_t w = 0; w < workers; ++w) {
    cost.ChargeScan(w, input_bytes / workers);
    cost.ChargeLoadRows(w, triples / workers);
  }
  cost.ChargeShuffle(input_bytes / 3);  // Dictionary-encoded repartition.
  cost.EndStage();
  auto charge_pt_pass = [&](const char* label) {
    cost.BeginStage(label);
    for (uint32_t w = 0; w < workers; ++w) {
      // The PT pass reads already-encoded data and writes one wide table:
      // ~30% of the full ingest pass in the paper's loading ratio.
      cost.ChargeLoadRows(w, triples * 3 / 10 / workers);
    }
    cost.ChargeShuffle(input_bytes / 4);
    cost.EndStage();
  };
  if (options.use_property_table) {
    charge_pt_pass("load: property table");
  }
  if (options.use_reverse_property_table) {
    charge_pt_pass("load: reverse property table");
  }
  if (options.collect_precise_statistics) {
    // Pairwise overlap counting: a groupBy-subject aggregation pass.
    cost.BeginStage("load: pairwise statistics");
    for (uint32_t w = 0; w < workers; ++w) {
      cost.ChargeLoadRows(w, triples * 4 / 10 / workers);
    }
    cost.ChargeShuffle(input_bytes / 4);
    cost.EndStage();
  }

  db->load_report_.input_triples = triples;
  db->load_report_.input_bytes = input_bytes;
  db->load_report_.simulated_load_millis = cost.ElapsedMillis();
  db->load_report_.storage_bytes =
      db->vp_.TotalBytesEstimate() +
      (options.use_property_table ? db->pt_.TotalBytesEstimate() : 0) +
      (options.use_reverse_property_table
           ? db->reverse_pt_.TotalBytesEstimate()
           : 0);
  db->EnablePagingIfConfigured();
  db->load_report_.real_load_millis = timer.ElapsedMillis();
  return db;
}

Result<std::unique_ptr<ProstDb>> ProstDb::LoadFromNTriples(
    std::string_view text, const Options& options) {
  PROST_ASSIGN_OR_RETURN(rdf::EncodedGraph graph, rdf::EncodeNTriples(text));
  return LoadFromGraph(std::move(graph), options);
}

Result<JoinTree> ProstDb::Plan(const sparql::Query& query) const {
  TranslatorOptions translator_options;
  translator_options.use_property_table = options_.use_property_table;
  translator_options.use_reverse_property_table =
      options_.use_reverse_property_table;
  translator_options.enable_stats_ordering = options_.enable_stats_ordering;
  PROST_ASSIGN_OR_RETURN(
      JoinTree tree,
      Translate(query, stats_, graph_->dictionary(), translator_options));
  if (kForceVerify || options_.verify_plans) {
    analysis::PlanContext context;
    context.vp = &vp_;
    context.property_table = options_.use_property_table ? &pt_ : nullptr;
    context.reverse_property_table =
        options_.use_reverse_property_table ? &reverse_pt_ : nullptr;
    context.stats = &stats_;
    context.dictionary = &graph_->dictionary();
    context.cluster = &options_.cluster;
    PROST_RETURN_IF_ERROR(analysis::CheckPlan(tree, query, context));
  }
  return tree;
}

Result<plan::PlannedQuery> ProstDb::BuildOptimizedPlan(
    const sparql::Query& query, bool record_snapshots) const {
  PROST_ASSIGN_OR_RETURN(JoinTree tree, Plan(query));
  plan::PlannerInputs inputs;
  inputs.vp = &vp_;
  inputs.property_table = options_.use_property_table ? &pt_ : nullptr;
  inputs.reverse_property_table =
      options_.use_reverse_property_table ? &reverse_pt_ : nullptr;
  PROST_ASSIGN_OR_RETURN(plan::PhysicalPlan physical,
                         plan::BuildPlan(tree, query, inputs));
  plan::PassManagerOptions manager_options;
  manager_options.record_snapshots = record_snapshots;
  if (kForceVerify || options_.verify_plans) {
    // Invariant-check the freshly built plan and again after every pass,
    // so a rewrite that breaks the plan is caught before execution.
    manager_options.validate = [&query](const plan::PhysicalPlan& p) {
      return analysis::CheckPhysicalPlan(p, query);
    };
  }
  plan::PassManager manager(std::move(manager_options));
  plan::AddDefaultPasses(manager, options_.passes);
  plan::PassContext context;
  context.join = options_.join;
  context.cluster = &options_.cluster;
  context.estimator = estimator_.get();
  PROST_RETURN_IF_ERROR(manager.Run(physical, context));
  plan::PlannedQuery planned;
  planned.plan = std::move(physical);
  planned.snapshots = manager.snapshots();
  return planned;
}

Result<plan::PlannedQuery> ProstDb::PlanPhysical(
    const sparql::Query& query) const {
  return BuildOptimizedPlan(query, /*record_snapshots=*/true);
}

Result<QueryResult> ProstDb::Execute(const sparql::Query& query) const {
  return Execute(query, nullptr, nullptr);
}

Result<QueryResult> ProstDb::Execute(const sparql::Query& query,
                                     obs::QueryProfile* profile) const {
  return Execute(query, profile, nullptr);
}

Result<QueryResult> ProstDb::RunPlan(const plan::PlannedQuery& planned,
                                     obs::QueryProfile* profile,
                                     const engine::QueryBudget* budget) const {
  cluster::CostModel cost(options_.cluster);
  engine::ExecContext exec(pool_.get(), options_.exec.morsel_rows, profile,
                           budget);
  return ExecutePlan(
      planned.plan, vp_, options_.use_property_table ? &pt_ : nullptr,
      options_.use_reverse_property_table ? &reverse_pt_ : nullptr,
      options_.join, graph_->dictionary(), cost, &exec);
}

Result<QueryResult> ProstDb::Execute(const sparql::Query& query,
                                     obs::QueryProfile* profile,
                                     const engine::QueryBudget* budget) const {
  PROST_ASSIGN_OR_RETURN(plan::PlannedQuery planned,
                         BuildOptimizedPlan(query,
                                            /*record_snapshots=*/false));
  // No execution lock: every call owns its cost model / profile, the
  // storage structures are read-only, and the pool multiplexes one task
  // region per concurrent query (common/thread_pool.h). The old
  // exec_mu_ full serialization is gone — M racing Executes proceed in
  // parallel and each stays bit-identical to its serial run
  // (tests/serving_stress_test.cpp).
  Result<QueryResult> result = RunPlan(planned, profile, budget);
  // Metrics are internally synchronized (atomic instruments behind a
  // leaf-ranked registration mutex), so per-query counter deltas stay
  // exact under concurrent Execute (obs_test
  // ConcurrentExecuteCountsAreExact).
  if (result.ok()) {
    metrics_.counter("query.executed").Increment();
    metrics_.counter("query.rows").Add(result->relation.TotalRows());
    metrics_
        .histogram("query.simulated_ms",
                   {1, 10, 100, 1000, 10000, 100000})
        .Observe(result->simulated_millis);
  } else {
    metrics_.counter("query.failed").Increment();
  }
  return result;
}

Result<QueryResult> ProstDb::ExecuteSparql(std::string_view sparql) const {
  PROST_ASSIGN_OR_RETURN(sparql::Query query, sparql::ParseQuery(sparql));
  return Execute(query);
}

Result<std::vector<std::vector<std::string>>> ProstDb::DecodeRows(
    const engine::Relation& relation) const {
  std::vector<std::vector<std::string>> rows;
  for (const engine::Row& row : relation.CollectRows()) {
    std::vector<std::string> decoded;
    decoded.reserve(row.size());
    for (rdf::TermId id : row) {
      if (rdf::IsVirtualIntegerId(id)) {
        decoded.push_back(StrFormat(
            "\"%llu\"^^<http://www.w3.org/2001/XMLSchema#integer>",
            static_cast<unsigned long long>(rdf::VirtualIntegerValue(id))));
        continue;
      }
      PROST_ASSIGN_OR_RETURN(std::string_view lexical,
                             graph_->dictionary().LookupId(id));
      decoded.emplace_back(lexical);
    }
    rows.push_back(std::move(decoded));
  }
  return rows;
}

Result<uint64_t> ProstDb::PersistTo(const std::string& dir) const {
  PROST_RETURN_IF_ERROR(RemoveAllRecursively(dir));
  PROST_RETURN_IF_ERROR(MakeDirectories(dir));
  PROST_RETURN_IF_ERROR(vp_.WriteTo(dir + "/vp", graph_->dictionary()));
  if (options_.use_property_table) {
    PROST_RETURN_IF_ERROR(pt_.WriteTo(dir + "/pt", graph_->dictionary()));
  }
  if (options_.use_reverse_property_table) {
    PROST_RETURN_IF_ERROR(
        reverse_pt_.WriteTo(dir + "/ptrev", graph_->dictionary()));
  }
  // Characteristic sets persist keyed on lexical predicates: term ids are
  // re-assigned when the store is re-interned on open.
  PROST_RETURN_IF_ERROR(
      char_sets_.WriteTo(dir + "/charsets.txt", graph_->dictionary()));
  std::string manifest = StrFormat(
      "prostdb 1\nworkers %u\npt %d\nptrev %d\nstats %d\n",
      options_.cluster.num_workers, options_.use_property_table ? 1 : 0,
      options_.use_reverse_property_table ? 1 : 0,
      char_sets_.num_sets() > 0 ? 1 : 0);
  PROST_RETURN_IF_ERROR(WriteStringToFile(dir + "/MANIFEST", manifest));
  return DirectorySize(dir);
}

Result<std::unique_ptr<ProstDb>> ProstDb::OpenFrom(const std::string& dir,
                                                   Options options) {
  WallTimer timer;

  // 1. Top-level manifest: worker count and which structures exist.
  std::string manifest;
  PROST_RETURN_IF_ERROR(ReadFileToString(dir + "/MANIFEST", &manifest));
  uint32_t workers = 0;
  int pt_flag = -1, ptrev_flag = -1;
  // Older stores predate persisted characteristic sets; absent flag means
  // "recompute from the VP tables below".
  int stats_flag = 0;
  for (const std::string& line : StrSplit(StrTrim(manifest), '\n')) {
    std::vector<std::string> parts = StrSplit(line, ' ');
    if (parts.size() != 2) continue;
    if (parts[0] == "workers") {
      workers = static_cast<uint32_t>(
          std::strtoul(parts[1].c_str(), nullptr, 10));
    } else if (parts[0] == "pt") {
      pt_flag = parts[1] == "1";
    } else if (parts[0] == "ptrev") {
      ptrev_flag = parts[1] == "1";
    } else if (parts[0] == "stats") {
      stats_flag = parts[1] == "1";
    }
  }
  if (workers == 0 || pt_flag < 0 || ptrev_flag < 0) {
    return Status::Corruption("malformed MANIFEST in " + dir);
  }
  options.cluster.num_workers = workers;
  options.use_property_table = pt_flag == 1;
  options.use_reverse_property_table = ptrev_flag == 1;

  auto graph = std::make_shared<rdf::EncodedGraph>();
  rdf::Dictionary& dictionary = graph->mutable_dictionary();

  // 2. Vertical Partitioning tables via the VP manifest.
  std::string vp_manifest;
  PROST_RETURN_IF_ERROR(
      ReadFileToString(dir + "/vp/vp_manifest.txt", &vp_manifest));
  struct PendingTable {
    rdf::TermId predicate;
    std::vector<columnar::StoredTable> partitions;
  };
  std::vector<PendingTable> pending;
  for (const std::string& line : StrSplit(StrTrim(vp_manifest), '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> parts = StrSplit(line, '\t');
    if (parts.size() != 2) {
      return Status::Corruption("malformed vp manifest line: " + line);
    }
    PendingTable table;
    table.predicate = dictionary.Intern(parts[1]);
    for (uint32_t w = 0; w < workers; ++w) {
      std::string path = StrFormat("%s/vp/vp_%s_p%u.tbl", dir.c_str(),
                                   parts[0].c_str(), w);
      PROST_ASSIGN_OR_RETURN(
          columnar::StoredTable part,
          columnar::ReadLexicalTableFile(path, &dictionary));
      table.partitions.push_back(std::move(part));
    }
    pending.push_back(std::move(table));
  }

  // 3. Property Table partitions (the dictionary keeps growing).
  auto read_pt =
      [&](const char* stem) -> Result<std::vector<columnar::StoredTable>> {
    std::vector<columnar::StoredTable> partitions;
    for (uint32_t w = 0; w < workers; ++w) {
      std::string path =
          StrFormat("%s/%s/%s_p%u.tbl", dir.c_str(), stem, stem, w);
      PROST_ASSIGN_OR_RETURN(
          columnar::StoredTable part,
          columnar::ReadLexicalTableFile(path, &dictionary));
      partitions.push_back(std::move(part));
    }
    return partitions;
  };
  std::vector<columnar::StoredTable> pt_partitions, ptrev_partitions;
  if (options.use_property_table) {
    PROST_ASSIGN_OR_RETURN(pt_partitions, read_pt("pt"));
  }
  if (options.use_reverse_property_table) {
    PROST_ASSIGN_OR_RETURN(ptrev_partitions, read_pt("ptrev"));
  }

  // 4. Assemble the stores against the final dictionary; recompute the
  // §3.3 statistics from the VP tables themselves.
  std::vector<uint32_t> term_lengths = dictionary.TermLengths();
  std::map<rdf::TermId, VpStore::PredicateTable> tables;
  std::map<rdf::TermId, rdf::PredicateStats> per_predicate;
  stats::CharacteristicSets::Builder char_set_builder;
  for (PendingTable& p : pending) {
    VpStore::PredicateTable table;
    rdf::PredicateStats stats;
    std::unordered_set<rdf::TermId> subjects, objects;
    for (columnar::StoredTable& part : p.partitions) {
      table.total_rows += part.num_rows();
      table.partition_bytes.push_back(
          columnar::LexicalColumnSizeEstimate(part.column(0), term_lengths) +
          columnar::LexicalColumnSizeEstimate(part.column(1), term_lengths));
      for (rdf::TermId id : part.column(0).ids()) {
        subjects.insert(id);
        // Every VP row is one (subject, predicate) pair, so the
        // characteristic sets can be rebuilt exactly when the persisted
        // file is missing.
        if (stats_flag == 0) char_set_builder.Add(id, p.predicate);
      }
      for (rdf::TermId id : part.column(1).ids()) {
        objects.insert(id);
        if (dictionary.IsLiteralId(id)) ++stats.literal_objects;
      }
      table.partitions.push_back(std::move(part));
    }
    stats.triple_count = table.total_rows;
    stats.distinct_subjects = subjects.size();
    stats.distinct_objects = objects.size();
    per_predicate.emplace(p.predicate, stats);
    tables.emplace(p.predicate, std::move(table));
  }

  auto db = std::unique_ptr<ProstDb>(new ProstDb());
  db->options_ = options;
  db->InitThreadPool();
  db->stats_ = DatasetStatistics::FromPerPredicate(std::move(per_predicate));
  if (stats_flag == 1) {
    PROST_ASSIGN_OR_RETURN(
        db->char_sets_,
        stats::CharacteristicSets::ReadFrom(dir + "/charsets.txt",
                                            dictionary));
  } else {
    db->char_sets_ = std::move(char_set_builder).Build();
  }
  db->estimator_ = std::make_unique<stats::CardinalityEstimator>(
      &db->stats_.per_predicate(), &db->char_sets_);
  db->vp_ = VpStore::Assemble(workers, std::move(tables));
  if (options.use_property_table) {
    PROST_ASSIGN_OR_RETURN(
        db->pt_, PropertyTable::Assemble(std::move(pt_partitions),
                                         dictionary, false));
  }
  if (options.use_reverse_property_table) {
    PROST_ASSIGN_OR_RETURN(
        db->reverse_pt_,
        PropertyTable::Assemble(std::move(ptrev_partitions), dictionary,
                                true));
  }
  db->graph_ = std::move(graph);  // Dictionary only; no raw triples kept.
  db->load_report_.input_triples = db->stats_.total_triples();
  db->load_report_.storage_bytes =
      db->vp_.TotalBytesEstimate() +
      (options.use_property_table ? db->pt_.TotalBytesEstimate() : 0) +
      (options.use_reverse_property_table
           ? db->reverse_pt_.TotalBytesEstimate()
           : 0);
  db->EnablePagingIfConfigured();
  db->load_report_.real_load_millis = timer.ElapsedMillis();
  return db;
}

}  // namespace prost::core
