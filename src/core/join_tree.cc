#include "core/join_tree.h"

#include "common/str_util.h"

namespace prost::core {

const char* NodeKindToString(NodeKind kind) {
  switch (kind) {
    case NodeKind::kVerticalPartitioning:
      return "VP";
    case NodeKind::kPropertyTable:
      return "PT";
    case NodeKind::kReversePropertyTable:
      return "RPT";
  }
  return "?";
}

std::set<std::string> JoinTreeNode::Variables() const {
  std::set<std::string> vars;
  for (const NodePattern& p : patterns) {
    if (p.subject.is_variable) vars.insert(p.subject.name);
    if (p.object.is_variable) vars.insert(p.object.name);
  }
  return vars;
}

std::string JoinTreeNode::Label() const {
  std::string out = NodeKindToString(kind);
  out += "(";
  for (size_t i = 0; i < patterns.size(); ++i) {
    if (i > 0) out += " ; ";
    out += patterns[i].source.ToString();
  }
  out += ")";
  return out;
}

size_t JoinTree::TotalPatterns() const {
  size_t total = 0;
  for (const JoinTreeNode& node : nodes) total += node.patterns.size();
  return total;
}

std::string JoinTree::ToString() const {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    out += StrFormat("%s%zu: %s [est %.1f]%s\n",
                     i + 1 == nodes.size() ? "root " : "node ", i,
                     nodes[i].Label().c_str(),
                     nodes[i].estimated_cardinality,
                     i == 0 ? " (highest priority)" : "");
  }
  return out;
}

}  // namespace prost::core
