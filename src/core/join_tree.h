#ifndef PROST_CORE_JOIN_TREE_H_
#define PROST_CORE_JOIN_TREE_H_

#include <set>
#include <string>
#include <vector>

#include "core/pattern_term.h"
#include "rdf/triple.h"
#include "sparql/algebra.h"

namespace prost::core {

/// How a Join Tree node's sub-query is evaluated (§3.2): from the
/// Property Table (same-subject groups), from a Vertical Partitioning
/// table (single patterns), or from the reverse (object-keyed) Property
/// Table (§5 future work, same-object groups).
enum class NodeKind {
  kVerticalPartitioning,
  kPropertyTable,
  kReversePropertyTable,
};

const char* NodeKindToString(NodeKind kind);

/// One triple pattern with its positions resolved against the dictionary.
struct NodePattern {
  sparql::TriplePattern source;  // Original pattern (diagnostics).
  rdf::TermId predicate = rdf::kNullTermId;
  PatternTerm subject;
  PatternTerm object;
};

/// A node of the Join Tree: a sub-query answered by one storage structure.
struct JoinTreeNode {
  NodeKind kind = NodeKind::kVerticalPartitioning;
  std::vector<NodePattern> patterns;
  /// §3.3 priority signal; larger = computed later (the largest node is
  /// the root).
  double estimated_cardinality = 0;

  /// Variables this node binds.
  std::set<std::string> Variables() const;

  /// "PT(?v0: <p1>,<p2>)" / "VP(?s <p> ?o)" style label.
  std::string Label() const;
};

/// The Join Tree in execution order: nodes[0] is evaluated first and
/// nodes.back() is the root; execution folds left-deep, joining each
/// node's relation into the accumulated result.
struct JoinTree {
  std::vector<JoinTreeNode> nodes;

  /// Total triple patterns covered (must equal the query's BGP size).
  size_t TotalPatterns() const;

  std::string ToString() const;
};

}  // namespace prost::core

#endif  // PROST_CORE_JOIN_TREE_H_
