#include "core/property_table.h"

#include <algorithm>
#include <unordered_map>

#include "columnar/lexical_format.h"
#include "common/hash.h"
#include "common/io.h"
#include "common/str_util.h"
#include "engine/kernels.h"

namespace prost::core {

using columnar::Column;
using columnar::ColumnKind;
using columnar::Field;
using columnar::IdListColumn;
using columnar::IdVector;
using columnar::Schema;
using columnar::StoredTable;
using engine::Relation;
using engine::RelationChunk;
using rdf::TermId;

PropertyTable PropertyTable::Build(const rdf::EncodedGraph& graph,
                                   const DatasetStatistics& stats,
                                   uint32_t num_workers,
                                   bool keyed_on_object) {
  PropertyTable table;
  table.num_workers_ = num_workers;
  table.keyed_on_object_ = keyed_on_object;

  // 1. Distinct row keys, assigned (partition, row) by subject hash.
  std::vector<TermId> keys;
  keys.reserve(graph.size());
  for (const rdf::EncodedTriple& t : graph.triples()) {
    keys.push_back(keyed_on_object ? t.object : t.subject);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  table.num_rows_ = keys.size();

  struct Slot {
    uint32_t partition;
    uint32_t row;
  };
  std::unordered_map<TermId, Slot> slot_of_key;
  slot_of_key.reserve(keys.size());
  std::vector<uint32_t> rows_per_partition(num_workers, 0);
  std::vector<IdVector> key_columns(num_workers);
  for (TermId key : keys) {
    uint32_t w = static_cast<uint32_t>(Mix64(key) % num_workers);
    slot_of_key.emplace(key, Slot{w, rows_per_partition[w]++});
    key_columns[w].push_back(key);
  }

  // 2. Column order: predicates sorted by id; kind from global stats.
  std::vector<TermId> predicates = graph.DistinctPredicates();
  std::vector<bool> is_list(predicates.size());
  for (size_t c = 0; c < predicates.size(); ++c) {
    rdf::PredicateStats s = stats.ForPredicate(predicates[c]);
    uint64_t distinct_keys =
        keyed_on_object ? s.distinct_objects : s.distinct_subjects;
    is_list[c] = s.triple_count > distinct_keys;
    table.column_of_predicate_.emplace(predicates[c], c + 1);
  }

  // 3. Fill. Flat columns write directly; list columns collect
  // (row, value) pairs and assemble per partition afterwards.
  std::vector<std::vector<IdVector>> flat(num_workers);
  using RowValue = std::pair<uint32_t, TermId>;
  std::vector<std::vector<std::vector<RowValue>>> list_cells(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    flat[w].resize(predicates.size());
    list_cells[w].resize(predicates.size());
    for (size_t c = 0; c < predicates.size(); ++c) {
      if (!is_list[c]) {
        flat[w][c].assign(rows_per_partition[w], rdf::kNullTermId);
      }
    }
  }
  std::unordered_map<TermId, size_t> column_index;
  column_index.reserve(predicates.size());
  for (size_t c = 0; c < predicates.size(); ++c) {
    column_index.emplace(predicates[c], c);
  }
  for (const rdf::EncodedTriple& t : graph.triples()) {
    TermId key = keyed_on_object ? t.object : t.subject;
    TermId value = keyed_on_object ? t.subject : t.object;
    Slot slot = slot_of_key.at(key);
    size_t c = column_index.at(t.predicate);
    if (is_list[c]) {
      list_cells[slot.partition][c].emplace_back(slot.row, value);
    } else {
      flat[slot.partition][c][slot.row] = value;
    }
  }

  // 4. Assemble partitions.
  std::vector<uint32_t> term_lengths = graph.dictionary().TermLengths();
  Schema schema;
  (void)schema.AddField(Field{"s", ColumnKind::kId});
  for (size_t c = 0; c < predicates.size(); ++c) {
    // Column names carry the predicate's lexical form, so persisted
    // tables are fully self-describing and can be reopened against a
    // fresh dictionary.
    std::string name(graph.dictionary().MustLookupId(predicates[c]));
    (void)schema.AddField(Field{
        std::move(name),
        is_list[c] ? ColumnKind::kIdList : ColumnKind::kId});
  }
  table.partitions_.reserve(num_workers);
  table.column_bytes_.resize(num_workers);
  for (uint32_t w = 0; w < num_workers; ++w) {
    std::vector<Column> columns;
    columns.reserve(predicates.size() + 1);
    columns.emplace_back(std::move(key_columns[w]));
    for (size_t c = 0; c < predicates.size(); ++c) {
      if (is_list[c]) {
        std::stable_sort(list_cells[w][c].begin(), list_cells[w][c].end(),
                         [](const RowValue& a, const RowValue& b) {
                           return a.first < b.first;
                         });
        IdListColumn lists;
        lists.Reserve(rows_per_partition[w], list_cells[w][c].size());
        IdVector cell;  // Hoisted: one allocation for the whole column.
        size_t i = 0;
        for (uint32_t row = 0; row < rows_per_partition[w]; ++row) {
          cell.clear();
          while (i < list_cells[w][c].size() &&
                 list_cells[w][c][i].first == row) {
            cell.push_back(list_cells[w][c][i].second);
            ++i;
          }
          lists.AppendRow(cell);
        }
        columns.emplace_back(std::move(lists));
      } else {
        columns.emplace_back(std::move(flat[w][c]));
      }
    }
    table.partitions_.emplace_back(schema, std::move(columns));
    const StoredTable& part = table.partitions_.back();
    table.column_bytes_[w].reserve(part.num_columns());
    for (size_t c = 0; c < part.num_columns(); ++c) {
      // Lexical (Parquet string) sizes: scan charges and planner stats.
      table.column_bytes_[w].push_back(
          columnar::LexicalColumnSizeEstimate(part.column(c), term_lengths));
    }
  }
  return table;
}

Result<PropertyTable> PropertyTable::Assemble(
    std::vector<StoredTable> partitions, const rdf::Dictionary& dictionary,
    bool keyed_on_object) {
  if (partitions.empty()) {
    return Status::InvalidArgument("property table needs >= 1 partition");
  }
  PropertyTable table;
  table.num_workers_ = static_cast<uint32_t>(partitions.size());
  table.keyed_on_object_ = keyed_on_object;
  const columnar::Schema& schema = partitions[0].schema();
  for (const StoredTable& part : partitions) {
    if (!(part.schema() == schema)) {
      return Status::Corruption("property table partitions disagree on schema");
    }
    PROST_RETURN_IF_ERROR(part.Validate());
    table.num_rows_ += part.num_rows();
  }
  for (size_t c = 1; c < schema.num_fields(); ++c) {
    TermId predicate = dictionary.Lookup(schema.field(c).name);
    if (predicate == rdf::kNullTermId) {
      return Status::Corruption("unknown predicate column '" +
                                schema.field(c).name + "'");
    }
    table.column_of_predicate_.emplace(predicate, c);
  }
  std::vector<uint32_t> term_lengths = dictionary.TermLengths();
  table.column_bytes_.resize(partitions.size());
  for (size_t w = 0; w < partitions.size(); ++w) {
    table.column_bytes_[w].reserve(partitions[w].num_columns());
    for (size_t c = 0; c < partitions[w].num_columns(); ++c) {
      table.column_bytes_[w].push_back(columnar::LexicalColumnSizeEstimate(
          partitions[w].column(c), term_lengths));
    }
  }
  table.partitions_ = std::move(partitions);
  return table;
}

uint64_t PropertyTable::ScanPlannerBytes(
    const std::vector<ColumnPattern>& patterns) const {
  // Mirrors Scan's charging loop: a pattern touches its predicate column
  // only when the predicate exists and the constant (if any) can exist.
  std::vector<int> pattern_column(patterns.size(), -1);
  for (size_t i = 0; i < patterns.size(); ++i) {
    auto it = column_of_predicate_.find(patterns[i].predicate);
    if (it != column_of_predicate_.end() &&
        !patterns[i].value.IsImpossibleConstant()) {
      pattern_column[i] = static_cast<int>(it->second);
    }
  }
  uint64_t planner_bytes = 0;
  for (uint32_t w = 0; w < num_workers_; ++w) {
    uint64_t scan_bytes = column_bytes_[w][0];
    std::vector<int> charged;
    for (int c : pattern_column) {
      if (c >= 0 && std::find(charged.begin(), charged.end(), c) ==
                        charged.end()) {
        charged.push_back(c);
        scan_bytes += column_bytes_[w][static_cast<size_t>(c)];
      }
    }
    planner_bytes += scan_bytes;
  }
  return planner_bytes;
}

namespace {

/// True when a row group's zone map admits `id` for the column — NULLs
/// are excluded from min/max, so `value_count == 0` (all-NULL chunk)
/// admits nothing.
bool ZoneMayContain(const columnar::ColumnStats& stats, TermId id) {
  if (stats.value_count == 0) return false;
  return id >= stats.min_id && id <= stats.max_id;
}

}  // namespace

Result<Relation> PropertyTable::Scan(
    const PatternTerm& key, const std::vector<ColumnPattern>& patterns,
    cluster::CostModel& cost, const engine::ExecContext* exec,
    const ScanHints* hints, ScanTelemetry* telemetry) const {
  if (patterns.empty()) {
    return Status::InvalidArgument("property table scan needs patterns");
  }
  // Output layout: key variable first, then each new pattern variable.
  std::vector<std::string> names;
  std::unordered_map<std::string, size_t> index_of_name;
  int key_column = -1;
  if (key.is_variable) {
    key_column = 0;
    index_of_name.emplace(key.name, names.size());
    names.push_back(key.name);
  }
  // Per pattern: output column index of its variable, or -1 for consts.
  std::vector<int> pattern_out(patterns.size(), -1);
  for (size_t i = 0; i < patterns.size(); ++i) {
    if (!patterns[i].value.is_variable) continue;
    auto [it, inserted] =
        index_of_name.emplace(patterns[i].value.name, names.size());
    if (inserted) names.push_back(patterns[i].value.name);
    pattern_out[i] = static_cast<int>(it->second);
  }
  if (names.empty()) {
    return Status::Unimplemented(
        "pattern groups without variables are not supported");
  }
  Relation output(names, num_workers_);

  // Table columns touched by each pattern (-1: predicate absent -> the
  // whole group has an empty answer, but the scan stage still runs).
  std::vector<int> pattern_column(patterns.size(), -1);
  bool possible = !key.IsImpossibleConstant();
  for (size_t i = 0; i < patterns.size(); ++i) {
    auto it = column_of_predicate_.find(patterns[i].predicate);
    if (it == column_of_predicate_.end() ||
        patterns[i].value.IsImpossibleConstant()) {
      possible = false;
    } else {
      pattern_column[i] = static_cast<int>(it->second);
    }
  }

  // Cost model first, entirely on the calling thread: columnar pruning
  // charges the key column plus each touched column once per partition.
  // `charged_cols` is that column set (key first); paged scans apportion
  // exactly these columns' bytes over row groups.
  std::vector<size_t> charged_cols{0};
  for (int c : pattern_column) {
    if (c >= 0 && std::find(charged_cols.begin(), charged_cols.end(),
                            static_cast<size_t>(c)) == charged_cols.end()) {
      charged_cols.push_back(static_cast<size_t>(c));
    }
  }
  uint64_t planner_bytes = 0;
  std::vector<uint64_t> full_scan_bytes(num_workers_, 0);
  for (uint32_t w = 0; w < num_workers_; ++w) {
    uint64_t scan_bytes = 0;
    for (size_t c : charged_cols) scan_bytes += column_bytes_[w][c];
    full_scan_bytes[w] = scan_bytes;
    planner_bytes += scan_bytes;
  }
  if (!possible) {
    // The scan stage still runs over every partition and finds nothing;
    // zone maps have nothing to prune (no surviving rows to skip), so
    // both representations charge the full columnar scan.
    for (uint32_t w = 0; w < num_workers_; ++w) {
      cost.ChargeScan(w, full_scan_bytes[w]);
      cost.ChargeCpuRows(w, PartitionRows(w));
    }
    if (key.is_variable) output.set_hash_partitioned_by(0);
    output.set_planner_bytes(planner_bytes);
    return output;
  }
  if (!paged_mode()) {
    for (uint32_t w = 0; w < num_workers_; ++w) {
      cost.ChargeScan(w, full_scan_bytes[w]);
    }
  }

  // When every touched column is flat (kId), each input row yields at
  // most one output row and the whole scan vectorizes: constant patterns
  // and NULL checks refine a selection vector, repeated variables become
  // column-equality refinements, and the output materializes via
  // per-column gathers. List columns (multi-valued predicates) take the
  // general partial-expansion path below.
  bool all_flat = true;
  for (int c : pattern_column) {
    if (PartitionSchema().field(static_cast<size_t>(c)).kind !=
        ColumnKind::kId) {
      all_flat = false;
      break;
    }
  }

  // The scan kernels below take the rows as column views — `row_keys`
  // plus `cols[i]`, pattern i's table column — so the same code runs
  // over a whole in-memory partition or one pinned row group (row
  // indices are view-local either way).

  // Vectorized scan (flat columns only). Produces the exact rows, in
  // the exact ascending row order, that the general loop emits: with
  // flat columns every partial binding chain has exactly one row, so
  // surviving input rows map 1:1 to output rows.
  auto scan_rows_flat = [&](const IdVector& row_keys,
                            const std::vector<const Column*>& cols,
                            RelationChunk& out) -> uint64_t {
    std::vector<uint32_t> sel;
    if (!key.is_variable) {
      engine::kernels::Filter(row_keys, key.id, 0, row_keys.size(), sel);
    } else {
      engine::kernels::Iota(0, row_keys.size(), sel);
    }
    // First column bound to each output variable (the key column for the
    // key variable); later occurrences refine against it.
    std::vector<const IdVector*> bound(names.size(), nullptr);
    if (key_column >= 0) bound[0] = &row_keys;
    for (size_t i = 0; i < patterns.size() && !sel.empty(); ++i) {
      const IdVector& column = cols[i]->ids();
      if (!patterns[i].value.is_variable) {
        // Constant: equality (constants are never NULL ids).
        engine::kernels::Refine(column, patterns[i].value.id, sel);
        continue;
      }
      size_t out_col = static_cast<size_t>(pattern_out[i]);
      if (bound[out_col] != nullptr) {
        // Repeated variable: intra-row join against the binding column
        // (already refined non-NULL, so equality implies non-NULL here).
        engine::kernels::RefineRowsEqual(column, *bound[out_col], sel);
      } else {
        engine::kernels::RefineNotNull(column, sel);
        bound[out_col] = &column;
      }
    }
    for (size_t c = 0; c < names.size(); ++c) {
      // A variable can be unbound only when sel drained before its first
      // occurrence — nothing to gather then.
      if (bound[c] != nullptr) {
        engine::kernels::Gather(*bound[c], sel, out.columns[c]);
      }
    }
    return sel.size();
  };

  // General scan: row-at-a-time partial-binding expansion over list
  // (multi-valued) columns.
  auto scan_rows_general = [&](const IdVector& row_keys,
                               const std::vector<const Column*>& cols,
                               RelationChunk& out) -> uint64_t {
    uint64_t emitted = 0;
    std::vector<engine::Row> partials;
    std::vector<engine::Row> next;
    for (size_t r = 0; r < row_keys.size(); ++r) {
      if (!key.is_variable && row_keys[r] != key.id) continue;
      partials.clear();
      engine::Row seed(names.size(), rdf::kNullTermId);
      if (key_column >= 0) seed[0] = row_keys[r];
      partials.push_back(std::move(seed));

      bool row_alive = true;
      for (size_t i = 0; i < patterns.size() && row_alive; ++i) {
        const Column& column = *cols[i];
        // Cell values for this row.
        const TermId* cell_begin = nullptr;
        const TermId* cell_end = nullptr;
        TermId flat_value = rdf::kNullTermId;
        if (column.kind() == ColumnKind::kId) {
          flat_value = column.ids()[r];
          if (flat_value != rdf::kNullTermId) {
            cell_begin = &flat_value;
            cell_end = cell_begin + 1;
          }
        } else {
          const IdListColumn& lists = column.lists();
          cell_begin = lists.values.data() + lists.offsets[r];
          cell_end = lists.values.data() + lists.offsets[r + 1];
        }
        if (cell_begin == cell_end) {
          row_alive = false;
          break;
        }
        if (!patterns[i].value.is_variable) {
          bool found = std::find(cell_begin, cell_end,
                                 patterns[i].value.id) != cell_end;
          if (!found) row_alive = false;
          continue;
        }
        // Variable: extend or check each partial binding.
        size_t out_col = static_cast<size_t>(pattern_out[i]);
        next.clear();
        for (const engine::Row& partial : partials) {
          if (partial[out_col] != rdf::kNullTermId) {
            // Already bound (repeated variable): intra-row join.
            if (std::find(cell_begin, cell_end, partial[out_col]) !=
                cell_end) {
              next.push_back(partial);
            }
          } else {
            for (const TermId* v = cell_begin; v != cell_end; ++v) {
              engine::Row extended = partial;
              extended[out_col] = *v;
              next.push_back(std::move(extended));
            }
          }
        }
        partials.swap(next);
        if (partials.empty()) row_alive = false;
      }
      if (!row_alive) continue;
      for (const engine::Row& row : partials) {
        for (size_t c = 0; c < names.size(); ++c) {
          out.columns[c].push_back(row[c]);
        }
        ++emitted;
      }
    }
    return emitted;
  };

  auto scan_rows = [&](const IdVector& row_keys,
                       const std::vector<const Column*>& cols,
                       RelationChunk& out) -> uint64_t {
    return all_flat ? scan_rows_flat(row_keys, cols, out)
                    : scan_rows_general(row_keys, cols, out);
  };

  if (paged_mode()) {
    if (pool_ == nullptr) {
      return Status::Internal(
          "paged property table scanned without a buffer pool");
    }
    // Every id each storage column is constrained to equal: pattern
    // constants, plus pushed-filter equality hints on the column's
    // variable (a hint of kNullTermId matches ZoneMayContain nowhere,
    // which is exactly right — the filter constant is outside the
    // dictionary, so no stored row survives it).
    std::vector<std::vector<TermId>> col_eq(num_columns());
    if (!key.is_variable) col_eq[0].push_back(key.id);
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (!patterns[i].value.is_variable) {
        col_eq[static_cast<size_t>(pattern_column[i])].push_back(
            patterns[i].value.id);
      }
    }
    if (hints != nullptr) {
      for (const ScanEqualityHint& hint : hints->equals) {
        if (key.is_variable && key.name == hint.variable) {
          col_eq[0].push_back(hint.id);
        }
        for (size_t i = 0; i < patterns.size(); ++i) {
          if (patterns[i].value.is_variable &&
              patterns[i].value.name == hint.variable) {
            col_eq[static_cast<size_t>(pattern_column[i])].push_back(hint.id);
          }
        }
      }
    }

    // Pruning pass, all from metadata (no decode): the key bloom filter
    // kills whole partitions on constrained keys; a row group dies when
    // a zone map excludes a constrained id, or when any touched
    // predicate column is all-NULL in the group (every row would lose
    // that pattern's non-empty-cell check anyway). Scan charges stay in
    // the lexical byte domain: each touched column's lexical size is
    // apportioned over groups in proportion to its encoded chunk bytes,
    // flooring cumulatively so per-group charges telescope to exactly
    // full_scan_bytes[w] when nothing is skipped.
    std::vector<std::vector<uint32_t>> plan(num_workers_);
    std::vector<uint64_t> scanned_rows(num_workers_, 0);
    std::vector<uint64_t> charged_bytes(num_workers_, 0);
    ScanTelemetry local;
    for (uint32_t w = 0; w < num_workers_; ++w) {
      const columnar::PagedTable& paged = paged_[w];
      local.row_groups_total += paged.num_groups();
      if (paged.num_groups() == 0) {
        // Empty partition: nothing to prune; keep the in-memory charge.
        charged_bytes[w] = full_scan_bytes[w];
        continue;
      }
      bool bloom_rejected = false;
      for (TermId id : col_eq[0]) {
        if (!paged.key_bloom().MayContain(id)) {
          bloom_rejected = true;
          break;
        }
      }
      if (bloom_rejected) {
        ++local.partitions_skipped;
        continue;
      }
      std::vector<uint64_t> payload_total(charged_cols.size(), 0);
      std::vector<uint64_t> payload_cum(charged_cols.size(), 0);
      std::vector<uint64_t> lex_cum(charged_cols.size(), 0);
      for (size_t j = 0; j < charged_cols.size(); ++j) {
        payload_total[j] =
            paged.ColumnPayloadBytes(static_cast<uint32_t>(charged_cols[j]));
      }
      for (size_t g = 0; g < paged.num_groups(); ++g) {
        uint64_t group_lex = 0;
        bool keep = true;
        for (size_t j = 0; j < charged_cols.size(); ++j) {
          const size_t c = charged_cols[j];
          payload_cum[j] += paged.group(g).chunks[c].bytes;
          const uint64_t lex_c = column_bytes_[w][c];
          uint64_t lex_next =
              payload_total[j] == 0
                  ? lex_c
                  : lex_c * payload_cum[j] / payload_total[j];
          group_lex += lex_next - lex_cum[j];
          lex_cum[j] = lex_next;
          if (!keep) continue;
          if (j > 0 && paged.stats(g, c).value_count == 0) keep = false;
          for (TermId id : col_eq[c]) {
            if (!ZoneMayContain(paged.stats(g, c), id)) {
              keep = false;
              break;
            }
          }
        }
        if (!keep) {
          ++local.row_groups_skipped;
          continue;
        }
        plan[w].push_back(static_cast<uint32_t>(g));
        scanned_rows[w] += paged.group(g).num_rows;
        charged_bytes[w] += group_lex;
      }
    }

    // Scans partition `w`'s surviving groups, in ascending group (= row)
    // order, through pool pins: the key chunk plus one pin per distinct
    // touched column, held for exactly the duration of the group's scan.
    auto scan_partition_paged = [&](uint32_t w,
                                    RelationChunk& out) -> Result<uint64_t> {
      const columnar::PagedTable& paged = paged_[w];
      uint64_t emitted_rows = 0;
      std::vector<columnar::PinnedPage> pins;
      std::vector<const Column*> cols(patterns.size(), nullptr);
      for (uint32_t g : plan[w]) {
        PROST_ASSIGN_OR_RETURN(columnar::PinnedPage key_pin,
                               pool_->Pin(paged, g, 0));
        pins.clear();
        pins.reserve(charged_cols.size() - 1);
        for (size_t j = 1; j < charged_cols.size(); ++j) {
          PROST_ASSIGN_OR_RETURN(
              columnar::PinnedPage pin,
              pool_->Pin(paged, g, static_cast<uint32_t>(charged_cols[j])));
          pins.push_back(std::move(pin));
          // Frame storage is stable in the pool, so the Column reference
          // survives `pins` reallocation.
          for (size_t i = 0; i < patterns.size(); ++i) {
            if (static_cast<size_t>(pattern_column[i]) == charged_cols[j]) {
              cols[i] = &pins.back().column();
            }
          }
        }
        emitted_rows += scan_rows(key_pin.column().ids(), cols, out);
      }
      return emitted_rows;
    };

    std::vector<uint64_t> emitted(num_workers_, 0);
    std::vector<Status> statuses(num_workers_, Status::OK());
    auto run_partition = [&](uint32_t w) {
      Result<uint64_t> rows =
          scan_partition_paged(w, output.mutable_chunks()[w]);
      if (rows.ok()) {
        emitted[w] = *rows;
      } else {
        statuses[w] = rows.status();
      }
    };
    if (engine::IsParallel(exec)) {
      exec->pool()->ParallelFor(num_workers_, [&](size_t w) {
        run_partition(static_cast<uint32_t>(w));
      });
    } else {
      for (uint32_t w = 0; w < num_workers_; ++w) run_partition(w);
    }
    for (const Status& status : statuses) {
      PROST_RETURN_IF_ERROR(status);
    }
    for (uint32_t w = 0; w < num_workers_; ++w) {
      cost.ChargeScan(w, charged_bytes[w]);
      cost.ChargeCpuRows(w, scanned_rows[w] + emitted[w]);
      local.bytes_scanned += charged_bytes[w];
    }
    pool_->NoteRowGroupsSkipped(local.row_groups_skipped);
    pool_->NotePartitionsSkipped(local.partitions_skipped);
    pool_->NoteBytesScanned(local.bytes_scanned);
    if (telemetry != nullptr) *telemetry = local;
    if (key.is_variable) output.set_hash_partitioned_by(0);
    output.set_planner_bytes(planner_bytes);
    return output;
  }

  // Scans partition `w` into its output chunk, returning emitted rows.
  // Each partition writes only its own chunk, so partitions are
  // independent tasks and parallel output is bit-identical to serial.
  auto scan_partition = [&](uint32_t w) -> uint64_t {
    const StoredTable& part = partitions_[w];
    std::vector<const Column*> cols(patterns.size(), nullptr);
    for (size_t i = 0; i < patterns.size(); ++i) {
      cols[i] = &part.column(static_cast<size_t>(pattern_column[i]));
    }
    return scan_rows(part.column(0).ids(), cols,
                     output.mutable_chunks()[w]);
  };

  std::vector<uint64_t> emitted(num_workers_, 0);
  if (engine::IsParallel(exec)) {
    exec->pool()->ParallelFor(num_workers_, [&](size_t w) {
      emitted[w] = scan_partition(static_cast<uint32_t>(w));
    });
  } else {
    for (uint32_t w = 0; w < num_workers_; ++w) {
      emitted[w] = scan_partition(w);
    }
  }
  for (uint32_t w = 0; w < num_workers_; ++w) {
    cost.ChargeCpuRows(w, partitions_[w].num_rows() + emitted[w]);
  }
  if (key.is_variable) output.set_hash_partitioned_by(0);
  // The planner sees the touched columns' size (Parquet column pruning is
  // visible to Spark's relation statistics).
  output.set_planner_bytes(planner_bytes);
  return output;
}

void PropertyTable::EnablePaging(columnar::BufferPool* pool,
                                 uint32_t row_group_rows) {
  pool_ = pool;
  paged_.reserve(partitions_.size());
  for (StoredTable& part : partitions_) {
    paged_.push_back(columnar::PagedTable::FromStored(part, row_group_rows));
    // Keep a schema-shaped husk: consumers that only look at shape
    // (plan checking, schema queries) keep working, decoded columns go.
    Schema schema = part.schema();
    part = StoredTable(std::move(schema));
  }
}

uint64_t PropertyTable::TotalBytesEstimate() const {
  uint64_t total = 0;
  for (const auto& partition_bytes : column_bytes_) {
    for (uint64_t bytes : partition_bytes) total += bytes;
  }
  return total;
}

Status PropertyTable::WriteTo(const std::string& dir,
                              const rdf::Dictionary& dictionary) const {
  PROST_RETURN_IF_ERROR(MakeDirectories(dir));
  const char* stem = keyed_on_object_ ? "ptrev" : "pt";
  for (uint32_t w = 0; w < num_workers_; ++w) {
    std::string path = StrFormat("%s/%s_p%u.tbl", dir.c_str(), stem, w);
    if (paged_mode()) {
      PROST_ASSIGN_OR_RETURN(StoredTable decoded, paged_[w].ToStored());
      PROST_RETURN_IF_ERROR(
          columnar::WriteLexicalTableFile(decoded, dictionary, path));
    } else {
      PROST_RETURN_IF_ERROR(columnar::WriteLexicalTableFile(
          partitions_[w], dictionary, path));
    }
  }
  return Status::OK();
}

}  // namespace prost::core
