#ifndef PROST_CORE_EXECUTOR_H_
#define PROST_CORE_EXECUTOR_H_

#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "common/status.h"
#include "core/join_tree.h"
#include "core/property_table.h"
#include "core/vp_store.h"
#include "engine/operators.h"
#include "engine/relation.h"
#include "sparql/algebra.h"

namespace prost::core {

/// Loading-phase report (Table 1 of the paper): how long the simulated
/// cluster spent ingesting, and the storage footprint that resulted.
struct LoadReport {
  double simulated_load_millis = 0;
  double real_load_millis = 0;
  uint64_t input_triples = 0;
  uint64_t input_bytes = 0;
  uint64_t storage_bytes = 0;
};

/// One executed query: the result relation, the simulated cluster time,
/// and the counters explaining it.
struct QueryResult {
  engine::Relation relation;
  double simulated_millis = 0;
  cluster::ExecutionCounters counters;
  std::vector<engine::JoinStrategy> join_strategies;

  uint64_t num_rows() const { return relation.TotalRows(); }
};

/// Executes a Join Tree bottom-up (§3.2): each node's sub-query is
/// materialized from its storage structure in its own stage, then the
/// intermediate results are folded together with hash joins (broadcast or
/// shuffle, per `join_options`). The final projection / DISTINCT / LIMIT
/// modifiers of `query` are applied at the end.
///
/// `property_table` / `reverse_property_table` may be null when the tree
/// contains no node of that kind. The cost model must be freshly reset;
/// on return it carries the query's simulated time.
///
/// `exec` (nullable) selects the morsel-driven parallel operator paths;
/// the result relation is bit-identical to a serial run and the simulated
/// time is unchanged — parallelism affects wall-clock only.
Result<QueryResult> ExecuteJoinTree(
    const JoinTree& tree, const sparql::Query& query, const VpStore& vp,
    const PropertyTable* property_table,
    const PropertyTable* reverse_property_table,
    const engine::JoinOptions& join_options,
    const rdf::Dictionary& dictionary, cluster::CostModel& cost,
    const engine::ExecContext* exec = nullptr);

}  // namespace prost::core

#endif  // PROST_CORE_EXECUTOR_H_
