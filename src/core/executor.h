#ifndef PROST_CORE_EXECUTOR_H_
#define PROST_CORE_EXECUTOR_H_

#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "common/status.h"
#include "core/join_tree.h"
#include "core/property_table.h"
#include "core/vp_store.h"
#include "engine/operators.h"
#include "engine/relation.h"
#include "plan/plan_ir.h"
#include "sparql/algebra.h"

namespace prost::core {

/// Loading-phase report (Table 1 of the paper): how long the simulated
/// cluster spent ingesting, and the storage footprint that resulted.
struct LoadReport {
  double simulated_load_millis = 0;
  double real_load_millis = 0;
  uint64_t input_triples = 0;
  uint64_t input_bytes = 0;
  uint64_t storage_bytes = 0;
};

/// One executed query: the result relation, the simulated cluster time,
/// and the counters explaining it.
struct QueryResult {
  engine::Relation relation;
  double simulated_millis = 0;
  cluster::ExecutionCounters counters;
  std::vector<engine::JoinStrategy> join_strategies;

  uint64_t num_rows() const { return relation.TotalRows(); }
};

/// Interprets a physical plan (plan/plan_ir.h) bottom-up: scans
/// materialize their Join Tree node from storage (evaluating any pushed
/// filters in place), joins fold the children with broadcast/shuffle
/// hash joins — honoring a plan-time resolved strategy when the
/// optimizer set one — and the modifier tail executes node by node.
/// Every plan node maps 1:1 onto an operator span, nested the way the
/// plan nests, so EXPLAIN ANALYZE shows exactly the executed plan.
///
/// `property_table` / `reverse_property_table` may be null when the plan
/// contains no scan of that kind. The cost model must be freshly reset;
/// on return it carries the query's simulated time.
///
/// `exec` (nullable) selects the morsel-driven parallel operator paths;
/// the result relation is bit-identical to a serial run and the simulated
/// time is unchanged — parallelism affects wall-clock only.
Result<QueryResult> ExecutePlan(
    const plan::PhysicalPlan& physical, const VpStore& vp,
    const PropertyTable* property_table,
    const PropertyTable* reverse_property_table,
    const engine::JoinOptions& join_options,
    const rdf::Dictionary& dictionary, cluster::CostModel& cost,
    const engine::ExecContext* exec = nullptr);

/// Executes a Join Tree bottom-up (§3.2): lowers the tree plus the
/// query's modifiers into the unoptimized physical plan (plan/planner.h;
/// no optimizer passes) and interprets it — each node's sub-query is
/// materialized from its storage structure, then the intermediate
/// results are folded together with hash joins (broadcast or shuffle,
/// per `join_options`), then the FILTER / projection / DISTINCT / LIMIT
/// modifiers of `query` run at the end. Kept as the pass-free entry
/// point for direct callers (tests, hand-built trees).
Result<QueryResult> ExecuteJoinTree(
    const JoinTree& tree, const sparql::Query& query, const VpStore& vp,
    const PropertyTable* property_table,
    const PropertyTable* reverse_property_table,
    const engine::JoinOptions& join_options,
    const rdf::Dictionary& dictionary, cluster::CostModel& cost,
    const engine::ExecContext* exec = nullptr);

}  // namespace prost::core

#endif  // PROST_CORE_EXECUTOR_H_
