#include "core/modifiers.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "common/str_util.h"
#include "engine/operators.h"
#include "obs/trace.h"

namespace prost::core {
namespace {

using engine::Relation;
using engine::RelationChunk;
using engine::Row;
using rdf::TermId;

/// Comparison view of one RDF term: numeric value when the term is a
/// numeric literal, plus the canonical lexical form for everything else.
struct TermKey {
  bool is_numeric = false;
  double number = 0;
  std::string lexical;
};

bool IsNumericDatatype(const std::string& datatype) {
  static constexpr const char* kPrefix = "http://www.w3.org/2001/XMLSchema#";
  if (datatype.rfind(kPrefix, 0) != 0) return false;
  std::string local = datatype.substr(std::string(kPrefix).size());
  return local == "integer" || local == "decimal" || local == "double" ||
         local == "float" || local == "int" || local == "long" ||
         local == "short" || local == "nonNegativeInteger";
}

TermKey KeyOfTerm(const rdf::Term& term) {
  TermKey key;
  key.lexical = term.ToNTriples();
  if (term.is_literal() && IsNumericDatatype(term.datatype)) {
    char* end = nullptr;
    double value = std::strtod(term.value.c_str(), &end);
    if (end != nullptr && *end == '\0' && !term.value.empty()) {
      key.is_numeric = true;
      key.number = value;
    }
  }
  return key;
}

/// Memoizing id → TermKey resolver over the shared dictionary.
class KeyCache {
 public:
  explicit KeyCache(const rdf::Dictionary& dictionary)
      : dictionary_(dictionary) {}

  const TermKey& Get(TermId id) {
    auto it = cache_.find(id);
    if (it != cache_.end()) return it->second;
    TermKey key;
    Result<rdf::Term> term = dictionary_.DecodeTerm(id);
    if (term.ok()) key = KeyOfTerm(*term);
    return cache_.emplace(id, std::move(key)).first->second;
  }

 private:
  const rdf::Dictionary& dictionary_;
  std::unordered_map<TermId, TermKey> cache_;
};

/// SPARQL-ish three-way comparison; 0 = equal.
int CompareKeys(const TermKey& a, const TermKey& b) {
  if (a.is_numeric && b.is_numeric) {
    if (a.number < b.number) return -1;
    if (a.number > b.number) return 1;
    return 0;
  }
  return a.lexical.compare(b.lexical);
}

bool EvalOp(sparql::CompareOp op, int cmp) {
  switch (op) {
    case sparql::CompareOp::kEq:
      return cmp == 0;
    case sparql::CompareOp::kNe:
      return cmp != 0;
    case sparql::CompareOp::kLt:
      return cmp < 0;
    case sparql::CompareOp::kLe:
      return cmp <= 0;
    case sparql::CompareOp::kGt:
      return cmp > 0;
    case sparql::CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

}  // namespace

bool FilterEqualityPruneId(const sparql::FilterConstraint& filter,
                           const rdf::Dictionary& dictionary,
                           rdf::TermId* id) {
  if (filter.op != sparql::CompareOp::kEq || filter.rhs_is_variable) {
    return false;
  }
  TermKey key = KeyOfTerm(filter.rhs_term);
  if (key.is_numeric) return false;
  // Non-numeric `=` compares canonical lexical forms, and the dictionary
  // is keyed on exactly that form — so equality is id equality.
  *id = dictionary.Lookup(key.lexical);
  return true;
}

struct FilterEvaluator::Impl {
  explicit Impl(const rdf::Dictionary& dictionary) : keys(dictionary) {}
  KeyCache keys;
};

FilterEvaluator::FilterEvaluator(const rdf::Dictionary& dictionary)
    : impl_(std::make_unique<Impl>(dictionary)) {}

FilterEvaluator::~FilterEvaluator() = default;

Result<Relation> FilterEvaluator::ApplyFilter(
    const Relation& input, const sparql::FilterConstraint& filter,
    cluster::CostModel& cost) {
  KeyCache& keys = impl_->keys;
  int lhs_column = input.ColumnIndex(filter.variable);
  if (lhs_column < 0) {
    return Status::InvalidArgument("FILTER variable ?" + filter.variable +
                                   " is not in the relation");
  }
  int rhs_column = -1;
  TermKey rhs_key;
  if (filter.rhs_is_variable) {
    rhs_column = input.ColumnIndex(filter.rhs_variable);
    if (rhs_column < 0) {
      return Status::InvalidArgument("FILTER variable ?" +
                                     filter.rhs_variable +
                                     " is not in the relation");
    }
  } else {
    // The constant is keyed from its parsed form — it need not occur in
    // the dataset for ordering comparisons to work.
    rhs_key = KeyOfTerm(filter.rhs_term);
  }

  Relation output(input.column_names(), input.num_chunks());
  output.set_hash_partitioned_by(input.hash_partitioned_by());
  if (input.planner_bytes_set()) {
    // Spark 2.1 static planning: filters do not discount sizeInBytes, so
    // a filter pushed below a join leaves the scan's planner size (and
    // with it every resolved join strategy downstream) untouched.
    cluster::ClusterConfig dummy;
    output.set_planner_bytes(input.PlannerBytes(dummy));
  }
  for (uint32_t w = 0; w < input.num_chunks(); ++w) {
    const RelationChunk& chunk = input.chunks()[w];
    RelationChunk& out = output.mutable_chunks()[w];
    for (size_t r = 0; r < chunk.num_rows(); ++r) {
      const TermKey& lhs =
          keys.Get(chunk.columns[static_cast<size_t>(lhs_column)][r]);
      const TermKey& rhs =
          rhs_column >= 0
              ? keys.Get(chunk.columns[static_cast<size_t>(rhs_column)][r])
              : rhs_key;
      if (!EvalOp(filter.op, CompareKeys(lhs, rhs))) continue;
      for (size_t c = 0; c < chunk.columns.size(); ++c) {
        out.columns[c].push_back(chunk.columns[c][r]);
      }
    }
    cost.ChargeCpuRows(w, chunk.num_rows());
  }
  return output;
}

Result<Relation> FilterEvaluator::ApplyOrderBy(
    Relation relation, const std::vector<sparql::OrderKey>& order_keys,
    cluster::CostModel& cost) {
  KeyCache& keys = impl_->keys;
  // Driver-side sort, like Spark's collect for ordered results.
  std::vector<int> key_columns;
  key_columns.reserve(order_keys.size());
  for (const sparql::OrderKey& key : order_keys) {
    int column = relation.ColumnIndex(key.variable);
    if (column < 0) {
      return Status::InvalidArgument("ORDER BY variable ?" + key.variable +
                                     " is not bound in the solution");
    }
    key_columns.push_back(column);
  }
  std::vector<Row> rows = relation.CollectRows();
  cost.ChargeCpuRows(0, rows.size());
  std::stable_sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
    for (size_t k = 0; k < key_columns.size(); ++k) {
      size_t c = static_cast<size_t>(key_columns[k]);
      int cmp = CompareKeys(keys.Get(a[c]), keys.Get(b[c]));
      if (cmp == 0) continue;
      return order_keys[k].descending ? cmp > 0 : cmp < 0;
    }
    return false;
  });
  Relation sorted(relation.column_names(), relation.num_chunks());
  RelationChunk& chunk = sorted.mutable_chunks()[0];
  for (const Row& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      chunk.columns[c].push_back(row[c]);
    }
  }
  return sorted;
}

Result<Relation> ApplyCountAggregate(const Relation& relation,
                                     const sparql::CountAggregate& count,
                                     uint64_t offset,
                                     cluster::CostModel& cost) {
  uint64_t n = 0;
  if (count.variable.empty()) {
    n = relation.TotalRows();
  } else {
    int column = relation.ColumnIndex(count.variable);
    if (column < 0) {
      return Status::InvalidArgument("counted variable ?" + count.variable +
                                     " is not in the relation");
    }
    if (count.distinct) {
      std::unordered_set<TermId> distinct_values;
      for (const RelationChunk& chunk : relation.chunks()) {
        for (TermId id : chunk.columns[static_cast<size_t>(column)]) {
          distinct_values.insert(id);
        }
      }
      n = distinct_values.size();
    } else {
      n = relation.TotalRows();  // Bindings are never unbound here.
    }
  }
  cost.ChargeCpuRows(0, relation.TotalRows());
  // A non-zero OFFSET slices the single result row away.
  if (offset > 0) return Relation({count.alias}, relation.num_chunks());
  Relation aggregated({count.alias}, relation.num_chunks());
  aggregated.mutable_chunks()[0].columns[0].push_back(
      rdf::VirtualIntegerId(n));
  return aggregated;
}

Relation OrderPreservingDistinct(const Relation& relation,
                                 cluster::CostModel& cost) {
  std::vector<Row> rows = relation.CollectRows();
  cost.ChargeCpuRows(0, rows.size());
  std::vector<Row> seen_sorted;  // For O(n log n) membership.
  Relation deduped(relation.column_names(), relation.num_chunks());
  RelationChunk& chunk = deduped.mutable_chunks()[0];
  for (const Row& row : rows) {
    auto it = std::lower_bound(seen_sorted.begin(), seen_sorted.end(), row);
    if (it != seen_sorted.end() && *it == row) continue;
    seen_sorted.insert(it, row);
    for (size_t c = 0; c < row.size(); ++c) {
      chunk.columns[c].push_back(row[c]);
    }
  }
  return deduped;
}

Relation ApplyOffset(Relation relation, uint64_t offset) {
  uint64_t to_drop = offset;
  for (uint32_t w = 0; w < relation.num_chunks() && to_drop > 0; ++w) {
    RelationChunk& chunk = relation.mutable_chunks()[w];
    size_t drop =
        static_cast<size_t>(std::min<uint64_t>(chunk.num_rows(), to_drop));
    for (auto& column : chunk.columns) {
      column.erase(column.begin(), column.begin() + drop);
    }
    to_drop -= drop;
  }
  return relation;
}

Result<Relation> ApplyFiltersAndModifiers(Relation relation,
                                          const sparql::Query& query,
                                          const rdf::Dictionary& dictionary,
                                          cluster::CostModel& cost,
                                          const engine::ExecContext* exec) {
  FilterEvaluator evaluator(dictionary);
  obs::QueryProfile* profile = engine::ProfileOf(exec);
  obs::OperatorSpan modifiers_span(profile, cost, obs::SpanKind::kModifiers,
                                   "");
  modifiers_span.SetRowsIn(relation.TotalRows());

  // FILTER constraints, pipelined (no stage boundaries of their own).
  for (const sparql::FilterConstraint& filter : query.filters) {
    obs::OperatorSpan filter_span(profile, cost, obs::SpanKind::kFilter,
                                  "?" + filter.variable);
    filter_span.SetDetail("FILTER");
    filter_span.SetRowsIn(relation.TotalRows());
    PROST_ASSIGN_OR_RETURN(relation,
                           evaluator.ApplyFilter(relation, filter, cost));
    filter_span.SetRowsOut(relation.TotalRows());
  }

  // COUNT aggregates collapse the (filtered) solutions to a single row
  // carrying a virtual integer id; the remaining modifiers reduce to the
  // trivial slice of one row.
  if (query.count.has_value()) {
    const sparql::CountAggregate& count = *query.count;
    obs::OperatorSpan agg_span(profile, cost, obs::SpanKind::kAggregate,
                               count.alias);
    agg_span.SetDetail(count.distinct ? "COUNT DISTINCT" : "COUNT");
    agg_span.SetRowsIn(relation.TotalRows());
    PROST_ASSIGN_OR_RETURN(
        relation, ApplyCountAggregate(relation, count, query.offset, cost));
    agg_span.SetRowsOut(relation.TotalRows());
    modifiers_span.SetRowsOut(relation.TotalRows());
    return relation;
  }

  // SPARQL evaluation order: ORDER BY sees the *full* solutions (its keys
  // may be dropped by the projection that follows).
  const bool ordered = !query.order_by.empty();
  if (ordered) {
    obs::OperatorSpan sort_span(profile, cost, obs::SpanKind::kOrderBy, "");
    sort_span.SetRowsIn(relation.TotalRows());
    sort_span.SetRowsOut(relation.TotalRows());
    PROST_ASSIGN_OR_RETURN(
        relation,
        evaluator.ApplyOrderBy(std::move(relation), query.order_by, cost));
  }

  // Projection preserves per-chunk row order (ordered results live in one
  // chunk).
  {
    std::vector<std::string> projection = query.EffectiveProjection();
    obs::OperatorSpan project_span(profile, cost, obs::SpanKind::kProject,
                                   StrJoin(projection, ","));
    project_span.SetRowsIn(relation.TotalRows());
    project_span.SetRowsOut(relation.TotalRows());
    PROST_ASSIGN_OR_RETURN(relation,
                           engine::Project(relation, projection, cost, exec));
  }
  if (query.distinct) {
    if (ordered) {
      obs::OperatorSpan dedupe_span(profile, cost, obs::SpanKind::kDistinct,
                                    "");
      dedupe_span.SetDetail("order-preserving");
      dedupe_span.SetRowsIn(relation.TotalRows());
      relation = OrderPreservingDistinct(relation, cost);
      dedupe_span.SetRowsOut(relation.TotalRows());
    } else {
      obs::OperatorSpan dedupe_span(profile, cost, obs::SpanKind::kDistinct,
                                    "");
      dedupe_span.SetRowsIn(relation.TotalRows());
      PROST_ASSIGN_OR_RETURN(relation,
                             engine::Distinct(relation, cost, exec));
      dedupe_span.SetRowsOut(relation.TotalRows());
    }
  }

  relation = ApplyOffset(std::move(relation), query.offset);
  if (query.limit > 0) {
    relation = engine::Limit(relation, query.limit);
  }
  modifiers_span.SetRowsOut(relation.TotalRows());
  return relation;
}

}  // namespace prost::core
