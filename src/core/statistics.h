#ifndef PROST_CORE_STATISTICS_H_
#define PROST_CORE_STATISTICS_H_

#include <cstdint>
#include <map>

#include "rdf/graph.h"
#include "rdf/triple.h"
#include "sparql/algebra.h"

namespace prost::core {

/// The loading-phase dataset statistics of §3.3: "(1) the total number of
/// triples and (2) the number of distinct subjects for each predicate.
/// They are calculated during the loading phase without any significant
/// overhead." Distinct objects are additionally tracked for the
/// constant-object selectivity estimate and the reverse Property Table.
class DatasetStatistics {
 public:
  DatasetStatistics() = default;

  /// One pass over the encoded graph.
  static DatasetStatistics Compute(const rdf::EncodedGraph& graph);

  /// §5 future work ("collect more precise statistics of the input
  /// dataset in order to produce better trees"): additionally computes,
  /// for every predicate pair, how many distinct subjects carry *both*
  /// predicates. Sharpens the Property-Table-node cardinality estimate
  /// from min(distinct_subjects(pᵢ)) to the true pairwise intersection
  /// bound. Costs an extra O(|P|²·|D|)-ish pass at loading time — the
  /// trade-off the paper names.
  static DatasetStatistics ComputeWithPairwise(const rdf::EncodedGraph& graph);

  /// Assembles statistics from precomputed per-predicate entries (used
  /// when reopening a persisted database, where the stats are recomputed
  /// from the VP tables instead of the raw triples).
  static DatasetStatistics FromPerPredicate(
      std::map<rdf::TermId, rdf::PredicateStats> per_predicate);

  uint64_t total_triples() const { return total_triples_; }
  size_t num_predicates() const { return per_predicate_.size(); }

  /// Stats for a predicate; zeroed stats for unknown predicates (a query
  /// mentioning an absent predicate has an empty answer).
  rdf::PredicateStats ForPredicate(rdf::TermId predicate) const;

  const std::map<rdf::TermId, rdf::PredicateStats>& per_predicate() const {
    return per_predicate_;
  }

  /// Estimated number of result tuples for one triple pattern, the §3.3
  /// priority signal: the predicate's triple count, divided by distinct
  /// subjects for a constant subject and by distinct objects for a
  /// constant object ("the presence of a literal is a strong constraint").
  double EstimatePatternCardinality(const sparql::TriplePattern& pattern,
                                    rdf::TermId predicate_id) const;

  /// Whether pairwise subject-overlap statistics were collected.
  bool has_pairwise() const { return has_pairwise_; }

  /// Number of distinct subjects carrying both `p` and `q`. Only
  /// meaningful when has_pairwise(); returns the min of the single-
  /// predicate subject counts otherwise (the classic upper bound).
  uint64_t SubjectOverlap(rdf::TermId p, rdf::TermId q) const;

 private:
  uint64_t total_triples_ = 0;
  std::map<rdf::TermId, rdf::PredicateStats> per_predicate_;
  bool has_pairwise_ = false;
  /// Keyed on (min(p,q), max(p,q)); absent pairs share no subject.
  std::map<std::pair<rdf::TermId, rdf::TermId>, uint64_t> subject_overlap_;
};

}  // namespace prost::core

#endif  // PROST_CORE_STATISTICS_H_
