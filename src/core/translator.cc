#include "core/translator.h"

#include <algorithm>
#include <map>

namespace prost::core {
namespace {

PatternTerm Resolve(const rdf::Term& term, const rdf::Dictionary& dictionary) {
  if (term.is_variable()) return PatternTerm::Var(term.value);
  // Unknown constants resolve to id 0, which matches nothing.
  return PatternTerm::Const(dictionary.Lookup(term.ToNTriples()));
}

/// Grouping key for a pattern position: variables key by name, constants
/// by lexical form.
std::string GroupKey(const rdf::Term& term) {
  return term.is_variable() ? "?" + term.value : term.ToNTriples();
}

/// §3.3 cardinality estimate for a node.
double EstimateNode(const JoinTreeNode& node, const DatasetStatistics& stats) {
  if (node.kind == NodeKind::kVerticalPartitioning) {
    return stats.EstimatePatternCardinality(node.patterns[0].source,
                                            node.patterns[0].predicate);
  }
  // Property Table group: the row driver is the most selective pattern.
  // A constant object ("literal") caps the estimate hard, implementing
  // "the presence of a triple pattern with a literal is weighted heavily".
  double best = -1;
  for (const NodePattern& p : node.patterns) {
    rdf::PredicateStats s = stats.ForPredicate(p.predicate);
    double estimate;
    if (s.triple_count == 0) {
      estimate = 0;
    } else if (node.kind == NodeKind::kPropertyTable) {
      estimate = p.object.is_variable
                     ? static_cast<double>(s.distinct_subjects)
                     : static_cast<double>(s.triple_count) /
                           std::max<uint64_t>(1, s.distinct_objects);
      if (!p.subject.is_variable) estimate = std::min(estimate, 1.0);
    } else {  // Reverse PT: symmetric, keyed on objects.
      estimate = p.subject.is_variable
                     ? static_cast<double>(s.distinct_objects)
                     : static_cast<double>(s.triple_count) /
                           std::max<uint64_t>(1, s.distinct_subjects);
      if (!p.object.is_variable) estimate = std::min(estimate, 1.0);
    }
    if (best < 0 || estimate < best) best = estimate;
  }
  double result = best < 0 ? 0 : best;
  // §5 future work: with pairwise subject-overlap statistics, a PT
  // group's subject count is bounded by the tightest pairwise
  // intersection, which is never larger than the per-pattern minimum.
  if (stats.has_pairwise() && node.kind == NodeKind::kPropertyTable &&
      node.patterns.size() >= 2) {
    for (size_t i = 0; i < node.patterns.size(); ++i) {
      for (size_t j = i + 1; j < node.patterns.size(); ++j) {
        result = std::min(
            result, static_cast<double>(stats.SubjectOverlap(
                        node.patterns[i].predicate,
                        node.patterns[j].predicate)));
      }
    }
  }
  return result;
}

bool SharesVariable(const std::set<std::string>& bound,
                    const JoinTreeNode& node) {
  for (const std::string& v : node.Variables()) {
    if (bound.count(v)) return true;
  }
  return false;
}

}  // namespace

Result<JoinTree> Translate(const sparql::Query& query,
                           const DatasetStatistics& stats,
                           const rdf::Dictionary& dictionary,
                           const TranslatorOptions& options) {
  PROST_RETURN_IF_ERROR(sparql::ValidateQuery(query));
  for (const sparql::TriplePattern& pattern : query.bgp.patterns) {
    if (pattern.Variables().empty()) {
      return Status::Unimplemented(
          "fully-constant triple patterns are not supported: " +
          pattern.ToString());
    }
  }

  // 1. Group by subject, in first-appearance order.
  std::vector<std::string> group_order;
  std::map<std::string, std::vector<const sparql::TriplePattern*>> groups;
  for (const sparql::TriplePattern& pattern : query.bgp.patterns) {
    std::string key = GroupKey(pattern.subject);
    auto [it, inserted] = groups.emplace(
        key, std::vector<const sparql::TriplePattern*>{});
    if (inserted) group_order.push_back(key);
    it->second.push_back(&pattern);
  }

  auto make_pattern = [&](const sparql::TriplePattern& p) {
    NodePattern node_pattern;
    node_pattern.source = p;
    node_pattern.subject = Resolve(p.subject, dictionary);
    node_pattern.object = Resolve(p.object, dictionary);
    node_pattern.predicate = dictionary.Lookup(p.predicate.ToNTriples());
    return node_pattern;
  };

  std::vector<JoinTreeNode> nodes;
  std::vector<const sparql::TriplePattern*> leftovers;
  for (const std::string& key : group_order) {
    const auto& group = groups[key];
    if (options.use_property_table && group.size() >= options.min_group_size) {
      JoinTreeNode node;
      node.kind = NodeKind::kPropertyTable;
      for (const sparql::TriplePattern* p : group) {
        node.patterns.push_back(make_pattern(*p));
      }
      nodes.push_back(std::move(node));
    } else {
      for (const sparql::TriplePattern* p : group) leftovers.push_back(p);
    }
  }

  // 1b. Optional reverse-PT grouping of leftovers by shared object.
  if (options.use_reverse_property_table && !leftovers.empty()) {
    // Gate (a lesson the F4 measurement teaches): a reverse-PT node
    // materializes the full per-object cross product of its patterns
    // *before* any other constraint applies. If the shared object
    // variable is also constrained selectively elsewhere — it is the
    // subject of a pattern with a constant object, or the subject of a
    // same-subject PT group — a well-ordered plan filters it down first,
    // and grouping would explode instead of help. Skip those variables.
    std::set<std::string> selectively_bound;
    for (const sparql::TriplePattern& p : query.bgp.patterns) {
      if (!p.subject.is_variable()) continue;
      bool in_pt_group =
          options.use_property_table &&
          groups.at(GroupKey(p.subject)).size() >= options.min_group_size;
      if (in_pt_group || p.object.is_concrete()) {
        selectively_bound.insert(p.subject.value);
      }
    }
    std::vector<std::string> object_order;
    std::map<std::string, std::vector<const sparql::TriplePattern*>>
        object_groups;
    for (const sparql::TriplePattern* p : leftovers) {
      // Only variable objects benefit: a constant object is already a
      // maximally selective VP scan.
      if (!p->object.is_variable()) continue;
      if (selectively_bound.count(p->object.value)) continue;
      std::string key = GroupKey(p->object);
      auto [it, inserted] = object_groups.emplace(
          key, std::vector<const sparql::TriplePattern*>{});
      if (inserted) object_order.push_back(key);
      it->second.push_back(p);
    }
    std::vector<const sparql::TriplePattern*> remaining;
    std::set<const sparql::TriplePattern*> grouped;
    for (const std::string& key : object_order) {
      const auto& group = object_groups[key];
      if (group.size() >= options.min_group_size) {
        JoinTreeNode node;
        node.kind = NodeKind::kReversePropertyTable;
        for (const sparql::TriplePattern* p : group) {
          node.patterns.push_back(make_pattern(*p));
          grouped.insert(p);
        }
        nodes.push_back(std::move(node));
      }
    }
    for (const sparql::TriplePattern* p : leftovers) {
      if (!grouped.count(p)) remaining.push_back(p);
    }
    leftovers = std::move(remaining);
  }

  for (const sparql::TriplePattern* p : leftovers) {
    JoinTreeNode node;
    node.kind = NodeKind::kVerticalPartitioning;
    node.patterns.push_back(make_pattern(*p));
    nodes.push_back(std::move(node));
  }

  // 2. Cardinality estimates.
  for (JoinTreeNode& node : nodes) {
    node.estimated_cardinality = EstimateNode(node, stats);
  }

  // 3. Order: ascending cardinality (stats) or query order (ablation),
  // constrained to keep the accumulated tree connected.
  std::vector<size_t> order(nodes.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (options.enable_stats_ordering) {
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return nodes[a].estimated_cardinality <
             nodes[b].estimated_cardinality;
    });
  }

  JoinTree tree;
  std::vector<bool> used(nodes.size(), false);
  std::set<std::string> bound;
  for (size_t step = 0; step < nodes.size(); ++step) {
    size_t chosen = nodes.size();
    for (size_t index : order) {
      if (used[index]) continue;
      if (step == 0 || SharesVariable(bound, nodes[index])) {
        chosen = index;
        break;
      }
    }
    if (chosen == nodes.size()) {
      // Disconnected BGPs are rejected by validation, so every remaining
      // node must eventually connect; defensively take the first unused.
      for (size_t index : order) {
        if (!used[index]) {
          chosen = index;
          break;
        }
      }
    }
    used[chosen] = true;
    for (const std::string& v : nodes[chosen].Variables()) bound.insert(v);
    tree.nodes.push_back(std::move(nodes[chosen]));
  }
  return tree;
}

}  // namespace prost::core
