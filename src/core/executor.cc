#include "core/executor.h"

#include "analysis/plan_checker.h"
#include "common/str_util.h"
#include "core/modifiers.h"
#include "obs/trace.h"
#include "plan/planner.h"

// Paranoid self-checks at operator boundaries: always on in debug builds,
// and in release builds when the tree is compiled with sanitizers
// (PROST_PARANOID_CHECKS comes from the PROST_ASAN/PROST_UBSAN options).
#if defined(PROST_PARANOID_CHECKS) || !defined(NDEBUG)
#define PROST_VALIDATE_RELATION(relation) \
  PROST_RETURN_IF_ERROR((relation).Validate())
#else
#define PROST_VALIDATE_RELATION(relation) \
  do {                                    \
  } while (false)
#endif

namespace prost::core {
namespace {

Result<engine::Relation> ScanNode(const JoinTreeNode& node, const VpStore& vp,
                                  const PropertyTable* property_table,
                                  const PropertyTable* reverse_property_table,
                                  cluster::CostModel& cost,
                                  const engine::ExecContext* exec,
                                  const ScanHints* hints,
                                  ScanTelemetry* telemetry) {
  switch (node.kind) {
    case NodeKind::kVerticalPartitioning:
      return vp.Scan(node.patterns[0].predicate, node.patterns[0].subject,
                     node.patterns[0].object, cost, exec, hints, telemetry);
    case NodeKind::kPropertyTable: {
      if (property_table == nullptr) {
        return Status::Internal("join tree has a PT node but no PT");
      }
      std::vector<PropertyTable::ColumnPattern> patterns;
      patterns.reserve(node.patterns.size());
      for (const NodePattern& p : node.patterns) {
        patterns.push_back({p.predicate, p.object});
      }
      return property_table->Scan(node.patterns[0].subject, patterns, cost,
                                  exec, hints, telemetry);
    }
    case NodeKind::kReversePropertyTable: {
      if (reverse_property_table == nullptr) {
        return Status::Internal("join tree has an RPT node but no RPT");
      }
      std::vector<PropertyTable::ColumnPattern> patterns;
      patterns.reserve(node.patterns.size());
      for (const NodePattern& p : node.patterns) {
        patterns.push_back({p.predicate, p.subject});
      }
      return reverse_property_table->Scan(node.patterns[0].object, patterns,
                                          cost, exec, hints, telemetry);
    }
  }
  return Status::Internal("unknown node kind");
}

/// Input row count of a plan scan: the stored table it reads.
uint64_t NodeInputRows(const JoinTreeNode& node, const VpStore& vp,
                       const PropertyTable* property_table,
                       const PropertyTable* reverse_property_table) {
  switch (node.kind) {
    case NodeKind::kVerticalPartitioning: {
      const VpStore::PredicateTable* table =
          vp.Find(node.patterns[0].predicate);
      return table != nullptr ? table->total_rows : 0;
    }
    case NodeKind::kPropertyTable:
      return property_table != nullptr ? property_table->num_rows() : 0;
    case NodeKind::kReversePropertyTable:
      return reverse_property_table != nullptr
                 ? reverse_property_table->num_rows()
                 : 0;
  }
  return 0;
}

/// Recursive plan walker. Spans open pre-order (a node's span brackets
/// its children), so the recorded span tree mirrors the plan DAG; the
/// clock-charge order over the left-deep join chain is identical to the
/// classic fold (scan, scan, join, scan, join, ...).
class PlanInterpreter {
 public:
  PlanInterpreter(const VpStore& vp, const PropertyTable* property_table,
                  const PropertyTable* reverse_property_table,
                  const engine::JoinOptions& join_options,
                  const rdf::Dictionary& dictionary, cluster::CostModel& cost,
                  const engine::ExecContext* exec)
      : vp_(vp),
        property_table_(property_table),
        reverse_property_table_(reverse_property_table),
        join_options_(join_options),
        dictionary_(dictionary),
        filters_(dictionary),
        cost_(cost),
        exec_(exec),
        profile_(engine::ProfileOf(exec)) {}

  Result<engine::Relation> Exec(const plan::PlanNode& node) {
    PROST_ASSIGN_OR_RETURN(engine::Relation relation, Dispatch(node));
    // Budget enforcement is deterministic by construction: it compares
    // simulated quantities (operator cardinality, the accounted cluster
    // clock) on the coordinating thread, so a budgeted query fails (or
    // not) identically at any thread count and under any concurrency.
    const engine::QueryBudget* budget = engine::BudgetOf(exec_);
    if (budget != nullptr) {
      if (budget->max_rows > 0 && relation.TotalRows() > budget->max_rows) {
        return Status::ResourceExhausted(StrFormat(
            "query row budget exceeded: %s produced %llu rows (budget %llu)",
            node.Label().c_str(),
            static_cast<unsigned long long>(relation.TotalRows()),
            static_cast<unsigned long long>(budget->max_rows)));
      }
      if (budget->max_simulated_millis > 0 &&
          cost_.AccountedMillis() > budget->max_simulated_millis) {
        return Status::ResourceExhausted(StrFormat(
            "query simulated-time budget exceeded after %s: %.3f ms "
            "accounted (budget %.3f ms)",
            node.Label().c_str(), cost_.AccountedMillis(),
            budget->max_simulated_millis));
      }
    }
    return relation;
  }

  Result<engine::Relation> Dispatch(const plan::PlanNode& node) {
    switch (node.kind) {
      case plan::PlanNodeKind::kVpScan:
      case plan::PlanNodeKind::kPtScan:
        return ExecScan(static_cast<const plan::ScanNodeBase&>(node));
      case plan::PlanNodeKind::kHashJoin:
        return ExecJoin(static_cast<const plan::HashJoinNode&>(node));
      case plan::PlanNodeKind::kFilter:
        return ExecFilter(static_cast<const plan::FilterNode&>(node));
      case plan::PlanNodeKind::kProject:
        return ExecProject(static_cast<const plan::ProjectNode&>(node));
      case plan::PlanNodeKind::kOrderBy:
        return ExecOrderBy(static_cast<const plan::OrderByNode&>(node));
      case plan::PlanNodeKind::kAggregate:
        return ExecAggregate(static_cast<const plan::AggregateNode&>(node));
      case plan::PlanNodeKind::kDistinct:
        return ExecDistinct(static_cast<const plan::DistinctNode&>(node));
      case plan::PlanNodeKind::kLimit:
        return ExecLimit(static_cast<const plan::LimitNode&>(node));
    }
    return Status::Internal("unknown plan node kind");
  }

  std::vector<engine::JoinStrategy> TakeStrategies() {
    return std::move(strategies_);
  }

 private:
  Result<engine::Relation> ExecScan(const plan::ScanNodeBase& node) {
    obs::OperatorSpan span(profile_, cost_, obs::SpanKind::kScan,
                           node.source.Label());
    span.SetDetail(NodeKindToString(node.source.kind));
    span.SetEstimatedRows(node.estimated_rows);
    span.SetRowsIn(NodeInputRows(node.source, vp_, property_table_,
                                 reverse_property_table_));
    // Equality pushed filters double as paged-scan pruning hints: the
    // scan may skip row groups / partitions whose zone maps or bloom
    // filters exclude the constant, because those rows would be dropped
    // by the very filters applied below.
    ScanHints hints;
    for (const sparql::FilterConstraint& filter : node.pushed_filters) {
      rdf::TermId id = rdf::kNullTermId;
      if (FilterEqualityPruneId(filter, dictionary_, &id)) {
        hints.equals.push_back({filter.variable, id});
      }
    }
    ScanTelemetry telemetry;
    PROST_ASSIGN_OR_RETURN(
        engine::Relation relation,
        ScanNode(node.source, vp_, property_table_, reverse_property_table_,
                 cost_, exec_, &hints, &telemetry));
    if (telemetry.row_groups_total > 0) {
      // The scan ran paged: surface estimate-vs-actual and skips in
      // EXPLAIN ANALYZE.
      span.SetStorage(relation.planner_bytes_raw(),
                      telemetry.row_groups_skipped,
                      telemetry.partitions_skipped);
    }
    // Pushed-down constant filters evaluate right here, inside the scan's
    // span, before anything is joined or shuffled.
    for (const sparql::FilterConstraint& filter : node.pushed_filters) {
      obs::OperatorSpan filter_span(profile_, cost_, obs::SpanKind::kFilter,
                                    "?" + filter.variable);
      filter_span.SetDetail("pushed");
      filter_span.SetRowsIn(relation.TotalRows());
      PROST_ASSIGN_OR_RETURN(relation,
                             filters_.ApplyFilter(relation, filter, cost_));
      filter_span.SetRowsOut(relation.TotalRows());
    }
    span.SetRowsOut(relation.TotalRows());
    PROST_VALIDATE_RELATION(relation);
    return relation;
  }

  Result<engine::Relation> ExecJoin(const plan::HashJoinNode& node) {
    obs::OperatorSpan span(profile_, cost_, obs::SpanKind::kJoin,
                           node.Label());
    span.SetEstimatedRows(node.estimated_rows);
    PROST_ASSIGN_OR_RETURN(engine::Relation left, Exec(*node.children[0]));
    PROST_ASSIGN_OR_RETURN(engine::Relation right, Exec(*node.children[1]));
    span.SetRowsIn(left.TotalRows() + right.TotalRows());
    engine::JoinOptions options = join_options_;
    options.planned_strategy = node.strategy;
    PROST_ASSIGN_OR_RETURN(
        engine::JoinResult joined,
        engine::HashJoin(left, right, options, cost_, exec_));
    span.SetDetail(joined.strategy == engine::JoinStrategy::kBroadcast
                       ? "broadcast"
                       : "shuffle");
    span.SetRowsOut(joined.relation.TotalRows());
    strategies_.push_back(joined.strategy);
    // The join_order pass stamps exact star intermediates with a planner
    // size; carrying it onto the relation lets the join above broadcast
    // this output, and keeps the run-time strategy derivation identical
    // to the one the join_strategy pass took from these plan nodes.
    if (node.planner_bytes != engine::Relation::kUnknownPlannerBytes) {
      joined.relation.set_planner_bytes(node.planner_bytes);
    }
    PROST_VALIDATE_RELATION(joined.relation);
    return std::move(joined.relation);
  }

  Result<engine::Relation> ExecFilter(const plan::FilterNode& node) {
    obs::OperatorSpan span(profile_, cost_, obs::SpanKind::kFilter,
                           node.Label());
    span.SetDetail("FILTER");
    span.SetEstimatedRows(node.estimated_rows);
    PROST_ASSIGN_OR_RETURN(engine::Relation relation, Exec(*node.children[0]));
    span.SetRowsIn(relation.TotalRows());
    PROST_ASSIGN_OR_RETURN(
        relation, filters_.ApplyFilter(relation, node.constraint, cost_));
    span.SetRowsOut(relation.TotalRows());
    return relation;
  }

  Result<engine::Relation> ExecProject(const plan::ProjectNode& node) {
    obs::OperatorSpan span(profile_, cost_, obs::SpanKind::kProject,
                           node.Label());
    if (node.optimizer_inserted) span.SetDetail("prune");
    PROST_ASSIGN_OR_RETURN(engine::Relation relation, Exec(*node.children[0]));
    span.SetRowsIn(relation.TotalRows());
    span.SetRowsOut(relation.TotalRows());
    if (node.optimizer_inserted) {
      // Zero-cost column drop: no charge, planner size flows through.
      relation = engine::PruneColumns(std::move(relation), node.columns);
      return relation;
    }
    PROST_ASSIGN_OR_RETURN(
        relation, engine::Project(relation, node.columns, cost_, exec_));
    return relation;
  }

  Result<engine::Relation> ExecOrderBy(const plan::OrderByNode& node) {
    obs::OperatorSpan span(profile_, cost_, obs::SpanKind::kOrderBy,
                           node.Label());
    PROST_ASSIGN_OR_RETURN(engine::Relation relation, Exec(*node.children[0]));
    span.SetRowsIn(relation.TotalRows());
    span.SetRowsOut(relation.TotalRows());
    return filters_.ApplyOrderBy(std::move(relation), node.keys, cost_);
  }

  Result<engine::Relation> ExecAggregate(const plan::AggregateNode& node) {
    obs::OperatorSpan span(profile_, cost_, obs::SpanKind::kAggregate,
                           node.Label());
    span.SetDetail(node.count.distinct ? "COUNT DISTINCT" : "COUNT");
    PROST_ASSIGN_OR_RETURN(engine::Relation relation, Exec(*node.children[0]));
    span.SetRowsIn(relation.TotalRows());
    PROST_ASSIGN_OR_RETURN(
        relation,
        ApplyCountAggregate(relation, node.count, node.offset, cost_));
    span.SetRowsOut(relation.TotalRows());
    return relation;
  }

  Result<engine::Relation> ExecDistinct(const plan::DistinctNode& node) {
    obs::OperatorSpan span(profile_, cost_, obs::SpanKind::kDistinct,
                           node.Label());
    if (node.order_preserving) span.SetDetail("order-preserving");
    PROST_ASSIGN_OR_RETURN(engine::Relation relation, Exec(*node.children[0]));
    span.SetRowsIn(relation.TotalRows());
    if (node.order_preserving) {
      relation = OrderPreservingDistinct(relation, cost_);
    } else {
      PROST_ASSIGN_OR_RETURN(relation,
                             engine::Distinct(relation, cost_, exec_));
    }
    span.SetRowsOut(relation.TotalRows());
    return relation;
  }

  Result<engine::Relation> ExecLimit(const plan::LimitNode& node) {
    obs::OperatorSpan span(profile_, cost_, obs::SpanKind::kLimit,
                           node.Label());
    PROST_ASSIGN_OR_RETURN(engine::Relation relation, Exec(*node.children[0]));
    span.SetRowsIn(relation.TotalRows());
    relation = ApplyOffset(std::move(relation), node.offset);
    if (node.limit > 0) relation = engine::Limit(relation, node.limit);
    span.SetRowsOut(relation.TotalRows());
    return relation;
  }

  const VpStore& vp_;
  const PropertyTable* property_table_;
  const PropertyTable* reverse_property_table_;
  const engine::JoinOptions& join_options_;
  const rdf::Dictionary& dictionary_;
  FilterEvaluator filters_;
  cluster::CostModel& cost_;
  const engine::ExecContext* exec_;
  obs::QueryProfile* profile_;
  std::vector<engine::JoinStrategy> strategies_;
};

}  // namespace

Result<QueryResult> ExecutePlan(
    const plan::PhysicalPlan& physical, const VpStore& vp,
    const PropertyTable* property_table,
    const PropertyTable* reverse_property_table,
    const engine::JoinOptions& join_options,
    const rdf::Dictionary& dictionary, cluster::CostModel& cost,
    const engine::ExecContext* exec) {
  if (physical.root == nullptr) {
    return Status::InvalidArgument("empty physical plan");
  }
  QueryResult result;
  obs::QueryProfile* profile = engine::ProfileOf(exec);
  // The root span brackets every charge (it opens before the query
  // overhead), so summing exclusive span charges reproduces
  // simulated_millis.
  obs::OperatorSpan query_span(profile, cost, obs::SpanKind::kQuery, "");
  cost.ChargeQueryOverhead();

  // One pipeline stage stays open across scans and broadcast joins;
  // shuffle joins and DISTINCT insert their own stage boundaries (Spark's
  // whole-stage pipelining).
  cost.BeginStage("pipeline");
  PlanInterpreter interpreter(vp, property_table, reverse_property_table,
                              join_options, dictionary, cost, exec);
  Result<engine::Relation> executed = interpreter.Exec(*physical.root);
  if (!executed.ok()) {
    cost.EndStage();
    return executed.status();
  }
  PROST_VALIDATE_RELATION(executed.value());
  cost.EndStage();

  result.relation = std::move(executed).value();
  result.simulated_millis = cost.ElapsedMillis();
  result.counters = cost.counters();
  result.join_strategies = interpreter.TakeStrategies();
  query_span.SetRowsOut(result.relation.TotalRows());
  query_span.Close();
  if (profile != nullptr) {
    profile->Finish(result.simulated_millis, result.counters);
  }
  return result;
}

Result<QueryResult> ExecuteJoinTree(
    const JoinTree& tree, const sparql::Query& query, const VpStore& vp,
    const PropertyTable* property_table,
    const PropertyTable* reverse_property_table,
    const engine::JoinOptions& join_options,
    const rdf::Dictionary& dictionary, cluster::CostModel& cost,
    const engine::ExecContext* exec) {
  if (tree.nodes.empty()) {
    return Status::InvalidArgument("empty join tree");
  }
#if defined(PROST_PARANOID_CHECKS) || !defined(NDEBUG)
  // Structural verification of the plan against its query. ProstDb already
  // ran the full contextual CheckPlan; this guards direct callers (tests,
  // hand-built trees) at zero cost in plain release builds.
  PROST_RETURN_IF_ERROR(analysis::CheckPlanStructure(tree, query));
#endif
  plan::PlannerInputs inputs;
  inputs.vp = &vp;
  inputs.property_table = property_table;
  inputs.reverse_property_table = reverse_property_table;
  PROST_ASSIGN_OR_RETURN(plan::PhysicalPlan physical,
                         plan::BuildPlan(tree, query, inputs));
#if defined(PROST_PARANOID_CHECKS) || !defined(NDEBUG)
  PROST_RETURN_IF_ERROR(analysis::CheckPhysicalPlan(physical, query));
#endif
  return ExecutePlan(physical, vp, property_table, reverse_property_table,
                     join_options, dictionary, cost, exec);
}

}  // namespace prost::core
