#include "core/executor.h"

#include "analysis/plan_checker.h"
#include "core/modifiers.h"
#include "obs/trace.h"

// Paranoid self-checks at operator boundaries: always on in debug builds,
// and in release builds when the tree is compiled with sanitizers
// (PROST_PARANOID_CHECKS comes from the PROST_ASAN/PROST_UBSAN options).
#if defined(PROST_PARANOID_CHECKS) || !defined(NDEBUG)
#define PROST_VALIDATE_RELATION(relation) \
  PROST_RETURN_IF_ERROR((relation).Validate())
#else
#define PROST_VALIDATE_RELATION(relation) \
  do {                                    \
  } while (false)
#endif

namespace prost::core {
namespace {

Result<engine::Relation> ScanNode(const JoinTreeNode& node, const VpStore& vp,
                                  const PropertyTable* property_table,
                                  const PropertyTable* reverse_property_table,
                                  cluster::CostModel& cost,
                                  const engine::ExecContext* exec) {
  switch (node.kind) {
    case NodeKind::kVerticalPartitioning:
      return vp.Scan(node.patterns[0].predicate, node.patterns[0].subject,
                     node.patterns[0].object, cost, exec);
    case NodeKind::kPropertyTable: {
      if (property_table == nullptr) {
        return Status::Internal("join tree has a PT node but no PT");
      }
      std::vector<PropertyTable::ColumnPattern> patterns;
      patterns.reserve(node.patterns.size());
      for (const NodePattern& p : node.patterns) {
        patterns.push_back({p.predicate, p.object});
      }
      return property_table->Scan(node.patterns[0].subject, patterns, cost,
                                  exec);
    }
    case NodeKind::kReversePropertyTable: {
      if (reverse_property_table == nullptr) {
        return Status::Internal("join tree has an RPT node but no RPT");
      }
      std::vector<PropertyTable::ColumnPattern> patterns;
      patterns.reserve(node.patterns.size());
      for (const NodePattern& p : node.patterns) {
        patterns.push_back({p.predicate, p.subject});
      }
      return reverse_property_table->Scan(node.patterns[0].object, patterns,
                                          cost, exec);
    }
  }
  return Status::Internal("unknown node kind");
}

/// Input row count of a join-tree leaf: the stored table it scans.
uint64_t NodeInputRows(const JoinTreeNode& node, const VpStore& vp,
                       const PropertyTable* property_table,
                       const PropertyTable* reverse_property_table) {
  switch (node.kind) {
    case NodeKind::kVerticalPartitioning: {
      const VpStore::PredicateTable* table =
          vp.Find(node.patterns[0].predicate);
      return table != nullptr ? table->total_rows : 0;
    }
    case NodeKind::kPropertyTable:
      return property_table != nullptr ? property_table->num_rows() : 0;
    case NodeKind::kReversePropertyTable:
      return reverse_property_table != nullptr
                 ? reverse_property_table->num_rows()
                 : 0;
  }
  return 0;
}

}  // namespace

Result<QueryResult> ExecuteJoinTree(
    const JoinTree& tree, const sparql::Query& query, const VpStore& vp,
    const PropertyTable* property_table,
    const PropertyTable* reverse_property_table,
    const engine::JoinOptions& join_options,
    const rdf::Dictionary& dictionary, cluster::CostModel& cost,
    const engine::ExecContext* exec) {
  if (tree.nodes.empty()) {
    return Status::InvalidArgument("empty join tree");
  }
#if defined(PROST_PARANOID_CHECKS) || !defined(NDEBUG)
  // Structural verification of the plan against its query. ProstDb already
  // ran the full contextual CheckPlan; this guards direct callers (tests,
  // hand-built trees) at zero cost in plain release builds.
  PROST_RETURN_IF_ERROR(analysis::CheckPlanStructure(tree, query));
#endif
  QueryResult result;
  obs::QueryProfile* profile = engine::ProfileOf(exec);
  // The root span brackets every charge (it opens before the query
  // overhead), so summing exclusive span charges reproduces
  // simulated_millis.
  obs::OperatorSpan query_span(profile, cost, obs::SpanKind::kQuery, "");
  cost.ChargeQueryOverhead();

  // One pipeline stage stays open across scans and broadcast joins;
  // shuffle joins and DISTINCT insert their own stage boundaries (Spark's
  // whole-stage pipelining).
  cost.BeginStage("pipeline");
  engine::Relation accumulated;
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    const JoinTreeNode& node = tree.nodes[i];
    Result<engine::Relation> scanned = [&] {
      obs::OperatorSpan scan_span(profile, cost, obs::SpanKind::kScan,
                                  node.Label());
      scan_span.SetDetail(NodeKindToString(node.kind));
      scan_span.SetEstimatedRows(node.estimated_cardinality);
      scan_span.SetRowsIn(NodeInputRows(node, vp, property_table,
                                        reverse_property_table));
      Result<engine::Relation> r = ScanNode(
          node, vp, property_table, reverse_property_table, cost, exec);
      if (r.ok()) scan_span.SetRowsOut(r->TotalRows());
      return r;
    }();
    if (!scanned.ok()) {
      cost.EndStage();
      return scanned.status();
    }
    PROST_VALIDATE_RELATION(scanned.value());
    if (i == 0) {
      accumulated = std::move(scanned).value();
      continue;
    }
    obs::OperatorSpan join_span(profile, cost, obs::SpanKind::kJoin,
                                node.Label());
    join_span.SetRowsIn(accumulated.TotalRows() + scanned->TotalRows());
    PROST_ASSIGN_OR_RETURN(
        engine::JoinResult joined,
        engine::HashJoin(accumulated, scanned.value(), join_options, cost,
                         exec));
    join_span.SetDetail(joined.strategy == engine::JoinStrategy::kBroadcast
                            ? "broadcast"
                            : "shuffle");
    join_span.SetRowsOut(joined.relation.TotalRows());
    result.join_strategies.push_back(joined.strategy);
    accumulated = std::move(joined.relation);
    PROST_VALIDATE_RELATION(accumulated);
  }

  // FILTERs and solution modifiers, pipelined into the open stage
  // (DISTINCT inserts its own boundary inside the operator).
  PROST_ASSIGN_OR_RETURN(
      accumulated, ApplyFiltersAndModifiers(std::move(accumulated), query,
                                            dictionary, cost, exec));
  PROST_VALIDATE_RELATION(accumulated);
  cost.EndStage();

  result.relation = std::move(accumulated);
  result.simulated_millis = cost.ElapsedMillis();
  result.counters = cost.counters();
  query_span.SetRowsOut(result.relation.TotalRows());
  query_span.Close();
  if (profile != nullptr) {
    profile->Finish(result.simulated_millis, result.counters);
  }
  return result;
}

}  // namespace prost::core
