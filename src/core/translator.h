#ifndef PROST_CORE_TRANSLATOR_H_
#define PROST_CORE_TRANSLATOR_H_

#include "common/status.h"
#include "core/join_tree.h"
#include "core/statistics.h"
#include "rdf/dictionary.h"
#include "sparql/algebra.h"

namespace prost::core {

/// Knobs of the SPARQL → Join Tree translation. The ablation switches
/// (A1 here, A2/A3 in engine/operators.h, pass toggles in plan/passes.h)
/// are enumerated once, in the DESIGN.md §4 ablation matrix.
struct TranslatorOptions {
  /// When false, every triple pattern becomes a VP node — the paper's
  /// "Vertical Partitioning only" configuration of Figure 2.
  bool use_property_table = true;

  /// §5 future work: also group leftover same-object patterns into
  /// reverse (object-keyed) Property Table nodes.
  bool use_reverse_property_table = false;

  /// When false, nodes keep query order instead of the §3.3
  /// statistics-based priority order (the A1 ablation).
  bool enable_stats_ordering = true;

  /// Minimum same-subject group size that becomes a PT node. The paper
  /// uses 2 ("all the other groups with a single triple pattern are
  /// translated to nodes that will use the vertical partitioning tables").
  size_t min_group_size = 2;
};

/// Translates a validated query into a Join Tree (§3.2):
///   1. group triple patterns sharing a subject; groups of
///      `min_group_size`+ become Property Table nodes, the rest VP nodes
///      (optionally, leftover same-object groups become reverse-PT nodes);
///   2. estimate each node's cardinality from the dataset statistics
///      (§3.3: literals weigh heavily; tuple counts adjusted by distinct
///      subjects);
///   3. order nodes by ascending cardinality under the constraint that
///      each node shares a variable with the part of the tree already
///      planned (no cross products); the largest node ends up the root.
Result<JoinTree> Translate(const sparql::Query& query,
                           const DatasetStatistics& stats,
                           const rdf::Dictionary& dictionary,
                           const TranslatorOptions& options);

}  // namespace prost::core

#endif  // PROST_CORE_TRANSLATOR_H_
