#ifndef PROST_CORE_MODIFIERS_H_
#define PROST_CORE_MODIFIERS_H_

#include "cluster/cost_model.h"
#include "common/status.h"
#include "engine/exec_context.h"
#include "engine/relation.h"
#include "rdf/dictionary.h"
#include "sparql/algebra.h"

namespace prost::core {

/// Applies a query's FILTER constraints and solution modifiers to a
/// relation of bound variables, in SPARQL evaluation order:
///
///   FILTER → projection → DISTINCT → ORDER BY → OFFSET → LIMIT
///
/// Shared by PRoST and all baselines so the four systems implement the
/// modifier semantics once. Comparison semantics follow SPARQL's operator
/// mapping pragmatically: numeric when both sides are numeric literals
/// (xsd integer/decimal/double/float), term equality for `=`/`!=`
/// otherwise, and lexical-form ordering for `<`/`<=`/`>`/`>=` on
/// non-numeric terms.
///
/// ORDER BY materializes the result on the driver (like Spark's collect)
/// into chunk 0, preserving row order for consumers.
///
/// `exec` (nullable) parallelizes the projection only. FILTER evaluation
/// shares a memoizing dictionary cache (not thread-safe), the sort is
/// already a driver-side stable_sort, and DISTINCT/OFFSET/LIMIT are
/// order-sensitive slices — those stay serial by design.
Result<engine::Relation> ApplyFiltersAndModifiers(
    engine::Relation relation, const sparql::Query& query,
    const rdf::Dictionary& dictionary, cluster::CostModel& cost,
    const engine::ExecContext* exec = nullptr);

}  // namespace prost::core

#endif  // PROST_CORE_MODIFIERS_H_
