#ifndef PROST_CORE_MODIFIERS_H_
#define PROST_CORE_MODIFIERS_H_

#include <memory>
#include <vector>

#include "cluster/cost_model.h"
#include "common/status.h"
#include "engine/exec_context.h"
#include "engine/relation.h"
#include "rdf/dictionary.h"
#include "sparql/algebra.h"

namespace prost::core {

/// Row-level FILTER and ORDER BY evaluation with SPARQL comparison
/// semantics. Comparison follows SPARQL's operator mapping
/// pragmatically: numeric when both sides are numeric literals
/// (xsd integer/decimal/double/float), term equality for `=`/`!=`
/// otherwise, and lexical-form ordering for `<`/`<=`/`>`/`>=` on
/// non-numeric terms.
///
/// One evaluator holds one memoizing id → comparison-key cache over the
/// shared dictionary, reused across every filter and sort key of a
/// query. Not thread-safe; emits no spans of its own (callers wrap each
/// call in the span naming their plan node).
class FilterEvaluator {
 public:
  explicit FilterEvaluator(const rdf::Dictionary& dictionary);
  ~FilterEvaluator();
  FilterEvaluator(const FilterEvaluator&) = delete;
  FilterEvaluator& operator=(const FilterEvaluator&) = delete;

  /// Applies one FILTER constraint row by row. Preserves hash
  /// partitioning and the planner size (Spark 2.1 static planning:
  /// filters do not discount sizeInBytes), so a filter pushed below a
  /// join never flips the join strategy the planner resolved.
  Result<engine::Relation> ApplyFilter(const engine::Relation& input,
                                       const sparql::FilterConstraint& filter,
                                       cluster::CostModel& cost);

  /// Driver-side stable ORDER BY (like Spark's collect for ordered
  /// results), materializing the sorted rows into chunk 0.
  Result<engine::Relation> ApplyOrderBy(
      engine::Relation relation, const std::vector<sparql::OrderKey>& keys,
      cluster::CostModel& cost);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// True when `filter` pins its variable to exactly one stored term id —
/// i.e. it is `?var = <non-numeric constant>` — making it usable as a
/// paged-scan pruning hint (core::ScanEqualityHint). `*id` receives the
/// constant's dictionary id, or rdf::kNullTermId when the constant is
/// not interned (then no stored row can satisfy the filter at all).
///
/// Numeric-literal constants never qualify: SPARQL numeric equality is
/// value-based ("1"^^xsd:integer equals "01"^^xsd:integer under a
/// different id), so rows with other ids could still pass the filter.
bool FilterEqualityPruneId(const sparql::FilterConstraint& filter,
                           const rdf::Dictionary& dictionary,
                           rdf::TermId* id);

/// Collapses the solutions to one COUNT / COUNT DISTINCT row carrying a
/// virtual integer id. A non-zero OFFSET slices the single row away, so
/// it folds in here and the plan needs no node after the aggregate.
Result<engine::Relation> ApplyCountAggregate(
    const engine::Relation& relation, const sparql::CountAggregate& count,
    uint64_t offset, cluster::CostModel& cost);

/// Order-preserving DISTINCT on the driver (the engine's distributed
/// DISTINCT would destroy an ORDER BY's ordering); result in chunk 0.
engine::Relation OrderPreservingDistinct(const engine::Relation& relation,
                                         cluster::CostModel& cost);

/// Drops the first `offset` rows in collection order. A free slice: no
/// simulated charge, like engine::Limit.
engine::Relation ApplyOffset(engine::Relation relation, uint64_t offset);

/// Applies a query's FILTER constraints and solution modifiers to a
/// relation of bound variables, in SPARQL evaluation order:
///
///   FILTER → projection → DISTINCT → ORDER BY → OFFSET → LIMIT
///
/// The baseline systems' modifier tail. PRoST itself executes these
/// steps as plan nodes (see plan/planner.h) through the same helpers
/// above, so all systems implement the modifier semantics once.
///
/// ORDER BY materializes the result on the driver (like Spark's collect)
/// into chunk 0, preserving row order for consumers.
///
/// `exec` (nullable) parallelizes the projection only. FILTER evaluation
/// shares a memoizing dictionary cache (not thread-safe), the sort is
/// already a driver-side stable_sort, and DISTINCT/OFFSET/LIMIT are
/// order-sensitive slices — those stay serial by design.
Result<engine::Relation> ApplyFiltersAndModifiers(
    engine::Relation relation, const sparql::Query& query,
    const rdf::Dictionary& dictionary, cluster::CostModel& cost,
    const engine::ExecContext* exec = nullptr);

}  // namespace prost::core

#endif  // PROST_CORE_MODIFIERS_H_
