#ifndef PROST_CORE_PROPERTY_TABLE_H_
#define PROST_CORE_PROPERTY_TABLE_H_

#include <map>
#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "columnar/buffer_pool.h"
#include "columnar/paged_table.h"
#include "columnar/table.h"
#include "common/status.h"
#include "core/pattern_term.h"
#include "core/scan_support.h"
#include "core/statistics.h"
#include "engine/exec_context.h"
#include "engine/relation.h"
#include "rdf/graph.h"

namespace prost::core {

/// The Property Table (§3.1): one wide table with a row per distinct
/// subject and a column per predicate. Cells without a value are NULL
/// (collapsed on disk by run-length encoding); predicates that are
/// multi-valued anywhere in the dataset become list columns, which the
/// scan flattens exactly like Spark's explode.
///
/// Rows are hash-partitioned on the subject so each subject's row lives
/// entirely on one worker — the co-location that lets a same-subject
/// pattern group run as a single select with zero joins.
///
/// `keyed_on_object = true` builds the future-work variant from §5: rows
/// keyed by *object*, beneficial for same-object pattern groups.
class PropertyTable {
 public:
  /// One pattern evaluated inside this table: a predicate column and the
  /// pattern's object (or, for the reverse table, subject) position.
  struct ColumnPattern {
    rdf::TermId predicate = rdf::kNullTermId;
    PatternTerm value;  // Object position (subject for reverse tables).
  };

  PropertyTable() = default;
  PropertyTable(const PropertyTable&) = delete;
  PropertyTable& operator=(const PropertyTable&) = delete;
  PropertyTable(PropertyTable&&) = default;
  PropertyTable& operator=(PropertyTable&&) = default;

  static PropertyTable Build(const rdf::EncodedGraph& graph,
                             const DatasetStatistics& stats,
                             uint32_t num_workers,
                             bool keyed_on_object = false);

  /// Reassembles a table from persisted partitions (column 0 is the key;
  /// the remaining field names are predicate lexical forms, resolved
  /// against `dictionary`). All partitions must share one schema.
  static Result<PropertyTable> Assemble(
      std::vector<columnar::StoredTable> partitions,
      const rdf::Dictionary& dictionary, bool keyed_on_object);

  /// True when `predicate` has a column in this table.
  bool HasPredicate(rdf::TermId predicate) const {
    return column_of_predicate_.count(predicate) > 0;
  }

  /// Evaluates a same-key pattern group. `key` is the shared subject
  /// (object for reverse tables); each ColumnPattern contributes one
  /// bound column. Variables repeated across patterns (including the key
  /// variable) are joined within the row. Charges only the touched
  /// columns' bytes to `cost` — the columnar pruning that makes the PT
  /// cheap to scan despite its width. A parallel `exec` scans partitions
  /// concurrently (each writes its own output chunk, so output is
  /// bit-identical to serial); cost charges stay on the calling thread.
  /// When the table is paged (EnablePaging), row groups are skipped
  /// before decode whenever (a) a zone map excludes a constant or an
  /// equality-`hint` id for the column its variable binds, or (b) any
  /// touched predicate column is all-NULL in the group (every row of the
  /// group would lose that pattern anyway); the key bloom filter skips
  /// whole partitions on constant-key lookups. Results are bit-identical
  /// to the in-memory path; skips lower the scan's cost charges and are
  /// reported through `telemetry` when given.
  Result<engine::Relation> Scan(const PatternTerm& key,
                                const std::vector<ColumnPattern>& patterns,
                                cluster::CostModel& cost,
                                const engine::ExecContext* exec = nullptr,
                                const ScanHints* hints = nullptr,
                                ScanTelemetry* telemetry = nullptr) const;

  /// The planner-visible size of a Scan over `patterns` — exactly the
  /// `Relation::PlannerBytes` the scan output will carry: the key column
  /// plus each touched predicate column, once, per partition. Patterns
  /// whose predicate has no column (or whose constant cannot exist) touch
  /// nothing, matching the Scan charging rules.
  uint64_t ScanPlannerBytes(const std::vector<ColumnPattern>& patterns) const;

  /// Switches to paged row-group execution: partitions are repacked
  /// into PagedTables, decoded columns are released, and scans decode
  /// chunks through `pool` pins. Call once, after construction; `pool`
  /// must outlive the table.
  void EnablePaging(columnar::BufferPool* pool, uint32_t row_group_rows = 0);

  bool paged_mode() const { return !paged_.empty(); }

  uint32_t num_workers() const { return num_workers_; }
  uint64_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return column_of_predicate_.size() + 1; }
  bool keyed_on_object() const { return keyed_on_object_; }

  /// Sum of serialized-size estimates over all partitions.
  uint64_t TotalBytesEstimate() const;

  /// Persists partitions as lexical files under `dir`
  /// (pt_p<worker>.tbl / ptrev_p<worker>.tbl).
  Status WriteTo(const std::string& dir,
                 const rdf::Dictionary& dictionary) const;

 private:
  uint32_t num_workers_ = 0;
  uint64_t num_rows_ = 0;
  bool keyed_on_object_ = false;
  /// Rows in partition `w` (representation-independent).
  size_t PartitionRows(uint32_t w) const {
    return paged_mode() ? paged_[w].num_rows() : partitions_[w].num_rows();
  }
  /// The shared partition schema (representation-independent).
  const columnar::Schema& PartitionSchema() const {
    return paged_mode() ? paged_[0].schema() : partitions_[0].schema();
  }

  /// partitions_[w]: column 0 is the key ("s"), then predicate columns.
  /// Emptied to schema-shaped husks once EnablePaging ran.
  std::vector<columnar::StoredTable> partitions_;
  /// Paged (encoded row-group) form; non-empty once EnablePaging ran.
  std::vector<columnar::PagedTable> paged_;
  columnar::BufferPool* pool_ = nullptr;  // Non-owning; set by EnablePaging.
  /// Per-partition, per-column serialized-byte estimates (scan charges).
  std::vector<std::vector<uint64_t>> column_bytes_;
  std::map<rdf::TermId, size_t> column_of_predicate_;
};

}  // namespace prost::core

#endif  // PROST_CORE_PROPERTY_TABLE_H_
