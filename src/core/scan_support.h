#ifndef PROST_CORE_SCAN_SUPPORT_H_
#define PROST_CORE_SCAN_SUPPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/triple.h"

namespace prost::core {

/// One pushed-filter fact a paged scan may prune with: rows where
/// `variable` binds to anything but `id` will be removed by the scan
/// node's own pushed filters, so row groups whose zone maps exclude `id`
/// (and partitions whose bloom filters exclude it, for key columns) can
/// be skipped without changing the query result. `id == kNullTermId`
/// means the filter constant is not in the dictionary — no stored row
/// can survive, so everything is skippable.
///
/// Only derived from equality filters against non-numeric constants:
/// numeric SPARQL equality is value-based ("1"^^xsd:integer equals
/// "01"^^xsd:integer under a different id), so those never become hints.
struct ScanEqualityHint {
  std::string variable;
  rdf::TermId id = rdf::kNullTermId;
};

struct ScanHints {
  std::vector<ScanEqualityHint> equals;
};

/// What a paged scan did, for EXPLAIN ANALYZE and the smoke guards.
/// Stays zero on the in-memory path (telemetry doubles as the "was this
/// scan paged" signal).
struct ScanTelemetry {
  uint64_t row_groups_total = 0;
  uint64_t row_groups_skipped = 0;
  uint64_t partitions_skipped = 0;
  /// Scan bytes actually charged (lexical cost domain — comparable to
  /// the planner's estimate and to cluster::ExecutionCounters).
  uint64_t bytes_scanned = 0;
};

}  // namespace prost::core

#endif  // PROST_CORE_SCAN_SUPPORT_H_
