#include "core/statistics.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace prost::core {

DatasetStatistics DatasetStatistics::Compute(const rdf::EncodedGraph& graph) {
  DatasetStatistics stats;
  stats.total_triples_ = graph.size();
  stats.per_predicate_ = graph.ComputePredicateStats();
  return stats;
}

DatasetStatistics DatasetStatistics::ComputeWithPairwise(
    const rdf::EncodedGraph& graph) {
  DatasetStatistics stats = Compute(graph);
  stats.has_pairwise_ = true;
  // Group each subject's distinct predicates, then count every pair once
  // per subject. Work is Σ_s deg(s)², fine for the predicate-per-subject
  // degrees of RDF data.
  std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> preds_of_subject;
  for (const rdf::EncodedTriple& t : graph.triples()) {
    auto& preds = preds_of_subject[t.subject];
    if (std::find(preds.begin(), preds.end(), t.predicate) == preds.end()) {
      preds.push_back(t.predicate);
    }
  }
  for (auto& [subject, preds] : preds_of_subject) {
    std::sort(preds.begin(), preds.end());
    for (size_t i = 0; i < preds.size(); ++i) {
      for (size_t j = i + 1; j < preds.size(); ++j) {
        ++stats.subject_overlap_[{preds[i], preds[j]}];
      }
    }
  }
  return stats;
}

uint64_t DatasetStatistics::SubjectOverlap(rdf::TermId p,
                                           rdf::TermId q) const {
  if (p == q) return ForPredicate(p).distinct_subjects;
  if (!has_pairwise_) {
    return std::min(ForPredicate(p).distinct_subjects,
                    ForPredicate(q).distinct_subjects);
  }
  auto it = subject_overlap_.find({std::min(p, q), std::max(p, q)});
  return it == subject_overlap_.end() ? 0 : it->second;
}

DatasetStatistics DatasetStatistics::FromPerPredicate(
    std::map<rdf::TermId, rdf::PredicateStats> per_predicate) {
  DatasetStatistics stats;
  stats.per_predicate_ = std::move(per_predicate);
  for (const auto& [predicate, s] : stats.per_predicate_) {
    stats.total_triples_ += s.triple_count;
  }
  return stats;
}

rdf::PredicateStats DatasetStatistics::ForPredicate(
    rdf::TermId predicate) const {
  auto it = per_predicate_.find(predicate);
  if (it == per_predicate_.end()) return rdf::PredicateStats{};
  return it->second;
}

double DatasetStatistics::EstimatePatternCardinality(
    const sparql::TriplePattern& pattern, rdf::TermId predicate_id) const {
  rdf::PredicateStats predicate_stats = ForPredicate(predicate_id);
  if (predicate_stats.triple_count == 0) return 0.0;
  double cardinality = static_cast<double>(predicate_stats.triple_count);
  if (pattern.HasConstantSubject() && predicate_stats.distinct_subjects > 0) {
    cardinality /= static_cast<double>(predicate_stats.distinct_subjects);
  }
  if (pattern.HasConstantObject() && predicate_stats.distinct_objects > 0) {
    cardinality /= static_cast<double>(predicate_stats.distinct_objects);
  }
  return std::max(cardinality, 1e-3);
}

}  // namespace prost::core
