#ifndef PROST_RDF_NTRIPLES_H_
#define PROST_RDF_NTRIPLES_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdf/triple.h"

namespace prost::rdf {

/// Parses one N-Triples statement line ("S P O .") into a Triple. The line
/// must not contain the trailing newline. Comment lines (starting with
/// '#') and blank lines are the caller's concern (see ParseNTriples).
Result<Triple> ParseNTriplesLine(std::string_view line);

/// Parses a full N-Triples document, invoking `sink` per triple. Blank
/// lines and comment lines are skipped. On malformed input, returns a
/// ParseError citing the 1-based line number.
Status ParseNTriples(std::string_view document,
                     const std::function<void(Triple&&)>& sink);

/// Convenience: parse a document into a vector.
Result<std::vector<Triple>> ParseNTriplesToVector(std::string_view document);

/// Serializes triples as an N-Triples document (one statement per line).
std::string WriteNTriples(const std::vector<Triple>& triples);

}  // namespace prost::rdf

#endif  // PROST_RDF_NTRIPLES_H_
