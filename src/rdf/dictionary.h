#ifndef PROST_RDF_DICTIONARY_H_
#define PROST_RDF_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"
#include "rdf/triple.h"

namespace prost::rdf {

/// Bidirectional mapping between RDF terms (in canonical N-Triples lexical
/// form) and dense 64-bit ids. All four engines in this repository operate
/// on dictionary-encoded data, mirroring what S2RDF / PRoST achieve with
/// string columns + Parquet dictionary pages.
///
/// Ids are assigned in first-seen order starting at 1 (0 is reserved as
/// the null id used by Property Table NULL cells).
class Dictionary {
 public:
  /// Lexical length (bytes) of every term, indexed by id (index 0 unused).
  /// Precomputed once and shared by size estimators.
  std::vector<uint32_t> TermLengths() const;

 public:
  Dictionary() = default;
  // Dictionaries can be large; keep them move-only to avoid accidental
  // deep copies.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Returns the id for `lexical`, interning it if unseen.
  TermId Intern(std::string_view lexical);

  /// Interns the canonical form of `term`.
  TermId InternTerm(const Term& term) { return Intern(term.ToNTriples()); }

  /// Returns the id for `lexical` or kNullTermId if not present.
  TermId Lookup(std::string_view lexical) const;

  /// Returns the lexical form for `id`; error for out-of-range or null id.
  Result<std::string_view> LookupId(TermId id) const;

  /// Like LookupId, for ids the caller *knows* are interned (e.g. ids read
  /// back out of this dictionary's own tables). Aborts with a diagnostic
  /// on an out-of-range id — a programming error, not a runtime condition.
  std::string_view MustLookupId(TermId id) const;

  /// True when `id` denotes an RDF literal: either a virtual integer id or
  /// an interned term whose canonical lexical form starts with '"'.
  /// Out-of-range ids are not literals.
  bool IsLiteralId(TermId id) const;

  /// Decodes `id` back into a structured Term.
  Result<Term> DecodeTerm(TermId id) const;

  /// Number of interned terms.
  size_t size() const { return lexicals_.size(); }

  /// Serialized byte footprint of the dictionary (lexical bytes + index).
  /// Counted into every system's on-disk size for Table 1.
  uint64_t EstimatedBytes() const;

  /// Serialization (for persisted databases).
  void Serialize(std::string* out) const;
  static Result<Dictionary> Deserialize(std::string_view data);

 private:
  // deque keeps element addresses stable so index_ may key on views into
  // the stored strings.
  std::deque<std::string> lexicals_;  // index = id - 1
  std::unordered_map<std::string_view, TermId> index_;
};

}  // namespace prost::rdf

#endif  // PROST_RDF_DICTIONARY_H_
