#ifndef PROST_RDF_TERM_H_
#define PROST_RDF_TERM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace prost::rdf {

/// The three RDF term kinds plus "variable", which appears only in query
/// triple patterns, never in data.
enum class TermKind : uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
  kVariable = 3,
};

const char* TermKindToString(TermKind kind);

/// A single RDF term. IRIs store the IRI without angle brackets; literals
/// store the lexical value plus optional datatype IRI and language tag;
/// blank nodes store the label without the `_:` prefix; variables store
/// the name without the leading `?`.
struct Term {
  TermKind kind = TermKind::kIri;
  std::string value;
  /// Datatype IRI (no angle brackets); empty when absent. Literals only.
  std::string datatype;
  /// Language tag without '@'; empty when absent. Literals only.
  std::string language;

  static Term Iri(std::string iri);
  static Term Literal(std::string value);
  static Term TypedLiteral(std::string value, std::string datatype);
  static Term LangLiteral(std::string value, std::string language);
  static Term Blank(std::string label);
  static Term Variable(std::string name);

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_blank() const { return kind == TermKind::kBlank; }
  bool is_variable() const { return kind == TermKind::kVariable; }
  /// True for IRI / literal / blank — anything bindable in data.
  bool is_concrete() const { return kind != TermKind::kVariable; }

  /// Canonical N-Triples serialization: `<iri>`, `"val"^^<dt>`, `"val"@en`,
  /// `_:label`, or `?name` for variables.
  std::string ToNTriples() const;

  bool operator==(const Term& other) const = default;
  /// Lexicographic over (kind, value, datatype, language); gives data a
  /// stable canonical order for tests and result comparison.
  bool operator<(const Term& other) const;
};

/// Parses one serialized term (as produced by ToNTriples, or any valid
/// N-Triples term). Leading/trailing whitespace is not allowed.
Result<Term> ParseTerm(std::string_view text);

}  // namespace prost::rdf

#endif  // PROST_RDF_TERM_H_
