#include "rdf/term.h"

#include <tuple>

namespace prost::rdf {
namespace {

/// Escapes a literal value per N-Triples rules.
std::string EscapeLiteral(std::string_view value) {
  std::string out;
  out.reserve(value.size() + 2);
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<std::string> UnescapeLiteral(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '\\') {
      out.push_back(raw[i]);
      continue;
    }
    if (i + 1 >= raw.size()) {
      return Status::ParseError("dangling escape in literal");
    }
    char next = raw[++i];
    switch (next) {
      case '"':
        out.push_back('"');
        break;
      case '\\':
        out.push_back('\\');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 't':
        out.push_back('\t');
        break;
      default:
        return Status::ParseError(std::string("unknown escape \\") + next);
    }
  }
  return out;
}

}  // namespace

const char* TermKindToString(TermKind kind) {
  switch (kind) {
    case TermKind::kIri:
      return "iri";
    case TermKind::kLiteral:
      return "literal";
    case TermKind::kBlank:
      return "blank";
    case TermKind::kVariable:
      return "variable";
  }
  return "?";
}

Term Term::Iri(std::string iri) {
  return Term{TermKind::kIri, std::move(iri), {}, {}};
}

Term Term::Literal(std::string value) {
  return Term{TermKind::kLiteral, std::move(value), {}, {}};
}

Term Term::TypedLiteral(std::string value, std::string datatype) {
  return Term{TermKind::kLiteral, std::move(value), std::move(datatype), {}};
}

Term Term::LangLiteral(std::string value, std::string language) {
  return Term{TermKind::kLiteral, std::move(value), {}, std::move(language)};
}

Term Term::Blank(std::string label) {
  return Term{TermKind::kBlank, std::move(label), {}, {}};
}

Term Term::Variable(std::string name) {
  return Term{TermKind::kVariable, std::move(name), {}, {}};
}

std::string Term::ToNTriples() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + value + ">";
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeLiteral(value) + "\"";
      if (!language.empty()) {
        out += "@" + language;
      } else if (!datatype.empty()) {
        out += "^^<" + datatype + ">";
      }
      return out;
    }
    case TermKind::kBlank:
      return "_:" + value;
    case TermKind::kVariable:
      return "?" + value;
  }
  return "";
}

bool Term::operator<(const Term& other) const {
  return std::tie(kind, value, datatype, language) <
         std::tie(other.kind, other.value, other.datatype, other.language);
}

Result<Term> ParseTerm(std::string_view text) {
  if (text.empty()) return Status::ParseError("empty term");
  if (text.front() == '<') {
    if (text.back() != '>' || text.size() < 2) {
      return Status::ParseError("unterminated IRI: " + std::string(text));
    }
    return Term::Iri(std::string(text.substr(1, text.size() - 2)));
  }
  if (text.front() == '?') {
    if (text.size() < 2) return Status::ParseError("empty variable name");
    return Term::Variable(std::string(text.substr(1)));
  }
  if (text.size() >= 2 && text[0] == '_' && text[1] == ':') {
    if (text.size() < 3) return Status::ParseError("empty blank node label");
    return Term::Blank(std::string(text.substr(2)));
  }
  if (text.front() == '"') {
    // Find the closing quote, skipping escaped characters.
    size_t end = std::string_view::npos;
    for (size_t i = 1; i < text.size(); ++i) {
      if (text[i] == '\\') {
        ++i;
        continue;
      }
      if (text[i] == '"') {
        end = i;
        break;
      }
    }
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated literal: " + std::string(text));
    }
    PROST_ASSIGN_OR_RETURN(std::string value,
                           UnescapeLiteral(text.substr(1, end - 1)));
    std::string_view rest = text.substr(end + 1);
    if (rest.empty()) return Term::Literal(std::move(value));
    if (rest.front() == '@') {
      if (rest.size() < 2) return Status::ParseError("empty language tag");
      return Term::LangLiteral(std::move(value), std::string(rest.substr(1)));
    }
    if (rest.size() >= 4 && rest.substr(0, 3) == "^^<" && rest.back() == '>') {
      return Term::TypedLiteral(std::move(value),
                                std::string(rest.substr(3, rest.size() - 4)));
    }
    return Status::ParseError("malformed literal suffix: " +
                              std::string(text));
  }
  return Status::ParseError("unrecognized term: " + std::string(text));
}

}  // namespace prost::rdf
