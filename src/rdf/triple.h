#ifndef PROST_RDF_TRIPLE_H_
#define PROST_RDF_TRIPLE_H_

#include <cstdint>
#include <string>
#include <tuple>

#include "rdf/term.h"

namespace prost::rdf {

/// Dictionary-encoded term identifier. Id 0 is reserved as "invalid /
/// null"; valid ids start at 1.
using TermId = uint64_t;
inline constexpr TermId kNullTermId = 0;

/// Aggregate results (COUNT) are integers that need not exist in the
/// dictionary. They are carried as "virtual" term ids with the top bit
/// set; consumers decode them without a dictionary lookup. Dictionary ids
/// never reach this range (they are dense from 1).
inline constexpr TermId kVirtualIntegerBit = 1ull << 63;

inline TermId VirtualIntegerId(uint64_t value) {
  return kVirtualIntegerBit | value;
}
inline bool IsVirtualIntegerId(TermId id) {
  return (id & kVirtualIntegerBit) != 0;
}
inline uint64_t VirtualIntegerValue(TermId id) {
  return id & ~kVirtualIntegerBit;
}

/// An RDF triple over concrete (lexical) terms.
struct Triple {
  Term subject;
  Term predicate;
  Term object;

  bool operator==(const Triple& other) const = default;
  bool operator<(const Triple& other) const {
    return std::tie(subject, predicate, object) <
           std::tie(other.subject, other.predicate, other.object);
  }

  /// One N-Triples line, including the trailing " ." (no newline).
  std::string ToNTriples() const;
};

/// A dictionary-encoded triple; the representation every storage backend
/// and the execution engine operate on.
struct EncodedTriple {
  TermId subject = kNullTermId;
  TermId predicate = kNullTermId;
  TermId object = kNullTermId;

  bool operator==(const EncodedTriple& other) const = default;
  bool operator<(const EncodedTriple& other) const {
    return std::tie(subject, predicate, object) <
           std::tie(other.subject, other.predicate, other.object);
  }
};

}  // namespace prost::rdf

#endif  // PROST_RDF_TRIPLE_H_
