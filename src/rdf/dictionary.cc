#include "rdf/dictionary.h"

#include "common/io.h"

namespace prost::rdf {

TermId Dictionary::Intern(std::string_view lexical) {
  auto it = index_.find(lexical);
  if (it != index_.end()) return it->second;
  lexicals_.emplace_back(lexical);
  TermId id = static_cast<TermId>(lexicals_.size());
  index_.emplace(std::string_view(lexicals_.back()), id);
  return id;
}

TermId Dictionary::Lookup(std::string_view lexical) const {
  auto it = index_.find(lexical);
  return it == index_.end() ? kNullTermId : it->second;
}

Result<std::string_view> Dictionary::LookupId(TermId id) const {
  if (id == kNullTermId || id > lexicals_.size()) {
    return Status::NotFound("term id out of range: " + std::to_string(id));
  }
  return std::string_view(lexicals_[id - 1]);
}

std::string_view Dictionary::MustLookupId(TermId id) const {
  if (id == kNullTermId || id > lexicals_.size()) {
    internal_status::AbortWithMessage(
        "Dictionary::MustLookupId on unknown term id " + std::to_string(id));
  }
  return std::string_view(lexicals_[id - 1]);
}

bool Dictionary::IsLiteralId(TermId id) const {
  if (IsVirtualIntegerId(id)) return true;
  if (id == kNullTermId || id > lexicals_.size()) return false;
  const std::string& lexical = lexicals_[id - 1];
  return !lexical.empty() && lexical[0] == '"';
}

Result<Term> Dictionary::DecodeTerm(TermId id) const {
  PROST_ASSIGN_OR_RETURN(std::string_view lexical, LookupId(id));
  return ParseTerm(lexical);
}

std::vector<uint32_t> Dictionary::TermLengths() const {
  std::vector<uint32_t> lengths(lexicals_.size() + 1, 0);
  for (size_t i = 0; i < lexicals_.size(); ++i) {
    lengths[i + 1] = static_cast<uint32_t>(lexicals_[i].size());
  }
  return lengths;
}

uint64_t Dictionary::EstimatedBytes() const {
  uint64_t bytes = 0;
  for (const auto& lexical : lexicals_) {
    // Lexical payload + varint length + 8-byte index entry.
    bytes += lexical.size() + 2 + 8;
  }
  return bytes;
}

void Dictionary::Serialize(std::string* out) const {
  ByteWriter writer;
  writer.PutVarint(lexicals_.size());
  for (const auto& lexical : lexicals_) {
    writer.PutString(lexical);
  }
  *out = std::move(writer.TakeBuffer());
}

Result<Dictionary> Dictionary::Deserialize(std::string_view data) {
  ByteReader reader(data);
  uint64_t count;
  PROST_RETURN_IF_ERROR(reader.GetVarint(&count));
  Dictionary dict;
  std::string lexical;
  for (uint64_t i = 0; i < count; ++i) {
    PROST_RETURN_IF_ERROR(reader.GetString(&lexical));
    dict.Intern(lexical);
  }
  if (dict.size() != count) {
    return Status::Corruption("duplicate entries in serialized dictionary");
  }
  return dict;
}

}  // namespace prost::rdf
