#include "rdf/ntriples.h"

#include "common/str_util.h"

namespace prost::rdf {
namespace {

/// Consumes one term token from `rest`, advancing it past the token and
/// any following whitespace. Handles quoted literals containing spaces.
Result<std::string_view> TakeTermToken(std::string_view& rest) {
  if (rest.empty()) return Status::ParseError("expected term, found end");
  size_t end = 0;
  if (rest.front() == '"') {
    // Scan to the closing quote (skipping escapes), then continue through
    // any @lang / ^^<datatype> suffix until whitespace.
    size_t i = 1;
    bool closed = false;
    for (; i < rest.size(); ++i) {
      if (rest[i] == '\\') {
        ++i;
        continue;
      }
      if (rest[i] == '"') {
        closed = true;
        ++i;
        break;
      }
    }
    if (!closed) return Status::ParseError("unterminated literal");
    while (i < rest.size() && rest[i] != ' ' && rest[i] != '\t') ++i;
    end = i;
  } else {
    while (end < rest.size() && rest[end] != ' ' && rest[end] != '\t') ++end;
  }
  std::string_view token = rest.substr(0, end);
  rest.remove_prefix(end);
  rest = StrTrim(rest);
  return token;
}

}  // namespace

Result<Triple> ParseNTriplesLine(std::string_view line) {
  std::string_view rest = StrTrim(line);
  PROST_ASSIGN_OR_RETURN(std::string_view subject_tok, TakeTermToken(rest));
  PROST_ASSIGN_OR_RETURN(std::string_view predicate_tok, TakeTermToken(rest));
  PROST_ASSIGN_OR_RETURN(std::string_view object_tok, TakeTermToken(rest));
  if (rest != ".") {
    return Status::ParseError("statement must end with '.'");
  }
  PROST_ASSIGN_OR_RETURN(Term subject, ParseTerm(subject_tok));
  PROST_ASSIGN_OR_RETURN(Term predicate, ParseTerm(predicate_tok));
  PROST_ASSIGN_OR_RETURN(Term object, ParseTerm(object_tok));
  if (subject.is_literal() || subject.is_variable()) {
    return Status::ParseError("subject must be an IRI or blank node");
  }
  if (!predicate.is_iri()) {
    return Status::ParseError("predicate must be an IRI");
  }
  if (object.is_variable()) {
    return Status::ParseError("object must be concrete");
  }
  return Triple{std::move(subject), std::move(predicate), std::move(object)};
}

Status ParseNTriples(std::string_view document,
                     const std::function<void(Triple&&)>& sink) {
  size_t line_number = 0;
  size_t start = 0;
  while (start <= document.size()) {
    size_t newline = document.find('\n', start);
    std::string_view line =
        newline == std::string_view::npos
            ? document.substr(start)
            : document.substr(start, newline - start);
    ++line_number;
    std::string_view trimmed = StrTrim(line);
    if (!trimmed.empty() && trimmed.front() != '#') {
      Result<Triple> triple = ParseNTriplesLine(trimmed);
      if (!triple.ok()) {
        return Status::ParseError(StrFormat(
            "line %zu: %s", line_number, triple.status().message().c_str()));
      }
      sink(std::move(triple).value());
    }
    if (newline == std::string_view::npos) break;
    start = newline + 1;
  }
  return Status::OK();
}

Result<std::vector<Triple>> ParseNTriplesToVector(std::string_view document) {
  std::vector<Triple> out;
  PROST_RETURN_IF_ERROR(
      ParseNTriples(document, [&](Triple&& t) { out.push_back(std::move(t)); }));
  return out;
}

std::string WriteNTriples(const std::vector<Triple>& triples) {
  std::string out;
  for (const Triple& triple : triples) {
    out += triple.ToNTriples();
    out.push_back('\n');
  }
  return out;
}

}  // namespace prost::rdf
