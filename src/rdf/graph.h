#ifndef PROST_RDF_GRAPH_H_
#define PROST_RDF_GRAPH_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace prost::rdf {

/// Per-predicate dataset statistics — exactly the two statistics PRoST's
/// optimizer uses (§3.3 of the paper): the number of triples per predicate
/// and the number of distinct subjects per predicate. Distinct objects are
/// also tracked because the S2RDF baseline and the future-work reverse
/// Property Table use them.
struct PredicateStats {
  uint64_t triple_count = 0;
  uint64_t distinct_subjects = 0;
  uint64_t distinct_objects = 0;
  /// Triples whose object is a literal (including virtual integers). With
  /// `triple_count` this classifies the predicate's object domain, the
  /// schema signal the plan checker uses for join-key type agreement
  /// (S2RDF-style: a literal-valued predicate can never join a subject
  /// position).
  uint64_t literal_objects = 0;
  /// Worst-case multiplicities: the most triples any single subject
  /// (resp. object) carries under this predicate. These bound join
  /// fan-out where averages cannot — a skewed predicate (reviews
  /// concentrated on popular products) joins far above the
  /// independence estimate, but never above these caps.
  uint64_t max_subject_fanout = 0;
  uint64_t max_object_fanout = 0;

  /// True when at least one subject has more than one object value — the
  /// multi-valued case that forces list columns in the Property Table.
  bool is_multi_valued() const { return triple_count > distinct_subjects; }

  /// Object-domain classification; meaningless when triple_count == 0.
  bool objects_all_literals() const {
    return triple_count > 0 && literal_objects == triple_count;
  }
  bool objects_all_entities() const {
    return triple_count > 0 && literal_objects == 0;
  }

  bool operator==(const PredicateStats& other) const = default;
};

/// A dictionary-encoded RDF graph: the in-memory interchange format every
/// storage backend loads from.
class EncodedGraph {
 public:
  EncodedGraph() = default;
  EncodedGraph(const EncodedGraph&) = delete;
  EncodedGraph& operator=(const EncodedGraph&) = delete;
  EncodedGraph(EncodedGraph&&) = default;
  EncodedGraph& operator=(EncodedGraph&&) = default;

  /// Encodes and appends one triple.
  void Add(const Triple& triple);

  /// Appends an already-encoded triple (ids must come from dictionary()).
  void AddEncoded(EncodedTriple triple) { triples_.push_back(triple); }

  const std::vector<EncodedTriple>& triples() const { return triples_; }
  const Dictionary& dictionary() const { return dictionary_; }
  Dictionary& mutable_dictionary() { return dictionary_; }

  size_t size() const { return triples_.size(); }

  /// Computes per-predicate statistics in one pass (sorted scan). This is
  /// the loading-phase statistics collection the paper describes as having
  /// "no significant overhead".
  std::map<TermId, PredicateStats> ComputePredicateStats() const;

  /// The distinct predicate ids present, in ascending id order.
  std::vector<TermId> DistinctPredicates() const;

  /// Decodes triple `index` back to lexical form (testing/debug).
  Result<Triple> DecodeTriple(size_t index) const;

  /// Sorts triples by (s,p,o) id and removes duplicates. RDF graphs are
  /// sets; loaders call this once so duplicate statements in the input
  /// cannot inflate stores.
  void SortAndDedupe();

 private:
  Dictionary dictionary_;
  std::vector<EncodedTriple> triples_;
};

/// Parses an N-Triples document straight into an encoded graph.
Result<EncodedGraph> EncodeNTriples(std::string_view document);

/// Encodes a parsed triple vector.
EncodedGraph EncodeTriples(const std::vector<Triple>& triples);

}  // namespace prost::rdf

#endif  // PROST_RDF_GRAPH_H_
