#include "rdf/triple.h"

namespace prost::rdf {

std::string Triple::ToNTriples() const {
  return subject.ToNTriples() + " " + predicate.ToNTriples() + " " +
         object.ToNTriples() + " .";
}

}  // namespace prost::rdf
