#include "rdf/graph.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "rdf/ntriples.h"

namespace prost::rdf {

void EncodedGraph::Add(const Triple& triple) {
  EncodedTriple encoded;
  encoded.subject = dictionary_.InternTerm(triple.subject);
  encoded.predicate = dictionary_.InternTerm(triple.predicate);
  encoded.object = dictionary_.InternTerm(triple.object);
  triples_.push_back(encoded);
}

std::map<TermId, PredicateStats> EncodedGraph::ComputePredicateStats() const {
  // Group triples by predicate, then count distincts per group with local
  // hash sets (bounded by the group size, not the whole graph).
  std::map<TermId, std::vector<const EncodedTriple*>> by_predicate;
  for (const EncodedTriple& t : triples_) {
    by_predicate[t.predicate].push_back(&t);
  }
  std::map<TermId, PredicateStats> stats;
  for (const auto& [predicate, group] : by_predicate) {
    PredicateStats s;
    s.triple_count = group.size();
    std::unordered_map<TermId, uint64_t> subjects;
    std::unordered_map<TermId, uint64_t> objects;
    subjects.reserve(group.size());
    objects.reserve(group.size());
    for (const EncodedTriple* t : group) {
      s.max_subject_fanout = std::max(s.max_subject_fanout, ++subjects[t->subject]);
      s.max_object_fanout = std::max(s.max_object_fanout, ++objects[t->object]);
      if (dictionary_.IsLiteralId(t->object)) ++s.literal_objects;
    }
    s.distinct_subjects = subjects.size();
    s.distinct_objects = objects.size();
    stats.emplace(predicate, s);
  }
  return stats;
}

std::vector<TermId> EncodedGraph::DistinctPredicates() const {
  std::vector<TermId> predicates;
  predicates.reserve(64);
  for (const EncodedTriple& t : triples_) predicates.push_back(t.predicate);
  std::sort(predicates.begin(), predicates.end());
  predicates.erase(std::unique(predicates.begin(), predicates.end()),
                   predicates.end());
  return predicates;
}

void EncodedGraph::SortAndDedupe() {
  std::sort(triples_.begin(), triples_.end());
  triples_.erase(std::unique(triples_.begin(), triples_.end()),
                 triples_.end());
}

Result<Triple> EncodedGraph::DecodeTriple(size_t index) const {
  if (index >= triples_.size()) {
    return Status::OutOfRange("triple index out of range");
  }
  const EncodedTriple& t = triples_[index];
  PROST_ASSIGN_OR_RETURN(Term subject, dictionary_.DecodeTerm(t.subject));
  PROST_ASSIGN_OR_RETURN(Term predicate, dictionary_.DecodeTerm(t.predicate));
  PROST_ASSIGN_OR_RETURN(Term object, dictionary_.DecodeTerm(t.object));
  return Triple{std::move(subject), std::move(predicate), std::move(object)};
}

Result<EncodedGraph> EncodeNTriples(std::string_view document) {
  EncodedGraph graph;
  PROST_RETURN_IF_ERROR(
      ParseNTriples(document, [&](Triple&& t) { graph.Add(t); }));
  return graph;
}

EncodedGraph EncodeTriples(const std::vector<Triple>& triples) {
  EncodedGraph graph;
  for (const Triple& t : triples) graph.Add(t);
  return graph;
}

}  // namespace prost::rdf
