#ifndef PROST_BASELINES_RYA_H_
#define PROST_BASELINES_RYA_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/system.h"
#include "cluster/config.h"
#include "core/statistics.h"
#include "kvstore/kv_store.h"
#include "obs/metrics.h"

namespace prost::baselines {

/// Rya (Punnoose et al.): an RDF store on Apache Accumulo. "Since
/// Accumulo keeps all its information sorted and indexed by key, Rya
/// stores whole RDF triples as keys", replicated in three layouts
/// (SPO / POS / OSP) so every bound-position combination has a fast range
/// scan. Joins are index nested loops driven from the client: brilliant
/// when intermediate results are tiny, and "several orders of magnitude
/// slower" when they are not — there is no distributed hash join to fall
/// back on.
class RyaSystem : public RdfSystem {
 public:
  static Result<std::unique_ptr<RdfSystem>> Load(
      SharedGraph graph, const cluster::ClusterConfig& cluster);

  const std::string& name() const override { return name_; }
  Result<core::QueryResult> Execute(const sparql::Query& query) const override;
  const core::LoadReport& load_report() const override {
    return load_report_;
  }
  Result<uint64_t> PersistTo(const std::string& dir) const override;

  /// Load-side observability: rya.index.entries / rya.index.layouts.
  const obs::MetricsRegistry* metrics() const override { return &metrics_; }

 private:
  /// Index layouts; the byte prefixes every key in the shared store.
  enum class Layout : char { kSpo = 's', kPos = 'p', kOsp = 'o' };

  RyaSystem() = default;

  /// Builds an index key: layout byte + the triple's ids in layout order
  /// (big-endian, so lexicographic order == numeric order).
  static std::string IndexKey(Layout layout, rdf::TermId a, rdf::TermId b,
                              rdf::TermId c);

  std::string name_ = "Rya";
  SharedGraph graph_;
  cluster::ClusterConfig cluster_;  // Accumulo profile (cheap stages).
  core::DatasetStatistics stats_;
  core::LoadReport load_report_;
  kvstore::SortedKvStore store_;
  obs::MetricsRegistry metrics_;
};

}  // namespace prost::baselines

#endif  // PROST_BASELINES_RYA_H_
