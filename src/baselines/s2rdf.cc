#include "baselines/s2rdf.h"

#include "columnar/lexical_format.h"
#include "common/io.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "core/modifiers.h"
#include "core/translator.h"
#include "engine/operators.h"
#include "stats/predicate_index.h"

namespace prost::baselines {

using core::JoinTree;
using core::JoinTreeNode;
using core::QueryResult;
using core::VpStore;
using engine::Relation;

Result<std::unique_ptr<RdfSystem>> S2RdfSystem::Load(
    SharedGraph graph, const cluster::ClusterConfig& cluster) {
  WallTimer timer;
  auto system = std::unique_ptr<S2RdfSystem>(new S2RdfSystem());
  system->graph_ = std::move(graph);
  system->cluster_ = cluster;
  const rdf::EncodedGraph& g = *system->graph_;
  const uint32_t workers = cluster.num_workers;

  system->stats_ = core::DatasetStatistics::Compute(g);
  system->vp_ = VpStore::Build(g, workers);

  // Per predicate: rows plus subject/object membership sets, from the
  // shared statistics layer.
  stats::PredicateIndex index = stats::PredicateIndex::Build(g);

  // ExtVP construction: semi-join every ordered predicate pair in the
  // three correlation directions. This is the O(|P|²) precomputation that
  // dominates S2RDF's loading time in Table 1.
  std::vector<uint32_t> term_lengths = g.dictionary().TermLengths();
  obs::Counter& tables_stored =
      system->metrics_.counter("s2rdf.extvp.tables_stored");
  obs::Counter& rows_stored =
      system->metrics_.counter("s2rdf.extvp.rows_stored");
  obs::Counter& rejected_selectivity =
      system->metrics_.counter("s2rdf.extvp.rejected_selectivity");
  obs::Counter& rejected_empty =
      system->metrics_.counter("s2rdf.extvp.rejected_empty");
  obs::Histogram& selectivity_hist = system->metrics_.histogram(
      "s2rdf.extvp.selectivity", {0.1, 0.25, 0.5, 0.75, 0.95, 1.0});
  uint64_t semi_join_work = 0;
  for (const auto& [p, p_data] : index.entries()) {
    for (const auto& [q, q_data] : index.entries()) {
      if (p == q) continue;
      for (Correlation corr :
           {Correlation::kSS, Correlation::kSO, Correlation::kOS}) {
        const std::unordered_set<rdf::TermId>& probe_set =
            corr == Correlation::kSO ? q_data.objects : q_data.subjects;
        std::vector<std::pair<rdf::TermId, rdf::TermId>> reduced;
        for (const auto& row : p_data.rows) {
          rdf::TermId key = corr == Correlation::kOS ? row.second : row.first;
          if (probe_set.count(key)) reduced.push_back(row);
        }
        semi_join_work += p_data.rows.size() + reduced.size();
        double selectivity = static_cast<double>(reduced.size()) /
                             static_cast<double>(p_data.rows.size());
        selectivity_hist.Observe(selectivity);
        if (reduced.empty()) {
          rejected_empty.Increment();
        } else if (selectivity > kSelectivityThreshold) {
          rejected_selectivity.Increment();
        } else {
          tables_stored.Increment();
          rows_stored.Add(reduced.size());
          system->extvp_.emplace(
              ExtVpKey{corr, p, q},
              VpStore::BuildTable(reduced, workers, term_lengths));
        }
      }
    }
  }

  // Loading simulation: the standard ingest pass plus the semi-join work
  // at the (faster) Spark SQL rate.
  cluster::CostModel cost(cluster);
  uint64_t input_bytes = core::EstimateNTriplesBytes(g);
  cost.BeginStage("load: parse + vertical partitioning");
  for (uint32_t w = 0; w < workers; ++w) {
    cost.ChargeScan(w, input_bytes / workers);
    cost.ChargeLoadRows(w, g.size() / workers);
  }
  cost.ChargeShuffle(input_bytes / 3);
  cost.EndStage();
  cost.BeginStage("load: ExtVP semi-joins");
  for (uint32_t w = 0; w < workers; ++w) {
    cost.ChargeLoadRows(
        w, static_cast<uint64_t>(static_cast<double>(semi_join_work) /
                                 (workers * kExtVpRateFactor)));
  }
  cost.EndStage();

  system->load_report_.input_triples = g.size();
  system->load_report_.input_bytes = input_bytes;
  system->load_report_.simulated_load_millis = cost.ElapsedMillis();
  uint64_t extvp_bytes = 0;
  for (const auto& [key, table] : system->extvp_) {
    for (uint64_t b : table.partition_bytes) extvp_bytes += b;
  }
  system->load_report_.storage_bytes =
      system->vp_.TotalBytesEstimate() + extvp_bytes;
  system->load_report_.real_load_millis = timer.ElapsedMillis();
  return std::unique_ptr<RdfSystem>(std::move(system));
}

const VpStore::PredicateTable* S2RdfSystem::BestTableFor(
    const sparql::Query& query, size_t index, rdf::TermId predicate) const {
  const sparql::TriplePattern& pattern = query.bgp.patterns[index];
  const VpStore::PredicateTable* best = nullptr;
  auto consider = [&](Correlation corr, rdf::TermId q) {
    auto it = extvp_.find(ExtVpKey{corr, predicate, q});
    if (it == extvp_.end()) return;
    if (best == nullptr || it->second.total_rows < best->total_rows) {
      best = &it->second;
    }
  };
  const rdf::Dictionary& dictionary = graph_->dictionary();
  for (size_t j = 0; j < query.bgp.patterns.size(); ++j) {
    if (j == index) continue;
    const sparql::TriplePattern& other = query.bgp.patterns[j];
    rdf::TermId q = dictionary.Lookup(other.predicate.ToNTriples());
    if (q == rdf::kNullTermId) continue;
    if (pattern.subject.is_variable()) {
      if (other.subject.is_variable() &&
          other.subject.value == pattern.subject.value) {
        consider(Correlation::kSS, q);
      }
      if (other.object.is_variable() &&
          other.object.value == pattern.subject.value) {
        consider(Correlation::kSO, q);
      }
    }
    if (pattern.object.is_variable()) {
      if (other.subject.is_variable() &&
          other.subject.value == pattern.object.value) {
        consider(Correlation::kOS, q);
      }
    }
  }
  return best;
}

Result<QueryResult> S2RdfSystem::Execute(const sparql::Query& query) const {
  core::TranslatorOptions options;
  options.use_property_table = false;  // S2RDF is VP/ExtVP only.
  options.enable_stats_ordering = true;
  PROST_ASSIGN_OR_RETURN(
      JoinTree tree,
      core::Translate(query, stats_, graph_->dictionary(), options));

  cluster::CostModel cost(cluster_);
  engine::JoinOptions join_options;  // Full Spark SQL planning.

  QueryResult result;
  cost.ChargeQueryOverhead();
  cost.BeginStage("pipeline");
  Relation accumulated;
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    const JoinTreeNode& node = tree.nodes[i];
    // Map the node back to its source-pattern index for ExtVP selection.
    size_t source_index = 0;
    for (size_t j = 0; j < query.bgp.patterns.size(); ++j) {
      if (query.bgp.patterns[j] == node.patterns[0].source) {
        source_index = j;
        break;
      }
    }
    const VpStore::PredicateTable* table =
        BestTableFor(query, source_index, node.patterns[0].predicate);
    if (table == nullptr) table = vp_.Find(node.patterns[0].predicate);

    PROST_ASSIGN_OR_RETURN(
        Relation scanned,
        VpStore::ScanTable(table, node.patterns[0].subject,
                           node.patterns[0].object, cluster_.num_workers,
                           cost));
    if (i == 0) {
      accumulated = std::move(scanned);
      continue;
    }
    PROST_ASSIGN_OR_RETURN(
        engine::JoinResult joined,
        engine::HashJoin(accumulated, scanned, join_options, cost));
    result.join_strategies.push_back(joined.strategy);
    accumulated = std::move(joined.relation);
  }
  PROST_ASSIGN_OR_RETURN(
      accumulated,
      core::ApplyFiltersAndModifiers(std::move(accumulated), query,
                                     graph_->dictionary(), cost));
  cost.EndStage();
  result.relation = std::move(accumulated);
  result.simulated_millis = cost.ElapsedMillis();
  result.counters = cost.counters();
  return result;
}

Result<uint64_t> S2RdfSystem::PersistTo(const std::string& dir) const {
  PROST_RETURN_IF_ERROR(RemoveAllRecursively(dir));
  PROST_RETURN_IF_ERROR(MakeDirectories(dir));
  PROST_RETURN_IF_ERROR(vp_.WriteTo(dir + "/vp", graph_->dictionary()));
  PROST_RETURN_IF_ERROR(MakeDirectories(dir + "/extvp"));
  for (const auto& [key, table] : extvp_) {
    const auto& [corr, p, q] = key;
    for (uint32_t w = 0; w < cluster_.num_workers; ++w) {
      std::string path = StrFormat(
          "%s/extvp/ev%u_%llu_%llu_p%u.tbl", dir.c_str(),
          static_cast<unsigned>(corr), static_cast<unsigned long long>(p),
          static_cast<unsigned long long>(q), w);
      PROST_RETURN_IF_ERROR(columnar::WriteLexicalTableFile(
          table.partitions[w], graph_->dictionary(), path));
    }
  }
  return DirectorySize(dir);
}

}  // namespace prost::baselines
