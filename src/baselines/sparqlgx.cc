#include "baselines/sparqlgx.h"

#include "common/compression.h"
#include "common/hash.h"
#include "common/io.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "core/modifiers.h"
#include "engine/operators.h"

namespace prost::baselines {

using core::JoinTree;
using core::JoinTreeNode;
using core::QueryResult;
using engine::Relation;

Result<std::unique_ptr<RdfSystem>> SparqlGxSystem::Load(
    SharedGraph graph, const cluster::ClusterConfig& cluster) {
  WallTimer timer;
  auto system = std::unique_ptr<SparqlGxSystem>(new SparqlGxSystem());
  system->graph_ = std::move(graph);
  const rdf::EncodedGraph& g = *system->graph_;
  const uint32_t workers = cluster.num_workers;

  system->stats_ = core::DatasetStatistics::Compute(g);
  system->vp_ = core::VpStore::Build(g, workers);

  // Text sizes of the per-predicate files ("s o" lines), the unit
  // SPARQLGX actually reads from HDFS.
  const rdf::Dictionary& dictionary = g.dictionary();
  std::vector<uint32_t> lengths(dictionary.size() + 1, 0);
  for (rdf::TermId id = 1; id <= dictionary.size(); ++id) {
    lengths[id] = static_cast<uint32_t>(dictionary.MustLookupId(id).size());
  }
  for (const rdf::EncodedTriple& t : g.triples()) {
    auto [it, inserted] = system->text_bytes_.try_emplace(
        t.predicate, std::vector<uint64_t>(workers, 0));
    uint32_t w = static_cast<uint32_t>(Mix64(t.subject) % workers);
    it->second[w] += lengths[t.subject] + lengths[t.object] + 2;
  }

  // Derated RDD execution profile (see class comment).
  system->cluster_ = cluster;
  system->cluster_.cpu_rows_per_sec = cluster.cpu_rows_per_sec * kRowRateFactor;
  system->cluster_.stage_overhead_sec =
      cluster.stage_overhead_sec * kStageOverheadFactor;
  system->cluster_.bytes_per_value = kTextBytesPerValue;

  // Loading: a single parse-and-write pass, like the paper's fastest
  // loader (no dictionary, no second structure).
  cluster::CostModel cost(cluster);
  uint64_t input_bytes = core::EstimateNTriplesBytes(g);
  cost.BeginStage("load: parse + text VP");
  for (uint32_t w = 0; w < workers; ++w) {
    cost.ChargeScan(w, input_bytes / workers);
    cost.ChargeLoadRows(w, g.size() / workers);
  }
  cost.EndStage();
  system->load_report_.input_triples = g.size();
  system->load_report_.input_bytes = input_bytes;
  system->load_report_.simulated_load_millis = cost.ElapsedMillis();
  uint64_t storage = 0;
  for (const auto& [predicate, bytes] : system->text_bytes_) {
    for (uint64_t b : bytes) storage += b;
  }
  system->metrics_.counter("sparqlgx.vp.predicates")
      .Add(system->text_bytes_.size());
  system->metrics_.counter("sparqlgx.vp.text_bytes").Add(storage);
  system->load_report_.storage_bytes = storage;
  system->load_report_.real_load_millis = timer.ElapsedMillis();
  return std::unique_ptr<RdfSystem>(std::move(system));
}

Result<QueryResult> SparqlGxSystem::Execute(
    const sparql::Query& query) const {
  // SPARQLGX compiles the BGP to a chain of RDD joins over VP files,
  // ordered by its own statistics.
  core::TranslatorOptions options;
  options.use_property_table = false;
  options.enable_stats_ordering = true;
  PROST_ASSIGN_OR_RETURN(
      JoinTree tree,
      core::Translate(query, stats_, graph_->dictionary(), options));

  cluster::CostModel cost(cluster_);
  cluster::CostModel scratch(cluster_);  // VP's own charges are replaced.
  engine::JoinOptions join_options;
  join_options.allow_broadcast = false;      // No Catalyst planning.
  join_options.reuse_partitioning = false;   // Plain RDD joins re-shuffle.

  QueryResult result;
  cost.ChargeQueryOverhead();
  cost.BeginStage("rdd pipeline");
  Relation accumulated;
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    const JoinTreeNode& node = tree.nodes[i];
    PROST_ASSIGN_OR_RETURN(
        Relation scanned,
        vp_.Scan(node.patterns[0].predicate, node.patterns[0].subject,
                 node.patterns[0].object, scratch));
    // Replace the columnar charges with the text-file profile: full text
    // scan of the predicate file plus per-line parsing work.
    const core::VpStore::PredicateTable* table =
        vp_.Find(node.patterns[0].predicate);
    auto bytes_it = text_bytes_.find(node.patterns[0].predicate);
    for (uint32_t w = 0; w < cluster_.num_workers; ++w) {
      if (bytes_it != text_bytes_.end()) {
        cost.ChargeScan(w, bytes_it->second[w]);
      }
      uint64_t part_rows =
          table == nullptr ? 0 : table->partitions[w].num_rows();
      cost.ChargeCpuRows(w, part_rows + scanned.chunks()[w].num_rows());
    }
    if (i == 0) {
      accumulated = std::move(scanned);
      continue;
    }
    PROST_ASSIGN_OR_RETURN(
        engine::JoinResult joined,
        engine::HashJoin(accumulated, scanned, join_options, cost));
    result.join_strategies.push_back(joined.strategy);
    accumulated = std::move(joined.relation);
  }
  PROST_ASSIGN_OR_RETURN(
      accumulated,
      core::ApplyFiltersAndModifiers(std::move(accumulated), query,
                                     graph_->dictionary(), cost));
  cost.EndStage();
  result.relation = std::move(accumulated);
  result.simulated_millis = cost.ElapsedMillis();
  result.counters = cost.counters();
  return result;
}

Result<uint64_t> SparqlGxSystem::PersistTo(const std::string& dir) const {
  PROST_RETURN_IF_ERROR(RemoveAllRecursively(dir));
  PROST_RETURN_IF_ERROR(MakeDirectories(dir));
  const rdf::Dictionary& dictionary = graph_->dictionary();
  for (const auto& [predicate, table] : vp_.tables()) {
    for (uint32_t w = 0; w < vp_.num_workers(); ++w) {
      const columnar::StoredTable& part = table.partitions[w];
      std::string text;
      const auto& subjects = part.column(0).ids();
      const auto& objects = part.column(1).ids();
      for (size_t r = 0; r < subjects.size(); ++r) {
        text += std::string(dictionary.MustLookupId(subjects[r]));
        text.push_back('\t');
        text += std::string(dictionary.MustLookupId(objects[r]));
        text.push_back('\n');
      }
      // SPARQLGX keeps its HDFS text files codec-compressed; that is
      // what makes it the smallest database in Table 1.
      PROST_ASSIGN_OR_RETURN(std::string compressed, DeflateCompress(text));
      std::string path = StrFormat(
          "%s/pred_%llu_p%u.txt.deflate", dir.c_str(),
          static_cast<unsigned long long>(predicate), w);
      PROST_RETURN_IF_ERROR(WriteStringToFile(path, compressed));
    }
  }
  return DirectorySize(dir);
}

}  // namespace prost::baselines
