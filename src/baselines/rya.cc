#include "baselines/rya.h"

#include <algorithm>
#include <set>

#include "common/compression.h"
#include "common/hash.h"
#include "common/io.h"
#include "common/str_util.h"
#include "common/timer.h"
#include "core/modifiers.h"
#include "core/translator.h"
#include "engine/relation.h"

namespace prost::baselines {

using core::JoinTree;
using core::JoinTreeNode;
using core::NodePattern;
using core::PatternTerm;
using core::QueryResult;
using engine::Relation;
using engine::Row;
using kvstore::BigEndianKey;
using kvstore::DecodeBigEndianKey;

std::string RyaSystem::IndexKey(Layout layout, rdf::TermId a, rdf::TermId b,
                                rdf::TermId c) {
  std::string key;
  key.reserve(25);
  key.push_back(static_cast<char>(layout));
  key += BigEndianKey(a);
  key += BigEndianKey(b);
  key += BigEndianKey(c);
  return key;
}

Result<std::unique_ptr<RdfSystem>> RyaSystem::Load(
    SharedGraph graph, const cluster::ClusterConfig& cluster) {
  WallTimer timer;
  auto system = std::unique_ptr<RyaSystem>(new RyaSystem());
  system->graph_ = std::move(graph);
  const rdf::EncodedGraph& g = *system->graph_;
  const uint32_t workers = cluster.num_workers;

  system->stats_ = core::DatasetStatistics::Compute(g);

  // Accumulo execution profile: no Spark job scheduling; range scans
  // start in tens of milliseconds. This is why Rya beats everyone on the
  // most selective queries and still loses catastrophically on average.
  system->cluster_ = cluster;
  system->cluster_.stage_overhead_sec = 0.05;
  system->cluster_.query_overhead_sec = 0.02;

  // Three index layouts, bulk-loaded as sorted runs.
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(g.size() * 3);
  for (const rdf::EncodedTriple& t : g.triples()) {
    entries.emplace_back(
        IndexKey(Layout::kSpo, t.subject, t.predicate, t.object), "");
    entries.emplace_back(
        IndexKey(Layout::kPos, t.predicate, t.object, t.subject), "");
    entries.emplace_back(
        IndexKey(Layout::kOsp, t.object, t.subject, t.predicate), "");
  }
  system->store_.BulkLoad(std::move(entries));
  system->metrics_.counter("rya.index.entries")
      .Add(system->store_.num_entries());
  system->metrics_.counter("rya.index.layouts").Add(3);

  // Loading simulation: parse pass + one Accumulo ingest (batch write +
  // sort) per index layout, each ~35% of a full pass.
  cluster::CostModel cost(cluster);
  uint64_t input_bytes = core::EstimateNTriplesBytes(g);
  cost.BeginStage("load: parse");
  for (uint32_t w = 0; w < workers; ++w) {
    cost.ChargeScan(w, input_bytes / workers);
    cost.ChargeLoadRows(w, g.size() / workers);
  }
  cost.EndStage();
  for (int layout = 0; layout < 3; ++layout) {
    cost.BeginStage("load: index ingest");
    for (uint32_t w = 0; w < workers; ++w) {
      cost.ChargeLoadRows(w, g.size() * 35 / 100 / workers);
    }
    cost.EndStage();
  }

  system->load_report_.input_triples = g.size();
  system->load_report_.input_bytes = input_bytes;
  system->load_report_.simulated_load_millis = cost.ElapsedMillis();
  // Accumulo stores whole lexical triples as keys, three times over.
  system->load_report_.storage_bytes = 3 * (input_bytes + 12 * g.size());
  system->load_report_.real_load_millis = timer.ElapsedMillis();
  return std::unique_ptr<RdfSystem>(std::move(system));
}

namespace {

/// A resolved position for one nested-loop step: a concrete id (constant
/// or already-bound variable) or a free variable.
struct Position {
  bool bound = false;
  rdf::TermId id = rdf::kNullTermId;
  int column = -1;  // Output/binding column when variable.
};

}  // namespace

Result<QueryResult> RyaSystem::Execute(const sparql::Query& query) const {
  // Rya reorders joins by selectivity; reuse the translator's VP-only,
  // statistics-ordered plan as the nested-loop order.
  core::TranslatorOptions options;
  options.use_property_table = false;
  options.enable_stats_ordering = true;
  PROST_ASSIGN_OR_RETURN(
      JoinTree tree,
      core::Translate(query, stats_, graph_->dictionary(), options));

  cluster::CostModel cost(cluster_);
  cost.ChargeQueryOverhead();
  cost.BeginStage("rya index nested loop");

  std::vector<std::string> names;
  std::vector<Row> rows;
  bool first = true;
  for (const JoinTreeNode& node : tree.nodes) {
    const NodePattern& p = node.patterns[0];
    if (p.predicate == rdf::kNullTermId || p.subject.IsImpossibleConstant() ||
        p.object.IsImpossibleConstant()) {
      rows.clear();  // Unknown constant: no matches, but keep columns.
    }
    // Column resolution for this step.
    auto resolve = [&](const PatternTerm& term) {
      Position position;
      if (!term.is_variable) {
        position.bound = true;
        position.id = term.id;
        return position;
      }
      auto it = std::find(names.begin(), names.end(), term.name);
      if (it != names.end()) {
        position.bound = true;  // Bound per row; id filled in the loop.
        position.column = static_cast<int>(it - names.begin());
      } else {
        position.column = static_cast<int>(names.size());
        names.push_back(term.name);
        position.bound = false;
      }
      return position;
    };
    const bool same_var = p.subject.is_variable && p.object.is_variable &&
                          p.subject.name == p.object.name;
    Position subject = resolve(p.subject);
    // "?x p ?x": the object aliases the subject column; s == o is
    // enforced in the scan and only the subject position is written.
    Position object = same_var ? subject : resolve(p.object);

    // Probe the best index for each current binding.
    auto scan_one = [&](rdf::TermId s_id, bool s_known, rdf::TermId o_id,
                        bool o_known, const Row& base,
                        std::vector<Row>& out) {
      std::string prefix;
      Layout layout;
      if (s_known) {
        layout = Layout::kSpo;
        prefix.push_back(static_cast<char>(layout));
        prefix += BigEndianKey(s_id);
        prefix += BigEndianKey(p.predicate);
        if (o_known) prefix += BigEndianKey(o_id);
      } else if (o_known) {
        layout = Layout::kPos;
        prefix.push_back(static_cast<char>(layout));
        prefix += BigEndianKey(p.predicate);
        prefix += BigEndianKey(o_id);
      } else {
        layout = Layout::kPos;
        prefix.push_back(static_cast<char>(layout));
        prefix += BigEndianKey(p.predicate);
      }
      kvstore::SortedKvStore::Iterator it = store_.ScanPrefix(prefix);
      // The whole nested loop runs through the client (worker 0): this
      // serialization is Rya's Achilles heel on large intermediates.
      cost.ChargeKvSeek(0, it.size());
      for (; it.Valid(); it.Next()) {
        std::string_view key = it.key();
        rdf::TermId a = DecodeBigEndianKey(key.substr(1, 8));
        rdf::TermId b = DecodeBigEndianKey(key.substr(9, 8));
        rdf::TermId c = DecodeBigEndianKey(key.substr(17, 8));
        rdf::TermId s, o;
        if (layout == Layout::kSpo) {
          s = a;
          o = c;
        } else {  // kPos: p, o, s
          o = b;
          s = c;
        }
        if (same_var && s != o) continue;
        Row row = base;
        row.resize(names.size(), rdf::kNullTermId);
        if (p.subject.is_variable && !s_known && subject.column >= 0) {
          row[static_cast<size_t>(subject.column)] = s;
        }
        if (!same_var && p.object.is_variable && !o_known &&
            object.column >= 0) {
          row[static_cast<size_t>(object.column)] = o;
        }
        out.push_back(std::move(row));
      }
    };

    std::vector<Row> next;
    if (first) {
      // Constants are "known" even when they resolve to the impossible id
      // 0 — the index prefix then simply matches nothing.
      Row empty_base;
      bool s_known = !p.subject.is_variable;
      bool o_known = !p.object.is_variable;
      scan_one(s_known ? subject.id : rdf::kNullTermId, s_known,
               o_known ? object.id : rdf::kNullTermId, o_known, empty_base,
               next);
      first = false;
    } else {
      for (const Row& base : rows) {
        rdf::TermId s_id = rdf::kNullTermId;
        bool s_known = false;
        if (!p.subject.is_variable) {
          s_id = subject.id;
          s_known = true;
        } else if (subject.bound && subject.column >= 0 &&
                   static_cast<size_t>(subject.column) < base.size()) {
          s_id = base[static_cast<size_t>(subject.column)];
          s_known = true;
        }
        rdf::TermId o_id = rdf::kNullTermId;
        bool o_known = false;
        if (!p.object.is_variable) {
          o_id = object.id;
          o_known = true;
        } else if (object.bound && object.column >= 0 &&
                   static_cast<size_t>(object.column) < base.size()) {
          o_id = base[static_cast<size_t>(object.column)];
          o_known = true;
        }
        scan_one(s_id, s_known, o_id, o_known, base, next);
      }
    }
    rows = std::move(next);
  }

  // Client-side FILTERs and solution modifiers (shared semantics),
  // charged into the same single-client stage.
  Relation bound = Relation::FromRows(names, rows, cluster_.num_workers);
  PROST_ASSIGN_OR_RETURN(
      Relation finalized,
      core::ApplyFiltersAndModifiers(std::move(bound), query,
                                     graph_->dictionary(), cost));
  cost.EndStage();

  QueryResult result;
  result.relation = std::move(finalized);
  result.simulated_millis = cost.ElapsedMillis();
  result.counters = cost.counters();
  return result;
}

Result<uint64_t> RyaSystem::PersistTo(const std::string& dir) const {
  PROST_RETURN_IF_ERROR(RemoveAllRecursively(dir));
  PROST_RETURN_IF_ERROR(MakeDirectories(dir));
  // Accumulo RFiles hold lexical triples as keys; persist each layout as
  // its key sequence in index order.
  const rdf::Dictionary& dictionary = graph_->dictionary();
  uint64_t timestamp = 0;
  for (char layout : {'s', 'p', 'o'}) {
    std::string text;
    kvstore::SortedKvStore::Iterator it =
        store_.ScanPrefix(std::string(1, layout));
    for (; it.Valid(); it.Next()) {
      std::string_view key = it.key();
      for (int i = 0; i < 3; ++i) {
        rdf::TermId id = DecodeBigEndianKey(key.substr(1 + 8 * i, 8));
        text += std::string(dictionary.MustLookupId(id));
        text.push_back(i == 2 ? '\n' : '\x00');
      }
      // Accumulo key metadata: every entry carries a distinct ingest
      // timestamp (plus empty column-family/visibility fields).
      ++timestamp;
      text += BigEndianKey(timestamp);
    }
    // Accumulo RFiles are block-compressed (gzip by default).
    PROST_ASSIGN_OR_RETURN(std::string compressed, DeflateCompress(text));
    std::string path = StrFormat("%s/index_%c.rf", dir.c_str(), layout);
    PROST_RETURN_IF_ERROR(WriteStringToFile(path, compressed));
  }
  return DirectorySize(dir);
}

}  // namespace prost::baselines
