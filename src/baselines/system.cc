#include "baselines/system.h"

#include "baselines/rya.h"
#include "baselines/s2rdf.h"
#include "baselines/sparqlgx.h"

namespace prost::baselines {
namespace {

/// Adapts ProstDb (the paper's system) to the comparison interface.
class ProstSystem : public RdfSystem {
 public:
  ProstSystem(std::string name, std::unique_ptr<core::ProstDb> db)
      : name_(std::move(name)), db_(std::move(db)) {}

  const std::string& name() const override { return name_; }
  Result<core::QueryResult> Execute(
      const sparql::Query& query) const override {
    return db_->Execute(query);
  }
  const core::LoadReport& load_report() const override {
    return db_->load_report();
  }
  Result<uint64_t> PersistTo(const std::string& dir) const override {
    return db_->PersistTo(dir);
  }
  const obs::MetricsRegistry* metrics() const override {
    return &db_->metrics();
  }

 private:
  std::string name_;
  std::unique_ptr<core::ProstDb> db_;
};

}  // namespace

Result<std::unique_ptr<RdfSystem>> MakeProst(
    SharedGraph graph, const cluster::ClusterConfig& cluster) {
  core::ProstDb::Options options;
  options.cluster = cluster;
  PROST_ASSIGN_OR_RETURN(
      std::unique_ptr<core::ProstDb> db,
      core::ProstDb::LoadFromSharedGraph(std::move(graph), options));
  return std::unique_ptr<RdfSystem>(
      new ProstSystem("PRoST", std::move(db)));
}

Result<std::unique_ptr<RdfSystem>> MakeProstVpOnly(
    SharedGraph graph, const cluster::ClusterConfig& cluster) {
  core::ProstDb::Options options;
  options.cluster = cluster;
  options.use_property_table = false;
  PROST_ASSIGN_OR_RETURN(
      std::unique_ptr<core::ProstDb> db,
      core::ProstDb::LoadFromSharedGraph(std::move(graph), options));
  return std::unique_ptr<RdfSystem>(
      new ProstSystem("PRoST-VP-only", std::move(db)));
}

Result<std::unique_ptr<RdfSystem>> MakeProstPaged(
    SharedGraph graph, const cluster::ClusterConfig& cluster,
    uint64_t pool_bytes, uint32_t row_group_rows) {
  core::ProstDb::Options options;
  options.cluster = cluster;
  options.storage.buffer_pool_bytes = pool_bytes;
  options.storage.row_group_rows = row_group_rows;
  PROST_ASSIGN_OR_RETURN(
      std::unique_ptr<core::ProstDb> db,
      core::ProstDb::LoadFromSharedGraph(std::move(graph), options));
  return std::unique_ptr<RdfSystem>(
      new ProstSystem("PRoST (paged)", std::move(db)));
}

Result<std::unique_ptr<RdfSystem>> MakeProstVpOnlyHeuristicOrder(
    SharedGraph graph, const cluster::ClusterConfig& cluster) {
  core::ProstDb::Options options;
  options.cluster = cluster;
  options.use_property_table = false;
  options.passes.join_order = false;
  PROST_ASSIGN_OR_RETURN(
      std::unique_ptr<core::ProstDb> db,
      core::ProstDb::LoadFromSharedGraph(std::move(graph), options));
  return std::unique_ptr<RdfSystem>(
      new ProstSystem("PRoST-VP-only (heuristic order)", std::move(db)));
}

Result<std::unique_ptr<RdfSystem>> MakeProstNoOptimizer(
    SharedGraph graph, const cluster::ClusterConfig& cluster) {
  core::ProstDb::Options options;
  options.cluster = cluster;
  options.passes.filter_pushdown = false;
  options.passes.join_order = false;
  options.passes.resolve_join_strategy = false;
  options.passes.early_projection = false;
  PROST_ASSIGN_OR_RETURN(
      std::unique_ptr<core::ProstDb> db,
      core::ProstDb::LoadFromSharedGraph(std::move(graph), options));
  return std::unique_ptr<RdfSystem>(
      new ProstSystem("PRoST (no opt passes)", std::move(db)));
}

Result<std::unique_ptr<RdfSystem>> MakeSparqlGx(
    SharedGraph graph, const cluster::ClusterConfig& cluster) {
  return SparqlGxSystem::Load(std::move(graph), cluster);
}

Result<std::unique_ptr<RdfSystem>> MakeS2Rdf(
    SharedGraph graph, const cluster::ClusterConfig& cluster) {
  return S2RdfSystem::Load(std::move(graph), cluster);
}

Result<std::unique_ptr<RdfSystem>> MakeRya(
    SharedGraph graph, const cluster::ClusterConfig& cluster) {
  return RyaSystem::Load(std::move(graph), cluster);
}

Result<std::vector<std::unique_ptr<RdfSystem>>> MakeAllSystems(
    SharedGraph graph, const cluster::ClusterConfig& cluster) {
  std::vector<std::unique_ptr<RdfSystem>> systems;
  PROST_ASSIGN_OR_RETURN(std::unique_ptr<RdfSystem> prost,
                         MakeProst(graph, cluster));
  systems.push_back(std::move(prost));
  PROST_ASSIGN_OR_RETURN(std::unique_ptr<RdfSystem> s2rdf,
                         MakeS2Rdf(graph, cluster));
  systems.push_back(std::move(s2rdf));
  PROST_ASSIGN_OR_RETURN(std::unique_ptr<RdfSystem> rya,
                         MakeRya(graph, cluster));
  systems.push_back(std::move(rya));
  PROST_ASSIGN_OR_RETURN(std::unique_ptr<RdfSystem> sparqlgx,
                         MakeSparqlGx(graph, cluster));
  systems.push_back(std::move(sparqlgx));
  return systems;
}

}  // namespace prost::baselines
