#ifndef PROST_BASELINES_SPARQLGX_H_
#define PROST_BASELINES_SPARQLGX_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/system.h"
#include "cluster/config.h"
#include "core/statistics.h"
#include "core/translator.h"
#include "core/vp_store.h"
#include "obs/metrics.h"

namespace prost::baselines {

/// SPARQLGX (Graux et al., ISWC 2016): Vertical Partitioning stored as
/// flat text files on HDFS, with queries compiled directly to Spark RDD
/// operations. "Differently from S2RDF and PRoST, SPARQLGX does not use
/// Spark SQL"; it relies on its own statistics for join ordering.
///
/// The reproduction shares PRoST's VP storage (ids in memory) but charges
/// costs through an RDD-era profile: scans are priced at the *text* size
/// of each predicate file, per-row work at a text-processing rate (no
/// whole-stage codegen), shuffles carry lexical tuples, and every join is
/// a shuffle (no Catalyst broadcast planning).
class SparqlGxSystem : public RdfSystem {
 public:
  static Result<std::unique_ptr<RdfSystem>> Load(
      SharedGraph graph, const cluster::ClusterConfig& cluster);

  const std::string& name() const override { return name_; }
  Result<core::QueryResult> Execute(const sparql::Query& query) const override;
  const core::LoadReport& load_report() const override {
    return load_report_;
  }
  Result<uint64_t> PersistTo(const std::string& dir) const override;

  /// Load-side observability: sparqlgx.vp.predicates / text_bytes.
  const obs::MetricsRegistry* metrics() const override { return &metrics_; }

 private:
  SparqlGxSystem() = default;

  /// Cost penalties relative to the Spark SQL systems, from the gap the
  /// paper measures (SPARQLGX ~an order of magnitude behind PRoST):
  /// text-tuple processing and serialization without codegen.
  static constexpr double kRowRateFactor = 1.0 / 8.0;
  static constexpr double kStageOverheadFactor = 2.2;
  static constexpr double kTextBytesPerValue = 26.0;

  std::string name_ = "SPARQLGX";
  SharedGraph graph_;
  cluster::ClusterConfig cluster_;   // Derated RDD profile.
  core::VpStore vp_;
  core::DatasetStatistics stats_;
  core::LoadReport load_report_;
  /// Text bytes of each predicate's VP file per partition (scan charges
  /// and persisted size).
  std::map<rdf::TermId, std::vector<uint64_t>> text_bytes_;
  obs::MetricsRegistry metrics_;
};

}  // namespace prost::baselines

#endif  // PROST_BASELINES_SPARQLGX_H_
