#ifndef PROST_BASELINES_SYSTEM_H_
#define PROST_BASELINES_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/config.h"
#include "common/status.h"
#include "core/executor.h"
#include "core/prost_db.h"
#include "obs/metrics.h"
#include "rdf/graph.h"
#include "sparql/algebra.h"

namespace prost::baselines {

/// Uniform interface over the four evaluated systems (PRoST and the three
/// baselines of §4), so the comparison benches can drive them alike. All
/// systems are built over the same shared, deduplicated graph and the same
/// cluster description, matching the paper's single-cluster methodology.
class RdfSystem {
 public:
  virtual ~RdfSystem() = default;

  virtual const std::string& name() const = 0;

  /// Executes a parsed query on a fresh simulated clock.
  virtual Result<core::QueryResult> Execute(
      const sparql::Query& query) const = 0;

  virtual const core::LoadReport& load_report() const = 0;

  /// Persists the system's database under `dir` and returns the bytes
  /// written (the "Size" column of Table 1).
  virtual Result<uint64_t> PersistTo(const std::string& dir) const = 0;

  /// Load- and query-side observability counters, or null when a system
  /// records none. Names are system-prefixed (e.g. s2rdf.extvp.tables).
  virtual const obs::MetricsRegistry* metrics() const { return nullptr; }
};

using SharedGraph = std::shared_ptr<const rdf::EncodedGraph>;

/// PRoST itself, adapted to the comparison interface.
Result<std::unique_ptr<RdfSystem>> MakeProst(
    SharedGraph graph, const cluster::ClusterConfig& cluster);

/// PRoST restricted to Vertical Partitioning (Figure 2's baseline bars).
Result<std::unique_ptr<RdfSystem>> MakeProstVpOnly(
    SharedGraph graph, const cluster::ClusterConfig& cluster);

/// PRoST (mixed VP + PT) running beyond-RAM storage (DESIGN.md §15):
/// paged row groups behind a BufferPool of `pool_bytes`, zone-map and
/// bloom skipping on. Results are bit-identical to MakeProst; the
/// bytes_scanned counter and the storage.* metrics show what paging
/// skipped. `row_group_rows` = 0 uses columnar::kRowGroupSize.
Result<std::unique_ptr<RdfSystem>> MakeProstPaged(
    SharedGraph graph, const cluster::ClusterConfig& cluster,
    uint64_t pool_bytes, uint32_t row_group_rows = 0);

/// PRoST restricted to Vertical Partitioning with cost-based join
/// ordering disabled: scans execute in the translator's §3.3 heuristic
/// order. Against MakeProstVpOnly this isolates what DP enumeration over
/// real statistics contributes — VP-only is the mode where every star
/// opens into reorderable scans, so it is where ordering actually bites
/// (the fourth bench_fig2 ablation).
Result<std::unique_ptr<RdfSystem>> MakeProstVpOnlyHeuristicOrder(
    SharedGraph graph, const cluster::ClusterConfig& cluster);

/// PRoST with every optimizer pass disabled (plan/passes.h PassOptions
/// all false): the translated Join Tree executes exactly as built.
/// Results are bit-identical to MakeProst; only the simulated cost
/// differs, which is what bench_fig2 tracks as the optimizer's margin.
Result<std::unique_ptr<RdfSystem>> MakeProstNoOptimizer(
    SharedGraph graph, const cluster::ClusterConfig& cluster);

/// SPARQLGX: text-file Vertical Partitioning compiled to plain RDD
/// operations (no Spark SQL / Catalyst).
Result<std::unique_ptr<RdfSystem>> MakeSparqlGx(
    SharedGraph graph, const cluster::ClusterConfig& cluster);

/// S2RDF: Vertical Partitioning extended with precomputed semi-join
/// reductions (ExtVP).
Result<std::unique_ptr<RdfSystem>> MakeS2Rdf(
    SharedGraph graph, const cluster::ClusterConfig& cluster);

/// Rya: triple-key indexes (SPO/POS/OSP) on a sorted key-value store with
/// index-nested-loop joins.
Result<std::unique_ptr<RdfSystem>> MakeRya(
    SharedGraph graph, const cluster::ClusterConfig& cluster);

/// Builds all four compared systems (PRoST, S2RDF, Rya, SPARQLGX) over
/// one graph, in the order the paper's tables list them.
Result<std::vector<std::unique_ptr<RdfSystem>>> MakeAllSystems(
    SharedGraph graph, const cluster::ClusterConfig& cluster);

}  // namespace prost::baselines

#endif  // PROST_BASELINES_SYSTEM_H_
