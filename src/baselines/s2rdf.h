#ifndef PROST_BASELINES_S2RDF_H_
#define PROST_BASELINES_S2RDF_H_

#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "baselines/system.h"
#include "cluster/config.h"
#include "core/statistics.h"
#include "core/vp_store.h"
#include "obs/metrics.h"

namespace prost::baselines {

/// S2RDF (Schätzle et al., VLDB 2016): Vertical Partitioning extended
/// with ExtVP — precomputed semi-join reductions between every correlated
/// predicate pair. At query time each triple pattern scans the smallest
/// applicable reduction instead of the full VP table, which removes most
/// join input ("many intermediate results of queries are already
/// computed"). The price is exactly what Table 1 shows: the largest
/// database and a loading time an order of magnitude beyond everyone
/// else's, because load performs O(|P|²) semi-joins.
class S2RdfSystem : public RdfSystem {
 public:
  /// Correlation directions of an ExtVP table ExtVP_XY^{p|q}: the rows of
  /// VP_p whose X position appears in the Y position of VP_q. S2RDF's
  /// default table set (OO is omitted there as well).
  enum class Correlation : uint8_t { kSS = 0, kSO = 1, kOS = 2 };

  /// Only reductions at or below this selectivity (|ExtVP| / |VP_p|) are
  /// persisted. S2RDF's default keeps every reduction with selectivity
  /// < 1 (its optional "SF" threshold trades query speed for storage);
  /// 0.95 skips only the useless near-identity tables.
  static constexpr double kSelectivityThreshold = 0.95;

  /// ExtVP construction runs as Spark SQL joins over already-encoded
  /// data, faster per row than the parse-and-ingest path; this factor
  /// relates the two rates in the loading-time simulation.
  static constexpr double kExtVpRateFactor = 20.0;

  static Result<std::unique_ptr<RdfSystem>> Load(
      SharedGraph graph, const cluster::ClusterConfig& cluster);

  const std::string& name() const override { return name_; }
  Result<core::QueryResult> Execute(const sparql::Query& query) const override;
  const core::LoadReport& load_report() const override {
    return load_report_;
  }
  Result<uint64_t> PersistTo(const std::string& dir) const override;

  /// ExtVP observability: s2rdf.extvp.tables_stored / rows_stored /
  /// rejected_selectivity / rejected_empty counters plus the
  /// s2rdf.extvp.selectivity histogram over candidate reductions.
  const obs::MetricsRegistry* metrics() const override { return &metrics_; }

 private:
  using ExtVpKey = std::tuple<Correlation, rdf::TermId, rdf::TermId>;

  S2RdfSystem() = default;

  /// The smallest stored reduction applicable to pattern `index` of the
  /// query's BGP, or nullptr to fall back to plain VP.
  const core::VpStore::PredicateTable* BestTableFor(
      const sparql::Query& query, size_t index, rdf::TermId predicate) const;

  std::string name_ = "S2RDF";
  SharedGraph graph_;
  cluster::ClusterConfig cluster_;
  core::VpStore vp_;
  core::DatasetStatistics stats_;
  core::LoadReport load_report_;
  std::map<ExtVpKey, core::VpStore::PredicateTable> extvp_;
  obs::MetricsRegistry metrics_;
};

}  // namespace prost::baselines

#endif  // PROST_BASELINES_S2RDF_H_
