#ifndef PROST_ANALYSIS_PLAN_CHECKER_H_
#define PROST_ANALYSIS_PLAN_CHECKER_H_

#include "cluster/config.h"
#include "common/status.h"
#include "core/join_tree.h"
#include "core/property_table.h"
#include "core/statistics.h"
#include "core/vp_store.h"
#include "plan/plan_ir.h"
#include "rdf/dictionary.h"
#include "sparql/algebra.h"

namespace prost::analysis {

/// What a plan is validated against. Every pointer may be null; each check
/// that needs an absent ingredient is skipped, so callers hand over
/// whatever they have (the executor has stores, ProstDb has everything).
struct PlanContext {
  const core::VpStore* vp = nullptr;
  const core::PropertyTable* property_table = nullptr;
  const core::PropertyTable* reverse_property_table = nullptr;
  const core::DatasetStatistics* stats = nullptr;
  const rdf::Dictionary* dictionary = nullptr;
  const cluster::ClusterConfig* cluster = nullptr;
};

/// Knobs for CheckPlan. Defaults run every check the context allows.
struct PlanCheckerOptions {
  /// Cross-check node cardinality estimates and storage row counts
  /// against the §3.3 statistics (requires context.stats).
  bool check_statistics = true;
  /// Join-key type agreement from predicate object domains
  /// (requires context.stats with literal-object counts).
  bool check_types = true;
};

/// Structural verification of a Join Tree against its query — no stores or
/// statistics needed, so the executor can afford it on every debug-build
/// execution:
///   - every node is well-formed (non-empty, VP arity 1, PT/RPT patterns
///     share one key term, variable/constant resolution is coherent);
///   - the tree covers each BGP triple pattern exactly once;
///   - the left-deep fold never needs a cross product (each node after the
///     first shares a join variable with the part already planned);
///   - node output schemas and the final projection contain no duplicate
///     columns, and no literal ever occupies a subject position;
///   - every projected / filtered / ordered / counted variable is bound.
/// Errors carry the offending node's label and index.
Status CheckPlanStructure(const core::JoinTree& tree,
                          const sparql::Query& query);

/// Full static analysis: CheckPlanStructure plus every contextual check
/// the `context` supports —
///   - storage availability: a PT/RPT node requires that table to exist;
///   - column resolution: each non-null predicate resolves to a VP table
///     (VP nodes) or a Property-Table column (PT/RPT nodes), and resolved
///     term ids agree with the dictionary;
///   - physical-shape invariants: every referenced table is partitioned
///     exactly `cluster.num_workers` ways with per-partition size info;
///   - statistics agreement: VP row counts must match the §3.3 statistics
///     (node ordering *and* broadcast eligibility are planned from these
///     numbers, so a disagreement means the optimizer and the executor see
///     different worlds), and each node's estimated cardinality must be
///     finite, non-negative and within its statistics upper bound;
///   - join-key type agreement: a variable bound in subject position can
///     never also be bound by a predicate whose objects are all literals
///     (and literal-only cannot meet entity-only object domains).
Status CheckPlan(const core::JoinTree& tree, const sparql::Query& query,
                 const PlanContext& context,
                 const PlanCheckerOptions& options = {});

/// Invariant verification of a *physical* plan against its query. The
/// PassManager runs this on the freshly-built plan and again after every
/// optimizer pass (paranoid / verify_plans builds), so a pass that breaks
/// an invariant is caught before anything executes:
///   - tree shape: scans are leaves, joins binary, everything else unary,
///     COUNT aggregates only at the root;
///   - schemas: every node's output_columns equals the schema re-derived
///     bottom-up from its children (scan layout, join left-major layout,
///     projection lists, COUNT alias);
///   - joins: join_columns is exactly the children's non-empty shared
///     intersection in left order, and join outputs carry an unknown
///     planner size (never broadcast — Spark 2.1 semantics);
///   - projections: no duplicates, all columns bound in the child, and
///     optimizer-inserted prunes preserve the child's column order;
///   - filters: tail and pushed constraints reference bound variables,
///     pushed ones are constant-only, every one comes from the query, and
///     no query filter is lost;
///   - coverage: the scans' source nodes cover the query BGP exactly
///     once each (CheckPlanStructure node-shape rules included), and the
///     root's schema is the query's effective projection (COUNT alias for
///     aggregates);
///   - estimates: scan cardinality estimates are finite and non-negative.
Status CheckPhysicalPlan(const plan::PhysicalPlan& physical,
                         const sparql::Query& query);

}  // namespace prost::analysis

#endif  // PROST_ANALYSIS_PLAN_CHECKER_H_
