#include "analysis/plan_checker.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/str_util.h"

namespace prost::analysis {
namespace {

using core::JoinTree;
using core::JoinTreeNode;
using core::NodeKind;
using core::NodePattern;
using core::PatternTerm;

const char* KindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kVerticalPartitioning:
      return "VP";
    case NodeKind::kPropertyTable:
      return "PT";
    case NodeKind::kReversePropertyTable:
      return "RPT";
  }
  return "?";
}

/// "node 2 PT(?x <p1> ?y; ?x <p2> ?z)" — every diagnostic names the
/// offending node this way.
std::string NodeLabel(size_t index, const JoinTreeNode& node) {
  std::string label =
      StrFormat("node %zu %s(", index, KindName(node.kind));
  for (size_t i = 0; i < node.patterns.size(); ++i) {
    if (i > 0) label += "; ";
    label += node.patterns[i].source.ToString();
  }
  label += ")";
  return label;
}

Status NodeError(size_t index, const JoinTreeNode& node,
                 const std::string& message) {
  return Status::InvalidArgument("plan check: " + NodeLabel(index, node) +
                                 ": " + message);
}

bool SameTerm(const PatternTerm& a, const PatternTerm& b) {
  if (a.is_variable != b.is_variable) return false;
  return a.is_variable ? a.name == b.name : a.id == b.id;
}

/// The key position of a node's pattern: subject for VP/PT scans, object
/// for the reverse (object-keyed) Property Table.
const PatternTerm& KeyTerm(NodeKind kind, const NodePattern& pattern) {
  return kind == NodeKind::kReversePropertyTable ? pattern.object
                                                 : pattern.subject;
}
const PatternTerm& ValueTerm(NodeKind kind, const NodePattern& pattern) {
  return kind == NodeKind::kReversePropertyTable ? pattern.subject
                                                 : pattern.object;
}

/// The node's output schema, in exactly the order the engine's scans emit
/// it: key variable first, then each pattern's value variable, repeated
/// names collapsed (VpStore::ScanTable / PropertyTable::Scan layout).
std::vector<std::string> NodeOutputColumns(const JoinTreeNode& node) {
  std::vector<std::string> names;
  auto add = [&](const PatternTerm& term) {
    if (!term.is_variable) return;
    if (std::find(names.begin(), names.end(), term.name) == names.end()) {
      names.push_back(term.name);
    }
  };
  if (node.patterns.empty()) return names;
  add(KeyTerm(node.kind, node.patterns[0]));
  for (const NodePattern& pattern : node.patterns) {
    add(ValueTerm(node.kind, pattern));
  }
  return names;
}

/// Per-node shape: arity, key sharing, resolution coherence with the
/// source patterns, no literal subjects, non-empty output schema.
Status CheckNodeShape(size_t index, const JoinTreeNode& node) {
  if (node.patterns.empty()) {
    return NodeError(index, node, "node has no triple patterns");
  }
  if (node.kind == NodeKind::kVerticalPartitioning &&
      node.patterns.size() != 1) {
    return NodeError(index, node,
                     StrFormat("VP nodes evaluate exactly one pattern, got "
                               "%zu",
                               node.patterns.size()));
  }
  for (const NodePattern& pattern : node.patterns) {
    if (pattern.source.predicate.is_variable()) {
      return NodeError(index, node,
                       "variable predicate " +
                           pattern.source.predicate.ToNTriples() +
                           " has no partitioned table");
    }
    if (pattern.source.subject.is_literal()) {
      return NodeError(index, node,
                       "literal " + pattern.source.subject.ToNTriples() +
                           " in subject position can never match");
    }
    // Resolved terms must mirror the source pattern: same variable-ness,
    // same variable names. (Constant ids are checked against the
    // dictionary in CheckPlan when one is available.)
    struct Position {
      const rdf::Term& source;
      const PatternTerm& resolved;
      const char* where;
    };
    const Position positions[] = {
        {pattern.source.subject, pattern.subject, "subject"},
        {pattern.source.object, pattern.object, "object"},
    };
    for (const Position& p : positions) {
      if (p.source.is_variable() != p.resolved.is_variable) {
        return NodeError(index, node,
                         StrFormat("%s resolution disagrees with the source "
                                   "pattern (variable vs constant)",
                                   p.where));
      }
      if (p.resolved.is_variable && p.resolved.name.empty()) {
        return NodeError(index, node,
                         StrFormat("%s variable has an empty name", p.where));
      }
      if (p.resolved.is_variable && p.resolved.name != p.source.value) {
        return NodeError(index, node,
                         StrFormat("%s variable renamed during resolution "
                                   "('%s' vs '?%s')",
                                   p.where, p.resolved.name.c_str(),
                                   p.source.value.c_str()));
      }
    }
  }
  if (node.kind != NodeKind::kVerticalPartitioning) {
    const PatternTerm& key = KeyTerm(node.kind, node.patterns[0]);
    for (const NodePattern& pattern : node.patterns) {
      if (!SameTerm(key, KeyTerm(node.kind, pattern))) {
        return NodeError(
            index, node,
            StrFormat("%s-node patterns do not share one %s key; the scan "
                      "would silently key every pattern on the first one's",
                      KindName(node.kind),
                      node.kind == NodeKind::kReversePropertyTable
                          ? "object"
                          : "subject"));
      }
    }
  }
  if (NodeOutputColumns(node).empty()) {
    return NodeError(index, node,
                     "node binds no variables (fully-constant sub-queries "
                     "are not executable)");
  }
  return Status::OK();
}

/// Every BGP triple pattern must be covered by exactly one node, and no
/// node may evaluate a pattern the query does not contain.
Status CheckPatternCoverage(const JoinTree& tree, const sparql::Query& query) {
  std::vector<const NodePattern*> plan_patterns;
  for (const JoinTreeNode& node : tree.nodes) {
    for (const NodePattern& pattern : node.patterns) {
      plan_patterns.push_back(&pattern);
    }
  }
  std::vector<bool> used(plan_patterns.size(), false);
  for (const sparql::TriplePattern& pattern : query.bgp.patterns) {
    size_t matches = 0;
    for (size_t i = 0; i < plan_patterns.size(); ++i) {
      if (!used[i] && plan_patterns[i]->source == pattern) {
        used[i] = true;
        ++matches;
        break;
      }
    }
    if (matches == 0) {
      // Either genuinely missing or already claimed by an earlier
      // duplicate; distinguish for the diagnostic.
      bool duplicate = false;
      for (const sparql::TriplePattern& other : query.bgp.patterns) {
        if (&other != &pattern && other == pattern) duplicate = true;
      }
      return Status::InvalidArgument(
          "plan check: triple pattern " + pattern.ToString() +
          (duplicate ? " appears more often in the query than in the plan"
                     : " is not covered by any Join Tree node"));
    }
  }
  for (size_t i = 0; i < plan_patterns.size(); ++i) {
    if (!used[i]) {
      return Status::InvalidArgument(
          "plan check: plan evaluates " + plan_patterns[i]->source.ToString() +
          " which the query's BGP does not contain (or contains fewer "
          "times)");
    }
  }
  return Status::OK();
}

/// Left-deep fold: each node after the first must share a join variable
/// with the accumulated result, or the executor would face a cross
/// product (HashJoin rejects those at runtime; we reject them statically).
Status CheckConnectivity(const JoinTree& tree) {
  std::set<std::string> bound;
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    std::vector<std::string> columns = NodeOutputColumns(tree.nodes[i]);
    if (i > 0) {
      bool shares = std::any_of(columns.begin(), columns.end(),
                                [&](const std::string& name) {
                                  return bound.count(name) > 0;
                                });
      if (!shares) {
        return NodeError(i, tree.nodes[i],
                         "no join key: node shares no variable with the "
                         "already-planned sub-tree {" +
                             StrJoin(std::vector<std::string>(bound.begin(),
                                                              bound.end()),
                                     ",") +
                             "} (cross product)");
      }
    }
    bound.insert(columns.begin(), columns.end());
  }
  return Status::OK();
}

/// Projection / filters / ORDER BY / COUNT may only use variables some
/// node binds, and the final output schema must be duplicate-free.
Status CheckVariableCoverage(const JoinTree& tree,
                             const sparql::Query& query) {
  std::set<std::string> bound;
  for (const JoinTreeNode& node : tree.nodes) {
    std::vector<std::string> columns = NodeOutputColumns(node);
    bound.insert(columns.begin(), columns.end());
  }
  std::set<std::string> projected;
  for (const std::string& name : query.EffectiveProjection()) {
    if (!bound.count(name)) {
      return Status::InvalidArgument(
          "plan check: projected variable ?" + name +
          " is not bound by any Join Tree node");
    }
    if (!projected.insert(name).second) {
      return Status::InvalidArgument(
          "plan check: duplicate output column ?" + name +
          " in the projection");
    }
  }
  for (const sparql::FilterConstraint& filter : query.filters) {
    if (!bound.count(filter.variable)) {
      return Status::InvalidArgument("plan check: filter variable ?" +
                                     filter.variable +
                                     " is not bound by any Join Tree node");
    }
    if (filter.rhs_is_variable && !bound.count(filter.rhs_variable)) {
      return Status::InvalidArgument("plan check: filter variable ?" +
                                     filter.rhs_variable +
                                     " is not bound by any Join Tree node");
    }
  }
  for (const sparql::OrderKey& key : query.order_by) {
    if (!bound.count(key.variable)) {
      return Status::InvalidArgument("plan check: ORDER BY variable ?" +
                                     key.variable +
                                     " is not bound by any Join Tree node");
    }
  }
  if (query.count.has_value() && !query.count->variable.empty() &&
      !bound.count(query.count->variable)) {
    return Status::InvalidArgument("plan check: COUNT variable ?" +
                                   query.count->variable +
                                   " is not bound by any Join Tree node");
  }
  return Status::OK();
}

rdf::PredicateStats StatsFor(const core::DatasetStatistics& stats,
                             rdf::TermId predicate) {
  auto it = stats.per_predicate().find(predicate);
  return it == stats.per_predicate().end() ? rdf::PredicateStats{}
                                           : it->second;
}

/// Storage-side resolution: every non-null predicate must have its table
/// (VP) or column (PT/RPT), shaped for the right worker count. Null
/// predicate ids are constants the dictionary has never seen — a legal
/// always-empty scan, mirroring the runtime semantics.
Status CheckStorageResolution(const JoinTree& tree,
                              const PlanContext& context) {
  const uint32_t workers =
      context.cluster != nullptr ? context.cluster->num_workers
                                 : context.vp->num_workers();
  if (context.vp->num_workers() != workers) {
    return Status::InvalidArgument(
        StrFormat("plan check: VP store is partitioned %u ways but the "
                  "cluster has %u workers",
                  context.vp->num_workers(), workers));
  }
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    const JoinTreeNode& node = tree.nodes[i];
    const core::PropertyTable* table = nullptr;
    if (node.kind == NodeKind::kPropertyTable) {
      table = context.property_table;
      if (table == nullptr) {
        return NodeError(i, node,
                         "plan uses the Property Table but none is loaded");
      }
    } else if (node.kind == NodeKind::kReversePropertyTable) {
      table = context.reverse_property_table;
      if (table == nullptr) {
        return NodeError(
            i, node,
            "plan uses the reverse Property Table but none is loaded");
      }
    }
    if (table != nullptr && table->num_workers() != workers) {
      return NodeError(i, node,
                       StrFormat("%s is partitioned %u ways but the cluster "
                                 "has %u workers",
                                 KindName(node.kind), table->num_workers(),
                                 workers));
    }
    for (const NodePattern& pattern : node.patterns) {
      if (pattern.predicate == rdf::kNullTermId) {
        if (pattern.source.predicate.is_concrete()) continue;  // Absent term.
        return NodeError(i, node, "null predicate id for " +
                                      pattern.source.predicate.ToNTriples());
      }
      if (node.kind == NodeKind::kVerticalPartitioning) {
        auto it = context.vp->tables().find(pattern.predicate);
        if (it == context.vp->tables().end()) {
          return NodeError(i, node,
                           "unknown predicate table: no VP table for " +
                               pattern.source.predicate.ToNTriples());
        }
        const core::VpStore::PredicateTable& vp_table = it->second;
        if (vp_table.partitions.size() != workers ||
            vp_table.partition_bytes.size() != vp_table.partitions.size()) {
          return NodeError(
              i, node,
              StrFormat("VP table for %s has %zu partitions / %zu size "
                        "entries, expected %u",
                        pattern.source.predicate.ToNTriples().c_str(),
                        vp_table.partitions.size(),
                        vp_table.partition_bytes.size(), workers));
        }
      } else if (!table->HasPredicate(pattern.predicate)) {
        return NodeError(i, node,
                         "unknown predicate table: no " +
                             std::string(KindName(node.kind)) +
                             " column for " +
                             pattern.source.predicate.ToNTriples());
      }
    }
  }
  return Status::OK();
}

/// Resolved constant ids must agree with the dictionary (a translator that
/// resolves against a stale or foreign dictionary produces silently wrong
/// — usually empty — results).
Status CheckDictionaryAgreement(const JoinTree& tree,
                                const rdf::Dictionary& dictionary) {
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    const JoinTreeNode& node = tree.nodes[i];
    for (const NodePattern& pattern : node.patterns) {
      struct Position {
        const rdf::Term& source;
        rdf::TermId resolved;
        const char* where;
      };
      const Position positions[] = {
          {pattern.source.subject, pattern.subject.id, "subject"},
          {pattern.source.predicate, pattern.predicate, "predicate"},
          {pattern.source.object, pattern.object.id, "object"},
      };
      for (const Position& p : positions) {
        if (p.source.is_variable()) continue;
        rdf::TermId expected = dictionary.Lookup(p.source.ToNTriples());
        if (p.resolved != expected) {
          return NodeError(
              i, node,
              StrFormat("%s %s resolved to term id %llu but the dictionary "
                        "says %llu",
                        p.where, p.source.ToNTriples().c_str(),
                        static_cast<unsigned long long>(p.resolved),
                        static_cast<unsigned long long>(expected)));
        }
      }
    }
  }
  return Status::OK();
}

/// §3.3 statistics agreement. Node ordering is planned from the
/// statistics while join strategies (broadcast vs shuffle) are planned
/// from storage-derived planner sizes; both must describe the same
/// physical data, and every cardinality estimate must stay inside its
/// statistics upper bound.
Status CheckStatisticsAgreement(const JoinTree& tree,
                                const PlanContext& context) {
  const core::DatasetStatistics& stats = *context.stats;
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    const JoinTreeNode& node = tree.nodes[i];
    if (!std::isfinite(node.estimated_cardinality) ||
        node.estimated_cardinality < 0) {
      return NodeError(i, node,
                       StrFormat("cardinality estimate %g is not a finite "
                                 "non-negative number",
                                 node.estimated_cardinality));
    }
    uint64_t upper_bound = ~0ull;
    for (const NodePattern& pattern : node.patterns) {
      rdf::PredicateStats predicate_stats =
          StatsFor(stats, pattern.predicate);
      upper_bound = std::min(upper_bound, predicate_stats.triple_count);
      if (context.vp != nullptr &&
          pattern.predicate != rdf::kNullTermId) {
        auto it = context.vp->tables().find(pattern.predicate);
        uint64_t stored_rows =
            it == context.vp->tables().end() ? 0 : it->second.total_rows;
        if (node.kind == NodeKind::kVerticalPartitioning &&
            stored_rows != predicate_stats.triple_count) {
          return NodeError(
              i, node,
              StrFormat("statistics/storage disagreement for %s: statistics "
                        "count %llu triples but the VP table holds %llu — "
                        "broadcast eligibility and node ordering would be "
                        "planned against stale sizes",
                        pattern.source.predicate.ToNTriples().c_str(),
                        static_cast<unsigned long long>(
                            predicate_stats.triple_count),
                        static_cast<unsigned long long>(stored_rows)));
        }
      }
    }
    if (node.estimated_cardinality >
        static_cast<double>(upper_bound)) {
      return NodeError(
          i, node,
          StrFormat("cardinality estimate %g exceeds the statistics upper "
                    "bound of %llu rows",
                    node.estimated_cardinality,
                    static_cast<unsigned long long>(upper_bound)));
    }
  }
  return Status::OK();
}

/// Join-key type agreement. A variable bound in subject position binds
/// entities (IRIs / blank nodes); a variable bound as the object of a
/// predicate whose objects are all literals binds literals only. If one
/// variable carries both kinds of evidence (or literal-only meets
/// entity-only object domains), every join on it is empty by schema —
/// almost certainly a translation bug, and exactly what S2RDF-style
/// schema-driven table selection guards against.
Status CheckJoinKeyTypes(const JoinTree& tree, const PlanContext& context) {
  const core::DatasetStatistics& stats = *context.stats;
  struct Evidence {
    size_t node = 0;
    std::string description;
  };
  std::map<std::string, Evidence> entity_evidence;
  std::map<std::string, Evidence> literal_evidence;
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    const JoinTreeNode& node = tree.nodes[i];
    for (const NodePattern& pattern : node.patterns) {
      if (pattern.subject.is_variable) {
        entity_evidence.emplace(
            pattern.subject.name,
            Evidence{i, "subject of " + pattern.source.ToString()});
      }
      if (!pattern.object.is_variable) continue;
      rdf::PredicateStats predicate_stats =
          StatsFor(stats, pattern.predicate);
      if (predicate_stats.objects_all_literals()) {
        literal_evidence.emplace(
            pattern.object.name,
            Evidence{i, "object of " + pattern.source.ToString() +
                            " whose objects are all literals"});
      } else if (predicate_stats.objects_all_entities()) {
        entity_evidence.emplace(
            pattern.object.name,
            Evidence{i, "object of " + pattern.source.ToString() +
                            " whose objects are all IRIs/blanks"});
      }
    }
  }
  for (const auto& [name, literal] : literal_evidence) {
    auto it = entity_evidence.find(name);
    if (it == entity_evidence.end()) continue;
    const Evidence& entity = it->second;
    return Status::InvalidArgument(StrFormat(
        "plan check: join-key type mismatch for ?%s: bound to entities as "
        "the %s (node %zu) but to literals as the %s (node %zu); every "
        "join on it is empty by schema",
        name.c_str(), entity.description.c_str(), entity.node,
        literal.description.c_str(), literal.node));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// Physical-plan invariants (plan::PlanNode trees).
// ---------------------------------------------------------------------

bool ContainsName(const std::vector<std::string>& names,
                  const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

Status PhysicalError(const plan::PlanNode& node, const std::string& message) {
  std::string label = node.Label();
  return Status::InvalidArgument(
      "physical plan check: " +
      std::string(plan::PlanNodeKindName(node.kind)) +
      (label.empty() ? "" : " " + label) + ": " + message);
}

/// Everything CheckPhysicalNode accumulates on its way down.
struct PhysicalWalk {
  std::vector<const plan::ScanNodeBase*> scans;  // Left-to-right.
  std::vector<const sparql::FilterConstraint*> filters;  // Tail + pushed.
};

Status CheckFilterBound(const plan::PlanNode& node,
                        const sparql::FilterConstraint& constraint,
                        const std::vector<std::string>& bound) {
  if (!ContainsName(bound, constraint.variable)) {
    return PhysicalError(node, "filter variable ?" + constraint.variable +
                                   " is not bound here");
  }
  if (constraint.rhs_is_variable &&
      !ContainsName(bound, constraint.rhs_variable)) {
    return PhysicalError(node, "filter variable ?" + constraint.rhs_variable +
                                   " is not bound here");
  }
  return Status::OK();
}

Status CheckPhysicalNode(const plan::PlanNode& node, bool is_root,
                         PhysicalWalk& walk) {
  const bool is_scan = node.kind == plan::PlanNodeKind::kVpScan ||
                       node.kind == plan::PlanNodeKind::kPtScan;
  const size_t expected_children =
      is_scan ? 0 : (node.kind == plan::PlanNodeKind::kHashJoin ? 2 : 1);
  if (node.children.size() != expected_children) {
    return PhysicalError(node, StrFormat("expected %zu children, got %zu",
                                         expected_children,
                                         node.children.size()));
  }
  for (const std::unique_ptr<plan::PlanNode>& child : node.children) {
    if (child == nullptr) return PhysicalError(node, "null child");
    PROST_RETURN_IF_ERROR(CheckPhysicalNode(*child, /*is_root=*/false, walk));
  }

  // Scans must carry a real estimate (checked below); everywhere else the
  // join_order pass either annotated a finite estimate or left the "no
  // estimate" sentinel (any negative value). NaN/infinity is a bug in the
  // estimator arithmetic wherever it appears.
  if (!is_scan && !std::isfinite(node.estimated_rows)) {
    return PhysicalError(
        node, StrFormat("cardinality estimate %g is not finite",
                        node.estimated_rows));
  }

  switch (node.kind) {
    case plan::PlanNodeKind::kVpScan:
    case plan::PlanNodeKind::kPtScan: {
      const auto& scan = static_cast<const plan::ScanNodeBase&>(node);
      const bool vp_kind =
          scan.source.kind == NodeKind::kVerticalPartitioning;
      if (vp_kind != (node.kind == plan::PlanNodeKind::kVpScan)) {
        return PhysicalError(node,
                             "scan node kind disagrees with its Join Tree "
                             "node's storage kind");
      }
      if (node.output_columns !=
          plan::PlanBuilder::ScanOutputColumns(scan.source)) {
        return PhysicalError(node,
                             "output schema does not match the scan layout");
      }
      if (!std::isfinite(node.estimated_rows) || node.estimated_rows < 0) {
        return PhysicalError(
            node, StrFormat("cardinality estimate %g is not a finite "
                            "non-negative number",
                            node.estimated_rows));
      }
      for (const sparql::FilterConstraint& pushed : scan.pushed_filters) {
        if (pushed.rhs_is_variable) {
          return PhysicalError(node,
                               "pushed filter " + pushed.ToString() +
                                   " compares two variables; only constant "
                                   "filters may move below a join");
        }
        PROST_RETURN_IF_ERROR(
            CheckFilterBound(node, pushed, node.output_columns));
        walk.filters.push_back(&pushed);
      }
      walk.scans.push_back(&scan);
      return Status::OK();
    }
    case plan::PlanNodeKind::kHashJoin: {
      const auto& join = static_cast<const plan::HashJoinNode&>(node);
      const plan::PlanNode& left = *join.children[0];
      const plan::PlanNode& right = *join.children[1];
      std::vector<std::string> shared;
      for (const std::string& name : left.output_columns) {
        if (ContainsName(right.output_columns, name)) shared.push_back(name);
      }
      if (shared.empty()) {
        return PhysicalError(node, "children share no column (cross "
                                   "product)");
      }
      if (join.join_columns != shared) {
        return PhysicalError(node,
                             "join_columns [" +
                                 StrJoin(join.join_columns, ",") +
                                 "] != shared columns [" +
                                 StrJoin(shared, ",") + "]");
      }
      std::vector<std::string> expected = left.output_columns;
      for (const std::string& name : right.output_columns) {
        if (!ContainsName(expected, name)) expected.push_back(name);
      }
      if (node.output_columns != expected) {
        return PhysicalError(node,
                             "output schema is not the left-major join "
                             "layout [" +
                                 StrJoin(expected, ",") + "]");
      }
      // Join outputs default to an unknown planner size; the join_order
      // pass may stamp an exact-statistics estimate so joins above can
      // broadcast small intermediates. An annotated size without the
      // matching cardinality estimate means some other component wrote it.
      if (node.planner_bytes != engine::Relation::kUnknownPlannerBytes &&
          node.estimated_rows < 0) {
        return PhysicalError(node,
                             "join carries a planner size but no "
                             "cardinality estimate");
      }
      return Status::OK();
    }
    case plan::PlanNodeKind::kFilter: {
      const auto& filter = static_cast<const plan::FilterNode&>(node);
      PROST_RETURN_IF_ERROR(CheckFilterBound(
          node, filter.constraint, node.children[0]->output_columns));
      walk.filters.push_back(&filter.constraint);
      break;
    }
    case plan::PlanNodeKind::kProject: {
      const auto& project = static_cast<const plan::ProjectNode&>(node);
      if (node.output_columns != project.columns) {
        return PhysicalError(node,
                             "output schema differs from the projection "
                             "list");
      }
      const std::vector<std::string>& child_columns =
          node.children[0]->output_columns;
      std::set<std::string> seen;
      for (const std::string& name : project.columns) {
        if (!ContainsName(child_columns, name)) {
          return PhysicalError(
              node, "projected column ?" + name + " is not bound here");
        }
        if (!seen.insert(name).second) {
          return PhysicalError(node,
                               "duplicate projected column ?" + name);
        }
      }
      if (project.optimizer_inserted) {
        // A prune must be a pure column drop: kept columns stay in the
        // child's order (PruneColumns preserves row layout per column).
        size_t at = 0;
        for (const std::string& name : child_columns) {
          if (at < project.columns.size() && project.columns[at] == name) {
            ++at;
          }
        }
        if (at != project.columns.size()) {
          return PhysicalError(node,
                               "optimizer-inserted prune reorders the "
                               "child's columns");
        }
      }
      return Status::OK();
    }
    case plan::PlanNodeKind::kOrderBy: {
      const auto& order = static_cast<const plan::OrderByNode&>(node);
      for (const sparql::OrderKey& key : order.keys) {
        if (!ContainsName(node.children[0]->output_columns, key.variable)) {
          return PhysicalError(node, "ORDER BY variable ?" + key.variable +
                                         " is not bound here");
        }
      }
      break;
    }
    case plan::PlanNodeKind::kAggregate: {
      const auto& aggregate = static_cast<const plan::AggregateNode&>(node);
      if (!is_root) {
        return PhysicalError(node,
                             "COUNT aggregates must be the plan root");
      }
      if (node.output_columns !=
          std::vector<std::string>{aggregate.count.alias}) {
        return PhysicalError(node,
                             "output schema is not the COUNT alias");
      }
      if (!aggregate.count.variable.empty() &&
          !ContainsName(node.children[0]->output_columns,
                        aggregate.count.variable)) {
        return PhysicalError(node, "COUNT variable ?" +
                                       aggregate.count.variable +
                                       " is not bound here");
      }
      return Status::OK();
    }
    case plan::PlanNodeKind::kDistinct:
    case plan::PlanNodeKind::kLimit:
      break;
  }
  // Unary pass-through nodes: schema carries over unchanged.
  if (node.output_columns != node.children[0]->output_columns) {
    return PhysicalError(node, "output schema differs from its child's");
  }
  return Status::OK();
}

}  // namespace

Status CheckPlanStructure(const JoinTree& tree, const sparql::Query& query) {
  if (tree.nodes.empty()) {
    return Status::InvalidArgument("plan check: empty join tree");
  }
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    PROST_RETURN_IF_ERROR(CheckNodeShape(i, tree.nodes[i]));
  }
  PROST_RETURN_IF_ERROR(CheckPatternCoverage(tree, query));
  PROST_RETURN_IF_ERROR(CheckConnectivity(tree));
  return CheckVariableCoverage(tree, query);
}

Status CheckPlan(const JoinTree& tree, const sparql::Query& query,
                 const PlanContext& context,
                 const PlanCheckerOptions& options) {
  PROST_RETURN_IF_ERROR(CheckPlanStructure(tree, query));
  if (context.vp != nullptr) {
    PROST_RETURN_IF_ERROR(CheckStorageResolution(tree, context));
  }
  if (context.dictionary != nullptr) {
    PROST_RETURN_IF_ERROR(CheckDictionaryAgreement(tree, *context.dictionary));
  }
  if (context.stats != nullptr) {
    if (options.check_statistics) {
      PROST_RETURN_IF_ERROR(CheckStatisticsAgreement(tree, context));
    }
    if (options.check_types) {
      PROST_RETURN_IF_ERROR(CheckJoinKeyTypes(tree, context));
    }
  }
  return Status::OK();
}

Status CheckPhysicalPlan(const plan::PhysicalPlan& physical,
                         const sparql::Query& query) {
  if (physical.root == nullptr) {
    return Status::InvalidArgument("physical plan check: empty plan");
  }
  PhysicalWalk walk;
  PROST_RETURN_IF_ERROR(
      CheckPhysicalNode(*physical.root, /*is_root=*/true, walk));

  // The scans' Join Tree nodes must pass the same shape and coverage
  // rules as the tree they were lowered from.
  JoinTree tree;
  for (const plan::ScanNodeBase* scan : walk.scans) {
    tree.nodes.push_back(scan->source);
  }
  if (tree.nodes.empty()) {
    return Status::InvalidArgument("physical plan check: plan has no scans");
  }
  for (size_t i = 0; i < tree.nodes.size(); ++i) {
    PROST_RETURN_IF_ERROR(CheckNodeShape(i, tree.nodes[i]));
  }
  PROST_RETURN_IF_ERROR(CheckPatternCoverage(tree, query));

  // Filter conservation: a pass may move or duplicate a constraint (one
  // copy per scan binding its variable) but never invent or drop one.
  for (const sparql::FilterConstraint* constraint : walk.filters) {
    bool known = false;
    for (const sparql::FilterConstraint& filter : query.filters) {
      if (filter == *constraint) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument(
          "physical plan check: plan evaluates " + constraint->ToString() +
          " which the query does not contain");
    }
  }
  for (const sparql::FilterConstraint& filter : query.filters) {
    bool present = false;
    for (const sparql::FilterConstraint* constraint : walk.filters) {
      if (filter == *constraint) {
        present = true;
        break;
      }
    }
    if (!present) {
      return Status::InvalidArgument("physical plan check: query filter " +
                                     filter.ToString() +
                                     " was dropped from the plan");
    }
  }

  // The root must produce exactly what the query asks for.
  const std::vector<std::string> expected =
      query.count.has_value()
          ? std::vector<std::string>{query.count->alias}
          : query.EffectiveProjection();
  if (physical.root->output_columns != expected) {
    return Status::InvalidArgument(
        "physical plan check: root schema [" +
        StrJoin(physical.root->output_columns, ",") +
        "] does not match the query's output [" + StrJoin(expected, ",") +
        "]");
  }
  return Status::OK();
}

}  // namespace prost::analysis
