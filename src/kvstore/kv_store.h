#ifndef PROST_KVSTORE_KV_STORE_H_
#define PROST_KVSTORE_KV_STORE_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace prost::kvstore {

/// A sorted key-value store: the substrate standing in for Apache Accumulo
/// in the Rya baseline ("Accumulo keeps all its information sorted and
/// indexed by key; Rya stores whole RDF triples as keys").
///
/// Structure is a miniature LSM tree: an ordered memtable absorbs writes;
/// Flush() freezes it into an immutable sorted run; Compact() merges all
/// runs into one. Reads merge the memtable and every run, newest first
/// (last writer wins). Entries are never mutated in place.
///
/// NOT thread-safe by contract: the Rya baseline drives it from a single
/// thread, so it owns no Mutex and sits outside the DESIGN.md §11 lock
/// hierarchy. Wrap it in an annotated prost::Mutex before sharing.
class SortedKvStore {
 public:
  SortedKvStore() = default;
  SortedKvStore(const SortedKvStore&) = delete;
  SortedKvStore& operator=(const SortedKvStore&) = delete;
  SortedKvStore(SortedKvStore&&) = default;
  SortedKvStore& operator=(SortedKvStore&&) = default;

  /// Inserts or overwrites `key`.
  void Put(std::string key, std::string value);

  /// Installs a batch as one sorted run, bypassing the memtable (bulk
  /// ingest, like Accumulo RFile import). Entries are sorted in place;
  /// duplicate keys keep the last occurrence.
  void BulkLoad(std::vector<std::pair<std::string, std::string>> entries);

  /// Point lookup across memtable and runs.
  std::optional<std::string> Get(std::string_view key) const;

  /// Freezes the memtable into a new sorted run.
  void Flush();

  /// Merges all runs (and the memtable) into a single run.
  void Compact();

  /// Forward iterator over the merged view of a key range.
  class Iterator {
   public:
    bool Valid() const { return index_ < entries_.size(); }
    void Next() { ++index_; }
    std::string_view key() const { return entries_[index_].first; }
    std::string_view value() const { return entries_[index_].second; }
    /// Number of entries in the range (the scan is materialized).
    size_t size() const { return entries_.size(); }

   private:
    friend class SortedKvStore;
    std::vector<std::pair<std::string, std::string>> entries_;
    size_t index_ = 0;
  };

  /// Merged scan over [start, end). With empty `end`, scans to the end of
  /// the keyspace.
  Iterator Scan(std::string_view start, std::string_view end) const;

  /// Scan of all keys with the given prefix.
  Iterator ScanPrefix(std::string_view prefix) const;

  /// Total number of live entries (after merge semantics).
  size_t num_entries() const;

  /// Number of frozen runs (compaction observability).
  size_t num_runs() const { return runs_.size(); }

  /// Approximate storage footprint (keys + values + per-entry index
  /// overhead, mirroring Accumulo RFile overhead).
  uint64_t ApproximateBytes() const;

  /// Serialization for persisted databases.
  void Serialize(std::string* out) const;
  static Result<SortedKvStore> Deserialize(std::string_view data);

 private:
  using Entry = std::pair<std::string, std::string>;
  using Run = std::vector<Entry>;

  /// Collects the merged view of [start, end) into `out`.
  void MergeRange(std::string_view start, std::string_view end,
                  std::vector<Entry>* out) const;

  std::map<std::string, std::string, std::less<>> memtable_;
  std::vector<Run> runs_;  // runs_[0] oldest
};

/// Encodes a uint64 as 8 big-endian bytes so that lexicographic key order
/// equals numeric order (Accumulo-style index keys).
std::string BigEndianKey(uint64_t value);

/// Decodes a key produced by BigEndianKey.
uint64_t DecodeBigEndianKey(std::string_view key);

}  // namespace prost::kvstore

#endif  // PROST_KVSTORE_KV_STORE_H_
