#include "kvstore/kv_store.h"

#include <algorithm>

#include "common/io.h"

namespace prost::kvstore {
namespace {

/// Smallest key strictly greater than every key with prefix `prefix`
/// (i.e. prefix with its last byte incremented, dropping 0xff tails).
/// Empty result means "scan to the end of the keyspace".
std::string PrefixUpperBound(std::string_view prefix) {
  std::string upper(prefix);
  while (!upper.empty()) {
    if (static_cast<unsigned char>(upper.back()) != 0xff) {
      upper.back() = static_cast<char>(
          static_cast<unsigned char>(upper.back()) + 1);
      return upper;
    }
    upper.pop_back();
  }
  return upper;
}

}  // namespace

void SortedKvStore::Put(std::string key, std::string value) {
  memtable_.insert_or_assign(std::move(key), std::move(value));
}

void SortedKvStore::BulkLoad(
    std::vector<std::pair<std::string, std::string>> entries) {
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.first < b.first;
                   });
  // Keep the last occurrence of each key (matches Put overwrite
  // semantics under a stable sort).
  Run run;
  run.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i + 1 < entries.size() && entries[i + 1].first == entries[i].first) {
      continue;
    }
    run.push_back(std::move(entries[i]));
  }
  runs_.push_back(std::move(run));
}

std::optional<std::string> SortedKvStore::Get(std::string_view key) const {
  auto it = memtable_.find(key);
  if (it != memtable_.end()) return it->second;
  // Newest run wins.
  for (auto run = runs_.rbegin(); run != runs_.rend(); ++run) {
    auto pos = std::lower_bound(
        run->begin(), run->end(), key,
        [](const Entry& e, std::string_view k) { return e.first < k; });
    if (pos != run->end() && pos->first == key) return pos->second;
  }
  return std::nullopt;
}

void SortedKvStore::Flush() {
  if (memtable_.empty()) return;
  Run run;
  run.reserve(memtable_.size());
  for (auto& [key, value] : memtable_) {
    run.emplace_back(key, value);
  }
  memtable_.clear();
  runs_.push_back(std::move(run));
}

void SortedKvStore::Compact() {
  Flush();
  if (runs_.size() <= 1) return;
  std::vector<Entry> merged;
  MergeRange("", "", &merged);
  runs_.clear();
  runs_.push_back(std::move(merged));
}

void SortedKvStore::MergeRange(std::string_view start, std::string_view end,
                               std::vector<Entry>* out) const {
  // K-way merge over sorted sources with last-writer-wins on duplicate
  // keys. Sources ordered oldest-to-newest; the newest duplicate is kept.
  struct Source {
    const Entry* pos;
    const Entry* limit;
    size_t priority;  // Higher wins on ties.
  };
  std::vector<Source> sources;
  std::vector<Entry> memtable_snapshot;

  for (size_t i = 0; i < runs_.size(); ++i) {
    const Run& run = runs_[i];
    auto lo = std::lower_bound(
        run.begin(), run.end(), start,
        [](const Entry& e, std::string_view k) { return e.first < k; });
    auto hi = end.empty()
                  ? run.end()
                  : std::lower_bound(run.begin(), run.end(), end,
                                     [](const Entry& e, std::string_view k) {
                                       return e.first < k;
                                     });
    if (lo < hi) {
      sources.push_back({&*lo, &*lo + (hi - lo), i});
    }
  }
  {
    auto lo = memtable_.lower_bound(start);
    auto hi = end.empty() ? memtable_.end() : memtable_.lower_bound(end);
    for (auto it = lo; it != hi; ++it) {
      memtable_snapshot.emplace_back(it->first, it->second);
    }
    if (!memtable_snapshot.empty()) {
      sources.push_back({memtable_snapshot.data(),
                         memtable_snapshot.data() + memtable_snapshot.size(),
                         runs_.size()});
    }
  }

  while (true) {
    // Find the smallest current key; among equals, the highest priority.
    const Source* best = nullptr;
    for (Source& source : sources) {
      if (source.pos == source.limit) continue;
      if (best == nullptr || source.pos->first < best->pos->first ||
          (source.pos->first == best->pos->first &&
           source.priority > best->priority)) {
        best = &source;
      }
    }
    if (best == nullptr) break;
    out->push_back(*best->pos);
    const std::string& emitted = out->back().first;
    // Advance every source past this key (drops stale duplicates).
    for (Source& source : sources) {
      while (source.pos != source.limit && source.pos->first == emitted) {
        ++source.pos;
      }
    }
  }
}

SortedKvStore::Iterator SortedKvStore::Scan(std::string_view start,
                                            std::string_view end) const {
  Iterator it;
  MergeRange(start, end, &it.entries_);
  return it;
}

SortedKvStore::Iterator SortedKvStore::ScanPrefix(
    std::string_view prefix) const {
  return Scan(prefix, PrefixUpperBound(prefix));
}

size_t SortedKvStore::num_entries() const {
  // Exact live count requires merge semantics; count via a full scan.
  Iterator it = Scan("", "");
  return it.size();
}

uint64_t SortedKvStore::ApproximateBytes() const {
  uint64_t bytes = 0;
  auto add_entry = [&bytes](const Entry& e) {
    // Key + value + ~12 bytes RFile-ish per-entry overhead (timestamps,
    // visibility, block index amortization).
    bytes += e.first.size() + e.second.size() + 12;
  };
  for (const Run& run : runs_) {
    for (const Entry& e : run) add_entry(e);
  }
  for (const auto& [key, value] : memtable_) {
    bytes += key.size() + value.size() + 12;
  }
  return bytes;
}

void SortedKvStore::Serialize(std::string* out) const {
  Iterator it = Scan("", "");
  ByteWriter writer;
  writer.PutVarint(it.size());
  for (; it.Valid(); it.Next()) {
    writer.PutString(it.key());
    writer.PutString(it.value());
  }
  *out = std::move(writer.TakeBuffer());
}

Result<SortedKvStore> SortedKvStore::Deserialize(std::string_view data) {
  ByteReader reader(data);
  uint64_t count;
  PROST_RETURN_IF_ERROR(reader.GetVarint(&count));
  SortedKvStore store;
  Run run;
  run.reserve(count);
  std::string key, value;
  std::string previous;
  for (uint64_t i = 0; i < count; ++i) {
    PROST_RETURN_IF_ERROR(reader.GetString(&key));
    PROST_RETURN_IF_ERROR(reader.GetString(&value));
    if (i > 0 && key <= previous) {
      return Status::Corruption("serialized KV entries out of order");
    }
    previous = key;
    run.emplace_back(std::move(key), std::move(value));
    key.clear();
    value.clear();
  }
  if (!run.empty()) store.runs_.push_back(std::move(run));
  return store;
}

std::string BigEndianKey(uint64_t value) {
  std::string key(8, '\0');
  for (int i = 0; i < 8; ++i) {
    key[i] = static_cast<char>(value >> (8 * (7 - i)));
  }
  return key;
}

uint64_t DecodeBigEndianKey(std::string_view key) {
  uint64_t value = 0;
  for (size_t i = 0; i < 8 && i < key.size(); ++i) {
    value = (value << 8) | static_cast<unsigned char>(key[i]);
  }
  return value;
}

}  // namespace prost::kvstore
